// vmgrid_explore: model-check the failover/recovery invariants by
// exhaustively enumerating bounded schedules of the standard fault world
// (DESIGN.md §15). Exit code 0 = clean (or, with --expect-violation, a
// violation was found); 1 = the opposite; 2 = usage/file errors.
//
//   vmgrid_explore --hosts 3 --depth 8 --choices 2 --report out.json
//   vmgrid_explore --replay counterexample.schedule

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "fault/explore_world.hpp"
#include "sim/explorer.hpp"

namespace {

struct Cli {
  vmgrid::fault::ExploreWorldOptions world{};
  vmgrid::sim::ExploreOptions explore =
      vmgrid::sim::ExploreOptions::from_env();
  std::string report_file{"explore_report.json"};
  std::string counterexample_file{"counterexample.schedule"};
  std::string replay_file;
  bool expect_violation{false};
};

void usage() {
  std::cerr <<
      "usage: vmgrid_explore [options]\n"
      "  world:    --hosts N --sessions N --faults N --fault-at S --outage S\n"
      "            --horizon S --task-s S\n"
      "  bounds:   --seed N --depth N --choices N --budget-s S --max-schedules N\n"
      "            --keep-going (do not stop at the first violation)\n"
      "  output:   --report FILE --counterexample FILE\n"
      "  modes:    --replay FILE (re-execute a recorded schedule)\n"
      "            --expect-violation (invert the exit code: finding a\n"
      "            violation is the success — mutation-testing the checker)\n"
      "  env:      VMGRID_EXPLORE_DEPTH, VMGRID_EXPLORE_CHOICES,\n"
      "            VMGRID_EXPLORE_TIME_BUDGET_S (defaults for the bounds)\n";
}

bool parse_args(int argc, char** argv, Cli* cli) {
  auto need = [&](int i) { return i + 1 < argc; };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto num = [&]() { return std::strtod(argv[++i], nullptr); };
    if (a == "--hosts" && need(i)) {
      cli->world.hosts = static_cast<int>(num());
    } else if (a == "--sessions" && need(i)) {
      cli->world.sessions = static_cast<int>(num());
    } else if (a == "--faults" && need(i)) {
      cli->world.faults = static_cast<int>(num());
    } else if (a == "--fault-at" && need(i)) {
      cli->world.fault_at_s = num();
    } else if (a == "--outage" && need(i)) {
      cli->world.outage_s = num();
    } else if (a == "--horizon" && need(i)) {
      cli->world.horizon_s = num();
    } else if (a == "--task-s" && need(i)) {
      cli->world.task_s = num();
    } else if (a == "--seed" && need(i)) {
      cli->explore.seed = static_cast<std::uint64_t>(num());
    } else if (a == "--depth" && need(i)) {
      cli->explore.max_depth = static_cast<std::uint32_t>(num());
    } else if (a == "--choices" && need(i)) {
      cli->explore.max_choices = static_cast<std::uint32_t>(num());
    } else if (a == "--budget-s" && need(i)) {
      cli->explore.time_budget_s = num();
    } else if (a == "--max-schedules" && need(i)) {
      cli->explore.max_schedules = static_cast<std::uint64_t>(num());
    } else if (a == "--keep-going") {
      cli->explore.stop_at_first_violation = false;
    } else if (a == "--report" && need(i)) {
      cli->report_file = argv[++i];
    } else if (a == "--counterexample" && need(i)) {
      cli->counterexample_file = argv[++i];
    } else if (a == "--replay" && need(i)) {
      cli->replay_file = argv[++i];
    } else if (a == "--expect-violation") {
      cli->expect_violation = true;
    } else if (a == "--help" || a == "-h") {
      usage();
      std::exit(0);
    } else {
      std::cerr << "unknown or incomplete option: " << a << "\n";
      return false;
    }
  }
  return true;
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out{path, std::ios::binary};
  out << content;
  return static_cast<bool>(out);
}

void print_summary(const vmgrid::sim::ExploreReport& r) {
  std::cout << "schedules explored: " << r.schedules_explored
            << "  (naive bound: " << r.naive_schedule_bound << ")\n"
            << "choice points: " << r.choice_points
            << "  pruned commuting alternatives: " << r.pruned_sleep
            << "  state-cache cuts: " << r.pruned_state << "\n"
            << "invariant checks: " << r.invariant_checks
            << "  max branch depth: " << r.max_depth_seen
            << (r.hit_depth_bound ? "  [depth bound hit]" : "")
            << (r.hit_time_budget ? "  [time budget hit]" : "")
            << (r.hit_schedule_cap ? "  [schedule cap hit]" : "")
            << (r.exhausted ? "  [space exhausted]" : "") << "\n";
  for (const auto& v : r.violations) {
    std::cout << "VIOLATION " << v.invariant << " @ schedule " << v.schedule
              << " step " << v.step << " t=" << v.sim_time_s << "s: "
              << v.detail << "\n";
  }
  if (r.violations.empty()) std::cout << "no invariant violations\n";
}

int run_replay(const Cli& cli) {
  std::ifstream in{cli.replay_file, std::ios::binary};
  if (!in) {
    std::cerr << "cannot open " << cli.replay_file << "\n";
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string error;
  auto trace = vmgrid::sim::ScheduleTrace::parse(buf.str(), &error);
  if (!trace) {
    std::cerr << "bad schedule file: " << error << "\n";
    return 2;
  }
  const auto world =
      vmgrid::fault::ExploreWorldOptions::from_meta(trace->meta, cli.world);
  vmgrid::sim::Explorer explorer;
  const auto report =
      explorer.replay(*trace, [&world](vmgrid::sim::ExploreRun& run) {
        vmgrid::fault::run_failover_world(run, world);
      });
  print_summary(report);
  if (report.replay_divergences > 0) {
    std::cerr << "replay diverged from the recorded schedule ("
              << report.replay_divergences << " site(s))\n";
    return 1;
  }
  const auto expected = trace->meta.find("violation");
  if (expected != trace->meta.end()) {
    if (report.violations.empty() ||
        report.violations.front().invariant != expected->second) {
      std::cerr << "recorded violation '" << expected->second
                << "' did not reproduce\n";
      return 1;
    }
    std::cout << "counterexample reproduced: " << expected->second
              << " at step " << report.violations.front().step << "\n";
    return 0;
  }
  return report.violations.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  if (!parse_args(argc, argv, &cli)) {
    usage();
    return 2;
  }
  if (!cli.replay_file.empty()) return run_replay(cli);

  vmgrid::sim::Explorer explorer;
  const auto report =
      explorer.explore(cli.explore, [&cli](vmgrid::sim::ExploreRun& run) {
        vmgrid::fault::run_failover_world(run, cli.world);
      });
  print_summary(report);
  if (!write_file(cli.report_file, report.to_json())) {
    std::cerr << "cannot write " << cli.report_file << "\n";
    return 2;
  }
  if (!report.violations.empty()) {
    auto counterexample = report.counterexample;
    // Embed the world so the schedule file is self-contained.
    for (const auto& [k, v] : cli.world.to_meta()) counterexample.meta[k] = v;
    if (!write_file(cli.counterexample_file, counterexample.to_text())) {
      std::cerr << "cannot write " << cli.counterexample_file << "\n";
      return 2;
    }
    std::cout << "counterexample written to " << cli.counterexample_file
              << " (replay with --replay)\n";
  }
  const bool violated = !report.violations.empty();
  return violated == cli.expect_violation ? 0 : 1;
}
