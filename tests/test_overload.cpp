// Overload protection: retry budgets, circuit breakers, bounded server
// admission queues with priority shedding, end-to-end deadline
// propagation through the NFS/VFS chain, middleware admission limits,
// and the kOverload fault. The common thread: offered load past
// capacity must produce fast typed rejections and bounded retry volume,
// never unbounded queues or retry storms.

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "middleware/scheduler_service.hpp"
#include "middleware/testbed.hpp"
#include "net/overload.hpp"
#include "net/rpc.hpp"
#include "storage/nfs_client.hpp"
#include "storage/nfs_server.hpp"
#include "vfs/grid_vfs.hpp"
#include "workload/spec_benchmarks.hpp"

namespace vmgrid {
namespace {

using namespace middleware;

// ---------------------------------------------------------------------------
// RetryBudget: a plain token bucket

TEST(RetryBudget, SpendsUntilEmptyThenDenies) {
  net::RetryBudgetParams p;
  p.capacity = 3.0;
  p.initial = 3.0;
  net::RetryBudget b{p};
  EXPECT_TRUE(b.try_spend());
  EXPECT_TRUE(b.try_spend());
  EXPECT_TRUE(b.try_spend());
  EXPECT_FALSE(b.try_spend());  // dry
  EXPECT_EQ(b.spent(), 3u);
  EXPECT_EQ(b.denied(), 1u);
  EXPECT_LT(b.tokens(), 1.0);
}

TEST(RetryBudget, SuccessesRefillUpToCapacity) {
  net::RetryBudgetParams p;
  p.capacity = 2.0;
  p.initial = 0.0;
  p.refill_per_success = 0.5;
  net::RetryBudget b{p};
  EXPECT_FALSE(b.try_spend());
  b.on_success();
  b.on_success();  // 1.0 token: one retry affordable again
  EXPECT_TRUE(b.try_spend());
  for (int i = 0; i < 100; ++i) b.on_success();
  EXPECT_DOUBLE_EQ(b.tokens(), 2.0);  // capped at capacity
}

// ---------------------------------------------------------------------------
// CircuitBreaker: the state machine in isolation (time passed in)

sim::TimePoint at(double s) {
  return sim::TimePoint::epoch() + sim::Duration::seconds(s);
}

TEST(CircuitBreaker, TripsOnConsecutiveFailuresOnly) {
  net::CircuitBreakerParams p;
  p.failure_threshold = 3;
  net::CircuitBreaker cb{p};
  cb.on_failure(at(0));
  cb.on_failure(at(1));
  cb.on_success(at(2));  // resets the consecutive count
  cb.on_failure(at(3));
  cb.on_failure(at(4));
  EXPECT_EQ(cb.state(), net::BreakerState::kClosed);
  cb.on_failure(at(5));
  EXPECT_EQ(cb.state(), net::BreakerState::kOpen);
  EXPECT_FALSE(cb.allow(at(6)));
}

TEST(CircuitBreaker, HalfOpenProbesThenRecovers) {
  net::CircuitBreakerParams p;
  p.failure_threshold = 1;
  p.open_duration = sim::Duration::seconds(10);
  p.half_open_probes = 1;
  net::CircuitBreaker cb{p};
  std::vector<std::pair<net::BreakerState, net::BreakerState>> hops;
  cb.set_transition_hook([&](net::BreakerState from, net::BreakerState to) {
    hops.emplace_back(from, to);
  });
  cb.on_failure(at(0));
  ASSERT_EQ(cb.state(), net::BreakerState::kOpen);
  EXPECT_FALSE(cb.allow(at(5)));  // still open
  EXPECT_TRUE(cb.allow(at(11)));  // open_duration elapsed: probe admitted
  EXPECT_EQ(cb.state(), net::BreakerState::kHalfOpen);
  EXPECT_FALSE(cb.allow(at(11)));  // only one probe slot
  cb.on_success(at(12));
  EXPECT_EQ(cb.state(), net::BreakerState::kClosed);
  EXPECT_TRUE(cb.allow(at(13)));
  ASSERT_EQ(hops.size(), 3u);  // closed->open, open->half, half->closed
  EXPECT_EQ(cb.transitions(), 3u);
}

TEST(CircuitBreaker, HalfOpenFailureReopens) {
  net::CircuitBreakerParams p;
  p.failure_threshold = 1;
  p.open_duration = sim::Duration::seconds(10);
  net::CircuitBreaker cb{p};
  cb.on_failure(at(0));
  ASSERT_TRUE(cb.allow(at(11)));
  cb.on_failure(at(12));  // the probe failed
  EXPECT_EQ(cb.state(), net::BreakerState::kOpen);
  EXPECT_FALSE(cb.allow(at(13)));
  EXPECT_TRUE(cb.allow(at(23)));  // a fresh open window from t=12
}

// ---------------------------------------------------------------------------
// RPC server admission: bounded queue, fast rejection, priority, aging

struct AdmissionFixture : ::testing::Test {
  sim::Simulation sim{91};
  net::Network net{sim};
  net::RpcFabric fabric{net};
  net::NodeId a = net.add_node("a");
  net::NodeId b = net.add_node("b");

  AdmissionFixture() {
    net.add_link(a, b, net::LinkParams{sim::Duration::millis(1), 1e9});
  }

  /// A handler that occupies its admission slot for `service`.
  static void register_slow(net::RpcServer& server, sim::Simulation& sim,
                            sim::Duration service) {
    server.register_method(
        "work", [&sim, service](const net::RpcRequest&, net::RpcResponder respond) {
          sim.schedule_after(service, [respond = std::move(respond)] {
            respond(net::RpcResponse{});
          });
        });
  }

  struct Tally {
    int ok{0};
    int overloaded{0};
    int other{0};
  };

  void burst(int n, Tally& t, net::RpcPriority prio = net::RpcPriority::kBulk) {
    for (int i = 0; i < n; ++i) {
      fabric.call(a, b, net::RpcRequest{"work", 64, {}, prio},
                  [&t](net::RpcResponse r) {
                    if (r.ok()) {
                      ++t.ok;
                    } else if (r.status == net::RpcStatus::kOverloaded) {
                      ++t.overloaded;
                    } else {
                      ++t.other;
                    }
                  });
    }
  }
};

TEST_F(AdmissionFixture, UnlimitedByDefault) {
  net::RpcServer server{fabric, b};  // admission.max_concurrent = 0
  register_slow(server, sim, sim::Duration::millis(10));
  Tally t;
  burst(32, t);
  sim.run();
  EXPECT_EQ(t.ok, 32);
  EXPECT_EQ(server.calls_shed(), 0u);
}

TEST_F(AdmissionFixture, FullQueueFastRejectsWithKOverloaded) {
  net::RpcServerParams p;
  p.admission.max_concurrent = 1;
  p.admission.queue_depth = 2;
  net::RpcServer server{fabric, b, p};
  register_slow(server, sim, sim::Duration::millis(50));
  Tally t;
  burst(6, t);
  sim.run();
  // 1 in service + 2 queued make it; 3 are shed, and the rejection is
  // immediate (fast-fail), not after the queue drains.
  EXPECT_EQ(t.ok, 3);
  EXPECT_EQ(t.overloaded, 3);
  EXPECT_EQ(t.other, 0);
  EXPECT_EQ(server.calls_shed(), 3u);
  EXPECT_EQ(server.queue_depth(), 0u);
  EXPECT_EQ(server.active_calls(), 0u);
}

TEST_F(AdmissionFixture, SlotReleasePumpsTheQueue) {
  net::RpcServerParams p;
  p.admission.max_concurrent = 2;
  p.admission.queue_depth = 8;
  net::RpcServer server{fabric, b, p};
  register_slow(server, sim, sim::Duration::millis(10));
  Tally t;
  burst(10, t);
  sim.run();
  EXPECT_EQ(t.ok, 10);  // all fit through the queue eventually
  EXPECT_EQ(server.calls_shed(), 0u);
}

TEST_F(AdmissionFixture, ControlPriorityEvictsOldestBulkWaiter) {
  net::RpcServerParams p;
  p.admission.max_concurrent = 1;
  p.admission.queue_depth = 2;
  net::RpcServer server{fabric, b, p};
  register_slow(server, sim, sim::Duration::millis(50));
  Tally bulk;
  burst(3, bulk);  // fills the slot + both queue slots
  Tally control;
  sim.schedule_after(sim::Duration::millis(5),
                     [&] { burst(1, control, net::RpcPriority::kControl); });
  sim.run();
  // The control call took a queue slot from the oldest bulk waiter.
  EXPECT_EQ(control.ok, 1);
  EXPECT_EQ(control.overloaded, 0);
  EXPECT_EQ(bulk.ok, 2);
  EXPECT_EQ(bulk.overloaded, 1);
}

TEST_F(AdmissionFixture, StaleWaitersAreShedAtDequeue) {
  net::RpcServerParams p;
  p.admission.max_concurrent = 1;
  p.admission.queue_depth = 16;
  p.admission.max_queue_age = sim::Duration::millis(20);
  net::RpcServer server{fabric, b, p};
  register_slow(server, sim, sim::Duration::millis(100));
  Tally t;
  burst(5, t);
  sim.run();
  // Each service takes 100 ms; every waiter is >20 ms old when its turn
  // comes, so only the first call is actually served.
  EXPECT_EQ(t.ok, 1);
  EXPECT_EQ(t.overloaded, 4);
}

TEST_F(AdmissionFixture, SyntheticLoadOccupiesSlotsUntilCleared) {
  net::RpcServerParams p;
  p.admission.max_concurrent = 2;
  p.admission.queue_depth = 0;  // no queue: reject unless a slot is free
  net::RpcServer server{fabric, b, p};
  register_slow(server, sim, sim::Duration::millis(1));
  server.set_synthetic_load(2);
  Tally during;
  burst(2, during);
  sim.schedule_after(sim::Duration::millis(100), [&] {
    server.set_synthetic_load(0);
  });
  Tally after;
  sim.schedule_after(sim::Duration::millis(200), [&] { burst(2, after); });
  sim.run();
  EXPECT_EQ(during.overloaded, 2);
  EXPECT_EQ(after.ok, 2);
}

// ---------------------------------------------------------------------------
// Retry budgets at the fabric level: storms bounded, shed calls retried

TEST_F(AdmissionFixture, DeliveredOverloadIsRetriedAndCanRecover) {
  net::RpcServerParams p;
  p.admission.max_concurrent = 1;
  p.admission.queue_depth = 0;
  net::RpcServer server{fabric, b, p};
  register_slow(server, sim, sim::Duration::millis(1));
  server.set_synthetic_load(1);  // first attempt is shed...
  sim.schedule_after(sim::Duration::millis(100),
                     [&] { server.set_synthetic_load(0); });  // ...retry isn't
  net::RpcCallOptions opts;
  opts.max_attempts = 3;
  opts.backoff_base = sim::Duration::millis(200);
  opts.backoff_jitter = 0.0;
  std::optional<net::RpcResponse> resp;
  fabric.call(a, b, net::RpcRequest{"work", 64, {}}, opts,
              [&](net::RpcResponse r) { resp = std::move(r); });
  sim.run();
  ASSERT_TRUE(resp.has_value());
  EXPECT_TRUE(resp->ok());
  EXPECT_GT(sim.metrics().counter_value("rpc.retries"), 0.0);
}

TEST_F(AdmissionFixture, RetryStormIsBoundedByTheBudget) {
  net::RpcServerParams p;
  p.admission.max_concurrent = 1;
  p.admission.queue_depth = 0;
  net::RpcServer server{fabric, b, p};
  register_slow(server, sim, sim::Duration::millis(1));
  server.set_synthetic_load(1);  // permanently overloaded

  net::RetryBudgetParams bp;
  bp.capacity = 4.0;
  bp.initial = 4.0;
  net::RetryBudget budget{bp};
  net::RpcCallOptions opts;
  opts.max_attempts = 10;  // would be 9 retries per call, unbudgeted
  opts.backoff_base = sim::Duration::millis(10);
  opts.retry_budget = &budget;

  int failed = 0;
  for (int i = 0; i < 8; ++i) {
    fabric.call(a, b, net::RpcRequest{"work", 64, {}}, opts,
                [&](net::RpcResponse r) {
                  EXPECT_FALSE(r.ok());
                  EXPECT_EQ(r.status, net::RpcStatus::kOverloaded);
                  ++failed;
                });
  }
  sim.run();
  EXPECT_EQ(failed, 8);
  // 8 calls x 9 possible retries = 72 unbudgeted; the bucket allows 4.
  // No successes happened, so nothing refilled: the obs counter must
  // equal the budget exactly, and the denials are visible too.
  EXPECT_EQ(budget.spent(), 4u);
  EXPECT_DOUBLE_EQ(sim.metrics().counter_value("rpc.retries"), 4.0);
  EXPECT_GT(sim.metrics().counter_value("rpc.retry_budget_denied"), 0.0);
  EXPECT_EQ(budget.denied(),
            static_cast<std::uint64_t>(
                sim.metrics().counter_value("rpc.retry_budget_denied")));
  // Total attempts: 8 first attempts + 4 budgeted retries.
  EXPECT_EQ(server.calls_shed(), 12u);
}

// ---------------------------------------------------------------------------
// NFS client: deadline budgets propagate, retry budget wires through

struct NfsOverloadFixture : ::testing::Test {
  sim::Simulation sim{92};
  net::Network net{sim};
  net::RpcFabric fabric{net};
  net::NodeId client_node = net.add_node("client");
  net::NodeId server_node = net.add_node("server");
  storage::Disk disk{sim, {}};
  storage::LocalFileSystem fs{sim, disk};
  std::optional<storage::NfsServer> server;

  NfsOverloadFixture() {
    net.add_link(client_node, server_node,
                 net::LinkParams{sim::Duration::millis(5), 1e7});
    fs.create("data", storage::kBlockSize * 256);
    server.emplace(fabric, server_node, fs);
  }
};

TEST_F(NfsOverloadFixture, DeadlineBudgetBoundsAMultiBlockTransfer) {
  // Degrade the link so every block RPC takes ~20 s; a 200 ms budget must
  // cut the whole transfer off at ~200 ms, not per-RPC x blocks later.
  net.set_link(client_node, server_node,
               net::LinkParams{sim::Duration::seconds(10), 1e7});
  storage::NfsClientParams params;
  params.rpc.deadline = sim::Duration::seconds(30);
  storage::NfsClient client{fabric, client_node, server_node, params};
  std::optional<storage::NfsIoResult> result;
  std::optional<sim::TimePoint> completed_at;
  client.read("data", 0, storage::kBlockSize * 32, sim::Duration::millis(200),
              [&](storage::NfsIoResult r) {
                result = std::move(r);
                completed_at = sim.now();
              });
  sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->ok());
  EXPECT_EQ(result->status.code(), StatusCode::kTimeout);
  // The caller hears about it at the budget, not after per-RPC x blocks
  // (orphaned transport events may still drain afterwards).
  ASSERT_TRUE(completed_at.has_value());
  EXPECT_LE(*completed_at - sim::TimePoint::epoch(), sim::Duration::millis(250));
}

TEST_F(NfsOverloadFixture, DeadlineBudgetLeavesFastTransfersAlone) {
  storage::NfsClient client{fabric, client_node, server_node};
  std::optional<storage::NfsIoResult> result;
  client.read("data", 0, storage::kBlockSize * 8, sim::Duration::seconds(30),
              [&](storage::NfsIoResult r) { result = std::move(r); });
  sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok());
}

TEST_F(NfsOverloadFixture, ClientRetryBudgetBoundsOutageRetries) {
  storage::NfsClientParams params;
  params.rpc.deadline = sim::Duration::millis(100);
  params.rpc.max_attempts = 8;
  params.rpc.backoff_base = sim::Duration::millis(10);
  params.enable_retry_budget = true;
  params.retry_budget.capacity = 2.0;
  params.retry_budget.initial = 2.0;
  storage::NfsClient client{fabric, client_node, server_node, params};
  ASSERT_NE(client.retry_budget(), nullptr);
  net.set_node_up(server_node, false);  // permanent outage
  std::optional<storage::NfsIoResult> result;
  client.read("data", 0, storage::kBlockSize * 4,
              [&](storage::NfsIoResult r) { result = std::move(r); });
  sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->ok());
  // Down node → kUnreachable at the transport, kUnavailable grid-wide.
  EXPECT_EQ(result->status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(client.retry_budget()->spent(), 2u);
  EXPECT_GT(client.retry_budget()->denied(), 0u);
}

// ---------------------------------------------------------------------------
// VFS proxy circuit breaker: trip, degrade to cache-only, recover

struct BreakerFixture : NfsOverloadFixture {
  static vfs::VfsProxyParams breaker_params() {
    vfs::VfsProxyParams p;
    p.prefetch_blocks = 0;
    p.enable_breaker = true;
    p.breaker.failure_threshold = 2;
    p.breaker.open_duration = sim::Duration::seconds(5);
    return p;
  }

  void degrade_link() {
    net.set_link(client_node, server_node,
                 net::LinkParams{sim::Duration::seconds(30), 1e7});
  }
  void restore_link() {
    net.set_link(client_node, server_node,
                 net::LinkParams{sim::Duration::millis(5), 1e7});
  }
};

TEST_F(BreakerFixture, TimeoutsTripTheBreakerIntoCacheOnlyMode) {
  storage::NfsClientParams cp;
  cp.rpc.deadline = sim::Duration::millis(100);
  storage::NfsClient client{fabric, client_node, server_node, cp};
  vfs::VfsProxy proxy{sim, client, breaker_params()};
  ASSERT_NE(proxy.breaker(), nullptr);

  // Warm one run into the cache while the path is healthy.
  std::optional<vfs::VfsIoStats> warm;
  proxy.read("data", 0, storage::kBlockSize * 4,
             [&](vfs::VfsIoStats s) { warm = s; });
  sim.run();
  ASSERT_TRUE(warm && warm->ok());

  degrade_link();
  // One scripted timeline inside a single run (the degraded link's
  // orphaned transport events take ~60 s of sim time to drain, which
  // would blow past the 5 s open window between separate run() calls).
  // Two timed-out misses trip the breaker; inside the open window a miss
  // is rejected fast while a cached read still works.
  std::optional<vfs::VfsIoStats> m0, m1, rejected, cached;
  std::optional<net::BreakerState> state_after_trip;
  proxy.read("data", storage::kBlockSize * 64, storage::kBlockSize * 4,
             [&](vfs::VfsIoStats s) { m0 = s; });  // times out at ~100 ms
  sim.schedule_after(sim::Duration::millis(200), [&] {
    proxy.read("data", storage::kBlockSize * 72, storage::kBlockSize * 4,
               [&](vfs::VfsIoStats s) { m1 = s; });  // second trip at ~300 ms
  });
  sim.schedule_after(sim::Duration::millis(500), [&] {
    state_after_trip = proxy.breaker()->state();
    proxy.read("data", storage::kBlockSize * 128, storage::kBlockSize * 4,
               [&](vfs::VfsIoStats s) { rejected = s; });
  });
  sim.schedule_after(sim::Duration::millis(600), [&] {
    proxy.read("data", 0, storage::kBlockSize * 4,
               [&](vfs::VfsIoStats s) { cached = s; });
  });
  sim.run();

  ASSERT_TRUE(m0 && m1);
  EXPECT_FALSE(m0->ok());
  EXPECT_FALSE(m1->ok());
  ASSERT_TRUE(state_after_trip.has_value());
  EXPECT_EQ(*state_after_trip, net::BreakerState::kOpen);

  // The miss inside the open window failed fast, network untouched...
  ASSERT_TRUE(rejected.has_value());
  EXPECT_FALSE(rejected->ok());
  EXPECT_EQ(rejected->status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(rejected->status.subsystem(), "vfs");
  EXPECT_EQ(rejected->rpcs, 0u);
  EXPECT_EQ(proxy.degraded_rejects(), 1u);

  // ...while cached blocks were still served (degraded, not dead).
  ASSERT_TRUE(cached.has_value());
  EXPECT_TRUE(cached->ok());
  EXPECT_EQ(cached->rpcs, 0u);
}

TEST_F(BreakerFixture, HalfOpenProbeRecoversTheProxy) {
  storage::NfsClientParams cp;
  cp.rpc.deadline = sim::Duration::millis(100);
  storage::NfsClient client{fabric, client_node, server_node, cp};
  vfs::VfsProxy proxy{sim, client, breaker_params()};

  degrade_link();
  for (int i = 0; i < 2; ++i) {
    proxy.read("data", storage::kBlockSize * i * 8, storage::kBlockSize * 4,
               [](vfs::VfsIoStats) {});
    sim.run();
  }
  ASSERT_EQ(proxy.breaker()->state(), net::BreakerState::kOpen);

  // Path heals; after open_duration the next miss is admitted as the
  // half-open probe, succeeds, and closes the breaker.
  restore_link();
  std::optional<vfs::VfsIoStats> probe;
  sim.schedule_after(sim::Duration::seconds(6), [&] {
    proxy.read("data", storage::kBlockSize * 64, storage::kBlockSize * 4,
               [&](vfs::VfsIoStats s) { probe = s; });
  });
  sim.run();
  ASSERT_TRUE(probe.has_value());
  EXPECT_TRUE(probe->ok());
  EXPECT_EQ(proxy.breaker()->state(), net::BreakerState::kClosed);
  EXPECT_GE(proxy.breaker()->transitions(), 3u);
}

TEST_F(BreakerFixture, ProxyIoDeadlineBoundsDemandFetches) {
  storage::NfsClientParams cp;
  cp.rpc.deadline = sim::Duration::seconds(60);  // per-attempt: useless here
  storage::NfsClient client{fabric, client_node, server_node, cp};
  vfs::VfsProxyParams pp;
  pp.prefetch_blocks = 0;
  pp.io_deadline = sim::Duration::millis(200);
  vfs::VfsProxy proxy{sim, client, pp};
  degrade_link();
  std::optional<vfs::VfsIoStats> r;
  std::optional<sim::TimePoint> completed_at;
  proxy.read("data", 0, storage::kBlockSize * 4, [&](vfs::VfsIoStats s) {
    r = s;
    completed_at = sim.now();
  });
  sim.run();
  ASSERT_TRUE(r.has_value());
  EXPECT_FALSE(r->ok());
  EXPECT_EQ(r->status.code(), StatusCode::kTimeout);
  ASSERT_TRUE(completed_at.has_value());
  EXPECT_LE(*completed_at - sim::TimePoint::epoch(), sim::Duration::millis(250));
}

// ---------------------------------------------------------------------------
// Middleware admission limits: GRAM, scheduler, compute server

TEST(MiddlewareAdmission, GramGatekeeperShedsPastActiveJobLimit) {
  Grid grid{93};
  auto params = testbed::paper_compute("gate", testbed::fig1_host());
  params.gram.max_active_jobs = 1;
  auto& cs = grid.add_compute_server(params);
  cs.gram().set_executor([&grid](const std::string&, GramService::ExecutorDone done) {
    grid.simulation().schedule_after(sim::Duration::seconds(60),
                                     [done] { done({}, "late"); });
  });
  const auto client_node = grid.network().add_node("client");
  grid.network().add_link(client_node, cs.node(),
                          net::LinkParams{sim::Duration::millis(1), 1e9});
  GramClient client{grid.fabric(), client_node};
  std::vector<GramJobResult> results;
  for (int i = 0; i < 3; ++i) {
    client.globusrun(cs.node(), "job", [&](GramJobResult r) {
      results.push_back(std::move(r));
    });
  }
  grid.run();
  ASSERT_EQ(results.size(), 3u);
  int ok = 0, shed = 0;
  for (const auto& r : results) {
    if (r.ok()) {
      ++ok;
    } else {
      ++shed;
      EXPECT_EQ(r.status.code(), StatusCode::kOverloaded);
    }
  }
  EXPECT_EQ(ok, 1);
  EXPECT_EQ(shed, 2);
  EXPECT_EQ(cs.gram().jobs_shed(), 2u);
  EXPECT_EQ(cs.gram().active_jobs(), 0u);  // the accepted one finished
}

TEST(MiddlewareAdmission, SchedulerShedsWhenQueueFull) {
  Grid grid{94};
  auto& h1 = grid.add_compute_server(
      testbed::paper_compute("farm-1", testbed::fig1_host()));
  h1.preload_image(testbed::paper_image());
  SchedulerServiceParams p;
  p.policy = PlacementPolicy::kLeastLoaded;
  p.max_queued_jobs = 2;
  SchedulerService sched{grid, p};
  sched.add_worker_host(h1, testbed::paper_image());
  int ok = 0, shed = 0;
  for (int i = 0; i < 5; ++i) {
    sched.submit("team", workload::micro_test_task(5.0), [&](BatchJobResult r) {
      if (r.ok()) {
        ++ok;
      } else {
        ++shed;
        EXPECT_EQ(r.status.code(), StatusCode::kOverloaded);
      }
    });
  }
  grid.run();
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(shed, 3);
  EXPECT_EQ(sched.jobs_shed(), 3u);
}

TEST(MiddlewareAdmission, ComputeServerBoundsPendingInstantiations) {
  Grid grid{95};
  auto params = testbed::paper_compute("busy", testbed::fig1_host());
  params.max_pending_instantiations = 1;
  auto& cs = grid.add_compute_server(params);
  cs.preload_image(testbed::paper_image());
  InstantiateOptions opts;
  opts.config = testbed::paper_vm("vm");
  opts.image = testbed::paper_image();
  opts.mode = VmStartMode::kColdBoot;
  opts.access = StateAccess::kNonPersistentLocal;
  std::vector<InstantiationStats> stats;
  for (int i = 0; i < 3; ++i) {
    auto o = opts;
    o.config.name = "vm-" + std::to_string(i);
    cs.instantiate(o, [&](vm::VirtualMachine*, InstantiationStats s) {
      stats.push_back(std::move(s));
    });
  }
  grid.run();
  ASSERT_EQ(stats.size(), 3u);
  int ok = 0, shed = 0;
  for (const auto& s : stats) {
    if (s.ok()) {
      ++ok;
    } else {
      ++shed;
      EXPECT_EQ(s.status.code(), StatusCode::kOverloaded);
    }
  }
  EXPECT_EQ(ok, 1);
  EXPECT_EQ(shed, 2);
}

// ---------------------------------------------------------------------------
// kOverload fault: plan generation stays byte-compatible, injection works

TEST(OverloadFault, FourListRandomIsByteIdenticalWhenWeightIsZero) {
  fault::RandomFaultOptions opts;
  opts.events_per_hour = 120.0;
  opts.horizon = sim::Duration::seconds(1800);
  const std::vector<std::string> hosts{"h0", "h1"};
  const std::vector<std::string> servers{"s0"};
  const std::vector<std::string> links{"l0"};
  const auto legacy = fault::FaultPlan::random(7, opts, hosts, servers, links);
  const auto with_targets =
      fault::FaultPlan::random(7, opts, hosts, servers, links, {"rpc0", "rpc1"});
  ASSERT_EQ(legacy.events().size(), with_targets.events().size());
  for (std::size_t i = 0; i < legacy.events().size(); ++i) {
    EXPECT_EQ(legacy.events()[i].at, with_targets.events()[i].at);
    EXPECT_EQ(legacy.events()[i].kind, with_targets.events()[i].kind);
    EXPECT_EQ(legacy.events()[i].target, with_targets.events()[i].target);
  }
}

TEST(OverloadFault, PositiveWeightDrawsOverloadEvents) {
  fault::RandomFaultOptions opts;
  opts.events_per_hour = 600.0;
  opts.horizon = sim::Duration::seconds(3600);
  opts.overload_weight = 5.0;
  opts.overload_slots = 3.0;
  const auto plan = fault::FaultPlan::random(
      11, opts, {"h0"}, {"s0"}, {"l0"}, {"rpc0"});
  bool any = false;
  for (const auto& ev : plan.events()) {
    if (ev.kind == fault::FaultKind::kOverload) {
      any = true;
      EXPECT_EQ(ev.target, "rpc0");
      EXPECT_DOUBLE_EQ(ev.magnitude, 3.0);
    }
  }
  EXPECT_TRUE(any);
}

TEST(OverloadFault, EngineInjectsAndHealsSyntheticLoad) {
  sim::Simulation sim{96};
  net::Network net{sim};
  net::RpcFabric fabric{net};
  const auto a = net.add_node("a");
  const auto b = net.add_node("b");
  net.add_link(a, b, net::LinkParams{sim::Duration::millis(1), 1e9});
  net::RpcServerParams p;
  p.admission.max_concurrent = 2;
  p.admission.queue_depth = 0;
  net::RpcServer server{fabric, b, p};
  server.register_method("echo", [](const net::RpcRequest&, net::RpcResponder r) {
    r(net::RpcResponse{});
  });

  fault::FaultEngine engine{sim, net};
  engine.register_rpc_server("b", server);
  EXPECT_EQ(engine.rpc_server_names(), std::vector<std::string>{"b"});
  fault::FaultPlan plan;
  plan.add(fault::FaultEvent{sim::Duration::millis(100), fault::FaultKind::kOverload,
                             "b", sim::Duration::seconds(1), 2.0});
  engine.arm(plan);

  std::optional<net::RpcStatus> during, after;
  sim.schedule_after(sim::Duration::millis(500), [&] {
    fabric.call(a, b, net::RpcRequest{"echo", 64, {}},
                [&](net::RpcResponse r) { during = r.status; });
  });
  sim.schedule_after(sim::Duration::seconds(2), [&] {
    fabric.call(a, b, net::RpcRequest{"echo", 64, {}},
                [&](net::RpcResponse r) { after = r.status; });
  });
  sim.run();
  ASSERT_TRUE(during.has_value());
  EXPECT_EQ(*during, net::RpcStatus::kOverloaded);
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(*after, net::RpcStatus::kOk);
  EXPECT_EQ(engine.injected(), 1u);
  EXPECT_EQ(engine.healed(), 1u);
  EXPECT_EQ(server.synthetic_load(), 0u);
}

}  // namespace
}  // namespace vmgrid
