#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <cstdlib>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/simulation.hpp"
#include "sim/stats.hpp"

namespace vmgrid::obs {
namespace {

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON validator. The exporters promise
// machine-readable output; this checks the whole string parses as one
// JSON value with nothing trailing.

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view s) : s_{s} {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '\\') {
        pos_ += 2;
        continue;
      }
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control char
      ++pos_;
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() && (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                                s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  [[nodiscard]] char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\n' ||
                                s_[pos_] == '\t' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string_view s_;
  std::size_t pos_{0};
};

bool json_valid(std::string_view s) { return JsonChecker{s}.valid(); }

// ---------------------------------------------------------------------------
// MetricsRegistry

TEST(MetricsRegistry, LabelOrderDoesNotSplitIdentity) {
  MetricsRegistry reg;
  auto& a = reg.counter("rpc.calls", {{"op", "read"}, {"node", "n1"}});
  auto& b = reg.counter("rpc.calls", {{"node", "n1"}, {"op", "read"}});
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_DOUBLE_EQ(b.value(), 1.0);
  EXPECT_EQ(reg.size(), 1u);

  // Different labels are a different instance; no labels another.
  auto& c = reg.counter("rpc.calls", {{"node", "n2"}, {"op", "read"}});
  auto& d = reg.counter("rpc.calls");
  EXPECT_NE(&a, &c);
  EXPECT_NE(&a, &d);
  EXPECT_EQ(reg.size(), 3u);
}

TEST(MetricsRegistry, CanonicalKeyFormat) {
  EXPECT_EQ(MetricsRegistry::key("m", {}), "m");
  EXPECT_EQ(MetricsRegistry::key("m", {{"b", "2"}, {"a", "1"}}), "m{a=1,b=2}");
}

TEST(MetricsRegistry, CounterIsMonotonic) {
  MetricsRegistry reg;
  auto& c = reg.counter("events");
  c.inc();
  c.inc(2.5);
  c.inc(-5.0);  // dropped: counters never go down
  c.inc(0.0);   // dropped: not an increment
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
  EXPECT_DOUBLE_EQ(reg.counter_value("events"), 3.5);
}

TEST(MetricsRegistry, FindDoesNotCreate) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.find_counter("absent"), nullptr);
  EXPECT_EQ(reg.find_gauge("absent"), nullptr);
  EXPECT_EQ(reg.find_histogram("absent"), nullptr);
  EXPECT_DOUBLE_EQ(reg.counter_value("absent"), 0.0);
  EXPECT_DOUBLE_EQ(reg.gauge_value("absent"), 0.0);
  EXPECT_EQ(reg.size(), 0u);

  reg.gauge("depth", {{"q", "a"}}).set(4.0);
  ASSERT_NE(reg.find_gauge("depth", {{"q", "a"}}), nullptr);
  EXPECT_DOUBLE_EQ(reg.gauge_value("depth", {{"q", "a"}}), 4.0);
}

TEST(MetricsRegistry, GaugeMovesBothWays) {
  MetricsRegistry reg;
  auto& g = reg.gauge("vms");
  g.set(3.0);
  g.add(-2.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.0);
}

TEST(MetricsRegistry, HistogramSummaryTracksObservations) {
  MetricsRegistry reg;
  auto& h = reg.histogram("lat", HistogramOptions{0.0, 10.0, 100});
  for (double x : {1.0, 2.0, 3.0, 4.0}) h.observe(x);
  EXPECT_EQ(h.summary().count(), 4u);
  EXPECT_DOUBLE_EQ(h.summary().mean(), 2.5);
  EXPECT_DOUBLE_EQ(h.summary().min(), 1.0);
  EXPECT_DOUBLE_EQ(h.summary().max(), 4.0);
  EXPECT_EQ(h.histogram().total(), 4u);
  // Same (name, opts, labels) is the same object.
  EXPECT_EQ(&h, &reg.histogram("lat", HistogramOptions{0.0, 10.0, 100}));
}

TEST(MetricsRegistry, JsonAndCsvSnapshotsAreWellFormed) {
  MetricsRegistry reg;
  reg.counter("c\"quoted\"", {{"k", "v\\w"}}).inc(2);
  reg.gauge("g").set(-1.5);
  reg.histogram("h", {0.0, 1.0, 10}).observe(0.25);
  const auto js = reg.to_json();
  EXPECT_TRUE(json_valid(js)) << js;
  EXPECT_NE(js.find("\"counters\""), std::string::npos);
  EXPECT_NE(js.find("\"gauges\""), std::string::npos);
  EXPECT_NE(js.find("\"histograms\""), std::string::npos);

  const auto csv = reg.to_csv();
  EXPECT_EQ(csv.rfind("type,name,labels,", 0), 0u);
  // One header + three rows.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);
}

// ---------------------------------------------------------------------------
// sim::Histogram edge cases + merge (shared with the metrics layer)

TEST(Histogram, PercentileEdgeBehavior) {
  sim::Histogram h{0.0, 10.0, 10};
  // Empty histogram: every percentile collapses to lo.
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 0.0);

  h.add(2.5);  // bin [2,3)
  h.add(7.5);  // bin [7,8)
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 2.0);     // lower edge of first occupied bin
  EXPECT_DOUBLE_EQ(h.percentile(-5.0), 2.0);    // clamped
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 8.0);   // upper edge of last occupied bin
  EXPECT_DOUBLE_EQ(h.percentile(150.0), 8.0);   // clamped
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 2.5);    // midpoint of the rank's bin
}

TEST(Histogram, MergeAddsBinwise) {
  sim::Histogram a{0.0, 10.0, 10};
  sim::Histogram b{0.0, 10.0, 10};
  a.add(1.5);
  b.add(1.5);
  b.add(8.5);
  a.merge(b);
  EXPECT_EQ(a.total(), 3u);
  EXPECT_EQ(a.bin_count(1), 2u);
  EXPECT_EQ(a.bin_count(8), 1u);
}

TEST(HistogramMetric, MergeCombinesSummaryAndBins) {
  HistogramMetric a{{0.0, 1.0, 4}};
  HistogramMetric b{{0.0, 1.0, 4}};
  a.observe(0.1);
  b.observe(0.9);
  a.merge(b);
  EXPECT_EQ(a.summary().count(), 2u);
  EXPECT_DOUBLE_EQ(a.summary().mean(), 0.5);
  EXPECT_EQ(a.histogram().total(), 2u);
}

// ---------------------------------------------------------------------------
// TraceCollector + Span

TEST(TraceCollector, DisabledCostsNothingAndRecordsNothing) {
  TraceCollector tc;
  EXPECT_FALSE(tc.enabled());
  const auto id = tc.begin(sim::TimePoint::from_seconds(1), "work", "host");
  EXPECT_EQ(id, kInvalidSpan);
  tc.end(id, sim::TimePoint::from_seconds(2));
  tc.instant(sim::TimePoint::from_seconds(1), "mark", "host");
  EXPECT_TRUE(tc.records().empty());
}

TEST(TraceCollector, NestingTracksParentAndDepthPerTrack) {
  TraceCollector tc;
  tc.enable();
  const auto outer = tc.begin(sim::TimePoint::from_seconds(0), "outer", "host-a");
  const auto inner = tc.begin(sim::TimePoint::from_seconds(1), "inner", "host-a");
  const auto other = tc.begin(sim::TimePoint::from_seconds(1), "other", "host-b");
  EXPECT_EQ(tc.open_spans(), 3u);

  const auto* in = tc.find("inner");
  ASSERT_NE(in, nullptr);
  EXPECT_EQ(in->parent, outer);
  EXPECT_EQ(in->depth, 1u);

  const auto* ot = tc.find("other");  // separate track: no parent
  ASSERT_NE(ot, nullptr);
  EXPECT_EQ(ot->parent, kInvalidSpan);
  EXPECT_EQ(ot->depth, 0u);

  tc.end(inner, sim::TimePoint::from_seconds(2));
  // A new span after the child closed nests under the still-open outer.
  const auto second = tc.begin(sim::TimePoint::from_seconds(3), "second", "host-a");
  EXPECT_EQ(tc.find("second")->parent, outer);
  tc.end(second, sim::TimePoint::from_seconds(4));
  tc.end(outer, sim::TimePoint::from_seconds(5));
  tc.end(other, sim::TimePoint::from_seconds(5));
  EXPECT_EQ(tc.open_spans(), 0u);
  EXPECT_EQ(tc.find_all("inner").size(), 1u);

  // Ending twice is a no-op, not a corruption.
  tc.end(inner, sim::TimePoint::from_seconds(9));
  EXPECT_DOUBLE_EQ(tc.find("inner")->end.to_seconds(), 2.0);
}

TEST(Span, RaiiEndsAtCurrentSimTime) {
  sim::Simulation sim;
  sim.trace().enable();
  auto span = std::make_shared<Span>(sim, "boot", "vm-1", "vm");
  span->arg("mode", "reboot");
  EXPECT_TRUE(span->active());
  sim.schedule_after(sim::Duration::seconds(3), [span] { span->end(); });
  sim.run();
  EXPECT_FALSE(span->active());
  const auto* rec = sim.trace().find("boot");
  ASSERT_NE(rec, nullptr);
  EXPECT_FALSE(rec->open);
  EXPECT_DOUBLE_EQ((rec->end - rec->begin).to_seconds(), 3.0);
  ASSERT_EQ(rec->args.size(), 1u);
  EXPECT_EQ(rec->args[0].first, "mode");
}

TEST(Span, MoveTransfersOwnership) {
  sim::Simulation sim;
  sim.trace().enable();
  Span a{sim, "outer", "t"};
  Span b{std::move(a)};
  EXPECT_FALSE(a.active());  // NOLINT(bugprone-use-after-move): moved-from is inert
  EXPECT_TRUE(b.active());
  b.end();
  EXPECT_EQ(sim.trace().open_spans(), 0u);
}

TEST(TraceCollector, ChromeJsonIsWellFormedAndCoversEventKinds) {
  sim::Simulation sim;
  auto& tc = sim.trace();
  tc.enable();
  const auto s = tc.begin(sim::TimePoint::from_seconds(0), "closed", "host");
  tc.end(s, sim::TimePoint::from_seconds(1));
  tc.instant(sim::TimePoint::from_seconds(1), "marker", "host");
  tc.begin(sim::TimePoint::from_seconds(2), "left-open", "host");

  const auto js = tc.to_chrome_json();
  EXPECT_TRUE(json_valid(js)) << js;
  EXPECT_NE(js.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(js.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(js.find("\"ph\":\"X\""), std::string::npos);  // completed span
  EXPECT_NE(js.find("\"ph\":\"i\""), std::string::npos);  // instant
  EXPECT_NE(js.find("\"ph\":\"B\""), std::string::npos);  // still-open span
}

// ---------------------------------------------------------------------------
// Determinism: the same seed must produce byte-identical snapshots.

std::pair<std::string, std::string> run_instrumented_scenario(std::uint64_t seed) {
  sim::Simulation sim{seed};
  sim.trace().enable();
  auto& reg = sim.metrics();
  auto& ops = reg.counter("scenario.ops", {{"seed", std::to_string(seed)}});
  auto& lat = reg.histogram("scenario.lat_s", {0.0, 1.0, 32});
  for (int i = 0; i < 20; ++i) {
    sim.schedule_after(sim::Duration::seconds(sim.rng().uniform(0.0, 0.5)), [&, i] {
      ops.inc();
      lat.observe(sim.now().since_epoch().to_seconds());
      auto span = std::make_shared<Span>(sim, "op-" + std::to_string(i), "worker");
      sim.schedule_after(sim::Duration::millis(5), [span] { span->end(); });
    });
  }
  sim.run();
  reg.gauge("scenario.done").set(1.0);
  return {reg.to_json(), sim.trace().to_chrome_json()};
}

TEST(Determinism, IdenticalSeedsProduceIdenticalSnapshots) {
  const auto a = run_instrumented_scenario(42);
  const auto b = run_instrumented_scenario(42);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  EXPECT_TRUE(json_valid(a.first));
  EXPECT_TRUE(json_valid(a.second));

  const auto c = run_instrumented_scenario(43);
  EXPECT_NE(a.second, c.second);  // different seed, different timeline
}

// ---------------------------------------------------------------------------
// VMGRID_LOG_LEVEL is applied at Simulation construction.

TEST(Logger, LevelFromEnvironment) {
  ::setenv("VMGRID_LOG_LEVEL", "debug", 1);
  {
    sim::Simulation sim;
    EXPECT_EQ(sim.log().level(), sim::LogLevel::kDebug);
  }
  ::setenv("VMGRID_LOG_LEVEL", "OFF", 1);  // case-insensitive
  {
    sim::Simulation sim;
    EXPECT_EQ(sim.log().level(), sim::LogLevel::kOff);
  }
  ::setenv("VMGRID_LOG_LEVEL", "nonsense", 1);  // unrecognized: fallback
  {
    sim::Simulation sim;
    EXPECT_EQ(sim.log().level(), sim::LogLevel::kWarn);
  }
  ::unsetenv("VMGRID_LOG_LEVEL");
  {
    sim::Simulation sim;
    EXPECT_EQ(sim.log().level(), sim::LogLevel::kWarn);
  }
}

}  // namespace
}  // namespace vmgrid::obs
