#include <gtest/gtest.h>

#include <vector>

#include "model/fidelity.hpp"
#include "model/fluid.hpp"
#include "sim/simulation.hpp"

namespace vmgrid::model {
namespace {

struct FluidFixture : ::testing::Test {
  sim::Simulation sim{1};
  FluidArena arena{sim};
};

TEST_F(FluidFixture, SingleActionDrainsAtCapacity) {
  const ResourceId r = arena.add_resource(100.0);
  double done_at = -1.0;
  arena.start({r}, 100.0, 0.0, 1.0, [&] { done_at = sim.now().to_seconds(); });
  sim.run();
  EXPECT_NEAR(done_at, 1.0, 1e-8);
  EXPECT_EQ(arena.actions_completed(), 1u);
  EXPECT_EQ(arena.active_actions(), 0u);
}

TEST_F(FluidFixture, TwoActionsShareMaxMinThenRedistribute) {
  const ResourceId r = arena.add_resource(100.0);
  double a_done = -1.0, b_done = -1.0;
  arena.start({r}, 50.0, 0.0, 1.0, [&] { a_done = sim.now().to_seconds(); });
  arena.start({r}, 100.0, 0.0, 1.0, [&] { b_done = sim.now().to_seconds(); });
  sim.run();
  // Both at 50 until A drains (t=1); B then takes the full pipe for its
  // remaining 50 units: 1.0 + 0.5.
  EXPECT_NEAR(a_done, 1.0, 1e-8);
  EXPECT_NEAR(b_done, 1.5, 1e-8);
}

TEST_F(FluidFixture, WeightsScaleTheFairShare) {
  const ResourceId r = arena.add_resource(90.0);
  const ActionId heavy = arena.start({r}, 1e9, 0.0, 2.0, nullptr);
  const ActionId light = arena.start({r}, 1e9, 0.0, 1.0, nullptr);
  EXPECT_NEAR(arena.rate(heavy), 60.0, 1e-9);
  EXPECT_NEAR(arena.rate(light), 30.0, 1e-9);
}

TEST_F(FluidFixture, UncontendedCappedActionsSkipTheSolver) {
  // Three capped flows fitting inside the pipe: every one takes the
  // uncontended fast path (rate = cap), so the solver never runs.
  const ResourceId r = arena.add_resource(100.0);
  double done = -1.0;
  arena.start({r}, 30.0, 30.0, 1.0, nullptr);
  arena.start({r}, 30.0, 30.0, 1.0, nullptr);
  arena.start({r}, 30.0, 30.0, 1.0, [&] { done = sim.now().to_seconds(); });
  EXPECT_EQ(arena.solves(), 0u);
  sim.run();
  EXPECT_NEAR(done, 1.0, 1e-8);
  EXPECT_EQ(arena.solves(), 0u);  // completions from uncontended pipes too
  EXPECT_EQ(arena.actions_completed(), 3u);
}

TEST_F(FluidFixture, OverflowingCapsEngageTheSolver) {
  const ResourceId r = arena.add_resource(100.0);
  const ActionId a = arena.start({r}, 1e9, 80.0, 1.0, nullptr);
  EXPECT_EQ(arena.solves(), 0u);
  EXPECT_NEAR(arena.rate(a), 80.0, 1e-9);
  const ActionId b = arena.start({r}, 1e9, 80.0, 1.0, nullptr);
  EXPECT_GT(arena.solves(), 0u);  // 160 of demand over a 100 pipe
  EXPECT_NEAR(arena.rate(a), 50.0, 1e-9);
  EXPECT_NEAR(arena.rate(b), 50.0, 1e-9);
}

TEST_F(FluidFixture, CancelReturnsShareToSurvivors) {
  const ResourceId r = arena.add_resource(100.0);
  const ActionId a = arena.start({r}, 1e9, 0.0, 1.0, nullptr);
  const ActionId b = arena.start({r}, 1e9, 0.0, 1.0, nullptr);
  EXPECT_NEAR(arena.rate(a), 50.0, 1e-9);
  bool b_fired = false;
  arena.cancel(b);
  EXPECT_FALSE(arena.active(b));
  EXPECT_NEAR(arena.rate(a), 100.0, 1e-9);
  sim.run();
  EXPECT_FALSE(b_fired);  // cancelled actions never call back
}

TEST_F(FluidFixture, CapacityChangeRescalesInFlightActions) {
  const ResourceId r = arena.add_resource(100.0);
  double done = -1.0;
  arena.start({r}, 100.0, 0.0, 1.0, [&] { done = sim.now().to_seconds(); });
  sim.schedule_at(sim::TimePoint::from_seconds(0.5),
                  [&] { arena.set_capacity(r, 50.0); });
  sim.run();
  // 50 units at rate 100, then 50 at rate 50: 0.5 + 1.0.
  EXPECT_NEAR(done, 1.5, 1e-8);
}

TEST_F(FluidFixture, BottleneckedFlowLeavesSlackToOthers) {
  // A path flow capped by a thin link shares a fat link with a local
  // flow: max-min gives the local flow all the slack.
  const ResourceId thin = arena.add_resource(10.0);
  const ResourceId fat = arena.add_resource(100.0);
  const ActionId path = arena.start({thin, fat}, 1e9, 0.0, 1.0, nullptr);
  const ActionId local = arena.start({fat}, 1e9, 0.0, 1.0, nullptr);
  EXPECT_NEAR(arena.rate(path), 10.0, 1e-9);
  EXPECT_NEAR(arena.rate(local), 90.0, 1e-9);
}

TEST_F(FluidFixture, DoneCallbackCanStartTheNextAction) {
  const ResourceId r = arena.add_resource(10.0);
  double second_done = -1.0;
  arena.start({r}, 10.0, 0.0, 1.0, [&] {
    arena.start({r}, 10.0, 0.0, 1.0,
                [&] { second_done = sim.now().to_seconds(); });
  });
  sim.run();
  EXPECT_NEAR(second_done, 2.0, 1e-8);
  EXPECT_EQ(arena.actions_completed(), 2u);
}

TEST_F(FluidFixture, SolveAtTheExactFinishInstantStillCompletes) {
  // The completion timer is padded +1ns past the ideal finish. A solve
  // landing inside that pad (here: an uncapped newcomer arriving at the
  // exact finish instant) advances the draining action to zero remaining
  // and bumps its serial, invalidating the armed heap entry — the
  // completion must be re-entered, not silently parked.
  const ResourceId r = arena.add_resource(100.0);
  double a_done = -1.0;
  arena.start({r}, 100.0, 0.0, 1.0, [&] { a_done = sim.now().to_seconds(); });
  sim.schedule_at(sim::TimePoint::from_seconds(1.0),
                  [&] { arena.start({r}, 100.0, 0.0, 1.0, nullptr); });
  sim.run();
  EXPECT_NEAR(a_done, 1.0, 1e-8);
  EXPECT_EQ(arena.actions_completed(), 2u);
  EXPECT_EQ(arena.active_actions(), 0u);
}

TEST_F(FluidFixture, RemainingIsLazilyAdvanced) {
  const ResourceId r = arena.add_resource(10.0);
  const ActionId a = arena.start({r}, 10.0, 0.0, 1.0, nullptr);
  sim.schedule_at(sim::TimePoint::from_seconds(0.25), [&] {
    EXPECT_NEAR(arena.remaining(a), 7.5, 1e-9);
  });
  sim.run();
  EXPECT_FALSE(arena.active(a));
}

TEST(Fidelity, EnvParsesAndDefaultsToExact) {
  // The suite runs without VMGRID_FIDELITY set, so construction-time
  // sniffing must land on the byte-identical tier.
  EXPECT_EQ(fidelity_from_env(), Fidelity::kExact);
}

}  // namespace
}  // namespace vmgrid::model
