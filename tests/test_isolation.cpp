// Isolation invariants (§2.2 "Security and isolation", "Administrator
// privileges"): what one VM does must not leak into another VM or the
// host beyond the resource-control envelope. These are behavioural
// properties of the substrate, checked end to end.

#include <gtest/gtest.h>

#include <optional>

#include "middleware/testbed.hpp"
#include "workload/spec_benchmarks.hpp"

namespace vmgrid {
namespace {

using namespace middleware;

struct IsolationFixture : ::testing::Test {
  testbed::StartupTestbed tb{501};

  vm::VirtualMachine* start_vm(const std::string& name, StateAccess access =
                                                            StateAccess::kNonPersistentLocal) {
    InstantiateOptions opts;
    opts.config = testbed::paper_vm(name);
    opts.image = testbed::paper_image();
    opts.mode = VmStartMode::kWarmRestore;
    opts.access = access;
    opts.image_server_node = tb.images->node();
    vm::VirtualMachine* out = nullptr;
    tb.compute->instantiate(opts,
                            [&](vm::VirtualMachine* v, InstantiationStats) { out = v; });
    tb.grid->run();
    return out;
  }
};

TEST_F(IsolationFixture, WritesStayInThePrivateDiff) {
  // Two non-persistent VMs of the same base image: one writes heavily to
  // its virtual disk; the other's view of the shared base is untouched.
  auto* writer = start_vm("writer");
  auto* reader = start_vm("reader");
  ASSERT_NE(writer, nullptr);
  ASSERT_NE(reader, nullptr);

  workload::TaskSpec dirty = workload::micro_test_task(5.0);
  dirty.io_write_bytes = 64ull << 20;
  dirty.phases = 8;
  std::optional<vm::TaskResult> done;
  writer->run_task(dirty, [&](vm::TaskResult r) { done = std::move(r); });
  tb.grid->run();
  ASSERT_TRUE(done && done->ok());

  // The shared base image is pristine: every block still at version 0.
  auto& fs = tb.compute->host().fs();
  const auto base = testbed::paper_image().disk_file();
  for (std::uint64_t b = 0; b < 64; ++b) {
    ASSERT_EQ(fs.block_version(base, b), 0u) << "base image block " << b << " dirtied";
  }
  // The writer's diff holds the writes; the reader's diff is empty.
  EXPECT_GT(fs.size("writer.diff").value_or(0), 0u);
  EXPECT_EQ(fs.size("reader.diff").value_or(0), 0u);
}

TEST_F(IsolationFixture, RootInOneGuestCannotTouchAnotherGuestsState) {
  // "It is possible to grant root privileges to untrusted grid
  // applications because the actions of malicious users are confined to
  // their VMs": a guest's reachable storage is exactly its own VmStorage
  // accessors. Verify the object graph enforces that: the two VMs share
  // no accessor, and writes through one never bump versions in the
  // other's diff namespace.
  auto* a = start_vm("guest-a");
  auto* b = start_vm("guest-b");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(&a->disk(), &b->disk());

  workload::TaskSpec spec = workload::micro_test_task(2.0);
  spec.io_write_bytes = 8ull << 20;
  spec.phases = 4;
  std::optional<vm::TaskResult> done;
  a->run_task(spec, [&](vm::TaskResult r) { done = std::move(r); });
  tb.grid->run();
  ASSERT_TRUE(done && done->ok());
  auto& fs = tb.compute->host().fs();
  EXPECT_GT(fs.size("guest-a.diff").value_or(0), 0u);
  EXPECT_EQ(fs.size("guest-b.diff").value_or(0), 0u);
}

TEST_F(IsolationFixture, ResourceControlBoundsCrossVmInterference) {
  // A runaway guest saturating its VM cannot push a capped neighbour
  // below its configured share.
  auto* greedy = start_vm("greedy");
  auto* victim = start_vm("victim");
  ASSERT_NE(greedy, nullptr);
  ASSERT_NE(victim, nullptr);

  // The greedy VM runs unbounded background load.
  greedy->play_load(host::LoadTrace::constant(sim::Duration::minutes(60), 4.0));

  // The victim runs a measured task; on a dual-CPU host the GPS floor
  // for 1-vs-many is its fair share, and the VMM contention model adds
  // only bounded overhead.
  auto spec = workload::micro_test_task(30.0);
  std::optional<vm::TaskResult> result;
  victim->run_task(spec, [&](vm::TaskResult r) { result = std::move(r); });
  tb.grid->run_for(sim::Duration::minutes(10));
  ASSERT_TRUE(result.has_value());
  // GPS fairness is the isolation floor: the victim task competes with
  // the greedy VM's 4 saturated guest processes on 2 CPUs, so its fair
  // share is 2/5 of a CPU — it must get no less (modulo bounded VMM
  // overhead), no matter how hard the neighbour pushes.
  const double fair_share_wall = 30.0 / (2.0 / 5.0);
  EXPECT_LT(result->wall.to_seconds(), fair_share_wall * 1.2);
  EXPECT_GT(result->wall.to_seconds(), fair_share_wall * 0.9);
}

TEST_F(IsolationFixture, SharedImageCacheLeaksNoWriteData) {
  // Two VFS-backed VMs share the host's L2 image cache for the read-only
  // base — but writes bypass it into private local diffs, so cached
  // base blocks never reflect one guest's writes.
  auto* a = start_vm("vfs-a", StateAccess::kNonPersistentVfs);
  auto* b = start_vm("vfs-b", StateAccess::kNonPersistentVfs);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);

  workload::TaskSpec w = workload::micro_test_task(2.0);
  w.io_write_bytes = 4ull << 20;
  w.phases = 2;
  std::optional<vm::TaskResult> done;
  a->run_task(w, [&](vm::TaskResult r) { done = std::move(r); });
  tb.grid->run();
  ASSERT_TRUE(done && done->ok());

  // The image server's copy of the base is untouched.
  auto& ifs = tb.images->fs();
  const auto base = testbed::paper_image().disk_file();
  for (std::uint64_t blk = 0; blk < 64; ++blk) {
    ASSERT_EQ(ifs.block_version(base, blk), 0u);
  }
}

TEST_F(IsolationFixture, VmCrashConfinement) {
  // Destroying one VM mid-work (the "compromised guest gets killed"
  // case) leaves the neighbour VM and its task untouched.
  auto* doomed = start_vm("doomed");
  auto* survivor = start_vm("survivor");
  ASSERT_NE(doomed, nullptr);
  ASSERT_NE(survivor, nullptr);

  bool doomed_cb = false;
  doomed->run_task(workload::micro_test_task(100.0),
                   [&](vm::TaskResult) { doomed_cb = true; });
  std::optional<vm::TaskResult> survivor_result;
  survivor->run_task(workload::micro_test_task(20.0),
                     [&](vm::TaskResult r) { survivor_result = std::move(r); });
  tb.grid->run_for(sim::Duration::seconds(5));
  tb.compute->destroy_vm(*doomed);
  tb.grid->run();
  EXPECT_FALSE(doomed_cb);  // aborted, never "completed"
  ASSERT_TRUE(survivor_result.has_value());
  EXPECT_TRUE(survivor_result->ok());
}

}  // namespace
}  // namespace vmgrid
