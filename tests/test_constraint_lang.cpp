#include <gtest/gtest.h>

#include "host/schedulers.hpp"
#include "middleware/constraint_lang.hpp"
#include "middleware/schedule_compiler.hpp"
#include "sim/simulation.hpp"

namespace vmgrid::middleware {
namespace {

TEST(ConstraintLang, ParsesFullPolicy) {
  const auto result = parse_policy(R"(
    # desktop owner policy
    policy desktop {
      scheduler rt;
      rt grid-vm slice=10ms period=40ms;
      reserve interactive 0.5;
      shares batch 300;
      weight backup 2.5;
      nice indexer 10;
      dutycycle guest 0.25 period=2s;
      cap guest 0.8;
      limit guest_total 0.6;
    }
  )");
  ASSERT_TRUE(result.ok()) << (result.errors.empty() ? "" : result.errors[0].message);
  const auto& p = *result.policy;
  EXPECT_EQ(p.name, "desktop");
  EXPECT_EQ(p.scheduler, SchedulerKind::kRealTime);
  ASSERT_NE(p.find("grid-vm"), nullptr);
  EXPECT_NEAR(*p.find("grid-vm")->reservation, 0.25, 1e-12);
  EXPECT_NEAR(*p.find("interactive")->reservation, 0.5, 1e-12);
  EXPECT_EQ(*p.find("batch")->tickets, 300u);
  EXPECT_NEAR(*p.find("backup")->weight, 2.5, 1e-12);
  EXPECT_EQ(*p.find("indexer")->nice, 10);
  EXPECT_NEAR(*p.find("guest")->duty, 0.25, 1e-12);
  EXPECT_EQ(p.find("guest")->duty_period, sim::Duration::seconds(2));
  EXPECT_NEAR(*p.find("guest")->cap, 0.8, 1e-12);
  EXPECT_NEAR(*p.guest_total_limit, 0.6, 1e-12);
}

TEST(ConstraintLang, AnonymousPolicyAndComments) {
  const auto result = parse_policy("policy { scheduler wfq; } # trailing comment");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.policy->name.empty());
  EXPECT_EQ(result.policy->scheduler, SchedulerKind::kWfq);
}

TEST(ConstraintLang, MultipleRulesForOneEntityMerge) {
  const auto result = parse_policy(R"(policy {
    scheduler lottery;
    shares vm1 200;
    cap vm1 0.5;
  })");
  ASSERT_TRUE(result.ok());
  const auto* r = result.policy->find("vm1");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(*r->tickets, 200u);
  EXPECT_NEAR(*r->cap, 0.5, 1e-12);
}

struct BadPolicyCase {
  const char* source;
  const char* expected_fragment;
};

class ConstraintLangErrors : public ::testing::TestWithParam<BadPolicyCase> {};

TEST_P(ConstraintLangErrors, RejectsWithMessage) {
  const auto result = parse_policy(GetParam().source);
  ASSERT_FALSE(result.ok());
  ASSERT_FALSE(result.errors.empty());
  bool found = false;
  for (const auto& e : result.errors) {
    if (e.message.find(GetParam().expected_fragment) != std::string::npos) found = true;
  }
  EXPECT_TRUE(found) << "first error: " << result.errors[0].message;
}

INSTANTIATE_TEST_SUITE_P(
    BadPolicies, ConstraintLangErrors,
    ::testing::Values(
        BadPolicyCase{"policy { scheduler bogus; }", "unknown scheduler"},
        BadPolicyCase{"policy { frobnicate x 1; }", "unknown statement"},
        BadPolicyCase{"policy { reserve vm 1.5; }", "out of range"},
        BadPolicyCase{"policy { reserve vm abc; }", "not a number"},
        BadPolicyCase{"policy { rt vm slice=10ms; }", "requires slice= and period="},
        BadPolicyCase{"policy { rt vm slice=50ms period=10ms; }",
                      "slice must not exceed period"},
        BadPolicyCase{"policy { dutycycle vm 3; }", "fraction must be in [0, 1]"},
        BadPolicyCase{"policy { limit other 0.5; }", "only 'guest_total'"},
        BadPolicyCase{"policy { scheduler wfq; ", "expected '}'"},
        BadPolicyCase{"nonsense", "expected 'policy'"},
        BadPolicyCase{"policy { nice vm 99; }", "out of range"}));

TEST(ConstraintLang, ReportsLineNumbers) {
  const auto result = parse_policy("policy {\n scheduler wfq;\n bogus x;\n}");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.errors[0].line, 3u);
}

TEST(ScheduleCompiler, CompilesReservationsUnderBound) {
  const auto parsed = parse_policy(R"(policy {
    scheduler rt;
    rt vm1 slice=20ms period=100ms;
    reserve vm2 0.4;
    weight vm2 2;
  })");
  ASSERT_TRUE(parsed.ok());
  const auto compiled = compile_policy(*parsed.policy, 2.0);
  EXPECT_EQ(compiled.scheduler, SchedulerKind::kRealTime);
  EXPECT_NEAR(compiled.total_reservation, 0.6, 1e-12);
  ASSERT_NE(compiled.find("vm1"), nullptr);
  EXPECT_NEAR(compiled.find("vm1")->attrs.reservation, 0.2, 1e-12);
  EXPECT_NEAR(compiled.find("vm2")->attrs.weight, 2.0, 1e-12);
  EXPECT_NE(compiled.make_scheduler(), nullptr);
  EXPECT_EQ(compiled.make_scheduler()->name(), "real-time");
}

TEST(ScheduleCompiler, AdmissionControlRejectsOversubscription) {
  const auto parsed = parse_policy(R"(policy {
    scheduler rt;
    reserve a 0.9;
    reserve b 0.9;
  })");
  ASSERT_TRUE(parsed.ok());
  EXPECT_THROW(compile_policy(*parsed.policy, 1.0), CompileError);
  // Plenty of room on a 4-way host.
  EXPECT_NO_THROW(compile_policy(*parsed.policy, 4.0));
}

TEST(ScheduleCompiler, ReservationRequiresRtScheduler) {
  const auto parsed = parse_policy("policy { scheduler wfq; reserve a 0.5; }");
  ASSERT_TRUE(parsed.ok());
  EXPECT_THROW(compile_policy(*parsed.policy, 2.0), CompileError);
}

TEST(ScheduleCompiler, GuestTotalLimitChecked) {
  const auto parsed = parse_policy(R"(policy {
    scheduler rt;
    reserve a 0.8;
    limit guest_total 0.3;
  })");
  ASSERT_TRUE(parsed.ok());
  EXPECT_THROW(compile_policy(*parsed.policy, 1.0), CompileError);
}

TEST(ScheduleEnforcer, AppliesAttrsAndDutyCycle) {
  sim::Simulation sim;
  host::CpuEngine engine{sim, 1.0, std::make_unique<host::FairShareScheduler>()};
  const auto parsed = parse_policy(R"(policy {
    scheduler wfq;
    weight grid 1;
    weight local 3;
    dutycycle throttled 0.5 period=1s;
  })");
  ASSERT_TRUE(parsed.ok());
  ScheduleEnforcer enforcer{sim, engine, compile_policy(*parsed.policy, 1.0)};
  EXPECT_EQ(engine.scheduler().name(), "wfq");

  auto grid_pid = engine.add("grid", {}, host::CpuEngine::kInfiniteWork);
  auto local_pid = engine.add("local", {}, host::CpuEngine::kInfiniteWork);
  enforcer.bind("grid", grid_pid);
  enforcer.bind("local", local_pid);
  EXPECT_THROW(enforcer.bind("unknown", grid_pid), CompileError);

  sim.run_until(sim::TimePoint::from_seconds(4));
  // WFQ 1:3 split.
  EXPECT_NEAR(engine.cpu_time_used(grid_pid), 1.0, 1e-6);
  EXPECT_NEAR(engine.cpu_time_used(local_pid), 3.0, 1e-6);

  auto throttled = engine.add("throttled", {}, host::CpuEngine::kInfiniteWork);
  enforcer.bind("throttled", throttled);
  const auto before = engine.cpu_time_used(throttled);
  sim.run_until(sim::TimePoint::from_seconds(24));
  // Duty cycle 0.5 within a 3-way weighted competition: share well below
  // an un-throttled equal competitor.
  const double used = engine.cpu_time_used(throttled) - before;
  EXPECT_LT(used, 0.5 * 20.0);
  enforcer.unbind("throttled");
}

}  // namespace
}  // namespace vmgrid::middleware
