#include <gtest/gtest.h>

#include <cmath>

#include "host/schedulers.hpp"
#include "host/trace_playback.hpp"
#include "rps/predictors.hpp"
#include "rps/runtime_predictor.hpp"
#include "rps/sensor.hpp"
#include "sim/simulation.hpp"

namespace vmgrid::rps {
namespace {

TimeSeries series_from(const std::vector<double>& xs) {
  TimeSeries s{xs.size() + 2};
  for (std::size_t i = 0; i < xs.size(); ++i) {
    s.append(sim::TimePoint::from_seconds(static_cast<double>(i)), xs[i]);
  }
  return s;
}

TEST(TimeSeriesTest, AppendTailAndMoments) {
  auto s = series_from({1, 2, 3, 4});
  EXPECT_EQ(s.size(), 4u);
  EXPECT_DOUBLE_EQ(s.last(), 4.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  const auto tail = s.tail(2);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_DOUBLE_EQ(tail[0], 3.0);
  EXPECT_DOUBLE_EQ(tail[1], 4.0);
  EXPECT_GT(s.variance(), 0.0);
}

TEST(TimeSeriesTest, CapacityEvictsOldestHalf) {
  TimeSeries s{8};
  for (int i = 0; i < 20; ++i) {
    s.append(sim::TimePoint::from_seconds(i), static_cast<double>(i));
  }
  EXPECT_LE(s.size(), 8u);
  EXPECT_DOUBLE_EQ(s.last(), 19.0);
}

TEST(TimeSeriesTest, AutocovarianceOfConstantIsZero) {
  auto s = series_from({5, 5, 5, 5, 5});
  EXPECT_NEAR(s.autocovariance(0), 0.0, 1e-12);
  EXPECT_NEAR(s.autocovariance(1), 0.0, 1e-12);
}

TEST(Predictors, LastValueTracksCurrent) {
  LastValuePredictor p;
  EXPECT_DOUBLE_EQ(p.predict(series_from({1, 2, 9}), 1), 9.0);
}

TEST(Predictors, MovingAverageSmooths) {
  MovingAveragePredictor p{4};
  EXPECT_DOUBLE_EQ(p.predict(series_from({0, 0, 4, 4, 4, 4}), 1), 4.0);
  EXPECT_DOUBLE_EQ(p.predict(series_from({8, 0, 0, 0, 0}), 1), 0.0);
}

TEST(Predictors, EwmaWeighsRecentMore) {
  EwmaPredictor p{0.5};
  const double est = p.predict(series_from({0, 0, 0, 0, 10}), 1);
  EXPECT_GT(est, 4.0);
  EXPECT_LT(est, 10.0);
}

TEST(Predictors, ArFitRecoversAr1Coefficient) {
  // Synthesize AR(1) with phi = 0.8.
  sim::Rng rng{13};
  std::vector<double> xs;
  double x = 0.0;
  for (int i = 0; i < 4000; ++i) {
    x = 0.8 * x + rng.normal(0.0, 1.0);
    xs.push_back(x);
  }
  ArPredictor p{1};
  const auto coef = p.fit(series_from(xs));
  ASSERT_EQ(coef.size(), 1u);
  EXPECT_NEAR(coef[0], 0.8, 0.05);
}

TEST(Predictors, ArBeatsMeanOnCorrelatedLoad) {
  sim::Rng rng{14};
  std::vector<double> xs;
  double x = 1.0;
  for (int i = 0; i < 3000; ++i) {
    x = 1.0 + 0.95 * (x - 1.0) + rng.normal(0.0, 0.1);
    xs.push_back(std::max(0.0, x));
  }
  ArPredictor ar{8};
  MovingAveragePredictor ma{64};
  EXPECT_LT(evaluate_mse(ar, xs), evaluate_mse(ma, xs));
}

TEST(Predictors, LastIsStrongOnSelfSimilarLoad) {
  // Dinda's well-known result: LAST is hard to beat at one-step horizon.
  sim::Rng rng{15};
  std::vector<double> xs;
  double x = 0.5;
  for (int i = 0; i < 2000; ++i) {
    x = 0.5 + 0.98 * (x - 0.5) + rng.normal(0.0, 0.05);
    xs.push_back(std::max(0.0, x));
  }
  LastValuePredictor last;
  MovingAveragePredictor ma{128};
  EXPECT_LT(evaluate_mse(last, xs), evaluate_mse(ma, xs));
}

TEST(Predictors, EmptySeriesPredictZero) {
  TimeSeries s{4};
  EXPECT_DOUBLE_EQ(LastValuePredictor{}.predict(s, 1), 0.0);
  EXPECT_DOUBLE_EQ(ArPredictor{4}.predict(s, 1), 0.0);
  EXPECT_DOUBLE_EQ(EwmaPredictor{}.predict(s, 1), 0.0);
}

TEST(SensorTest, SamplesEngineDemandPeriodically) {
  sim::Simulation sim{16};
  host::CpuEngine engine{sim, 2.0, std::make_unique<host::FairShareScheduler>()};
  HostLoadSensor sensor{sim, engine, sim::Duration::seconds(1)};
  sensor.start();
  engine.add("bg", {}, host::CpuEngine::kInfiniteWork);
  sim.run_until(sim::TimePoint::from_seconds(10.5));
  sensor.stop();
  EXPECT_GE(sensor.series().size(), 10u);
  EXPECT_DOUBLE_EQ(sensor.series().last(), 1.0);
  const auto n = sensor.series().size();
  sim.run_until(sim::TimePoint::from_seconds(20));
  EXPECT_EQ(sensor.series().size(), n);  // stopped
}

TEST(SensorTest, OnSampleHookFires) {
  sim::Simulation sim{17};
  host::CpuEngine engine{sim, 1.0, std::make_unique<host::FairShareScheduler>()};
  HostLoadSensor sensor{sim, engine, sim::Duration::seconds(1)};
  int called = 0;
  sensor.set_on_sample([&](double) { ++called; });
  sensor.start();
  sim.run_until(sim::TimePoint::from_seconds(5.5));
  EXPECT_GE(called, 5);
}

TEST(RuntimePredictorTest, SharesAndRuntimesFollowLoad) {
  RunningTimePredictor rp{std::make_shared<LastValuePredictor>(), 1.0};
  // Idle host: full share, runtime == work.
  EXPECT_NEAR(rp.predict_runtime(series_from({0.0, 0.0}), 100.0), 100.0, 1e-9);
  // Load 1: fair share is 1/2 on a single CPU.
  EXPECT_NEAR(rp.predict_runtime(series_from({1.0, 1.0}), 100.0), 200.0, 1e-9);
  // Dual CPU absorbs one competitor.
  RunningTimePredictor rp2{std::make_shared<LastValuePredictor>(), 2.0};
  EXPECT_NEAR(rp2.predict_runtime(series_from({1.0, 1.0}), 100.0), 100.0, 1e-9);
}

TEST(RuntimePredictorTest, PredictionMatchesSimulatedOutcome) {
  // Predict the runtime of a task on a host with steady background load,
  // then actually run it and compare.
  sim::Simulation sim{18};
  host::CpuEngine engine{sim, 1.0, std::make_unique<host::FairShareScheduler>()};
  host::TracePlayback pb{sim, engine,
                         host::LoadTrace::constant(sim::Duration::seconds(500), 1.0)};
  pb.start();
  HostLoadSensor sensor{sim, engine, sim::Duration::seconds(1)};
  sensor.start();
  sim.run_until(sim::TimePoint::from_seconds(10));

  RunningTimePredictor rp{std::make_shared<LastValuePredictor>(), 1.0};
  const double predicted = rp.predict_runtime(sensor.series(), 30.0);

  double actual = -1;
  const auto t0 = sim.now();
  engine.add("job", {}, 30.0, [&] { actual = (sim.now() - t0).to_seconds(); });
  sim.run_until(sim::TimePoint::from_seconds(400));
  ASSERT_GT(actual, 0.0);
  EXPECT_NEAR(predicted, actual, actual * 0.1);
}

}  // namespace
}  // namespace vmgrid::rps
