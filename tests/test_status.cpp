// The grid-wide typed error model: Status value semantics, origin tags,
// cause chains and their rendering, Result<T>, the recovery-policy
// helpers, the lossless RpcStatus mapping, and the errors_total export.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/status.hpp"
#include "net/rpc.hpp"
#include "obs/metrics.hpp"

namespace vmgrid {
namespace {

TEST(Status, DefaultIsOkAndCheap) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_TRUE(st.message().empty());
  EXPECT_TRUE(st.subsystem().empty());
  EXPECT_EQ(st.to_string(), "OK");
}

TEST(Status, ExplicitOkCodeDropsTheMessage) {
  Status st{StatusCode::kOk, "should vanish"};
  EXPECT_TRUE(st.ok());
  EXPECT_TRUE(st.message().empty());
}

TEST(Status, CarriesCodeMessageAndOrigin) {
  Status st = TimeoutError("deadline expired").at("rpc", "call");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kTimeout);
  EXPECT_EQ(st.message(), "deadline expired");
  EXPECT_EQ(st.subsystem(), "rpc");
  EXPECT_EQ(st.op(), "call");
}

TEST(Status, FactoriesProduceTheirCodes) {
  EXPECT_EQ(TimeoutError("x").code(), StatusCode::kTimeout);
  EXPECT_EQ(OverloadedError("x").code(), StatusCode::kOverloaded);
  EXPECT_EQ(UnavailableError("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(InvalidArgumentError("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(FailedPreconditionError("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(AbortedError("x").code(), StatusCode::kAborted);
  EXPECT_EQ(ResourceExhaustedError("x").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_TRUE(OkStatus().ok());
}

TEST(Status, CauseChainWalksToTheRoot) {
  Status rpc = TimeoutError("timeout after 3 attempts").at("rpc", "gram.submit");
  Status gram =
      Status{rpc.code(), "dispatch timeout"}.at("gram", "globusrun").caused_by(rpc);
  Status session = Status{gram.code(), "re-instantiation failed"}
                       .at("session", "failover")
                       .caused_by(gram);

  EXPECT_EQ(session.code(), StatusCode::kTimeout);  // code propagates verbatim
  EXPECT_EQ(session.cause().subsystem(), "gram");
  EXPECT_EQ(session.cause().cause().subsystem(), "rpc");
  EXPECT_TRUE(session.cause().cause().cause().ok());  // chain ends

  const Status root = session.root_cause();
  EXPECT_EQ(root.subsystem(), "rpc");
  EXPECT_EQ(root.op(), "gram.submit");
  EXPECT_EQ(root.code(), StatusCode::kTimeout);
}

TEST(Status, RootCauseOfLeafIsItself) {
  Status st = NotFoundError("no such file").at("gridftp");
  EXPECT_EQ(st.root_cause().subsystem(), "gridftp");
  EXPECT_EQ(st.root_cause().code(), StatusCode::kNotFound);
}

TEST(Status, RendersTheWholeChain) {
  Status rpc = TimeoutError("timeout after 3 attempts").at("rpc");
  Status gram = Status{rpc.code(), "dispatch timeout"}.at("gram").caused_by(rpc);
  Status session = Status{gram.code(), "re-instantiation failed"}
                       .at("session")
                       .caused_by(gram);
  EXPECT_EQ(session.to_string(),
            "session: re-instantiation failed ← gram: dispatch timeout "
            "← rpc: timeout after 3 attempts");
}

TEST(Status, RenderingIncludesOpWhenTagged) {
  Status st = TimeoutError("deadline expired").at("rpc", "nfs.read");
  EXPECT_EQ(st.to_string(), "rpc.nfs.read: deadline expired");
}

TEST(Status, CopiesShareTheChainCheaply) {
  Status a = UnavailableError("down").at("x").caused_by(TimeoutError("t").at("y"));
  Status b = a;  // shallow copy of the immutable rep
  EXPECT_EQ(b.to_string(), a.to_string());
  EXPECT_EQ(b.root_cause().subsystem(), "y");
}

TEST(StatusPolicy, RetryableMatchesTransientCodes) {
  EXPECT_TRUE(retryable(StatusCode::kTimeout));
  EXPECT_TRUE(retryable(StatusCode::kOverloaded));
  EXPECT_TRUE(retryable(StatusCode::kUnavailable));
  EXPECT_FALSE(retryable(StatusCode::kOk));
  EXPECT_FALSE(retryable(StatusCode::kNotFound));
  EXPECT_FALSE(retryable(StatusCode::kInvalidArgument));
  EXPECT_FALSE(retryable(StatusCode::kFailedPrecondition));
  EXPECT_FALSE(retryable(StatusCode::kAborted));
  EXPECT_FALSE(retryable(StatusCode::kResourceExhausted));
  EXPECT_FALSE(retryable(StatusCode::kInternal));
}

TEST(StatusPolicy, ShedPriorityIsCongestionOnly) {
  EXPECT_TRUE(shed_priority(StatusCode::kTimeout));
  EXPECT_TRUE(shed_priority(StatusCode::kOverloaded));
  EXPECT_TRUE(shed_priority(StatusCode::kResourceExhausted));
  // A dead peer must not open a breaker against a healthy server.
  EXPECT_FALSE(shed_priority(StatusCode::kUnavailable));
  EXPECT_FALSE(shed_priority(StatusCode::kNotFound));
  EXPECT_FALSE(shed_priority(StatusCode::kOk));
}

TEST(StatusPolicy, RpcStatusMapsLosslesslyAndPreservesRetryability) {
  using net::RpcStatus;
  EXPECT_EQ(net::to_code(RpcStatus::kOk), StatusCode::kOk);
  EXPECT_EQ(net::to_code(RpcStatus::kConnectionRefused), StatusCode::kUnavailable);
  EXPECT_EQ(net::to_code(RpcStatus::kNoSuchMethod), StatusCode::kNotFound);
  EXPECT_EQ(net::to_code(RpcStatus::kUnreachable), StatusCode::kUnavailable);
  EXPECT_EQ(net::to_code(RpcStatus::kTimeout), StatusCode::kTimeout);
  EXPECT_EQ(net::to_code(RpcStatus::kServerError), StatusCode::kInternal);
  EXPECT_EQ(net::to_code(RpcStatus::kOverloaded), StatusCode::kOverloaded);
  // The fabric's retry predicate is now defined through the code mapping.
  for (auto s : {RpcStatus::kOk, RpcStatus::kConnectionRefused,
                 RpcStatus::kNoSuchMethod, RpcStatus::kUnreachable,
                 RpcStatus::kTimeout, RpcStatus::kServerError,
                 RpcStatus::kOverloaded}) {
    EXPECT_EQ(net::rpc_status_retryable(s), retryable(net::to_code(s)));
  }
}

TEST(StatusPolicy, RpcResponseToStatusTagsTheRpcOrigin) {
  net::RpcResponse resp;
  resp.status = net::RpcStatus::kTimeout;
  resp.error = "deadline expired before reply";
  Status st = net::to_status(resp, "nfs.read");
  EXPECT_EQ(st.code(), StatusCode::kTimeout);
  EXPECT_EQ(st.subsystem(), "rpc");
  EXPECT_EQ(st.op(), "nfs.read");
  EXPECT_EQ(st.message(), "deadline expired before reply");

  net::RpcResponse ok;
  EXPECT_TRUE(net::to_status(ok, "x").ok());

  // An empty transport detail falls back to the status name.
  net::RpcResponse bare;
  bare.status = net::RpcStatus::kUnreachable;
  EXPECT_EQ(net::to_status(bare, "x").message(), "unreachable");
}

TEST(ResultT, HoldsValueOrStatus) {
  Result<int> good = 42;
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);
  EXPECT_EQ(good.value_or(-1), 42);

  Result<int> bad = NotFoundError("missing").at("archive");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(bad.value_or(-1), -1);
}

TEST(ResultT, OkStatusConstructionBecomesInternalError) {
  Result<int> r = Status{};
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(RecordError, ExportsErrorsTotalBySubsystemAndCode) {
  obs::MetricsRegistry metrics;
  record_error(metrics, TimeoutError("t").at("nfs", "read"));
  record_error(metrics, TimeoutError("t").at("nfs", "read"));
  record_error(metrics, OverloadedError("shed").at("scheduler", "submit"));
  record_error(metrics, Status{});  // OK: must not count

  EXPECT_DOUBLE_EQ(metrics.counter_value(
                       "errors_total",
                       {{"subsystem", "nfs"}, {"code", "timeout"}}),
                   2.0);
  EXPECT_DOUBLE_EQ(metrics.counter_value(
                       "errors_total",
                       {{"subsystem", "scheduler"}, {"code", "overloaded"}}),
                   1.0);
  EXPECT_EQ(metrics.find_counter("errors_total",
                                 {{"subsystem", "unknown"}, {"code", "ok"}}),
            nullptr);
}

TEST(RecordError, UntaggedFailureLandsInUnknown) {
  obs::MetricsRegistry metrics;
  record_error(metrics, InternalError("anonymous"));
  EXPECT_DOUBLE_EQ(metrics.counter_value(
                       "errors_total",
                       {{"subsystem", "unknown"}, {"code", "internal"}}),
                   1.0);
}

TEST(InternTag, SameSpellingSharesOneAddress) {
  const std::string& a = intern_tag("rpc");
  const std::string& b = intern_tag("rpc");
  const std::string& c = intern_tag("nfs");
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &c);
  EXPECT_EQ(a, "rpc");
}

TEST(InternTag, StatusAtSharesInternedStorage) {
  const Status s1 = Status{StatusCode::kTimeout, "one"}.at("session", "restore");
  const Status s2 = Status{StatusCode::kUnavailable, "two"}.at("session", "restore");
  // Tag fields of independent statuses alias the interned spelling:
  // Status::at copies two pointers, not two strings.
  EXPECT_EQ(&s1.subsystem(), &s2.subsystem());
  EXPECT_EQ(&s1.op(), &s2.op());
  EXPECT_EQ(s1.subsystem(), "session");
  EXPECT_EQ(s1.op(), "restore");
}

TEST(RecordError, HandlePoolSurvivesRegistryReset) {
  obs::MetricsRegistry metrics;
  const Status s = Status{StatusCode::kTimeout, "t"}.at("rpc");
  record_error(metrics, s);
  record_error(metrics, s);  // pooled-handle hit, same counter
  EXPECT_DOUBLE_EQ(
      metrics.counter_value("errors_total",
                            {{"subsystem", "rpc"}, {"code", "timeout"}}),
      2.0);
  metrics.reset();
  // The reset bumps the registry epoch, so the pooled reference from
  // before the reset can never be served stale: the count restarts.
  record_error(metrics, s);
  EXPECT_DOUBLE_EQ(
      metrics.counter_value("errors_total",
                            {{"subsystem", "rpc"}, {"code", "timeout"}}),
      1.0);
}

TEST(RecordError, DistinctRegistriesKeepDistinctCounters) {
  obs::MetricsRegistry m1, m2;
  const Status s = Status{StatusCode::kAborted, "t"}.at("disk");
  record_error(m1, s);
  record_error(m2, s);
  record_error(m2, s);
  EXPECT_DOUBLE_EQ(m1.counter_value("errors_total",
                                    {{"subsystem", "disk"}, {"code", "aborted"}}),
                   1.0);
  EXPECT_DOUBLE_EQ(m2.counter_value("errors_total",
                                    {{"subsystem", "disk"}, {"code", "aborted"}}),
                   2.0);
}

}  // namespace
}  // namespace vmgrid
