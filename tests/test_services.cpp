#include <gtest/gtest.h>

#include <optional>

#include "middleware/archive.hpp"
#include "middleware/console.hpp"
#include "middleware/logical_accounts.hpp"
#include "middleware/scheduler_service.hpp"
#include "middleware/testbed.hpp"
#include "workload/spec_benchmarks.hpp"

namespace vmgrid::middleware {
namespace {

// ---------------------------------------------------------------------------
// ArchiveService: hibernate / thaw / tape tier

struct ArchiveFixture : ::testing::Test {
  testbed::StartupTestbed tb{81};
  ArchiveService archive{*tb.grid, *tb.images, ArchiveParams{}};

  vm::VirtualMachine* boot_vm(const std::string& name) {
    InstantiateOptions opts;
    opts.config = testbed::paper_vm(name);
    opts.image = testbed::paper_image();
    opts.mode = VmStartMode::kWarmRestore;
    opts.access = StateAccess::kNonPersistentLocal;
    vm::VirtualMachine* out = nullptr;
    tb.compute->instantiate(opts,
                            [&](vm::VirtualMachine* v, InstantiationStats) { out = v; });
    tb.grid->run();
    return out;
  }
};

TEST_F(ArchiveFixture, HibernateStoresStateAndFreesTheHost) {
  auto* vmachine = boot_vm("sleepy");
  ASSERT_NE(vmachine, nullptr);
  const auto free_before = tb.compute->host().free_memory_mb();

  std::optional<CheckpointId> ckpt;
  archive.hibernate(*tb.compute, *vmachine, "zoe",
                    [&](Result<CheckpointId> id) { if (id.ok()) ckpt = id.value(); });
  tb.grid->run();
  ASSERT_TRUE(ckpt.has_value());
  ASSERT_TRUE(ckpt->valid());
  EXPECT_EQ(tb.compute->vmm().vm_count(), 0u);
  EXPECT_GT(tb.compute->host().free_memory_mb(), free_before);
  const auto info = archive.info(*ckpt);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->owner, "zoe");
  EXPECT_EQ(info->tier, CheckpointTier::kDisk);
  EXPECT_GT(archive.disk_bytes(), 100ull << 20);
  EXPECT_TRUE(tb.images->fs().exists("ckpt-" + std::to_string(ckpt->value()) + ".state"));
}

TEST_F(ArchiveFixture, ThawRestoresRunningVm) {
  auto* vmachine = boot_vm("phoenix");
  ASSERT_NE(vmachine, nullptr);
  std::optional<CheckpointId> ckpt;
  archive.hibernate(*tb.compute, *vmachine, "zoe",
                    [&](Result<CheckpointId> id) { if (id.ok()) ckpt = id.value(); });
  tb.grid->run();
  ASSERT_TRUE(ckpt.has_value());

  vm::VirtualMachine* fresh = nullptr;
  Status error;
  archive.thaw(*ckpt, *tb.compute, StateAccess::kNonPersistentLocal, {},
               [&](vm::VirtualMachine* v, Status e) {
                 fresh = v;
                 error = std::move(e);
               });
  tb.grid->run();
  ASSERT_NE(fresh, nullptr) << error.to_string();
  EXPECT_EQ(fresh->state(), vm::VmPowerState::kRunning);
  EXPECT_FALSE(archive.info(*ckpt).has_value());  // consumed
}

TEST_F(ArchiveFixture, GuestComputationSurvivesHibernateThaw) {
  auto* vmachine = boot_vm("worker");
  ASSERT_NE(vmachine, nullptr);
  std::optional<vm::TaskResult> result;
  vmachine->run_task(workload::micro_test_task(40.0),
                     [&](vm::TaskResult r) { result = std::move(r); });
  tb.grid->run_for(sim::Duration::seconds(10));
  ASSERT_FALSE(result.has_value());

  std::optional<CheckpointId> ckpt;
  archive.hibernate(*tb.compute, *vmachine, "zoe",
                    [&](Result<CheckpointId> id) { if (id.ok()) ckpt = id.value(); });
  tb.grid->run_for(sim::Duration::minutes(5));
  ASSERT_TRUE(ckpt.has_value());
  EXPECT_FALSE(result.has_value());  // frozen inside the checkpoint

  vm::VirtualMachine* fresh = nullptr;
  archive.thaw(*ckpt, *tb.compute, StateAccess::kNonPersistentLocal, {},
               [&](vm::VirtualMachine* v, Status) { fresh = v; });
  tb.grid->run();
  ASSERT_NE(fresh, nullptr);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok());
}

TEST_F(ArchiveFixture, SweepMigratesIdleCheckpointsToTapeAndThawRecalls) {
  ArchiveParams fast;
  fast.tape_after = sim::Duration::minutes(2);
  fast.sweep_interval = sim::Duration::minutes(1);
  ArchiveService tape_archive{*tb.grid, *tb.images, fast};

  auto* vmachine = boot_vm("dusty");
  ASSERT_NE(vmachine, nullptr);
  std::optional<CheckpointId> ckpt;
  tape_archive.hibernate(*tb.compute, *vmachine, "zoe",
                         [&](Result<CheckpointId> id) { if (id.ok()) ckpt = id.value(); });
  tb.grid->run();
  ASSERT_TRUE(ckpt.has_value());

  tb.grid->run_for(sim::Duration::minutes(5));
  ASSERT_TRUE(tape_archive.info(*ckpt).has_value());
  EXPECT_EQ(tape_archive.info(*ckpt)->tier, CheckpointTier::kTape);
  EXPECT_EQ(tape_archive.disk_bytes(), 0u);
  EXPECT_GT(tape_archive.tape_bytes(), 0u);

  // Thaw from tape: works, but pays the mount + streaming recall.
  const auto t0 = tb.grid->now();
  vm::VirtualMachine* fresh = nullptr;
  tape_archive.thaw(*ckpt, *tb.compute, StateAccess::kNonPersistentLocal, {},
                    [&](vm::VirtualMachine* v, Status) { fresh = v; });
  tb.grid->run();
  ASSERT_NE(fresh, nullptr);
  EXPECT_GT((tb.grid->now() - t0).to_seconds(), 45.0);  // at least the mount
}

TEST_F(ArchiveFixture, RemoveEndsTheLifecycle) {
  auto* vmachine = boot_vm("condemned");
  ASSERT_NE(vmachine, nullptr);
  std::optional<CheckpointId> ckpt;
  archive.hibernate(*tb.compute, *vmachine, "zoe",
                    [&](Result<CheckpointId> id) { if (id.ok()) ckpt = id.value(); });
  tb.grid->run();
  ASSERT_TRUE(ckpt.has_value());
  EXPECT_TRUE(archive.remove(*ckpt));
  EXPECT_FALSE(archive.remove(*ckpt));  // idempotent failure
  Status error;
  archive.thaw(*ckpt, *tb.compute, StateAccess::kNonPersistentLocal, {},
               [&](vm::VirtualMachine* v, Status e) {
                 EXPECT_EQ(v, nullptr);
                 error = std::move(e);
               });
  tb.grid->run();
  EXPECT_EQ(error.code(), StatusCode::kNotFound);
  EXPECT_EQ(error.subsystem(), "archive");
}

TEST_F(ArchiveFixture, ThawOfNeverIssuedIdFailsAsynchronously) {
  // An id the archive never handed out (not merely removed): same typed
  // error, still delivered via the event loop, never synchronously.
  bool called = false;
  archive.thaw(CheckpointId{9999}, *tb.compute, StateAccess::kNonPersistentLocal, {},
               [&](vm::VirtualMachine* v, Status e) {
                 called = true;
                 EXPECT_EQ(v, nullptr);
                 EXPECT_EQ(e.code(), StatusCode::kNotFound);
               });
  EXPECT_FALSE(called);  // asynchronous even on the error path
  tb.grid->run();
  EXPECT_TRUE(called);
}

TEST_F(ArchiveFixture, ThawReportsStateDownloadFailure) {
  auto* vmachine = boot_vm("stranded");
  ASSERT_NE(vmachine, nullptr);
  std::optional<CheckpointId> ckpt;
  archive.hibernate(*tb.compute, *vmachine, "zoe",
                    [&](Result<CheckpointId> id) { if (id.ok()) ckpt = id.value(); });
  tb.grid->run();
  ASSERT_TRUE(ckpt.has_value());

  // The serialized state vanishes from the archive's backing store (disk
  // loss): the download cannot start, and the thaw must fail with the
  // download error rather than hang. The record survives for diagnosis.
  tb.images->fs().remove("ckpt-" + std::to_string(ckpt->value()) + ".state");
  vm::VirtualMachine* fresh = nullptr;
  Status error;
  bool called = false;
  archive.thaw(*ckpt, *tb.compute, StateAccess::kNonPersistentLocal, {},
               [&](vm::VirtualMachine* v, Status e) {
                 called = true;
                 fresh = v;
                 error = std::move(e);
               });
  tb.grid->run();
  ASSERT_TRUE(called);
  EXPECT_EQ(fresh, nullptr);
  // The cause chain pins the root to the gridftp transfer.
  EXPECT_EQ(error.code(), StatusCode::kNotFound);
  EXPECT_NE(error.message().find("state download failed"), std::string::npos);
  EXPECT_EQ(error.root_cause().subsystem(), "gridftp");
  EXPECT_TRUE(archive.info(*ckpt).has_value());  // not consumed by the failure
}

TEST_F(ArchiveFixture, TapeTierThawOntoCrashedServerFails) {
  ArchiveParams fast;
  fast.tape_after = sim::Duration::minutes(2);
  fast.sweep_interval = sim::Duration::minutes(1);
  ArchiveService tape_archive{*tb.grid, *tb.images, fast};

  auto* vmachine = boot_vm("doomed");
  ASSERT_NE(vmachine, nullptr);
  std::optional<CheckpointId> ckpt;
  tape_archive.hibernate(*tb.compute, *vmachine, "zoe",
                         [&](Result<CheckpointId> id) { if (id.ok()) ckpt = id.value(); });
  tb.grid->run();
  ASSERT_TRUE(ckpt.has_value());
  tb.grid->run_for(sim::Duration::minutes(5));
  ASSERT_EQ(tape_archive.info(*ckpt)->tier, CheckpointTier::kTape);

  // Target host is dead at thaw time: the archive refuses up front,
  // before paying the tape mount + recall, and the checkpoint stays
  // intact on tape for a thaw onto a live host later.
  tb.compute->crash();
  vm::VirtualMachine* fresh = nullptr;
  Status error;
  bool called = false;
  tape_archive.thaw(*ckpt, *tb.compute, StateAccess::kNonPersistentLocal, {},
                    [&](vm::VirtualMachine* v, Status e) {
                      called = true;
                      fresh = v;
                      error = std::move(e);
                    });
  tb.grid->run();
  ASSERT_TRUE(called);
  EXPECT_EQ(fresh, nullptr);
  EXPECT_EQ(error.code(), StatusCode::kUnavailable);
  EXPECT_NE(error.message().find("target server down"), std::string::npos);
  ASSERT_TRUE(tape_archive.info(*ckpt).has_value());  // not consumed
  EXPECT_EQ(tape_archive.info(*ckpt)->tier, CheckpointTier::kTape);  // no recall paid
}

TEST_F(ArchiveFixture, HibernateRequiresRunningVm) {
  InstantiateOptions opts;
  opts.config = testbed::paper_vm("off");
  opts.image = testbed::paper_image();
  vm::VmStorage storage;
  storage.disk = vm::make_local_accessor(tb.compute->host().fs(),
                                         testbed::paper_image().disk_file());
  auto& vmachine = tb.compute->vmm().create_vm(opts.config, opts.image,
                                               std::move(storage));
  bool called = false;
  archive.hibernate(*tb.compute, vmachine, "zoe", [&](Result<CheckpointId> id) {
    called = true;
    EXPECT_FALSE(id.ok());
    EXPECT_EQ(id.status().code(), StatusCode::kFailedPrecondition);
  });
  tb.grid->run();
  EXPECT_TRUE(called);
}

// ---------------------------------------------------------------------------
// ConsoleSession

struct ConsoleFixture : ::testing::Test {
  sim::Simulation sim{82};
  net::Network net{sim};
  net::NodeId client = net.add_node("laptop");
  net::NodeId vm_host = net.add_node("vm-host");

  ConsoleFixture() {
    net.add_link(client, vm_host, net::LinkParams{sim::Duration::millis(17), 2.5e6});
  }
};

TEST_F(ConsoleFixture, KeystrokeEchoCostsAtLeastOneRtt) {
  ConsoleSession console{net, client, vm_host};
  std::optional<double> echo_ms;
  console.keystroke([&](sim::Duration rtt) { echo_ms = rtt.to_millis(); });
  sim.run();
  ASSERT_TRUE(echo_ms.has_value());
  EXPECT_GT(*echo_ms, 34.0);  // 2 x 17 ms propagation
  EXPECT_LT(*echo_ms, 60.0);
}

TEST_F(ConsoleFixture, BurstCollectsPerKeystrokeStats) {
  ConsoleSession console{net, client, vm_host};
  std::optional<sim::Accumulator> stats;
  console.type_burst(25, [&](sim::Accumulator acc) { stats = acc; });
  sim.run();
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->count(), 25u);
  EXPECT_GT(stats->mean(), 34.0);
  EXPECT_EQ(console.echo_stats().count(), 25u);
}

TEST_F(ConsoleFixture, TunneledConsoleIsSlowerThanDirect) {
  net::EthernetTunnel tunnel{net, client, vm_host};
  tunnel.establish([] {});
  sim.run();
  ConsoleSession direct{net, client, vm_host};
  ConsoleSession tunneled{net, client, vm_host, ConsoleParams{}, &tunnel};
  std::optional<double> d, t;
  direct.keystroke([&](sim::Duration rtt) { d = rtt.to_millis(); });
  sim.run();
  tunneled.keystroke([&](sim::Duration rtt) { t = rtt.to_millis(); });
  sim.run();
  ASSERT_TRUE(d && t);
  EXPECT_GT(*t, *d);
  EXPECT_LT(*t, *d * 1.5);  // still interactive
}

// ---------------------------------------------------------------------------
// LogicalAccountService

TEST(LogicalAccounts, LeasesAreStableAndExhaustible) {
  sim::Simulation sim{83};
  LogicalAccountService svc{sim, {"p1", "p2"}};
  const auto a = svc.acquire("alice");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(svc.acquire("alice"), a);  // idempotent
  const auto b = svc.acquire("bob");
  ASSERT_TRUE(b.has_value());
  EXPECT_NE(*a, *b);
  EXPECT_FALSE(svc.acquire("carol").has_value());  // pool exhausted
  svc.release("alice");
  EXPECT_EQ(svc.active_leases(), 1u);
  const auto c = svc.acquire("carol");
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(*c, *a);  // recycled physical account
}

TEST(LogicalAccounts, AuditAnswersWhoHeldWhat) {
  sim::Simulation sim{84};
  LogicalAccountService svc{sim, {"px"}};
  sim.run_until(sim::TimePoint::from_seconds(10));
  ASSERT_TRUE(svc.acquire("alice").has_value());
  sim.run_until(sim::TimePoint::from_seconds(20));
  svc.release("alice");
  sim.run_until(sim::TimePoint::from_seconds(30));
  ASSERT_TRUE(svc.acquire("bob").has_value());

  EXPECT_EQ(svc.holder_at("px", sim::TimePoint::from_seconds(15)),
            std::optional<std::string>{"alice"});
  EXPECT_EQ(svc.holder_at("px", sim::TimePoint::from_seconds(25)), std::nullopt);
  EXPECT_EQ(svc.holder_at("px", sim::TimePoint::from_seconds(35)),
            std::optional<std::string>{"bob"});
  EXPECT_EQ(svc.holder_at("py", sim::TimePoint::from_seconds(15)), std::nullopt);
}

TEST(LogicalAccounts, CapabilityChecks) {
  sim::Simulation sim{85};
  LogicalAccountService svc{sim, {"p1"}};
  // Unrestricted by default.
  EXPECT_TRUE(svc.authorize("anyone", GridOperation::kInstantiateVm));
  svc.restrict_operation(GridOperation::kStoreImage);
  EXPECT_FALSE(svc.authorize("alice", GridOperation::kStoreImage));
  svc.grant("alice", GridOperation::kStoreImage);
  EXPECT_TRUE(svc.authorize("alice", GridOperation::kStoreImage));
  svc.revoke("alice", GridOperation::kStoreImage);
  EXPECT_FALSE(svc.authorize("alice", GridOperation::kStoreImage));
  EXPECT_TRUE(svc.authorize("alice", GridOperation::kMountData));  // untouched
}

// ---------------------------------------------------------------------------
// SchedulerService

struct SchedulerFixture : ::testing::Test {
  Grid grid{86};
  ComputeServer* h1{nullptr};
  ComputeServer* h2{nullptr};
  SchedulerFixture() {
    h1 = &grid.add_compute_server(testbed::paper_compute("farm-1", testbed::fig1_host()));
    h2 = &grid.add_compute_server(testbed::paper_compute("farm-2", testbed::fig1_host()));
    h1->preload_image(testbed::paper_image());
    h2->preload_image(testbed::paper_image());
  }
};

TEST_F(SchedulerFixture, RunsQueuedJobsToCompletion) {
  SchedulerServiceParams p;
  p.policy = PlacementPolicy::kLeastLoaded;
  SchedulerService sched{grid, p};
  sched.add_worker_host(*h1, testbed::paper_image());
  sched.add_worker_host(*h2, testbed::paper_image());

  int completed = 0;
  for (int i = 0; i < 6; ++i) {
    sched.submit("team", workload::micro_test_task(20.0), [&](BatchJobResult r) {
      EXPECT_TRUE(r.ok());
      ++completed;
    });
  }
  grid.run();
  EXPECT_EQ(completed, 6);
  EXPECT_EQ(sched.queued_jobs(), 0u);
  EXPECT_EQ(sched.running_jobs(), 0u);
  EXPECT_EQ(grid.accounting().usage("team").tasks_completed, 6u);
}

TEST_F(SchedulerFixture, JobsSpreadAcrossWorkers) {
  SchedulerServiceParams p;
  p.policy = PlacementPolicy::kLeastLoaded;
  SchedulerService sched{grid, p};
  sched.add_worker_host(*h1, testbed::paper_image());
  sched.add_worker_host(*h2, testbed::paper_image());

  std::vector<std::string> hosts;
  for (int i = 0; i < 4; ++i) {
    sched.submit("team", workload::micro_test_task(60.0),
                 [&](BatchJobResult r) { hosts.push_back(r.host); });
  }
  grid.run();
  ASSERT_EQ(hosts.size(), 4u);
  const auto on_1 = std::count(hosts.begin(), hosts.end(), "farm-1");
  EXPECT_GT(on_1, 0);
  EXPECT_LT(on_1, 4);
}

TEST_F(SchedulerFixture, PredictionAvoidsTheLoadedHost) {
  // farm-2 carries heavy native load; the predictive policy should put
  // (nearly) everything on farm-1.
  auto trace = host::LoadTrace::constant(sim::Duration::minutes(120), 1.8);
  host::TracePlayback pb{grid.simulation(), h2->host().cpu(), std::move(trace)};
  pb.start();
  grid.run_for(sim::Duration::seconds(30));

  SchedulerServiceParams p;
  p.policy = PlacementPolicy::kPredictedRuntime;
  SchedulerService sched{grid, p};
  sched.add_worker_host(*h1, testbed::paper_image());
  sched.add_worker_host(*h2, testbed::paper_image());
  grid.run_for(sim::Duration::seconds(30));  // let sensors observe

  // With both hosts free, the predictive policy must choose the idle
  // one — and keep doing so for a sequence of one-at-a-time jobs.
  std::vector<std::string> hosts;
  for (int i = 0; i < 3; ++i) {
    std::optional<std::string> landed;
    sched.submit("team", workload::micro_test_task(30.0),
                 [&](BatchJobResult r) { landed = r.host; });
    grid.run();
    ASSERT_TRUE(landed.has_value());
    hosts.push_back(*landed);
  }
  for (const auto& h : hosts) EXPECT_EQ(h, "farm-1");
}

}  // namespace
}  // namespace vmgrid::middleware
