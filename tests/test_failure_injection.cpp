// Failure injection: the middleware must degrade with errors, not hangs
// or crashes, when servers vanish, pools exhaust, or placements fail.

#include <gtest/gtest.h>

#include <optional>

#include "middleware/testbed.hpp"
#include "storage/nfs_server.hpp"
#include "vfs/grid_vfs.hpp"
#include "workload/spec_benchmarks.hpp"

namespace vmgrid {
namespace {

using namespace middleware;

struct CrashFixture : ::testing::Test {
  sim::Simulation sim{302};
  net::Network net{sim};
  net::RpcFabric fabric{net};
  net::NodeId server_node = net.add_node("server");
  net::NodeId client_node = net.add_node("client");
  storage::Disk disk{sim, {}};
  storage::LocalFileSystem fs{sim, disk};
  std::optional<storage::NfsServer> server;

  CrashFixture() {
    net.add_link(client_node, server_node,
                 net::LinkParams{sim::Duration::millis(5), 1e6});
    fs.create("data", storage::kBlockSize * 512);
    server.emplace(fabric, server_node, fs);
  }
};

TEST_F(CrashFixture, ReadsAfterCrashReportConnectionRefused) {
  storage::NfsClient client{fabric, client_node, server_node};
  server.reset();  // daemon dies
  std::optional<storage::NfsIoResult> result;
  client.read("data", 0, storage::kBlockSize * 4,
              [&](storage::NfsIoResult r) { result = std::move(r); });
  sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->ok);
  EXPECT_EQ(result->status, net::RpcStatus::kConnectionRefused);
}

TEST_F(CrashFixture, VfsProxyPropagatesServerLoss) {
  storage::NfsClient client{fabric, client_node, server_node};
  vfs::VfsProxy proxy{sim, client};
  server.reset();
  std::optional<vfs::VfsIoStats> result;
  proxy.read("data", 0, storage::kBlockSize * 8,
             [&](vfs::VfsIoStats s) { result = std::move(s); });
  sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->ok);
}

TEST_F(CrashFixture, CachedBlocksSurviveServerLoss) {
  storage::NfsClient client{fabric, client_node, server_node};
  vfs::VfsProxy proxy{sim, client, vfs::VfsProxyParams{.prefetch_blocks = 0}};
  // Warm the cache, then kill the server.
  std::optional<vfs::VfsIoStats> warm;
  proxy.read("data", 0, storage::kBlockSize * 8,
             [&](vfs::VfsIoStats s) { warm = s; });
  sim.run();
  ASSERT_TRUE(warm && warm->ok);
  server.reset();
  std::optional<vfs::VfsIoStats> cached;
  proxy.read("data", 0, storage::kBlockSize * 8,
             [&](vfs::VfsIoStats s) { cached = s; });
  sim.run();
  ASSERT_TRUE(cached.has_value());
  EXPECT_TRUE(cached->ok);  // served entirely from cache
  EXPECT_EQ(cached->rpcs, 0u);
}

TEST(FailureInjection, DhcpExhaustionDoesNotKillTheSession) {
  testbed::WideAreaTestbed tb{303};
  tb.compute->publish(tb.grid->info());
  // Drain the host's address pool.
  const auto pool = tb.compute->dhcp().pool_size();
  for (std::size_t i = 0; i < pool; ++i) {
    tb.compute->dhcp().request_lease(tb.compute->node(), [](auto) {});
  }
  tb.grid->run();
  ASSERT_EQ(tb.compute->dhcp().leased_count(), pool);

  SessionRequest req;
  req.user = "netless";
  req.query.time_bound = sim::Duration::seconds(1);
  VmSession* session = nullptr;
  tb.grid->sessions().create_session(req, [&](VmSession* s, std::string) { session = s; });
  tb.grid->run();
  ASSERT_NE(session, nullptr);
  EXPECT_EQ(session->machine().state(), vm::VmPowerState::kRunning);
  EXPECT_FALSE(session->ip().valid());  // degraded: no address, still usable
  session->shutdown();
}

TEST(FailureInjection, SessionFailsCleanlyWhenHostMemoryExhausted) {
  testbed::WideAreaTestbed tb{304};
  tb.compute->publish(tb.grid->info());
  ASSERT_TRUE(tb.compute->host().reserve_memory(tb.compute->host().free_memory_mb()));

  SessionRequest req;
  req.user = "unlucky";
  req.query.time_bound = sim::Duration::seconds(1);
  VmSession* session = nullptr;
  std::string error;
  tb.grid->sessions().create_session(req, [&](VmSession* s, std::string e) {
    session = s;
    error = std::move(e);
  });
  tb.grid->run();
  EXPECT_EQ(session, nullptr);
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(tb.grid->sessions().active_sessions(), 0u);
}

TEST(FailureInjection, TaskReportsIoErrorsWithoutHanging) {
  // A VM whose virtual disk points at a file the image server never had:
  // the guest task completes with ok=false instead of wedging the run.
  testbed::StartupTestbed tb{305};
  auto& cs = *tb.compute;
  auto& mount = tb.grid->gvfs().mount(cs.node(), tb.images->node(), {});
  vm::VmStorage storage;
  storage.disk = vm::make_vfs_accessor(mount.proxy(), "nonexistent.disk", 0.0005);
  auto cfg = testbed::paper_vm("broken");
  auto image = testbed::paper_image();
  auto& vmachine = cs.vmm().create_vm(cfg, image, std::move(storage));
  // Boot would also fail on the bad disk; drive the state machine past it.
  vmachine.adopt_suspended_state(/*in_memory=*/true);
  vmachine.resume([] {});
  tb.grid->run();
  ASSERT_EQ(vmachine.state(), vm::VmPowerState::kRunning);

  workload::TaskSpec spec = workload::micro_test_task(1.0);
  spec.io_read_bytes = 1 << 20;
  spec.phases = 2;
  std::optional<vm::TaskResult> result;
  vmachine.run_task(spec, [&](vm::TaskResult r) { result = std::move(r); });
  tb.grid->run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->ok);
}

}  // namespace
}  // namespace vmgrid
