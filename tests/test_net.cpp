#include <gtest/gtest.h>

#include <optional>

#include "net/dhcp.hpp"
#include "net/network.hpp"
#include "net/overlay.hpp"
#include "net/rpc.hpp"
#include "net/tunnel.hpp"
#include "sim/simulation.hpp"

namespace vmgrid::net {
namespace {

struct NetFixture : ::testing::Test {
  sim::Simulation sim{1};
  Network net{sim};
};

TEST_F(NetFixture, SingleHopTransferTiming) {
  auto a = net.add_node("a");
  auto b = net.add_node("b");
  net.add_link(a, b, LinkParams{sim::Duration::millis(10), 1e6});
  std::optional<sim::Duration> elapsed;
  net.send(a, b, 1'000'000, [&](const TransferResult& r) { elapsed = r.elapsed; });
  sim.run();
  ASSERT_TRUE(elapsed.has_value());
  // 1 MB at 1 MB/s + 10 ms propagation.
  EXPECT_NEAR(elapsed->to_seconds(), 1.01, 1e-6);
}

TEST_F(NetFixture, MultiHopStoreAndForward) {
  auto a = net.add_node("a");
  auto r = net.add_node("r");
  auto b = net.add_node("b");
  net.add_link(a, r, LinkParams{sim::Duration::millis(5), 1e6});
  net.add_link(r, b, LinkParams{sim::Duration::millis(5), 1e6});
  double elapsed = -1;
  net.send(a, b, 1'000'000, [&](const TransferResult& res) {
    elapsed = res.elapsed.to_seconds();
  });
  sim.run();
  EXPECT_NEAR(elapsed, 2.01, 1e-6);
}

TEST_F(NetFixture, RoutingPrefersLowLatencyPath) {
  auto a = net.add_node("a");
  auto b = net.add_node("b");
  auto c = net.add_node("c");
  net.add_link(a, b, LinkParams{sim::Duration::millis(100), 1e7});  // slow direct
  net.add_link(a, c, LinkParams{sim::Duration::millis(10), 1e7});
  net.add_link(c, b, LinkParams{sim::Duration::millis(10), 1e7});
  // Detour a->c->b (20ms) beats direct (100ms).
  EXPECT_NEAR(net.rtt(a, b).to_seconds(), 0.04, 1e-9);
  double elapsed = -1;
  net.send(a, b, 0, [&](const TransferResult& r) { elapsed = r.elapsed.to_seconds(); });
  sim.run();
  EXPECT_NEAR(elapsed, 0.02, 1e-6);
  EXPECT_EQ(net.link_bytes(a, b), 0u);
}

TEST_F(NetFixture, FifoCongestionDelaysSecondTransfer) {
  auto a = net.add_node("a");
  auto b = net.add_node("b");
  net.add_link(a, b, LinkParams{sim::Duration::millis(1), 1e6});
  double first = -1, second = -1;
  net.send(a, b, 1'000'000, [&](const TransferResult& r) { first = r.elapsed.to_seconds(); });
  net.send(a, b, 1'000'000, [&](const TransferResult& r) { second = r.elapsed.to_seconds(); });
  sim.run();
  EXPECT_NEAR(first, 1.001, 1e-6);
  EXPECT_NEAR(second, 2.001, 1e-6);  // queued behind the first
}

TEST_F(NetFixture, UnreachableThrowsAndReachableReports) {
  auto a = net.add_node("a");
  auto b = net.add_node("b");
  auto island = net.add_node("island");
  net.add_link(a, b, LinkParams{});
  EXPECT_TRUE(net.reachable(a, b));
  EXPECT_FALSE(net.reachable(a, island));
  EXPECT_THROW(net.send(a, island, 100, [](const TransferResult&) {}),
               std::logic_error);
}

TEST_F(NetFixture, EstimateLatencyReflectsBacklog) {
  auto a = net.add_node("a");
  auto b = net.add_node("b");
  net.add_link(a, b, LinkParams{sim::Duration::millis(1), 1e6});
  const auto idle = net.estimate_latency(a, b, 1000);
  net.send(a, b, 5'000'000, [](const TransferResult&) {});
  const auto busy = net.estimate_latency(a, b, 1000);
  EXPECT_GT(busy, idle + sim::Duration::seconds(4.9));
  sim.run();
}

TEST_F(NetFixture, LinkBytesAccounting) {
  auto a = net.add_node("a");
  auto b = net.add_node("b");
  net.add_link(a, b, LinkParams{});
  net.send(a, b, 1234, [](const TransferResult&) {});
  net.send(b, a, 10, [](const TransferResult&) {});
  sim.run();
  EXPECT_EQ(net.link_bytes(a, b), 1234u);
  EXPECT_EQ(net.link_bytes(b, a), 10u);
}

struct RpcFixture : NetFixture {
  NodeId client = net.add_node("client");
  NodeId server_node = net.add_node("server");
  RpcFabric fabric{net};

  RpcFixture() {
    net.add_link(client, server_node, LinkParams{sim::Duration::millis(2), 1e7});
  }
};

TEST_F(RpcFixture, EchoRoundTrip) {
  RpcServer server{fabric, server_node, RpcServerParams{sim::Duration::micros(100)}};
  server.register_method("echo", [](const RpcRequest& req, RpcResponder respond) {
    respond(RpcResponse{.response_bytes = 256, .payload = req.payload});
  });
  std::optional<int> got;
  fabric.call(client, server_node, RpcRequest{"echo", 128, 42},
              [&](RpcResponse resp) {
                ASSERT_TRUE(resp.ok());
                got = std::any_cast<int>(resp.payload);
              });
  sim.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 42);
  EXPECT_EQ(server.calls_served(), 1u);
  // Two 2ms propagation legs + server overhead: at least 4.1ms of sim time.
  EXPECT_GT(sim.now().to_seconds(), 0.0041);
}

TEST_F(RpcFixture, UnknownMethodFailsGracefully) {
  RpcServer server{fabric, server_node};
  bool failed = false;
  fabric.call(client, server_node, RpcRequest{"nope", 64, {}}, [&](RpcResponse resp) {
    failed = !resp.ok();
    EXPECT_EQ(resp.status, RpcStatus::kNoSuchMethod);
  });
  sim.run();
  EXPECT_TRUE(failed);
}

TEST_F(RpcFixture, UnboundNodeRefusesConnection) {
  bool refused = false;
  fabric.call(client, server_node, RpcRequest{"x", 64, {}}, [&](RpcResponse resp) {
    refused = !resp.ok() && resp.status == RpcStatus::kConnectionRefused;
  });
  sim.run();
  EXPECT_TRUE(refused);
}

TEST_F(RpcFixture, TotalDeadlineBoundsRetriesAcrossAttempts) {
  // A dead server with a generous retry policy: per-attempt deadlines of
  // 1 s x 5 attempts plus backoff would take >5 s to fail. The total
  // deadline must cut the whole call off at 1.5 s, regardless of which
  // attempt or backoff window it lands in.
  RpcServer server{fabric, server_node};
  server.register_method("echo", [](const RpcRequest&, RpcResponder r) { r({}); });
  net.set_node_up(server_node, false);
  RpcCallOptions opts;
  opts.deadline = sim::Duration::seconds(1);
  opts.max_attempts = 5;
  opts.backoff_base = sim::Duration::millis(500);
  opts.total_deadline = sim::Duration::millis(1500);
  std::optional<RpcResponse> resp;
  std::optional<sim::TimePoint> completed_at;
  fabric.call(client, server_node, RpcRequest{"echo", 64, {}}, opts,
              [&](RpcResponse r) {
                resp = std::move(r);
                completed_at = sim.now();
              });
  sim.run();
  ASSERT_TRUE(resp.has_value());
  EXPECT_FALSE(resp->ok());
  EXPECT_EQ(resp->status, RpcStatus::kTimeout);
  EXPECT_NE(resp->error.find("total deadline"), std::string::npos);
  ASSERT_TRUE(completed_at.has_value());
  EXPECT_NEAR((*completed_at - sim::TimePoint::epoch()).to_seconds(), 1.5, 1e-9);
  // Only the orphaned backoff no-op may outlive the settle; the retry
  // ladder itself (which would reach past 5 s) is gone.
  EXPECT_LT(sim.now().to_seconds(), 5.0);
}

TEST_F(RpcFixture, TotalDeadlineIsANoOpWhenGenerous) {
  RpcServer server{fabric, server_node};
  server.register_method("echo", [](const RpcRequest&, RpcResponder r) {
    r(RpcResponse{.response_bytes = 64, .payload = {}});
  });
  RpcCallOptions opts;
  opts.total_deadline = sim::Duration::seconds(30);
  std::optional<RpcResponse> resp;
  fabric.call(client, server_node, RpcRequest{"echo", 64, {}}, opts,
              [&](RpcResponse r) { resp = std::move(r); });
  sim.run();
  ASSERT_TRUE(resp.has_value());
  EXPECT_TRUE(resp->ok());
}

TEST_F(RpcFixture, DuplicateMethodRegistrationThrows) {
  RpcServer server{fabric, server_node};
  server.register_method("m", [](const RpcRequest&, RpcResponder r) { r({}); });
  EXPECT_THROW(server.register_method("m", [](const RpcRequest&, RpcResponder r) { r({}); }),
               std::logic_error);
}

TEST_F(NetFixture, DhcpLeasesDistinctAddressesAndExhausts) {
  auto srv = net.add_node("dhcp");
  auto c1 = net.add_node("c1");
  net.add_link(srv, c1, LinkParams{sim::Duration::micros(100), 1e7});
  DhcpServer dhcp{net, srv, IpAddress::from_octets(10, 0, 0, 10), 2};
  std::vector<std::optional<IpAddress>> leases;
  for (int i = 0; i < 3; ++i) {
    dhcp.request_lease(c1, [&](std::optional<IpAddress> ip) { leases.push_back(ip); });
  }
  sim.run();
  ASSERT_EQ(leases.size(), 3u);
  ASSERT_TRUE(leases[0].has_value());
  ASSERT_TRUE(leases[1].has_value());
  EXPECT_NE(*leases[0], *leases[1]);
  EXPECT_FALSE(leases[2].has_value());  // pool exhausted
  dhcp.release(*leases[0]);
  std::optional<IpAddress> again;
  dhcp.request_lease(c1, [&](std::optional<IpAddress> ip) { again = ip; });
  sim.run();
  EXPECT_TRUE(again.has_value());
  EXPECT_EQ(*again, *leases[0]);
}

TEST_F(NetFixture, TunnelChargesEncapsulationAndCrypto) {
  auto gw = net.add_node("gw");
  auto remote = net.add_node("remote");
  net.add_link(gw, remote, LinkParams{sim::Duration::millis(20), 1e6});
  EthernetTunnel tun{net, gw, remote};
  EXPECT_EQ(tun.wire_bytes(1500), 1500u + 90u);
  EXPECT_EQ(tun.wire_bytes(1501), 1501u + 180u);
  EXPECT_THROW(tun.send(true, 100, [](const TransferResult&) {}), std::logic_error);
  bool ready = false;
  tun.establish([&] { ready = true; });
  sim.run();
  EXPECT_TRUE(ready);
  double direct = -1, tunneled = -1;
  net.send(gw, remote, 100'000, [&](const TransferResult& r) { direct = r.elapsed.to_seconds(); });
  sim.run();
  tun.send(true, 100'000, [&](const TransferResult& r) { tunneled = r.elapsed.to_seconds(); });
  sim.run();
  EXPECT_GT(tunneled, direct);  // encapsulation + cipher cost
}

TEST_F(NetFixture, OverlayReroutesAroundCongestion) {
  auto a = net.add_node("a");
  auto b = net.add_node("b");
  auto c = net.add_node("c");
  net.add_link(a, b, LinkParams{sim::Duration::millis(10), 1e7});
  net.add_link(a, c, LinkParams{sim::Duration::millis(8), 1e7});
  net.add_link(c, b, LinkParams{sim::Duration::millis(8), 1e7});
  OverlayNetwork overlay{net, {a, b, c}};
  overlay.start();
  sim.run_for(sim::Duration::seconds(1));
  // Healthy direct path: overlay goes a->b.
  EXPECT_EQ(overlay.current_path(a, b).size(), 2u);
  // Degrade the direct link badly; probes should discover the detour.
  net.set_link(a, b, LinkParams{sim::Duration::millis(500), 1e5});
  sim.run_for(sim::Duration::seconds(10));
  const auto path = overlay.current_path(a, b);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[1], c);
  double elapsed = -1;
  overlay.send(a, b, 1000, [&](const TransferResult& r) { elapsed = r.elapsed.to_seconds(); });
  sim.run_for(sim::Duration::seconds(1));
  EXPECT_LT(elapsed, 0.05);  // detour, not the 500 ms link
  overlay.stop();
}

TEST_F(NetFixture, OverlayProbeRoundsAdvance) {
  auto a = net.add_node("a");
  auto b = net.add_node("b");
  net.add_link(a, b, LinkParams{});
  OverlayNetwork overlay{net, {a, b}, OverlayParams{sim::Duration::seconds(1), 64, 0.5}};
  overlay.start();
  sim.run_for(sim::Duration::seconds(5.5));
  EXPECT_GE(overlay.probe_rounds(), 5u);
  overlay.stop();
  const auto rounds = overlay.probe_rounds();
  sim.run_for(sim::Duration::seconds(5));
  EXPECT_EQ(overlay.probe_rounds(), rounds);
}

TEST(IpAddress, Formatting) {
  EXPECT_EQ(IpAddress::from_octets(192, 168, 1, 42).to_string(), "192.168.1.42");
  EXPECT_FALSE(IpAddress{}.valid());
}

// --- add_link re-registration ------------------------------------------------

TEST_F(NetFixture, AddLinkDuplicateReusesTheRecord) {
  auto a = net.add_node("a");
  auto b = net.add_node("b");
  net.add_link(a, b, LinkParams{sim::Duration::millis(10), 1e6});
  net.send(a, b, 500, [](const TransferResult&) {});
  sim.run();
  EXPECT_EQ(net.link_bytes(a, b), 500u);
  // Re-registering replaces params but keeps counters and up/loss state —
  // no second Link record, no split byte accounting.
  net.set_link_loss(a, b, 0.25);
  net.add_link(a, b, LinkParams{sim::Duration::millis(20), 2e6});
  ASSERT_TRUE(net.link_params(a, b).has_value());
  EXPECT_NEAR(net.link_params(a, b)->latency.to_seconds(), 0.02, 1e-12);
  EXPECT_NEAR(net.link_params(a, b)->bandwidth_bps, 2e6, 1e-6);
  EXPECT_EQ(net.link_bytes(a, b), 500u);
  EXPECT_NEAR(net.link_loss(a, b), 0.25, 1e-12);
  // And routing sees the new params (re-registration is a topology event).
  EXPECT_NEAR(net.rtt(a, b).to_seconds(), 0.04, 1e-9);
}

TEST_F(NetFixture, AddLinkDuplicateRecomputesRoutesButSetLinkDoesNot) {
  auto a = net.add_node("a");
  auto b = net.add_node("b");
  auto c = net.add_node("c");
  net.add_link(a, b, LinkParams{sim::Duration::millis(10), 1e7});  // direct
  net.add_link(a, c, LinkParams{sim::Duration::millis(15), 1e7});
  net.add_link(c, b, LinkParams{sim::Duration::millis(15), 1e7});
  EXPECT_NEAR(net.rtt(a, b).to_seconds(), 0.02, 1e-9);  // direct wins
  // Underlay pinning: set_link degrading the direct path does NOT
  // reroute — like the real Internet, a worse path is still the path
  // (overlays exist to route around it).
  net.set_link(a, b, LinkParams{sim::Duration::millis(500), 1e7});
  EXPECT_NEAR(net.rtt(a, b).to_seconds(), 1.0, 1e-9);
  // add_link re-registration IS a topology/policy event: routes shift
  // to the now-cheaper detour.
  net.add_link(a, b, LinkParams{sim::Duration::millis(500), 1e7});
  EXPECT_NEAR(net.rtt(a, b).to_seconds(), 0.06, 1e-9);
}

TEST_F(NetFixture, DownLinkDropsWithoutRerouting) {
  auto a = net.add_node("a");
  auto b = net.add_node("b");
  auto c = net.add_node("c");
  net.add_link(a, b, LinkParams{sim::Duration::millis(10), 1e7});
  net.add_link(a, c, LinkParams{sim::Duration::millis(15), 1e7});
  net.add_link(c, b, LinkParams{sim::Duration::millis(15), 1e7});
  net.set_link_up(a, b, false);
  // The detour exists, but the underlay keeps routing over the dead
  // direct link; transport reports the drop.
  bool delivered = true;
  net.send(a, b, 100, [&](const TransferResult& r) { delivered = r.delivered; });
  sim.run();
  EXPECT_FALSE(delivered);
}

// --- hierarchical routing zones ---------------------------------------------

struct ZoneFixture : NetFixture {
  LinkParams wan{sim::Duration::millis(17), 2.5e6};
  LinkParams lan{sim::Duration::micros(500), 12.5e6};
};

TEST_F(ZoneFixture, IntraZoneRouteGoesThroughTheGateway) {
  auto z = net.add_zone("site", lan);
  auto a = net.add_zone_node(z, "a");
  auto b = net.add_zone_node(z, "b");
  // a -> gw -> b, two LAN hops each way.
  EXPECT_NEAR(net.rtt(a, b).to_seconds(), 4 * 500e-6, 1e-12);
  double elapsed = -1;
  net.send(a, b, 0, [&](const TransferResult& r) { elapsed = r.elapsed.to_seconds(); });
  sim.run();
  EXPECT_NEAR(elapsed, 2 * 500e-6, 1e-12);
}

TEST_F(ZoneFixture, NestedZonesResolveThroughGatewayChain) {
  auto root = net.add_zone("wan", wan);
  auto c0 = net.add_zone("cluster-0", root, wan, lan);
  auto c1 = net.add_zone("cluster-1", root, wan, lan);
  auto a = net.add_zone_node(c0, "a");
  auto b = net.add_zone_node(c1, "b");
  // a -> c0.gw -> wan.gw -> c1.gw -> b: lan + wan + wan + lan one way.
  const double one_way = 2 * 500e-6 + 2 * 17e-3;
  EXPECT_NEAR(net.rtt(a, b).to_seconds(), 2 * one_way, 1e-12);
  EXPECT_TRUE(net.reachable(a, b));
  // Gateways resolve per zone.
  EXPECT_EQ(net.node_name(net.zone_gateway(c0)), "cluster-0.gw");
  EXPECT_EQ(net.node_zone(a), c0);
  EXPECT_EQ(net.node_zone(net.zone_gateway(c0)), root);  // child gw is a parent member
}

TEST_F(ZoneFixture, ZoneRoutesNeverGrowTheFlatRouteCache) {
  auto root = net.add_zone("wan", wan);
  auto c0 = net.add_zone("cluster-0", root, wan, lan);
  auto c1 = net.add_zone("cluster-1", root, wan, lan);
  auto a = net.add_zone_node(c0, "a");
  auto b = net.add_zone_node(c1, "b");
  for (int i = 0; i < 4; ++i) {
    net.send(a, b, 1000, [](const TransferResult&) {});
    (void)net.rtt(b, a);
  }
  sim.run();
  // This is the O(nodes^2) memory the zone layer exists to kill.
  EXPECT_EQ(net.route_cache_size(), 0u);
}

TEST_F(ZoneFixture, SeparateZoneRootsAreUnreachable) {
  auto r1 = net.add_zone("grid-a", lan);
  auto r2 = net.add_zone("grid-b", lan);
  auto a = net.add_zone_node(r1, "a");
  auto b = net.add_zone_node(r2, "b");
  EXPECT_FALSE(net.reachable(a, b));
  EXPECT_THROW(net.send(a, b, 1, [](const TransferResult&) {}), std::logic_error);
}

TEST_F(ZoneFixture, FlatNodeReachesZoneMembersOverExplicitLinks) {
  auto root = net.add_zone("wan", wan);
  auto c0 = net.add_zone("cluster-0", root, wan, lan);
  auto a = net.add_zone_node(c0, "a");
  auto client = net.add_node("client");  // flat workstation
  net.add_link(client, net.zone_gateway(root), wan);
  // Mixed pair falls back to Dijkstra over the real link graph, which
  // includes every zone membership link.
  EXPECT_TRUE(net.reachable(client, a));
  const double one_way = 17e-3 + 17e-3 + 500e-6;  // client->wan.gw->c0.gw->a
  EXPECT_NEAR(net.rtt(client, a).to_seconds(), 2 * one_way, 1e-12);
}

TEST_F(ZoneFixture, AssignZoneEnrollsAnExistingNode) {
  auto z = net.add_zone("site", lan);
  auto host = net.add_node("host");
  EXPECT_FALSE(net.node_zone(host).has_value());
  net.assign_zone(host, z);
  EXPECT_EQ(net.node_zone(host), z);
  auto peer = net.add_zone_node(z, "peer");
  EXPECT_NEAR(net.rtt(host, peer).to_seconds(), 4 * 500e-6, 1e-12);
}

// --- fluid fidelity tier -----------------------------------------------------

TEST(NetFluid, SingleHopMatchesExactTiming) {
  const auto run_one = [](model::Fidelity f) {
    sim::Simulation sim{1};
    Network net{sim};
    net.set_fidelity(f);
    auto a = net.add_node("a");
    auto b = net.add_node("b");
    net.add_link(a, b, LinkParams{sim::Duration::millis(10), 1e6});
    double elapsed = -1;
    net.send(a, b, 1'000'000,
             [&](const TransferResult& r) { elapsed = r.elapsed.to_seconds(); });
    sim.run();
    return elapsed;
  };
  const double exact = run_one(model::Fidelity::kExact);
  const double fluid = run_one(model::Fidelity::kFluid);
  EXPECT_NEAR(exact, 1.01, 1e-9);
  EXPECT_NEAR(fluid, exact, 1e-8);
}

TEST(NetFluid, FlowRateIsTheMinPathBandwidth) {
  sim::Simulation sim{1};
  Network net{sim};
  net.set_fidelity(model::Fidelity::kFluid);
  auto a = net.add_node("a");
  auto r = net.add_node("r");
  auto b = net.add_node("b");
  net.add_link(a, r, LinkParams{sim::Duration::millis(5), 4e6});
  net.add_link(r, b, LinkParams{sim::Duration::millis(5), 1e6});
  double elapsed = -1;
  net.send(a, b, 1'000'000,
           [&](const TransferResult& res) { elapsed = res.elapsed.to_seconds(); });
  sim.run();
  // One flow at the thin link's 1 MB/s plus end-to-end propagation —
  // no store-and-forward re-serialization at the middle hop.
  EXPECT_NEAR(elapsed, 1.01, 1e-8);
  EXPECT_EQ(net.link_bytes(a, r), 1'000'000u);
  EXPECT_EQ(net.link_bytes(r, b), 1'000'000u);
}

TEST(NetFluid, ConcurrentFlowsShareALinkFairly) {
  sim::Simulation sim{1};
  Network net{sim};
  net.set_fidelity(model::Fidelity::kFluid);
  auto a = net.add_node("a");
  auto b = net.add_node("b");
  net.add_link(a, b, LinkParams{sim::Duration::zero(), 1e6});
  double first = -1, second = -1;
  net.send(a, b, 1'000'000, [&](const TransferResult& r) { first = r.elapsed.to_seconds(); });
  net.send(a, b, 1'000'000, [&](const TransferResult& r) { second = r.elapsed.to_seconds(); });
  sim.run();
  // Each holds half the pipe; both drain together at t=2 (the exact
  // tier's FIFO would finish them at 1 and 2).
  EXPECT_NEAR(first, 2.0, 1e-8);
  EXPECT_NEAR(second, 2.0, 1e-8);
}

TEST(NetFluid, ZeroByteControlPacketIsPureLatency) {
  sim::Simulation sim{1};
  Network net{sim};
  net.set_fidelity(model::Fidelity::kFluid);
  auto a = net.add_node("a");
  auto b = net.add_node("b");
  net.add_link(a, b, LinkParams{sim::Duration::millis(3), 1e6});
  double elapsed = -1;
  net.send(a, b, 0, [&](const TransferResult& r) { elapsed = r.elapsed.to_seconds(); });
  sim.run();
  EXPECT_NEAR(elapsed, 0.003, 1e-12);
  EXPECT_EQ(net.fluid_arena(), nullptr);  // no flow was ever started
}

TEST(NetFluid, DownLinkStillDropsInFluidMode) {
  sim::Simulation sim{1};
  Network net{sim};
  net.set_fidelity(model::Fidelity::kFluid);
  auto a = net.add_node("a");
  auto b = net.add_node("b");
  net.add_link(a, b, LinkParams{sim::Duration::millis(1), 1e6});
  net.set_link_up(a, b, false);
  bool delivered = true;
  net.send(a, b, 100, [&](const TransferResult& r) { delivered = r.delivered; });
  sim.run();
  EXPECT_FALSE(delivered);
}

}  // namespace
}  // namespace vmgrid::net
