#include <gtest/gtest.h>

#include <optional>

#include "middleware/gram.hpp"
#include "middleware/testbed.hpp"
#include "workload/spec_benchmarks.hpp"

namespace vmgrid::middleware {
namespace {

// ---------------------------------------------------------------------------
// Information service

struct InfoFixture : ::testing::Test {
  sim::Simulation sim{21};
  InformationService info{sim};

  HostRecord host_rec(const std::string& name, std::uint64_t free_mb = 512) {
    HostRecord r;
    r.name = name;
    r.ncpus = 2;
    r.memory_mb = 1024;
    r.free_memory_mb = free_mb;
    r.os = "linux";
    return r;
  }
};

TEST_F(InfoFixture, RegisterUpdateUnregister) {
  info.register_host(host_rec("a"));
  info.register_host(host_rec("b"));
  EXPECT_EQ(info.host_count(), 2u);
  info.update_host("a", 1.5, 100);
  auto a = info.lookup_host("a");
  ASSERT_TRUE(a.has_value());
  EXPECT_DOUBLE_EQ(a->current_load, 1.5);
  EXPECT_EQ(a->free_memory_mb, 100u);
  info.register_host(host_rec("a", 999));  // re-register replaces
  EXPECT_EQ(info.host_count(), 2u);
  EXPECT_EQ(info.lookup_host("a")->free_memory_mb, 999u);
  info.unregister_host("a");
  EXPECT_EQ(info.host_count(), 1u);
  EXPECT_FALSE(info.lookup_host("a").has_value());
}

TEST_F(InfoFixture, QueryFiltersByPredicate) {
  for (int i = 0; i < 10; ++i) {
    info.register_host(host_rec("h" + std::to_string(i), i < 4 ? 64 : 512));
  }
  std::optional<std::size_t> matches;
  QueryOptions opts;
  opts.time_bound = sim::Duration::seconds(1);  // enough to scan everything
  opts.max_results = 100;
  info.query_hosts([](const HostRecord& h) { return h.free_memory_mb >= 512; }, opts,
                   [&](std::vector<HostRecord> out) { matches = out.size(); });
  sim.run();
  EXPECT_EQ(matches, std::optional<std::size_t>{6});
}

TEST_F(InfoFixture, TimeBoundYieldsPartialResults) {
  for (int i = 0; i < 1000; ++i) info.register_host(host_rec("h" + std::to_string(i)));
  QueryOptions tight;
  tight.time_bound = sim::Duration::micros(250);  // ~10 records at 25us each
  tight.max_results = 1000;
  std::size_t partial = 0;
  info.query_hosts([](const HostRecord&) { return true; }, tight,
                   [&](std::vector<HostRecord> out) { partial = out.size(); });
  sim.run();
  EXPECT_GT(partial, 0u);
  EXPECT_LE(partial, 12u);  // bounded, nowhere near all 1000
}

TEST_F(InfoFixture, QueryCostsSimulatedTime) {
  for (int i = 0; i < 100; ++i) info.register_host(host_rec("h" + std::to_string(i)));
  const auto t0 = sim.now();
  QueryOptions opts;
  opts.time_bound = sim::Duration::millis(10);
  opts.max_results = 1000;
  info.query_hosts([](const HostRecord&) { return true; }, opts,
                   [](std::vector<HostRecord>) {});
  sim.run();
  EXPECT_GE((sim.now() - t0).to_seconds(), 100 * 25e-6 * 0.9);
}

TEST_F(InfoFixture, MaxResultsStopsScan) {
  for (int i = 0; i < 50; ++i) info.register_host(host_rec("h" + std::to_string(i)));
  QueryOptions opts;
  opts.time_bound = sim::Duration::seconds(1);
  opts.max_results = 3;
  std::size_t n = 0;
  info.query_hosts([](const HostRecord&) { return true; }, opts,
                   [&](std::vector<HostRecord> out) { n = out.size(); });
  sim.run();
  EXPECT_EQ(n, 3u);
}

TEST_F(InfoFixture, PlacementJoinCrossesFilteredTables) {
  VmFutureRecord f1{.host_name = "full", .max_instances = 2, .active_instances = 2};
  VmFutureRecord f2{.host_name = "free", .max_instances = 2, .active_instances = 0,
                    .max_memory_mb = 256};
  info.register_future(f1);
  info.register_future(f2);
  ImageRecord linux_img;
  linux_img.name = "rh7.2";
  linux_img.os = "redhat-7.2";
  ImageRecord w2k;
  w2k.name = "w2k";
  w2k.os = "windows-2000";
  info.register_image(linux_img);
  info.register_image(w2k);

  QueryOptions opts;
  opts.time_bound = sim::Duration::seconds(1);
  std::vector<Placement> placements;
  info.query_placements([](const VmFutureRecord&) { return true; },
                        [](const ImageRecord& i) { return i.os == "redhat-7.2"; }, opts,
                        [&](std::vector<Placement> p) { placements = std::move(p); });
  sim.run();
  ASSERT_EQ(placements.size(), 1u);  // saturated future filtered out
  EXPECT_EQ(placements[0].future.host_name, "free");
  EXPECT_EQ(placements[0].image.name, "rh7.2");
}

TEST_F(InfoFixture, VmRecordsLifecycle) {
  info.register_vm(VmRecord{"vm1", "hostA", "alice", "running", {}});
  EXPECT_EQ(info.vm_count(), 1u);
  info.update_vm_state("vm1", "suspended");
  EXPECT_EQ(info.lookup_vm("vm1")->state, "suspended");
  info.unregister_vm("vm1");
  EXPECT_EQ(info.vm_count(), 0u);
}

// ---------------------------------------------------------------------------
// GridFTP

TEST(GridFtpTest, StagesWholeFileAcrossWan) {
  testbed::WideAreaTestbed tb{31};
  auto& g = *tb.grid;
  tb.images->fs().create("dataset", 8ull << 20);
  std::optional<FtpTransferResult> result;
  g.ftp().transfer(tb.images->fs(), tb.images->node(), "dataset",
                   tb.compute->host().fs(), tb.compute->node(), "dataset",
                   [&](FtpTransferResult r) { result = std::move(r); });
  g.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok());
  EXPECT_EQ(result->bytes, 8ull << 20);
  EXPECT_TRUE(tb.compute->host().fs().exists("dataset"));
  // 8 MiB over a 2.5 MB/s WAN: at least ~3.3 s.
  EXPECT_GT(result->elapsed.to_seconds(), 3.0);
}

TEST(GridFtpTest, MissingSourceFails) {
  testbed::WideAreaTestbed tb{32};
  auto& g = *tb.grid;
  std::optional<FtpTransferResult> result;
  g.ftp().transfer(tb.images->fs(), tb.images->node(), "ghost", tb.compute->host().fs(),
                   tb.compute->node(), "ghost", [&](FtpTransferResult r) { result = r; });
  g.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->ok());
  EXPECT_EQ(result->status.code(), StatusCode::kNotFound);
  EXPECT_EQ(result->status.subsystem(), "gridftp");
}

TEST(GridFtpTest, ParallelStreamsBeatSingleStream) {
  auto run_with = [](std::uint32_t streams) {
    testbed::WideAreaTestbed tb{33};
    auto& g = *tb.grid;
    tb.images->fs().create("big", 16ull << 20);
    GridFtpParams p;
    p.parallel_streams = streams;
    double elapsed = -1;
    g.ftp().transfer(tb.images->fs(), tb.images->node(), "big",
                     tb.compute->host().fs(), tb.compute->node(), "big", p,
                     [&](FtpTransferResult r) { elapsed = r.elapsed.to_seconds(); });
    g.run();
    return elapsed;
  };
  // The WAN pipe is the bottleneck either way, but parallel streams hide
  // the per-chunk disk + latency gaps.
  EXPECT_LT(run_with(4), run_with(1));
}

// ---------------------------------------------------------------------------
// GRAM

TEST(GramTest, GlobusrunChargesAuthAndJobmanager) {
  testbed::StartupTestbed tb{41};
  auto& g = *tb.grid;
  tb.compute->gram().set_executor([](const std::string& rsl,
                                     GramService::ExecutorDone done) {
    done({}, "ran:" + rsl);
  });
  GramClient client{g.fabric(), tb.client};
  std::optional<GramJobResult> result;
  client.globusrun(tb.compute->node(), "echo", [&](GramJobResult r) { result = r; });
  g.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok());
  EXPECT_EQ(result->output, "ran:echo");
  // Auth (1.4s) + jobmanager (1.1s) + RPC overheads.
  EXPECT_GT(result->elapsed.to_seconds(), 2.5);
  EXPECT_LT(result->elapsed.to_seconds(), 4.5);
  EXPECT_EQ(tb.compute->gram().jobs_run(), 1u);
}

TEST(GramTest, NoExecutorFailsCleanly) {
  testbed::StartupTestbed tb{42};
  auto& g = *tb.grid;
  GramClient client{g.fabric(), tb.client};
  std::optional<GramJobResult> result;
  client.globusrun(tb.compute->node(), "x", [&](GramJobResult r) { result = r; });
  g.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->ok());
  EXPECT_EQ(result->status.subsystem(), "gram");
  EXPECT_NE(result->status.to_string().find("no executor"), std::string::npos);
}

// ---------------------------------------------------------------------------
// ComputeServer instantiation paths

struct InstantiateFixture : ::testing::Test {
  testbed::StartupTestbed tb{51};

  InstantiationStats instantiate(VmStartMode mode, StateAccess access,
                                 vm::VirtualMachine** vm_out = nullptr) {
    InstantiateOptions opts;
    opts.config = testbed::paper_vm("t-vm");
    opts.image = testbed::paper_image();
    opts.mode = mode;
    opts.access = access;
    opts.image_server_node = tb.images->node();
    std::optional<InstantiationStats> stats;
    tb.compute->instantiate(opts, [&](vm::VirtualMachine* v, InstantiationStats s) {
      stats = s;
      if (vm_out != nullptr) *vm_out = v;
    });
    tb.grid->run();
    return *stats;
  }
};

TEST_F(InstantiateFixture, DiskFsRestoreIsFastest) {
  vm::VirtualMachine* vmachine = nullptr;
  const auto s = instantiate(VmStartMode::kWarmRestore, StateAccess::kNonPersistentLocal,
                             &vmachine);
  EXPECT_TRUE(s.ok());
  ASSERT_NE(vmachine, nullptr);
  EXPECT_EQ(vmachine->state(), vm::VmPowerState::kRunning);
  EXPECT_LT(s.total.to_seconds(), 20.0);
}

TEST_F(InstantiateFixture, PersistentCopyChargesFullDiskCopy) {
  const auto s = instantiate(VmStartMode::kWarmRestore, StateAccess::kPersistentCopy);
  EXPECT_TRUE(s.ok());
  EXPECT_GT(s.state_preparation.to_seconds(), 150.0);  // 2 GiB through one spindle
  EXPECT_TRUE(tb.compute->host().fs().exists("t-vm.disk"));
}

TEST(InstantiatePaths, LoopbackSlowerThanDiskFs) {
  auto run = [](StateAccess access) {
    testbed::StartupTestbed tb{52};
    InstantiateOptions opts;
    opts.config = testbed::paper_vm("t-vm");
    opts.image = testbed::paper_image();
    opts.mode = VmStartMode::kWarmRestore;
    opts.access = access;
    std::optional<InstantiationStats> stats;
    tb.compute->instantiate(opts,
                            [&](vm::VirtualMachine*, InstantiationStats s) { stats = s; });
    tb.grid->run();
    return stats->total.to_seconds();
  };
  const double diskfs = run(StateAccess::kNonPersistentLocal);
  const double loopback = run(StateAccess::kNonPersistentLoopback);
  EXPECT_GT(loopback, diskfs + 5.0);   // per-RPC stack cost on 16k block reads
  EXPECT_LT(loopback, diskfs + 40.0);  // but nowhere near a disk copy
}

TEST_F(InstantiateFixture, VfsPathWorksWithoutLocalImage) {
  // Wipe the preloaded image from the host: VFS path must still work.
  tb.compute->host().fs().remove(testbed::paper_image().disk_file());
  tb.compute->host().fs().remove(testbed::paper_image().memory_file());
  vm::VirtualMachine* vmachine = nullptr;
  const auto s =
      instantiate(VmStartMode::kWarmRestore, StateAccess::kNonPersistentVfs, &vmachine);
  EXPECT_TRUE(s.ok());
  ASSERT_NE(vmachine, nullptr);
  EXPECT_EQ(vmachine->state(), vm::VmPowerState::kRunning);
}

TEST_F(InstantiateFixture, LocalPathFailsWithoutImage) {
  tb.compute->host().fs().remove(testbed::paper_image().disk_file());
  const auto s = instantiate(VmStartMode::kColdBoot, StateAccess::kNonPersistentLocal);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.status.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.status.subsystem(), "compute");
  EXPECT_NE(s.status.message().find("image not on local disk"), std::string::npos);
}

TEST_F(InstantiateFixture, PublishedFutureTracksInstances) {
  tb.compute->publish(tb.grid->info());
  instantiate(VmStartMode::kWarmRestore, StateAccess::kNonPersistentLocal);
  QueryOptions opts;
  opts.time_bound = sim::Duration::seconds(1);
  std::optional<std::uint32_t> active;
  tb.grid->info().query_futures([](const VmFutureRecord&) { return true; }, opts,
                                [&](std::vector<VmFutureRecord> f) {
                                  if (!f.empty()) active = f[0].active_instances;
                                });
  tb.grid->run();
  EXPECT_EQ(active, std::optional<std::uint32_t>{1});
}

// ---------------------------------------------------------------------------
// Sessions (the §4 lifecycle end to end)

struct SessionFixture : ::testing::Test {
  testbed::WideAreaTestbed tb{61};

  SessionFixture() { tb.compute->publish(tb.grid->info()); }

  VmSession* create(SessionRequest req) {
    VmSession* out = nullptr;
    Status error;
    tb.grid->sessions().create_session(std::move(req), [&](VmSession* s, Status e) {
      out = s;
      error = std::move(e);
    });
    tb.grid->run();
    EXPECT_TRUE(out != nullptr) << error.to_string();
    return out;
  }
};

TEST_F(SessionFixture, SixStepLifecycleProducesRunningVm) {
  SessionRequest req;
  req.user = "alice";
  req.os = "redhat-7.2";
  req.query.time_bound = sim::Duration::seconds(1);
  VmSession* s = create(std::move(req));
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->machine().state(), vm::VmPowerState::kRunning);
  EXPECT_TRUE(s->ip().valid());            // step 4: DHCP identity
  EXPECT_EQ(&s->server(), tb.compute);     // placed on the only future
  EXPECT_EQ(tb.grid->sessions().active_sessions(), 1u);
  EXPECT_TRUE(tb.grid->info().lookup_vm(s->name()).has_value());
  EXPECT_EQ(tb.grid->accounting().usage("alice").vms_instantiated, 1u);
  s->shutdown();
  EXPECT_EQ(tb.grid->sessions().active_sessions(), 0u);
  EXPECT_FALSE(tb.grid->info().lookup_vm("vm-alice-1").has_value());
}

TEST_F(SessionFixture, TasksAreAccountedToOwner) {
  SessionRequest req;
  req.user = "bob";
  req.query.time_bound = sim::Duration::seconds(1);
  VmSession* s = create(std::move(req));
  ASSERT_NE(s, nullptr);
  std::optional<vm::TaskResult> result;
  s->run_task(workload::micro_test_task(10.0),
              [&](vm::TaskResult r) { result = std::move(r); });
  tb.grid->run();
  ASSERT_TRUE(result.has_value());
  const auto usage = tb.grid->accounting().usage("bob");
  EXPECT_EQ(usage.tasks_completed, 1u);
  EXPECT_GT(usage.cpu_seconds, 9.9);
  s->shutdown();
}

TEST_F(SessionFixture, NoPlacementYieldsError) {
  SessionRequest req;
  req.user = "carol";
  req.os = "windows-2000";  // no such image registered
  req.query.time_bound = sim::Duration::seconds(1);
  VmSession* out = nullptr;
  Status error;
  tb.grid->sessions().create_session(std::move(req), [&](VmSession* s, Status e) {
    out = s;
    error = std::move(e);
  });
  tb.grid->run();
  EXPECT_EQ(out, nullptr);
  EXPECT_EQ(error.code(), StatusCode::kNotFound);
  EXPECT_NE(error.message().find("no suitable"), std::string::npos);
}

TEST_F(SessionFixture, DataServerMountEstablished) {
  tb.data->add_user_file("dave", "input.dat", 4 << 20);
  SessionRequest req;
  req.user = "dave";
  req.data_server = tb.data;
  req.query.time_bound = sim::Duration::seconds(1);
  VmSession* s = create(std::move(req));
  ASSERT_NE(s, nullptr);
  ASSERT_NE(s->data_mount(), nullptr);
  std::optional<vfs::VfsIoStats> io;
  s->data_mount()->proxy().read(DataServer::user_path("dave", "input.dat"), 0, 1 << 20,
                                [&](vfs::VfsIoStats st) { io = st; });
  tb.grid->run();
  ASSERT_TRUE(io.has_value());
  EXPECT_TRUE(io->ok());
  s->shutdown();
}

TEST_F(SessionFixture, MigrationKeepsSessionAlive) {
  auto& target = tb.grid->add_compute_server(
      testbed::paper_compute("nwu-compute-2", testbed::table1_host()));
  tb.grid->connect(target.node(), tb.nwu_router, Grid::lan_link());
  target.publish(tb.grid->info());

  SessionRequest req;
  req.user = "erin";
  req.query.time_bound = sim::Duration::seconds(1);
  VmSession* s = create(std::move(req));
  ASSERT_NE(s, nullptr);
  ComputeServer* original = &s->server();

  std::optional<Status> migrated;
  s->migrate_to(original == &target ? *tb.compute : target,
                [&](Status st) { migrated = std::move(st); });
  tb.grid->run();
  ASSERT_TRUE(migrated.has_value());
  EXPECT_TRUE(migrated->ok());
  EXPECT_NE(&s->server(), original);
  EXPECT_EQ(s->machine().state(), vm::VmPowerState::kRunning);
  EXPECT_TRUE(s->ip().valid());

  // The session still runs tasks after the move.
  std::optional<vm::TaskResult> result;
  s->run_task(workload::micro_test_task(5.0),
              [&](vm::TaskResult r) { result = std::move(r); });
  tb.grid->run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok());
  s->shutdown();
}

// ---------------------------------------------------------------------------
// Accounting

TEST(AccountingTest, AggregatesPerUser) {
  Accounting acct;
  acct.charge_cpu("u1", 10.0);
  acct.charge_cpu("u1", 5.0);
  acct.charge_transfer("u1", 1000);
  acct.charge_io("u2", 7);
  acct.count_vm("u2");
  acct.count_task("u1");
  acct.charge_vm_time("u2", sim::Duration::seconds(30));
  EXPECT_DOUBLE_EQ(acct.usage("u1").cpu_seconds, 15.0);
  EXPECT_EQ(acct.usage("u1").bytes_transferred, 1000u);
  EXPECT_EQ(acct.usage("u1").tasks_completed, 1u);
  EXPECT_EQ(acct.usage("u2").io_rpcs, 7u);
  EXPECT_EQ(acct.usage("u2").vms_instantiated, 1u);
  EXPECT_DOUBLE_EQ(acct.usage("u2").vm_seconds, 30.0);
  EXPECT_DOUBLE_EQ(acct.usage("nobody").cpu_seconds, 0.0);
  const auto report = acct.report();
  ASSERT_EQ(report.size(), 2u);
  EXPECT_EQ(report[0].first, "u1");
}

TEST(ScaleTestbed, ZonesCarryHostsAndResolveRoutes) {
  testbed::ScaleTestbed tb{1, /*clusters=*/2, /*hosts_per_cluster=*/3};
  auto& g = *tb.grid;
  ASSERT_EQ(tb.cluster_zones.size(), 2u);
  ASSERT_EQ(tb.computes.size(), 6u);

  // Every HostRecord carries its cluster zone name, and the registry can
  // be worked zone-by-zone instead of scanned whole.
  const auto c0 = g.info().hosts_in_zone("cluster-0");
  const auto c1 = g.info().hosts_in_zone("cluster-1");
  EXPECT_EQ(c0.size(), 3u);
  EXPECT_EQ(c1.size(), 3u);
  for (const auto& r : c0) EXPECT_EQ(r.zone, "cluster-0");
  EXPECT_TRUE(g.info().hosts_in_zone("cluster-9").empty());

  // Cross-cluster routes resolve structurally through the gateway chain:
  // reachable, costlier than intra-cluster, and never cached per pair.
  const auto n_intra = tb.computes[0]->node();
  const auto n_same = tb.computes[1]->node();
  const auto n_cross = tb.computes[3]->node();  // cluster-major order
  EXPECT_TRUE(g.network().reachable(n_intra, n_cross));
  EXPECT_GT(g.network().rtt(n_intra, n_cross), g.network().rtt(n_intra, n_same));
  EXPECT_EQ(g.network().route_cache_size(), 0u);
}

}  // namespace
}  // namespace vmgrid::middleware
