// System-level properties: whole-grid determinism, the GridFTP staging
// path inside session creation, logging, and multi-session churn.

#include <gtest/gtest.h>

#include <optional>
#include <sstream>

#include "middleware/testbed.hpp"
#include "sim/logger.hpp"
#include "workload/spec_benchmarks.hpp"

namespace vmgrid {
namespace {

using namespace middleware;

/// Run a fixed scenario and return a fingerprint of everything timing-
/// related it produced.
std::string scenario_fingerprint(std::uint64_t seed) {
  testbed::WideAreaTestbed tb{seed};
  tb.compute->publish(tb.grid->info());
  std::ostringstream out;
  SessionRequest req;
  req.user = "det";
  req.query.time_bound = sim::Duration::millis(100);
  tb.grid->sessions().create_session(req, [&](VmSession* s, Status) {
    if (s == nullptr) return;
    out << "ready@" << tb.grid->now().to_seconds() << ";ip=" << s->ip().to_string();
    s->run_task(workload::micro_test_task(25.0), [&, s](vm::TaskResult r) {
      out << ";done@" << tb.grid->now().to_seconds() << ";wall=" << r.wall.count();
      s->shutdown();
    });
  });
  tb.grid->run();
  out << ";events=" << tb.grid->simulation().executed_events();
  return out.str();
}

TEST(SystemDeterminism, SameSeedSameHistory) {
  const auto a = scenario_fingerprint(12345);
  const auto b = scenario_fingerprint(12345);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
  const auto c = scenario_fingerprint(54321);
  EXPECT_NE(a, c);  // different seed, different jitter draws
}

TEST(SystemStaging, SessionStagesImageWhenLocalAccessRequested) {
  // The compute host has no local copy of the image; a DiskFS-access
  // session must stage it from the image server (GridFTP) first.
  testbed::WideAreaTestbed tb{401};
  tb.compute->publish(tb.grid->info());
  ASSERT_FALSE(tb.compute->host().fs().exists(testbed::paper_image().disk_file()));

  SessionRequest req;
  req.user = "stager";
  req.access = StateAccess::kNonPersistentLocal;
  req.start = VmStartMode::kWarmRestore;
  req.query.time_bound = sim::Duration::millis(100);
  VmSession* session = nullptr;
  Status error;
  const auto t0 = tb.grid->now();
  tb.grid->sessions().create_session(req, [&](VmSession* s, Status e) {
    session = s;
    error = std::move(e);
  });
  tb.grid->run();
  ASSERT_NE(session, nullptr) << error.to_string();
  EXPECT_TRUE(tb.compute->host().fs().exists(testbed::paper_image().disk_file()));
  // 2 GiB over a 2.5 MB/s WAN: staging dominates (> 10 minutes).
  EXPECT_GT((tb.grid->now() - t0).to_seconds(), 600.0);
  session->shutdown();
}

TEST(SystemChurn, ManySessionsAcrossServersAllComplete) {
  Grid grid{402};
  auto sw = grid.add_router("switch");
  ImageServerParams isp;
  isp.name = "images";
  auto& images = grid.add_image_server(isp);
  grid.connect(images.node(), sw, Grid::lan_link());
  for (int i = 0; i < 3; ++i) {
    auto& cs = grid.add_compute_server(
        testbed::paper_compute("farm-" + std::to_string(i), testbed::fig1_host()));
    grid.connect(cs.node(), sw, Grid::lan_link());
  }
  images.add_image(testbed::paper_image(), &grid.info());
  for (auto* cs : grid.compute_servers()) cs->publish(grid.info());

  constexpr int kSessions = 9;
  int completed_tasks = 0;
  std::vector<VmSession*> sessions;
  for (int i = 0; i < kSessions; ++i) {
    SessionRequest req;
    req.user = "user-" + std::to_string(i % 3);
    req.access = StateAccess::kNonPersistentVfs;
    req.query.time_bound = sim::Duration::millis(200);
    grid.sessions().create_session(req, [&](VmSession* s, Status e) {
      ASSERT_NE(s, nullptr) << e.to_string();
      sessions.push_back(s);
      s->run_task(workload::micro_test_task(30.0),
                  [&](vm::TaskResult r) { completed_tasks += r.ok() ? 1 : 0; });
    });
  }
  grid.run();
  EXPECT_EQ(completed_tasks, kSessions);
  EXPECT_EQ(grid.sessions().active_sessions(), static_cast<std::size_t>(kSessions));

  // All three users were accounted; all three servers were used
  // (least-active placement spreads the 9 sessions 3-3-3).
  for (int u = 0; u < 3; ++u) {
    const auto usage = grid.accounting().usage("user-" + std::to_string(u));
    EXPECT_EQ(usage.tasks_completed, 3u);
    EXPECT_EQ(usage.vms_instantiated, 3u);
  }
  for (auto* cs : grid.compute_servers()) {
    EXPECT_EQ(cs->vmm().vm_count(), 3u);
  }
  for (auto* s : sessions) s->shutdown();
  EXPECT_EQ(grid.sessions().active_sessions(), 0u);
}

TEST(LoggerTest, LevelsGateOutputAndFormatIncludesTime) {
  sim::Simulation sim;
  std::ostringstream sink;
  sim.log().set_sink(&sink);
  sim.log().set_level(sim::LogLevel::kInfo);
  EXPECT_TRUE(sim.log().enabled(sim::LogLevel::kWarn));
  EXPECT_FALSE(sim.log().enabled(sim::LogLevel::kDebug));
  sim.schedule_after(sim::Duration::seconds(2), [&] {
    VMGRID_LOG(sim, kInfo, "unit-test", "value=" << 42);
    VMGRID_LOG(sim, kDebug, "unit-test", "suppressed");
  });
  sim.run();
  const auto text = sink.str();
  EXPECT_NE(text.find("INFO unit-test: value=42"), std::string::npos);
  EXPECT_NE(text.find("[2.000000s]"), std::string::npos);
  EXPECT_EQ(text.find("suppressed"), std::string::npos);
}

TEST(TimeFormat, HumanReadableDurations) {
  EXPECT_EQ(sim::to_string(sim::Duration::seconds(2.5)), "2.500s");
  EXPECT_EQ(sim::to_string(sim::Duration::millis(12)), "12.000ms");
  EXPECT_EQ(sim::to_string(sim::Duration::micros(7)), "7.000us");
}

}  // namespace
}  // namespace vmgrid
