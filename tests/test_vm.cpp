#include <gtest/gtest.h>

#include <optional>

#include "host/physical_host.hpp"
#include "net/rpc.hpp"
#include "sim/simulation.hpp"
#include "vm/migration.hpp"
#include "vm/overhead_model.hpp"
#include "vm/task_runner.hpp"
#include "vm/virtual_machine.hpp"
#include "vm/vm_disk.hpp"
#include "vm/vmm.hpp"
#include "workload/spec_benchmarks.hpp"

namespace vmgrid::vm {
namespace {

using storage::kBlockSize;

TEST(OverheadModel, BaseEfficiencyMatchesDilations) {
  workload::TaskSpec t;
  t.user_seconds = 100.0;
  t.sys_seconds = 10.0;
  t.vm_user_dilation = 0.02;
  t.vm_sys_factor = 4.0;
  EXPECT_DOUBLE_EQ(OverheadModel::observed_user_seconds(t), 102.0);
  EXPECT_DOUBLE_EQ(OverheadModel::observed_sys_seconds(t), 40.0);
  EXPECT_DOUBLE_EQ(OverheadModel::base_efficiency(t), 110.0 / 142.0);
}

TEST(OverheadModel, ContentionFactorGrowsWithLoadAndCorunners) {
  OverheadModel m{VmmCostModel{}};
  EXPECT_DOUBLE_EQ(m.contention_factor(0.0, 0), 1.0);
  EXPECT_GT(m.contention_factor(1.0, 0), 1.0);
  EXPECT_GT(m.contention_factor(0.0, 2), 1.0);
  EXPECT_GT(m.contention_factor(1.0, 2), m.contention_factor(1.0, 0));
  // External demand saturates at one CPU's worth.
  EXPECT_DOUBLE_EQ(m.contention_factor(1.0, 0), m.contention_factor(5.0, 0));
}

TEST(OverheadModel, PureUserTaskHasNearUnityEfficiency) {
  workload::TaskSpec t;
  t.user_seconds = 10.0;
  t.sys_seconds = 0.0;
  t.vm_user_dilation = 0.01;
  EXPECT_GT(OverheadModel::base_efficiency(t), 0.98);
}

struct VmFixture : ::testing::Test {
  sim::Simulation sim{7};
  net::Network net{sim};
  host::HostParams hp;
  std::unique_ptr<host::PhysicalHost> hostp;
  std::unique_ptr<Vmm> vmm;
  VmImageSpec image;

  VmFixture() {
    hp.name = "compute-1";
    hp.memory_mb = 1024;
    hostp = std::make_unique<host::PhysicalHost>(sim, net, hp);
    vmm = std::make_unique<Vmm>(*hostp);
    // Small, fast image so lifecycle tests run quickly.
    image.name = "tiny";
    image.disk_bytes = 64ull << 20;
    image.memory_state_bytes = 16ull << 20;
    image.boot_read_bytes = 8ull << 20;
    image.boot_cpu_seconds = 10.0;
    image.boot_fixed_seconds = 5.0;
    image.restore_cpu_seconds = 0.5;
    image.restore_fixed_seconds = 0.5;
    hostp->fs().create(image.disk_file(), image.disk_bytes);
    hostp->fs().create(image.memory_file(), image.memory_state_bytes);
    hostp->fs().create("diff", 0);
  }

  VmStorage local_storage() {
    VmStorage s;
    s.disk = std::make_unique<CowDisk>(
        make_local_accessor(hostp->fs(), image.disk_file()),
        make_local_accessor(hostp->fs(), "diff"));
    s.memory_state = make_local_accessor(hostp->fs(), image.memory_file());
    return s;
  }
};

TEST_F(VmFixture, BootTransitionsToRunning) {
  auto& vm = vmm->create_vm(VmConfig{.name = "vm1"}, image, local_storage());
  EXPECT_EQ(vm.state(), VmPowerState::kPoweredOff);
  bool running = false;
  vm.boot([&] { running = true; });
  EXPECT_EQ(vm.state(), VmPowerState::kBooting);
  sim.run();
  EXPECT_TRUE(running);
  EXPECT_EQ(vm.state(), VmPowerState::kRunning);
  // Boot cost: fixed (~5s) + cpu (~10s) + I/O.
  EXPECT_GT(sim.now().to_seconds(), 12.0);
  EXPECT_LT(sim.now().to_seconds(), 25.0);
}

TEST_F(VmFixture, RestoreIsMuchFasterThanBoot) {
  auto& cold = vmm->create_vm(VmConfig{.name = "cold"}, image, local_storage());
  double boot_time = -1;
  const auto t0 = sim.now();
  cold.boot([&] { boot_time = (sim.now() - t0).to_seconds(); });
  sim.run();

  auto& warm = vmm->create_vm(VmConfig{.name = "warm"}, image, local_storage());
  double restore_time = -1;
  const auto t1 = sim.now();
  warm.restore([&] { restore_time = (sim.now() - t1).to_seconds(); });
  sim.run();
  EXPECT_EQ(warm.state(), VmPowerState::kRunning);
  EXPECT_LT(restore_time * 3, boot_time);
}

TEST_F(VmFixture, RestoreWithoutSnapshotThrows) {
  VmStorage s;
  s.disk = make_local_accessor(hostp->fs(), image.disk_file());
  auto& vm = vmm->create_vm(VmConfig{.name = "nosnap"}, image, std::move(s));
  EXPECT_THROW(vm.restore([] {}), std::logic_error);
}

TEST_F(VmFixture, LifecycleGuards) {
  auto& vm = vmm->create_vm(VmConfig{.name = "guarded"}, image, local_storage());
  EXPECT_THROW(vm.run_task(workload::micro_test_task(), [](TaskResult) {}),
               std::logic_error);
  EXPECT_THROW(vm.suspend([] {}), std::logic_error);
  vm.boot([] {});
  EXPECT_THROW(vm.boot([] {}), std::logic_error);  // already booting
  sim.run();
  EXPECT_THROW(vm.resume([] {}), std::logic_error);  // not suspended
}

TEST_F(VmFixture, SuspendResumeRoundTrip) {
  auto& vm = vmm->create_vm(VmConfig{.name = "sr"}, image, local_storage());
  vm.boot([] {});
  sim.run();
  bool suspended = false;
  vm.suspend([&] { suspended = true; });
  sim.run();
  EXPECT_TRUE(suspended);
  EXPECT_EQ(vm.state(), VmPowerState::kSuspended);
  EXPECT_TRUE(hostp->fs().exists(vm.suspend_file()));
  bool resumed = false;
  vm.resume([&] { resumed = true; });
  sim.run();
  EXPECT_TRUE(resumed);
  EXPECT_EQ(vm.state(), VmPowerState::kRunning);
}

TEST_F(VmFixture, MemoryAdmissionControl) {
  VmConfig big;
  big.name = "big";
  big.memory_mb = 900;
  vmm->create_vm(big, image, local_storage());
  VmConfig second;
  second.name = "second";
  second.memory_mb = 256;
  EXPECT_THROW(vmm->create_vm(second, image, local_storage()), std::runtime_error);
  EXPECT_EQ(vmm->vm_count(), 1u);
}

TEST_F(VmFixture, DestroyReleasesMemory) {
  VmConfig cfg;
  cfg.name = "temp";
  cfg.memory_mb = 512;
  auto& vm = vmm->create_vm(cfg, image, local_storage());
  const auto free_with_vm = hostp->free_memory_mb();
  vmm->destroy_vm(vm);
  EXPECT_EQ(hostp->free_memory_mb(),
            free_with_vm + 512 + vmm->params().per_vm_overhead_mb);
  EXPECT_EQ(vmm->vm_count(), 0u);
}

TEST_F(VmFixture, TaskOnVmShowsDilatedCpuTimes) {
  auto& vm = vmm->create_vm(VmConfig{.name = "worker"}, image, local_storage());
  vm.boot([] {});
  sim.run();
  workload::TaskSpec spec;
  spec.name = "job";
  spec.user_seconds = 100.0;
  spec.sys_seconds = 2.0;
  spec.vm_user_dilation = 0.01;
  spec.vm_sys_factor = 3.0;
  std::optional<TaskResult> result;
  vm.run_task(spec, [&](TaskResult r) { result = std::move(r); });
  sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok());
  EXPECT_NEAR(result->user_cpu_seconds, 101.0, 1e-9);
  EXPECT_NEAR(result->sys_cpu_seconds, 6.0, 1e-9);
  // Wall clock reflects the dilation: at least observed CPU.
  EXPECT_GE(result->wall.to_seconds(), 106.9);
  EXPECT_LT(result->wall.to_seconds(), 112.0);
}

TEST_F(VmFixture, PhysicalRunHasNoOverhead) {
  workload::TaskSpec spec;
  spec.name = "native";
  spec.user_seconds = 50.0;
  spec.sys_seconds = 1.0;
  std::optional<TaskResult> result;
  run_task(sim, hostp->cpu(), spec, TaskRunOptions{},
           [&](TaskResult r) { result = std::move(r); });
  sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(result->wall.to_seconds(), 51.0, 1e-6);
  EXPECT_NEAR(result->user_cpu_seconds, 50.0, 1e-9);
  EXPECT_NEAR(result->sys_cpu_seconds, 1.0, 1e-9);
}

TEST_F(VmFixture, GuestCorunnersSlowEachOther) {
  // Two CPU-bound guest tasks inside one VM on a dual-CPU host: both
  // CPUs are available, but trapped guest context switches add overhead
  // relative to a single task.
  auto& vm = vmm->create_vm(VmConfig{.name = "busy"}, image, local_storage());
  vm.boot([] {});
  sim.run();

  auto one = workload::micro_test_task(30.0);
  std::optional<TaskResult> solo;
  vm.run_task(one, [&](TaskResult r) { solo = std::move(r); });
  sim.run();

  std::optional<TaskResult> a, b;
  vm.run_task(one, [&](TaskResult r) { a = std::move(r); });
  vm.run_task(one, [&](TaskResult r) { b = std::move(r); });
  sim.run();
  ASSERT_TRUE(solo && a && b);
  EXPECT_GT(a->wall.to_seconds(), solo->wall.to_seconds() * 1.01);
  // ... but nowhere near the 2x of actual CPU contention.
  EXPECT_LT(a->wall.to_seconds(), solo->wall.to_seconds() * 1.15);
}

TEST_F(VmFixture, ExternalLoadCausesWorldSwitchSlowdown) {
  auto& vm = vmm->create_vm(VmConfig{.name = "victim"}, image, local_storage());
  vm.boot([] {});
  sim.run();

  auto spec = workload::micro_test_task(30.0);
  std::optional<TaskResult> quiet;
  vm.run_task(spec, [&](TaskResult r) { quiet = std::move(r); });
  sim.run();

  // Saturate one host CPU with native load; the dual-CPU host still has
  // a full CPU for the VM, so any slowdown is virtualization overhead.
  auto bg = hostp->cpu().add("native-load", {}, host::CpuEngine::kInfiniteWork);
  std::optional<TaskResult> loaded;
  vm.run_task(spec, [&](TaskResult r) { loaded = std::move(r); });
  sim.run_until(sim.now() + sim::Duration::seconds(120));
  hostp->cpu().remove(bg);
  ASSERT_TRUE(quiet && loaded);
  const double slowdown = loaded->wall.to_seconds() / quiet->wall.to_seconds();
  EXPECT_GT(slowdown, 1.015);
  EXPECT_LT(slowdown, 1.12);  // the paper's <=10% envelope
}

TEST_F(VmFixture, CowDiskRoutesWritesToDiff) {
  auto base = make_local_accessor(hostp->fs(), image.disk_file());
  auto diff = make_local_accessor(hostp->fs(), "diff");
  CowDisk cow{std::move(base), std::move(diff)};
  EXPECT_EQ(cow.diff_block_count(), 0u);
  bool wrote = false;
  cow.write(0, kBlockSize * 3, [&](VmIoStats s) {
    EXPECT_TRUE(s.ok());
    wrote = true;
  });
  sim.run();
  EXPECT_TRUE(wrote);
  EXPECT_EQ(cow.diff_block_count(), 3u);
  // Read spanning diff and base: both halves served.
  std::optional<VmIoStats> read;
  cow.read(0, kBlockSize * 6, [&](VmIoStats s) { read = s; });
  sim.run();
  ASSERT_TRUE(read.has_value());
  EXPECT_TRUE(read->ok());
  EXPECT_EQ(read->bytes, kBlockSize * 6);
}

TEST_F(VmFixture, CowDiskReadSpansWrittenAndUnwrittenBoundaries) {
  auto base = make_local_accessor(hostp->fs(), image.disk_file());
  auto diff = make_local_accessor(hostp->fs(), "diff");
  CowDisk cow{std::move(base), std::move(diff)};
  // Write an interior run (blocks 2..3); its neighbours stay in the base.
  bool wrote = false;
  cow.write(kBlockSize * 2, kBlockSize * 2, [&](VmIoStats s) {
    EXPECT_TRUE(s.ok());
    wrote = true;
  });
  sim.run();
  ASSERT_TRUE(wrote);
  EXPECT_EQ(cow.diff_block_count(), 2u);
  // A read covering base-run / diff-run / base-run must splice all three
  // and deliver every byte exactly once.
  std::optional<VmIoStats> read;
  cow.read(0, kBlockSize * 6, [&](VmIoStats s) { read = s; });
  sim.run();
  ASSERT_TRUE(read.has_value());
  EXPECT_TRUE(read->ok());
  EXPECT_EQ(read->bytes, kBlockSize * 6);
  // A read that starts mid-written-run and ends mid-base works too.
  read.reset();
  cow.read(kBlockSize * 2 + kBlockSize / 2, kBlockSize * 2,
           [&](VmIoStats s) { read = s; });
  sim.run();
  ASSERT_TRUE(read.has_value());
  EXPECT_TRUE(read->ok());
  EXPECT_EQ(read->bytes, kBlockSize * 2);
}

TEST_F(VmFixture, CowDiskPartialBlockWriteMarksWholeBlock) {
  auto base = make_local_accessor(hostp->fs(), image.disk_file());
  auto diff = make_local_accessor(hostp->fs(), "diff");
  CowDisk cow{std::move(base), std::move(diff)};
  // A sub-block write at an unaligned offset dirties exactly the one
  // block it touches (copy-on-write granularity is the block).
  bool wrote = false;
  cow.write(kBlockSize * 5 + 100, 200, [&](VmIoStats s) {
    EXPECT_TRUE(s.ok());
    wrote = true;
  });
  sim.run();
  ASSERT_TRUE(wrote);
  EXPECT_EQ(cow.diff_block_count(), 1u);
  // An unaligned write spanning a block boundary dirties both sides.
  cow.write(kBlockSize * 8 - 10, 20, [&](VmIoStats) {});
  sim.run();
  EXPECT_EQ(cow.diff_block_count(), 3u);
  // Reading the partially-written block back delivers the requested
  // range from the diff.
  std::optional<VmIoStats> read;
  cow.read(kBlockSize * 5, kBlockSize, [&](VmIoStats s) { read = s; });
  sim.run();
  ASSERT_TRUE(read.has_value());
  EXPECT_TRUE(read->ok());
  EXPECT_EQ(read->bytes, kBlockSize);
}

TEST_F(VmFixture, CowDiskDiffBytesAccounting) {
  auto base = make_local_accessor(hostp->fs(), image.disk_file());
  auto diff = make_local_accessor(hostp->fs(), "diff");
  CowDisk cow{std::move(base), std::move(diff)};
  EXPECT_EQ(cow.diff_bytes(), 0u);
  cow.write(0, kBlockSize * 4, [](VmIoStats) {});
  sim.run();
  EXPECT_EQ(cow.diff_bytes(), kBlockSize * 4);
  // Rewriting the same blocks must not double-count.
  cow.write(0, kBlockSize * 4, [](VmIoStats) {});
  sim.run();
  EXPECT_EQ(cow.diff_bytes(), kBlockSize * 4);
  // Zero-length writes dirty nothing.
  cow.write(kBlockSize * 20, 0, [](VmIoStats) {});
  sim.run();
  EXPECT_EQ(cow.diff_block_count(), 4u);
  // seed_written marks ranges without I/O (image chains pre-route delta
  // chunks this way); zero-length seeding is a no-op.
  cow.seed_written(kBlockSize * 10, kBlockSize * 2);
  cow.seed_written(kBlockSize * 30, 0);
  EXPECT_EQ(cow.diff_block_count(), 6u);
  EXPECT_EQ(cow.diff_bytes(), kBlockSize * 6);
}

TEST_F(VmFixture, BackgroundLoadInsideGuestUsesCpu) {
  auto& vm = vmm->create_vm(VmConfig{.name = "loaded"}, image, local_storage());
  vm.boot([] {});
  sim.run();
  vm.play_load(host::LoadTrace::constant(sim::Duration::seconds(10), 1.0));
  const auto t0 = sim.now();
  sim.run_until(t0 + sim::Duration::seconds(10));
  EXPECT_GT(hostp->cpu().mean_utilization(), 0.1);
  vm.stop_loads();
}

TEST_F(VmFixture, SuspendFreezesRunningTaskAndResumeContinuesIt) {
  auto& vm = vmm->create_vm(VmConfig{.name = "frozen"}, image, local_storage());
  vm.boot([] {});
  sim.run();

  std::optional<TaskResult> result;
  vm.run_task(workload::micro_test_task(30.0),
              [&](TaskResult r) { result = std::move(r); });
  EXPECT_EQ(vm.active_task_count(), 1u);

  // Freeze 10 seconds in; hold suspended for 100 seconds of wall time.
  sim.run_for(sim::Duration::seconds(10));
  vm.suspend([] {});
  sim.run_for(sim::Duration::seconds(100));
  EXPECT_FALSE(result.has_value());  // no progress while suspended
  EXPECT_EQ(vm.state(), VmPowerState::kSuspended);

  vm.resume([] {});
  sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok());
  // Wall = ~10s before + ~100s frozen + remaining ~20s (+overheads).
  EXPECT_GT(result->wall.to_seconds(), 128.0);
  EXPECT_LT(result->wall.to_seconds(), 140.0);
}

TEST_F(VmFixture, ShutdownAbortsTasksWithoutCallbacks) {
  auto& vm = vmm->create_vm(VmConfig{.name = "killed"}, image, local_storage());
  vm.boot([] {});
  sim.run();
  bool fired = false;
  vm.run_task(workload::micro_test_task(50.0), [&](TaskResult) { fired = true; });
  sim.run_for(sim::Duration::seconds(5));
  vm.shutdown();
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(vm.active_task_count(), 0u);
}

struct MigrationFixture : VmFixture {
  host::HostParams hp2;
  std::unique_ptr<host::PhysicalHost> host2;
  std::unique_ptr<Vmm> vmm2;

  MigrationFixture() {
    hp2.name = "compute-2";
    hp2.memory_mb = 1024;
    host2 = std::make_unique<host::PhysicalHost>(sim, net, hp2);
    vmm2 = std::make_unique<Vmm>(*host2);
    net.add_link(hostp->node(), host2->node(),
                 net::LinkParams{sim::Duration::millis(1), 10e6});
    host2->fs().create(image.disk_file(), image.disk_bytes);
    host2->fs().create(image.memory_file(), image.memory_state_bytes);
    host2->fs().create("diff", 0);
  }

  VmStorage target_storage() {
    VmStorage s;
    s.disk = std::make_unique<CowDisk>(
        make_local_accessor(host2->fs(), image.disk_file()),
        make_local_accessor(host2->fs(), "diff"));
    s.memory_state = make_local_accessor(host2->fs(), image.memory_file());
    return s;
  }
};

TEST_F(MigrationFixture, StopAndCopyMovesVm) {
  VmConfig cfg;
  cfg.name = "mover";
  cfg.memory_mb = 64;
  auto& vm = vmm->create_vm(cfg, image, local_storage());
  vm.boot([] {});
  sim.run();

  std::optional<MigrationStats> stats;
  VirtualMachine* fresh = nullptr;
  migrate(vm, *vmm2, target_storage(), MigrationParams{},
          [&](MigrationStats s, VirtualMachine* nv) {
            stats = s;
            fresh = nv;
          });
  sim.run();
  ASSERT_TRUE(stats.has_value());
  EXPECT_TRUE(stats->ok());
  ASSERT_NE(fresh, nullptr);
  EXPECT_EQ(fresh->state(), VmPowerState::kRunning);
  EXPECT_EQ(vmm->vm_count(), 0u);
  EXPECT_EQ(vmm2->vm_count(), 1u);
  // 64 MiB over 10 MB/s: tens of seconds, all of it downtime.
  EXPECT_GT(stats->downtime.to_seconds(), 5.0);
  EXPECT_NEAR(stats->downtime.to_seconds(), stats->total.to_seconds(), 1.0);
}

TEST_F(MigrationFixture, PrecopyShrinksDowntime) {
  VmConfig cfg;
  cfg.name = "mover2";
  cfg.memory_mb = 64;

  auto run_migration = [&](bool precopy) {
    auto& vm = vmm->create_vm(cfg, image, local_storage());
    vm.boot([] {});
    sim.run();
    MigrationParams p;
    p.precopy = precopy;
    p.dirty_rate_bps = 1e6;
    std::optional<MigrationStats> stats;
    VirtualMachine* fresh = nullptr;
    migrate(vm, *vmm2, target_storage(), p, [&](MigrationStats s, VirtualMachine* nv) {
      stats = s;
      fresh = nv;
    });
    sim.run();
    if (fresh != nullptr) vmm2->destroy_vm(*fresh);
    return *stats;
  };

  const auto stop_copy = run_migration(false);
  const auto precopy = run_migration(true);
  EXPECT_TRUE(stop_copy.ok() && precopy.ok());
  EXPECT_LT(precopy.downtime.to_seconds(), stop_copy.downtime.to_seconds() * 0.5);
  EXPECT_GT(precopy.bytes_transferred, stop_copy.bytes_transferred);
  EXPECT_GE(precopy.precopy_rounds, 1u);
}

TEST_F(MigrationFixture, RunningTaskMovesWithTheVm) {
  VmConfig cfg;
  cfg.name = "carrying";
  cfg.memory_mb = 32;
  auto& vm = vmm->create_vm(cfg, image, local_storage());
  vm.boot([] {});
  sim.run();

  std::optional<TaskResult> result;
  vm.run_task(workload::micro_test_task(60.0),
              [&](TaskResult r) { result = std::move(r); });
  sim.run_for(sim::Duration::seconds(15));
  ASSERT_FALSE(result.has_value());

  VirtualMachine* fresh = nullptr;
  MigrationParams p;
  p.precopy = true;
  migrate(vm, *vmm2, target_storage(), p,
          [&](MigrationStats s, VirtualMachine* nv) {
            ASSERT_TRUE(s.ok());
            fresh = nv;
          });
  sim.run();
  ASSERT_NE(fresh, nullptr);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok());
  // The work was executed: ~60s of compute plus the migration stall.
  EXPECT_GT(result->wall.to_seconds(), 60.0);
  // The completing work ran on the *target* host, not the source.
  EXPECT_EQ(vmm->vm_count(), 0u);
  EXPECT_EQ(fresh->active_task_count(), 0u);  // finished and pruned on query
}

TEST_F(MigrationFixture, TargetAdmissionFailureResumesAtSource) {
  VmConfig cfg;
  cfg.name = "toolarge";
  cfg.memory_mb = 64;
  auto& vm = vmm->create_vm(cfg, image, local_storage());
  vm.boot([] {});
  sim.run();
  // Exhaust the target's memory so create_vm there fails.
  ASSERT_TRUE(host2->reserve_memory(host2->free_memory_mb()));

  std::optional<MigrationStats> stats;
  VirtualMachine* fresh = nullptr;
  migrate(vm, *vmm2, target_storage(), MigrationParams{},
          [&](MigrationStats s, VirtualMachine* nv) {
            stats = s;
            fresh = nv;
          });
  sim.run();
  ASSERT_TRUE(stats.has_value());
  EXPECT_FALSE(stats->ok());
  EXPECT_EQ(fresh, nullptr);
  EXPECT_EQ(vm.state(), VmPowerState::kRunning);  // resumed at source
  EXPECT_EQ(vmm->vm_count(), 1u);
  EXPECT_EQ(vmm2->vm_count(), 0u);
}

}  // namespace
}  // namespace vmgrid::vm
