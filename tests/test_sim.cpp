#include <gtest/gtest.h>

#include <vector>

#include "sim/simulation.hpp"
#include "sim/stats.hpp"

namespace vmgrid::sim {
namespace {

TEST(Duration, ArithmeticAndConversions) {
  const auto d = Duration::seconds(1.5);
  EXPECT_EQ(d.count(), 1'500'000'000);
  EXPECT_DOUBLE_EQ(d.to_seconds(), 1.5);
  EXPECT_DOUBLE_EQ(d.to_millis(), 1500.0);
  EXPECT_EQ(Duration::millis(250) * 4.0, Duration::seconds(1.0));
  EXPECT_DOUBLE_EQ(Duration::seconds(3.0) / Duration::seconds(1.5), 2.0);
  EXPECT_LT(Duration::micros(1), Duration::millis(1));
  EXPECT_TRUE(Duration::infinite().is_infinite());
}

TEST(TimePoint, OrderingAndOffsets) {
  const auto t0 = TimePoint::epoch();
  const auto t1 = t0 + Duration::seconds(2);
  EXPECT_GT(t1, t0);
  EXPECT_EQ(t1 - t0, Duration::seconds(2));
  EXPECT_EQ((t1 - Duration::seconds(2)), t0);
}

TEST(EventQueue, FiresInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_after(Duration::seconds(3), [&] { order.push_back(3); });
  sim.schedule_after(Duration::seconds(1), [&] { order.push_back(1); });
  sim.schedule_after(Duration::seconds(2), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now().to_seconds(), 3.0);
}

TEST(EventQueue, TiesFireInScheduleOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_after(Duration::seconds(1), [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsExecution) {
  Simulation sim;
  bool fired = false;
  auto id = sim.schedule_after(Duration::seconds(1), [&] { fired = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(EventQueue, CancelIsIdempotentAndSafeAfterFire) {
  Simulation sim;
  int count = 0;
  auto id = sim.schedule_after(Duration::seconds(1), [&] { ++count; });
  sim.run();
  sim.cancel(id);  // already fired: no-op
  sim.cancel(id);
  sim.cancel(EventId{});  // invalid id: no-op
  EXPECT_EQ(count, 1);
}

TEST(EventQueue, StaleIdCannotCancelReusedSlot) {
  // After an event fires (or is cancelled) its arena slot is recycled for
  // the next schedule. The old EventId carries the old generation, so it
  // must not cancel the new occupant.
  Simulation sim;
  bool first_fired = false;
  auto first = sim.schedule_after(Duration::seconds(1), [&] { first_fired = true; });
  sim.run();
  EXPECT_TRUE(first_fired);

  bool second_fired = false;
  auto second = sim.schedule_after(Duration::seconds(1), [&] { second_fired = true; });
  sim.cancel(first);  // stale handle: must be a no-op against the new event
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_TRUE(second_fired);
  (void)second;
}

TEST(EventQueue, CancelledSlotReuseKeepsCancelTargeted) {
  Simulation sim;
  bool a_fired = false;
  bool b_fired = false;
  auto a = sim.schedule_after(Duration::seconds(1), [&] { a_fired = true; });
  sim.cancel(a);                      // releases a's slot
  auto b = sim.schedule_after(Duration::seconds(1), [&] { b_fired = true; });
  sim.cancel(a);                      // stale: b now owns the slot
  sim.run();
  EXPECT_FALSE(a_fired);
  EXPECT_TRUE(b_fired);

  // And the fresh handle still cancels its own event.
  bool c_fired = false;
  auto c = sim.schedule_after(Duration::seconds(1), [&] { c_fired = true; });
  sim.cancel(c);
  sim.run();
  EXPECT_FALSE(c_fired);
  (void)b;
}

TEST(EventQueue, HeavySlotChurnStaysConsistent) {
  // Schedule/cancel/fire cycles across many slot generations; live-count
  // bookkeeping and ordering must survive arena reuse.
  Simulation sim;
  int fired = 0;
  for (int round = 0; round < 100; ++round) {
    auto keep = sim.schedule_after(Duration::millis(1), [&] { ++fired; });
    auto drop = sim.schedule_after(Duration::millis(2), [&] { ++fired; });
    sim.cancel(drop);
    sim.cancel(drop);  // double cancel on a released slot: no-op
    EXPECT_EQ(sim.pending_events(), 1u);
    sim.run();
    sim.cancel(keep);  // cancel-after-fire: no-op
    EXPECT_EQ(sim.pending_events(), 0u);
  }
  EXPECT_EQ(fired, 100);
}

TEST(Simulation, RunUntilStopsAtLimitAndAdvancesClock) {
  Simulation sim;
  int fired = 0;
  sim.schedule_after(Duration::seconds(1), [&] { ++fired; });
  sim.schedule_after(Duration::seconds(10), [&] { ++fired; });
  sim.run_until(TimePoint::from_seconds(5));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now().to_seconds(), 5.0);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, NestedSchedulingFromCallbacks) {
  Simulation sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule_after(Duration::seconds(1), recurse);
  };
  sim.schedule_after(Duration::seconds(1), recurse);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now().to_seconds(), 5.0);
}

TEST(Simulation, SchedulingInPastThrows) {
  Simulation sim;
  sim.schedule_after(Duration::seconds(2), [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(TimePoint::from_seconds(1), [] {}), std::logic_error);
  EXPECT_THROW(sim.schedule_after(Duration::seconds(-1), [] {}), std::logic_error);
}

TEST(Simulation, StopHaltsExecution) {
  Simulation sim;
  int fired = 0;
  sim.schedule_after(Duration::seconds(1), [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_after(Duration::seconds(2), [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  sim.run();  // resumes
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, WeakEventsDoNotKeepRunAlive) {
  Simulation sim;
  int weak_fired = 0;
  // A self-rescheduling daemon.
  std::function<void()> daemon = [&] {
    ++weak_fired;
    sim.schedule_weak_after(Duration::seconds(1), daemon);
  };
  sim.schedule_weak_after(Duration::seconds(1), daemon);
  int strong_fired = 0;
  sim.schedule_after(Duration::seconds(3.5), [&] { ++strong_fired; });
  sim.run();  // must terminate despite the immortal daemon
  EXPECT_EQ(strong_fired, 1);
  EXPECT_EQ(weak_fired, 3);  // fired while strong work was pending
  EXPECT_DOUBLE_EQ(sim.now().to_seconds(), 3.5);
}

TEST(Simulation, WeakEventsFireWithinBoundedWindows) {
  Simulation sim;
  int fired = 0;
  std::function<void()> daemon = [&] {
    ++fired;
    sim.schedule_weak_after(Duration::seconds(1), daemon);
  };
  sim.schedule_weak_after(Duration::seconds(1), daemon);
  sim.run_for(Duration::seconds(5.5));
  EXPECT_EQ(fired, 5);
  EXPECT_DOUBLE_EQ(sim.now().to_seconds(), 5.5);
}

TEST(Simulation, WeakEventCancelKeepsCountsConsistent) {
  Simulation sim;
  auto id = sim.schedule_weak_after(Duration::seconds(1), [] {});
  sim.schedule_after(Duration::seconds(2), [] {});
  sim.cancel(id);
  sim.run();
  EXPECT_DOUBLE_EQ(sim.now().to_seconds(), 2.0);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulation, DeterministicAcrossRunsWithSameSeed) {
  auto run_once = [](std::uint64_t seed) {
    Simulation sim{seed};
    std::vector<double> draws;
    for (int i = 0; i < 50; ++i) draws.push_back(sim.rng().uniform(0, 1));
    return draws;
  };
  EXPECT_EQ(run_once(42), run_once(42));
  EXPECT_NE(run_once(42), run_once(43));
}

TEST(Rng, BoundsAndMoments) {
  Rng rng{7};
  Accumulator acc;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.uniform(2.0, 4.0);
    ASSERT_GE(x, 2.0);
    ASSERT_LT(x, 4.0);
    acc.add(x);
  }
  EXPECT_NEAR(acc.mean(), 3.0, 0.02);
}

TEST(Rng, TruncatedNormalRespectsFloor) {
  Rng rng{7};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.truncated_normal(0.0, 1.0, 0.0), 0.0);
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng{11};
  Accumulator acc;
  for (int i = 0; i < 50000; ++i) acc.add(rng.exponential(5.0));
  EXPECT_NEAR(acc.mean(), 5.0, 0.15);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a{9};
  Rng b = a.split();
  // Streams differ but both stay deterministic for the same seed path.
  Rng a2{9};
  Rng b2 = a2.split();
  EXPECT_EQ(b.uniform(0, 1), b2.uniform(0, 1));
}

TEST(Accumulator, WelfordMatchesDefinition) {
  Accumulator acc;
  const std::vector<double> xs{1, 2, 3, 4, 100};
  for (double x : xs) acc.add(x);
  EXPECT_EQ(acc.count(), 5u);
  EXPECT_DOUBLE_EQ(acc.mean(), 22.0);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 100.0);
  // Sample variance: sum((x-22)^2)/4 = (441+400+361+324+6084)/4.
  EXPECT_NEAR(acc.variance(), 1902.5, 1e-9);
}

TEST(Accumulator, MergeEqualsCombinedStream) {
  Accumulator a, b, all;
  Rng rng{3};
  for (int i = 0; i < 100; ++i) {
    const double x = rng.normal(10, 2);
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Histogram, PercentileAndEdgeBins) {
  Histogram h{0.0, 10.0, 10};
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i) / 10.0);
  h.add(-5.0);   // clamps into first bin
  h.add(50.0);   // clamps into last bin
  EXPECT_EQ(h.total(), 102u);
  EXPECT_GT(h.bin_count(0), 0u);
  EXPECT_GT(h.bin_count(9), 0u);
  EXPECT_NEAR(h.percentile(50), 5.0, 1.0);
}

TEST(TimeWeightedMean, PiecewiseConstantIntegral) {
  TimeWeightedMean twm;
  twm.set(TimePoint::from_seconds(0), 1.0);
  twm.set(TimePoint::from_seconds(10), 3.0);
  // 10s at 1.0 + 10s at 3.0 => mean 2.0 at t=20.
  EXPECT_NEAR(twm.mean(TimePoint::from_seconds(20)), 2.0, 1e-12);
}

}  // namespace
}  // namespace vmgrid::sim
