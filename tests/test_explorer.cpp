// sim::Explorer: schedule-space model checking (DESIGN.md §15).
//
// The toy worlds here drive the DFS core directly through raw
// Simulations with hand-placed choice sites, so enumeration counts,
// pruning, bounds, and counterexample replay are checked exactly.
// The last tests run the real fault::run_failover_world.

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "fault/explore_world.hpp"
#include "sim/choice.hpp"
#include "sim/explorer.hpp"
#include "sim/simulation.hpp"

namespace vmgrid {
namespace {

// ---------------------------------------------------------------------------
// ScheduleTrace serialization

sim::ScheduleTrace sample_trace() {
  sim::ScheduleTrace t;
  t.seed = 42;
  t.meta["violation"] = "no_double_vm";
  t.meta["world_hosts"] = "3";
  t.choices.push_back({"net.deliver", 3, 1, sim::footprint_of("compute-1"), true});
  t.choices.push_back({"fault.inject", 2, 0, sim::footprint_of("compute-0"), false});
  return t;
}

TEST(ScheduleTrace, RoundTripsThroughText) {
  const auto t = sample_trace();
  std::string error;
  const auto back = sim::ScheduleTrace::parse(t.to_text(), &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(*back, t);
  // Serialization itself is deterministic.
  EXPECT_EQ(back->to_text(), t.to_text());
}

TEST(ScheduleTrace, ParseRejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(sim::ScheduleTrace::parse("", &error).has_value());
  EXPECT_FALSE(sim::ScheduleTrace::parse("not-a-schedule\nend\n", &error).has_value());
  EXPECT_FALSE(error.empty());

  const std::string good = sample_trace().to_text();
  // Truncation (missing "end") must not parse.
  EXPECT_FALSE(sim::ScheduleTrace::parse(good.substr(0, good.size() - 4), &error)
                   .has_value());
  // Trailing garbage after "end" must not parse.
  EXPECT_FALSE(sim::ScheduleTrace::parse(good + "extra\n", &error).has_value());
  // A chosen index outside [0, options) must not parse.
  std::string bad = good;
  const auto pos = bad.find("net.deliver 3 1");
  ASSERT_NE(pos, std::string::npos);
  bad.replace(pos, 15, "net.deliver 3 7");
  EXPECT_FALSE(sim::ScheduleTrace::parse(bad, &error).has_value());
}

// ---------------------------------------------------------------------------
// Toy worlds for the DFS core

/// A world of `sites` sequential events; event i announces a binary
/// choice labelled "toy.site" and appends its pick to `picks`.
struct ToyWorld {
  int sites{3};
  bool conflicts{true};
  std::uint32_t options{2};
  // Chosen values of the most recent run.
  std::vector<std::uint32_t> picks;

  void operator()(sim::ExploreRun& run) {
    picks.clear();
    auto sim = std::make_unique<sim::Simulation>(run.seed());
    run.attach(*sim);
    for (int i = 0; i < sites; ++i) {
      sim->schedule_after(sim::Duration::seconds(i + 1), [this, &sim = *sim] {
        picks.push_back(sim.choose(
            {"toy.site", options, sim::footprint_of("shared"), conflicts}));
      });
    }
    sim->run();
  }
};

TEST(Explorer, EnumeratesAllSchedulesOfConflictingChoices) {
  ToyWorld world;  // 3 binary conflicting sites
  std::vector<std::vector<std::uint32_t>> seen;
  sim::Explorer ex;
  sim::ExploreOptions opts;
  opts.max_depth = 16;
  opts.max_choices = 2;
  const auto report = ex.explore(opts, [&](sim::ExploreRun& run) {
    world(run);
    seen.push_back(world.picks);
  });
  EXPECT_EQ(report.schedules_explored, 8u);
  EXPECT_TRUE(report.exhausted);
  EXPECT_FALSE(report.hit_depth_bound);
  EXPECT_EQ(report.naive_schedule_bound, 8.0);
  EXPECT_EQ(report.violations.size(), 0u);
  EXPECT_EQ(report.replay_divergences, 0u);
  // All 2^3 pick vectors, each exactly once.
  ASSERT_EQ(seen.size(), 8u);
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::unique(seen.begin(), seen.end()), seen.end());
}

TEST(Explorer, ClampsArityToChoiceBound) {
  ToyWorld world;
  world.sites = 2;
  world.options = 5;
  sim::Explorer ex;
  sim::ExploreOptions opts;
  opts.max_depth = 16;
  opts.max_choices = 2;  // 5-way sites explored as 2-way
  const auto report = ex.explore(opts, [&](sim::ExploreRun& run) { world(run); });
  EXPECT_EQ(report.schedules_explored, 4u);
  EXPECT_TRUE(report.exhausted);
}

TEST(Explorer, NonConflictingSitesAreNeverBranched) {
  ToyWorld world;
  world.conflicts = false;
  sim::Explorer ex;
  sim::ExploreOptions opts;
  opts.max_depth = 16;
  opts.max_choices = 2;
  const auto report = ex.explore(opts, [&](sim::ExploreRun& run) { world(run); });
  EXPECT_EQ(report.schedules_explored, 1u);
  EXPECT_TRUE(report.exhausted);
  // One pruned alternative per commuting site.
  EXPECT_EQ(report.pruned_sleep, 3u);
  EXPECT_EQ(report.choice_points, 3u);
}

TEST(Explorer, DepthBoundForcesDeeperChoices) {
  ToyWorld world;
  world.sites = 6;
  sim::Explorer ex;
  sim::ExploreOptions opts;
  opts.max_depth = 2;  // branch the first two sites only
  opts.max_choices = 2;
  const auto report = ex.explore(opts, [&](sim::ExploreRun& run) { world(run); });
  EXPECT_EQ(report.schedules_explored, 4u);  // 2^2, not 2^6
  EXPECT_TRUE(report.hit_depth_bound);
  EXPECT_TRUE(report.exhausted);
  EXPECT_EQ(report.max_depth_seen, 2u);
  EXPECT_GT(report.forced_choices, 0u);
}

TEST(Explorer, ScheduleCapStopsExploration) {
  ToyWorld world;
  world.sites = 10;
  sim::Explorer ex;
  sim::ExploreOptions opts;
  opts.max_depth = 32;
  opts.max_choices = 2;
  opts.max_schedules = 5;
  const auto report = ex.explore(opts, [&](sim::ExploreRun& run) { world(run); });
  EXPECT_EQ(report.schedules_explored, 5u);
  EXPECT_TRUE(report.hit_schedule_cap);
  EXPECT_FALSE(report.exhausted);
}

TEST(Explorer, ViolationYieldsReplayableCounterexample) {
  // The invariant fails iff the second site picks 1 — only some schedules.
  ToyWorld world;
  auto make_world = [&world](sim::ExploreRun& run) {
    run.invariants().add("second_site_zero", [&world]() -> std::string {
      return world.picks.size() >= 2 && world.picks[1] == 1
                 ? "site 1 chose " + std::to_string(world.picks[1])
                 : "";
    });
    world(run);
  };
  sim::Explorer ex;
  sim::ExploreOptions opts;
  opts.max_depth = 16;
  opts.max_choices = 2;
  const auto report = ex.explore(opts, make_world);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].invariant, "second_site_zero");
  EXPECT_GT(report.schedules_explored, 1u);
  ASSERT_FALSE(report.counterexample.choices.empty());
  EXPECT_EQ(report.counterexample.meta.at("violation"), "second_site_zero");

  // Replay hits the same invariant at the same step.
  const auto replayed = ex.replay(report.counterexample, make_world);
  ASSERT_EQ(replayed.violations.size(), 1u);
  EXPECT_EQ(replayed.violations[0].invariant, "second_site_zero");
  EXPECT_EQ(replayed.violations[0].step, report.violations[0].step);
  EXPECT_EQ(replayed.violations[0].sim_time_s, report.violations[0].sim_time_s);
  EXPECT_EQ(replayed.replay_divergences, 0u);

  // ...and survives a text round-trip, like the CLI's schedule file.
  std::string error;
  const auto parsed =
      sim::ScheduleTrace::parse(report.counterexample.to_text(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const auto reparsed = ex.replay(*parsed, make_world);
  ASSERT_EQ(reparsed.violations.size(), 1u);
  EXPECT_EQ(reparsed.violations[0].step, report.violations[0].step);
}

TEST(Explorer, StateDigestCutsRevisitedSubtrees) {
  // The digest ignores the first site's pick, so both of its subtrees
  // look identical to the cache and the second one is cut.
  ToyWorld world;
  world.sites = 4;
  sim::Explorer ex;
  sim::ExploreOptions opts;
  opts.max_depth = 16;
  opts.max_choices = 2;
  const auto report = ex.explore(opts, [&world](sim::ExploreRun& run) {
    run.set_state_digest([]() -> std::uint64_t { return 7; });
    world(run);
  });
  EXPECT_GT(report.pruned_state, 0u);
  EXPECT_LT(report.schedules_explored, 16u);
  EXPECT_TRUE(report.exhausted);
}

// ---------------------------------------------------------------------------
// The real failover world

fault::ExploreWorldOptions small_world() {
  fault::ExploreWorldOptions w;
  w.hosts = 2;
  w.sessions = 1;
  w.faults = 1;
  w.horizon_s = 40.0;
  return w;
}

sim::ExploreOptions small_bounds() {
  sim::ExploreOptions opts;
  opts.max_depth = 3;
  opts.max_choices = 2;
  opts.time_budget_s = 120.0;
  return opts;
}

TEST(ExplorerWorld, CleanBuildHasNoViolations) {
  const auto w = small_world();
  sim::Explorer ex;
  const auto report = ex.explore(small_bounds(), [&w](sim::ExploreRun& run) {
    fault::run_failover_world(run, w);
  });
  EXPECT_TRUE(report.violations.empty())
      << report.violations[0].invariant << ": " << report.violations[0].detail;
  EXPECT_GE(report.schedules_explored, 2u);
  EXPECT_GT(report.invariant_checks, 0u);
  EXPECT_GE(report.naive_schedule_bound,
            static_cast<double>(report.schedules_explored));
  EXPECT_EQ(report.replay_divergences, 0u);
}

TEST(ExplorerWorld, WorldOptionsRoundTripThroughMeta) {
  auto w = small_world();
  w.fault_at_s = 3.25;
  w.outage_s = 17.5;
  w.fault_slots = 4;
  const auto back = fault::ExploreWorldOptions::from_meta(w.to_meta());
  EXPECT_EQ(back.hosts, w.hosts);
  EXPECT_EQ(back.sessions, w.sessions);
  EXPECT_EQ(back.faults, w.faults);
  EXPECT_EQ(back.fault_at_s, w.fault_at_s);
  EXPECT_EQ(back.outage_s, w.outage_s);
  EXPECT_EQ(back.fault_slots, w.fault_slots);
  EXPECT_EQ(back.horizon_s, w.horizon_s);
}

// Reports must be byte-identical run to run and independent of the
// replication thread-pool width (VMGRID_JOBS): exploration is strictly
// serial and its JSON carries no wall-clock values. A second *process*
// is covered by the CI explore job, which diffs reports across runs.
TEST(ExplorerWorld, ReportIsDeterministicAcrossRunsAndJobWidths) {
  const auto w = small_world();
  const auto run_once = [&w]() {
    sim::Explorer ex;
    return ex
        .explore(small_bounds(),
                 [&w](sim::ExploreRun& run) { fault::run_failover_world(run, w); })
        .to_json();
  };
  ::setenv("VMGRID_JOBS", "1", 1);
  const std::string a = run_once();
  const std::string b = run_once();
  ::setenv("VMGRID_JOBS", "4", 1);
  const std::string c = run_once();
  ::unsetenv("VMGRID_JOBS");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
  EXPECT_NE(a.find("\"schema\": \"vmgrid-explore-v1\""), std::string::npos);
}

TEST(ExploreOptions, EnvKnobsOverrideDefaults) {
  ::setenv("VMGRID_EXPLORE_DEPTH", "5", 1);
  ::setenv("VMGRID_EXPLORE_CHOICES", "4", 1);
  ::setenv("VMGRID_EXPLORE_TIME_BUDGET_S", "7.5", 1);
  const auto opts = sim::ExploreOptions::from_env();
  ::unsetenv("VMGRID_EXPLORE_DEPTH");
  ::unsetenv("VMGRID_EXPLORE_CHOICES");
  ::unsetenv("VMGRID_EXPLORE_TIME_BUDGET_S");
  EXPECT_EQ(opts.max_depth, 5u);
  EXPECT_EQ(opts.max_choices, 4u);
  EXPECT_EQ(opts.time_budget_s, 7.5);
  const auto defaults = sim::ExploreOptions::from_env();
  EXPECT_EQ(defaults.max_depth, 12u);
  EXPECT_EQ(defaults.max_choices, 3u);
  EXPECT_EQ(defaults.time_budget_s, 60.0);
}

}  // namespace
}  // namespace vmgrid
