#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "image/chunk_directory.hpp"
#include "image/chunk_store.hpp"
#include "image/cow_chain.hpp"
#include "image/manifest.hpp"
#include "image/swarm.hpp"
#include "middleware/image_server.hpp"
#include "middleware/information_service.hpp"
#include "middleware/testbed.hpp"
#include "net/network.hpp"
#include "sim/simulation.hpp"
#include "storage/disk.hpp"
#include "storage/local_fs.hpp"
#include "vm/vm_disk.hpp"

namespace vmgrid::image {
namespace {

constexpr std::uint64_t kMiB = 1ull << 20;

// ---------------------------------------------------------------------------
// Manifests: deterministic content addressing and version derivation

TEST(Manifest, BuildCoversImageWithDeterministicIds) {
  const auto m = build_manifest("rh7.2", 30 * kMiB, 4 * kMiB);
  EXPECT_EQ(m.version, 1u);
  EXPECT_EQ(m.parent_version, 0u);
  EXPECT_EQ(m.chunk_count(), 8u);           // ceil(30/4)
  EXPECT_EQ(m.chunk_len(0), 4 * kMiB);
  EXPECT_EQ(m.chunk_len(7), 2 * kMiB);      // short tail
  EXPECT_EQ(m.unique_bytes(), 30 * kMiB);
  EXPECT_TRUE(m.delta.empty());
  // Pure function of identity: a second build is identical, and every
  // chunk id is distinct.
  const auto again = build_manifest("rh7.2", 30 * kMiB, 4 * kMiB);
  EXPECT_EQ(m.chunks, again.chunks);
  EXPECT_EQ(std::set<ChunkId>(m.chunks.begin(), m.chunks.end()).size(), 8u);
  // A different lineage addresses differently.
  const auto other = build_manifest("debian", 30 * kMiB, 4 * kMiB);
  EXPECT_NE(m.chunks, other.chunks);
}

TEST(Manifest, DeriveSharesUnchangedChunksAndReAddressesDelta) {
  const auto v1 = build_manifest("rh7.2", 32 * kMiB, 4 * kMiB);
  const auto v2 = derive_manifest(v1, {3, 1, 3, 99});  // dup + out-of-range
  EXPECT_EQ(v2.version, 2u);
  EXPECT_EQ(v2.parent_version, 1u);
  EXPECT_EQ(v2.chunk_count(), v1.chunk_count());
  EXPECT_EQ(v2.delta, (std::vector<std::uint32_t>{1, 3}));
  for (std::size_t i = 0; i < v1.chunk_count(); ++i) {
    if (i == 1 || i == 3) {
      EXPECT_NE(v2.chunks[i], v1.chunks[i]) << "delta chunk " << i;
    } else {
      EXPECT_EQ(v2.chunks[i], v1.chunks[i]) << "shared chunk " << i;
    }
  }
  EXPECT_EQ(v2.unique_bytes(), 8 * kMiB);
  EXPECT_EQ(v2.id(), "rh7.2@v2");
}

// ---------------------------------------------------------------------------
// Chunk store: refcounted dedup over one file system

struct StoreFixture : ::testing::Test {
  sim::Simulation sim{5};
  storage::Disk disk{sim, {}};
  storage::LocalFileSystem fs{sim, disk};
  ChunkStore store{sim, fs, /*publish_gauges=*/true};
};

TEST_F(StoreFixture, ManifestIngestDedupsAcrossVersions) {
  const auto v1 = build_manifest("img", 32 * kMiB, 4 * kMiB);
  store.add_manifest(v1);
  EXPECT_EQ(store.unique_chunks(), 8u);
  EXPECT_EQ(store.stored_bytes(), 32 * kMiB);
  EXPECT_EQ(store.dedup_bytes(), 0u);
  for (const ChunkId id : v1.chunks) EXPECT_TRUE(fs.exists(chunk_path(id)));

  const auto v2 = derive_manifest(v1, {0, 5});
  store.add_manifest(v2);
  // Only the two delta chunks cost storage; six dedup against v1.
  EXPECT_EQ(store.unique_chunks(), 10u);
  EXPECT_EQ(store.stored_bytes(), 40 * kMiB);
  EXPECT_EQ(store.dedup_bytes(), 24 * kMiB);
  EXPECT_EQ(sim.metrics().counter_value("image.dedup_bytes"), 24.0 * kMiB);
  EXPECT_EQ(sim.metrics().gauge_value("image.unique_chunks"), 10.0);
}

TEST_F(StoreFixture, ReleaseReclaimsOnlyUnreferencedChunks) {
  const auto v1 = build_manifest("img", 16 * kMiB, 4 * kMiB);
  const auto v2 = derive_manifest(v1, {2});
  store.add_manifest(v1);
  store.add_manifest(v2);
  store.release_manifest(v1);
  // v1's chunk 2 is referenced by nothing anymore; 0,1,3 are shared.
  EXPECT_FALSE(fs.exists(chunk_path(v1.chunks[2])));
  EXPECT_TRUE(fs.exists(chunk_path(v1.chunks[0])));
  EXPECT_TRUE(fs.exists(chunk_path(v2.chunks[2])));
  EXPECT_EQ(store.unique_chunks(), 4u);
  store.release_manifest(v2);
  EXPECT_EQ(store.unique_chunks(), 0u);
  EXPECT_EQ(store.stored_bytes(), 0u);
}

TEST_F(StoreFixture, AddChunkReportsDuplicate) {
  EXPECT_TRUE(store.add_chunk(42, kMiB));
  EXPECT_FALSE(store.add_chunk(42, kMiB));
  EXPECT_EQ(store.dedup_bytes(), kMiB);
  EXPECT_TRUE(store.has(42));
}

// ---------------------------------------------------------------------------
// Chunk directory

TEST(ChunkDirectory, HoldersKeepRegistrationOrderAndDedup) {
  ChunkDirectory dir;
  const net::NodeId a{1}, b{2}, c{3};
  dir.register_holder(7, b);
  dir.register_holder(7, a);
  dir.register_holder(7, b);  // idempotent
  dir.register_holder(9, c);
  EXPECT_EQ(dir.holder_count(7), 2u);
  EXPECT_EQ(dir.holders(7), (std::vector<net::NodeId>{b, a}));
  EXPECT_EQ(dir.tracked_chunks(), 2u);
  dir.unregister_node(b);
  EXPECT_EQ(dir.holders(7), (std::vector<net::NodeId>{a}));
  dir.unregister_node(c);
  EXPECT_EQ(dir.holder_count(9), 0u);
  EXPECT_TRUE(dir.holders(9).empty());
  EXPECT_EQ(dir.tracked_chunks(), 1u);
}

// ---------------------------------------------------------------------------
// CoW chains over chunked layers

struct ChainFixture : StoreFixture {
  ImageManifest v1 = build_manifest("img", 16 * kMiB, 4 * kMiB);
  ImageManifest v2 = derive_manifest(v1, {1});
  ImageManifest v3 = derive_manifest(v2, {3});

  ChainFixture() {
    store.add_manifest(v1);
    store.add_manifest(v2);
    store.add_manifest(v3);
  }
};

TEST_F(ChainFixture, ChunkAccessorReadsAcrossChunkBoundaries) {
  auto acc = make_chunk_accessor(v1, store);
  std::optional<vm::VmIoStats> got;
  // Spans chunks 0..2 with partial first and last pieces.
  acc->read(3 * kMiB, 6 * kMiB, [&](vm::VmIoStats s) { got = s; });
  sim.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->ok());
  EXPECT_EQ(got->bytes, 6 * kMiB);
  EXPECT_EQ(acc->describe(), "chunked:img@v1");
}

TEST_F(ChainFixture, ChunkAccessorFailsClosedOnMissingChunkAndWrites) {
  const auto foreign = build_manifest("absent", 8 * kMiB, 4 * kMiB);
  auto acc = make_chunk_accessor(foreign, store);
  std::optional<vm::VmIoStats> read;
  acc->read(0, kMiB, [&](vm::VmIoStats s) { read = s; });
  sim.run();
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(read->status.code(), StatusCode::kNotFound);
  EXPECT_EQ(read->status.subsystem(), "image");

  auto ro = make_chunk_accessor(v1, store);
  std::optional<vm::VmIoStats> wrote;
  ro->write(0, kMiB, [&](vm::VmIoStats s) { wrote = s; });
  sim.run();
  ASSERT_TRUE(wrote.has_value());
  EXPECT_EQ(wrote->status.code(), StatusCode::kFailedPrecondition);
}

TEST_F(ChainFixture, ChainServesWholeImageAndAcceptsTopLayerWrites) {
  fs.create("vm.diff", 16 * kMiB);
  auto writable = vm::make_local_accessor(fs, "vm.diff");
  auto chain = make_chain_accessor({&v1, &v2, &v3}, store, std::move(writable));
  std::optional<vm::VmIoStats> read;
  chain->read(0, 16 * kMiB, [&](vm::VmIoStats s) { read = s; });
  sim.run();
  ASSERT_TRUE(read.has_value());
  EXPECT_TRUE(read->ok());
  EXPECT_EQ(read->bytes, 16 * kMiB);

  std::optional<vm::VmIoStats> wrote;
  chain->write(5 * kMiB, kMiB, [&](vm::VmIoStats s) { wrote = s; });
  sim.run();
  ASSERT_TRUE(wrote.has_value());
  EXPECT_TRUE(wrote->ok());
}

TEST_F(ChainFixture, ChainRejectsMisorderedLineage) {
  EXPECT_THROW((void)make_chain_accessor({&v1, &v3}, store), std::invalid_argument);
  EXPECT_THROW((void)make_chain_accessor({}, store), std::invalid_argument);
  const auto other = build_manifest("debian", 16 * kMiB, 4 * kMiB);
  const auto other2 = derive_manifest(other, {0});
  EXPECT_THROW((void)make_chain_accessor({&v1, &other2}, store),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Swarm distribution

struct SwarmWorld {
  explicit SwarmWorld(std::uint64_t seed) : sim{seed}, net{sim} {
    hub = net.add_node("hub");
  }

  struct Node {
    net::NodeId id;
    std::unique_ptr<storage::Disk> disk;
    std::unique_ptr<storage::LocalFileSystem> fs;
    std::unique_ptr<ChunkStore> store;
  };

  Node& add_node(const std::string& name) {
    auto& n = *nodes.emplace_back(std::make_unique<Node>());
    n.id = net.add_node(name);
    net.add_link(n.id, hub, net::LinkParams{sim::Duration::millis(1), 12.5e6});
    n.disk = std::make_unique<storage::Disk>(sim, storage::DiskParams{});
    n.fs = std::make_unique<storage::LocalFileSystem>(sim, *n.disk);
    n.store = std::make_unique<ChunkStore>(sim, *n.fs);
    swarm.register_store(n.id, *n.store);
    return n;
  }

  Node& seed_origin(const ImageManifest& m) {
    auto& o = add_node("origin");
    o.store->add_manifest(m);
    for (const ChunkId id : m.chunks) dir.register_holder(id, o.id);
    swarm.set_origin(o.id);
    return o;
  }

  SwarmFetchResult fetch(const ImageManifest& m, const Node& dst) {
    std::optional<SwarmFetchResult> out;
    swarm.fetch(m, dst.id, [&](SwarmFetchResult r) { out = r; });
    sim.run();
    return *out;
  }

  sim::Simulation sim;
  net::Network net;
  ChunkDirectory dir;
  SwarmDistributor swarm{sim, net, dir};
  net::NodeId hub;
  std::vector<std::unique_ptr<Node>> nodes;
};

TEST(Swarm, SingleFetcherPullsEverythingFromOrigin) {
  SwarmWorld w{11};
  const auto m = build_manifest("img", 32 * kMiB, 4 * kMiB);
  w.seed_origin(m);
  auto& host = w.add_node("host0");
  const auto r = w.fetch(m, host);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.chunks_from_origin, 8u);
  EXPECT_EQ(r.chunks_from_peers, 0u);
  EXPECT_EQ(r.bytes_from_origin, 32 * kMiB);
  EXPECT_GT(r.elapsed.to_seconds(), 0.0);
  for (const ChunkId id : m.chunks) {
    EXPECT_TRUE(host.store->has(id));
    EXPECT_TRUE(host.fs->exists(chunk_path(id)));
  }
  // The fetcher advertised itself: every chunk now has two holders.
  EXPECT_EQ(w.dir.holder_count(m.chunks[0]), 2u);
  EXPECT_EQ(w.swarm.origin_bytes_served(), 32 * kMiB);
}

TEST(Swarm, SecondFetcherPrefersThePeerCopy) {
  SwarmWorld w{12};
  const auto m = build_manifest("img", 32 * kMiB, 4 * kMiB);
  w.seed_origin(m);
  auto& a = w.add_node("host0");
  auto& b = w.add_node("host1");
  ASSERT_TRUE(w.fetch(m, a).ok());
  const auto r = w.fetch(m, b);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.chunks_from_peers, 8u);
  EXPECT_EQ(r.chunks_from_origin, 0u);
  EXPECT_EQ(w.swarm.peer_bytes_served(), 32 * kMiB);
  EXPECT_EQ(w.swarm.origin_bytes_served(), 32 * kMiB);  // only the first fetch
}

TEST(Swarm, DerivedVersionFetchMovesOnlyTheDelta) {
  SwarmWorld w{13};
  const auto v1 = build_manifest("img", 32 * kMiB, 4 * kMiB);
  const auto v2 = derive_manifest(v1, {2, 6});
  auto& origin = w.seed_origin(v1);
  origin.store->add_manifest(v2);
  for (const ChunkId id : v2.chunks) w.dir.register_holder(id, origin.id);
  auto& host = w.add_node("host0");
  ASSERT_TRUE(w.fetch(v1, host).ok());
  const auto r = w.fetch(v2, host);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.chunks_local, 6u);  // shared with v1, already resident
  EXPECT_EQ(r.bytes_fetched(), 8 * kMiB);
}

TEST(Swarm, FlashCrowdKeepsOriginLoadSublinear) {
  SwarmWorld w{14};
  const auto m = build_manifest("img", 32 * kMiB, 4 * kMiB);
  w.seed_origin(m);
  std::vector<SwarmWorld::Node*> hosts;
  for (int i = 0; i < 8; ++i) hosts.push_back(&w.add_node("host" + std::to_string(i)));
  std::vector<SwarmFetchResult> results;
  for (auto* h : hosts) {
    w.swarm.fetch(m, h->id, [&](SwarmFetchResult r) { results.push_back(r); });
  }
  w.sim.run();
  ASSERT_EQ(results.size(), 8u);
  std::uint64_t fetched = 0;
  for (const auto& r : results) {
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.chunks_from_origin + r.chunks_from_peers, 8u);
    fetched += r.bytes_fetched();
  }
  EXPECT_EQ(fetched, 8 * 32 * kMiB);
  // Peers carry most of the load; the origin serves well under half.
  EXPECT_GT(w.swarm.peer_bytes_served(), w.swarm.origin_bytes_served());
  EXPECT_LT(w.swarm.origin_bytes_served(), fetched / 2);
}

TEST(Swarm, ConcurrentFetchesAreSeedDeterministic) {
  auto run = [] {
    SwarmWorld w{15};
    const auto m = build_manifest("img", 32 * kMiB, 4 * kMiB);
    w.seed_origin(m);
    std::vector<SwarmWorld::Node*> hosts;
    for (int i = 0; i < 6; ++i) {
      hosts.push_back(&w.add_node("host" + std::to_string(i)));
    }
    std::vector<std::tuple<std::uint64_t, std::uint64_t, double>> out;
    for (auto* h : hosts) {
      w.swarm.fetch(m, h->id, [&](SwarmFetchResult r) {
        out.emplace_back(r.chunks_from_origin, r.chunks_from_peers,
                         r.elapsed.to_seconds());
      });
    }
    w.sim.run();
    out.emplace_back(w.swarm.origin_bytes_served(), w.swarm.peer_bytes_served(), 0.0);
    return out;
  };
  EXPECT_EQ(run(), run());
}

TEST(Swarm, FetchFromUnregisteredNodeFailsClosed) {
  SwarmWorld w{16};
  const auto m = build_manifest("img", 8 * kMiB, 4 * kMiB);
  w.seed_origin(m);
  std::optional<SwarmFetchResult> out;
  w.swarm.fetch(m, net::NodeId{999}, [&](SwarmFetchResult r) { out = r; });
  w.sim.run();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->status.code(), StatusCode::kFailedPrecondition);
}

TEST(Swarm, UnheldImageFailsWithNotFound) {
  SwarmWorld w{17};
  const auto m = build_manifest("img", 8 * kMiB, 4 * kMiB);
  w.seed_origin(m);
  auto& host = w.add_node("host0");
  const auto stranger = build_manifest("stranger", 8 * kMiB, 4 * kMiB);
  const auto r = w.fetch(stranger, host);
  EXPECT_EQ(r.status.code(), StatusCode::kNotFound);
  EXPECT_EQ(r.status.subsystem(), "image");
}

TEST(Swarm, DroppedPeerFallsBackToOrigin) {
  SwarmWorld w{18};
  const auto m = build_manifest("img", 16 * kMiB, 4 * kMiB);
  w.seed_origin(m);
  auto& a = w.add_node("host0");
  auto& b = w.add_node("host1");
  ASSERT_TRUE(w.fetch(m, a).ok());
  w.swarm.drop_node(a.id);  // crash: directory + store binding cleared
  EXPECT_EQ(w.dir.holder_count(m.chunks[0]), 1u);
  const auto r = w.fetch(m, b);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.chunks_from_origin, 4u);
  EXPECT_EQ(r.chunks_from_peers, 0u);
}

}  // namespace
}  // namespace vmgrid::image

// ---------------------------------------------------------------------------
// Middleware integration: image server catalog fixes + swarm staging

namespace vmgrid::middleware {
namespace {

constexpr std::uint64_t kMiB = 1ull << 20;

struct ImageServerFixture : ::testing::Test {
  sim::Simulation sim{31};
  net::Network net{sim};
  net::RpcFabric fabric{net};
  InformationService info{sim};
  ImageServer server{sim, net, fabric, {}};

  vm::VmImageSpec spec(const std::string& name, std::uint64_t mem_bytes) {
    vm::VmImageSpec s;
    s.name = name;
    s.disk_bytes = 64 * kMiB;
    s.memory_state_bytes = mem_bytes;
    return s;
  }
};

TEST_F(ImageServerFixture, ReplacingImageWithoutSnapshotRemovesStaleMemoryFile) {
  const auto with_mem = spec("rh7.2", 128 * kMiB);
  server.add_image(with_mem, &info);
  EXPECT_TRUE(server.fs().exists(with_mem.memory_file()));
  ASSERT_TRUE(info.lookup_image("rh7.2").has_value());
  EXPECT_TRUE(info.lookup_image("rh7.2")->has_memory_snapshot);

  // Re-add the same image as cold-boot-only: the old memory-state file
  // must not survive as stale export state, and the information-service
  // record must reflect the replacement (not a duplicate).
  server.add_image(spec("rh7.2", 0), &info);
  EXPECT_FALSE(server.fs().exists(with_mem.memory_file()));
  EXPECT_EQ(info.image_count(), 1u);
  EXPECT_FALSE(info.lookup_image("rh7.2")->has_memory_snapshot);
}

TEST_F(ImageServerFixture, FindReturnsStableStorageAcrossCatalogGrowth) {
  server.add_image(spec("first", 0));
  const vm::VmImageSpec* p = server.find("first");
  ASSERT_NE(p, nullptr);
  for (int i = 0; i < 64; ++i) {
    server.add_image(spec("img" + std::to_string(i), 0));
  }
  // The pointer must survive 64 later additions (deque storage): same
  // address, same contents.
  EXPECT_EQ(server.find("first"), p);
  EXPECT_EQ(p->name, "first");
  EXPECT_EQ(server.catalog().size(), 65u);
}

TEST_F(ImageServerFixture, SameImageOnTwoServersRegistersAsReplicas) {
  ImageServerParams p2;
  p2.name = "image-server-2";
  ImageServer other{sim, net, fabric, p2};
  server.add_image(spec("rh7.2", 0), &info);
  other.add_image(spec("rh7.2", 0), &info);
  EXPECT_EQ(info.image_count(), 2u);  // replicas, not a clobbered record
  server.add_image(spec("rh7.2", 0), &info);
  EXPECT_EQ(info.image_count(), 2u);  // same server re-advertising replaces
}

TEST_F(ImageServerFixture, ChunkedIngestPublishesManifestsAndDirectory) {
  const auto& v1 = server.add_image_chunked("rh7.2", 32 * kMiB, 4 * kMiB, &info);
  EXPECT_EQ(v1.chunk_count(), 8u);
  EXPECT_EQ(info.chunks().tracked_chunks(), 8u);
  EXPECT_EQ(info.chunks().holders(v1.chunks[0]),
            (std::vector<net::NodeId>{server.node()}));

  const auto* v2 = server.derive_version("rh7.2", {1, 4}, &info);
  ASSERT_NE(v2, nullptr);
  EXPECT_EQ(v2->version, 2u);
  EXPECT_EQ(info.chunks().tracked_chunks(), 10u);
  EXPECT_EQ(server.chunk_store().dedup_bytes(), 24 * kMiB);

  EXPECT_EQ(server.find_manifest("rh7.2"), v2);       // latest
  EXPECT_EQ(server.find_manifest("rh7.2", 1), &v1);   // explicit version
  EXPECT_EQ(server.find_manifest("absent"), nullptr);
  EXPECT_EQ(server.derive_version("absent", {0}), nullptr);
  const auto chain = server.lineage("rh7.2");
  ASSERT_EQ(chain.size(), 2u);
  EXPECT_EQ(chain[0], &v1);
  EXPECT_EQ(chain[1], v2);
}

TEST(SwarmStaging, ComputeServersStageThroughSwarmWithPeerHits) {
  testbed::FaultTestbed tb{77, 3};
  auto& grid = *tb.grid;
  auto& sim = grid.simulation();
  const auto& m =
      tb.images->add_image_chunked("rh7.2", 64 * kMiB, 4 * kMiB, &grid.info());

  image::SwarmDistributor swarm{sim, grid.network(), grid.info().chunks()};
  swarm.register_store(tb.images->node(), tb.images->chunk_store());
  swarm.set_origin(tb.images->node());

  // Stage on the three compute servers one after another: the first pull
  // comes from the origin archive, later ones ride the peers.
  std::vector<Status> done;
  std::function<void(std::size_t)> stage = [&](std::size_t i) {
    if (i >= tb.computes.size()) return;
    tb.computes[i]->stage_image_swarm(swarm, m, [&, i](Status s) {
      done.push_back(std::move(s));
      stage(i + 1);
    });
  };
  stage(0);
  grid.run();

  ASSERT_EQ(done.size(), 3u);
  for (const auto& s : done) EXPECT_TRUE(s.ok());
  EXPECT_EQ(swarm.origin_bytes_served(), 64 * kMiB);       // each chunk once
  EXPECT_EQ(swarm.peer_bytes_served(), 2 * 64 * kMiB);     // the other two
  for (auto* cs : tb.computes) {
    for (const image::ChunkId id : m.chunks) {
      EXPECT_TRUE(cs->chunk_store().has(id));
    }
  }
}

}  // namespace
}  // namespace vmgrid::middleware
