// Fault injection & recovery: deterministic plans, transport-reported
// drops (no RPC may hang under any fault), client deadlines/retries, and
// session failover via VM restore — plus a chaos sweep asserting the
// whole stack stays deterministic and hang-free under random fault mixes.

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "middleware/testbed.hpp"
#include "sim/replication.hpp"
#include "storage/nfs_client.hpp"
#include "storage/nfs_server.hpp"
#include "vfs/grid_vfs.hpp"
#include "workload/spec_benchmarks.hpp"
#include "workload/task_spec.hpp"

namespace vmgrid {
namespace {

using namespace middleware;

// ---------------------------------------------------------------------------
// FaultPlan generation

TEST(FaultPlan, SameSeedSameByteIdenticalSchedule) {
  fault::RandomFaultOptions opts;
  opts.events_per_hour = 120.0;
  opts.horizon = sim::Duration::seconds(1800);
  const std::vector<std::string> hosts{"compute-0", "compute-1"};
  const std::vector<std::string> servers{"site-images"};
  const std::vector<std::string> links{"lan-0"};

  const auto a = fault::FaultPlan::random(7, opts, hosts, servers, links);
  const auto b = fault::FaultPlan::random(7, opts, hosts, servers, links);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    const auto& x = a.events()[i];
    const auto& y = b.events()[i];
    EXPECT_EQ(x.at, y.at);
    EXPECT_EQ(x.kind, y.kind);
    EXPECT_EQ(x.target, y.target);
    EXPECT_EQ(x.duration, y.duration);
    EXPECT_EQ(x.magnitude, y.magnitude);
  }

  const auto c = fault::FaultPlan::random(8, opts, hosts, servers, links);
  bool differs = c.events().size() != a.events().size();
  for (std::size_t i = 0; !differs && i < a.events().size(); ++i) {
    differs = a.events()[i].at != c.events()[i].at ||
              a.events()[i].target != c.events()[i].target;
  }
  EXPECT_TRUE(differs);
}

TEST(FaultPlan, EventsStayInsideHorizonAndOrdered) {
  fault::RandomFaultOptions opts;
  opts.events_per_hour = 240.0;
  opts.horizon = sim::Duration::seconds(600);
  const auto plan =
      fault::FaultPlan::random(42, opts, {"h0", "h1", "h2"}, {"s0"}, {"l0", "l1"});
  ASSERT_FALSE(plan.empty());
  sim::Duration prev = sim::Duration::zero();
  for (const auto& ev : plan.events()) {
    EXPECT_GE(ev.at, prev);
    EXPECT_LT(ev.at, opts.horizon);
    prev = ev.at;
  }
}

// Regression: a dense plan used to stack a second outage onto a target
// that was still down — the engine skipped the duplicate, so injected
// counts and per-target outage statistics drifted from the plan. random()
// now clamps each draw past the target's heal time (dropping draws that
// fall off the horizon), so per-target windows never overlap.
TEST(FaultPlan, RandomNeverOverlapsOutagesOnOneTarget) {
  fault::RandomFaultOptions opts;
  opts.events_per_hour = 7200.0;  // mean gap 0.5 s: heavy pressure
  opts.horizon = sim::Duration::seconds(300);
  opts.mean_outage = sim::Duration::seconds(40);
  for (std::uint64_t seed : {1ull, 42ull, 31337ull}) {
    const auto plan = fault::FaultPlan::random(seed, opts, {"h0", "h1"}, {}, {});
    ASSERT_FALSE(plan.empty());
    std::map<std::string, sim::Duration> healed_at;
    sim::Duration prev = sim::Duration::zero();
    for (const auto& ev : plan.events()) {
      EXPECT_GE(ev.at, prev);  // clamping must preserve plan ordering
      EXPECT_LT(ev.at, opts.horizon);
      auto [it, fresh] = healed_at.try_emplace(ev.target, sim::Duration::zero());
      if (!fresh) {
        EXPECT_GE(ev.at, it->second)
            << ev.target << " hit again at t=" << ev.at.to_seconds()
            << "s while still down until t=" << it->second.to_seconds() << "s";
      }
      it->second = ev.at + ev.duration;
      prev = ev.at;
    }
  }
}

// ---------------------------------------------------------------------------
// RPC under faults: every call completes, with the right status

struct RpcFaultFixture : ::testing::Test {
  sim::Simulation sim{11};
  net::Network net{sim};
  net::RpcFabric fabric{net};
  net::NodeId a = net.add_node("a");
  net::NodeId b = net.add_node("b");

  RpcFaultFixture() {
    net.add_link(a, b, net::LinkParams{sim::Duration::millis(5), 1e7});
  }

  static void register_echo(net::RpcServer& server) {
    server.register_method(
        "echo", [](const net::RpcRequest&, net::RpcResponder respond) {
          respond(net::RpcResponse{.response_bytes = 64, .payload = {}});
        });
  }
};

TEST_F(RpcFaultFixture, CallOverDownLinkCompletesUnreachable) {
  net::RpcServer server{fabric, b};
  register_echo(server);
  net.set_link_up(a, b, false);
  std::optional<net::RpcResponse> resp;
  fabric.call(a, b, net::RpcRequest{"echo", 64, {}},
              [&](net::RpcResponse r) { resp = std::move(r); });
  sim.run();  // terminates: the transport reports the drop, nothing hangs
  ASSERT_TRUE(resp.has_value());
  EXPECT_FALSE(resp->ok());
  EXPECT_EQ(resp->status, net::RpcStatus::kUnreachable);
}

TEST_F(RpcFaultFixture, ServerNodeDyingMidCallCompletesUnreachable) {
  net::RpcServer server{fabric, b};
  register_echo(server);
  std::optional<net::RpcResponse> resp;
  fabric.call(a, b, net::RpcRequest{"echo", 64, {}},
              [&](net::RpcResponse r) { resp = std::move(r); });
  // Request leg takes ~5 ms; kill the node while the reply is pending.
  sim.schedule_after(sim::Duration::millis(5) + sim::Duration::micros(100),
                     [this] { net.set_node_up(b, false); });
  sim.run();
  ASSERT_TRUE(resp.has_value());
  EXPECT_FALSE(resp->ok());
  EXPECT_EQ(resp->status, net::RpcStatus::kUnreachable);
}

TEST_F(RpcFaultFixture, ServerDestroyedInOverheadWindowCompletes) {
  auto server = std::make_unique<net::RpcServer>(
      fabric, b, net::RpcServerParams{sim::Duration::millis(10)});
  register_echo(*server);
  std::optional<net::RpcResponse> resp;
  fabric.call(a, b, net::RpcRequest{"echo", 64, {}},
              [&](net::RpcResponse r) { resp = std::move(r); });
  // Arrives at ~5 ms, dispatch at ~15 ms: destroy in between.
  sim.schedule_after(sim::Duration::millis(8), [&server] { server.reset(); });
  sim.run();
  ASSERT_TRUE(resp.has_value());
  EXPECT_FALSE(resp->ok());
  EXPECT_EQ(resp->status, net::RpcStatus::kUnreachable);
}

TEST_F(RpcFaultFixture, DeadlineTurnsStallIntoTimeout) {
  net::RpcServer server{fabric, b};
  register_echo(server);
  // Degrade the link so the request takes ~10 s one way.
  net.set_link(a, b, net::LinkParams{sim::Duration::seconds(10), 1e7});
  net::RpcCallOptions opts;
  opts.deadline = sim::Duration::millis(100);
  std::optional<net::RpcResponse> resp;
  std::optional<sim::TimePoint> completed_at;
  fabric.call(a, b, net::RpcRequest{"echo", 64, {}}, opts,
              [&](net::RpcResponse r) {
                resp = std::move(r);
                completed_at = sim.now();
              });
  sim.run();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, net::RpcStatus::kTimeout);
  ASSERT_TRUE(completed_at.has_value());
  EXPECT_NEAR((*completed_at - sim::TimePoint::epoch()).to_seconds(), 0.1, 1e-9);
}

TEST_F(RpcFaultFixture, RetriesRideOutServerOutage) {
  net::RpcServer server{fabric, b};
  register_echo(server);
  net.set_node_up(b, false);
  sim.schedule_after(sim::Duration::seconds(2), [this] { net.set_node_up(b, true); });
  net::RpcCallOptions opts;
  opts.deadline = sim::Duration::seconds(1);
  opts.max_attempts = 6;
  opts.backoff_base = sim::Duration::millis(500);
  std::optional<net::RpcResponse> resp;
  fabric.call(a, b, net::RpcRequest{"echo", 64, {}}, opts,
              [&](net::RpcResponse r) { resp = std::move(r); });
  sim.run();
  ASSERT_TRUE(resp.has_value());
  EXPECT_TRUE(resp->ok());
  EXPECT_EQ(resp->status, net::RpcStatus::kOk);
}

TEST(NfsFault, ReadRetriesAcrossServerOutage) {
  sim::Simulation sim{21};
  net::Network net{sim};
  net::RpcFabric fabric{net};
  const auto client_node = net.add_node("client");
  const auto server_node = net.add_node("server");
  net.add_link(client_node, server_node,
               net::LinkParams{sim::Duration::millis(5), 1e7});
  storage::Disk disk{sim, {}};
  storage::LocalFileSystem fs{sim, disk};
  fs.create("data", storage::kBlockSize * 64);
  storage::NfsServer server{fabric, server_node, fs};

  storage::NfsClientParams params;
  params.rpc = net::RpcCallOptions::nfs();
  storage::NfsClient client{fabric, client_node, server_node, params};

  // Server drops off the net for 1 s right away; the per-RPC retry policy
  // must carry the read across the outage (cumulative backoff of the nfs()
  // preset reaches ~1.4 s even at the jitter floor).
  net.set_node_up(server_node, false);
  sim.schedule_after(sim::Duration::seconds(1),
                     [&net, server_node] { net.set_node_up(server_node, true); });
  std::optional<storage::NfsIoResult> result;
  client.read("data", 0, storage::kBlockSize * 8,
              [&](storage::NfsIoResult r) { result = std::move(r); });
  sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok());
  EXPECT_EQ(result->status.code(), StatusCode::kOk);
}

// ---------------------------------------------------------------------------
// Storage-path failure injection: daemon death, proxy propagation, cache
// survival. The middleware must degrade with typed errors, not hangs.

struct NfsCrashFixture : ::testing::Test {
  sim::Simulation sim{302};
  net::Network net{sim};
  net::RpcFabric fabric{net};
  net::NodeId server_node = net.add_node("server");
  net::NodeId client_node = net.add_node("client");
  storage::Disk disk{sim, {}};
  storage::LocalFileSystem fs{sim, disk};
  std::optional<storage::NfsServer> server;

  NfsCrashFixture() {
    net.add_link(client_node, server_node,
                 net::LinkParams{sim::Duration::millis(5), 1e6});
    fs.create("data", storage::kBlockSize * 512);
    server.emplace(fabric, server_node, fs);
  }
};

TEST_F(NfsCrashFixture, ReadsAfterCrashReportConnectionRefused) {
  storage::NfsClient client{fabric, client_node, server_node};
  server.reset();  // daemon dies
  std::optional<storage::NfsIoResult> result;
  client.read("data", 0, storage::kBlockSize * 4,
              [&](storage::NfsIoResult r) { result = std::move(r); });
  sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->ok());
  // kConnectionRefused maps to kUnavailable; the rpc origin survives in
  // the cause chain.
  EXPECT_EQ(result->status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(result->status.root_cause().subsystem(), "rpc");
}

TEST_F(NfsCrashFixture, VfsProxyPropagatesServerLoss) {
  storage::NfsClient client{fabric, client_node, server_node};
  vfs::VfsProxy proxy{sim, client};
  server.reset();
  std::optional<vfs::VfsIoStats> result;
  proxy.read("data", 0, storage::kBlockSize * 8,
             [&](vfs::VfsIoStats s) { result = std::move(s); });
  sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->ok());
  EXPECT_EQ(result->status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(result->status.subsystem(), "vfs");
  EXPECT_EQ(result->status.root_cause().subsystem(), "rpc");
}

TEST_F(NfsCrashFixture, CachedBlocksSurviveServerLoss) {
  storage::NfsClient client{fabric, client_node, server_node};
  vfs::VfsProxy proxy{sim, client, vfs::VfsProxyParams{.prefetch_blocks = 0}};
  // Warm the cache, then kill the server.
  std::optional<vfs::VfsIoStats> warm;
  proxy.read("data", 0, storage::kBlockSize * 8,
             [&](vfs::VfsIoStats s) { warm = s; });
  sim.run();
  ASSERT_TRUE(warm && warm->ok());
  server.reset();
  std::optional<vfs::VfsIoStats> cached;
  proxy.read("data", 0, storage::kBlockSize * 8,
             [&](vfs::VfsIoStats s) { cached = s; });
  sim.run();
  ASSERT_TRUE(cached.has_value());
  EXPECT_TRUE(cached->ok());  // served entirely from cache
  EXPECT_EQ(cached->rpcs, 0u);
}

// ---------------------------------------------------------------------------
// Middleware failure injection: pool exhaustion and broken guest I/O
// degrade the session, never wedge it.

TEST(FailureInjection, DhcpExhaustionDoesNotKillTheSession) {
  testbed::WideAreaTestbed tb{303};
  tb.compute->publish(tb.grid->info());
  // Drain the host's address pool.
  const auto pool = tb.compute->dhcp().pool_size();
  for (std::size_t i = 0; i < pool; ++i) {
    tb.compute->dhcp().request_lease(tb.compute->node(), [](auto) {});
  }
  tb.grid->run();
  ASSERT_EQ(tb.compute->dhcp().leased_count(), pool);

  SessionRequest req;
  req.user = "netless";
  req.query.time_bound = sim::Duration::seconds(1);
  VmSession* session = nullptr;
  tb.grid->sessions().create_session(req, [&](VmSession* s, Status) { session = s; });
  tb.grid->run();
  ASSERT_NE(session, nullptr);
  EXPECT_EQ(session->machine().state(), vm::VmPowerState::kRunning);
  EXPECT_FALSE(session->ip().valid());  // degraded: no address, still usable
  session->shutdown();
}

TEST(FailureInjection, SessionFailsCleanlyWhenHostMemoryExhausted) {
  testbed::WideAreaTestbed tb{304};
  tb.compute->publish(tb.grid->info());
  ASSERT_TRUE(tb.compute->host().reserve_memory(tb.compute->host().free_memory_mb()));

  SessionRequest req;
  req.user = "unlucky";
  req.query.time_bound = sim::Duration::seconds(1);
  VmSession* session = nullptr;
  Status error;
  tb.grid->sessions().create_session(req, [&](VmSession* s, Status e) {
    session = s;
    error = std::move(e);
  });
  tb.grid->run();
  EXPECT_EQ(session, nullptr);
  EXPECT_FALSE(error.ok());
  EXPECT_EQ(error.subsystem(), "session");
  EXPECT_EQ(tb.grid->sessions().active_sessions(), 0u);
}

TEST(FailureInjection, TaskReportsIoErrorsWithoutHanging) {
  // A VM whose virtual disk points at a file the image server never had:
  // the guest task completes with ok=false instead of wedging the run.
  testbed::StartupTestbed tb{305};
  auto& cs = *tb.compute;
  auto& mount = tb.grid->gvfs().mount(cs.node(), tb.images->node(), {});
  vm::VmStorage storage;
  storage.disk = vm::make_vfs_accessor(mount.proxy(), "nonexistent.disk", 0.0005);
  auto cfg = testbed::paper_vm("broken");
  auto image = testbed::paper_image();
  auto& vmachine = cs.vmm().create_vm(cfg, image, std::move(storage));
  // Boot would also fail on the bad disk; drive the state machine past it.
  vmachine.adopt_suspended_state(/*in_memory=*/true);
  vmachine.resume([] {});
  tb.grid->run();
  ASSERT_EQ(vmachine.state(), vm::VmPowerState::kRunning);

  workload::TaskSpec spec = workload::micro_test_task(1.0);
  spec.io_read_bytes = 1 << 20;
  spec.phases = 2;
  std::optional<vm::TaskResult> result;
  vmachine.run_task(spec, [&](vm::TaskResult r) { result = std::move(r); });
  tb.grid->run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->ok());
}

// ---------------------------------------------------------------------------
// Session failover

TEST(Failover, InFlightTaskFailsInsteadOfHanging) {
  testbed::FaultTestbed tb{72, 2};
  auto& g = *tb.grid;
  SessionRequest req;
  req.user = "bob";
  req.want_ip = false;
  req.query.time_bound = sim::Duration::seconds(1);
  VmSession* session = nullptr;
  g.sessions().create_session(req, [&](VmSession* s, Status) { session = s; });
  g.run();
  ASSERT_NE(session, nullptr);

  workload::TaskSpec spec;
  spec.name = "doomed";
  spec.user_seconds = 300.0;
  std::optional<vm::TaskResult> result;
  session->run_task(spec, [&](vm::TaskResult r) { result = std::move(r); });
  g.simulation().schedule_after(sim::Duration::seconds(10),
                                [session] { session->server().crash(); });
  g.run();
  ASSERT_TRUE(result.has_value());  // completed (as a failure), never hung
  EXPECT_FALSE(result->ok());
  EXPECT_EQ(result->status.code(), StatusCode::kUnavailable);
  EXPECT_FALSE(session->alive());

  // A dead session keeps accepting work, failing it asynchronously.
  std::optional<vm::TaskResult> dead_result;
  session->run_task(spec, [&](vm::TaskResult r) { dead_result = std::move(r); });
  g.run();
  ASSERT_TRUE(dead_result.has_value());
  EXPECT_FALSE(dead_result->ok());
  EXPECT_EQ(dead_result->status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(dead_result->status.subsystem(), "session");
  session->shutdown();
  EXPECT_EQ(g.sessions().active_sessions(), 0u);
}

TEST(Failover, SessionSurvivesScriptedHostCrash) {
  testbed::FaultTestbed tb{71, 3};
  auto& g = *tb.grid;
  FailoverPolicy pol;
  pol.probe_interval = sim::Duration::seconds(2);
  g.sessions().set_failover(pol);
  std::vector<FailoverEvent> events;
  g.sessions().set_failover_handler(
      [&events](const FailoverEvent& ev) { events.push_back(ev); });

  SessionRequest req;
  req.user = "alice";
  req.want_ip = false;
  req.query.time_bound = sim::Duration::seconds(1);
  VmSession* session = nullptr;
  g.sessions().create_session(req, [&](VmSession* s, Status) { session = s; });
  g.run();
  ASSERT_NE(session, nullptr);
  const std::string first_host = session->server().name();

  fault::FaultEngine eng{g.simulation(), g.network()};
  for (auto* cs : tb.computes) eng.register_host(*cs);
  fault::FaultPlan plan;
  plan.add(fault::FaultEvent{.at = sim::Duration::seconds(5),
                             .kind = fault::FaultKind::kHostCrash,
                             .target = first_host,
                             .duration = sim::Duration::seconds(600),
                             .magnitude = 0.0});
  eng.arm(plan);
  g.run_for(sim::Duration::seconds(180));

  EXPECT_EQ(eng.injected(), 1u);
  ASSERT_TRUE(session->alive());
  EXPECT_NE(session->server().name(), first_host);
  EXPECT_EQ(session->failovers(), 1u);
  EXPECT_GT(session->total_downtime().to_seconds(), 0.0);
  EXPECT_EQ(g.sessions().failovers_completed(), 1u);
  ASSERT_FALSE(events.empty());
  EXPECT_TRUE(events.back().ok());
  EXPECT_EQ(events.back().from_host, first_host);
  EXPECT_EQ(events.back().to_host, session->server().name());

  // The restored session still runs work.
  workload::TaskSpec spec;
  spec.name = "post-recovery";
  spec.user_seconds = 1.0;
  std::optional<vm::TaskResult> result;
  session->run_task(spec, [&](vm::TaskResult r) { result = std::move(r); });
  g.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok());
  session->shutdown();
}

TEST_F(NfsCrashFixture, SlowServerSurfacesTimeoutCodeThroughVfsProxy) {
  // The Table 1 access path (guest I/O -> vfs proxy -> nfs -> rpc): a
  // server that stops answering must surface as a typed kTimeout at the
  // proxy, with the rpc origin preserved — not as an opaque string.
  storage::NfsClientParams params;
  params.rpc.deadline = sim::Duration::millis(100);
  params.rpc.max_attempts = 2;
  storage::NfsClient client{fabric, client_node, server_node, params};
  vfs::VfsProxy proxy{sim, client, vfs::VfsProxyParams{.prefetch_blocks = 0}};
  // Degrade the link so every RPC blows its deadline.
  net.set_link(client_node, server_node,
               net::LinkParams{sim::Duration::seconds(30), 1e6});
  std::optional<vfs::VfsIoStats> result;
  proxy.read("data", 0, storage::kBlockSize * 4,
             [&](vfs::VfsIoStats s) { result = std::move(s); });
  sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->ok());
  EXPECT_EQ(result->status.code(), StatusCode::kTimeout);
  EXPECT_TRUE(retryable(result->status.code()));
  // Full chain: vfs <- nfs <- rpc, every link carrying the same code.
  EXPECT_EQ(result->status.subsystem(), "vfs");
  EXPECT_FALSE(result->status.cause().ok());
  EXPECT_EQ(result->status.cause().subsystem(), "nfs");
  EXPECT_EQ(result->status.root_cause().subsystem(), "rpc");
  EXPECT_EQ(result->status.root_cause().code(), StatusCode::kTimeout);
  EXPECT_NE(result->status.to_string().find(" \u2190 "), std::string::npos);
}

TEST(Failover, FailedRecoveryRecordsRpcRootCauseCode) {
  // Kill the session's host, and silently partition the only spare (the
  // information service still believes it is up). Failover dispatch then
  // dies on the wire, and the FailoverEvent must carry kUnavailable with
  // an rpc-origin root cause — the code recovery policy keys off.
  testbed::FaultTestbed tb{73, 2};
  auto& g = *tb.grid;
  FailoverPolicy pol;
  pol.probe_interval = sim::Duration::seconds(2);
  g.sessions().set_failover(pol);
  std::vector<FailoverEvent> events;
  g.sessions().set_failover_handler(
      [&events](const FailoverEvent& ev) { events.push_back(ev); });

  SessionRequest req;
  req.user = "carol";
  req.want_ip = false;
  req.query.time_bound = sim::Duration::seconds(1);
  VmSession* session = nullptr;
  g.sessions().create_session(req, [&](VmSession* s, Status) { session = s; });
  g.run();
  ASSERT_NE(session, nullptr);

  ComputeServer* spare = nullptr;
  for (auto* cs : tb.computes) {
    if (cs != &session->server()) spare = cs;
  }
  ASSERT_NE(spare, nullptr);
  g.simulation().schedule_after(sim::Duration::seconds(5), [&g, session, spare] {
    g.network().set_node_up(spare->node(), false);
    session->server().crash();
  });
  g.run_for(sim::Duration::seconds(60));

  ASSERT_FALSE(events.empty());
  const FailoverEvent& ev = events.back();
  EXPECT_FALSE(ev.ok());
  EXPECT_EQ(ev.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(ev.status.subsystem(), "session");
  EXPECT_EQ(ev.status.root_cause().subsystem(), "rpc");
  EXPECT_EQ(ev.status.root_cause().code(), StatusCode::kUnavailable);
  EXPECT_FALSE(session->alive());
  EXPECT_GT(g.sessions().failovers_failed(), 0u);
}

// ---------------------------------------------------------------------------
// Chaos sweep: random fault mixes, serial vs parallel bit-identical

/// One self-contained chaos replica: a 3-host grid with failover enabled,
/// a random fault plan, and a session that keeps short tasks flowing
/// (resubmitting through failures). Returns a digest of everything
/// observable; any hang would stop the bounded run from returning and any
/// crash propagates out of the ReplicationRunner.
std::string chaos_digest(std::uint64_t seed) {
  const sim::Duration horizon = sim::Duration::seconds(400);
  testbed::FaultTestbed tb{seed, 3};
  auto& g = *tb.grid;
  FailoverPolicy pol;
  pol.probe_interval = sim::Duration::seconds(5);
  g.sessions().set_failover(pol);

  fault::FaultEngine eng{g.simulation(), g.network()};
  for (auto* cs : tb.computes) eng.register_host(*cs);
  eng.register_server_node("site-images", tb.images->node());
  for (auto* cs : tb.computes) {
    eng.register_link("lan-" + cs->name(), cs->node(), tb.router);
  }
  eng.register_link("lan-images", tb.images->node(), tb.router);

  fault::RandomFaultOptions fo;
  fo.events_per_hour = 90.0;
  fo.horizon = horizon;
  fo.mean_outage = sim::Duration::seconds(25);
  const auto plan = fault::FaultPlan::random(seed * 7919 + 1, fo, eng.host_names(),
                                             eng.server_names(), eng.link_names());
  eng.arm(plan);

  std::uint64_t tasks_ok = 0, tasks_failed = 0, create_failures = 0;
  VmSession* session = nullptr;
  // Lives in this frame (which outlives the bounded run) and is captured
  // by reference: a shared_ptr-to-self capture would cycle and leak.
  std::function<void()> submit;
  SessionRequest req;
  req.user = "chaos";
  req.want_ip = false;
  req.query.time_bound = sim::Duration::seconds(1);
  g.sessions().create_session(req, [&](VmSession* s, Status) {
    session = s;
    if (s == nullptr) {
      ++create_failures;
      return;
    }
    // Closed-loop workload: one 2 s task at a time, resubmitted until the
    // horizon. Dead-session submissions fail asynchronously and keep the
    // loop turning, exercising the recovery path end to end.
    submit = [&] {
      if (g.now() - sim::TimePoint::epoch() >= horizon) return;
      workload::TaskSpec spec;
      spec.name = "unit";
      spec.user_seconds = 2.0;
      session->run_task(spec, [&](vm::TaskResult r) {
        r.ok() ? ++tasks_ok : ++tasks_failed;
        submit();
      });
    };
    submit();
  });
  g.run_for(horizon + sim::Duration::seconds(60));

  std::ostringstream out;
  out << "events=" << g.simulation().executed_events()
      << " now_s=" << (g.now() - sim::TimePoint::epoch()).to_seconds()
      << " injected=" << eng.injected() << " healed=" << eng.healed()
      << " plan=" << plan.events().size() << " ok=" << tasks_ok
      << " failed=" << tasks_failed << " create_failures=" << create_failures
      << " failovers_ok=" << g.sessions().failovers_completed()
      << " failovers_failed=" << g.sessions().failovers_failed();
  if (session != nullptr) {
    out << " alive=" << session->alive() << " moves=" << session->failovers()
        << " down_s=" << session->total_downtime().to_seconds();
  }
  return out.str();
}

TEST(Chaos, FiftySeedsCompleteAndMatchAcrossJobCounts) {
  constexpr std::size_t kSeeds = 50;
  sim::ReplicationRunner serial{1};
  const auto s =
      serial.map(kSeeds, [](std::size_t i) { return chaos_digest(1000 + i); });
  sim::ReplicationRunner parallel{4};
  const auto p =
      parallel.map(kSeeds, [](std::size_t i) { return chaos_digest(1000 + i); });
  ASSERT_EQ(s.size(), p.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(s[i], p[i]) << "seed " << (1000 + i);
  }
  // Sanity: the sweep actually injected faults somewhere.
  bool any_injection = false;
  for (const auto& d : s) {
    if (d.find("injected=0 ") == std::string::npos) any_injection = true;
  }
  EXPECT_TRUE(any_injection);
}

}  // namespace
}  // namespace vmgrid
