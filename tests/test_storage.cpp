#include <gtest/gtest.h>

#include <optional>

#include "model/fluid.hpp"
#include "net/rpc.hpp"
#include "sim/simulation.hpp"
#include "storage/disk.hpp"
#include "storage/local_fs.hpp"
#include "storage/nfs_client.hpp"
#include "storage/nfs_server.hpp"

namespace vmgrid::storage {
namespace {

TEST(Disk, ServiceTimeModel) {
  sim::Simulation sim;
  DiskParams p;
  p.seek = sim::Duration::millis(6);
  p.bandwidth_bps = 30e6;
  p.cache_hit = sim::Duration::micros(50);
  Disk d{sim, p};
  EXPECT_NEAR(d.service_time(3'000'000, true).to_seconds(), 0.10005, 1e-6);
  EXPECT_NEAR(d.service_time(3'000'000, false).to_seconds(), 0.106, 1e-6);
}

TEST(Disk, FifoQueueing) {
  sim::Simulation sim;
  DiskParams p;
  p.seek = sim::Duration::millis(10);
  p.bandwidth_bps = 1e6;
  Disk d{sim, p};
  double first = -1, second = -1;
  d.access(1'000'000, true, [&] { first = sim.now().to_seconds(); });
  d.access(1'000'000, true, [&] { second = sim.now().to_seconds(); });
  sim.run();
  EXPECT_LT(first, second);
  EXPECT_NEAR(second, first * 2, 1e-3);
  EXPECT_EQ(d.ops(), 2u);
  EXPECT_EQ(d.bytes_transferred(), 2'000'000u);
}

struct FsFixture : ::testing::Test {
  sim::Simulation sim{2};
  Disk disk{sim, DiskParams{}};
  LocalFileSystem fs{sim, disk};
};

TEST_F(FsFixture, CreateExistsSizeRemove) {
  fs.create("a.img", 1 << 20);
  EXPECT_TRUE(fs.exists("a.img"));
  EXPECT_EQ(fs.size("a.img"), std::optional<std::uint64_t>{1 << 20});
  EXPECT_FALSE(fs.exists("b.img"));
  EXPECT_EQ(fs.size("b.img"), std::nullopt);
  fs.remove("a.img");
  EXPECT_FALSE(fs.exists("a.img"));
}

TEST_F(FsFixture, ReadReportsBlockVersions) {
  fs.create("f", kBlockSize * 4);
  std::optional<ReadResult> result;
  fs.read("f", 0, kBlockSize * 4, [&](ReadResult r) { result = std::move(r); });
  sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->bytes, kBlockSize * 4);
  ASSERT_EQ(result->block_versions.size(), 4u);
  for (auto v : result->block_versions) EXPECT_EQ(v, 0u);
}

TEST_F(FsFixture, WriteBumpsVersionsAndExtends) {
  fs.create("f", kBlockSize);
  fs.write("f", 0, kBlockSize * 2, [] {});
  sim.run();
  EXPECT_EQ(fs.size("f"), std::optional<std::uint64_t>{kBlockSize * 2});
  EXPECT_EQ(fs.block_version("f", 0), 1u);
  EXPECT_EQ(fs.block_version("f", 1), 1u);
  fs.write("f", 0, 1, [] {});
  sim.run();
  EXPECT_EQ(fs.block_version("f", 0), 2u);
  EXPECT_EQ(fs.block_version("f", 1), 1u);
}

TEST_F(FsFixture, ReadPastEofTruncates) {
  fs.create("f", 100);
  std::optional<ReadResult> result;
  fs.read("f", 0, kBlockSize * 10, [&](ReadResult r) { result = std::move(r); });
  sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->bytes, 100u);
  EXPECT_EQ(result->block_versions.size(), 1u);
}

TEST_F(FsFixture, MissingFileThrows) {
  EXPECT_THROW(fs.read("nope", 0, 10, [](ReadResult) {}), std::logic_error);
  EXPECT_THROW(fs.write("nope", 0, 10, [] {}), std::logic_error);
}

TEST_F(FsFixture, CopyTakesTwoPassesOverTheSpindle) {
  const std::uint64_t size = 8ull << 20;  // 8 MiB
  fs.create("src", size);
  double done = -1;
  fs.copy("src", "dst", [&] { done = sim.now().to_seconds(); });
  sim.run();
  EXPECT_TRUE(fs.exists("dst"));
  EXPECT_EQ(fs.size("dst"), std::optional<std::uint64_t>{size});
  // Read + write of 8 MiB at 30 MB/s each: ~0.56 s.
  const double expected = 2.0 * static_cast<double>(size) / 30e6;
  EXPECT_NEAR(done, expected, expected * 0.1);
}

TEST_F(FsFixture, CopyPreservesBlockVersions) {
  fs.create("src", kBlockSize * 2);
  fs.write("src", 0, kBlockSize, [] {});
  sim.run();
  fs.copy("src", "dst", [] {});
  sim.run();
  EXPECT_EQ(fs.block_version("dst", 0), 1u);
  EXPECT_EQ(fs.block_version("dst", 1), 0u);
}

TEST_F(FsFixture, ListIsSorted) {
  fs.create("zeta", 1);
  fs.create("alpha", 1);
  const auto names = fs.list();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[1], "zeta");
}

struct NfsFixture : ::testing::Test {
  sim::Simulation sim{3};
  net::Network net{sim};
  net::NodeId server_node = net.add_node("server");
  net::NodeId client_node = net.add_node("client");
  net::RpcFabric fabric{net};
  Disk disk{sim, DiskParams{}};
  LocalFileSystem fs{sim, disk};
  NfsServer server{fabric, server_node, fs};
  NfsClient client{fabric, client_node, server_node, NfsClientParams{}};

  NfsFixture() {
    net.add_link(client_node, server_node,
                 net::LinkParams{sim::Duration::micros(200), 10e6});
  }
};

TEST_F(NfsFixture, GetattrFindsFilesAndCaches) {
  fs.create("data", 4096);
  std::optional<std::uint64_t> size;
  client.getattr("data", [&](std::optional<std::uint64_t> s) { size = s; });
  sim.run();
  EXPECT_EQ(size, std::optional<std::uint64_t>{4096});
  const auto rpcs = client.rpcs_issued();
  client.getattr("data", [&](std::optional<std::uint64_t> s) { size = s; });
  sim.run();
  EXPECT_EQ(client.rpcs_issued(), rpcs);  // served from attribute cache
}

TEST_F(NfsFixture, GetattrCacheExpiresAfterTtl) {
  fs.create("data", 1);
  client.getattr("data", [](auto) {});
  sim.run();
  const auto rpcs = client.rpcs_issued();
  sim.run_for(sim::Duration::seconds(10));
  client.getattr("data", [](auto) {});
  sim.run();
  EXPECT_EQ(client.rpcs_issued(), rpcs + 1);
}

TEST_F(NfsFixture, MissingFileGetattrReturnsNull) {
  std::optional<std::uint64_t> size{123};
  client.getattr("ghost", [&](std::optional<std::uint64_t> s) { size = s; });
  sim.run();
  EXPECT_EQ(size, std::nullopt);
}

TEST_F(NfsFixture, ReadSplitsIntoBlockRpcs) {
  fs.create("data", kBlockSize * 10);
  std::optional<NfsIoResult> result;
  client.read("data", 0, kBlockSize * 10, [&](NfsIoResult r) { result = std::move(r); });
  sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok());
  EXPECT_EQ(result->rpcs, 10u);
  EXPECT_EQ(result->bytes, kBlockSize * 10);
  EXPECT_EQ(result->block_versions.size(), 10u);
}

TEST_F(NfsFixture, ReadSeesServerSideWrites) {
  fs.create("data", kBlockSize * 2);
  fs.write("data", 0, kBlockSize, [] {});
  sim.run();
  std::optional<NfsIoResult> result;
  client.read("data", 0, kBlockSize * 2, [&](NfsIoResult r) { result = std::move(r); });
  sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->block_versions[0], 1u);
  EXPECT_EQ(result->block_versions[1], 0u);
}

TEST_F(NfsFixture, WriteUpdatesServerState) {
  fs.create("data", kBlockSize);
  std::optional<NfsIoResult> result;
  client.write("data", 0, kBlockSize * 3, [&](NfsIoResult r) { result = std::move(r); });
  sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok());
  EXPECT_EQ(fs.size("data"), std::optional<std::uint64_t>{kBlockSize * 3});
  EXPECT_EQ(fs.block_version("data", 2), 1u);
}

TEST_F(NfsFixture, ReadOfMissingFileFails) {
  std::optional<NfsIoResult> result;
  client.read("ghost", 0, kBlockSize, [&](NfsIoResult r) { result = std::move(r); });
  sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->ok());
  EXPECT_EQ(result->status.subsystem(), "nfs");
  EXPECT_NE(result->status.to_string().find("ENOENT"), std::string::npos);
}

TEST_F(NfsFixture, CreateOverWire) {
  bool ok = false;
  client.create("fresh", kBlockSize * 2, [&](bool r) { ok = r; });
  sim.run();
  EXPECT_TRUE(ok);
  EXPECT_TRUE(fs.exists("fresh"));
}

TEST_F(NfsFixture, WindowPipelinesLargeReads) {
  // A window of 8 outstanding block RPCs must beat a window of 1 on a
  // latency-dominated path (fast server disk so the wire is the
  // bottleneck, as in a WAN read).
  Disk fast_disk{sim, DiskParams{sim::Duration::zero(), 1e9,
                                 sim::Duration::micros(10), 1.0}};
  LocalFileSystem fast_fs{sim, fast_disk};
  net::NodeId n2 = net.add_node("server2");
  net::NodeId c2 = net.add_node("client2");
  net.add_link(c2, n2, net::LinkParams{sim::Duration::millis(5), 10e6});
  NfsServer srv2{fabric, n2, fast_fs};
  fast_fs.create("big", kBlockSize * 64);

  NfsClientParams wide, narrow;
  wide.window = 8;
  narrow.window = 1;
  NfsClient wide_client{fabric, c2, n2, wide};
  NfsClient narrow_client{fabric, c2, n2, narrow};

  double wide_elapsed = -1, narrow_elapsed = -1;
  auto start = sim.now();
  wide_client.read("big", 0, kBlockSize * 64, [&](NfsIoResult r) {
    ASSERT_TRUE(r.ok());
    wide_elapsed = (sim.now() - start).to_seconds();
  });
  sim.run();
  start = sim.now();
  narrow_client.read("big", 0, kBlockSize * 64, [&](NfsIoResult r) {
    ASSERT_TRUE(r.ok());
    narrow_elapsed = (sim.now() - start).to_seconds();
  });
  sim.run();
  EXPECT_LT(wide_elapsed * 1.5, narrow_elapsed);
}

TEST_F(NfsFixture, ZeroLengthIoCompletesImmediately) {
  fs.create("data", kBlockSize);
  int called = 0;
  client.read("data", 0, 0, [&](NfsIoResult r) {
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.rpcs, 0u);
    ++called;
  });
  client.write("data", 0, 0, [&](NfsIoResult r) {
    EXPECT_TRUE(r.ok());
    ++called;
  });
  sim.run();
  EXPECT_EQ(called, 2);
}

TEST(DiskFluid, SingleIoMatchesExactServiceTime) {
  sim::Simulation sim{1};
  DiskParams p;
  p.seek = sim::Duration::millis(6);
  p.bandwidth_bps = 30e6;
  Disk disk{sim, p};
  disk.set_fidelity(model::Fidelity::kFluid);
  double elapsed = -1;
  disk.access(30'000'000, false, [&] { elapsed = sim.now().to_seconds(); });
  sim.run();
  // Alone on the disk, the fluid IO runs at full bandwidth and the seek
  // (folded in as byte-equivalent work) costs exactly its exact-tier time.
  EXPECT_NEAR(elapsed, disk.service_time(30'000'000, false).to_seconds(), 1e-8);
}

TEST(DiskFluid, ConcurrentIosShareTheHeadInsteadOfQueueing) {
  sim::Simulation sim{1};
  DiskParams p;
  p.seek = sim::Duration::zero();  // isolate the bandwidth-sharing term
  p.cache_hit = sim::Duration::zero();
  p.bandwidth_bps = 30e6;
  Disk disk{sim, p};
  disk.set_fidelity(model::Fidelity::kFluid);
  double first = -1, second = -1;
  disk.access(30'000'000, true, [&] { first = sim.now().to_seconds(); });
  disk.access(30'000'000, true, [&] { second = sim.now().to_seconds(); });
  sim.run();
  // Each IO holds half the bandwidth: both drain together at t=2 where
  // the exact tier's FIFO head would finish them at 1 and 2.
  EXPECT_NEAR(first, 2.0, 1e-8);
  EXPECT_NEAR(second, 2.0, 1e-8);
  EXPECT_EQ(disk.bytes_transferred(), 60'000'000u);
  ASSERT_NE(disk.fluid_arena(), nullptr);
  EXPECT_EQ(disk.fluid_arena()->active_actions(), 0u);
}

}  // namespace
}  // namespace vmgrid::storage
