// Property-style sweeps over core invariants: GPS work conservation for
// every scheduler, COW disk behaviour against a reference model, cache
// behaviour against a reference model, and event-queue ordering under
// random schedule/cancel interleavings.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "host/cpu_engine.hpp"
#include "host/schedulers.hpp"
#include "sim/simulation.hpp"
#include "vfs/block_cache.hpp"
#include "vm/vm_disk.hpp"

namespace vmgrid {
namespace {

// ---------------------------------------------------------------------------
// GPS work conservation across schedulers

struct SchedulerCase {
  const char* name;
  std::function<std::unique_ptr<host::Scheduler>()> make;
};

class WorkConservation
    : public ::testing::TestWithParam<std::tuple<int, double, int>> {};

std::unique_ptr<host::Scheduler> make_scheduler(int kind) {
  switch (kind) {
    case 0: return std::make_unique<host::FairShareScheduler>();
    case 1: return std::make_unique<host::LotteryScheduler>();
    case 2: return std::make_unique<host::WfqScheduler>();
    case 3: return std::make_unique<host::PriorityScheduler>();
    default: return std::make_unique<host::RealTimeScheduler>();
  }
}

TEST_P(WorkConservation, TotalCpuEqualsMinOfCapacityAndDemand) {
  const auto [kind, ncpus, nprocs] = GetParam();
  sim::Simulation sim{static_cast<std::uint64_t>(kind * 100 + nprocs)};
  host::CpuEngine engine{sim, ncpus, make_scheduler(kind)};
  std::vector<host::ProcessId> pids;
  double total_demand = 0.0;
  for (int i = 0; i < nprocs; ++i) {
    host::SchedAttrs attrs;
    attrs.weight = 1.0 + (i % 3);
    attrs.tickets = 50u + 25u * static_cast<std::uint32_t>(i % 4);
    attrs.nice = (i % 5) - 2;
    attrs.reservation = (i % 2) ? 0.2 : 0.0;
    attrs.demand_cap = (i % 4 == 0) ? 0.5 : 1.0;
    total_demand += std::min(1.0, attrs.demand_cap);
    pids.push_back(engine.add("p" + std::to_string(i), attrs,
                              host::CpuEngine::kInfiniteWork));
  }
  const double horizon = 20.0;
  sim.run_until(sim::TimePoint::from_seconds(horizon));
  double used = 0.0;
  for (auto id : pids) {
    const double u = engine.cpu_time_used(id);
    EXPECT_GE(u, -1e-9);
    EXPECT_LE(u, horizon + 1e-6);  // nobody exceeds one CPU
    used += u;
  }
  // Work conservation: all capacity is used up to total demand.
  EXPECT_NEAR(used, std::min(ncpus, total_demand) * horizon, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WorkConservation,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),   // scheduler kind
                       ::testing::Values(1.0, 2.0, 4.0),   // ncpus
                       ::testing::Values(1, 3, 7)));       // process count

// ---------------------------------------------------------------------------
// COW disk vs reference model

class CowProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CowProperty, MatchesReferenceModelUnderRandomOps) {
  sim::Simulation sim{GetParam()};
  storage::Disk disk{sim, {}};
  storage::LocalFileSystem fs{sim, disk};
  const std::uint64_t file_blocks = 64;
  fs.create("base", storage::kBlockSize * file_blocks);
  fs.create("diff", 0);
  vm::CowDisk cow{vm::make_local_accessor(fs, "base"),
                  vm::make_local_accessor(fs, "diff")};

  std::set<std::uint64_t> reference_diff;
  auto& rng = sim.rng();
  for (int op = 0; op < 200; ++op) {
    const std::uint64_t first =
        static_cast<std::uint64_t>(rng.uniform_int(0, static_cast<int>(file_blocks) - 1));
    const std::uint64_t count = static_cast<std::uint64_t>(rng.uniform_int(1, 6));
    const std::uint64_t last = std::min(first + count, file_blocks);
    const std::uint64_t offset = first * storage::kBlockSize;
    const std::uint64_t len = (last - first) * storage::kBlockSize;
    if (rng.bernoulli(0.4)) {
      cow.write(offset, len, [](vm::VmIoStats s) { EXPECT_TRUE(s.ok()); });
      for (std::uint64_t b = first; b < last; ++b) reference_diff.insert(b);
    } else {
      cow.read(offset, len, [len](vm::VmIoStats s) {
        EXPECT_TRUE(s.ok());
        EXPECT_EQ(s.bytes, len);
      });
    }
    sim.run();
    ASSERT_EQ(cow.diff_block_count(), reference_diff.size());
  }
  // Every written block must be version>=1 in the diff file's namespace;
  // base remains untouched.
  for (std::uint64_t b = 0; b < file_blocks; ++b) {
    EXPECT_EQ(fs.block_version("base", b), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CowProperty, ::testing::Values(1, 7, 42, 1337));

// ---------------------------------------------------------------------------
// Block cache vs reference model

class CacheProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CacheProperty, NeverExceedsCapacityAndTracksContents) {
  sim::Rng rng{GetParam()};
  const std::size_t capacity = 16;
  vfs::BlockCache cache{capacity};
  std::map<std::pair<std::string, std::uint64_t>, std::uint64_t> reference;

  for (int op = 0; op < 2000; ++op) {
    const std::string file = "f" + std::to_string(rng.uniform_int(0, 2));
    const auto block = static_cast<std::uint64_t>(rng.uniform_int(0, 39));
    const int action = static_cast<int>(rng.uniform_int(0, 2));
    if (action == 0) {
      const auto version = static_cast<std::uint64_t>(rng.uniform_int(1, 9));
      cache.insert(file, block, version);
      reference[{file, block}] = version;
    } else if (action == 1) {
      const auto got = cache.lookup(file, block);
      if (got) {
        // A hit must return the version most recently inserted.
        auto it = reference.find({file, block});
        ASSERT_NE(it, reference.end());
        EXPECT_EQ(*got, it->second);
      }
    } else {
      cache.invalidate(file, block);
      reference.erase({file, block});
    }
    ASSERT_LE(cache.size(), capacity);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheProperty, ::testing::Values(2, 9, 77, 2024));

// ---------------------------------------------------------------------------
// Event queue ordering under random cancel interleavings

class QueueProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QueueProperty, FiringOrderIsNondecreasingAndCancelsHold) {
  sim::Simulation sim{GetParam()};
  auto& rng = sim.rng();
  std::vector<sim::EventId> ids;
  std::set<std::uint64_t> cancelled;
  std::vector<double> fired_at;
  int fired_cancelled = 0;

  for (int i = 0; i < 500; ++i) {
    const double t = rng.uniform(0.0, 100.0);
    const auto id = sim.schedule_at(sim::TimePoint::from_seconds(t), [&, i] {
      fired_at.push_back(sim.now().to_seconds());
      if (cancelled.contains(static_cast<std::uint64_t>(i))) ++fired_cancelled;
    });
    ids.push_back(id);
  }
  for (int i = 0; i < 150; ++i) {
    const auto victim = static_cast<std::size_t>(rng.uniform_int(0, 499));
    sim.cancel(ids[victim]);
    cancelled.insert(victim);
  }
  sim.run();
  // Cancelled events (cancelled before run) never fire...
  EXPECT_EQ(fired_cancelled, 0);
  // ...the rest fire exactly once, in nondecreasing time order.
  EXPECT_EQ(fired_at.size(), 500 - cancelled.size());
  for (std::size_t i = 1; i < fired_at.size(); ++i) {
    EXPECT_LE(fired_at[i - 1], fired_at[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueueProperty, ::testing::Values(3, 11, 99, 31337));

}  // namespace
}  // namespace vmgrid
