// Causal trace propagation across the grid stack: deterministic trace
// ids, RPC retry/attempt span structure, session-trace continuity across
// failover, critical-path extraction, SLO accounting, the metric label
// cardinality guard, and serial-vs-parallel trace export bit-identity.

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "fault/fault.hpp"
#include "middleware/gram.hpp"
#include "middleware/testbed.hpp"
#include "net/rpc.hpp"
#include "obs/critical_path.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "sim/replication.hpp"
#include "sim/simulation.hpp"

namespace vmgrid::obs {
namespace {

using namespace vmgrid::middleware;

std::string arg_of(const TraceRecord& r, std::string_view key) {
  for (const auto& [k, v] : r.args) {
    if (k == key) return v;
  }
  return {};
}

sim::TimePoint tp(double s) {
  return sim::TimePoint::epoch() + sim::Duration::seconds(s);
}

// ---------------------------------------------------------------------------
// Trace identity

TEST(TraceContextTest, ValidityRequiresBothIds) {
  EXPECT_FALSE(TraceContext{}.valid());
  EXPECT_FALSE((TraceContext{0, 7}).valid());
  EXPECT_FALSE((TraceContext{7, kInvalidSpan}).valid());
  EXPECT_TRUE((TraceContext{7, 7}).valid());
}

TEST(TraceIdTest, RootIdsAreDeterministicPerSeed) {
  const auto ids_for = [](std::uint64_t seed) {
    TraceCollector tc;
    tc.enable();
    tc.set_trace_seed(seed);
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 4; ++i) {
      const SpanId s = tc.begin(tp(0), "root", "t");
      ids.push_back(tc.records()[s - 1].trace_id);
      tc.end(s, tp(1));
    }
    return ids;
  };
  const auto a = ids_for(42);
  EXPECT_EQ(a, ids_for(42));       // same seed => same ids
  EXPECT_NE(a, ids_for(43));       // different seed => different trace
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NE(a[i], 0u);           // 0 is the "no trace" sentinel
    for (std::size_t j = i + 1; j < a.size(); ++j) EXPECT_NE(a[i], a[j]);
  }
}

TEST(TraceIdTest, ChildrenInheritTraceIdAmbientLinksAcrossTracks) {
  TraceCollector tc;
  tc.enable();
  tc.set_trace_seed(5);
  const SpanId root = tc.begin(tp(0), "root", "t0");
  const std::uint64_t trace = tc.records()[root - 1].trace_id;
  // Ambient context links a span on a different track into the trace.
  tc.push_context(tc.context_of(root));
  const SpanId remote = tc.begin(tp(1), "remote", "t1");
  tc.pop_context();
  EXPECT_EQ(tc.records()[remote - 1].parent, root);
  EXPECT_EQ(tc.records()[remote - 1].trace_id, trace);
  // Explicit-parent children inherit too.
  const SpanId child = tc.begin_child(tp(2), tc.context_of(remote), "child", "t2");
  EXPECT_EQ(tc.records()[child - 1].parent, remote);
  EXPECT_EQ(tc.records()[child - 1].trace_id, trace);
  tc.end(child, tp(3));
  tc.end(remote, tp(3));
  tc.end(root, tp(4));
  EXPECT_EQ(tc.open_spans(), 0u);
  EXPECT_EQ(tc.orphan_spans(), 0u);
}

TEST(TraceIdTest, FailedSpanCarriesStatusCodeAndRoot) {
  sim::Simulation sim{9};
  sim.trace().enable();
  Span s{sim, "op", "track"};
  const Status st = Status{StatusCode::kTimeout, "deadline exceeded"}
                        .at("vfs", "read")
                        .caused_by(Status{StatusCode::kTimeout, "rpc timed out"}
                                       .at("rpc", "nfs.read"));
  s.set_status(st);
  s.end();
  const TraceRecord* rec = sim.trace().find("op");
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(arg_of(*rec, "ok"), "false");
  EXPECT_EQ(arg_of(*rec, "status.code"), "timeout");
  EXPECT_EQ(arg_of(*rec, "status.root"), "rpc/nfs.read: timeout");
}

// ---------------------------------------------------------------------------
// RPC propagation: retries are attempt spans under one call

TEST(RpcTraceTest, RetryAttemptsShareTraceWithDistinctAttemptSpans) {
  sim::Simulation sim{21};
  net::Network net{sim};
  net::RpcFabric fabric{net};
  const auto client = net.add_node("client");
  const auto server_node = net.add_node("server");
  net.add_link(client, server_node, net::LinkParams{sim::Duration::millis(2), 1e7});
  sim.trace().enable();

  net::RpcServer server{fabric, server_node,
                        net::RpcServerParams{sim::Duration::micros(100)}};
  server.register_method("echo", [](const net::RpcRequest&, net::RpcResponder r) {
    r(net::RpcResponse{.response_bytes = 64, .payload = {}});
  });
  net.set_node_up(server_node, false);
  sim.schedule_after(sim::Duration::seconds(1.2),
                     [&net, server_node] { net.set_node_up(server_node, true); });

  // While the node is down attempts fail fast (unreachable). Backoffs of
  // 0.6s then 1.2s (x jitter <= 20%) put attempt 2 before the 1.2s
  // recovery and attempt 3 after it, whatever the jitter draws.
  net::RpcCallOptions opts;
  opts.max_attempts = 4;
  opts.backoff_base = sim::Duration::seconds(0.6);
  std::optional<net::RpcResponse> resp;
  fabric.call(client, server_node, net::RpcRequest{"echo", 64, {}}, opts,
              [&resp](net::RpcResponse r) { resp = std::move(r); });
  sim.run();
  ASSERT_TRUE(resp.has_value());
  EXPECT_TRUE(resp->ok());

  const auto& trace = sim.trace();
  const TraceRecord* call = trace.find("rpc.echo");
  ASSERT_NE(call, nullptr);
  EXPECT_NE(call->trace_id, 0u);
  EXPECT_EQ(arg_of(*call, "ok"), "true");

  const auto attempts = trace.find_all("rpc.attempt");
  ASSERT_EQ(attempts.size(), 3u);  // two unreachable attempts, then success
  for (std::size_t i = 0; i < attempts.size(); ++i) {
    EXPECT_EQ(attempts[i]->parent, call->id);
    EXPECT_EQ(attempts[i]->trace_id, call->trace_id);
    EXPECT_EQ(arg_of(*attempts[i], "attempt"), std::to_string(i + 1));
    for (std::size_t j = i + 1; j < attempts.size(); ++j) {
      EXPECT_NE(attempts[i]->id, attempts[j]->id);
    }
  }
  // The failed attempt carries its failure; the delivering one is ok.
  EXPECT_EQ(arg_of(*attempts.front(), "ok"), "false");
  EXPECT_EQ(arg_of(*attempts.front(), "status.code"), "unavailable");
  EXPECT_EQ(arg_of(*attempts.back(), "ok"), "true");
  EXPECT_EQ(trace.open_spans(), 0u);
  EXPECT_EQ(trace.orphan_spans(), 0u);
}

// ---------------------------------------------------------------------------
// Full stack: one trace id from globusrun down to NFS block I/O

TEST(StackTraceTest, GramJobTraceReachesVmAndNfsSpans) {
  testbed::StartupTestbed tb{7};
  auto& grid = *tb.grid;
  ComputeServer* cs = tb.compute;
  grid.simulation().trace().enable();

  cs->gram().set_executor([&](const std::string&, GramService::ExecutorDone done) {
    InstantiateOptions opts;
    opts.config = testbed::paper_vm("vm-trace");
    opts.image = testbed::paper_image();
    opts.mode = VmStartMode::kColdBoot;
    opts.access = StateAccess::kNonPersistentLoopback;
    cs->instantiate(std::move(opts),
                    [done = std::move(done)](vm::VirtualMachine*,
                                             InstantiationStats stats) {
                      done(stats.status, {});
                    });
  });
  GramClient client{grid.fabric(), tb.client};
  bool ok = false;
  client.globusrun(cs->node(), "start-vm", [&ok](GramJobResult r) { ok = r.ok(); });
  grid.run();
  ASSERT_TRUE(ok);

  const auto& trace = grid.simulation().trace();
  const TraceRecord* run = trace.find("gram.globusrun");
  ASSERT_NE(run, nullptr);
  const std::uint64_t trace_id = run->trace_id;
  EXPECT_NE(trace_id, 0u);

  for (const char* name : {"gram.job", "gram.execute", "vm.instantiate",
                           "vm.reboot", "vm.boot", "boot.workset", "nfs.read"}) {
    const TraceRecord* rec = trace.find(name);
    ASSERT_NE(rec, nullptr) << name;
    EXPECT_EQ(rec->trace_id, trace_id) << name << " escaped the job trace";
  }
  // Every nfs transfer of the boot working set stays on the job's trace.
  for (const TraceRecord* nfs : trace.find_all("nfs.read")) {
    EXPECT_EQ(nfs->trace_id, trace_id);
  }
  EXPECT_EQ(trace.open_spans(), 0u);
  EXPECT_EQ(trace.orphan_spans(), 0u);
}

// ---------------------------------------------------------------------------
// Failover continues the session's trace

TEST(FailoverTraceTest, FailoverSpanContinuesSessionTrace) {
  testbed::FaultTestbed tb{71, 3};
  auto& g = *tb.grid;
  g.simulation().trace().enable();
  FailoverPolicy pol;
  pol.probe_interval = sim::Duration::seconds(2);
  g.sessions().set_failover(pol);

  SessionRequest req;
  req.user = "alice";
  req.want_ip = false;
  req.query.time_bound = sim::Duration::seconds(1);
  VmSession* session = nullptr;
  g.sessions().create_session(req, [&](VmSession* s, Status) { session = s; });
  g.run();
  ASSERT_NE(session, nullptr);
  const std::string first_host = session->server().name();

  fault::FaultEngine eng{g.simulation(), g.network()};
  for (auto* cs : tb.computes) eng.register_host(*cs);
  fault::FaultPlan plan;
  plan.add(fault::FaultEvent{.at = sim::Duration::seconds(5),
                             .kind = fault::FaultKind::kHostCrash,
                             .target = first_host,
                             .duration = sim::Duration::seconds(600),
                             .magnitude = 0.0});
  eng.arm(plan);
  g.run_for(sim::Duration::seconds(180));
  ASSERT_TRUE(session->alive());
  ASSERT_EQ(session->failovers(), 1u);

  const auto& trace = g.simulation().trace();
  const TraceRecord* create = trace.find("session.create");
  ASSERT_NE(create, nullptr);
  EXPECT_NE(create->trace_id, 0u);
  const TraceRecord* failover = trace.find("session.failover");
  ASSERT_NE(failover, nullptr);
  // The recovery continues the trace begun at session creation: one
  // trace id follows the session across hosts.
  EXPECT_EQ(failover->trace_id, create->trace_id);
  EXPECT_EQ(arg_of(*failover, "ok"), "true");
  // The re-instantiation's globusrun rides the failover span's trace.
  const auto runs = trace.find_all("gram.globusrun");
  ASSERT_GE(runs.size(), 2u);
  EXPECT_EQ(runs.back()->trace_id, create->trace_id);
  EXPECT_EQ(trace.orphan_spans(), 0u);
}

// ---------------------------------------------------------------------------
// Serial vs parallel replication: trace export is bit-identical

std::string traced_world_json(std::size_t idx) {
  sim::Simulation sim{1000 + 31 * idx};
  net::Network net{sim};
  net::RpcFabric fabric{net};
  const auto client = net.add_node("client");
  const auto server_node = net.add_node("server");
  net.add_link(client, server_node, net::LinkParams{sim::Duration::millis(2), 1e7});
  sim.trace().enable();
  net::RpcServer server{fabric, server_node,
                        net::RpcServerParams{sim::Duration::micros(100)}};
  server.register_method("echo", [](const net::RpcRequest&, net::RpcResponder r) {
    r(net::RpcResponse{.response_bytes = 64, .payload = {}});
  });
  for (int i = 0; i < 3; ++i) {
    fabric.call(client, server_node, net::RpcRequest{"echo", 128, {}},
                [](net::RpcResponse) {});
  }
  sim.run();
  return sim.trace().to_chrome_json();
}

TEST(TraceDeterminismTest, SerialAndParallelExportsAreBitIdentical) {
  constexpr std::size_t kWorlds = 8;
  sim::ReplicationRunner serial{1};
  sim::ReplicationRunner parallel{4};
  const auto a = serial.map(kWorlds, traced_world_json);
  const auto b = parallel.map(kWorlds, traced_world_json);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "trace export for world " << i
                          << " differs between 1 and 4 jobs";
  }
}

// ---------------------------------------------------------------------------
// Critical path

TEST(CriticalPathTest, SyntheticDagChargesGatingChildren) {
  TraceCollector tc;
  tc.enable();
  tc.set_trace_seed(3);
  const SpanId root = tc.begin(tp(0), "root", "t0", "top");
  const SpanId a = tc.begin_child(tp(0), tc.context_of(root), "a", "t1", "sub");
  tc.end(a, tp(4));
  const SpanId b = tc.begin_child(tp(3), tc.context_of(root), "b", "t1", "sub");
  const SpanId d = tc.begin_child(tp(5), tc.context_of(b), "d", "t2", "leaf");
  tc.end(d, tp(8));
  tc.end(b, tp(9));
  tc.end(root, tp(10));

  const auto path = extract_critical_path(tc, root);
  ASSERT_EQ(path.size(), 5u);
  const auto expect_seg = [&](std::size_t i, SpanId span, double b0, double e0) {
    EXPECT_EQ(path[i].span, span) << "segment " << i;
    EXPECT_EQ(path[i].begin, tp(b0)) << "segment " << i;
    EXPECT_EQ(path[i].end, tp(e0)) << "segment " << i;
  };
  // `a` never gates: root's wait from 3..9 belongs to `b` (which ends
  // later), and before 3 nothing qualifying is closed yet.
  expect_seg(0, root, 0.0, 3.0);
  expect_seg(1, b, 3.0, 5.0);
  expect_seg(2, d, 5.0, 8.0);
  expect_seg(3, b, 8.0, 9.0);
  expect_seg(4, root, 9.0, 10.0);

  // Segments tile [root.begin, root.end] exactly.
  double total = 0.0;
  for (const auto& seg : path) total += seg.seconds();
  EXPECT_DOUBLE_EQ(total, 10.0);
  for (std::size_t i = 1; i < path.size(); ++i) {
    EXPECT_EQ(path[i].begin, path[i - 1].end);
  }

  const std::string text = format_critical_path(coalesce_path(path));
  EXPECT_NE(text.find("sub/b @ t1"), std::string::npos);
  EXPECT_NE(text.find("leaf/d @ t2"), std::string::npos);
}

TEST(CriticalPathTest, CoalesceMergesAdjacentSameSpanSegments) {
  std::vector<PathSegment> segs{
      PathSegment{1, "r", "c", "t", tp(0), tp(2)},
      PathSegment{1, "r", "c", "t", tp(2), tp(5)},
      PathSegment{2, "x", "c", "t", tp(5), tp(6)},
  };
  const auto out = coalesce_path(segs);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].span, 1u);
  EXPECT_EQ(out[0].begin, tp(0));
  EXPECT_EQ(out[0].end, tp(5));
  EXPECT_EQ(out[1].span, 2u);
}

TEST(CriticalPathTest, OpenOrInvalidRootYieldsEmptyPath) {
  TraceCollector tc;
  tc.enable();
  const SpanId open = tc.begin(tp(0), "open", "t");
  EXPECT_TRUE(extract_critical_path(tc, open).empty());
  EXPECT_TRUE(extract_critical_path(tc, kInvalidSpan).empty());
  EXPECT_TRUE(extract_critical_path(tc, 999).empty());
}

// ---------------------------------------------------------------------------
// SLO accounting

TEST(SloMonitorTest, LatencyAndAvailabilityObjectives) {
  SloMonitor slo;
  slo.add_latency_objective("start", 2.0, 0.9);
  slo.add_availability_objective("up", 0.99);
  for (int i = 0; i < 8; ++i) slo.observe_latency("start", 1.0);
  slo.observe_latency("start", 5.0);
  slo.observe_latency("start", 1.5);
  for (int i = 0; i < 99; ++i) slo.observe_event("up", true);
  slo.observe_event("up", false);

  const auto results = slo.evaluate();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].name, "start");
  EXPECT_EQ(results[0].kind, "latency");
  EXPECT_EQ(results[0].total, 10u);
  EXPECT_EQ(results[0].good, 9u);
  EXPECT_DOUBLE_EQ(results[0].compliance, 0.9);
  EXPECT_NEAR(results[0].burn_rate, 1.0, 1e-9);  // burning exactly the budget
  EXPECT_TRUE(results[0].met);
  EXPECT_EQ(results[1].kind, "availability");
  EXPECT_DOUBLE_EQ(results[1].compliance, 0.99);
  EXPECT_NEAR(results[1].burn_rate, 1.0, 1e-9);
  EXPECT_TRUE(results[1].met);
}

TEST(SloMonitorTest, BulkCountsAndZeroBudgetCap) {
  SloMonitor slo;
  slo.add_availability_objective("strict", 1.0);
  slo.observe_counts("strict", 10, 9);
  auto results = slo.evaluate();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].met);
  EXPECT_EQ(results[0].burn_rate, 1e9);  // zero error budget, capped

  SloMonitor empty;
  empty.add_latency_objective("idle", 1.0, 0.99);
  const auto r = empty.evaluate();
  EXPECT_DOUBLE_EQ(r[0].compliance, 1.0);  // no events: vacuously compliant
  EXPECT_TRUE(r[0].met);
}

TEST(SloMonitorTest, ExportsMetrics) {
  SloMonitor slo;
  slo.add_availability_objective("up", 0.5);
  slo.observe_event("up", true);
  slo.observe_event("up", false);
  MetricsRegistry m;
  slo.export_metrics(m);
  const Labels labels{{"slo", "up"}};
  EXPECT_DOUBLE_EQ(m.counter_value("slo.events_total", labels), 2.0);
  EXPECT_DOUBLE_EQ(m.counter_value("slo.events_good", labels), 1.0);
  EXPECT_DOUBLE_EQ(m.gauge_value("slo.met", labels), 1.0);
  EXPECT_DOUBLE_EQ(m.gauge_value("slo.burn_rate", labels), 1.0);
}

// ---------------------------------------------------------------------------
// Metric label cardinality guard

TEST(CardinalityGuardTest, OverflowRedirectsAndCounts) {
  MetricsRegistry m;
  m.set_max_label_sets(2);
  m.counter("hot", {{"k", "a"}}).inc();
  m.counter("hot", {{"k", "b"}}).inc();
  m.counter("hot", {{"k", "c"}}).inc();  // past the cap
  m.counter("hot", {{"k", "d"}}).inc();  // also redirected
  EXPECT_DOUBLE_EQ(m.counter_value("hot", {{"k", "a"}}), 1.0);
  EXPECT_DOUBLE_EQ(m.counter_value("hot", {{"k", "b"}}), 1.0);
  EXPECT_EQ(m.find_counter("hot", {{"k", "c"}}), nullptr);
  EXPECT_DOUBLE_EQ(m.counter_value("hot", {{"overflow", "true"}}), 2.0);
  EXPECT_DOUBLE_EQ(m.counter_value("obs.labels_dropped"), 2.0);
  // Existing instances keep resolving to themselves past the cap.
  m.counter("hot", {{"k", "a"}}).inc();
  EXPECT_DOUBLE_EQ(m.counter_value("hot", {{"k", "a"}}), 2.0);
  // Unlabeled instances are never subject to the cap.
  m.counter("hot").inc();
  EXPECT_DOUBLE_EQ(m.counter_value("hot"), 1.0);
}

TEST(CardinalityGuardTest, MergeIsLossless) {
  MetricsRegistry a;
  a.set_max_label_sets(1);
  a.counter("m", {{"k", "a"}}).inc();

  MetricsRegistry b;
  b.counter("m", {{"k", "b"}}).inc(3.0);
  b.counter("m", {{"k", "c"}}).inc(5.0);
  a.merge(b);
  // Replica folding bypasses the guard: all instances survive.
  EXPECT_DOUBLE_EQ(a.counter_value("m", {{"k", "a"}}), 1.0);
  EXPECT_DOUBLE_EQ(a.counter_value("m", {{"k", "b"}}), 3.0);
  EXPECT_DOUBLE_EQ(a.counter_value("m", {{"k", "c"}}), 5.0);
  EXPECT_DOUBLE_EQ(a.counter_value("obs.labels_dropped"), 0.0);
}

// ---------------------------------------------------------------------------
// Sim-floor profiler

TEST(ProfilerTest, ScopesRecordOnlyWhenEnabled) {
  auto& prof = SimProfiler::instance();
  const bool was_enabled = prof.enabled();
  prof.enable(false);
  prof.reset();
  { SimProfiler::Scope s{"test.disabled"}; }
  EXPECT_TRUE(prof.snapshot().empty());

  prof.enable(true);
  { SimProfiler::Scope s{"test.scope"}; }
  { SimProfiler::Scope s{"test.scope"}; }
  const auto snap = prof.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].key, "test.scope");
  EXPECT_EQ(snap[0].calls, 2u);
  EXPECT_GE(snap[0].seconds, 0.0);
  EXPECT_NE(prof.to_json().find("\"test.scope\""), std::string::npos);
  prof.reset();
  prof.enable(was_enabled);
}

// ---------------------------------------------------------------------------
// Export carries causal identity

TEST(TraceExportTest, ChromeJsonCarriesIdParentAndTraceKeys) {
  sim::Simulation sim{4};
  sim.trace().enable();
  Span parent{sim, "outer", "t"};
  Span child{sim, "inner", "t"};
  child.end();
  parent.end();
  const std::string json = sim.trace().to_chrome_json();
  EXPECT_NE(json.find("\"id\":1"), std::string::npos);
  EXPECT_NE(json.find("\"id\":2"), std::string::npos);
  EXPECT_NE(json.find("\"parent\":1"), std::string::npos);
  const TraceRecord* outer = sim.trace().find("outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_NE(json.find("\"trace\":\"" + std::to_string(outer->trace_id) + "\""),
            std::string::npos);
}

}  // namespace
}  // namespace vmgrid::obs
