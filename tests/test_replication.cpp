#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/replication.hpp"
#include "sim/simulation.hpp"

namespace vmgrid::sim {
namespace {

/// A replica body with real per-replica state: a seeded Simulation driving
/// rng draws through scheduled events. Any cross-replica interference or
/// order dependence would perturb the returned value.
double replica_value(Simulation& sim, std::size_t index) {
  double acc = static_cast<double>(index);
  for (int i = 0; i < 50; ++i) {
    sim.schedule_after(Duration::millis(1 + i), [&acc, &sim] {
      acc += sim.rng().uniform(0.0, 1.0);
    });
  }
  sim.run();
  sim.metrics().counter("replica.events").inc(static_cast<double>(sim.executed_events()));
  sim.metrics().gauge("replica.last_index").set(static_cast<double>(index));
  sim.metrics().histogram("replica.value", {0.0, 64.0, 32}).observe(acc);
  return acc;
}

std::uint64_t seed_of(std::size_t i) { return 4200 + i; }

TEST(ReplicationRunner, SerialAndParallelResultsAreBitIdentical) {
  constexpr std::size_t kReplicas = 23;
  std::vector<std::vector<double>> per_jobs;
  for (std::size_t jobs : {1u, 2u, 8u}) {
    ReplicationRunner runner{jobs};
    ASSERT_EQ(runner.jobs(), jobs);
    per_jobs.push_back(runner.map(kReplicas, [](std::size_t i) {
      Simulation sim{seed_of(i)};
      return replica_value(sim, i);
    }));
  }
  ASSERT_EQ(per_jobs[0].size(), kReplicas);
  // Bit-identical, not approximately equal: the runner must not change
  // evaluation order within a replica or reduction order across replicas.
  EXPECT_EQ(per_jobs[0], per_jobs[1]);
  EXPECT_EQ(per_jobs[0], per_jobs[2]);
}

TEST(ReplicationRunner, MergedMetricsAreIdenticalAcrossThreadCounts) {
  constexpr std::size_t kReplicas = 13;
  std::vector<std::string> exports;
  for (std::size_t jobs : {1u, 2u, 8u}) {
    ReplicationRunner runner{jobs};
    auto rep = runner.run_replicas(kReplicas, seed_of, replica_value);
    ASSERT_EQ(rep.results.size(), kReplicas);
    exports.push_back(rep.metrics.to_json());
  }
  EXPECT_EQ(exports[0], exports[1]);
  EXPECT_EQ(exports[0], exports[2]);
}

TEST(ReplicationRunner, RunReplicasMergesInSeedOrder) {
  ReplicationRunner runner{8};
  auto rep = runner.run_replicas(5, seed_of, [](Simulation& sim, std::size_t i) {
    sim.metrics().counter("n").inc(1.0);
    sim.metrics().gauge("last").set(static_cast<double>(i));
    return i;
  });
  EXPECT_EQ(rep.results, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
  // Counters sum across replicas; gauges keep the last replica's value in
  // seed order regardless of which thread finished last.
  EXPECT_DOUBLE_EQ(rep.metrics.counter_value("n"), 5.0);
  EXPECT_DOUBLE_EQ(rep.metrics.gauge_value("last"), 4.0);
}

TEST(ReplicationRunner, ExceptionInOneReplicaDoesNotDeadlockOrStopOthers) {
  ReplicationRunner runner{4};
  std::atomic<int> completed{0};
  constexpr std::size_t kReplicas = 16;
  try {
    runner.for_each(kReplicas, [&](std::size_t i) {
      if (i == 5) throw std::runtime_error("replica 5 exploded");
      ++completed;
    });
    FAIL() << "expected the replica exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "replica 5 exploded");
  }
  // Every other replica still ran; the pool drained instead of deadlocking.
  EXPECT_EQ(completed.load(), static_cast<int>(kReplicas) - 1);

  // The pool is still usable for the next fan-out.
  auto again = runner.map(8, [](std::size_t i) { return i * 2; });
  EXPECT_EQ(again.size(), 8u);
  EXPECT_EQ(again[7], 14u);
}

TEST(ReplicationRunner, LowestIndexExceptionWinsDeterministically) {
  ReplicationRunner runner{8};
  for (int round = 0; round < 5; ++round) {
    try {
      runner.for_each(12, [&](std::size_t i) {
        if (i == 3) throw std::runtime_error("replica 3");
        if (i == 9) throw std::runtime_error("replica 9");
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "replica 3");
    }
  }
}

TEST(ReplicationRunner, VmgridJobsEnvForcesSerial) {
  ASSERT_EQ(setenv("VMGRID_JOBS", "1", 1), 0);
  EXPECT_EQ(replication_jobs_from_env(), 1u);
  ReplicationRunner runner;  // jobs = 0 => env
  EXPECT_EQ(runner.jobs(), 1u);

  // Serial execution is observable: replicas run strictly in index order
  // on the calling thread.
  std::vector<std::size_t> order;
  runner.for_each(6, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4, 5}));

  ASSERT_EQ(setenv("VMGRID_JOBS", "7", 1), 0);
  EXPECT_EQ(replication_jobs_from_env(), 7u);
  ASSERT_EQ(setenv("VMGRID_JOBS", "not-a-number", 1), 0);
  EXPECT_GE(replication_jobs_from_env(), 1u);  // falls back to hardware
  ASSERT_EQ(unsetenv("VMGRID_JOBS"), 0);
  EXPECT_GE(replication_jobs_from_env(), 1u);
}

TEST(ReplicationRunner, EmptyAndSingleItemBatches) {
  ReplicationRunner runner{4};
  runner.for_each(0, [](std::size_t) { FAIL() << "no items to run"; });
  auto one = runner.map(1, [](std::size_t i) { return i + 41; });
  EXPECT_EQ(one, (std::vector<std::size_t>{41}));
}

TEST(MetricsMerge, CountersSumGaugesOverwriteHistogramsCombine) {
  obs::MetricsRegistry a;
  obs::MetricsRegistry b;
  a.counter("c", {{"k", "v"}}).inc(2.0);
  b.counter("c", {{"k", "v"}}).inc(3.0);
  b.counter("only_b").inc(7.0);
  a.gauge("g").set(1.0);
  b.gauge("g").set(9.0);
  a.histogram("h", {0.0, 10.0, 10}).observe(1.0);
  b.histogram("h", {0.0, 10.0, 10}).observe(9.0);

  a.merge(b);
  EXPECT_DOUBLE_EQ(a.counter_value("c", {{"k", "v"}}), 5.0);
  EXPECT_DOUBLE_EQ(a.counter_value("only_b"), 7.0);
  EXPECT_DOUBLE_EQ(a.gauge_value("g"), 9.0);
  const auto* h = a.find_histogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->summary().count(), 2u);
  EXPECT_DOUBLE_EQ(h->summary().mean(), 5.0);
}

}  // namespace
}  // namespace vmgrid::sim
