#include <gtest/gtest.h>

#include <optional>

#include "net/rpc.hpp"
#include "sim/simulation.hpp"
#include "storage/nfs_server.hpp"
#include "vfs/block_cache.hpp"
#include "vfs/grid_vfs.hpp"
#include "vfs/vfs_proxy.hpp"

namespace vmgrid::vfs {
namespace {

using storage::kBlockSize;

TEST(BlockCache, LruEvictionOrder) {
  BlockCache cache{3};
  cache.insert("f", 0, 1);
  cache.insert("f", 1, 1);
  cache.insert("f", 2, 1);
  ASSERT_TRUE(cache.lookup("f", 0));  // 0 becomes most recent
  cache.insert("f", 3, 1);            // evicts block 1 (LRU)
  EXPECT_TRUE(cache.peek("f", 0));
  EXPECT_FALSE(cache.peek("f", 1));
  EXPECT_TRUE(cache.peek("f", 2));
  EXPECT_TRUE(cache.peek("f", 3));
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(BlockCache, HitMissCounters) {
  BlockCache cache{8};
  EXPECT_FALSE(cache.lookup("f", 0));
  cache.insert("f", 0, 5);
  EXPECT_EQ(cache.lookup("f", 0), std::optional<std::uint64_t>{5});
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(BlockCache, InsertUpdatesVersionInPlace) {
  BlockCache cache{2};
  cache.insert("f", 0, 1);
  cache.insert("f", 0, 2);
  EXPECT_EQ(cache.peek("f", 0), std::optional<std::uint64_t>{2});
  EXPECT_EQ(cache.size(), 1u);
}

TEST(BlockCache, InvalidateFileRemovesOnlyThatFile) {
  BlockCache cache{8};
  cache.insert("a", 0, 1);
  cache.insert("a", 1, 1);
  cache.insert("b", 0, 1);
  cache.invalidate_file("a");
  EXPECT_FALSE(cache.peek("a", 0));
  EXPECT_FALSE(cache.peek("a", 1));
  EXPECT_TRUE(cache.peek("b", 0));
}

TEST(BlockCache, PeekDoesNotPerturbLruOrCounters) {
  BlockCache cache{2};
  cache.insert("f", 0, 1);
  cache.insert("f", 1, 1);
  (void)cache.peek("f", 0);
  cache.insert("f", 2, 1);  // evicts 0 despite the peek
  EXPECT_FALSE(cache.peek("f", 0));
  EXPECT_EQ(cache.hits(), 0u);
}

struct VfsFixture : ::testing::Test {
  sim::Simulation sim{4};
  net::Network net{sim};
  net::NodeId server_node = net.add_node("server");
  net::NodeId client_node = net.add_node("client");
  net::RpcFabric fabric{net};
  storage::Disk disk{sim, storage::DiskParams{}};
  storage::LocalFileSystem fs{sim, disk};
  storage::NfsServer server{fabric, server_node, fs};
  storage::NfsClient nfs{fabric, client_node, server_node};

  VfsFixture() {
    net.add_link(client_node, server_node,
                 net::LinkParams{sim::Duration::millis(1), 10e6});
    fs.create("image", kBlockSize * 256);
  }

  VfsIoStats read_sync(VfsProxy& proxy, const std::string& path, std::uint64_t off,
                       std::uint64_t len) {
    std::optional<VfsIoStats> out;
    proxy.read(path, off, len, [&](VfsIoStats s) { out = s; });
    sim.run();
    return *out;
  }
};

TEST_F(VfsFixture, ColdReadMissesWarmReadHits) {
  VfsProxy proxy{sim, nfs, VfsProxyParams{.prefetch_blocks = 0}};
  const auto cold = read_sync(proxy, "image", 0, kBlockSize * 8);
  EXPECT_TRUE(cold.ok());
  EXPECT_EQ(cold.cache_misses, 8u);
  EXPECT_GT(cold.rpcs, 0u);
  const auto warm = read_sync(proxy, "image", 0, kBlockSize * 8);
  EXPECT_EQ(warm.cache_misses, 0u);
  EXPECT_EQ(warm.rpcs, 0u);
  EXPECT_EQ(warm.cache_hits, 8u);
}

TEST_F(VfsFixture, PartialOverlapFetchesOnlyMissingBlocks) {
  VfsProxy proxy{sim, nfs, VfsProxyParams{.prefetch_blocks = 0}};
  (void)read_sync(proxy, "image", 0, kBlockSize * 4);
  const auto second = read_sync(proxy, "image", kBlockSize * 2, kBlockSize * 4);
  EXPECT_EQ(second.cache_hits, 2u);
  EXPECT_EQ(second.cache_misses, 2u);
}

TEST_F(VfsFixture, PrefetchHidesSequentialMisses) {
  VfsProxyParams with_pf;
  with_pf.prefetch_blocks = 8;
  VfsProxyParams without_pf;
  without_pf.prefetch_blocks = 0;
  VfsProxy pf{sim, nfs, with_pf};
  storage::NfsClient nfs2{fabric, client_node, server_node};
  VfsProxy nopf{sim, nfs2, without_pf};

  auto sweep = [&](VfsProxy& proxy) {
    std::uint64_t misses = 0;
    for (std::uint64_t b = 0; b < 64; ++b) {
      misses += read_sync(proxy, "image", b * kBlockSize, kBlockSize).cache_misses;
      // Give prefetch time to land, as a paced sequential reader would.
      sim.run_for(sim::Duration::millis(20));
    }
    return misses;
  };
  const auto misses_with = sweep(pf);
  const auto misses_without = sweep(nopf);
  EXPECT_EQ(misses_without, 64u);
  EXPECT_LT(misses_with, misses_without / 4);
}

TEST_F(VfsFixture, ReadYourWritesThroughWriteBuffer) {
  VfsProxy proxy{sim, nfs};
  bool wrote = false;
  proxy.write("image", 0, kBlockSize * 2, [&](VfsIoStats s) {
    EXPECT_TRUE(s.ok());
    wrote = true;
  });
  // Advance only a little so the delayed-write timer has NOT fired yet.
  sim.run_for(sim::Duration::millis(50));
  EXPECT_TRUE(wrote);
  EXPECT_EQ(proxy.dirty_blocks(), 2u);
  std::optional<VfsIoStats> r;
  proxy.read("image", 0, kBlockSize * 2, [&](VfsIoStats s) { r = s; });
  sim.run_for(sim::Duration::millis(50));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->cache_hits, 2u);
  EXPECT_EQ(r->rpcs, 0u);
}

TEST_F(VfsFixture, FlushPushesDirtyBlocksToServer) {
  VfsProxy proxy{sim, nfs};
  proxy.write("image", 0, kBlockSize * 3, [](VfsIoStats) {});
  bool flushed = false;
  proxy.flush([&] { flushed = true; });
  sim.run();
  EXPECT_TRUE(flushed);
  EXPECT_EQ(proxy.dirty_blocks(), 0u);
  EXPECT_EQ(fs.block_version("image", 0), 1u);
  EXPECT_EQ(fs.block_version("image", 2), 1u);
  EXPECT_EQ(fs.block_version("image", 3), 0u);
}

TEST_F(VfsFixture, TimerFlushesWithoutExplicitCall) {
  VfsProxyParams p;
  p.flush_interval = sim::Duration::seconds(2);
  VfsProxy proxy{sim, nfs, p};
  proxy.write("image", 0, kBlockSize, [](VfsIoStats) {});
  sim.run_for(sim::Duration::seconds(5));
  EXPECT_EQ(proxy.dirty_blocks(), 0u);
  EXPECT_EQ(fs.block_version("image", 0), 1u);
}

TEST_F(VfsFixture, ReadAfterFlushSeesServerVersion) {
  VfsProxy proxy{sim, nfs};
  (void)read_sync(proxy, "image", 0, kBlockSize);  // caches version 0
  proxy.write("image", 0, kBlockSize, [](VfsIoStats) {});
  proxy.flush([] {});
  sim.run();
  // Flushed blocks are invalidated; the next read refetches version 1.
  const auto r = read_sync(proxy, "image", 0, kBlockSize);
  EXPECT_EQ(r.cache_misses, 1u);
  EXPECT_EQ(fs.block_version("image", 0), 1u);
}

TEST_F(VfsFixture, SharedL2ServesSecondMountWithoutRpcs) {
  GridVfs gvfs{fabric};
  VfsMountOptions opts;
  opts.use_shared_image_cache = true;
  opts.proxy.prefetch_blocks = 0;
  auto& m1 = gvfs.mount(client_node, server_node, opts);
  auto& m2 = gvfs.mount(client_node, server_node, opts);
  std::optional<VfsIoStats> first, second;
  m1.proxy().read("image", 0, kBlockSize * 16, [&](VfsIoStats s) { first = s; });
  sim.run();
  m2.proxy().read("image", 0, kBlockSize * 16, [&](VfsIoStats s) { second = s; });
  sim.run();
  ASSERT_TRUE(first && second);
  EXPECT_EQ(first->cache_misses, 16u);
  EXPECT_EQ(second->cache_misses, 0u);  // second VM instance hits the L2
  EXPECT_EQ(second->rpcs, 0u);
  EXPECT_EQ(gvfs.mount_count(), 2u);
  gvfs.unmount(m2);
  EXPECT_EQ(gvfs.mount_count(), 1u);
}

TEST_F(VfsFixture, SeparateHostsDoNotShareL2) {
  GridVfs gvfs{fabric};
  auto other_host = net.add_node("other");
  net.add_link(other_host, server_node, net::LinkParams{sim::Duration::millis(1), 10e6});
  VfsMountOptions opts;
  opts.use_shared_image_cache = true;
  opts.proxy.prefetch_blocks = 0;
  auto& m1 = gvfs.mount(client_node, server_node, opts);
  auto& m2 = gvfs.mount(other_host, server_node, opts);
  std::optional<VfsIoStats> first, second;
  m1.proxy().read("image", 0, kBlockSize * 4, [&](VfsIoStats s) { first = s; });
  sim.run();
  m2.proxy().read("image", 0, kBlockSize * 4, [&](VfsIoStats s) { second = s; });
  sim.run();
  EXPECT_EQ(second->cache_misses, 4u);  // different host: cold
}

TEST_F(VfsFixture, ConcurrentReadsOfColdBlockShareOneFetch) {
  VfsProxy proxy{sim, nfs, VfsProxyParams{.prefetch_blocks = 0}};
  std::optional<VfsIoStats> first, second;
  // Both reads target the same cold block; the second is issued before
  // the first's fetch returns, so it must join the in-flight fetch
  // instead of issuing its own RPC.
  proxy.read("image", 0, kBlockSize, [&](VfsIoStats s) { first = s; });
  proxy.read("image", 0, kBlockSize, [&](VfsIoStats s) { second = s; });
  sim.run();
  ASSERT_TRUE(first && second);
  EXPECT_TRUE(first->ok());
  EXPECT_TRUE(second->ok());
  EXPECT_EQ(first->rpcs + second->rpcs, 1u);
  EXPECT_EQ(nfs.rpcs_issued(), 1u);
}

TEST_F(VfsFixture, SequentialReaderNeverDoubleFetches) {
  VfsProxyParams p;
  p.prefetch_blocks = 16;
  VfsProxy proxy{sim, nfs, p};
  // Sweep 64 blocks in 8-block application reads, back to back.
  for (int i = 0; i < 8; ++i) {
    std::optional<VfsIoStats> out;
    proxy.read("image", static_cast<std::uint64_t>(i) * 8 * kBlockSize, 8 * kBlockSize,
               [&](VfsIoStats s) { out = s; });
    sim.run();
    ASSERT_TRUE(out && out->ok());
  }
  // 64 demanded blocks + at most one prefetch window beyond the end.
  EXPECT_LE(nfs.rpcs_issued(), 64u + p.prefetch_blocks);
}

TEST_F(VfsFixture, ReadErrorPropagates) {
  VfsProxy proxy{sim, nfs};
  std::optional<VfsIoStats> out;
  proxy.read("ghost", 0, kBlockSize, [&](VfsIoStats s) { out = s; });
  sim.run();
  ASSERT_TRUE(out.has_value());
  EXPECT_FALSE(out->ok());
  // ENOENT arrives as a typed kInternal (server-side error) with the
  // original message preserved down the cause chain.
  EXPECT_NE(out->status.to_string().find("ENOENT"), std::string::npos);
}

}  // namespace
}  // namespace vmgrid::vfs
