#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numeric>

#include "host/cpu_engine.hpp"
#include "host/load_trace.hpp"
#include "host/physical_host.hpp"
#include "host/schedulers.hpp"
#include "host/trace_playback.hpp"
#include "sim/simulation.hpp"

namespace vmgrid::host {
namespace {

std::unique_ptr<CpuEngine> make_engine(sim::Simulation& sim, double ncpus) {
  return std::make_unique<CpuEngine>(sim, ncpus, std::make_unique<FairShareScheduler>());
}

TEST(CpuEngine, SingleTaskRunsAtFullRate) {
  sim::Simulation sim;
  auto eng = make_engine(sim, 2.0);
  double done_at = -1;
  eng->add("t", {}, 4.0, [&] { done_at = sim.now().to_seconds(); });
  sim.run();
  EXPECT_NEAR(done_at, 4.0, 1e-6);
}

TEST(CpuEngine, TwoTasksUseBothCpus) {
  sim::Simulation sim;
  auto eng = make_engine(sim, 2.0);
  double a = -1, b = -1;
  eng->add("a", {}, 4.0, [&] { a = sim.now().to_seconds(); });
  eng->add("b", {}, 4.0, [&] { b = sim.now().to_seconds(); });
  sim.run();
  EXPECT_NEAR(a, 4.0, 1e-6);
  EXPECT_NEAR(b, 4.0, 1e-6);
}

TEST(CpuEngine, ThreeEqualTasksShareDualCpu) {
  sim::Simulation sim;
  auto eng = make_engine(sim, 2.0);
  int done = 0;
  double last = -1;
  for (int i = 0; i < 3; ++i) {
    eng->add("t" + std::to_string(i), {}, 3.0, [&] {
      ++done;
      last = sim.now().to_seconds();
    });
  }
  sim.run();
  EXPECT_EQ(done, 3);
  EXPECT_NEAR(last, 4.5, 1e-6);  // each runs at 2/3 CPU
}

TEST(CpuEngine, EfficiencyDilatesWork) {
  sim::Simulation sim;
  auto eng = make_engine(sim, 1.0);
  double done_at = -1;
  auto id = eng->add("vm-task", {}, 2.0, [&] { done_at = sim.now().to_seconds(); }, 0.5);
  sim.run();
  EXPECT_NEAR(done_at, 4.0, 1e-6);
  EXPECT_NEAR(eng->cpu_time_used(id), 4.0, 1e-6);
}

TEST(CpuEngine, DemandCapLimitsRate) {
  sim::Simulation sim;
  auto eng = make_engine(sim, 2.0);
  SchedAttrs attrs;
  attrs.demand_cap = 0.5;
  double done_at = -1;
  eng->add("capped", attrs, 1.0, [&] { done_at = sim.now().to_seconds(); });
  sim.run();
  EXPECT_NEAR(done_at, 2.0, 1e-6);
}

TEST(CpuEngine, ArrivalMidRunSlowsExistingTask) {
  sim::Simulation sim;
  auto eng = make_engine(sim, 1.0);
  double a = -1, b = -1;
  eng->add("a", {}, 2.0, [&] { a = sim.now().to_seconds(); });
  sim.schedule_after(sim::Duration::seconds(1), [&] {
    eng->add("b", {}, 2.0, [&] { b = sim.now().to_seconds(); });
  });
  sim.run();
  // a: 1s alone + 2s shared = done at 3; b: 2s shared + 1s alone = done at 4.
  EXPECT_NEAR(a, 3.0, 1e-6);
  EXPECT_NEAR(b, 4.0, 1e-6);
}

TEST(CpuEngine, AddWorkExtendsAndRearmsCompletion) {
  sim::Simulation sim;
  auto eng = make_engine(sim, 1.0);
  std::vector<double> completions;
  auto id = eng->add("phased", {}, 1.0,
                     [&] { completions.push_back(sim.now().to_seconds()); });
  sim.schedule_after(sim::Duration::seconds(2), [&] {
    eng->add_work(id, 1.0, [&] { completions.push_back(sim.now().to_seconds()); });
  });
  sim.run();
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_NEAR(completions[0], 1.0, 1e-6);
  EXPECT_NEAR(completions[1], 3.0, 1e-6);
}

TEST(CpuEngine, RemoveKillsWithoutCompletion) {
  sim::Simulation sim;
  auto eng = make_engine(sim, 1.0);
  bool fired = false;
  auto id = eng->add("doomed", {}, 10.0, [&] { fired = true; });
  sim.schedule_after(sim::Duration::seconds(1), [&] { eng->remove(id); });
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_FALSE(eng->contains(id));
}

TEST(CpuEngine, InfiniteProcessNeverCompletesButUsesCpu) {
  sim::Simulation sim;
  auto eng = make_engine(sim, 1.0);
  auto id = eng->add("bg", {}, CpuEngine::kInfiniteWork);
  sim.run_until(sim::TimePoint::from_seconds(5));
  EXPECT_NEAR(eng->cpu_time_used(id), 5.0, 1e-6);
  EXPECT_NEAR(eng->mean_utilization(), 1.0, 1e-6);
}

TEST(CpuEngine, UtilizationTracksLoad) {
  sim::Simulation sim;
  auto eng = make_engine(sim, 2.0);
  eng->add("t", {}, 5.0, nullptr);
  sim.run_until(sim::TimePoint::from_seconds(10));
  // 5s at rate 1.0 then idle: mean utilization 0.5 over 10s.
  EXPECT_NEAR(eng->mean_utilization(), 0.5, 1e-6);
}

// --- water_fill properties -------------------------------------------------

struct WaterFillCase {
  std::vector<double> weights;
  std::vector<double> caps;
  double capacity;
};

class WaterFillProperty : public ::testing::TestWithParam<WaterFillCase> {};

TEST_P(WaterFillProperty, RespectsCapsAndConservesWork) {
  const auto& c = GetParam();
  const auto alloc = water_fill(c.weights, c.caps, c.capacity);
  ASSERT_EQ(alloc.size(), c.weights.size());
  double total = 0.0, cap_sum = 0.0;
  for (std::size_t i = 0; i < alloc.size(); ++i) {
    EXPECT_GE(alloc[i], -1e-12);
    EXPECT_LE(alloc[i], c.caps[i] + 1e-9);
    total += alloc[i];
    cap_sum += c.caps[i];
  }
  // Work conservation: all capacity used unless demand is the binding
  // constraint.
  EXPECT_NEAR(total, std::min(c.capacity, cap_sum), 1e-9);
  // Weight monotonicity among unsaturated entries.
  for (std::size_t i = 0; i < alloc.size(); ++i) {
    for (std::size_t j = 0; j < alloc.size(); ++j) {
      if (c.weights[i] > c.weights[j] && alloc[i] < c.caps[i] - 1e-9 &&
          alloc[j] < c.caps[j] - 1e-9) {
        EXPECT_GE(alloc[i], alloc[j] - 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, WaterFillProperty,
    ::testing::Values(
        WaterFillCase{{1, 1, 1}, {1, 1, 1}, 2.0},
        WaterFillCase{{2, 1}, {1, 1}, 1.0},
        WaterFillCase{{5, 1, 1}, {0.3, 1, 1}, 1.0},
        WaterFillCase{{1, 1, 1, 1}, {0.1, 0.1, 0.1, 0.1}, 2.0},
        WaterFillCase{{0, 0}, {1, 1}, 1.0},
        WaterFillCase{{3, 2, 1}, {0.5, 0.5, 0.5}, 4.0},
        WaterFillCase{{1}, {1}, 8.0},
        WaterFillCase{{10, 1}, {1, 0.05}, 0.5},
        WaterFillCase{{1, 2, 3, 4, 5}, {1, 1, 1, 1, 1}, 3.0}));

TEST(WfqScheduler, SharesProportionalToWeights) {
  sim::Simulation sim;
  CpuEngine eng{sim, 1.0, std::make_unique<WfqScheduler>()};
  SchedAttrs heavy, light;
  heavy.weight = 2.0;
  light.weight = 1.0;
  auto h = eng.add("h", heavy, CpuEngine::kInfiniteWork);
  auto l = eng.add("l", light, CpuEngine::kInfiniteWork);
  sim.run_until(sim::TimePoint::from_seconds(3));
  EXPECT_NEAR(eng.cpu_time_used(h), 2.0, 1e-6);
  EXPECT_NEAR(eng.cpu_time_used(l), 1.0, 1e-6);
}

TEST(LotteryScheduler, SharesProportionalToTickets) {
  sim::Simulation sim;
  CpuEngine eng{sim, 1.0, std::make_unique<LotteryScheduler>()};
  SchedAttrs a, b;
  a.tickets = 300;
  b.tickets = 100;
  auto pa = eng.add("a", a, CpuEngine::kInfiniteWork);
  auto pb = eng.add("b", b, CpuEngine::kInfiniteWork);
  sim.run_until(sim::TimePoint::from_seconds(4));
  EXPECT_NEAR(eng.cpu_time_used(pa), 3.0, 1e-6);
  EXPECT_NEAR(eng.cpu_time_used(pb), 1.0, 1e-6);
}

TEST(PriorityScheduler, HigherPriorityStarvesLower) {
  sim::Simulation sim;
  CpuEngine eng{sim, 1.0, std::make_unique<PriorityScheduler>()};
  SchedAttrs high, low;
  high.nice = -5;
  low.nice = 5;
  double high_done = -1, low_done = -1;
  eng.add("high", high, 2.0, [&] { high_done = sim.now().to_seconds(); });
  eng.add("low", low, 1.0, [&] { low_done = sim.now().to_seconds(); });
  sim.run();
  EXPECT_NEAR(high_done, 2.0, 1e-6);
  EXPECT_NEAR(low_done, 3.0, 1e-6);  // runs only after high finishes
}

TEST(RealTimeScheduler, ReservationHoldsUnderLoad) {
  sim::Simulation sim;
  CpuEngine eng{sim, 1.0, std::make_unique<RealTimeScheduler>()};
  SchedAttrs rt, bulk;
  rt.reservation = 0.4;
  rt.weight = 0.0;  // gets only its reservation
  bulk.weight = 10.0;
  double rt_done = -1;
  eng.add("rt", rt, 0.4, [&] { rt_done = sim.now().to_seconds(); });
  for (int i = 0; i < 4; ++i) eng.add("bulk", bulk, CpuEngine::kInfiniteWork);
  sim.run_until(sim::TimePoint::from_seconds(2));
  EXPECT_NEAR(rt_done, 1.0, 1e-6);
}

TEST(RealTimeScheduler, OverAdmissionScalesProportionally) {
  sim::Simulation sim;
  CpuEngine eng{sim, 1.0, std::make_unique<RealTimeScheduler>()};
  SchedAttrs a;
  a.reservation = 0.8;
  a.weight = 0.0;
  auto p1 = eng.add("r1", a, CpuEngine::kInfiniteWork);
  auto p2 = eng.add("r2", a, CpuEngine::kInfiniteWork);
  sim.run_until(sim::TimePoint::from_seconds(2));
  // 1.6 reserved on 1 CPU: each scaled to 0.5.
  EXPECT_NEAR(eng.cpu_time_used(p1), 1.0, 1e-6);
  EXPECT_NEAR(eng.cpu_time_used(p2), 1.0, 1e-6);
}

TEST(NiceToWeight, MonotoneDecreasing) {
  EXPECT_GT(nice_to_weight(-10), nice_to_weight(0));
  EXPECT_GT(nice_to_weight(0), nice_to_weight(10));
  EXPECT_DOUBLE_EQ(nice_to_weight(0), 1.0);
}

TEST(DutyCycleController, LongRunShareApproachesDuty) {
  sim::Simulation sim;
  CpuEngine eng{sim, 1.0, std::make_unique<FairShareScheduler>()};
  auto id = eng.add("throttled", {}, CpuEngine::kInfiniteWork);
  DutyCycleController ctl{sim, eng, id, 0.25, sim::Duration::seconds(1)};
  ctl.start();
  sim.run_until(sim::TimePoint::from_seconds(40));
  EXPECT_NEAR(eng.cpu_time_used(id) / 40.0, 0.25, 0.03);
}

TEST(DutyCycleController, StopRestoresDemand) {
  sim::Simulation sim;
  CpuEngine eng{sim, 1.0, std::make_unique<FairShareScheduler>()};
  auto id = eng.add("t", {}, CpuEngine::kInfiniteWork);
  auto ctl = std::make_unique<DutyCycleController>(sim, eng, id, 0.5,
                                                   sim::Duration::seconds(1));
  ctl->start();
  sim.run_until(sim::TimePoint::from_seconds(4));
  ctl->stop();
  const double used_before = eng.cpu_time_used(id);
  sim.run_until(sim::TimePoint::from_seconds(8));
  EXPECT_NEAR(eng.cpu_time_used(id) - used_before, 4.0, 1e-6);
}

TEST(LoadTrace, GenerateMatchesTargetMean) {
  sim::Rng rng{5};
  LoadTraceParams p;
  p.mean = 0.5;
  const auto trace = LoadTrace::generate(rng, sim::Duration::seconds(2000), p);
  EXPECT_EQ(trace.size(), 2000u);
  EXPECT_NEAR(trace.mean(), 0.5, 0.15);
  for (double v : trace.samples()) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, p.max_load);
  }
}

TEST(LoadTrace, AtWrapsAround) {
  LoadTrace t{sim::Duration::seconds(1), {1.0, 2.0, 3.0}};
  EXPECT_DOUBLE_EQ(t.at(sim::Duration::seconds(0.5)), 1.0);
  EXPECT_DOUBLE_EQ(t.at(sim::Duration::seconds(4.2)), 2.0);  // wraps to idx 1
}

TEST(TracePlayback, ConstantLoadConsumesExpectedCpu) {
  sim::Simulation sim;
  CpuEngine eng{sim, 2.0, std::make_unique<FairShareScheduler>()};
  TracePlayback pb{sim, eng, LoadTrace::constant(sim::Duration::seconds(10), 1.5)};
  pb.start();
  sim.run_until(sim::TimePoint::from_seconds(10));
  EXPECT_NEAR(eng.mean_utilization(), 1.5, 0.05);
  pb.stop();
  const double util_at_stop = eng.mean_utilization();
  sim.run_until(sim::TimePoint::from_seconds(20));
  EXPECT_LT(eng.mean_utilization(), util_at_stop);
}

TEST(TracePlayback, StopFiresOnRemoveHooks) {
  sim::Simulation sim;
  CpuEngine eng{sim, 2.0, std::make_unique<FairShareScheduler>()};
  int spawned = 0, removed = 0;
  TracePlayback::Options opts;
  opts.on_spawn = [&](ProcessId) { ++spawned; };
  opts.on_remove = [&](ProcessId) { ++removed; };
  TracePlayback pb{sim, eng, LoadTrace::constant(sim::Duration::seconds(5), 0.8), opts};
  pb.start();
  sim.run_until(sim::TimePoint::from_seconds(2));
  pb.stop();
  EXPECT_GT(spawned, 0);
  EXPECT_EQ(spawned, removed);
}

TEST(PhysicalHost, MemoryReservationAccounting) {
  sim::Simulation sim;
  net::Network net{sim};
  HostParams hp;
  hp.memory_mb = 512;
  PhysicalHost host{sim, net, hp};
  EXPECT_TRUE(host.reserve_memory(256));
  EXPECT_TRUE(host.reserve_memory(256));
  EXPECT_FALSE(host.reserve_memory(1));
  host.release_memory(100);
  EXPECT_EQ(host.free_memory_mb(), 100u);
  EXPECT_TRUE(host.reserve_memory(100));
}

TEST(CpuEngineFluid, LazyTierMatchesExactCompletionTimes) {
  const auto run_one = [](model::Fidelity f) {
    sim::Simulation sim{1};
    CpuEngine eng{sim, 2.0, std::make_unique<FairShareScheduler>()};
    eng.set_fidelity(f);
    std::vector<double> done;
    for (int i = 0; i < 3; ++i) {
      eng.add("p" + std::to_string(i), SchedAttrs{}, 1.0 + i,
              [&done, &sim] { done.push_back(sim.now().to_seconds()); });
    }
    sim.run();
    return done;
  };
  const auto exact = run_one(model::Fidelity::kExact);
  const auto fluid = run_one(model::Fidelity::kFluid);
  ASSERT_EQ(exact.size(), 3u);
  ASSERT_EQ(fluid.size(), 3u);
  for (std::size_t i = 0; i < exact.size(); ++i) {
    EXPECT_NEAR(fluid[i], exact[i], 1e-9);
  }
}

TEST(CpuEngineFluid, UnchangedConstraintSetReusesTheLastSolve) {
  sim::Simulation sim{1};
  CpuEngine eng{sim, 1.0, std::make_unique<FairShareScheduler>()};
  eng.set_fidelity(model::Fidelity::kFluid);
  int completions = 0;
  eng.add("a", SchedAttrs{}, 1.0, [&] { ++completions; });
  eng.add("b", SchedAttrs{}, 2.0, [&] { ++completions; });
  sim.run();
  EXPECT_EQ(completions, 2);
  // Completion callbacks trigger a re-run of the allocation loop; when
  // they did not change the constraint set, the lazy tier keeps the
  // solved rate vector instead of calling the scheduler again.
  EXPECT_GT(eng.lazy_reuses(), 0u);
}

TEST(CpuEngineFluid, ReapingADrainedProcSkipsTheSolver) {
  sim::Simulation sim{1};
  CpuEngine eng{sim, 1.0, std::make_unique<FairShareScheduler>()};
  eng.set_fidelity(model::Fidelity::kFluid);
  const ProcessId done_proc = eng.add("done", SchedAttrs{}, 1.0, nullptr);
  eng.add("bg", SchedAttrs{}, 100.0, nullptr);
  sim.run_for(sim::Duration::seconds(10));  // "done" drained long ago
  EXPECT_NEAR(eng.remaining_work(done_proc), 0.0, 1e-9);
  const std::uint64_t allocs = eng.allocations();
  eng.remove(done_proc);  // removing a drained proc changes no one's rate
  EXPECT_EQ(eng.allocations(), allocs);
}

}  // namespace
}  // namespace vmgrid::host
