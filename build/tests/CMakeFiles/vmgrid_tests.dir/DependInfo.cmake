
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_constraint_lang.cpp" "tests/CMakeFiles/vmgrid_tests.dir/test_constraint_lang.cpp.o" "gcc" "tests/CMakeFiles/vmgrid_tests.dir/test_constraint_lang.cpp.o.d"
  "/root/repo/tests/test_failure_injection.cpp" "tests/CMakeFiles/vmgrid_tests.dir/test_failure_injection.cpp.o" "gcc" "tests/CMakeFiles/vmgrid_tests.dir/test_failure_injection.cpp.o.d"
  "/root/repo/tests/test_host.cpp" "tests/CMakeFiles/vmgrid_tests.dir/test_host.cpp.o" "gcc" "tests/CMakeFiles/vmgrid_tests.dir/test_host.cpp.o.d"
  "/root/repo/tests/test_isolation.cpp" "tests/CMakeFiles/vmgrid_tests.dir/test_isolation.cpp.o" "gcc" "tests/CMakeFiles/vmgrid_tests.dir/test_isolation.cpp.o.d"
  "/root/repo/tests/test_middleware.cpp" "tests/CMakeFiles/vmgrid_tests.dir/test_middleware.cpp.o" "gcc" "tests/CMakeFiles/vmgrid_tests.dir/test_middleware.cpp.o.d"
  "/root/repo/tests/test_net.cpp" "tests/CMakeFiles/vmgrid_tests.dir/test_net.cpp.o" "gcc" "tests/CMakeFiles/vmgrid_tests.dir/test_net.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/vmgrid_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/vmgrid_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_rps.cpp" "tests/CMakeFiles/vmgrid_tests.dir/test_rps.cpp.o" "gcc" "tests/CMakeFiles/vmgrid_tests.dir/test_rps.cpp.o.d"
  "/root/repo/tests/test_services.cpp" "tests/CMakeFiles/vmgrid_tests.dir/test_services.cpp.o" "gcc" "tests/CMakeFiles/vmgrid_tests.dir/test_services.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/vmgrid_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/vmgrid_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_storage.cpp" "tests/CMakeFiles/vmgrid_tests.dir/test_storage.cpp.o" "gcc" "tests/CMakeFiles/vmgrid_tests.dir/test_storage.cpp.o.d"
  "/root/repo/tests/test_system.cpp" "tests/CMakeFiles/vmgrid_tests.dir/test_system.cpp.o" "gcc" "tests/CMakeFiles/vmgrid_tests.dir/test_system.cpp.o.d"
  "/root/repo/tests/test_vfs.cpp" "tests/CMakeFiles/vmgrid_tests.dir/test_vfs.cpp.o" "gcc" "tests/CMakeFiles/vmgrid_tests.dir/test_vfs.cpp.o.d"
  "/root/repo/tests/test_vm.cpp" "tests/CMakeFiles/vmgrid_tests.dir/test_vm.cpp.o" "gcc" "tests/CMakeFiles/vmgrid_tests.dir/test_vm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vmgrid_middleware.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vmgrid_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vmgrid_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vmgrid_rps.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vmgrid_host.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vmgrid_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vmgrid_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vmgrid_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vmgrid_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
