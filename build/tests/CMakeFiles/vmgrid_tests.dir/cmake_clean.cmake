file(REMOVE_RECURSE
  "CMakeFiles/vmgrid_tests.dir/test_constraint_lang.cpp.o"
  "CMakeFiles/vmgrid_tests.dir/test_constraint_lang.cpp.o.d"
  "CMakeFiles/vmgrid_tests.dir/test_failure_injection.cpp.o"
  "CMakeFiles/vmgrid_tests.dir/test_failure_injection.cpp.o.d"
  "CMakeFiles/vmgrid_tests.dir/test_host.cpp.o"
  "CMakeFiles/vmgrid_tests.dir/test_host.cpp.o.d"
  "CMakeFiles/vmgrid_tests.dir/test_isolation.cpp.o"
  "CMakeFiles/vmgrid_tests.dir/test_isolation.cpp.o.d"
  "CMakeFiles/vmgrid_tests.dir/test_middleware.cpp.o"
  "CMakeFiles/vmgrid_tests.dir/test_middleware.cpp.o.d"
  "CMakeFiles/vmgrid_tests.dir/test_net.cpp.o"
  "CMakeFiles/vmgrid_tests.dir/test_net.cpp.o.d"
  "CMakeFiles/vmgrid_tests.dir/test_properties.cpp.o"
  "CMakeFiles/vmgrid_tests.dir/test_properties.cpp.o.d"
  "CMakeFiles/vmgrid_tests.dir/test_rps.cpp.o"
  "CMakeFiles/vmgrid_tests.dir/test_rps.cpp.o.d"
  "CMakeFiles/vmgrid_tests.dir/test_services.cpp.o"
  "CMakeFiles/vmgrid_tests.dir/test_services.cpp.o.d"
  "CMakeFiles/vmgrid_tests.dir/test_sim.cpp.o"
  "CMakeFiles/vmgrid_tests.dir/test_sim.cpp.o.d"
  "CMakeFiles/vmgrid_tests.dir/test_storage.cpp.o"
  "CMakeFiles/vmgrid_tests.dir/test_storage.cpp.o.d"
  "CMakeFiles/vmgrid_tests.dir/test_system.cpp.o"
  "CMakeFiles/vmgrid_tests.dir/test_system.cpp.o.d"
  "CMakeFiles/vmgrid_tests.dir/test_vfs.cpp.o"
  "CMakeFiles/vmgrid_tests.dir/test_vfs.cpp.o.d"
  "CMakeFiles/vmgrid_tests.dir/test_vm.cpp.o"
  "CMakeFiles/vmgrid_tests.dir/test_vm.cpp.o.d"
  "vmgrid_tests"
  "vmgrid_tests.pdb"
  "vmgrid_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmgrid_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
