# Empty dependencies file for vmgrid_tests.
# This may be replaced when dependencies are built.
