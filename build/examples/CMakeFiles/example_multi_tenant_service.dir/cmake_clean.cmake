file(REMOVE_RECURSE
  "CMakeFiles/example_multi_tenant_service.dir/multi_tenant_service.cpp.o"
  "CMakeFiles/example_multi_tenant_service.dir/multi_tenant_service.cpp.o.d"
  "example_multi_tenant_service"
  "example_multi_tenant_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_multi_tenant_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
