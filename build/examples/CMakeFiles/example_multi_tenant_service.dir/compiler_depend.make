# Empty compiler generated dependencies file for example_multi_tenant_service.
# This may be replaced when dependencies are built.
