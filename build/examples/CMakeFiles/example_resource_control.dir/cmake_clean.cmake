file(REMOVE_RECURSE
  "CMakeFiles/example_resource_control.dir/resource_control.cpp.o"
  "CMakeFiles/example_resource_control.dir/resource_control.cpp.o.d"
  "example_resource_control"
  "example_resource_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_resource_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
