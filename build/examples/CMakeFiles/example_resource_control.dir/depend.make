# Empty dependencies file for example_resource_control.
# This may be replaced when dependencies are built.
