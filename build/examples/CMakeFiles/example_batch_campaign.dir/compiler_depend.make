# Empty compiler generated dependencies file for example_batch_campaign.
# This may be replaced when dependencies are built.
