file(REMOVE_RECURSE
  "CMakeFiles/example_batch_campaign.dir/batch_campaign.cpp.o"
  "CMakeFiles/example_batch_campaign.dir/batch_campaign.cpp.o.d"
  "example_batch_campaign"
  "example_batch_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_batch_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
