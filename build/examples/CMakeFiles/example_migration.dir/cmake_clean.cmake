file(REMOVE_RECURSE
  "CMakeFiles/example_migration.dir/migration.cpp.o"
  "CMakeFiles/example_migration.dir/migration.cpp.o.d"
  "example_migration"
  "example_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
