# Empty compiler generated dependencies file for bench_virtual_network.
# This may be replaced when dependencies are built.
