file(REMOVE_RECURSE
  "CMakeFiles/bench_virtual_network.dir/bench_virtual_network.cpp.o"
  "CMakeFiles/bench_virtual_network.dir/bench_virtual_network.cpp.o.d"
  "bench_virtual_network"
  "bench_virtual_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_virtual_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
