file(REMOVE_RECURSE
  "CMakeFiles/bench_vfs_ablation.dir/bench_vfs_ablation.cpp.o"
  "CMakeFiles/bench_vfs_ablation.dir/bench_vfs_ablation.cpp.o.d"
  "bench_vfs_ablation"
  "bench_vfs_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vfs_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
