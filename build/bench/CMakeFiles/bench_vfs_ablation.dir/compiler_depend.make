# Empty compiler generated dependencies file for bench_vfs_ablation.
# This may be replaced when dependencies are built.
