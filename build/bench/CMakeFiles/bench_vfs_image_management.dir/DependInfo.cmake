
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_vfs_image_management.cpp" "bench/CMakeFiles/bench_vfs_image_management.dir/bench_vfs_image_management.cpp.o" "gcc" "bench/CMakeFiles/bench_vfs_image_management.dir/bench_vfs_image_management.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vmgrid_middleware.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vmgrid_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vmgrid_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vmgrid_rps.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vmgrid_host.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vmgrid_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vmgrid_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vmgrid_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vmgrid_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
