# Empty compiler generated dependencies file for bench_vfs_image_management.
# This may be replaced when dependencies are built.
