file(REMOVE_RECURSE
  "CMakeFiles/bench_vfs_image_management.dir/bench_vfs_image_management.cpp.o"
  "CMakeFiles/bench_vfs_image_management.dir/bench_vfs_image_management.cpp.o.d"
  "bench_vfs_image_management"
  "bench_vfs_image_management.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vfs_image_management.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
