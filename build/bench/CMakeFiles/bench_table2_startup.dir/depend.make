# Empty dependencies file for bench_table2_startup.
# This may be replaced when dependencies are built.
