file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_startup.dir/bench_table2_startup.cpp.o"
  "CMakeFiles/bench_table2_startup.dir/bench_table2_startup.cpp.o.d"
  "bench_table2_startup"
  "bench_table2_startup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_startup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
