# Empty dependencies file for bench_resource_control.
# This may be replaced when dependencies are built.
