file(REMOVE_RECURSE
  "CMakeFiles/bench_resource_control.dir/bench_resource_control.cpp.o"
  "CMakeFiles/bench_resource_control.dir/bench_resource_control.cpp.o.d"
  "bench_resource_control"
  "bench_resource_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_resource_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
