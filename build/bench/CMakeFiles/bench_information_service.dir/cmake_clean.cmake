file(REMOVE_RECURSE
  "CMakeFiles/bench_information_service.dir/bench_information_service.cpp.o"
  "CMakeFiles/bench_information_service.dir/bench_information_service.cpp.o.d"
  "bench_information_service"
  "bench_information_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_information_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
