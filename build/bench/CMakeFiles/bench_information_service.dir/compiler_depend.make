# Empty compiler generated dependencies file for bench_information_service.
# This may be replaced when dependencies are built.
