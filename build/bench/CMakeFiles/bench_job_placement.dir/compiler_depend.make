# Empty compiler generated dependencies file for bench_job_placement.
# This may be replaced when dependencies are built.
