file(REMOVE_RECURSE
  "CMakeFiles/bench_job_placement.dir/bench_job_placement.cpp.o"
  "CMakeFiles/bench_job_placement.dir/bench_job_placement.cpp.o.d"
  "bench_job_placement"
  "bench_job_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_job_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
