file(REMOVE_RECURSE
  "CMakeFiles/bench_rps_prediction.dir/bench_rps_prediction.cpp.o"
  "CMakeFiles/bench_rps_prediction.dir/bench_rps_prediction.cpp.o.d"
  "bench_rps_prediction"
  "bench_rps_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rps_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
