# Empty dependencies file for bench_rps_prediction.
# This may be replaced when dependencies are built.
