file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_macrobenchmark.dir/bench_table1_macrobenchmark.cpp.o"
  "CMakeFiles/bench_table1_macrobenchmark.dir/bench_table1_macrobenchmark.cpp.o.d"
  "bench_table1_macrobenchmark"
  "bench_table1_macrobenchmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_macrobenchmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
