file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_microbenchmark.dir/bench_fig1_microbenchmark.cpp.o"
  "CMakeFiles/bench_fig1_microbenchmark.dir/bench_fig1_microbenchmark.cpp.o.d"
  "bench_fig1_microbenchmark"
  "bench_fig1_microbenchmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_microbenchmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
