# Empty compiler generated dependencies file for bench_fig1_microbenchmark.
# This may be replaced when dependencies are built.
