
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rps/predictors.cpp" "src/CMakeFiles/vmgrid_rps.dir/rps/predictors.cpp.o" "gcc" "src/CMakeFiles/vmgrid_rps.dir/rps/predictors.cpp.o.d"
  "/root/repo/src/rps/runtime_predictor.cpp" "src/CMakeFiles/vmgrid_rps.dir/rps/runtime_predictor.cpp.o" "gcc" "src/CMakeFiles/vmgrid_rps.dir/rps/runtime_predictor.cpp.o.d"
  "/root/repo/src/rps/sensor.cpp" "src/CMakeFiles/vmgrid_rps.dir/rps/sensor.cpp.o" "gcc" "src/CMakeFiles/vmgrid_rps.dir/rps/sensor.cpp.o.d"
  "/root/repo/src/rps/timeseries.cpp" "src/CMakeFiles/vmgrid_rps.dir/rps/timeseries.cpp.o" "gcc" "src/CMakeFiles/vmgrid_rps.dir/rps/timeseries.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vmgrid_host.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vmgrid_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vmgrid_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vmgrid_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
