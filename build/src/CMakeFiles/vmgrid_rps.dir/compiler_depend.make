# Empty compiler generated dependencies file for vmgrid_rps.
# This may be replaced when dependencies are built.
