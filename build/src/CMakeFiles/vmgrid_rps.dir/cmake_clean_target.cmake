file(REMOVE_RECURSE
  "libvmgrid_rps.a"
)
