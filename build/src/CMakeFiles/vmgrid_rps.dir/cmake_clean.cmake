file(REMOVE_RECURSE
  "CMakeFiles/vmgrid_rps.dir/rps/predictors.cpp.o"
  "CMakeFiles/vmgrid_rps.dir/rps/predictors.cpp.o.d"
  "CMakeFiles/vmgrid_rps.dir/rps/runtime_predictor.cpp.o"
  "CMakeFiles/vmgrid_rps.dir/rps/runtime_predictor.cpp.o.d"
  "CMakeFiles/vmgrid_rps.dir/rps/sensor.cpp.o"
  "CMakeFiles/vmgrid_rps.dir/rps/sensor.cpp.o.d"
  "CMakeFiles/vmgrid_rps.dir/rps/timeseries.cpp.o"
  "CMakeFiles/vmgrid_rps.dir/rps/timeseries.cpp.o.d"
  "libvmgrid_rps.a"
  "libvmgrid_rps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmgrid_rps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
