# Empty compiler generated dependencies file for vmgrid_workload.
# This may be replaced when dependencies are built.
