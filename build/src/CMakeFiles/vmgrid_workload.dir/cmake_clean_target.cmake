file(REMOVE_RECURSE
  "libvmgrid_workload.a"
)
