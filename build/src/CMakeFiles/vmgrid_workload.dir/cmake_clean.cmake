file(REMOVE_RECURSE
  "CMakeFiles/vmgrid_workload.dir/workload/spec_benchmarks.cpp.o"
  "CMakeFiles/vmgrid_workload.dir/workload/spec_benchmarks.cpp.o.d"
  "CMakeFiles/vmgrid_workload.dir/workload/synthetic.cpp.o"
  "CMakeFiles/vmgrid_workload.dir/workload/synthetic.cpp.o.d"
  "CMakeFiles/vmgrid_workload.dir/workload/task_spec.cpp.o"
  "CMakeFiles/vmgrid_workload.dir/workload/task_spec.cpp.o.d"
  "libvmgrid_workload.a"
  "libvmgrid_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmgrid_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
