
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/spec_benchmarks.cpp" "src/CMakeFiles/vmgrid_workload.dir/workload/spec_benchmarks.cpp.o" "gcc" "src/CMakeFiles/vmgrid_workload.dir/workload/spec_benchmarks.cpp.o.d"
  "/root/repo/src/workload/synthetic.cpp" "src/CMakeFiles/vmgrid_workload.dir/workload/synthetic.cpp.o" "gcc" "src/CMakeFiles/vmgrid_workload.dir/workload/synthetic.cpp.o.d"
  "/root/repo/src/workload/task_spec.cpp" "src/CMakeFiles/vmgrid_workload.dir/workload/task_spec.cpp.o" "gcc" "src/CMakeFiles/vmgrid_workload.dir/workload/task_spec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vmgrid_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
