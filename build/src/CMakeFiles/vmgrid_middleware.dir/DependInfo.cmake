
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/middleware/accounting.cpp" "src/CMakeFiles/vmgrid_middleware.dir/middleware/accounting.cpp.o" "gcc" "src/CMakeFiles/vmgrid_middleware.dir/middleware/accounting.cpp.o.d"
  "/root/repo/src/middleware/archive.cpp" "src/CMakeFiles/vmgrid_middleware.dir/middleware/archive.cpp.o" "gcc" "src/CMakeFiles/vmgrid_middleware.dir/middleware/archive.cpp.o.d"
  "/root/repo/src/middleware/compute_server.cpp" "src/CMakeFiles/vmgrid_middleware.dir/middleware/compute_server.cpp.o" "gcc" "src/CMakeFiles/vmgrid_middleware.dir/middleware/compute_server.cpp.o.d"
  "/root/repo/src/middleware/console.cpp" "src/CMakeFiles/vmgrid_middleware.dir/middleware/console.cpp.o" "gcc" "src/CMakeFiles/vmgrid_middleware.dir/middleware/console.cpp.o.d"
  "/root/repo/src/middleware/constraint_lang.cpp" "src/CMakeFiles/vmgrid_middleware.dir/middleware/constraint_lang.cpp.o" "gcc" "src/CMakeFiles/vmgrid_middleware.dir/middleware/constraint_lang.cpp.o.d"
  "/root/repo/src/middleware/data_server.cpp" "src/CMakeFiles/vmgrid_middleware.dir/middleware/data_server.cpp.o" "gcc" "src/CMakeFiles/vmgrid_middleware.dir/middleware/data_server.cpp.o.d"
  "/root/repo/src/middleware/gram.cpp" "src/CMakeFiles/vmgrid_middleware.dir/middleware/gram.cpp.o" "gcc" "src/CMakeFiles/vmgrid_middleware.dir/middleware/gram.cpp.o.d"
  "/root/repo/src/middleware/grid.cpp" "src/CMakeFiles/vmgrid_middleware.dir/middleware/grid.cpp.o" "gcc" "src/CMakeFiles/vmgrid_middleware.dir/middleware/grid.cpp.o.d"
  "/root/repo/src/middleware/gridftp.cpp" "src/CMakeFiles/vmgrid_middleware.dir/middleware/gridftp.cpp.o" "gcc" "src/CMakeFiles/vmgrid_middleware.dir/middleware/gridftp.cpp.o.d"
  "/root/repo/src/middleware/image_server.cpp" "src/CMakeFiles/vmgrid_middleware.dir/middleware/image_server.cpp.o" "gcc" "src/CMakeFiles/vmgrid_middleware.dir/middleware/image_server.cpp.o.d"
  "/root/repo/src/middleware/information_service.cpp" "src/CMakeFiles/vmgrid_middleware.dir/middleware/information_service.cpp.o" "gcc" "src/CMakeFiles/vmgrid_middleware.dir/middleware/information_service.cpp.o.d"
  "/root/repo/src/middleware/logical_accounts.cpp" "src/CMakeFiles/vmgrid_middleware.dir/middleware/logical_accounts.cpp.o" "gcc" "src/CMakeFiles/vmgrid_middleware.dir/middleware/logical_accounts.cpp.o.d"
  "/root/repo/src/middleware/schedule_compiler.cpp" "src/CMakeFiles/vmgrid_middleware.dir/middleware/schedule_compiler.cpp.o" "gcc" "src/CMakeFiles/vmgrid_middleware.dir/middleware/schedule_compiler.cpp.o.d"
  "/root/repo/src/middleware/scheduler_service.cpp" "src/CMakeFiles/vmgrid_middleware.dir/middleware/scheduler_service.cpp.o" "gcc" "src/CMakeFiles/vmgrid_middleware.dir/middleware/scheduler_service.cpp.o.d"
  "/root/repo/src/middleware/session.cpp" "src/CMakeFiles/vmgrid_middleware.dir/middleware/session.cpp.o" "gcc" "src/CMakeFiles/vmgrid_middleware.dir/middleware/session.cpp.o.d"
  "/root/repo/src/middleware/testbed.cpp" "src/CMakeFiles/vmgrid_middleware.dir/middleware/testbed.cpp.o" "gcc" "src/CMakeFiles/vmgrid_middleware.dir/middleware/testbed.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vmgrid_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vmgrid_rps.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vmgrid_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vmgrid_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vmgrid_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vmgrid_host.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vmgrid_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vmgrid_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
