file(REMOVE_RECURSE
  "libvmgrid_middleware.a"
)
