# Empty compiler generated dependencies file for vmgrid_middleware.
# This may be replaced when dependencies are built.
