file(REMOVE_RECURSE
  "libvmgrid_net.a"
)
