file(REMOVE_RECURSE
  "CMakeFiles/vmgrid_net.dir/net/address.cpp.o"
  "CMakeFiles/vmgrid_net.dir/net/address.cpp.o.d"
  "CMakeFiles/vmgrid_net.dir/net/dhcp.cpp.o"
  "CMakeFiles/vmgrid_net.dir/net/dhcp.cpp.o.d"
  "CMakeFiles/vmgrid_net.dir/net/network.cpp.o"
  "CMakeFiles/vmgrid_net.dir/net/network.cpp.o.d"
  "CMakeFiles/vmgrid_net.dir/net/overlay.cpp.o"
  "CMakeFiles/vmgrid_net.dir/net/overlay.cpp.o.d"
  "CMakeFiles/vmgrid_net.dir/net/rpc.cpp.o"
  "CMakeFiles/vmgrid_net.dir/net/rpc.cpp.o.d"
  "CMakeFiles/vmgrid_net.dir/net/tunnel.cpp.o"
  "CMakeFiles/vmgrid_net.dir/net/tunnel.cpp.o.d"
  "libvmgrid_net.a"
  "libvmgrid_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmgrid_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
