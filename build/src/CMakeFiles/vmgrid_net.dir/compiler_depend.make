# Empty compiler generated dependencies file for vmgrid_net.
# This may be replaced when dependencies are built.
