
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/address.cpp" "src/CMakeFiles/vmgrid_net.dir/net/address.cpp.o" "gcc" "src/CMakeFiles/vmgrid_net.dir/net/address.cpp.o.d"
  "/root/repo/src/net/dhcp.cpp" "src/CMakeFiles/vmgrid_net.dir/net/dhcp.cpp.o" "gcc" "src/CMakeFiles/vmgrid_net.dir/net/dhcp.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/CMakeFiles/vmgrid_net.dir/net/network.cpp.o" "gcc" "src/CMakeFiles/vmgrid_net.dir/net/network.cpp.o.d"
  "/root/repo/src/net/overlay.cpp" "src/CMakeFiles/vmgrid_net.dir/net/overlay.cpp.o" "gcc" "src/CMakeFiles/vmgrid_net.dir/net/overlay.cpp.o.d"
  "/root/repo/src/net/rpc.cpp" "src/CMakeFiles/vmgrid_net.dir/net/rpc.cpp.o" "gcc" "src/CMakeFiles/vmgrid_net.dir/net/rpc.cpp.o.d"
  "/root/repo/src/net/tunnel.cpp" "src/CMakeFiles/vmgrid_net.dir/net/tunnel.cpp.o" "gcc" "src/CMakeFiles/vmgrid_net.dir/net/tunnel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vmgrid_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
