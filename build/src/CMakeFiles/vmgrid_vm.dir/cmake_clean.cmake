file(REMOVE_RECURSE
  "CMakeFiles/vmgrid_vm.dir/vm/migration.cpp.o"
  "CMakeFiles/vmgrid_vm.dir/vm/migration.cpp.o.d"
  "CMakeFiles/vmgrid_vm.dir/vm/overhead_model.cpp.o"
  "CMakeFiles/vmgrid_vm.dir/vm/overhead_model.cpp.o.d"
  "CMakeFiles/vmgrid_vm.dir/vm/task_runner.cpp.o"
  "CMakeFiles/vmgrid_vm.dir/vm/task_runner.cpp.o.d"
  "CMakeFiles/vmgrid_vm.dir/vm/virtual_machine.cpp.o"
  "CMakeFiles/vmgrid_vm.dir/vm/virtual_machine.cpp.o.d"
  "CMakeFiles/vmgrid_vm.dir/vm/vm_disk.cpp.o"
  "CMakeFiles/vmgrid_vm.dir/vm/vm_disk.cpp.o.d"
  "CMakeFiles/vmgrid_vm.dir/vm/vm_image.cpp.o"
  "CMakeFiles/vmgrid_vm.dir/vm/vm_image.cpp.o.d"
  "CMakeFiles/vmgrid_vm.dir/vm/vmm.cpp.o"
  "CMakeFiles/vmgrid_vm.dir/vm/vmm.cpp.o.d"
  "libvmgrid_vm.a"
  "libvmgrid_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmgrid_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
