
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/migration.cpp" "src/CMakeFiles/vmgrid_vm.dir/vm/migration.cpp.o" "gcc" "src/CMakeFiles/vmgrid_vm.dir/vm/migration.cpp.o.d"
  "/root/repo/src/vm/overhead_model.cpp" "src/CMakeFiles/vmgrid_vm.dir/vm/overhead_model.cpp.o" "gcc" "src/CMakeFiles/vmgrid_vm.dir/vm/overhead_model.cpp.o.d"
  "/root/repo/src/vm/task_runner.cpp" "src/CMakeFiles/vmgrid_vm.dir/vm/task_runner.cpp.o" "gcc" "src/CMakeFiles/vmgrid_vm.dir/vm/task_runner.cpp.o.d"
  "/root/repo/src/vm/virtual_machine.cpp" "src/CMakeFiles/vmgrid_vm.dir/vm/virtual_machine.cpp.o" "gcc" "src/CMakeFiles/vmgrid_vm.dir/vm/virtual_machine.cpp.o.d"
  "/root/repo/src/vm/vm_disk.cpp" "src/CMakeFiles/vmgrid_vm.dir/vm/vm_disk.cpp.o" "gcc" "src/CMakeFiles/vmgrid_vm.dir/vm/vm_disk.cpp.o.d"
  "/root/repo/src/vm/vm_image.cpp" "src/CMakeFiles/vmgrid_vm.dir/vm/vm_image.cpp.o" "gcc" "src/CMakeFiles/vmgrid_vm.dir/vm/vm_image.cpp.o.d"
  "/root/repo/src/vm/vmm.cpp" "src/CMakeFiles/vmgrid_vm.dir/vm/vmm.cpp.o" "gcc" "src/CMakeFiles/vmgrid_vm.dir/vm/vmm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vmgrid_host.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vmgrid_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vmgrid_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vmgrid_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vmgrid_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vmgrid_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
