file(REMOVE_RECURSE
  "libvmgrid_vm.a"
)
