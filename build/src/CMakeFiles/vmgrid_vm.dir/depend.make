# Empty dependencies file for vmgrid_vm.
# This may be replaced when dependencies are built.
