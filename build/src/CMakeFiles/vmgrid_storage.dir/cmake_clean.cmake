file(REMOVE_RECURSE
  "CMakeFiles/vmgrid_storage.dir/storage/disk.cpp.o"
  "CMakeFiles/vmgrid_storage.dir/storage/disk.cpp.o.d"
  "CMakeFiles/vmgrid_storage.dir/storage/local_fs.cpp.o"
  "CMakeFiles/vmgrid_storage.dir/storage/local_fs.cpp.o.d"
  "CMakeFiles/vmgrid_storage.dir/storage/nfs_client.cpp.o"
  "CMakeFiles/vmgrid_storage.dir/storage/nfs_client.cpp.o.d"
  "CMakeFiles/vmgrid_storage.dir/storage/nfs_server.cpp.o"
  "CMakeFiles/vmgrid_storage.dir/storage/nfs_server.cpp.o.d"
  "libvmgrid_storage.a"
  "libvmgrid_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmgrid_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
