
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/disk.cpp" "src/CMakeFiles/vmgrid_storage.dir/storage/disk.cpp.o" "gcc" "src/CMakeFiles/vmgrid_storage.dir/storage/disk.cpp.o.d"
  "/root/repo/src/storage/local_fs.cpp" "src/CMakeFiles/vmgrid_storage.dir/storage/local_fs.cpp.o" "gcc" "src/CMakeFiles/vmgrid_storage.dir/storage/local_fs.cpp.o.d"
  "/root/repo/src/storage/nfs_client.cpp" "src/CMakeFiles/vmgrid_storage.dir/storage/nfs_client.cpp.o" "gcc" "src/CMakeFiles/vmgrid_storage.dir/storage/nfs_client.cpp.o.d"
  "/root/repo/src/storage/nfs_server.cpp" "src/CMakeFiles/vmgrid_storage.dir/storage/nfs_server.cpp.o" "gcc" "src/CMakeFiles/vmgrid_storage.dir/storage/nfs_server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vmgrid_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vmgrid_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
