file(REMOVE_RECURSE
  "libvmgrid_storage.a"
)
