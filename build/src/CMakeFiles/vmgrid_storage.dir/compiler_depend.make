# Empty compiler generated dependencies file for vmgrid_storage.
# This may be replaced when dependencies are built.
