file(REMOVE_RECURSE
  "libvmgrid_host.a"
)
