# Empty compiler generated dependencies file for vmgrid_host.
# This may be replaced when dependencies are built.
