
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/host/cpu_engine.cpp" "src/CMakeFiles/vmgrid_host.dir/host/cpu_engine.cpp.o" "gcc" "src/CMakeFiles/vmgrid_host.dir/host/cpu_engine.cpp.o.d"
  "/root/repo/src/host/load_trace.cpp" "src/CMakeFiles/vmgrid_host.dir/host/load_trace.cpp.o" "gcc" "src/CMakeFiles/vmgrid_host.dir/host/load_trace.cpp.o.d"
  "/root/repo/src/host/physical_host.cpp" "src/CMakeFiles/vmgrid_host.dir/host/physical_host.cpp.o" "gcc" "src/CMakeFiles/vmgrid_host.dir/host/physical_host.cpp.o.d"
  "/root/repo/src/host/schedulers.cpp" "src/CMakeFiles/vmgrid_host.dir/host/schedulers.cpp.o" "gcc" "src/CMakeFiles/vmgrid_host.dir/host/schedulers.cpp.o.d"
  "/root/repo/src/host/trace_playback.cpp" "src/CMakeFiles/vmgrid_host.dir/host/trace_playback.cpp.o" "gcc" "src/CMakeFiles/vmgrid_host.dir/host/trace_playback.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vmgrid_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vmgrid_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vmgrid_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
