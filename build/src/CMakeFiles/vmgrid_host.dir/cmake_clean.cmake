file(REMOVE_RECURSE
  "CMakeFiles/vmgrid_host.dir/host/cpu_engine.cpp.o"
  "CMakeFiles/vmgrid_host.dir/host/cpu_engine.cpp.o.d"
  "CMakeFiles/vmgrid_host.dir/host/load_trace.cpp.o"
  "CMakeFiles/vmgrid_host.dir/host/load_trace.cpp.o.d"
  "CMakeFiles/vmgrid_host.dir/host/physical_host.cpp.o"
  "CMakeFiles/vmgrid_host.dir/host/physical_host.cpp.o.d"
  "CMakeFiles/vmgrid_host.dir/host/schedulers.cpp.o"
  "CMakeFiles/vmgrid_host.dir/host/schedulers.cpp.o.d"
  "CMakeFiles/vmgrid_host.dir/host/trace_playback.cpp.o"
  "CMakeFiles/vmgrid_host.dir/host/trace_playback.cpp.o.d"
  "libvmgrid_host.a"
  "libvmgrid_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmgrid_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
