# Empty dependencies file for vmgrid_sim.
# This may be replaced when dependencies are built.
