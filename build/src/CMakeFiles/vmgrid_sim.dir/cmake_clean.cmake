file(REMOVE_RECURSE
  "CMakeFiles/vmgrid_sim.dir/sim/event_queue.cpp.o"
  "CMakeFiles/vmgrid_sim.dir/sim/event_queue.cpp.o.d"
  "CMakeFiles/vmgrid_sim.dir/sim/logger.cpp.o"
  "CMakeFiles/vmgrid_sim.dir/sim/logger.cpp.o.d"
  "CMakeFiles/vmgrid_sim.dir/sim/random.cpp.o"
  "CMakeFiles/vmgrid_sim.dir/sim/random.cpp.o.d"
  "CMakeFiles/vmgrid_sim.dir/sim/simulation.cpp.o"
  "CMakeFiles/vmgrid_sim.dir/sim/simulation.cpp.o.d"
  "CMakeFiles/vmgrid_sim.dir/sim/stats.cpp.o"
  "CMakeFiles/vmgrid_sim.dir/sim/stats.cpp.o.d"
  "CMakeFiles/vmgrid_sim.dir/sim/time.cpp.o"
  "CMakeFiles/vmgrid_sim.dir/sim/time.cpp.o.d"
  "libvmgrid_sim.a"
  "libvmgrid_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmgrid_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
