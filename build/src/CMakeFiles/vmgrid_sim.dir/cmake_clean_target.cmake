file(REMOVE_RECURSE
  "libvmgrid_sim.a"
)
