file(REMOVE_RECURSE
  "CMakeFiles/vmgrid_vfs.dir/vfs/block_cache.cpp.o"
  "CMakeFiles/vmgrid_vfs.dir/vfs/block_cache.cpp.o.d"
  "CMakeFiles/vmgrid_vfs.dir/vfs/grid_vfs.cpp.o"
  "CMakeFiles/vmgrid_vfs.dir/vfs/grid_vfs.cpp.o.d"
  "CMakeFiles/vmgrid_vfs.dir/vfs/vfs_proxy.cpp.o"
  "CMakeFiles/vmgrid_vfs.dir/vfs/vfs_proxy.cpp.o.d"
  "libvmgrid_vfs.a"
  "libvmgrid_vfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmgrid_vfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
