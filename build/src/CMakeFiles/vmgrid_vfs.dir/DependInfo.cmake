
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vfs/block_cache.cpp" "src/CMakeFiles/vmgrid_vfs.dir/vfs/block_cache.cpp.o" "gcc" "src/CMakeFiles/vmgrid_vfs.dir/vfs/block_cache.cpp.o.d"
  "/root/repo/src/vfs/grid_vfs.cpp" "src/CMakeFiles/vmgrid_vfs.dir/vfs/grid_vfs.cpp.o" "gcc" "src/CMakeFiles/vmgrid_vfs.dir/vfs/grid_vfs.cpp.o.d"
  "/root/repo/src/vfs/vfs_proxy.cpp" "src/CMakeFiles/vmgrid_vfs.dir/vfs/vfs_proxy.cpp.o" "gcc" "src/CMakeFiles/vmgrid_vfs.dir/vfs/vfs_proxy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vmgrid_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vmgrid_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vmgrid_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
