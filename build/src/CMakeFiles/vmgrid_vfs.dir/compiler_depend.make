# Empty compiler generated dependencies file for vmgrid_vfs.
# This may be replaced when dependencies are built.
