file(REMOVE_RECURSE
  "libvmgrid_vfs.a"
)
