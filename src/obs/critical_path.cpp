#include "obs/critical_path.hpp"

#include <algorithm>
#include <cstdio>
#include <unordered_map>

namespace vmgrid::obs {

namespace {

struct Walker {
  const std::vector<TraceRecord>& records;
  std::unordered_map<SpanId, std::vector<const TraceRecord*>> children;
  std::vector<PathSegment> out;

  [[nodiscard]] static PathSegment self_segment(const TraceRecord& rec,
                                               sim::TimePoint b, sim::TimePoint e) {
    return PathSegment{rec.id, rec.name, rec.category, rec.track, b, e};
  }

  // Gating child under `rec` for the backward walk standing at `cur`: the
  // closed, non-instant child whose end is latest but not after `cur`.
  // Lexicographic (end, begin, id) tie-break keeps extraction deterministic.
  [[nodiscard]] const TraceRecord* gating_child(const TraceRecord& rec,
                                               sim::TimePoint cur) const {
    auto it = children.find(rec.id);
    if (it == children.end()) return nullptr;
    const TraceRecord* best = nullptr;
    for (const TraceRecord* c : it->second) {
      if (c->open || c->instant) continue;
      if (c->end > cur || c->end <= rec.begin) continue;
      if (best == nullptr || c->end > best->end ||
          (c->end == best->end &&
           (c->begin > best->begin ||
            (c->begin == best->begin && c->id > best->id)))) {
        best = c;
      }
    }
    return best;
  }

  void walk(const TraceRecord& rec, sim::TimePoint window_end) {
    sim::TimePoint cur = window_end;
    while (cur > rec.begin) {
      const TraceRecord* child = gating_child(rec, cur);
      if (child == nullptr) break;
      if (child->end < cur) out.push_back(self_segment(rec, child->end, cur));
      walk(*child, child->end);
      cur = std::max(rec.begin, child->begin);
    }
    if (cur > rec.begin) out.push_back(self_segment(rec, rec.begin, cur));
  }
};

}  // namespace

std::vector<PathSegment> extract_critical_path(const TraceCollector& trace,
                                               SpanId root) {
  const auto& records = trace.records();
  if (root == kInvalidSpan || root > records.size()) return {};
  const TraceRecord& rec = records[root - 1];
  if (rec.open || rec.instant || rec.end <= rec.begin) return {};

  Walker w{records, {}, {}};
  for (const auto& r : records) {
    if (r.parent != kInvalidSpan) w.children[r.parent].push_back(&r);
  }
  w.walk(rec, rec.end);
  std::sort(w.out.begin(), w.out.end(),
            [](const PathSegment& a, const PathSegment& b) {
              if (a.begin != b.begin) return a.begin < b.begin;
              return a.span < b.span;
            });
  return std::move(w.out);
}

std::vector<PathSegment> coalesce_path(std::vector<PathSegment> path) {
  std::vector<PathSegment> out;
  for (auto& seg : path) {
    if (!out.empty() && out.back().span == seg.span && out.back().end == seg.begin) {
      out.back().end = seg.end;
    } else {
      out.push_back(std::move(seg));
    }
  }
  return out;
}

std::string format_critical_path(const std::vector<PathSegment>& path) {
  std::string out;
  char line[256];
  for (const auto& seg : path) {
    std::snprintf(line, sizeof line, "  %8.3fs  %8.3fs  %8.3fs  %s/%s @ %s\n",
                  seg.begin.since_epoch().to_seconds(),
                  seg.end.since_epoch().to_seconds(), seg.seconds(),
                  seg.category.c_str(), seg.name.c_str(), seg.track.c_str());
    out += line;
  }
  return out;
}

}  // namespace vmgrid::obs
