#pragma once

#include <cstdint>

namespace vmgrid::obs {

using SpanId = std::uint64_t;
inline constexpr SpanId kInvalidSpan = 0;

/// Causal identity carried across asynchronous boundaries: which trace an
/// operation belongs to and which span caused it. Created at job/session
/// entry points (GRAM submit, session instantiate, VFS read, failover),
/// stamped onto every RpcRequest, and captured into transfer/callback
/// state wherever the ambient scope cannot survive a schedule_after.
///
/// Header is intentionally tiny (cstdint only) so wire-level structs like
/// net::RpcRequest can embed a context without dragging in the collector.
struct TraceContext {
  /// Deterministic trace id: derived from the sim seed and a per-collector
  /// sequence (never wall clock), so serial and VMGRID_JOBS=N runs export
  /// byte-identical traces. 0 = no trace (collector disabled or no scope).
  std::uint64_t trace_id{0};
  /// The span that caused whatever carries this context.
  SpanId span_id{kInvalidSpan};

  [[nodiscard]] bool valid() const {
    return trace_id != 0 && span_id != kInvalidSpan;
  }
};

}  // namespace vmgrid::obs
