#include "obs/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>

#include "obs/json.hpp"

namespace vmgrid::obs {

MetricsRegistry::MetricsRegistry() : epoch_{next_epoch()} {}

std::uint64_t MetricsRegistry::next_epoch() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

namespace {

Labels sorted(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

void append_labels_json(std::string& out, const Labels& labels) {
  out += "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += json::quote(k);
    out += ":";
    out += json::quote(v);
  }
  out += "}";
}

std::string labels_csv(const Labels& labels) {
  std::string out;
  for (const auto& [k, v] : labels) {
    if (!out.empty()) out += ';';
    out += k;
    out += '=';
    out += v;
  }
  return out;
}

// Sink instance for registrations rejected by the cardinality guard; its
// own creation bypasses the guard so overflow accounting always lands.
const Labels& overflow_labels() {
  static const Labels kOverflow{{"overflow", "true"}};
  return kOverflow;
}

}  // namespace

std::string MetricsRegistry::key(std::string_view name, const Labels& labels) {
  std::string k{name};
  if (labels.empty()) return k;
  k += '{';
  const Labels s = sorted(labels);
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (i > 0) k += ',';
    k += s[i].first;
    k += '=';
    k += s[i].second;
  }
  k += '}';
  return k;
}

bool MetricsRegistry::admit_labels(std::string_view name, const Labels& /*labels*/) {
  auto it = label_set_counts_.find(name);
  const std::size_t count = it == label_set_counts_.end() ? 0 : it->second;
  if (count >= max_label_sets_) {
    counter("obs.labels_dropped").inc();
    return false;
  }
  if (it == label_set_counts_.end()) {
    label_set_counts_.emplace(std::string{name}, 1);
  } else {
    ++it->second;
  }
  return true;
}

void MetricsRegistry::note_merged_labels(std::string_view name, const Labels& labels) {
  if (labels.empty() || labels == overflow_labels()) return;
  auto it = label_set_counts_.find(name);
  if (it == label_set_counts_.end()) {
    label_set_counts_.emplace(std::string{name}, 1);
  } else {
    ++it->second;
  }
}

Counter& MetricsRegistry::counter(std::string_view name, const Labels& labels) {
  auto k = key(name, labels);
  auto it = counters_.find(k);
  if (it == counters_.end()) {
    if (!labels.empty() && !admit_labels(name, labels)) {
      auto ok = key(name, overflow_labels());
      auto oit = counters_.find(ok);
      if (oit == counters_.end()) {
        oit = counters_
                  .emplace(std::move(ok), Instrument<Counter>{std::string{name},
                                                              overflow_labels(),
                                                              {}})
                  .first;
      }
      return oit->second.metric;
    }
    it = counters_
             .emplace(std::move(k),
                      Instrument<Counter>{std::string{name}, sorted(labels), {}})
             .first;
  }
  return it->second.metric;
}

Gauge& MetricsRegistry::gauge(std::string_view name, const Labels& labels) {
  auto k = key(name, labels);
  auto it = gauges_.find(k);
  if (it == gauges_.end()) {
    if (!labels.empty() && !admit_labels(name, labels)) {
      auto ok = key(name, overflow_labels());
      auto oit = gauges_.find(ok);
      if (oit == gauges_.end()) {
        oit = gauges_
                  .emplace(std::move(ok), Instrument<Gauge>{std::string{name},
                                                            overflow_labels(),
                                                            {}})
                  .first;
      }
      return oit->second.metric;
    }
    it = gauges_
             .emplace(std::move(k),
                      Instrument<Gauge>{std::string{name}, sorted(labels), {}})
             .first;
  }
  return it->second.metric;
}

HistogramMetric& MetricsRegistry::histogram(std::string_view name, HistogramOptions opts,
                                            const Labels& labels) {
  auto k = key(name, labels);
  auto it = histograms_.find(k);
  if (it == histograms_.end()) {
    if (!labels.empty() && !admit_labels(name, labels)) {
      auto ok = key(name, overflow_labels());
      auto oit = histograms_.find(ok);
      if (oit == histograms_.end()) {
        oit = histograms_
                  .emplace(std::move(ok),
                           Instrument<HistogramMetric>{std::string{name},
                                                       overflow_labels(),
                                                       HistogramMetric{opts}})
                  .first;
      }
      return oit->second.metric;
    }
    it = histograms_
             .emplace(std::move(k), Instrument<HistogramMetric>{
                                        std::string{name}, sorted(labels),
                                        HistogramMetric{opts}})
             .first;
  }
  return it->second.metric;
}

const Counter* MetricsRegistry::find_counter(std::string_view name,
                                             const Labels& labels) const {
  auto it = counters_.find(key(name, labels));
  return it == counters_.end() ? nullptr : &it->second.metric;
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name,
                                         const Labels& labels) const {
  auto it = gauges_.find(key(name, labels));
  return it == gauges_.end() ? nullptr : &it->second.metric;
}

const HistogramMetric* MetricsRegistry::find_histogram(std::string_view name,
                                                       const Labels& labels) const {
  auto it = histograms_.find(key(name, labels));
  return it == histograms_.end() ? nullptr : &it->second.metric;
}

double MetricsRegistry::counter_value(std::string_view name, const Labels& labels) const {
  const Counter* c = find_counter(name, labels);
  return c ? c->value() : 0.0;
}

double MetricsRegistry::gauge_value(std::string_view name, const Labels& labels) const {
  const Gauge* g = find_gauge(name, labels);
  return g ? g->value() : 0.0;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [k, inst] : other.counters_) {
    auto it = counters_.find(k);
    if (it == counters_.end()) {
      counters_.emplace(k, inst);
      note_merged_labels(inst.name, inst.labels);
    } else {
      it->second.metric.inc(inst.metric.value());
    }
  }
  for (const auto& [k, inst] : other.gauges_) {
    auto it = gauges_.find(k);
    if (it == gauges_.end()) {
      gauges_.emplace(k, inst);
      note_merged_labels(inst.name, inst.labels);
    } else {
      it->second.metric.set(inst.metric.value());
    }
  }
  for (const auto& [k, inst] : other.histograms_) {
    auto it = histograms_.find(k);
    if (it == histograms_.end()) {
      histograms_.emplace(k, inst);
      note_merged_labels(inst.name, inst.labels);
    } else {
      it->second.metric.merge(inst.metric);
    }
  }
}

std::string MetricsRegistry::to_json() const {
  std::string out = "{\"counters\":[";
  bool first = true;
  for (const auto& [k, inst] : counters_) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":" + json::quote(inst.name) + ",\"labels\":";
    append_labels_json(out, inst.labels);
    out += ",\"value\":" + json::number(inst.metric.value()) + "}";
  }
  out += "],\"gauges\":[";
  first = true;
  for (const auto& [k, inst] : gauges_) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":" + json::quote(inst.name) + ",\"labels\":";
    append_labels_json(out, inst.labels);
    out += ",\"value\":" + json::number(inst.metric.value()) + "}";
  }
  out += "],\"histograms\":[";
  first = true;
  for (const auto& [k, inst] : histograms_) {
    if (!first) out += ",";
    first = false;
    const auto& acc = inst.metric.summary();
    const auto& h = inst.metric.histogram();
    out += "{\"name\":" + json::quote(inst.name) + ",\"labels\":";
    append_labels_json(out, inst.labels);
    out += ",\"count\":" + json::number(static_cast<double>(acc.count()));
    out += ",\"mean\":" + json::number(acc.mean());
    out += ",\"std\":" + json::number(acc.stddev());
    out += ",\"min\":" + json::number(acc.min());
    out += ",\"max\":" + json::number(acc.max());
    out += ",\"p50\":" + json::number(h.percentile(50.0));
    out += ",\"p90\":" + json::number(h.percentile(90.0));
    out += ",\"p99\":" + json::number(h.percentile(99.0));
    out += "}";
  }
  out += "]}";
  return out;
}

std::string MetricsRegistry::to_csv() const {
  std::string out = "type,name,labels,value,count,mean,std,min,max,p50,p99\n";
  for (const auto& [k, inst] : counters_) {
    out += "counter," + inst.name + "," + labels_csv(inst.labels) + "," +
           json::number(inst.metric.value()) + ",,,,,,,\n";
  }
  for (const auto& [k, inst] : gauges_) {
    out += "gauge," + inst.name + "," + labels_csv(inst.labels) + "," +
           json::number(inst.metric.value()) + ",,,,,,,\n";
  }
  for (const auto& [k, inst] : histograms_) {
    const auto& acc = inst.metric.summary();
    const auto& h = inst.metric.histogram();
    out += "histogram," + inst.name + "," + labels_csv(inst.labels) + ",," +
           json::number(static_cast<double>(acc.count())) + "," +
           json::number(acc.mean()) + "," + json::number(acc.stddev()) + "," +
           json::number(acc.min()) + "," + json::number(acc.max()) + "," +
           json::number(h.percentile(50.0)) + "," + json::number(h.percentile(99.0)) +
           "\n";
  }
  return out;
}

bool MetricsRegistry::write_json(const std::string& path) const {
  std::ofstream f{path};
  if (!f) return false;
  f << to_json() << '\n';
  return static_cast<bool>(f);
}

}  // namespace vmgrid::obs
