#include "obs/slo.hpp"

#include "obs/metrics.hpp"

namespace vmgrid::obs {

void SloMonitor::add_latency_objective(std::string_view name, double threshold_s,
                                       double target) {
  objectives_.push_back(Objective{std::string{name}, true, threshold_s, target, 0, 0});
}

void SloMonitor::add_availability_objective(std::string_view name, double target) {
  objectives_.push_back(Objective{std::string{name}, false, 0.0, target, 0, 0});
}

SloMonitor::Objective* SloMonitor::find(std::string_view name, bool latency) {
  for (auto& o : objectives_) {
    if (o.latency == latency && o.name == name) return &o;
  }
  return nullptr;
}

void SloMonitor::observe_latency(std::string_view name, double seconds) {
  Objective* o = find(name, /*latency=*/true);
  if (o == nullptr) return;
  ++o->total;
  if (seconds <= o->threshold_s) ++o->good;
}

void SloMonitor::observe_event(std::string_view name, bool ok) {
  Objective* o = find(name, /*latency=*/false);
  if (o == nullptr) return;
  ++o->total;
  if (ok) ++o->good;
}

void SloMonitor::observe_counts(std::string_view name, std::uint64_t total,
                                std::uint64_t good) {
  for (auto& o : objectives_) {
    if (o.name == name) {
      o.total += total;
      o.good += good;
      return;
    }
  }
}

std::vector<SloMonitor::Result> SloMonitor::evaluate() const {
  std::vector<Result> out;
  out.reserve(objectives_.size());
  for (const auto& o : objectives_) {
    Result r;
    r.name = o.name;
    r.kind = o.latency ? "latency" : "availability";
    r.threshold_s = o.threshold_s;
    r.target = o.target;
    r.total = o.total;
    r.good = o.good;
    r.compliance =
        o.total == 0 ? 1.0
                     : static_cast<double>(o.good) / static_cast<double>(o.total);
    const double bad_fraction = 1.0 - r.compliance;
    const double budget = 1.0 - o.target;
    // A zero error budget (target == 1.0) burns infinitely on any bad
    // event; cap at a large sentinel to keep JSON finite.
    r.burn_rate = budget > 0.0 ? bad_fraction / budget
                               : (bad_fraction > 0.0 ? 1e9 : 0.0);
    r.met = r.compliance >= o.target;
    out.push_back(std::move(r));
  }
  return out;
}

void SloMonitor::export_metrics(MetricsRegistry& metrics) const {
  for (const Result& r : evaluate()) {
    const Labels labels{{"slo", r.name}};
    metrics.counter("slo.events_total", labels).inc(static_cast<double>(r.total));
    metrics.counter("slo.events_good", labels).inc(static_cast<double>(r.good));
    metrics.gauge("slo.burn_rate", labels).set(r.burn_rate);
    metrics.gauge("slo.met", labels).set(r.met ? 1.0 : 0.0);
  }
}

}  // namespace vmgrid::obs
