#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace vmgrid::obs {

class MetricsRegistry;

/// Declarative service-level-objective accounting over sim events.
///
/// Two objective kinds:
///  - latency: an event is "good" when its measured latency is within the
///    threshold; the objective is met when at least `target` fraction of
///    events are good (e.g. p99 session-start <= 2 s == threshold 2.0,
///    target 0.99);
///  - availability: events are good/bad outcomes directly (e.g. request
///    goodput under overload), met when good/total >= target.
///
/// Burn rate is reported as the fraction of the error budget consumed per
/// unit of budget available: bad_fraction / (1 - target). 1.0 means the
/// service is burning exactly its budget; above 1.0 the objective is being
/// violated. Everything is a pure function of observed sim events — no
/// wall clock — so replicated runs report identical SLO numbers.
class SloMonitor {
 public:
  struct Result {
    std::string name;
    std::string kind;        // "latency" | "availability"
    double threshold_s{0.0}; // latency objectives only
    double target{0.0};      // required good fraction
    std::uint64_t total{0};
    std::uint64_t good{0};
    double compliance{1.0};  // good/total (1.0 when no events)
    double burn_rate{0.0};   // bad_fraction / (1 - target)
    bool met{true};
  };

  /// Latency objective: `target` fraction of events must complete within
  /// `threshold_s` seconds.
  void add_latency_objective(std::string_view name, double threshold_s, double target);
  /// Availability objective: `target` fraction of events must succeed.
  void add_availability_objective(std::string_view name, double target);

  /// Feed one latency sample to a latency objective (unknown names ignored).
  void observe_latency(std::string_view name, double seconds);
  /// Feed one success/failure outcome to an availability objective.
  void observe_event(std::string_view name, bool ok);
  /// Bulk form for folding replicated runs: add pre-counted totals to the
  /// objective with this name (either kind; unknown names ignored).
  void observe_counts(std::string_view name, std::uint64_t total, std::uint64_t good);

  /// Evaluate all objectives in declaration order.
  [[nodiscard]] std::vector<Result> evaluate() const;

  /// Export per-objective counters/gauges:
  ///   slo.events_total{slo=NAME}, slo.events_good{slo=NAME},
  ///   slo.burn_rate{slo=NAME}, slo.met{slo=NAME} (1/0).
  void export_metrics(MetricsRegistry& metrics) const;

 private:
  struct Objective {
    std::string name;
    bool latency{false};
    double threshold_s{0.0};
    double target{0.0};
    std::uint64_t total{0};
    std::uint64_t good{0};
  };

  Objective* find(std::string_view name, bool latency);

  std::vector<Objective> objectives_;
};

}  // namespace vmgrid::obs
