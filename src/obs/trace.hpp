#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace vmgrid::sim {
class Simulation;
}  // namespace vmgrid::sim

namespace vmgrid::obs {

using SpanId = std::uint64_t;
inline constexpr SpanId kInvalidSpan = 0;

/// One recorded span (or instant) on the sim timeline. `track` maps to a
/// Chrome-trace thread lane (e.g. a host or VM name), `depth` is the
/// nesting level within that track when the span began.
struct TraceRecord {
  SpanId id{kInvalidSpan};
  SpanId parent{kInvalidSpan};
  std::string name;
  std::string category;
  std::string track;
  sim::TimePoint begin{};
  sim::TimePoint end{};
  bool open{true};
  bool instant{false};
  std::size_t depth{0};
  std::vector<std::pair<std::string, std::string>> args;
};

/// Records sim-time spans and serializes them in Chrome `trace_event`
/// JSON (load the file in chrome://tracing or https://ui.perfetto.dev).
/// Disabled by default so instrumented hot paths cost one branch when
/// nobody is looking. Parent/child nesting is tracked per `track` via a
/// stack of open spans: a span begun while another is open on the same
/// track becomes its child.
class TraceCollector {
 public:
  void enable(bool on = true) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Begin a span at `now`; returns kInvalidSpan when disabled.
  SpanId begin(sim::TimePoint now, std::string_view name, std::string_view track,
               std::string_view category = "sim");
  /// End a span; ignores kInvalidSpan and already-ended ids.
  void end(SpanId id, sim::TimePoint now);
  /// Attach a key/value argument (shown in the trace viewer detail pane).
  void arg(SpanId id, std::string_view key, std::string_view value);
  /// Zero-duration marker.
  void instant(sim::TimePoint now, std::string_view name, std::string_view track,
               std::string_view category = "sim");

  [[nodiscard]] const std::vector<TraceRecord>& records() const { return records_; }
  [[nodiscard]] std::size_t open_spans() const;
  /// First record with this name, nullptr when absent.
  [[nodiscard]] const TraceRecord* find(std::string_view name) const;
  [[nodiscard]] std::vector<const TraceRecord*> find_all(std::string_view name) const;

  /// Chrome trace_event JSON: metadata thread_name event per track (in
  /// first-use order), then "X" complete events ("B" for spans still
  /// open, "i" for instants). Timestamps are microseconds of sim time.
  [[nodiscard]] std::string to_chrome_json() const;
  bool write_chrome_json(const std::string& path) const;

  void clear();

 private:
  TraceRecord* record(SpanId id);

  bool enabled_{false};
  std::vector<TraceRecord> records_;  // id == index + 1
  std::vector<std::string> track_order_;
  std::map<std::string, std::vector<SpanId>, std::less<>> open_by_track_;
};

/// RAII sim-time span: begins at construction with `sim.now()`, ends at
/// destruction (or an explicit `end()`) with the then-current sim time.
/// Movable so spans can be stashed in callbacks that outlive the scope
/// that opened them. No-op when the collector is disabled.
class Span {
 public:
  Span() = default;
  Span(sim::Simulation& sim, std::string_view name, std::string_view track,
       std::string_view category = "sim");
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&& o) noexcept : sim_{o.sim_}, id_{o.id_} {
    o.sim_ = nullptr;
    o.id_ = kInvalidSpan;
  }
  Span& operator=(Span&& o) noexcept {
    if (this != &o) {
      end();
      sim_ = o.sim_;
      id_ = o.id_;
      o.sim_ = nullptr;
      o.id_ = kInvalidSpan;
    }
    return *this;
  }
  ~Span() { end(); }

  void end();
  void arg(std::string_view key, std::string_view value);
  [[nodiscard]] bool active() const { return sim_ != nullptr && id_ != kInvalidSpan; }
  [[nodiscard]] SpanId id() const { return id_; }

 private:
  sim::Simulation* sim_{nullptr};
  SpanId id_{kInvalidSpan};
};

}  // namespace vmgrid::obs
