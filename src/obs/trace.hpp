#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/trace_context.hpp"
#include "sim/time.hpp"

namespace vmgrid::sim {
class Simulation;
}  // namespace vmgrid::sim

namespace vmgrid {
class Status;
}  // namespace vmgrid

namespace vmgrid::obs {

/// One recorded span (or instant) on the sim timeline. `track` maps to a
/// Chrome-trace thread lane (e.g. a host or VM name), `depth` is the
/// nesting level within that track when the span began. `trace_id` ties
/// the span to the causal trace it belongs to: children inherit it from
/// their parent; roots are assigned a fresh deterministic id.
struct TraceRecord {
  SpanId id{kInvalidSpan};
  SpanId parent{kInvalidSpan};
  std::uint64_t trace_id{0};
  std::string name;
  std::string category;
  std::string track;
  sim::TimePoint begin{};
  sim::TimePoint end{};
  bool open{true};
  bool instant{false};
  std::size_t depth{0};
  std::vector<std::pair<std::string, std::string>> args;
};

/// Records sim-time spans and serializes them in Chrome `trace_event`
/// JSON (load the file in chrome://tracing or https://ui.perfetto.dev).
/// Disabled by default so instrumented hot paths cost one branch when
/// nobody is looking.
///
/// Parenting resolves in priority order:
///  1. an open span on the same `track` (the historical per-track stack:
///     a span begun while another is open on its track becomes its child);
///  2. the current ambient TraceContext (pushed by ScopedTraceContext
///     around synchronous downcalls), which links across tracks;
///  3. none — the span is a trace root and gets a fresh trace id.
/// begin_child() bypasses all inference with an explicit parent context;
/// layers whose spans overlap freely on a shared track (rpc, nfs, vfs)
/// use it so concurrent operations never nest spuriously.
class TraceCollector {
 public:
  void enable(bool on = true) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Root trace-id derivation seed; the Simulation passes its own seed so
  /// trace ids are a pure function of (seed, allocation order).
  void set_trace_seed(std::uint64_t seed) { trace_seed_ = seed; }

  /// Begin a span at `now`; returns kInvalidSpan when disabled.
  SpanId begin(sim::TimePoint now, std::string_view name, std::string_view track,
               std::string_view category = "sim");
  /// Begin a span with an explicit parent context (cross-track causality:
  /// retries under a call, server work under a client attempt). An invalid
  /// parent makes the span a root of a fresh trace. The span renders on
  /// `track` but never joins the track's open-span stack, so concurrent
  /// explicit-parent spans on one track cannot adopt each other.
  SpanId begin_child(sim::TimePoint now, const TraceContext& parent,
                     std::string_view name, std::string_view track,
                     std::string_view category = "sim");
  /// End a span; ignores kInvalidSpan and already-ended ids.
  void end(SpanId id, sim::TimePoint now);
  /// Attach a key/value argument (shown in the trace viewer detail pane).
  void arg(SpanId id, std::string_view key, std::string_view value);
  /// Join a span to the typed error model: stamps ok=true, or on failure
  /// ok=false plus the Status code and the cause-chain root, so every
  /// failed span carries machine-readable provenance.
  void set_status(SpanId id, const Status& status);
  /// Zero-duration marker.
  void instant(sim::TimePoint now, std::string_view name, std::string_view track,
               std::string_view category = "sim");

  /// The context naming a recorded span; invalid for kInvalidSpan.
  [[nodiscard]] TraceContext context_of(SpanId id) const;

  /// Ambient context stack (ScopedTraceContext is the RAII form).
  void push_context(TraceContext ctx) { context_stack_.push_back(ctx); }
  void pop_context() {
    if (!context_stack_.empty()) context_stack_.pop_back();
  }
  /// Innermost ambient context; invalid when none is in scope.
  [[nodiscard]] TraceContext current() const {
    return context_stack_.empty() ? TraceContext{} : context_stack_.back();
  }

  [[nodiscard]] const std::vector<TraceRecord>& records() const { return records_; }
  [[nodiscard]] std::size_t open_spans() const;
  /// Non-root spans whose parent id is absent from the record set. Always
  /// 0 by construction; exported traces are CI-gated on the same property.
  [[nodiscard]] std::size_t orphan_spans() const;
  /// First record with this name, nullptr when absent.
  [[nodiscard]] const TraceRecord* find(std::string_view name) const;
  [[nodiscard]] std::vector<const TraceRecord*> find_all(std::string_view name) const;

  /// Chrome trace_event JSON: metadata thread_name event per track (in
  /// first-use order), then "X" complete events ("B" for spans still
  /// open, "i" for instants). Timestamps are microseconds of sim time.
  /// Each event also carries top-level "id"/"parent"/"trace" keys (ignored
  /// by the viewers, consumed by the CI orphan/determinism gate).
  [[nodiscard]] std::string to_chrome_json() const;
  bool write_chrome_json(const std::string& path) const;

  void clear();

 private:
  TraceRecord* record(SpanId id);
  [[nodiscard]] std::uint64_t fresh_trace_id();

  bool enabled_{false};
  std::uint64_t trace_seed_{1};
  std::uint64_t trace_counter_{0};
  std::vector<TraceRecord> records_;  // id == index + 1
  std::vector<std::string> track_order_;
  std::map<std::string, std::vector<SpanId>, std::less<>> open_by_track_;
  std::vector<TraceContext> context_stack_;
};

/// RAII ambient-context scope: everything begun synchronously inside the
/// scope (including down the call stack: vfs -> nfs -> rpc) parents under
/// `ctx` unless a same-track open span claims it first. No-op when the
/// collector is disabled or the context is invalid.
class ScopedTraceContext {
 public:
  ScopedTraceContext(TraceCollector& collector, TraceContext ctx)
      : collector_{&collector}, pushed_{collector.enabled() && ctx.valid()} {
    if (pushed_) collector_->push_context(ctx);
  }
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;
  ~ScopedTraceContext() {
    if (pushed_) collector_->pop_context();
  }

 private:
  TraceCollector* collector_;
  bool pushed_;
};

/// RAII sim-time span: begins at construction with `sim.now()`, ends at
/// destruction (or an explicit `end()`) with the then-current sim time.
/// Movable so spans can be stashed in callbacks that outlive the scope
/// that opened them. No-op when the collector is disabled.
class Span {
 public:
  Span() = default;
  Span(sim::Simulation& sim, std::string_view name, std::string_view track,
       std::string_view category = "sim");
  /// Explicit-parent form (collector begin_child semantics).
  Span(sim::Simulation& sim, std::string_view name, std::string_view track,
       const TraceContext& parent, std::string_view category = "sim");
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&& o) noexcept : sim_{o.sim_}, id_{o.id_} {
    o.sim_ = nullptr;
    o.id_ = kInvalidSpan;
  }
  Span& operator=(Span&& o) noexcept {
    if (this != &o) {
      end();
      sim_ = o.sim_;
      id_ = o.id_;
      o.sim_ = nullptr;
      o.id_ = kInvalidSpan;
    }
    return *this;
  }
  ~Span() { end(); }

  void end();
  void arg(std::string_view key, std::string_view value);
  /// Stamp the span's outcome (ok / status.code / status.root args).
  void set_status(const Status& status);
  [[nodiscard]] bool active() const { return sim_ != nullptr && id_ != kInvalidSpan; }
  [[nodiscard]] SpanId id() const { return id_; }
  /// This span's identity as a propagatable context; invalid when inert.
  [[nodiscard]] TraceContext context() const;

 private:
  sim::Simulation* sim_{nullptr};
  SpanId id_{kInvalidSpan};
};

}  // namespace vmgrid::obs
