#include "obs/trace.hpp"

#include <algorithm>
#include <unordered_set>

#include "core/status.hpp"
#include "obs/json.hpp"
#include "sim/simulation.hpp"

namespace vmgrid::obs {

namespace {

double to_micros(sim::TimePoint t) { return t.since_epoch().to_seconds() * 1e6; }

// splitmix64 finalizer: cheap, well-mixed, and a pure function of its
// input — trace ids depend only on (seed, allocation sequence), never
// wall clock, so replicated runs export byte-identical traces.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

TraceRecord* TraceCollector::record(SpanId id) {
  if (id == kInvalidSpan || id > records_.size()) return nullptr;
  return &records_[id - 1];
}

std::uint64_t TraceCollector::fresh_trace_id() {
  ++trace_counter_;
  std::uint64_t id = mix64(trace_seed_ ^ (trace_counter_ * 0x2545f4914f6cdd1dULL));
  if (id == 0) id = 1;  // 0 is the "no trace" sentinel
  return id;
}

SpanId TraceCollector::begin(sim::TimePoint now, std::string_view name,
                             std::string_view track, std::string_view category) {
  if (!enabled_) return kInvalidSpan;
  TraceRecord rec;
  rec.id = records_.size() + 1;
  rec.name = std::string{name};
  rec.category = std::string{category};
  rec.track = std::string{track};
  rec.begin = now;
  rec.end = now;

  auto it = open_by_track_.find(rec.track);
  if (it == open_by_track_.end()) {
    if (std::find(track_order_.begin(), track_order_.end(), rec.track) ==
        track_order_.end()) {
      track_order_.push_back(rec.track);
    }
    it = open_by_track_.emplace(rec.track, std::vector<SpanId>{}).first;
  } else if (std::find(track_order_.begin(), track_order_.end(), rec.track) ==
             track_order_.end()) {
    track_order_.push_back(rec.track);
  }
  if (!it->second.empty()) {
    // Same-track nesting wins: inherit the enclosing span's trace.
    rec.parent = it->second.back();
    rec.depth = it->second.size();
    rec.trace_id = records_[rec.parent - 1].trace_id;
  } else if (TraceContext ambient = current(); ambient.valid()) {
    // Cross-track causal link from the ambient scope.
    rec.parent = ambient.span_id;
    rec.trace_id = ambient.trace_id;
  } else {
    rec.trace_id = fresh_trace_id();
  }
  it->second.push_back(rec.id);
  records_.push_back(std::move(rec));
  return records_.back().id;
}

SpanId TraceCollector::begin_child(sim::TimePoint now, const TraceContext& parent,
                                   std::string_view name, std::string_view track,
                                   std::string_view category) {
  if (!enabled_) return kInvalidSpan;
  TraceRecord rec;
  rec.id = records_.size() + 1;
  rec.name = std::string{name};
  rec.category = std::string{category};
  rec.track = std::string{track};
  rec.begin = now;
  rec.end = now;
  if (parent.valid()) {
    rec.parent = parent.span_id;
    rec.trace_id = parent.trace_id;
  } else {
    rec.trace_id = fresh_trace_id();
  }
  if (std::find(track_order_.begin(), track_order_.end(), rec.track) ==
      track_order_.end()) {
    track_order_.push_back(rec.track);
  }
  // Deliberately NOT pushed onto the track's open-span stack: concurrent
  // explicit-parent spans on one track (e.g. an 8-wide NFS block window
  // issued from one client node) must not adopt each other.
  records_.push_back(std::move(rec));
  return records_.back().id;
}

void TraceCollector::end(SpanId id, sim::TimePoint now) {
  TraceRecord* rec = record(id);
  if (rec == nullptr || !rec->open) return;
  rec->open = false;
  rec->end = now;
  auto it = open_by_track_.find(rec->track);
  if (it != open_by_track_.end()) {
    auto& stack = it->second;
    auto pos = std::find(stack.begin(), stack.end(), id);
    if (pos != stack.end()) stack.erase(pos);
  }
}

void TraceCollector::arg(SpanId id, std::string_view key, std::string_view value) {
  TraceRecord* rec = record(id);
  if (rec == nullptr) return;
  rec->args.emplace_back(std::string{key}, std::string{value});
}

void TraceCollector::set_status(SpanId id, const Status& status) {
  TraceRecord* rec = record(id);
  if (rec == nullptr) return;
  if (status.ok()) {
    rec->args.emplace_back("ok", "true");
    return;
  }
  rec->args.emplace_back("ok", "false");
  rec->args.emplace_back("status.code", std::string{to_string(status.code())});
  const Status& root = status.root_cause();
  rec->args.emplace_back("status.root",
                         std::string{root.subsystem()} + "/" + std::string{root.op()} +
                             ": " + std::string{to_string(root.code())});
}

void TraceCollector::instant(sim::TimePoint now, std::string_view name,
                             std::string_view track, std::string_view category) {
  SpanId id = begin(now, name, track, category);
  if (id == kInvalidSpan) return;
  TraceRecord* rec = record(id);
  rec->instant = true;
  end(id, now);
}

TraceContext TraceCollector::context_of(SpanId id) const {
  if (id == kInvalidSpan || id > records_.size()) return {};
  return TraceContext{records_[id - 1].trace_id, id};
}

std::size_t TraceCollector::open_spans() const {
  std::size_t n = 0;
  for (const auto& [track, stack] : open_by_track_) n += stack.size();
  return n;
}

std::size_t TraceCollector::orphan_spans() const {
  std::unordered_set<SpanId> ids;
  ids.reserve(records_.size());
  for (const auto& rec : records_) ids.insert(rec.id);
  std::size_t n = 0;
  for (const auto& rec : records_) {
    if (rec.parent != kInvalidSpan && ids.count(rec.parent) == 0) ++n;
  }
  return n;
}

const TraceRecord* TraceCollector::find(std::string_view name) const {
  for (const auto& rec : records_) {
    if (rec.name == name) return &rec;
  }
  return nullptr;
}

std::vector<const TraceRecord*> TraceCollector::find_all(std::string_view name) const {
  std::vector<const TraceRecord*> out;
  for (const auto& rec : records_) {
    if (rec.name == name) out.push_back(&rec);
  }
  return out;
}

std::string TraceCollector::to_chrome_json() const {
  // Track lanes map to (pid=1, tid=index-in-first-use-order).
  std::map<std::string, std::size_t, std::less<>> tid;
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (std::size_t i = 0; i < track_order_.size(); ++i) {
    tid.emplace(track_order_[i], i + 1);
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
           json::number(static_cast<double>(i + 1)) +
           ",\"args\":{\"name\":" + json::quote(track_order_[i]) + "}}";
  }
  for (const auto& rec : records_) {
    if (!first) out += ",";
    first = false;
    const std::size_t t = tid.count(rec.track) ? tid.find(rec.track)->second : 0;
    out += "{\"name\":" + json::quote(rec.name);
    out += ",\"cat\":" + json::quote(rec.category);
    if (rec.instant) {
      out += ",\"ph\":\"i\",\"s\":\"t\"";
    } else if (rec.open) {
      out += ",\"ph\":\"B\"";
    } else {
      out += ",\"ph\":\"X\",\"dur\":" + json::number(to_micros(rec.end) - to_micros(rec.begin));
    }
    out += ",\"ts\":" + json::number(to_micros(rec.begin));
    out += ",\"pid\":1,\"tid\":" + json::number(static_cast<double>(t));
    // Causal identity for tooling (viewers ignore unknown keys): the CI
    // orphan gate and the critical-path extractor read these back.
    out += ",\"id\":" + json::number(static_cast<double>(rec.id));
    if (rec.parent != kInvalidSpan) {
      out += ",\"parent\":" + json::number(static_cast<double>(rec.parent));
    }
    out += ",\"trace\":" + json::quote(std::to_string(rec.trace_id));
    out += ",\"args\":{";
    bool firstArg = true;
    for (const auto& [k, v] : rec.args) {
      if (!firstArg) out += ",";
      firstArg = false;
      out += json::quote(k) + ":" + json::quote(v);
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

bool TraceCollector::write_chrome_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string doc = to_chrome_json();
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size() &&
                  std::fputc('\n', f) != EOF;
  std::fclose(f);
  return ok;
}

void TraceCollector::clear() {
  records_.clear();
  track_order_.clear();
  open_by_track_.clear();
  context_stack_.clear();
  trace_counter_ = 0;
}

Span::Span(sim::Simulation& sim, std::string_view name, std::string_view track,
           std::string_view category)
    : sim_{&sim}, id_{sim.trace().begin(sim.now(), name, track, category)} {}

Span::Span(sim::Simulation& sim, std::string_view name, std::string_view track,
           const TraceContext& parent, std::string_view category)
    : sim_{&sim},
      id_{sim.trace().begin_child(sim.now(), parent, name, track, category)} {}

void Span::end() {
  if (sim_ != nullptr && id_ != kInvalidSpan) {
    sim_->trace().end(id_, sim_->now());
  }
  sim_ = nullptr;
  id_ = kInvalidSpan;
}

void Span::arg(std::string_view key, std::string_view value) {
  if (sim_ != nullptr && id_ != kInvalidSpan) {
    sim_->trace().arg(id_, key, value);
  }
}

void Span::set_status(const Status& status) {
  if (sim_ != nullptr && id_ != kInvalidSpan) {
    sim_->trace().set_status(id_, status);
  }
}

TraceContext Span::context() const {
  if (sim_ == nullptr || id_ == kInvalidSpan) return {};
  return sim_->trace().context_of(id_);
}

}  // namespace vmgrid::obs
