#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/stats.hpp"

namespace vmgrid::obs {

/// Label set attached to a metric instance. Call-site order does not
/// matter: labels are canonicalized (sorted by key) before lookup, so
/// {{"op","read"},{"node","a"}} and {{"node","a"},{"op","read"}} name
/// the same instance.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing count (events, bytes, cache hits...).
/// Negative increments are dropped so the monotonicity contract holds.
class Counter {
 public:
  void inc(double d = 1.0) {
    if (d > 0.0) v_ += d;
  }
  [[nodiscard]] double value() const { return v_; }

 private:
  double v_{0.0};
};

/// Instantaneous level (queue depth, active VMs, dirty blocks...).
class Gauge {
 public:
  void set(double v) { v_ = v; }
  void add(double d) { v_ += d; }
  [[nodiscard]] double value() const { return v_; }

 private:
  double v_{0.0};
};

struct HistogramOptions {
  double lo{0.0};
  double hi{1.0};
  std::size_t bins{64};
};

/// Sample distribution: a fixed-bin sim::Histogram for percentiles plus
/// a streaming sim::Accumulator for exact moments.
class HistogramMetric {
 public:
  explicit HistogramMetric(HistogramOptions opts)
      : hist_{opts.lo, opts.hi, opts.bins} {}

  void observe(double x) {
    acc_.add(x);
    hist_.add(x);
  }

  [[nodiscard]] const sim::Accumulator& summary() const { return acc_; }
  [[nodiscard]] const sim::Histogram& histogram() const { return hist_; }

  /// Cross-run aggregation (bench reporter): both sides must share the
  /// same bin layout.
  void merge(const HistogramMetric& o) {
    acc_.merge(o.acc_);
    hist_.merge(o.hist_);
  }

 private:
  sim::Accumulator acc_;
  sim::Histogram hist_;
};

/// Named+labeled metric store owned by the Simulation. Registration is
/// idempotent: the same (name, labels) always returns the same object,
/// so instrumented components can cache references across calls.
/// Iteration order is the canonical key order, which makes the JSON/CSV
/// snapshots deterministic across identical runs.
///
/// Cardinality guard: each metric name admits at most max_label_sets()
/// distinct labeled instances (unlabeled instances are always admitted).
/// Past the cap, registration is redirected to a single per-name
/// `{overflow=true}` instance and `obs.labels_dropped` is incremented —
/// so an instrumented path that labels by trace id or VM name can never
/// blow up the registry, and the export stays bounded.
class MetricsRegistry {
 public:
  MetricsRegistry();

  Counter& counter(std::string_view name, const Labels& labels = {});
  Gauge& gauge(std::string_view name, const Labels& labels = {});
  HistogramMetric& histogram(std::string_view name, HistogramOptions opts = {},
                             const Labels& labels = {});

  /// Cap on distinct label sets per metric name (default 256). Lowering
  /// the cap does not evict instances already admitted.
  void set_max_label_sets(std::size_t cap) { max_label_sets_ = cap; }
  [[nodiscard]] std::size_t max_label_sets() const { return max_label_sets_; }

  /// Lookup without creating; nullptr when the instance does not exist.
  [[nodiscard]] const Counter* find_counter(std::string_view name,
                                            const Labels& labels = {}) const;
  [[nodiscard]] const Gauge* find_gauge(std::string_view name,
                                        const Labels& labels = {}) const;
  [[nodiscard]] const HistogramMetric* find_histogram(std::string_view name,
                                                      const Labels& labels = {}) const;

  /// Convenience for tests/benches: value or 0.0 when absent.
  [[nodiscard]] double counter_value(std::string_view name,
                                     const Labels& labels = {}) const;
  [[nodiscard]] double gauge_value(std::string_view name,
                                   const Labels& labels = {}) const;

  [[nodiscard]] std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// Fold another registry into this one, instance by instance (matched on
  /// canonical key): counters sum, gauges take the incoming value (so a
  /// fold in seed order ends with the last replica's level, exactly as one
  /// serial run would), histograms merge bin-wise. Instances only present
  /// in `other` are copied in. The replication runner uses this to reduce
  /// per-replica registries into one export; merging in a fixed order
  /// keeps the result byte-identical across thread counts.
  void merge(const MetricsRegistry& other);

  /// Snapshot export. JSON: {"counters":[...],"gauges":[...],"histograms":[...]}.
  /// CSV: one row per instance with type,name,labels,value/stat columns.
  [[nodiscard]] std::string to_json() const;
  [[nodiscard]] std::string to_csv() const;
  bool write_json(const std::string& path) const;

  void reset() {
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
    label_set_counts_.clear();
    epoch_ = next_epoch();  // cached instrument references are now invalid
  }

  /// Process-unique generation stamp: fresh per registry instance and
  /// after every reset(). Callers that cache instrument references
  /// (record_error's handle pool) key them by epoch, so a cleared or
  /// reincarnated registry can never serve a stale reference.
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

  /// Canonical identity of one metric instance: name{k=v,...} with keys
  /// sorted; exposed for tests.
  [[nodiscard]] static std::string key(std::string_view name, const Labels& labels);

 private:
  template <typename T>
  struct Instrument {
    std::string name;
    Labels labels;  // sorted by key
    T metric;
  };

  /// True when a NEW labeled instance of `name` may be created; false
  /// means the caller must fall back to the overflow instance. Counts the
  /// admission and bumps obs.labels_dropped on rejection.
  bool admit_labels(std::string_view name, const Labels& labels);
  /// Count a labeled instance that arrived via merge() (never drops —
  /// folding replica registries must be lossless).
  void note_merged_labels(std::string_view name, const Labels& labels);

  // std::map keeps canonical order for export and guarantees reference
  // stability for cached Counter/Gauge/HistogramMetric pointers.
  std::map<std::string, Instrument<Counter>, std::less<>> counters_;
  std::map<std::string, Instrument<Gauge>, std::less<>> gauges_;
  std::map<std::string, Instrument<HistogramMetric>, std::less<>> histograms_;
  std::map<std::string, std::size_t, std::less<>> label_set_counts_;
  std::size_t max_label_sets_{256};
  static std::uint64_t next_epoch();
  std::uint64_t epoch_;
};

}  // namespace vmgrid::obs
