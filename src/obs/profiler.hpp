#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace vmgrid::obs {

/// Lightweight wall-clock attribution of simulator event handlers to
/// subsystems ("sim.loop", "rpc.server", "nfs.client", "vfs.read", ...).
///
/// This measures REAL time the host CPU spends inside instrumented scopes
/// — the sim-floor cost of running the simulation, not simulated time —
/// so it is inherently nondeterministic and must NEVER feed back into sim
/// behavior or the deterministic BENCH_*.json metric files. Benches export
/// it to a separate BENCH_<name>.profile.json, and only when profiling is
/// on (VMGRID_PROFILE=1 or enable()).
///
/// Disabled cost is one relaxed atomic load per scope. Scopes nest and
/// each records its inclusive time, so nested subsystem totals overlap by
/// design (rpc.server time includes the vfs/nfs work it dispatched).
/// A process-wide singleton (not per-Simulation) so replicated worker
/// threads fold into one profile; recording takes a mutex, which is fine
/// for a diagnostics-only path.
class SimProfiler {
 public:
  /// Process-wide instance; first call latches VMGRID_PROFILE.
  static SimProfiler& instance();

  void enable(bool on = true) { enabled_.store(on, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// RAII scope: attributes the enclosed wall time to `key`. `key` must be
  /// a string literal (stored as a pointer until recording).
  class Scope {
   public:
    explicit Scope(const char* key) {
      if (SimProfiler::instance().enabled()) {
        key_ = key;
        start_ = std::chrono::steady_clock::now();
      }
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope() {
      if (key_ != nullptr) {
        SimProfiler::instance().record(
            key_, std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                start_)
                      .count());
      }
    }

   private:
    const char* key_{nullptr};
    std::chrono::steady_clock::time_point start_{};
  };

  struct Entry {
    std::string key;
    std::uint64_t calls{0};
    double seconds{0.0};
  };

  /// Per-key totals in key order.
  [[nodiscard]] std::vector<Entry> snapshot() const;
  /// {"profile":[{"key":...,"calls":...,"seconds":...},...]}
  [[nodiscard]] std::string to_json() const;
  bool write_json(const std::string& path) const;
  void reset();

 private:
  SimProfiler();
  void record(const char* key, double seconds);

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::map<std::string, Entry, std::less<>> data_;
};

}  // namespace vmgrid::obs
