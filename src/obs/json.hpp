#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <string_view>

namespace vmgrid::obs::json {

/// Minimal deterministic JSON emission shared by the metrics registry,
/// the trace collector, and the bench reporter. Field order is fixed by
/// the callers and numbers use one printf format, so identical inputs
/// produce byte-identical documents (the determinism tests rely on it).

inline void escape_into(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

[[nodiscard]] inline std::string quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  escape_into(out, s);
  out += '"';
  return out;
}

[[nodiscard]] inline std::string number(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no inf/nan
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

}  // namespace vmgrid::obs::json
