#include "obs/profiler.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/json.hpp"

namespace vmgrid::obs {

SimProfiler& SimProfiler::instance() {
  static SimProfiler prof;
  return prof;
}

SimProfiler::SimProfiler() {
  const char* env = std::getenv("VMGRID_PROFILE");
  if (env != nullptr && std::strcmp(env, "0") != 0 && env[0] != '\0') {
    enabled_.store(true, std::memory_order_relaxed);
  }
}

void SimProfiler::record(const char* key, double seconds) {
  std::lock_guard<std::mutex> lock{mu_};
  auto it = data_.find(key);
  if (it == data_.end()) {
    it = data_.emplace(std::string{key}, Entry{std::string{key}, 0, 0.0}).first;
  }
  ++it->second.calls;
  it->second.seconds += seconds;
}

std::vector<SimProfiler::Entry> SimProfiler::snapshot() const {
  std::lock_guard<std::mutex> lock{mu_};
  std::vector<Entry> out;
  out.reserve(data_.size());
  for (const auto& [k, e] : data_) out.push_back(e);
  return out;
}

std::string SimProfiler::to_json() const {
  std::string out = "{\"profile\":[";
  bool first = true;
  for (const Entry& e : snapshot()) {
    if (!first) out += ",";
    first = false;
    out += "{\"key\":" + json::quote(e.key);
    out += ",\"calls\":" + json::number(static_cast<double>(e.calls));
    out += ",\"seconds\":" + json::number(e.seconds) + "}";
  }
  out += "]}";
  return out;
}

bool SimProfiler::write_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string doc = to_json();
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size() &&
                  std::fputc('\n', f) != EOF;
  std::fclose(f);
  return ok;
}

void SimProfiler::reset() {
  std::lock_guard<std::mutex> lock{mu_};
  data_.clear();
}

}  // namespace vmgrid::obs
