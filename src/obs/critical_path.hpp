#pragma once

#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "sim/time.hpp"

namespace vmgrid::obs {

/// One segment of a critical path: a contiguous slice of sim time during
/// which `span` (identified by subsystem `category` and op `name`) was the
/// thing the root was waiting on.
struct PathSegment {
  SpanId span{kInvalidSpan};
  std::string name;      // op, e.g. "vm.restore"
  std::string category;  // subsystem, e.g. "vm"
  std::string track;     // host/VM lane the time was spent on
  sim::TimePoint begin{};
  sim::TimePoint end{};

  [[nodiscard]] double seconds() const {
    return (end - begin).to_seconds();
  }
};

/// Extract the dominant (critical) path of a completed span tree rooted at
/// `root`: the ordered chain of (subsystem, op, duration) segments that
/// explains the root's wall time. The walk is backward from the root's end:
/// at each point the child span that finished latest (and therefore gated
/// progress) is charged, recursively; sim-time not covered by any gating
/// child is charged to the enclosing span itself. Segments come back in
/// chronological order and tile [root.begin, root.end] exactly.
///
/// Ties (identical end times, common in a discrete-event sim) break by
/// begin then span id, so extraction is deterministic. Children still open
/// or ending after the analysis window never gate and are skipped.
[[nodiscard]] std::vector<PathSegment> extract_critical_path(
    const TraceCollector& trace, SpanId root);

/// Merge adjacent segments charged to the same span (a span interleaved
/// with its children otherwise shows up once per gap).
[[nodiscard]] std::vector<PathSegment> coalesce_path(std::vector<PathSegment> path);

/// Human-readable one-segment-per-line rendering:
///   "  0.000s  1.800s  1.800s  vm/vm.restore @ vm-1"
[[nodiscard]] std::string format_critical_path(const std::vector<PathSegment>& path);

}  // namespace vmgrid::obs
