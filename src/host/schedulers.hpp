#pragma once

#include <memory>
#include <vector>

#include "host/cpu_engine.hpp"
#include "host/sched_types.hpp"
#include "sim/simulation.hpp"

namespace vmgrid::host {

/// Shared helper: water-filling allocation. Gives a_i = min(cap_i, λ·w_i)
/// with λ chosen so Σa_i = min(capacity, Σcap_i). The fluid limit of every
/// proportional-share scheduler in this file.
[[nodiscard]] std::vector<double> water_fill(const std::vector<double>& weights,
                                             const std::vector<double>& caps,
                                             double capacity);

/// Weight-based fair share (the host OS default): weights derive from
/// `nice` the way a Linux-style scheduler maps priorities to CPU shares.
class FairShareScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::vector<double> allocate(const std::vector<ProcView>& procs,
                                             double ncpus) const override;
  [[nodiscard]] std::string name() const override { return "fair-share"; }
};

/// Lottery scheduling [Waldspurger & Weihl, OSDI'94]: expected share is
/// proportional to ticket count (fluid model of the randomized quantum
/// lottery).
class LotteryScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::vector<double> allocate(const std::vector<ProcView>& procs,
                                             double ncpus) const override;
  [[nodiscard]] std::string name() const override { return "lottery"; }
};

/// Weighted fair queueing [Demers, Keshav & Shenker] applied to CPU time:
/// share proportional to weight, fluid bound.
class WfqScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::vector<double> allocate(const std::vector<ProcView>& procs,
                                             double ncpus) const override;
  [[nodiscard]] std::string name() const override { return "wfq"; }
};

/// Strict priority levels (lower nice runs first); equal-priority
/// processes share by weight.
class PriorityScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::vector<double> allocate(const std::vector<ProcView>& procs,
                                             double ncpus) const override;
  [[nodiscard]] std::string name() const override { return "priority"; }
};

/// Reservation-based real-time scheduling (periodic slice/period tasks
/// expressed as a CPU fraction): reservations are honoured first, the
/// residue is shared by weight. Admission control (Σ reservations ≤
/// capacity) is the schedule compiler's job; if violated, reservations
/// are scaled down proportionally rather than silently starving anyone.
class RealTimeScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::vector<double> allocate(const std::vector<ProcView>& procs,
                                             double ncpus) const override;
  [[nodiscard]] std::string name() const override { return "real-time"; }
};

/// SIGSTOP/SIGCONT duty-cycle throttle (§3.2's "coarse-grain" option):
/// periodically stops and continues one process so its long-run share
/// approaches `duty`. Coarse by construction — the victim runs unthrottled
/// within the ON window, which is exactly the imprecision the paper
/// attributes to this mechanism (and the resource-control bench measures).
class DutyCycleController {
 public:
  DutyCycleController(sim::Simulation& s, CpuEngine& engine, ProcessId target,
                      double duty, sim::Duration period = sim::Duration::seconds(1));
  ~DutyCycleController();

  DutyCycleController(const DutyCycleController&) = delete;
  DutyCycleController& operator=(const DutyCycleController&) = delete;

  void start();
  void stop();
  [[nodiscard]] double duty() const { return duty_; }

 private:
  void tick();

  sim::Simulation& sim_;
  CpuEngine& engine_;
  ProcessId target_;
  double duty_;
  sim::Duration period_;
  double saved_cap_{1.0};
  bool running_{false};
  bool phase_on_{true};
  sim::EventId event_{};
};

/// Map a Unix nice value (-20..19) to a fair-share weight, approximating
/// the familiar ~1.25× per nice step.
[[nodiscard]] double nice_to_weight(int nice);

}  // namespace vmgrid::host
