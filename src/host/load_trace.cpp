#include "host/load_trace.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

namespace vmgrid::host {

LoadTrace::LoadTrace(sim::Duration epoch, std::vector<double> samples)
    : epoch_{epoch}, samples_{std::move(samples)} {
  assert(!samples_.empty());
  assert(epoch_ > sim::Duration::zero());
}

LoadTrace LoadTrace::generate(sim::Rng& rng, sim::Duration length,
                              const LoadTraceParams& p) {
  const auto n = static_cast<std::size_t>(
      std::max<double>(1.0, std::ceil(length / p.epoch)));
  std::vector<double> samples;
  samples.reserve(n);
  double x = p.mean;
  for (std::size_t i = 0; i < n; ++i) {
    const double noise = rng.normal(0.0, p.noise_sd);
    x = p.mean + p.ar_phi * (x - p.mean) + noise;
    double level = std::clamp(x, 0.0, p.max_load);
    if (rng.bernoulli(p.burst_prob)) {
      level = std::min(p.max_load, level + p.mean * p.burst_scale);
    }
    samples.push_back(level);
  }
  return LoadTrace{p.epoch, std::move(samples)};
}

LoadTrace LoadTrace::constant(sim::Duration length, double level, sim::Duration epoch) {
  const auto n = static_cast<std::size_t>(
      std::max<double>(1.0, std::ceil(length / epoch)));
  return LoadTrace{epoch, std::vector<double>(n, level)};
}

double LoadTrace::at(sim::Duration t) const {
  auto idx = static_cast<std::size_t>(t / epoch_);
  return samples_[idx % samples_.size()];
}

double LoadTrace::mean() const {
  double s = 0.0;
  for (double v : samples_) s += v;
  return s / static_cast<double>(samples_.size());
}

double LoadTrace::peak() const {
  return *std::max_element(samples_.begin(), samples_.end());
}

}  // namespace vmgrid::host
