#include "host/trace_playback.hpp"

#include <cmath>
#include <utility>

namespace vmgrid::host {

TracePlayback::TracePlayback(sim::Simulation& s, CpuEngine& engine, LoadTrace trace,
                             Options options)
    : sim_{s}, engine_{engine}, trace_{std::move(trace)}, options_{std::move(options)} {}

TracePlayback::~TracePlayback() { stop(); }

void TracePlayback::start() {
  if (running_) return;
  running_ = true;
  started_ = sim_.now();
  const auto max_procs = static_cast<std::size_t>(std::ceil(trace_.peak())) + 1;
  procs_.reserve(max_procs);
  for (std::size_t i = 0; i < max_procs; ++i) {
    auto attrs = options_.attrs;
    attrs.demand_cap = 0.0;  // idle until the first epoch applies demand
    const auto id = engine_.add("bg-load-" + std::to_string(i), attrs,
                                CpuEngine::kInfiniteWork, nullptr,
                                options_.efficiency);
    procs_.push_back(id);
    if (options_.on_spawn) options_.on_spawn(id);
  }
  apply_epoch();
}

void TracePlayback::stop() {
  if (!running_) return;
  running_ = false;
  sim_.cancel(event_);
  event_ = {};
  for (auto id : procs_) {
    if (options_.on_remove) options_.on_remove(id);
    engine_.remove(id);
  }
  procs_.clear();
  current_level_ = 0.0;
}

void TracePlayback::apply_epoch() {
  if (!running_) return;
  const double level = trace_.at(sim_.now() - started_);
  current_level_ = level;
  const auto whole = static_cast<std::size_t>(std::floor(level));
  const double frac = level - static_cast<double>(whole);
  for (std::size_t i = 0; i < procs_.size(); ++i) {
    auto attrs = engine_.attrs(procs_[i]);
    if (i < whole) {
      attrs.demand_cap = std::min(1.0, options_.attrs.demand_cap);
    } else if (i == whole) {
      attrs.demand_cap = frac * std::min(1.0, options_.attrs.demand_cap);
    } else {
      attrs.demand_cap = 0.0;
    }
    engine_.set_attrs(procs_[i], attrs);
  }
  event_ = sim_.schedule_weak_after(trace_.epoch(), [this] { apply_epoch(); });
}

}  // namespace vmgrid::host
