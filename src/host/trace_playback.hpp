#pragma once

#include <functional>
#include <vector>

#include "host/cpu_engine.hpp"
#include "host/load_trace.hpp"

namespace vmgrid::host {

/// Host-load trace playback (Dinda & O'Hallaron, LCR 2000): converts a
/// load-average series into actual background CPU demand on an engine.
///
/// A load level L is realized as floor(L) saturated background processes
/// plus one process whose demand cap equals the fractional remainder;
/// demands are updated every trace epoch. The optional `on_spawn` hook
/// lets a VMM claim the spawned processes so virtualization overhead
/// applies to load played *inside* a VM.
class TracePlayback {
 public:
  struct Options {
    SchedAttrs attrs{};
    double efficiency{1.0};
    std::function<void(ProcessId)> on_spawn;
    std::function<void(ProcessId)> on_remove;  // fired by stop() per process
  };

  TracePlayback(sim::Simulation& s, CpuEngine& engine, LoadTrace trace,
                Options options);
  TracePlayback(sim::Simulation& s, CpuEngine& engine, LoadTrace trace)
      : TracePlayback(s, engine, std::move(trace), Options{}) {}
  ~TracePlayback();

  TracePlayback(const TracePlayback&) = delete;
  TracePlayback& operator=(const TracePlayback&) = delete;

  void start();
  void stop();
  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] double current_level() const { return current_level_; }
  [[nodiscard]] const LoadTrace& trace() const { return trace_; }

 private:
  void apply_epoch();

  sim::Simulation& sim_;
  CpuEngine& engine_;
  LoadTrace trace_;
  Options options_;
  std::vector<ProcessId> procs_;
  sim::TimePoint started_{};
  sim::EventId event_{};
  bool running_{false};
  double current_level_{0.0};
};

}  // namespace vmgrid::host
