#include "host/schedulers.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <numeric>

namespace vmgrid::host {

std::vector<double> water_fill(const std::vector<double>& weights,
                               const std::vector<double>& caps, double capacity) {
  assert(weights.size() == caps.size());
  const std::size_t n = weights.size();
  std::vector<double> alloc(n, 0.0);
  if (n == 0) return alloc;

  double cap_sum = 0.0;
  for (double c : caps) cap_sum += std::max(0.0, c);
  double remaining = std::min(capacity, cap_sum);

  std::vector<bool> fixed(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    if (caps[i] <= 0.0) fixed[i] = true;
  }
  while (remaining > 1e-15) {
    double wsum = 0.0;
    std::size_t free_count = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!fixed[i]) {
        wsum += std::max(weights[i], 0.0);
        ++free_count;
      }
    }
    if (free_count == 0) break;
    bool saturated_any = false;
    if (wsum <= 0.0) {
      // All remaining weights zero: share equally.
      const double each = remaining / static_cast<double>(free_count);
      for (std::size_t i = 0; i < n; ++i) {
        if (fixed[i]) continue;
        if (each >= caps[i] - alloc[i] - 1e-15) {
          remaining -= caps[i] - alloc[i];
          alloc[i] = caps[i];
          fixed[i] = true;
          saturated_any = true;
        }
      }
      if (!saturated_any) {
        for (std::size_t i = 0; i < n; ++i) {
          if (!fixed[i]) alloc[i] += each;
        }
        break;
      }
      continue;
    }
    const double lambda = remaining / wsum;
    for (std::size_t i = 0; i < n; ++i) {
      if (fixed[i]) continue;
      const double want = lambda * std::max(weights[i], 0.0);
      if (want >= caps[i] - alloc[i] - 1e-15) {
        remaining -= caps[i] - alloc[i];
        alloc[i] = caps[i];
        fixed[i] = true;
        saturated_any = true;
      }
    }
    if (!saturated_any) {
      for (std::size_t i = 0; i < n; ++i) {
        if (!fixed[i]) alloc[i] += lambda * std::max(weights[i], 0.0);
      }
      break;
    }
  }
  return alloc;
}

double nice_to_weight(int nice) {
  return std::pow(1.25, -nice);
}

namespace {
std::vector<double> proc_caps(const std::vector<ProcView>& procs) {
  std::vector<double> caps(procs.size());
  for (std::size_t i = 0; i < procs.size(); ++i) {
    caps[i] = std::clamp(procs[i].attrs.demand_cap, 0.0, 1.0);
  }
  return caps;
}
}  // namespace

std::vector<double> FairShareScheduler::allocate(const std::vector<ProcView>& procs,
                                                 double ncpus) const {
  std::vector<double> w(procs.size());
  for (std::size_t i = 0; i < procs.size(); ++i) {
    w[i] = procs[i].attrs.weight * nice_to_weight(procs[i].attrs.nice);
  }
  return water_fill(w, proc_caps(procs), ncpus);
}

std::vector<double> LotteryScheduler::allocate(const std::vector<ProcView>& procs,
                                               double ncpus) const {
  std::vector<double> w(procs.size());
  for (std::size_t i = 0; i < procs.size(); ++i) {
    w[i] = static_cast<double>(procs[i].attrs.tickets);
  }
  return water_fill(w, proc_caps(procs), ncpus);
}

std::vector<double> WfqScheduler::allocate(const std::vector<ProcView>& procs,
                                           double ncpus) const {
  std::vector<double> w(procs.size());
  for (std::size_t i = 0; i < procs.size(); ++i) {
    w[i] = procs[i].attrs.weight;
  }
  return water_fill(w, proc_caps(procs), ncpus);
}

std::vector<double> PriorityScheduler::allocate(const std::vector<ProcView>& procs,
                                                double ncpus) const {
  const auto caps = proc_caps(procs);
  std::vector<double> alloc(procs.size(), 0.0);
  // Group indices by nice, most-privileged (lowest) first.
  std::map<int, std::vector<std::size_t>> levels;
  for (std::size_t i = 0; i < procs.size(); ++i) {
    levels[procs[i].attrs.nice].push_back(i);
  }
  double remaining = ncpus;
  for (const auto& [nice, idx] : levels) {
    if (remaining <= 1e-15) break;
    std::vector<double> w, c;
    w.reserve(idx.size());
    c.reserve(idx.size());
    for (std::size_t i : idx) {
      w.push_back(procs[i].attrs.weight);
      c.push_back(caps[i]);
    }
    const auto level_alloc = water_fill(w, c, remaining);
    for (std::size_t k = 0; k < idx.size(); ++k) {
      alloc[idx[k]] = level_alloc[k];
      remaining -= level_alloc[k];
    }
  }
  return alloc;
}

std::vector<double> RealTimeScheduler::allocate(const std::vector<ProcView>& procs,
                                                double ncpus) const {
  const auto caps = proc_caps(procs);
  std::vector<double> alloc(procs.size(), 0.0);

  // Phase 1: honour reservations (scaled down if over-admitted).
  double reserved = 0.0;
  for (const auto& p : procs) reserved += std::clamp(p.attrs.reservation, 0.0, 1.0);
  const double scale = reserved > ncpus ? ncpus / reserved : 1.0;
  double remaining = ncpus;
  for (std::size_t i = 0; i < procs.size(); ++i) {
    const double r = std::clamp(procs[i].attrs.reservation, 0.0, 1.0) * scale;
    alloc[i] = std::min(r, caps[i]);
    remaining -= alloc[i];
  }

  // Phase 2: the residue is shared by weight among everyone with headroom.
  std::vector<double> w(procs.size()), headroom(procs.size());
  for (std::size_t i = 0; i < procs.size(); ++i) {
    w[i] = procs[i].attrs.weight;
    headroom[i] = std::max(0.0, caps[i] - alloc[i]);
  }
  const auto extra = water_fill(w, headroom, std::max(0.0, remaining));
  for (std::size_t i = 0; i < procs.size(); ++i) alloc[i] += extra[i];
  return alloc;
}

DutyCycleController::DutyCycleController(sim::Simulation& s, CpuEngine& engine,
                                         ProcessId target, double duty,
                                         sim::Duration period)
    : sim_{s}, engine_{engine}, target_{target},
      duty_{std::clamp(duty, 0.0, 1.0)}, period_{period} {}

DutyCycleController::~DutyCycleController() { stop(); }

void DutyCycleController::start() {
  if (running_) return;
  running_ = true;
  saved_cap_ = engine_.attrs(target_).demand_cap;
  phase_on_ = true;
  if (duty_ >= 1.0) return;  // never stopped
  if (duty_ <= 0.0) {        // permanently stopped
    auto attrs = engine_.attrs(target_);
    attrs.demand_cap = 0.0;
    engine_.set_attrs(target_, attrs);
    return;
  }
  tick();
}

void DutyCycleController::stop() {
  if (!running_) return;
  running_ = false;
  sim_.cancel(event_);
  event_ = {};
  if (engine_.contains(target_)) {
    auto attrs = engine_.attrs(target_);
    attrs.demand_cap = saved_cap_;
    engine_.set_attrs(target_, attrs);
  }
}

void DutyCycleController::tick() {
  if (!running_ || !engine_.contains(target_)) return;
  auto attrs = engine_.attrs(target_);
  attrs.demand_cap = phase_on_ ? saved_cap_ : 0.0;
  engine_.set_attrs(target_, attrs);
  const auto window = phase_on_ ? period_ * duty_ : period_ * (1.0 - duty_);
  phase_on_ = !phase_on_;
  event_ = sim_.schedule_weak_after(window, [this] { tick(); });
}

}  // namespace vmgrid::host
