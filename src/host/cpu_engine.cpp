#include "host/cpu_engine.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace vmgrid::host {

namespace {
constexpr double kEps = 1e-9;  // native cpu-seconds considered "done"
}

CpuEngine::CpuEngine(sim::Simulation& s, double ncpus, std::unique_ptr<Scheduler> sched)
    : sim_{s}, ncpus_{ncpus}, sched_{std::move(sched)}, last_advance_{s.now()},
      fidelity_{model::fidelity_from_env()} {
  assert(ncpus_ > 0.0);
  assert(sched_ != nullptr);
}

ProcessId CpuEngine::add(std::string name, SchedAttrs attrs, double work,
                         CompletionCallback on_complete, double efficiency) {
  const ProcessId id{next_id_++};
  Proc p;
  p.name = std::move(name);
  p.attrs = attrs;
  p.efficiency = efficiency;
  p.remaining = work;
  p.on_complete = std::move(on_complete);
  procs_.emplace(id, std::move(p));
  ++revision_;
  reschedule();
  return id;
}

void CpuEngine::remove(ProcessId id) {
  auto it = procs_.find(id);
  if (it == procs_.end()) return;
  if (fidelity_ == model::Fidelity::kFluid) {
    // Lazy tier: reaping an already-drained proc (remaining 0, no rate)
    // does not change the runnable set — it was filtered out of every
    // view — so rates, the completion horizon, and the solved revision
    // all stay valid. Skip the solve; don't even bump the revision.
    // (Exact tier keeps the historical cancel/re-arm event sequence.)
    advance();
    const Proc& p = it->second;
    if (std::isfinite(p.remaining) && p.remaining <= kEps && p.rate <= 0.0) {
      procs_.erase(it);
      return;
    }
  }
  procs_.erase(it);
  ++revision_;
  reschedule();
}

void CpuEngine::set_attrs(ProcessId id, SchedAttrs attrs) {
  advance();
  procs_.at(id).attrs = attrs;
  ++revision_;
  reschedule();
}

SchedAttrs CpuEngine::attrs(ProcessId id) const { return procs_.at(id).attrs; }

void CpuEngine::set_efficiency(ProcessId id, double eff) {
  set_efficiency_quiet(id, eff);
  reschedule();
}

void CpuEngine::set_efficiency_quiet(ProcessId id, double eff) {
  if (eff <= 0.0 || eff > 1.0) {
    throw std::logic_error("CpuEngine: efficiency must be in (0, 1]");
  }
  // Advance first so past progress is charged at the old efficiency.
  advance();
  Proc& p = procs_.at(id);
  if (p.efficiency != eff) {
    p.efficiency = eff;
    ++revision_;
  }
}

double CpuEngine::efficiency(ProcessId id) const { return procs_.at(id).efficiency; }

void CpuEngine::add_work(ProcessId id, double cpu_seconds, CompletionCallback on_complete) {
  Proc& p = procs_.at(id);
  advance();
  if (std::isinf(p.remaining)) {
    throw std::logic_error("CpuEngine::add_work on an infinite-work process");
  }
  p.remaining += cpu_seconds;
  if (on_complete) p.on_complete = std::move(on_complete);
  ++revision_;
  reschedule();
}

double CpuEngine::remaining_work(ProcessId id) const {
  const_cast<CpuEngine*>(this)->advance();
  return procs_.at(id).remaining;
}

double CpuEngine::cpu_time_used(ProcessId id) const {
  const_cast<CpuEngine*>(this)->advance();
  return procs_.at(id).cpu_used;
}

double CpuEngine::current_rate(ProcessId id) const {
  auto it = procs_.find(id);
  return it == procs_.end() ? 0.0 : it->second.rate;
}

std::vector<ProcView> CpuEngine::runnable_views() const {
  std::vector<ProcView> views;
  views.reserve(procs_.size());
  for (const auto& [id, p] : procs_) {
    if (p.remaining > kEps && p.attrs.demand_cap > 0.0) {
      views.push_back(ProcView{id, p.attrs, p.efficiency, std::isfinite(p.remaining),
                               p.remaining});
    }
  }
  // Deterministic order regardless of hash-map iteration.
  std::sort(views.begin(), views.end(),
            [](const ProcView& a, const ProcView& b) { return a.id < b.id; });
  return views;
}

double CpuEngine::total_demand() const {
  double d = 0.0;
  for (const auto& [id, p] : procs_) {
    if (p.remaining > kEps) d += std::min(1.0, p.attrs.demand_cap);
  }
  return d;
}

void CpuEngine::set_scheduler(std::unique_ptr<Scheduler> sched) {
  assert(sched != nullptr);
  advance();
  sched_ = std::move(sched);
  ++revision_;
  reschedule();
}

double CpuEngine::mean_utilization() const { return util_.mean(sim_.now()); }

void CpuEngine::advance() {
  const double dt = (sim_.now() - last_advance_).to_seconds();
  last_advance_ = sim_.now();
  if (dt <= 0.0) return;
  for (auto& [id, p] : procs_) {
    if (p.rate <= 0.0) continue;
    const double alloc = p.rate * dt;
    p.cpu_used += alloc;
    if (std::isfinite(p.remaining)) {
      p.remaining = std::max(0.0, p.remaining - alloc * p.efficiency);
    }
  }
}

void CpuEngine::reschedule() {
  if (in_reschedule_) return;  // outer loop re-runs allocation before exiting
  in_reschedule_ = true;
  bool again = true;
  while (again) {
    again = false;
    advance();

    // Fire completions. Callbacks may add/remove work; gather first. A
    // proc draining (with or without a callback) leaves the runnable
    // set, so it is a constraint-set change like any other. The scratch
    // is safe to reuse: nested reschedule() calls from callbacks bounce
    // off the in_reschedule_ guard before touching it.
    std::vector<std::pair<ProcessId, CompletionCallback>>& done = done_scratch_;
    done.clear();
    for (auto& [id, p] : procs_) {
      if (std::isfinite(p.remaining) && p.remaining <= kEps && p.rate > 0.0) {
        ++revision_;
      }
      if (std::isfinite(p.remaining) && p.remaining <= kEps && p.on_complete) {
        done.emplace_back(id, std::move(p.on_complete));
        p.on_complete = nullptr;
        p.remaining = 0.0;
        p.rate = 0.0;
      }
    }
    std::sort(done.begin(), done.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (auto& [id, cb] : done) {
      cb();
      again = true;  // callbacks may have mutated state; re-run the loop
    }

    if (hook_) hook_(*this);

    // Lazy-update tier: while the constraint set is untouched since the
    // last solve, the scheduler would hand back the same rate vector —
    // keep it (timer-driven reschedules at scale almost always hit this).
    if (fidelity_ == model::Fidelity::kFluid && revision_ == solved_revision_) {
      ++lazy_reuses_;
    } else {
      std::vector<ProcView>& views = views_scratch_;
      views.clear();
      for (const auto& [id, p] : procs_) {
        if (p.remaining > kEps && p.attrs.demand_cap > 0.0) {
          views.push_back(ProcView{id, p.attrs, p.efficiency,
                                   std::isfinite(p.remaining), p.remaining});
        }
      }
      std::sort(views.begin(), views.end(),
                [](const ProcView& a, const ProcView& b) { return a.id < b.id; });
      std::vector<double> rates;
      if (!views.empty()) {
        rates = sched_->allocate(views, ncpus_);
        assert(rates.size() == views.size());
      }
      for (auto& [id, p] : procs_) p.rate = 0.0;
      double total_rate = 0.0;
      for (std::size_t i = 0; i < views.size(); ++i) {
        const double cap = std::min(1.0, views[i].attrs.demand_cap);
        const double r = std::clamp(rates[i], 0.0, cap);
        procs_.at(views[i].id).rate = r;
        total_rate += r;
      }
      util_.set(sim_.now(), total_rate);
      solved_revision_ = revision_;
      ++allocations_;
    }

    // Arm the next completion event. Procs with rate > 0 are exactly the
    // runnable views the last solve granted CPU to.
    sim_.cancel(next_event_);
    next_event_ = {};
    double horizon = std::numeric_limits<double>::infinity();
    for (const auto& [id, p] : procs_) {
      if (std::isfinite(p.remaining) && p.remaining > kEps && p.rate > 0.0) {
        horizon = std::min(horizon, p.remaining / (p.rate * p.efficiency));
      }
    }
    if (std::isfinite(horizon)) {
      const auto delay =
          sim::Duration::nanos(static_cast<std::int64_t>(std::ceil(horizon * 1e9)) + 1);
      next_event_ = sim_.schedule_after(delay, [this] { reschedule(); });
    }
  }
  in_reschedule_ = false;
}

}  // namespace vmgrid::host
