#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace vmgrid::host {

/// Scheduling attributes of one schedulable entity. Which fields matter
/// depends on the installed Scheduler: weight (fair-share/WFQ), tickets
/// (lottery), nice (priority), reservation (real-time slice/period as a
/// CPU fraction). demand_cap bounds how much CPU the entity *wants*
/// (used by load playback and duty-cycle throttling).
struct SchedAttrs {
  double weight{1.0};
  std::uint32_t tickets{100};
  int nice{0};
  double reservation{0.0};
  double demand_cap{1.0};
};

/// Identifier of a process within one CpuEngine.
class ProcessId {
 public:
  constexpr ProcessId() = default;
  explicit constexpr ProcessId(std::uint64_t v) : v_{v} {}
  [[nodiscard]] constexpr std::uint64_t value() const { return v_; }
  [[nodiscard]] constexpr bool valid() const { return v_ != 0; }
  constexpr auto operator<=>(const ProcessId&) const = default;

 private:
  std::uint64_t v_{0};
};

/// Read-only view of a runnable process handed to Scheduler::allocate.
struct ProcView {
  ProcessId id;
  SchedAttrs attrs;
  double efficiency{1.0};
  bool finite{true};
  double remaining{0.0};  // native cpu-seconds of work left
};

/// Allocation policy: map runnable processes to CPU rates.
///
/// Contract: result[i] is the CPU fraction granted to procs[i];
/// 0 <= result[i] <= min(1, procs[i].attrs.demand_cap); sum(result) <=
/// ncpus. Implementations are fluid-limit models of their quantum-based
/// counterparts — GPS for fair-share, expected shares for lottery, the
/// WFQ fluid bound, strict levels for priority.
class Scheduler {
 public:
  virtual ~Scheduler() = default;
  [[nodiscard]] virtual std::vector<double> allocate(const std::vector<ProcView>& procs,
                                                     double ncpus) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace vmgrid::host

template <>
struct std::hash<vmgrid::host::ProcessId> {
  std::size_t operator()(vmgrid::host::ProcessId id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value());
  }
};
