#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "host/cpu_engine.hpp"
#include "host/schedulers.hpp"
#include "net/network.hpp"
#include "storage/disk.hpp"
#include "storage/local_fs.hpp"

namespace vmgrid::host {

struct HostParams {
  std::string name{"host"};
  double ncpus{2.0};
  std::uint32_t cpu_mhz{800};
  std::uint64_t memory_mb{1024};
  storage::DiskParams disk{};
  std::string os{"linux-2.4"};
};

/// A physical machine of the grid: an SMP CPU engine, one disk with a
/// local file system, a network identity, and a memory budget from which
/// VM instances reserve their footprint.
class PhysicalHost {
 public:
  PhysicalHost(sim::Simulation& s, net::Network& net, HostParams params,
               std::unique_ptr<Scheduler> sched = std::make_unique<FairShareScheduler>());

  PhysicalHost(const PhysicalHost&) = delete;
  PhysicalHost& operator=(const PhysicalHost&) = delete;

  [[nodiscard]] const std::string& name() const { return params_.name; }
  [[nodiscard]] const HostParams& params() const { return params_; }
  [[nodiscard]] net::NodeId node() const { return node_; }
  [[nodiscard]] CpuEngine& cpu() { return cpu_; }
  [[nodiscard]] const CpuEngine& cpu() const { return cpu_; }
  [[nodiscard]] storage::Disk& disk() { return disk_; }
  [[nodiscard]] storage::LocalFileSystem& fs() { return fs_; }
  [[nodiscard]] sim::Simulation& simulation() { return sim_; }
  [[nodiscard]] net::Network& network() { return net_; }

  /// Memory accounting for VM placement. Returns false when the request
  /// does not fit (the information service then reports no capacity).
  [[nodiscard]] bool reserve_memory(std::uint64_t mb);
  void release_memory(std::uint64_t mb);
  [[nodiscard]] std::uint64_t free_memory_mb() const { return free_mb_; }

 private:
  sim::Simulation& sim_;
  net::Network& net_;
  HostParams params_;
  net::NodeId node_;
  CpuEngine cpu_;
  storage::Disk disk_;
  storage::LocalFileSystem fs_;
  std::uint64_t free_mb_;
};

}  // namespace vmgrid::host
