#pragma once

#include <vector>

#include "sim/random.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace vmgrid::host {

/// Parameters for synthetic host-load traces.
///
/// The paper drives its microbenchmark with host-load traces collected on
/// the Pittsburgh Supercomputing Center Alpha cluster, replayed with
/// Dinda & O'Hallaron's trace-playback tool. Those traces are long-gone
/// proprietary data; we generate AR(1)-correlated, bursty load series with
/// matching first-order statistics (mean level, strong autocorrelation,
/// occasional spikes) — the microbenchmark result depends only on these.
struct LoadTraceParams {
  sim::Duration epoch{sim::Duration::seconds(1)};
  double mean{0.3};
  double ar_phi{0.95};       // autocorrelation of successive epochs
  double noise_sd{0.08};     // innovation std-dev
  double burst_prob{0.015};  // per-epoch probability of a load spike
  double burst_scale{2.5};   // spike multiplier over the mean
  double max_load{8.0};
};

/// Piecewise-constant host load (average runnable queue length) sampled
/// at a fixed epoch. `at()` wraps around, so short traces can drive long
/// experiments.
class LoadTrace {
 public:
  LoadTrace(sim::Duration epoch, std::vector<double> samples);

  [[nodiscard]] static LoadTrace generate(sim::Rng& rng, sim::Duration length,
                                          const LoadTraceParams& params);
  [[nodiscard]] static LoadTrace constant(sim::Duration length, double level,
                                          sim::Duration epoch = sim::Duration::seconds(1));

  /// Load level at offset `t` from the trace start (wraps).
  [[nodiscard]] double at(sim::Duration t) const;

  [[nodiscard]] sim::Duration epoch() const { return epoch_; }
  [[nodiscard]] std::size_t size() const { return samples_.size(); }
  [[nodiscard]] sim::Duration length() const { return epoch_ * static_cast<double>(samples_.size()); }
  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double peak() const;

 private:
  sim::Duration epoch_;
  std::vector<double> samples_;
};

}  // namespace vmgrid::host
