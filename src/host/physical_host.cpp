#include "host/physical_host.hpp"

#include <utility>

namespace vmgrid::host {

PhysicalHost::PhysicalHost(sim::Simulation& s, net::Network& net, HostParams params,
                           std::unique_ptr<Scheduler> sched)
    : sim_{s},
      net_{net},
      params_{std::move(params)},
      node_{net.add_node(params_.name)},
      cpu_{s, params_.ncpus, std::move(sched)},
      disk_{s, params_.disk},
      fs_{s, disk_},
      free_mb_{params_.memory_mb} {}

bool PhysicalHost::reserve_memory(std::uint64_t mb) {
  if (mb > free_mb_) return false;
  free_mb_ -= mb;
  return true;
}

void PhysicalHost::release_memory(std::uint64_t mb) {
  free_mb_ = std::min(free_mb_ + mb, params_.memory_mb);
}

}  // namespace vmgrid::host
