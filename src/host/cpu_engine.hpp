#pragma once

#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "host/sched_types.hpp"
#include "model/fidelity.hpp"
#include "sim/simulation.hpp"
#include "sim/stats.hpp"

namespace vmgrid::host {

/// Generalized-processor-sharing CPU model for one SMP host.
///
/// Runnable processes receive CPU *rates* from the installed Scheduler;
/// the engine advances remaining work fluidly between scheduling events
/// (arrival, completion, attribute change). A process with efficiency
/// e < 1 needs 1/e seconds of allocated CPU per second of native work —
/// this is how VMM virtualization overhead is charged.
///
/// Determinism: everything is recomputed at event boundaries; no quantum
/// randomness. Lottery-scheduler variance is modelled by the scheduler's
/// fluid expected shares (see schedulers.hpp).
///
/// Fidelity tiers (DESIGN.md §16): the CPU model is already fluid, so
/// kFluid changes no timing — it adds the lazy-update contract: the
/// scheduler's allocate() (plus the sort behind it) is skipped whenever
/// the constraint set is unchanged since the last solve (same runnable
/// procs, attrs, efficiencies, scheduler), which timer-driven
/// reschedules at scale almost always satisfy. Rates are provably
/// identical either way; `lazy_reuses()` meters the savings.
class CpuEngine {
 public:
  CpuEngine(sim::Simulation& s, double ncpus, std::unique_ptr<Scheduler> sched);

  static constexpr double kInfiniteWork = std::numeric_limits<double>::infinity();

  using CompletionCallback = std::function<void()>;
  /// Hook invoked after work is advanced but before rates are recomputed;
  /// used by VMMs to adjust efficiencies based on the current co-runner
  /// set (world-switch overhead).
  using PreAllocateHook = std::function<void(CpuEngine&)>;

  /// Add a process with `work` native cpu-seconds (kInfiniteWork for
  /// never-ending background load). on_complete fires when work drains.
  ProcessId add(std::string name, SchedAttrs attrs, double work,
                CompletionCallback on_complete = nullptr, double efficiency = 1.0);

  /// Remove (kill) a process; its completion callback never fires.
  void remove(ProcessId id);

  [[nodiscard]] bool contains(ProcessId id) const { return procs_.contains(id); }

  /// Replace scheduling attributes (triggers a reschedule).
  void set_attrs(ProcessId id, SchedAttrs attrs);
  [[nodiscard]] SchedAttrs attrs(ProcessId id) const;

  /// Set efficiency; `quiet` variants (for use inside pre-allocate hooks)
  /// do not recursively reschedule.
  void set_efficiency(ProcessId id, double eff);
  void set_efficiency_quiet(ProcessId id, double eff);
  [[nodiscard]] double efficiency(ProcessId id) const;

  /// Append more native work to an existing process (re-arms completion).
  void add_work(ProcessId id, double cpu_seconds, CompletionCallback on_complete);

  [[nodiscard]] double remaining_work(ProcessId id) const;
  /// Allocated CPU time so far (what `time` would report as user+sys).
  [[nodiscard]] double cpu_time_used(ProcessId id) const;
  /// Current CPU rate granted (0 if not runnable).
  [[nodiscard]] double current_rate(ProcessId id) const;

  [[nodiscard]] std::vector<ProcView> runnable_views() const;
  [[nodiscard]] double total_demand() const;  // sum of capped demands
  [[nodiscard]] double ncpus() const { return ncpus_; }
  [[nodiscard]] const Scheduler& scheduler() const { return *sched_; }
  void set_scheduler(std::unique_ptr<Scheduler> sched);

  void set_pre_allocate_hook(PreAllocateHook hook) { hook_ = std::move(hook); }

  /// Default tier comes from `VMGRID_FIDELITY` at construction.
  void set_fidelity(model::Fidelity f) { fidelity_ = f; }
  [[nodiscard]] model::Fidelity fidelity() const { return fidelity_; }
  /// Scheduler allocate() calls actually run / skipped as unchanged.
  [[nodiscard]] std::uint64_t allocations() const { return allocations_; }
  [[nodiscard]] std::uint64_t lazy_reuses() const { return lazy_reuses_; }

  /// Time-weighted mean utilization (0..ncpus) since construction.
  [[nodiscard]] double mean_utilization() const;

 private:
  struct Proc {
    std::string name;
    SchedAttrs attrs;
    double efficiency{1.0};
    double remaining{0.0};
    double rate{0.0};
    double cpu_used{0.0};
    CompletionCallback on_complete;
  };

  void advance();
  void reschedule();

  sim::Simulation& sim_;
  double ncpus_;
  std::unique_ptr<Scheduler> sched_;
  std::unordered_map<ProcessId, Proc, std::hash<ProcessId>> procs_;
  std::uint64_t next_id_{1};
  sim::TimePoint last_advance_{};
  sim::EventId next_event_{};
  PreAllocateHook hook_;
  sim::TimeWeightedMean util_;
  bool in_reschedule_{false};
  model::Fidelity fidelity_;
  /// Bumped by every constraint-set mutation (add/remove/attrs/
  /// efficiency/work/scheduler/drain); allocation reuse is valid only
  /// while it matches solved_revision_.
  std::uint64_t revision_{0};
  std::uint64_t solved_revision_{std::numeric_limits<std::uint64_t>::max()};
  std::uint64_t allocations_{0};
  std::uint64_t lazy_reuses_{0};
  // reschedule() scratch (hot at scale); see the reuse-safety note there.
  std::vector<ProcView> views_scratch_;
  std::vector<std::pair<ProcessId, CompletionCallback>> done_scratch_;
};

}  // namespace vmgrid::host
