#pragma once

#include <memory>
#include <string>
#include <vector>

#include "middleware/accounting.hpp"
#include "middleware/compute_server.hpp"
#include "middleware/gridftp.hpp"
#include "middleware/image_server.hpp"
#include "middleware/information_service.hpp"
#include "net/network.hpp"
#include "net/rpc.hpp"
#include "sim/simulation.hpp"
#include "vfs/grid_vfs.hpp"

namespace vmgrid::middleware {

class SessionManager;

/// Top-level facade: owns the simulation kernel and the shared grid
/// services (network, RPC fabric, grid virtual file system, information
/// service, accounting) plus the servers created through it. Examples
/// and benches build their world through a Grid.
class Grid {
 public:
  explicit Grid(std::uint64_t seed = 1);
  ~Grid();

  Grid(const Grid&) = delete;
  Grid& operator=(const Grid&) = delete;

  [[nodiscard]] sim::Simulation& simulation() { return sim_; }
  [[nodiscard]] net::Network& network() { return net_; }
  [[nodiscard]] net::RpcFabric& fabric() { return fabric_; }
  [[nodiscard]] vfs::GridVfs& gvfs() { return gvfs_; }
  [[nodiscard]] InformationService& info() { return info_; }
  [[nodiscard]] Accounting& accounting() { return accounting_; }
  [[nodiscard]] GridFtp& ftp() { return ftp_; }
  [[nodiscard]] SessionManager& sessions() { return *sessions_; }

  // --- topology ---
  /// 2003-era switched LAN: sub-millisecond, ~100 Mbit.
  [[nodiscard]] static net::LinkParams lan_link();
  /// The paper's UFL <-> NWU wide-area path (~35 ms RTT).
  [[nodiscard]] static net::LinkParams wan_link(
      sim::Duration one_way = sim::Duration::millis(17),
      double bandwidth_bps = 2.5e6);

  net::NodeId add_router(const std::string& name);
  net::NodeId add_client(const std::string& name);  // user workstation
  void connect(net::NodeId a, net::NodeId b, net::LinkParams params);

  /// Hierarchical routing zones (net::Network zones with grid-flavored
  /// defaults): a WAN root zone joined by wan_link-class uplinks, holding
  /// LAN cluster zones whose members join over lan_link-class links.
  net::ZoneId add_wan_zone(const std::string& name);
  net::ZoneId add_cluster_zone(const std::string& name, net::ZoneId wan);

  // --- servers (owned by the grid) ---
  ComputeServer& add_compute_server(ComputeServerParams params = {});
  /// Place the server's host inside a routing zone before it publishes,
  /// so its HostRecord carries the zone name.
  ComputeServer& add_compute_server(net::ZoneId zone, ComputeServerParams params = {});
  ImageServer& add_image_server(ImageServerParams params = {});
  DataServer& add_data_server(DataServerParams params = {});

  [[nodiscard]] std::vector<ComputeServer*> compute_servers();

  // --- execution ---
  void run() { sim_.run(); }
  void run_for(sim::Duration d) { sim_.run_for(d); }
  [[nodiscard]] sim::TimePoint now() const { return sim_.now(); }

 private:
  sim::Simulation sim_;
  net::Network net_;
  net::RpcFabric fabric_;
  vfs::GridVfs gvfs_;
  InformationService info_;
  Accounting accounting_;
  GridFtp ftp_;
  std::vector<std::unique_ptr<ComputeServer>> compute_;
  std::vector<std::unique_ptr<ImageServer>> images_;
  std::vector<std::unique_ptr<DataServer>> data_;
  std::unique_ptr<SessionManager> sessions_;
};

}  // namespace vmgrid::middleware
