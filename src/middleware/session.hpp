#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "middleware/compute_server.hpp"
#include "middleware/image_server.hpp"
#include "obs/trace.hpp"
#include "vm/migration.hpp"
#include "vm/task_runner.hpp"

namespace vmgrid::middleware {

class Grid;
class SessionManager;

/// Everything a user asks for when requesting a virtual workspace.
struct SessionRequest {
  std::string user{"user"};
  std::string os{""};  // required guest OS; empty = any
  std::uint64_t memory_mb{128};
  VmStartMode start{VmStartMode::kWarmRestore};
  StateAccess access{StateAccess::kNonPersistentVfs};
  bool want_ip{true};
  DataServer* data_server{nullptr};  // optional user-data mount (step 5)
  vm::VmConfig config_template{};    // cost model / sched attrs template
  QueryOptions query{};
};

/// A live VM session (the artifact of §4's steps 1-6): the running VM,
/// its network identity, and its data sessions; tasks run through it are
/// accounted to the owning user.
///
/// A session can outlive its VM: when the hosting server crashes the
/// session goes dead (alive() == false, in-flight tasks fail) until the
/// manager's failover re-instantiates the VM on another server, after
/// which run_task works again. The dead interval is accounted as
/// downtime.
class VmSession {
 public:
  [[nodiscard]] vm::VirtualMachine& machine() { return *vm_; }
  [[nodiscard]] ComputeServer& server() { return *server_; }
  [[nodiscard]] const std::string& user() const { return user_; }
  [[nodiscard]] const std::string& name() const { return vm_name_; }
  [[nodiscard]] net::IpAddress ip() const { return ip_; }
  [[nodiscard]] vfs::VfsMount* data_mount() { return data_mount_; }
  [[nodiscard]] bool alive() const { return vm_ != nullptr; }
  [[nodiscard]] const InstantiationStats& instantiation() const { return stats_; }
  /// Completed failovers and the summed dead time they recovered from.
  [[nodiscard]] std::uint64_t failovers() const { return failovers_; }
  [[nodiscard]] sim::Duration total_downtime() const { return total_downtime_; }
  /// In-flight task claims (the explorer's no-lost-tasks invariant: a
  /// dead session must have drained them all).
  [[nodiscard]] std::size_t pending_task_count() const {
    return pending_tasks_.size();
  }

  /// Run an application in the session's VM; CPU and I/O are charged to
  /// the session owner. On a dead session (host crashed, failover not
  /// finished) the callback fires asynchronously with kUnavailable
  /// instead of throwing, so fault-tolerant campaigns can resubmit.
  void run_task(workload::TaskSpec spec, vm::TaskCallback cb);

  /// Move this session's VM to another compute server, keeping the
  /// session (and its data mounts) alive across the move. The callback
  /// receives OK or the failed step's status (storage prep / migration).
  void migrate_to(ComputeServer& target, std::function<void(Status)> cb);

  /// Tear down: destroy the VM, release the lease, retire the records.
  /// Also legal on a dead session (skips the parts the crash already took).
  void shutdown();

 private:
  friend class SessionManager;

  /// Ground-truth cleanup when the hosting server crashes: the VM pointer
  /// is gone, pending task callbacks fail. Failure *detection* (what
  /// triggers failover) stays probe-based in the manager.
  void mark_dead();

  SessionManager* manager_{nullptr};
  ComputeServer* server_{nullptr};
  vm::VirtualMachine* vm_{nullptr};
  std::string user_;
  std::string vm_name_;
  net::IpAddress ip_{};
  vfs::VfsMount* data_mount_{nullptr};
  SessionRequest request_{};
  InstantiationStats stats_{};
  sim::TimePoint started_{};
  net::NodeId instantiation_image_server_{};
  /// The options the session was launched with, kept so failover can
  /// re-instantiate the same machine elsewhere.
  InstantiateOptions launch_opts_{};
  sim::TimePoint dead_since_{};
  sim::Duration total_downtime_{};
  std::uint64_t failovers_{0};
  bool failover_in_progress_{false};
  /// Session-lifetime causal identity: set at creation (the session.create
  /// span), continued by every failover re-instantiation and task run, so
  /// one trace id follows the session across hosts.
  obs::TraceContext trace_ctx_{};
  /// Open while a failover attempt is in flight; child of trace_ctx_.
  obs::Span failover_span_{};
  struct PendingTask {
    std::string task;
    vm::TaskCallback cb;
  };
  std::uint64_t next_task_id_{1};
  /// In-flight task callbacks; mark_dead drains them with kUnavailable so
  /// a crash never leaves a caller waiting on an aborted guest task.
  /// Ordered map: the drain order is part of the determinism contract.
  std::map<std::uint64_t, PendingTask> pending_tasks_;
};

/// When and how the session manager declares a host dead and re-homes its
/// sessions. Detection is deliberately end-to-end: a periodic gram.ping
/// with a finite deadline, `suspect_after` consecutive failures => dead.
struct FailoverPolicy {
  [[nodiscard]] static net::RpcCallOptions default_probe() {
    net::RpcCallOptions o;
    o.deadline = sim::Duration::seconds(2);
    o.max_attempts = 1;
    return o;
  }

  sim::Duration probe_interval{sim::Duration::seconds(5)};
  int suspect_after{2};
  net::RpcCallOptions probe{default_probe()};
  /// Delay before retrying a failover whose placement/instantiation
  /// failed (e.g. every other host also down). Retries are scheduled as
  /// weak events so an undrainable failover cannot wedge run().
  sim::Duration retry_delay{sim::Duration::seconds(5)};
};

/// Outcome of one completed (or failed) failover attempt, delivered to
/// the registered handler; `downtime` is crash-to-recovered sim time.
/// On failure `status` carries the full cause chain, so
/// `status.root_cause().code()` tells the handler *why* recovery failed
/// (kUnavailable: every placement down; kTimeout: dispatch timed out...).
struct FailoverEvent {
  VmSession* session{nullptr};
  std::string from_host;
  std::string to_host;
  Status status{StatusCode::kAborted, "failover not attempted"};
  sim::Duration downtime{};

  [[nodiscard]] bool ok() const { return status.ok(); }
};

/// Orchestrates the paper's six-step session lifecycle:
///  1. query the information service for a VM future,
///  2. query for a suitable image (or take the user's own),
///  3. establish the image data session (mount or stage),
///  4. dispatch VM startup through GRAM and acquire an IP via DHCP,
///  5. establish user-data sessions into the guest,
///  6. hand the running session to the user.
class SessionManager {
 public:
  explicit SessionManager(Grid& grid);
  ~SessionManager();

  using SessionCallback = std::function<void(VmSession*, Status status)>;
  using FailoverHandler = std::function<void(const FailoverEvent&)>;

  void create_session(SessionRequest request, SessionCallback cb);

  /// Enable probe-based failure detection + VM-restore failover. Starts a
  /// weak periodic monitor that gram.pings every host with sessions; dead
  /// sessions are re-instantiated on the best surviving placement.
  void set_failover(FailoverPolicy policy);
  void set_failover_handler(FailoverHandler handler) {
    failover_handler_ = std::move(handler);
  }
  [[nodiscard]] std::uint64_t failovers_completed() const { return failovers_ok_; }
  [[nodiscard]] std::uint64_t failovers_failed() const { return failovers_failed_; }

  [[nodiscard]] std::size_t active_sessions() const { return sessions_.size(); }
  [[nodiscard]] std::uint64_t sessions_created() const { return created_; }

 private:
  friend class VmSession;

  /// Executor wiring: compute servers run instantiation requests that
  /// arrive via GRAM; the pending-request registry keys them by token.
  void wire_executor(ComputeServer& cs);
  void launch(SessionRequest request, Placement placement, obs::TraceContext trace,
              SessionCallback cb);
  void finish_shutdown(VmSession& session);
  std::string fresh_vm_name(const SessionRequest& req);
  [[nodiscard]] bool session_exists(const VmSession* s) const;
  void on_server_crashed(ComputeServer& cs);
  void schedule_probe_tick();
  void probe_tick();
  void consider_failovers(const std::string& host_name);
  void failover(VmSession& session);
  void finish_failover(VmSession& session, ComputeServer& target,
                       vm::VirtualMachine* fresh);

  Grid& grid_;
  net::NodeId frontend_{};
  std::unordered_map<std::string, InstantiateOptions> pending_;
  struct LaunchResult {
    vm::VirtualMachine* vm{nullptr};
    InstantiationStats stats{};
  };
  std::unordered_map<std::string, LaunchResult> results_;
  std::unordered_set<ComputeServer*> wired_;
  /// Launches in flight per host. Information-service snapshots race
  /// with concurrent requests; this local count keeps simultaneous
  /// placements from piling onto one future.
  std::unordered_map<std::string, std::uint32_t> launching_;
  std::vector<std::unique_ptr<VmSession>> sessions_;
  std::uint64_t created_{0};
  // --- failover machinery ---
  FailoverPolicy failover_policy_{};
  bool failover_enabled_{false};
  bool monitor_running_{false};
  FailoverHandler failover_handler_;
  std::unordered_map<std::string, int> probe_failures_;
  std::uint64_t failovers_ok_{0};
  std::uint64_t failovers_failed_{0};
};

}  // namespace vmgrid::middleware
