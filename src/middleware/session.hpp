#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "middleware/compute_server.hpp"
#include "middleware/image_server.hpp"
#include "vm/migration.hpp"
#include "vm/task_runner.hpp"

namespace vmgrid::middleware {

class Grid;
class SessionManager;

/// Everything a user asks for when requesting a virtual workspace.
struct SessionRequest {
  std::string user{"user"};
  std::string os{""};  // required guest OS; empty = any
  std::uint64_t memory_mb{128};
  VmStartMode start{VmStartMode::kWarmRestore};
  StateAccess access{StateAccess::kNonPersistentVfs};
  bool want_ip{true};
  DataServer* data_server{nullptr};  // optional user-data mount (step 5)
  vm::VmConfig config_template{};    // cost model / sched attrs template
  QueryOptions query{};
};

/// A live VM session (the artifact of §4's steps 1-6): the running VM,
/// its network identity, and its data sessions; tasks run through it are
/// accounted to the owning user.
class VmSession {
 public:
  [[nodiscard]] vm::VirtualMachine& machine() { return *vm_; }
  [[nodiscard]] ComputeServer& server() { return *server_; }
  [[nodiscard]] const std::string& user() const { return user_; }
  [[nodiscard]] const std::string& name() const { return vm_name_; }
  [[nodiscard]] net::IpAddress ip() const { return ip_; }
  [[nodiscard]] vfs::VfsMount* data_mount() { return data_mount_; }
  [[nodiscard]] bool alive() const { return vm_ != nullptr; }
  [[nodiscard]] const InstantiationStats& instantiation() const { return stats_; }

  /// Run an application in the session's VM; CPU and I/O are charged to
  /// the session owner.
  void run_task(workload::TaskSpec spec, vm::TaskCallback cb);

  /// Move this session's VM to another compute server, keeping the
  /// session (and its data mounts) alive across the move.
  void migrate_to(ComputeServer& target, std::function<void(bool)> cb);

  /// Tear down: destroy the VM, release the lease, retire the records.
  void shutdown();

 private:
  friend class SessionManager;
  SessionManager* manager_{nullptr};
  ComputeServer* server_{nullptr};
  vm::VirtualMachine* vm_{nullptr};
  std::string user_;
  std::string vm_name_;
  net::IpAddress ip_{};
  vfs::VfsMount* data_mount_{nullptr};
  SessionRequest request_{};
  InstantiationStats stats_{};
  sim::TimePoint started_{};
  net::NodeId instantiation_image_server_{};
};

/// Orchestrates the paper's six-step session lifecycle:
///  1. query the information service for a VM future,
///  2. query for a suitable image (or take the user's own),
///  3. establish the image data session (mount or stage),
///  4. dispatch VM startup through GRAM and acquire an IP via DHCP,
///  5. establish user-data sessions into the guest,
///  6. hand the running session to the user.
class SessionManager {
 public:
  explicit SessionManager(Grid& grid);
  ~SessionManager();

  using SessionCallback = std::function<void(VmSession*, std::string error)>;

  void create_session(SessionRequest request, SessionCallback cb);

  [[nodiscard]] std::size_t active_sessions() const { return sessions_.size(); }
  [[nodiscard]] std::uint64_t sessions_created() const { return created_; }

 private:
  friend class VmSession;

  /// Executor wiring: compute servers run instantiation requests that
  /// arrive via GRAM; the pending-request registry keys them by token.
  void wire_executor(ComputeServer& cs);
  void launch(SessionRequest request, Placement placement, SessionCallback cb);
  void finish_shutdown(VmSession& session);
  std::string fresh_vm_name(const SessionRequest& req);

  Grid& grid_;
  net::NodeId frontend_{};
  std::unordered_map<std::string, InstantiateOptions> pending_;
  struct LaunchResult {
    vm::VirtualMachine* vm{nullptr};
    InstantiationStats stats{};
  };
  std::unordered_map<std::string, LaunchResult> results_;
  std::unordered_set<ComputeServer*> wired_;
  /// Launches in flight per host. Information-service snapshots race
  /// with concurrent requests; this local count keeps simultaneous
  /// placements from piling onto one future.
  std::unordered_map<std::string, std::uint32_t> launching_;
  std::vector<std::unique_ptr<VmSession>> sessions_;
  std::uint64_t created_{0};
};

}  // namespace vmgrid::middleware
