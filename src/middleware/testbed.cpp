#include "middleware/testbed.hpp"

namespace vmgrid::middleware::testbed {

storage::DiskParams paper_host_disk() {
  storage::DiskParams p;
  p.seek = sim::Duration::millis(6);
  p.bandwidth_bps = 17.8e6;
  p.cache_hit = sim::Duration::micros(50);
  p.cache_hit_rate = 0.9;
  return p;
}

vm::VmImageSpec paper_image() {
  vm::VmImageSpec spec;
  spec.name = "rh7.2";
  spec.os = "redhat-7.2";
  spec.disk_bytes = 2ull << 30;
  spec.memory_state_bytes = 128ull << 20;
  spec.boot_read_bytes = 48ull << 20;
  spec.boot_cpu_seconds = 38.0;
  spec.boot_fixed_seconds = 24.0;
  spec.restore_cpu_seconds = 1.5;
  spec.restore_fixed_seconds = 2.0;
  spec.device_state_bytes = 2ull << 20;
  return spec;
}

host::HostParams fig1_host() {
  host::HostParams h;
  h.name = "fig1-node";
  h.ncpus = 2.0;
  h.cpu_mhz = 800;
  h.memory_mb = 1024;
  h.disk = paper_host_disk();
  h.os = "redhat-7.1";
  return h;
}

host::HostParams table1_host() {
  host::HostParams h;
  h.name = "table1-node";
  h.ncpus = 2.0;
  h.cpu_mhz = 933;
  h.memory_mb = 512;
  h.disk = paper_host_disk();
  h.os = "redhat-7.1";
  return h;
}

ComputeServerParams paper_compute(const std::string& name, host::HostParams host_params) {
  ComputeServerParams p;
  p.host = std::move(host_params);
  p.host.name = name;
  return p;
}

vm::VmConfig paper_vm(const std::string& name) {
  vm::VmConfig cfg;
  cfg.name = name;
  cfg.memory_mb = 128;
  return cfg;
}

StartupTestbed::StartupTestbed(std::uint64_t seed) {
  grid = std::make_unique<Grid>(seed);
  auto& g = *grid;
  auto host_params = fig1_host();
  // Run-to-run variance of the mechanical disk (fragmentation, zone
  // position) — the paper's persistent column spans 232..304 s.
  host_params.disk.bandwidth_bps *= g.simulation().rng().uniform(0.92, 1.08);
  compute = &g.add_compute_server(paper_compute("startup-host", host_params));
  ImageServerParams isp;
  isp.name = "lan-image-server";
  isp.disk = paper_host_disk();
  images = &g.add_image_server(isp);
  g.connect(compute->node(), images->node(), Grid::lan_link());
  client = g.add_client("user-workstation");
  g.connect(client, compute->node(), Grid::lan_link());

  images->add_image(paper_image(), &g.info());
  compute->preload_image(paper_image());
}

WideAreaTestbed::WideAreaTestbed(std::uint64_t seed) {
  grid = std::make_unique<Grid>(seed);
  auto& g = *grid;
  nwu_router = g.add_router("nwu-router");
  ufl_router = g.add_router("ufl-router");
  g.connect(nwu_router, ufl_router, Grid::wan_link());

  compute = &g.add_compute_server(paper_compute("nwu-compute", table1_host()));
  g.connect(compute->node(), nwu_router, Grid::lan_link());

  DataServerParams dsp;
  dsp.name = "nwu-data";
  dsp.disk = paper_host_disk();
  data = &g.add_data_server(dsp);
  g.connect(data->node(), nwu_router, Grid::lan_link());

  ImageServerParams isp;
  isp.name = "ufl-images";
  isp.disk = paper_host_disk();
  images = &g.add_image_server(isp);
  g.connect(images->node(), ufl_router, Grid::lan_link());

  images->add_image(paper_image(), &g.info());
}

FaultTestbed::FaultTestbed(std::uint64_t seed, int compute_hosts) {
  grid = std::make_unique<Grid>(seed);
  auto& g = *grid;
  router = g.add_router("site-router");

  ImageServerParams isp;
  isp.name = "site-images";
  isp.disk = paper_host_disk();
  images = &g.add_image_server(isp);
  g.connect(images->node(), router, Grid::lan_link());
  images->add_image(paper_image(), &g.info());

  for (int i = 0; i < compute_hosts; ++i) {
    auto& cs = g.add_compute_server(
        paper_compute("compute-" + std::to_string(i), fig1_host()));
    g.connect(cs.node(), router, Grid::lan_link());
    cs.publish(g.info());
    computes.push_back(&cs);
  }
}

ScaleTestbed::ScaleTestbed(std::uint64_t seed, int clusters, int hosts_per_cluster) {
  grid = std::make_unique<Grid>(seed);
  auto& g = *grid;
  wan = g.add_wan_zone("wan");
  cluster_zones.reserve(static_cast<std::size_t>(clusters));
  for (int c = 0; c < clusters; ++c) {
    const net::ZoneId zone = g.add_cluster_zone("cluster-" + std::to_string(c), wan);
    cluster_zones.push_back(zone);
    for (int h = 0; h < hosts_per_cluster; ++h) {
      auto& cs = g.add_compute_server(
          zone, paper_compute("c" + std::to_string(c) + "-host-" + std::to_string(h),
                              fig1_host()));
      computes.push_back(&cs);
    }
  }
}

}  // namespace vmgrid::middleware::testbed
