#include "middleware/gram.hpp"

#include <memory>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/simulation.hpp"

namespace vmgrid::middleware {

namespace {
struct SubmitArgs {
  std::string rsl;
};
struct SubmitReply {
  /// Executor status shipped in the reply body: the cause chain survives
  /// the RPC boundary instead of being flattened into an error string.
  Status status;
  std::string output;
};
}  // namespace

GramService::GramService(net::RpcServer& server, GramParams params)
    : server_{server}, params_{params} {
  server_.register_method(
      "gram.ping", [](const net::RpcRequest&, net::RpcResponder respond) {
        respond(net::RpcResponse{.response_bytes = 64, .payload = {}});
      });
  server_.register_method(
      "gram.submit", [this](const net::RpcRequest& req, net::RpcResponder respond) {
        const auto& args = std::any_cast<const SubmitArgs&>(req.payload);
        if (!executor_) {
          respond(net::RpcResponse{.error = "gatekeeper has no executor configured",
                                   .response_bytes = 128,
                                   .payload = {},
                                   .status = net::RpcStatus::kServerError});
          return;
        }
        auto& sim = server_.fabric().simulation();
        if (params_.max_active_jobs > 0 && active_jobs_ >= params_.max_active_jobs) {
          // Fast reject before paying auth + jobmanager fork: an
          // overloaded gatekeeper that authenticates everything it then
          // sheds is doing the expensive half of the work for free.
          ++jobs_shed_;
          sim.metrics().counter("gram.jobs_shed").inc();
          respond(net::RpcResponse{.error = "gatekeeper overloaded: too many active jobs",
                                   .response_bytes = 64,
                                   .payload = {},
                                   .status = net::RpcStatus::kOverloaded});
          return;
        }
        ++jobs_;
        ++active_jobs_;
        sim.metrics().counter("gram.jobs").inc();
        VMGRID_LOG(sim, kDebug, "gram", "accepted job rsl=" << args.rsl);
        // Job-lifecycle spans: gram.job wraps the gatekeeper phases
        // (auth+jobmanager, then the executed job) on the "gram" track.
        // Explicit parents throughout: gram.job continues the submitting
        // RPC attempt's trace (concurrent jobs on the shared "gram" track
        // must not nest under each other), and the phases hang off it.
        auto job_span = std::make_shared<obs::Span>(sim, "gram.job", "gram",
                                                    sim.trace().current(), "gram");
        job_span->arg("rsl", args.rsl);
        auto setup_span = std::make_shared<obs::Span>(
            sim, "gram.auth+jobmanager", "gram", job_span->context(), "gram");
        // GSI mutual authentication, then jobmanager fork/exec, then the
        // job itself; the reply is held until the job completes (the
        // -interactive globusrun behaviour the paper timed).
        sim.schedule_after(
            params_.auth_time + params_.jobmanager_startup,
            [this, &sim, job_span, setup_span, rsl = args.rsl,
             respond = std::move(respond)]() mutable {
              setup_span->end();
              auto exec_span = std::make_shared<obs::Span>(
                  sim, "gram.execute", "gram", job_span->context(), "gram");
              {
                // Executor work (VM instantiate, task run) joins the job's
                // trace through this scope.
                obs::ScopedTraceContext scope{sim.trace(), exec_span->context()};
                executor_(rsl, [this, &sim, job_span, exec_span,
                                respond = std::move(respond)](Status st,
                                                              std::string output) {
                  exec_span->set_status(st);
                  exec_span->end();
                  job_span->set_status(st);
                  job_span->end();
                  if (!st.ok()) {
                    VMGRID_LOG(sim, kInfo, "gram", "job failed: " << st.to_string());
                  }
                  if (active_jobs_ > 0) --active_jobs_;
                  const bool ok = st.ok();
                  respond(net::RpcResponse{
                      .error = ok ? "" : st.message(),
                      .response_bytes = 256,
                      .payload = SubmitReply{std::move(st), std::move(output)},
                      .status =
                          ok ? net::RpcStatus::kOk : net::RpcStatus::kServerError});
                });
              }
            });
      });
}

void GramClient::globusrun(net::NodeId gatekeeper, const std::string& rsl,
                           ResultCallback cb) {
  globusrun(gatekeeper, rsl, net::RpcCallOptions{}, std::move(cb));
}

void GramClient::ping(net::NodeId gatekeeper, net::RpcCallOptions opts,
                      PingCallback cb) {
  // Control priority: under admission pressure a ping evicts queued bulk
  // work rather than being shed — a lost probe would look like a dead
  // host to the failure detector.
  fabric_.call(self_, gatekeeper,
               net::RpcRequest{"gram.ping", 64, {}, net::RpcPriority::kControl}, opts,
               [cb = std::move(cb)](net::RpcResponse resp) {
                 cb(net::to_status(resp, "gram.ping"));
               });
}

void GramClient::globusrun(net::NodeId gatekeeper, const std::string& rsl,
                           net::RpcCallOptions opts, ResultCallback cb) {
  // Capture the fabric by reference, not `this`: GramClient is commonly a
  // short-lived stack object while the fabric outlives the whole run.
  auto& fabric = fabric_;
  auto& sim = fabric.simulation();
  const auto started = sim.now();
  // Root-or-continue: under an ambient scope (session launch, failover)
  // the submission joins that trace; bare client submissions start one.
  auto run_span = std::make_shared<obs::Span>(
      sim, "gram.globusrun", fabric.network().node_name(self_),
      sim.trace().current(), "gram");
  run_span->arg("rsl", rsl);
  net::RpcRequest req{"gram.submit", 2048, SubmitArgs{rsl}};
  req.trace = run_span->context();
  fabric.call(self_, gatekeeper, std::move(req), opts,
              [&fabric, started, run_span, cb = std::move(cb)](net::RpcResponse resp) {
                GramJobResult r;
                r.elapsed = fabric.simulation().now() - started;
                fabric.simulation()
                    .metrics()
                    .histogram("gram.globusrun_s", obs::HistogramOptions{0.0, 600.0, 120})
                    .observe(r.elapsed.to_seconds());
                if (resp.ok()) {
                  r.status = {};
                  r.output = std::any_cast<const SubmitReply&>(resp.payload).output;
                } else {
                  // Prefer the executor's own status from the reply body
                  // (full cause chain); fall back to the RPC-level view.
                  Status cause = net::to_status(resp, "gram.submit");
                  if (resp.status == net::RpcStatus::kServerError) {
                    if (const auto* reply = std::any_cast<SubmitReply>(&resp.payload);
                        reply != nullptr && !reply->status.ok()) {
                      cause = reply->status;
                    }
                  }
                  r.status = Status{cause.code(), "globusrun failed"}
                                 .at("gram", "globusrun")
                                 .caused_by(std::move(cause));
                  record_error(fabric.simulation().metrics(), r.status);
                }
                run_span->set_status(r.status);
                run_span->end();
                cb(std::move(r));
              });
}

}  // namespace vmgrid::middleware
