#include "middleware/gram.hpp"

#include <utility>

namespace vmgrid::middleware {

namespace {
struct SubmitArgs {
  std::string rsl;
};
struct SubmitReply {
  bool ok{false};
  std::string output;
};
}  // namespace

GramService::GramService(net::RpcServer& server, GramParams params)
    : server_{server}, params_{params} {
  server_.register_method(
      "gram.ping", [](const net::RpcRequest&, net::RpcResponder respond) {
        respond(net::RpcResponse{.ok = true,
                                 .error = {},
                                 .response_bytes = 64,
                                 .payload = {}});
      });
  server_.register_method(
      "gram.submit", [this](const net::RpcRequest& req, net::RpcResponder respond) {
        const auto& args = std::any_cast<const SubmitArgs&>(req.payload);
        if (!executor_) {
          respond(net::RpcResponse{.ok = false,
                                   .error = "gatekeeper has no executor configured",
                                   .response_bytes = 128,
                                   .payload = {}});
          return;
        }
        ++jobs_;
        auto& sim = server_.fabric().simulation();
        // GSI mutual authentication, then jobmanager fork/exec, then the
        // job itself; the reply is held until the job completes (the
        // -interactive globusrun behaviour the paper timed).
        sim.schedule_after(
            params_.auth_time + params_.jobmanager_startup,
            [this, rsl = args.rsl, respond = std::move(respond)]() mutable {
              executor_(rsl, [respond = std::move(respond)](bool ok, std::string output) {
                respond(net::RpcResponse{.ok = ok,
                                         .error = ok ? "" : output,
                                         .response_bytes = 256,
                                         .payload = SubmitReply{ok, std::move(output)}});
              });
            });
      });
}

void GramClient::globusrun(net::NodeId gatekeeper, const std::string& rsl,
                           ResultCallback cb) {
  // Capture the fabric by reference, not `this`: GramClient is commonly a
  // short-lived stack object while the fabric outlives the whole run.
  auto& fabric = fabric_;
  const auto started = fabric.simulation().now();
  fabric.call(self_, gatekeeper, net::RpcRequest{"gram.submit", 2048, SubmitArgs{rsl}},
              [&fabric, started, cb = std::move(cb)](net::RpcResponse resp) {
                GramJobResult r;
                r.elapsed = fabric.simulation().now() - started;
                r.ok = resp.ok;
                if (resp.ok) {
                  r.output = std::any_cast<const SubmitReply&>(resp.payload).output;
                } else {
                  r.error = resp.error;
                }
                cb(std::move(r));
              });
}

}  // namespace vmgrid::middleware
