#include "middleware/accounting.hpp"

#include <algorithm>

namespace vmgrid::middleware {

void Accounting::charge_cpu(const std::string& user, double cpu_seconds) {
  users_[user].cpu_seconds += cpu_seconds;
}

void Accounting::charge_vm_time(const std::string& user, sim::Duration wall) {
  users_[user].vm_seconds += wall.to_seconds();
}

void Accounting::charge_transfer(const std::string& user, std::uint64_t bytes) {
  users_[user].bytes_transferred += bytes;
}

void Accounting::charge_io(const std::string& user, std::uint64_t rpcs) {
  users_[user].io_rpcs += rpcs;
}

void Accounting::count_vm(const std::string& user) { ++users_[user].vms_instantiated; }

void Accounting::count_task(const std::string& user) { ++users_[user].tasks_completed; }

UsageRecord Accounting::usage(const std::string& user) const {
  auto it = users_.find(user);
  return it == users_.end() ? UsageRecord{} : it->second;
}

std::vector<std::pair<std::string, UsageRecord>> Accounting::report() const {
  std::vector<std::pair<std::string, UsageRecord>> out(users_.begin(), users_.end());
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

}  // namespace vmgrid::middleware
