#include "middleware/compute_server.hpp"

#include <memory>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace vmgrid::middleware {

const char* to_string(StateAccess a) {
  switch (a) {
    case StateAccess::kPersistentCopy: return "persistent";
    case StateAccess::kNonPersistentLocal: return "nonpersistent-diskfs";
    case StateAccess::kNonPersistentLoopback: return "nonpersistent-loopback-nfs";
    case StateAccess::kNonPersistentVfs: return "nonpersistent-grid-vfs";
  }
  return "?";
}

const char* to_string(VmStartMode m) {
  switch (m) {
    case VmStartMode::kColdBoot: return "vm-reboot";
    case VmStartMode::kWarmRestore: return "vm-restore";
  }
  return "?";
}

ComputeServer::ComputeServer(sim::Simulation& s, net::Network& net,
                             net::RpcFabric& fabric, vfs::GridVfs& gvfs,
                             ComputeServerParams params)
    : sim_{s},
      net_{net},
      fabric_{fabric},
      gvfs_{gvfs},
      params_{std::move(params)},
      host_{s, net, params_.host},
      vmm_{host_, params_.vmm},
      rpc_server_{fabric, host_.node(), params_.rpc},
      gram_{rpc_server_, params_.gram},
      loopback_export_{rpc_server_, host_.fs()},
      loopback_client_{std::make_unique<storage::NfsClient>(
          fabric, host_.node(), host_.node(), [&] {
            storage::NfsClientParams p;
            p.rpc = params_.nfs_rpc;
            return p;
          }())},
      dhcp_{net, host_.node(),
            net::IpAddress::from_octets(
                10, static_cast<std::uint8_t>(host_.node().value() & 0xff), 0, 10),
            64},
      ftp_{s, net},
      chunk_store_{s, host_.fs()} {}

void ComputeServer::preload_image(const vm::VmImageSpec& spec) {
  host_.fs().create(spec.disk_file(), spec.disk_bytes);
  if (spec.memory_state_bytes > 0) {
    host_.fs().create(spec.memory_file(),
                      spec.memory_state_bytes + spec.device_state_bytes);
  }
}

void ComputeServer::stage_image(storage::LocalFileSystem& src_fs, net::NodeId src_node,
                                const vm::VmImageSpec& spec,
                                std::function<void(Status)> cb) {
  auto done = std::make_shared<std::size_t>(spec.memory_state_bytes > 0 ? 2 : 1);
  auto first_fail = std::make_shared<Status>();
  auto finish = [done, first_fail, cb = std::move(cb)](const FtpTransferResult& r) {
    if (first_fail->ok() && !r.ok()) *first_fail = r.status;
    if (--*done == 0) cb(*first_fail);
  };
  ftp_.transfer(src_fs, src_node, spec.disk_file(), host_.fs(), host_.node(),
                spec.disk_file(), finish);
  if (spec.memory_state_bytes > 0) {
    ftp_.transfer(src_fs, src_node, spec.memory_file(), host_.fs(), host_.node(),
                  spec.memory_file(), finish);
  }
}

void ComputeServer::stage_image_swarm(image::SwarmDistributor& swarm,
                                      const image::ImageManifest& manifest,
                                      std::function<void(Status)> cb) {
  swarm.register_store(host_.node(), chunk_store_);  // idempotent join
  swarm.fetch(manifest, host_.node(),
              [cb = std::move(cb)](image::SwarmFetchResult r) {
                cb(std::move(r.status));
              });
}

vfs::VfsMount& ComputeServer::vfs_mount_for(net::NodeId image_server) {
  auto it = vfs_mounts_.find(image_server);
  if (it != vfs_mounts_.end()) return *it->second;
  vfs::VfsMountOptions opts;
  opts.use_shared_image_cache = true;
  opts.nfs.rpc = params_.nfs_rpc;
  auto& mount = gvfs_.mount(host_.node(), image_server, opts);
  vfs_mounts_.emplace(image_server, &mount);
  return mount;
}

void ComputeServer::prepare_storage(const InstantiateOptions& opts, StorageCallback cb) {
  const auto& spec = opts.image;
  const double io_cpu = params_.io_client_cpu_per_rpc;
  const std::string diff_file = opts.config.name + ".diff";

  switch (opts.access) {
    case StateAccess::kPersistentCopy: {
      if (!host_.fs().exists(spec.disk_file())) {
        cb(NotFoundError("persistent copy: image not on local disk: " + spec.disk_file())
               .at("compute", "prepare_storage"),
           {});
        return;
      }
      const std::string private_disk = opts.config.name + ".disk";
      host_.fs().copy(spec.disk_file(), private_disk,
                      [this, spec, private_disk, cb = std::move(cb)]() mutable {
                        vm::VmStorage s;
                        s.disk = vm::make_local_accessor(host_.fs(), private_disk);
                        if (spec.memory_state_bytes > 0 &&
                            host_.fs().exists(spec.memory_file())) {
                          s.memory_state =
                              vm::make_local_accessor(host_.fs(), spec.memory_file());
                        }
                        cb({}, std::move(s));
                      });
      return;
    }
    case StateAccess::kNonPersistentLocal: {
      if (!host_.fs().exists(spec.disk_file())) {
        cb(NotFoundError("diskfs: image not on local disk: " + spec.disk_file())
               .at("compute", "prepare_storage"),
           {});
        return;
      }
      host_.fs().create(diff_file, 0);
      vm::VmStorage s;
      s.disk = std::make_unique<vm::CowDisk>(
          vm::make_local_accessor(host_.fs(), spec.disk_file()),
          vm::make_local_accessor(host_.fs(), diff_file));
      if (spec.memory_state_bytes > 0 && host_.fs().exists(spec.memory_file())) {
        s.memory_state = vm::make_local_accessor(host_.fs(), spec.memory_file());
      }
      sim_.schedule_after(params_.vm_setup_time,
                          [cb = std::move(cb), s = std::make_shared<vm::VmStorage>(
                                                   std::move(s))]() mutable {
                            cb({}, std::move(*s));
                          });
      return;
    }
    case StateAccess::kNonPersistentLoopback: {
      if (!host_.fs().exists(spec.disk_file())) {
        cb(NotFoundError("loopback: image not on local disk: " + spec.disk_file())
               .at("compute", "prepare_storage"),
           {});
        return;
      }
      host_.fs().create(diff_file, 0);
      vm::VmStorage s;
      s.disk = std::make_unique<vm::CowDisk>(
          vm::make_nfs_accessor(*loopback_client_, spec.disk_file(), io_cpu),
          vm::make_nfs_accessor(*loopback_client_, diff_file, io_cpu));
      if (spec.memory_state_bytes > 0 && host_.fs().exists(spec.memory_file())) {
        s.memory_state =
            vm::make_nfs_accessor(*loopback_client_, spec.memory_file(), io_cpu);
      }
      sim_.schedule_after(params_.vm_setup_time,
                          [cb = std::move(cb), s = std::make_shared<vm::VmStorage>(
                                                   std::move(s))]() mutable {
                            cb({}, std::move(*s));
                          });
      return;
    }
    case StateAccess::kNonPersistentVfs: {
      if (!opts.image_server_node.valid()) {
        cb(InvalidArgumentError("grid-vfs: no image server specified")
               .at("compute", "prepare_storage"),
           {});
        return;
      }
      auto& mount = vfs_mount_for(opts.image_server_node);
      host_.fs().create(diff_file, 0);
      const double vfs_cpu = params_.vfs_client_cpu_per_rpc;
      vm::VmStorage s;
      s.disk = std::make_unique<vm::CowDisk>(
          vm::make_vfs_accessor(mount.proxy(), spec.disk_file(), vfs_cpu),
          vm::make_local_accessor(host_.fs(), diff_file));
      if (spec.memory_state_bytes > 0) {
        s.memory_state =
            vm::make_vfs_accessor(mount.proxy(), spec.memory_file(), vfs_cpu);
      }
      sim_.schedule_after(params_.vm_setup_time,
                          [cb = std::move(cb), s = std::make_shared<vm::VmStorage>(
                                                   std::move(s))]() mutable {
                            cb({}, std::move(*s));
                          });
      return;
    }
  }
  cb(InvalidArgumentError("unknown state access mode").at("compute", "prepare_storage"),
     {});
}

ComputeServer::InstantiateCallback ComputeServer::take_inflight(std::uint64_t id) {
  auto it = inflight_.find(id);
  if (it == inflight_.end()) return {};
  auto cb = std::move(it->second);
  inflight_.erase(it);
  return cb;
}

void ComputeServer::instantiate(InstantiateOptions opts, InstantiateCallback cb) {
  const auto t0 = sim_.now();
  if (!up_) {
    sim_.schedule_after(sim::Duration::micros(10), [opts, cb = std::move(cb)] {
      InstantiationStats stats;
      stats.access = opts.access;
      stats.mode = opts.mode;
      stats.status = UnavailableError("host down").at("compute", "instantiate");
      cb(nullptr, std::move(stats));
    });
    return;
  }
  if (opts.config.persistent != (opts.access == StateAccess::kPersistentCopy)) {
    opts.config.persistent = opts.access == StateAccess::kPersistentCopy;
  }
  if (params_.max_pending_instantiations > 0 &&
      pending_instantiations_ >= params_.max_pending_instantiations) {
    // Shed before any staging I/O starts: each accepted instantiation
    // pins image blocks through the VFS chain, so admitting past this
    // point turns a placement burst into disk/NFS congestion for the
    // VMs already starting.
    sim_.metrics()
        .counter("compute.instantiations_shed", {{"host", host_.name()}})
        .inc();
    sim_.schedule_after(sim::Duration::micros(10), [opts, cb = std::move(cb)] {
      InstantiationStats stats;
      stats.access = opts.access;
      stats.mode = opts.mode;
      stats.status = OverloadedError("too many pending instantiations")
                         .at("compute", "instantiate");
      cb(nullptr, std::move(stats));
    });
    return;
  }
  sim_.metrics().counter("compute.instantiations", {{"host", host_.name()}}).inc();
  // Explicit parents: the host track is shared by concurrent
  // instantiations, so track-stack inference would nest them spuriously.
  // The ambient context here is the dispatching GRAM job's execute span.
  auto span = std::make_shared<obs::Span>(sim_, "vm.instantiate", host_.name(),
                                          sim_.trace().current(), "vm");
  span->arg("vm", opts.config.name);
  span->arg("mode", to_string(opts.mode));
  span->arg("access", to_string(opts.access));
  auto stage_span = std::make_shared<obs::Span>(sim_, "vm.stage", host_.name(),
                                                span->context(), "vm");
  // Count the request against the advertised future immediately so
  // concurrent placement decisions see this slot as taken. The callback
  // parks in the in-flight registry so a crash can fail it; every
  // continuation below reclaims it via take_inflight() and backs off
  // quietly when the crash path got there first.
  const std::uint64_t id = next_inflight_id_++;
  inflight_.emplace(id, std::move(cb));
  ++pending_instantiations_;
  refresh_published();
  update_gauges();
  auto fail = [this, t0, span](InstantiationStats& stats, Status status,
                               std::uint64_t call_id) {
    auto done = take_inflight(call_id);
    if (!done) return;
    --pending_instantiations_;
    refresh_published();
    update_gauges();
    stats.status = std::move(status);
    record_error(sim_.metrics(), stats.status);
    stats.total = sim_.now() - t0;
    span->set_status(stats.status);
    span->end();
    done(nullptr, std::move(stats));
  };
  auto on_staged = [this, opts, t0, id, fail, span, stage_span](
                       Status st, vm::VmStorage storage) mutable {
    if (!inflight_.contains(id)) return;  // crashed while staging
    stage_span->set_status(st);
    stage_span->end();
    InstantiationStats stats;
    stats.access = opts.access;
    stats.mode = opts.mode;
    stats.state_preparation = sim_.now() - t0;
    if (!st.ok()) {
      fail(stats, std::move(st), id);
      return;
    }
    vm::VirtualMachine* vmachine = nullptr;
    try {
      vmachine = &vmm_.create_vm(opts.config, opts.image, std::move(storage));
    } catch (const std::exception& e) {
      fail(stats, FailedPreconditionError(e.what()).at("compute", "instantiate"), id);
      return;
    }
    const auto t_start = sim_.now();
    auto start_span = std::make_shared<obs::Span>(
        sim_, opts.mode == VmStartMode::kColdBoot ? "vm.reboot" : "vm.restore",
        host_.name(), span->context(), "vm");
    // Session-lifetime attribution: task runs on this VM (long after the
    // instantiate span closed) still join the instantiation's trace.
    vmachine->set_trace_context(span->context());
    auto on_running = [this, id, vmachine, t0, t_start, stats, span,
                       start_span]() mutable {
      auto done = take_inflight(id);
      if (!done) return;  // crashed mid-boot; the VM corpse is gone
      start_span->end();
      ++instantiations_;
      --pending_instantiations_;
      refresh_published();
      update_gauges();
      stats.start_time = sim_.now() - t_start;
      stats.total = sim_.now() - t0;
      span->set_status(Status{});
      span->end();
      done(vmachine, std::move(stats));
    };
    // Scope so the guest-side boot/restore spans (on the VM's own track)
    // parent under this host-side start span.
    obs::ScopedTraceContext scope{sim_.trace(), start_span->context()};
    if (opts.mode == VmStartMode::kColdBoot) {
      vmachine->boot(std::move(on_running));
    } else {
      vmachine->restore(std::move(on_running));
    }
  };
  // Staging I/O (image fetch, cache warm, NFS mounts) parents under the
  // stage span via this scope.
  obs::ScopedTraceContext stage_scope{sim_.trace(), stage_span->context()};
  prepare_storage(opts, std::move(on_staged));
}

void ComputeServer::destroy_vm(vm::VirtualMachine& vmachine) {
  vmm_.destroy_vm(vmachine);
  refresh_published();
  update_gauges();
}

void ComputeServer::crash() {
  if (!up_) return;
  up_ = false;
  sim_.metrics().counter("fault.host_crash", {{"host", host_.name()}}).inc();
  sim_.trace().instant(sim_.now(), "host.crash", host_.name());
  // Off the network first: in-flight RPCs to/from this node start
  // dropping at once.
  net_.set_node_up(host_.node(), false);
  // Listeners (the session layer) see the crash while VM pointers are
  // still valid, so they can invalidate their references.
  for (auto& listener : crash_listeners_) listener(*this);
  // Power off each VM (aborts guest work, cancels its pending lifecycle
  // events), then reclaim the slot. Destruction is safe mid-boot because
  // the VM's scheduled lambdas hold weak liveness tokens.
  for (vm::VirtualMachine* vmachine : vmm_.vms()) {
    vmachine->power_off();
    vmm_.destroy_vm(*vmachine);
  }
  // Fail every accepted-but-unfinished instantiation: callers get an
  // error instead of a callback that never fires.
  auto drained = std::exchange(inflight_, {});
  pending_instantiations_ = 0;
  for (auto& [id, done] : drained) {
    InstantiationStats stats;
    stats.status = UnavailableError("host crashed").at("compute", "instantiate");
    record_error(sim_.metrics(), stats.status);
    done(nullptr, std::move(stats));
  }
  if (published_to_ != nullptr) published_to_->set_host_up(host_.name(), false);
  refresh_published();
  update_gauges();
}

void ComputeServer::recover() {
  if (up_) return;
  up_ = true;
  sim_.metrics().counter("fault.host_recover", {{"host", host_.name()}}).inc();
  sim_.trace().instant(sim_.now(), "host.recover", host_.name());
  net_.set_node_up(host_.node(), true);
  if (published_to_ != nullptr) published_to_->set_host_up(host_.name(), true);
  refresh_published();
  update_gauges();
}

void ComputeServer::update_gauges() {
  auto& m = sim_.metrics();
  const obs::Labels labels{{"host", host_.name()}};
  m.gauge("compute.pending_instantiations", labels)
      .set(static_cast<double>(pending_instantiations_));
  m.gauge("compute.active_vms", labels).set(static_cast<double>(vmm_.vm_count()));
}

void ComputeServer::publish(InformationService& info) {
  published_to_ = &info;
  HostRecord rec;
  rec.name = host_.name();
  rec.node = host_.node();
  rec.ncpus = host_.params().ncpus;
  rec.cpu_mhz = host_.params().cpu_mhz;
  rec.memory_mb = host_.params().memory_mb;
  rec.free_memory_mb = host_.free_memory_mb();
  rec.os = host_.params().os;
  rec.current_load = host_.cpu().total_demand();
  rec.binding = this;
  if (auto z = net_.node_zone(host_.node())) rec.zone = net_.zone_name(*z);
  info.register_host(std::move(rec));

  VmFutureRecord fut;
  fut.host_name = host_.name();
  fut.node = host_.node();
  fut.max_instances = params_.future_max_instances;
  fut.active_instances =
      static_cast<std::uint32_t>(vmm_.vm_count()) + pending_instantiations_;
  fut.max_memory_mb = params_.future_max_memory_mb;
  fut.binding = this;
  info.register_future(std::move(fut));
}

void ComputeServer::refresh_published() {
  if (published_to_ == nullptr) return;
  published_to_->update_host(host_.name(), host_.cpu().total_demand(),
                             host_.free_memory_mb());
  published_to_->update_future(
      host_.name(), static_cast<std::uint32_t>(vmm_.vm_count()) + pending_instantiations_);
}

}  // namespace vmgrid::middleware
