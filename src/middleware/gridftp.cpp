#include "middleware/gridftp.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "obs/trace.hpp"

namespace vmgrid::middleware {

namespace {

struct TransferState : std::enable_shared_from_this<TransferState> {
  sim::Simulation* sim;
  net::Network* net;
  storage::LocalFileSystem* src_fs;
  storage::LocalFileSystem* dst_fs;
  net::NodeId src_node, dst_node;
  std::string src_path, dst_path;
  GridFtpParams params;
  GridFtp::StagingCallback cb;

  std::uint64_t total{0};
  std::uint64_t next_offset{0};
  std::uint64_t written{0};
  sim::TimePoint started{};
  bool finished{false};
  /// Whole-transfer span (all parallel streams); child of the caller's
  /// ambient trace (e.g. vm.stage during instantiation).
  obs::Span span{};

  void begin() {
    started = sim->now();
    span = obs::Span{*sim, "gridftp.transfer", "gridftp", sim->trace().current(),
                     "gridftp"};
    span.arg("src", src_path);
    const auto size = src_fs->size(src_path);
    if (!size) {
      finish(NotFoundError("no such file: " + src_path).at("gridftp", "transfer"));
      return;
    }
    total = *size;
    dst_fs->create(dst_path, total);
    auto self = shared_from_this();
    sim->schedule_after(params.control_setup, [self] {
      if (self->total == 0) {
        self->finish({});
        return;
      }
      const auto streams = std::max<std::uint32_t>(1, self->params.parallel_streams);
      for (std::uint32_t i = 0; i < streams; ++i) self->pump();
    });
  }

  /// One stream: claim the next chunk, read, ship, write, repeat.
  void pump() {
    if (finished || next_offset >= total) return;
    const std::uint64_t offset = next_offset;
    const std::uint64_t chunk = std::min(params.chunk_bytes, total - offset);
    next_offset += chunk;
    auto self = shared_from_this();
    src_fs->read(src_path, offset, chunk, [self, offset, chunk](storage::ReadResult) {
      self->net->send(self->src_node, self->dst_node, chunk,
                      [self, offset, chunk](const net::TransferResult&) {
                        self->dst_fs->write(self->dst_path, offset, chunk, [self, chunk] {
                          self->written += chunk;
                          if (self->written >= self->total) {
                            self->finish({});
                          } else {
                            self->pump();
                          }
                        });
                      });
    });
  }

  void finish(Status status) {
    if (finished) return;
    finished = true;
    FtpTransferResult r;
    r.status = std::move(status);
    span.set_status(r.status);
    span.end();
    if (!r.status.ok()) record_error(sim->metrics(), r.status);
    r.elapsed = sim->now() - started;
    r.bytes = written;
    cb(std::move(r));
  }
};

}  // namespace

void GridFtp::transfer(storage::LocalFileSystem& src_fs, net::NodeId src_node,
                       const std::string& src_path, storage::LocalFileSystem& dst_fs,
                       net::NodeId dst_node, const std::string& dst_path,
                       GridFtpParams params, StagingCallback cb) {
  auto st = std::make_shared<TransferState>();
  st->sim = &sim_;
  st->net = &net_;
  st->src_fs = &src_fs;
  st->dst_fs = &dst_fs;
  st->src_node = src_node;
  st->dst_node = dst_node;
  st->src_path = src_path;
  st->dst_path = dst_path;
  st->params = params;
  st->cb = std::move(cb);
  st->begin();
}

}  // namespace vmgrid::middleware
