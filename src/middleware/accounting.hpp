#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"

namespace vmgrid::middleware {

/// Per-user resource usage (§2.2: resource control "enables a provider
/// to account for the usage of a resource"). Charged by sessions and
/// compute servers as work completes.
struct UsageRecord {
  double cpu_seconds{0.0};
  double vm_seconds{0.0};          // wall time of owned VM instances
  std::uint64_t bytes_transferred{0};
  std::uint64_t io_rpcs{0};
  std::uint32_t vms_instantiated{0};
  std::uint32_t tasks_completed{0};
};

class Accounting {
 public:
  void charge_cpu(const std::string& user, double cpu_seconds);
  void charge_vm_time(const std::string& user, sim::Duration wall);
  void charge_transfer(const std::string& user, std::uint64_t bytes);
  void charge_io(const std::string& user, std::uint64_t rpcs);
  void count_vm(const std::string& user);
  void count_task(const std::string& user);

  [[nodiscard]] UsageRecord usage(const std::string& user) const;
  [[nodiscard]] std::vector<std::pair<std::string, UsageRecord>> report() const;

 private:
  std::unordered_map<std::string, UsageRecord> users_;
};

}  // namespace vmgrid::middleware
