#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "host/cpu_engine.hpp"
#include "host/schedulers.hpp"
#include "middleware/constraint_lang.hpp"

namespace vmgrid::middleware {

/// Raised when a policy cannot be realized on the target host (failed
/// admission control, inconsistent rules).
class CompileError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct CompiledEntity {
  std::string entity;
  host::SchedAttrs attrs;
  std::optional<double> duty;  // duty-cycle throttling, if requested
  sim::Duration duty_period{sim::Duration::seconds(1)};
};

/// The output of compiling an OwnerPolicy against a concrete host:
/// a scheduler choice plus per-entity scheduling attributes, validated
/// by admission control.
struct CompiledSchedule {
  SchedulerKind scheduler{SchedulerKind::kFairShare};
  std::vector<CompiledEntity> entities;
  double total_reservation{0.0};
  std::optional<double> guest_total_limit;

  [[nodiscard]] const CompiledEntity* find(const std::string& entity) const;
  [[nodiscard]] std::unique_ptr<host::Scheduler> make_scheduler() const;
};

/// Compile (with admission control) a policy for a host with `ncpus`.
/// The schedulability bound keeps Σ reservations within
/// `utilization_bound` × ncpus, mirroring classic periodic-task
/// admission tests.
[[nodiscard]] CompiledSchedule compile_policy(const OwnerPolicy& policy, double ncpus,
                                              double utilization_bound = 0.9);

/// Install a compiled schedule on a CPU engine and enforce it on bound
/// processes for the enforcer's lifetime (switches the engine scheduler,
/// applies attributes, runs duty-cycle throttles).
class ScheduleEnforcer {
 public:
  ScheduleEnforcer(sim::Simulation& s, host::CpuEngine& engine, CompiledSchedule schedule);
  ~ScheduleEnforcer();

  ScheduleEnforcer(const ScheduleEnforcer&) = delete;
  ScheduleEnforcer& operator=(const ScheduleEnforcer&) = delete;

  /// Associate a live process with a policy entity. Throws if the entity
  /// is not part of the schedule.
  void bind(const std::string& entity, host::ProcessId pid);
  void unbind(const std::string& entity);

  [[nodiscard]] const CompiledSchedule& schedule() const { return schedule_; }

 private:
  sim::Simulation& sim_;
  host::CpuEngine& engine_;
  CompiledSchedule schedule_;
  struct Binding {
    std::string entity;
    host::ProcessId pid;
    std::unique_ptr<host::DutyCycleController> duty;
  };
  std::vector<Binding> bindings_;
};

}  // namespace vmgrid::middleware
