#include "middleware/image_server.hpp"

#include <algorithm>

#include "middleware/information_service.hpp"

namespace vmgrid::middleware {

ImageServer::ImageServer(sim::Simulation& s, net::Network& net, net::RpcFabric& fabric,
                         ImageServerParams params)
    : sim_{s},
      params_{std::move(params)},
      node_{net.add_node(params_.name)},
      disk_{s, params_.disk},
      fs_{s, disk_},
      nfs_{fabric, node_, fs_, params_.rpc},
      chunks_{s, fs_, /*publish_gauges=*/true} {}

void ImageServer::add_image(const vm::VmImageSpec& spec, InformationService* info) {
  fs_.create(spec.disk_file(), spec.disk_bytes);
  if (spec.memory_state_bytes > 0) {
    fs_.create(spec.memory_file(), spec.memory_state_bytes + spec.device_state_bytes);
  } else if (fs_.exists(spec.memory_file())) {
    // Replacement dropped the snapshot: reclaim the old memory-state file
    // rather than exporting stale bytes under the new spec's name.
    fs_.remove(spec.memory_file());
  }
  auto it = std::find_if(images_.begin(), images_.end(),
                         [&spec](const vm::VmImageSpec& i) { return i.name == spec.name; });
  if (it != images_.end()) {
    *it = spec;
  } else {
    images_.push_back(spec);
  }
  if (info != nullptr) {
    ImageRecord rec;
    rec.name = spec.name;
    rec.os = spec.os;
    rec.disk_bytes = spec.disk_bytes;
    rec.has_memory_snapshot = spec.memory_state_bytes > 0;
    rec.server_node = node_;
    rec.spec = spec;
    rec.binding = this;
    info->register_image(std::move(rec));
  }
}

const vm::VmImageSpec* ImageServer::find(const std::string& name) const {
  auto it = std::find_if(images_.begin(), images_.end(),
                         [&name](const vm::VmImageSpec& i) { return i.name == name; });
  return it == images_.end() ? nullptr : &*it;
}

std::vector<std::string> ImageServer::catalog() const {
  std::vector<std::string> names;
  names.reserve(images_.size());
  for (const auto& i : images_) names.push_back(i.name);
  std::sort(names.begin(), names.end());
  return names;
}

const image::ImageManifest& ImageServer::add_image_chunked(const std::string& image,
                                                           std::uint64_t image_bytes,
                                                           std::uint64_t chunk_bytes,
                                                           InformationService* info) {
  image::ImageManifest m = image::build_manifest(image, image_bytes, chunk_bytes);
  chunks_.add_manifest(m);
  if (info != nullptr) {
    for (const image::ChunkId id : m.chunks) {
      info->chunks().register_holder(id, node_);
    }
  }
  for (auto& existing : manifests_) {
    if (existing.image == m.image && existing.version == m.version) {
      // Re-ingest of the same version: the new refs are already counted,
      // so releasing the old ones leaves shared chunks at refcount >= 1.
      chunks_.release_manifest(existing);
      existing = std::move(m);
      return existing;
    }
  }
  manifests_.push_back(std::move(m));
  return manifests_.back();
}

const image::ImageManifest* ImageServer::derive_version(
    const std::string& image, std::vector<std::uint32_t> changed,
    InformationService* info) {
  const image::ImageManifest* parent = find_manifest(image);
  if (parent == nullptr) return nullptr;
  image::ImageManifest m = image::derive_manifest(*parent, std::move(changed));
  chunks_.add_manifest(m);  // only delta chunks are new; the rest dedup
  if (info != nullptr) {
    for (const image::ChunkId id : m.chunks) {
      info->chunks().register_holder(id, node_);
    }
  }
  manifests_.push_back(std::move(m));
  return &manifests_.back();
}

const image::ImageManifest* ImageServer::find_manifest(const std::string& image,
                                                       std::uint32_t version) const {
  const image::ImageManifest* best = nullptr;
  for (const auto& m : manifests_) {
    if (m.image != image) continue;
    if (version != 0 ? m.version == version : (best == nullptr || m.version > best->version)) {
      best = &m;
    }
  }
  return best;
}

std::vector<const image::ImageManifest*> ImageServer::lineage(
    const std::string& image, std::uint32_t version) const {
  std::vector<const image::ImageManifest*> chain;
  const image::ImageManifest* cur = find_manifest(image, version);
  while (cur != nullptr) {
    chain.push_back(cur);
    if (cur->parent_version == 0) break;
    cur = find_manifest(image, cur->parent_version);
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

}  // namespace vmgrid::middleware
