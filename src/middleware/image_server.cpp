#include "middleware/image_server.hpp"

#include <algorithm>

#include "middleware/information_service.hpp"

namespace vmgrid::middleware {

ImageServer::ImageServer(sim::Simulation& s, net::Network& net, net::RpcFabric& fabric,
                         ImageServerParams params)
    : sim_{s},
      params_{std::move(params)},
      node_{net.add_node(params_.name)},
      disk_{s, params_.disk},
      fs_{s, disk_},
      nfs_{fabric, node_, fs_, params_.rpc} {}

void ImageServer::add_image(const vm::VmImageSpec& spec, InformationService* info) {
  fs_.create(spec.disk_file(), spec.disk_bytes);
  if (spec.memory_state_bytes > 0) {
    fs_.create(spec.memory_file(), spec.memory_state_bytes + spec.device_state_bytes);
  }
  auto it = std::find_if(images_.begin(), images_.end(),
                         [&spec](const vm::VmImageSpec& i) { return i.name == spec.name; });
  if (it != images_.end()) {
    *it = spec;
  } else {
    images_.push_back(spec);
  }
  if (info != nullptr) {
    ImageRecord rec;
    rec.name = spec.name;
    rec.os = spec.os;
    rec.disk_bytes = spec.disk_bytes;
    rec.has_memory_snapshot = spec.memory_state_bytes > 0;
    rec.server_node = node_;
    rec.spec = spec;
    rec.binding = this;
    info->register_image(std::move(rec));
  }
}

const vm::VmImageSpec* ImageServer::find(const std::string& name) const {
  auto it = std::find_if(images_.begin(), images_.end(),
                         [&name](const vm::VmImageSpec& i) { return i.name == name; });
  return it == images_.end() ? nullptr : &*it;
}

std::vector<std::string> ImageServer::catalog() const {
  std::vector<std::string> names;
  names.reserve(images_.size());
  for (const auto& i : images_) names.push_back(i.name);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace vmgrid::middleware
