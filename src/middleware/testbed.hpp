#pragma once

#include <memory>

#include "middleware/grid.hpp"
#include "middleware/session.hpp"

namespace vmgrid::middleware::testbed {

/// Paper-calibrated component models (DESIGN.md §5). Everything the
/// reproduction experiments share lives here, so a calibration change
/// propagates to every bench consistently.

/// 2001-era commodity host disk: ~16 MB/s effective, 6 ms positioning,
/// warm kernel page cache absorbing 90% of re-reads.
[[nodiscard]] storage::DiskParams paper_host_disk();

/// The RedHat 7.x VM image of Table 2: 2 GiB virtual disk, 128 MiB
/// post-boot memory snapshot, and the measured boot profile.
[[nodiscard]] vm::VmImageSpec paper_image();

/// Figure 1's compute node: dual PIII-800, 1 GiB RAM, RedHat 7.1.
[[nodiscard]] host::HostParams fig1_host();

/// Table 1's compute node: dual PIII-933, 512 MiB RAM, RedHat 7.1.
[[nodiscard]] host::HostParams table1_host();

/// Compute-server parameter bundle on a paper-calibrated host.
[[nodiscard]] ComputeServerParams paper_compute(const std::string& name,
                                                host::HostParams host_params);

/// The VM configuration used across the paper's experiments
/// (VMware Workstation 3.0a guest with 128 MB of memory).
[[nodiscard]] vm::VmConfig paper_vm(const std::string& name);

/// Table 2's environment: one compute server and one image server on a
/// LAN; the image is preloaded on the compute host's local disk (the
/// paper measured DiskFS and LoopbackNFS against local state).
struct StartupTestbed {
  explicit StartupTestbed(std::uint64_t seed);

  std::unique_ptr<Grid> grid;
  ComputeServer* compute{nullptr};
  ImageServer* images{nullptr};
  net::NodeId client{};
};

/// Table 1's environment: compute + data server at one site (NWU), the
/// image server across a ~35 ms WAN at the other (UFL).
struct WideAreaTestbed {
  explicit WideAreaTestbed(std::uint64_t seed);

  std::unique_ptr<Grid> grid;
  ComputeServer* compute{nullptr};
  ImageServer* images{nullptr};  // remote (UFL) side
  DataServer* data{nullptr};     // local (NWU) side
  net::NodeId nwu_router{};
  net::NodeId ufl_router{};
};

/// Fault/recovery environment: `compute_hosts` published compute servers
/// ("compute-0"..) and one image server on a LAN behind a site router.
/// The warm-restorable paper image is available over VFS from the image
/// server, so sessions can be re-instantiated on any surviving host —
/// the world the fault-injection experiments run against.
struct FaultTestbed {
  explicit FaultTestbed(std::uint64_t seed, int compute_hosts = 3);

  std::unique_ptr<Grid> grid;
  std::vector<ComputeServer*> computes;
  ImageServer* images{nullptr};
  net::NodeId router{};
};

/// Scale environment (DESIGN.md §16): `clusters` LAN cluster zones nested
/// in one WAN zone, each holding `hosts_per_cluster` published compute
/// servers — routes resolve through the zone hierarchy in O(depth), and
/// every HostRecord carries its cluster zone name so schedulers can work
/// zone-by-zone (info().hosts_in_zone). The zone names are
/// "cluster-0".."cluster-N".
struct ScaleTestbed {
  explicit ScaleTestbed(std::uint64_t seed, int clusters = 4,
                        int hosts_per_cluster = 8);

  std::unique_ptr<Grid> grid;
  net::ZoneId wan{};
  std::vector<net::ZoneId> cluster_zones;
  std::vector<ComputeServer*> computes;  // cluster-major order
};

}  // namespace vmgrid::middleware::testbed
