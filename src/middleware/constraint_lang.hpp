#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"

namespace vmgrid::middleware {

/// §3.2: "Our approach to the complex and varying constraints of resource
/// owners is to use a specialized language for specifying the constraints,
/// and a toolchain for enforcing [them] when scheduling virtual machines
/// on the host operating system."
///
/// Grammar (line comments start with '#'):
///
///   policy <name> {
///     scheduler fair | wfq | lottery | priority | rt ;
///     reserve   <entity> <fraction> ;            # CPU reservation
///     rt        <entity> slice=<dur> period=<dur> ;  # same, slice/period form
///     shares    <entity> <int> ;                 # lottery tickets
///     weight    <entity> <float> ;               # wfq / fair-share weight
///     nice      <entity> <int> ;                 # priority level
///     dutycycle <entity> <fraction> [period=<dur>] ; # SIGSTOP/SIGCONT throttle
///     cap       <entity> <fraction> ;            # hard demand cap
///     limit guest_total <fraction> ;             # bound on Σ guest demand
///   }
///
/// Durations: e.g. 10ms, 2s, 500us.

enum class SchedulerKind { kFairShare, kWfq, kLottery, kPriority, kRealTime };

[[nodiscard]] const char* to_string(SchedulerKind k);

struct EntityRule {
  std::string entity;
  std::optional<double> reservation;
  std::optional<std::uint32_t> tickets;
  std::optional<double> weight;
  std::optional<int> nice;
  std::optional<double> duty;
  sim::Duration duty_period{sim::Duration::seconds(1)};
  std::optional<double> cap;
};

struct OwnerPolicy {
  std::string name;
  SchedulerKind scheduler{SchedulerKind::kFairShare};
  std::vector<EntityRule> rules;  // insertion order preserved
  std::optional<double> guest_total_limit;

  [[nodiscard]] const EntityRule* find(const std::string& entity) const;
};

struct ParseError {
  std::size_t line;
  std::string message;
};

struct ParseResult {
  std::optional<OwnerPolicy> policy;  // set iff errors is empty
  std::vector<ParseError> errors;

  [[nodiscard]] bool ok() const { return policy.has_value(); }
};

[[nodiscard]] ParseResult parse_policy(const std::string& source);

}  // namespace vmgrid::middleware
