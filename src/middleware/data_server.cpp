#include "middleware/image_server.hpp"

namespace vmgrid::middleware {

DataServer::DataServer(sim::Simulation& s, net::Network& net, net::RpcFabric& fabric,
                       DataServerParams params)
    : sim_{s},
      params_{std::move(params)},
      node_{net.add_node(params_.name)},
      disk_{s, params_.disk},
      fs_{s, disk_},
      nfs_{fabric, node_, fs_, params_.rpc} {}

void DataServer::add_user_file(const std::string& user, const std::string& file,
                               std::uint64_t bytes) {
  fs_.create(user_path(user, file), bytes);
}

}  // namespace vmgrid::middleware
