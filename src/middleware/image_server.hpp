#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/rpc.hpp"
#include "storage/disk.hpp"
#include "storage/local_fs.hpp"
#include "storage/nfs_server.hpp"
#include "vm/vm_image.hpp"

namespace vmgrid::middleware {

class InformationService;

struct ImageServerParams {
  std::string name{"image-server"};
  storage::DiskParams disk{};
  net::RpcServerParams rpc{};
};

/// Archive of static VM states (§3.1's "image server" role): a storage
/// node exporting VM disk images and post-boot memory snapshots over
/// NFS, with the catalog published to the information service.
class ImageServer {
 public:
  ImageServer(sim::Simulation& s, net::Network& net, net::RpcFabric& fabric,
              ImageServerParams params = {});

  /// Create the image's backing files and advertise it. Re-adding an
  /// image with the same name replaces it.
  void add_image(const vm::VmImageSpec& spec, InformationService* info = nullptr);

  [[nodiscard]] const vm::VmImageSpec* find(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> catalog() const;

  [[nodiscard]] net::NodeId node() const { return node_; }
  [[nodiscard]] const std::string& name() const { return params_.name; }
  [[nodiscard]] storage::LocalFileSystem& fs() { return fs_; }
  [[nodiscard]] storage::Disk& disk() { return disk_; }

 private:
  sim::Simulation& sim_;
  ImageServerParams params_;
  net::NodeId node_;
  storage::Disk disk_;
  storage::LocalFileSystem fs_;
  storage::NfsServer nfs_;
  std::vector<vm::VmImageSpec> images_;
};

/// Storage for user/application data (§3.1's "data server" role).
struct DataServerParams {
  std::string name{"data-server"};
  storage::DiskParams disk{};
  net::RpcServerParams rpc{};
};

class DataServer {
 public:
  DataServer(sim::Simulation& s, net::Network& net, net::RpcFabric& fabric,
             DataServerParams params = {});

  /// Provision a user file of the given size.
  void add_user_file(const std::string& user, const std::string& file,
                     std::uint64_t bytes);

  /// Canonical path of a user file within the export.
  [[nodiscard]] static std::string user_path(const std::string& user,
                                             const std::string& file) {
    return user + "/" + file;
  }

  [[nodiscard]] net::NodeId node() const { return node_; }
  [[nodiscard]] const std::string& name() const { return params_.name; }
  [[nodiscard]] storage::LocalFileSystem& fs() { return fs_; }

 private:
  sim::Simulation& sim_;
  DataServerParams params_;
  net::NodeId node_;
  storage::Disk disk_;
  storage::LocalFileSystem fs_;
  storage::NfsServer nfs_;
};

}  // namespace vmgrid::middleware
