#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "image/chunk_store.hpp"
#include "image/manifest.hpp"
#include "net/rpc.hpp"
#include "storage/disk.hpp"
#include "storage/local_fs.hpp"
#include "storage/nfs_server.hpp"
#include "vm/vm_image.hpp"

namespace vmgrid::middleware {

class InformationService;

struct ImageServerParams {
  std::string name{"image-server"};
  storage::DiskParams disk{};
  net::RpcServerParams rpc{};
};

/// Archive of static VM states (§3.1's "image server" role): a storage
/// node exporting VM disk images and post-boot memory snapshots over
/// NFS, with the catalog published to the information service.
class ImageServer {
 public:
  ImageServer(sim::Simulation& s, net::Network& net, net::RpcFabric& fabric,
              ImageServerParams params = {});

  /// Create the image's backing files and advertise it. Re-adding an
  /// image with the same name replaces it — including removing a stale
  /// memory-state file when the new spec carries no snapshot.
  void add_image(const vm::VmImageSpec& spec, InformationService* info = nullptr);

  /// Stable across later catalog growth (entries live in a deque and are
  /// never reordered), so callers may hold the pointer.
  [[nodiscard]] const vm::VmImageSpec* find(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> catalog() const;

  // --- content-addressed (chunked) images ---

  /// Ingest a root image version as a chunk manifest: backing chunk files
  /// land in this server's chunk store, and every chunk is advertised in
  /// the information service's chunk directory with this node as origin.
  /// The returned reference stays valid for the server's lifetime.
  const image::ImageManifest& add_image_chunked(
      const std::string& image, std::uint64_t image_bytes,
      std::uint64_t chunk_bytes = 4ull << 20, InformationService* info = nullptr);

  /// Ingest a derived version: the latest version's manifest with
  /// `changed` chunk indices re-addressed. Only the delta chunks cost
  /// storage (the rest dedup against the parent). Null when the image
  /// family is unknown.
  const image::ImageManifest* derive_version(const std::string& image,
                                             std::vector<std::uint32_t> changed,
                                             InformationService* info = nullptr);

  /// Manifest of `image` at `version`; version 0 = latest. Null if absent.
  [[nodiscard]] const image::ImageManifest* find_manifest(
      const std::string& image, std::uint32_t version = 0) const;

  /// Root-first manifest chain ending at `version` (0 = latest): the
  /// lineage a CoW chain accessor instantiates. Empty if absent.
  [[nodiscard]] std::vector<const image::ImageManifest*> lineage(
      const std::string& image, std::uint32_t version = 0) const;

  [[nodiscard]] image::ChunkStore& chunk_store() { return chunks_; }

  [[nodiscard]] net::NodeId node() const { return node_; }
  [[nodiscard]] const std::string& name() const { return params_.name; }
  [[nodiscard]] storage::LocalFileSystem& fs() { return fs_; }
  [[nodiscard]] storage::Disk& disk() { return disk_; }

 private:
  sim::Simulation& sim_;
  ImageServerParams params_;
  net::NodeId node_;
  storage::Disk disk_;
  storage::LocalFileSystem fs_;
  storage::NfsServer nfs_;
  // Deques: find()/find_manifest() hand out pointers that must survive
  // later additions (a vector would invalidate them on growth).
  std::deque<vm::VmImageSpec> images_;
  image::ChunkStore chunks_;
  std::deque<image::ImageManifest> manifests_;
};

/// Storage for user/application data (§3.1's "data server" role).
struct DataServerParams {
  std::string name{"data-server"};
  storage::DiskParams disk{};
  net::RpcServerParams rpc{};
};

class DataServer {
 public:
  DataServer(sim::Simulation& s, net::Network& net, net::RpcFabric& fabric,
             DataServerParams params = {});

  /// Provision a user file of the given size.
  void add_user_file(const std::string& user, const std::string& file,
                     std::uint64_t bytes);

  /// Canonical path of a user file within the export.
  [[nodiscard]] static std::string user_path(const std::string& user,
                                             const std::string& file) {
    return user + "/" + file;
  }

  [[nodiscard]] net::NodeId node() const { return node_; }
  [[nodiscard]] const std::string& name() const { return params_.name; }
  [[nodiscard]] storage::LocalFileSystem& fs() { return fs_; }

 private:
  sim::Simulation& sim_;
  DataServerParams params_;
  net::NodeId node_;
  storage::Disk disk_;
  storage::LocalFileSystem fs_;
  storage::NfsServer nfs_;
};

}  // namespace vmgrid::middleware
