#include "middleware/information_service.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

namespace vmgrid::middleware {

namespace {
template <typename Rec>
auto find_by_name(std::vector<Rec>& table, const std::string& name) {
  return std::find_if(table.begin(), table.end(),
                      [&name](const Rec& r) { return r.name == name; });
}
}  // namespace

void InformationService::register_host(HostRecord rec) {
  auto it = find_by_name(hosts_, rec.name);
  if (it != hosts_.end()) {
    *it = std::move(rec);
  } else {
    hosts_.push_back(std::move(rec));
  }
}

void InformationService::update_host(const std::string& name, double load,
                                     std::uint64_t free_mb) {
  auto it = find_by_name(hosts_, name);
  if (it == hosts_.end()) return;
  it->current_load = load;
  it->free_memory_mb = free_mb;
}

void InformationService::unregister_host(const std::string& name) {
  auto it = find_by_name(hosts_, name);
  if (it != hosts_.end()) hosts_.erase(it);
}

void InformationService::set_host_up(const std::string& name, bool host_up) {
  if (auto it = find_by_name(hosts_, name); it != hosts_.end()) it->up = host_up;
  auto fit = std::find_if(futures_.begin(), futures_.end(),
                          [&name](const VmFutureRecord& f) {
                            return f.host_name == name;
                          });
  if (fit != futures_.end()) fit->up = host_up;
}

void InformationService::register_image(ImageRecord rec) {
  // Keyed by (name, server_node): replacing is only valid when the same
  // server re-advertises; another server offering the same image is a
  // replica and must not clobber the first server's record.
  auto it = std::find_if(images_.begin(), images_.end(), [&rec](const ImageRecord& r) {
    return r.name == rec.name && r.server_node == rec.server_node;
  });
  if (it != images_.end()) {
    *it = std::move(rec);
  } else {
    images_.push_back(std::move(rec));
  }
}

void InformationService::unregister_image(const std::string& name) {
  auto it = find_by_name(images_, name);
  if (it != images_.end()) images_.erase(it);
}

void InformationService::register_future(VmFutureRecord rec) {
  auto it = std::find_if(futures_.begin(), futures_.end(), [&rec](const VmFutureRecord& f) {
    return f.host_name == rec.host_name;
  });
  if (it != futures_.end()) {
    *it = std::move(rec);
  } else {
    futures_.push_back(std::move(rec));
  }
}

void InformationService::update_future(const std::string& host_name,
                                       std::uint32_t active) {
  auto it = std::find_if(futures_.begin(), futures_.end(),
                         [&host_name](const VmFutureRecord& f) {
                           return f.host_name == host_name;
                         });
  if (it != futures_.end()) it->active_instances = active;
}

void InformationService::register_vm(VmRecord rec) {
  auto it = find_by_name(vms_, rec.name);
  if (it != vms_.end()) {
    *it = std::move(rec);
  } else {
    vms_.push_back(std::move(rec));
  }
}

void InformationService::update_vm_state(const std::string& name,
                                         const std::string& state) {
  auto it = find_by_name(vms_, name);
  if (it != vms_.end()) it->state = state;
}

void InformationService::unregister_vm(const std::string& name) {
  auto it = find_by_name(vms_, name);
  if (it != vms_.end()) vms_.erase(it);
}

template <typename Rec, typename Pred>
void InformationService::scan(const std::vector<Rec>& table, Pred pred,
                              QueryOptions opts,
                              std::function<void(std::vector<Rec>)> cb) {
  // Budget: how many records the time bound allows us to examine.
  const auto budget = static_cast<std::size_t>(
      std::max<double>(1.0, opts.time_bound / per_record_cost_));
  std::vector<std::size_t> order(table.size());
  std::iota(order.begin(), order.end(), 0);
  // Nondeterministic examination order (seeded, so reproducible per run).
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[sim_.rng().index(i)]);
  }
  std::vector<Rec> results;
  std::size_t examined = 0;
  for (std::size_t idx : order) {
    if (examined >= budget || results.size() >= opts.max_results) break;
    ++examined;
    if (pred(table[idx])) results.push_back(table[idx]);
  }
  const auto elapsed =
      per_record_cost_ * static_cast<double>(std::max<std::size_t>(examined, 1));
  sim_.schedule_after(elapsed,
                      [cb = std::move(cb), results = std::move(results)]() mutable {
                        cb(std::move(results));
                      });
}

void InformationService::query_hosts(HostPredicate pred, QueryOptions opts,
                                     std::function<void(std::vector<HostRecord>)> cb) {
  scan(hosts_, std::move(pred), opts, std::move(cb));
}

void InformationService::query_images(ImagePredicate pred, QueryOptions opts,
                                      std::function<void(std::vector<ImageRecord>)> cb) {
  scan(images_, std::move(pred), opts, std::move(cb));
}

void InformationService::query_futures(
    FuturePredicate pred, QueryOptions opts,
    std::function<void(std::vector<VmFutureRecord>)> cb) {
  scan(futures_, std::move(pred), opts, std::move(cb));
}

void InformationService::query_placements(FuturePredicate fpred, ImagePredicate ipred,
                                          QueryOptions opts,
                                          std::function<void(std::vector<Placement>)> cb) {
  // Split the time bound across the two scans of the join.
  QueryOptions half = opts;
  half.time_bound = opts.time_bound / 2.0;
  query_futures(
      [fpred](const VmFutureRecord& f) {
        return f.up && f.active_instances < f.max_instances && fpred(f);
      },
      half,
      [this, ipred, half, cb = std::move(cb)](std::vector<VmFutureRecord> futures) mutable {
        query_images(ipred, half,
                     [futures = std::move(futures),
                      cb = std::move(cb)](std::vector<ImageRecord> images) mutable {
                       std::vector<Placement> out;
                       for (const auto& f : futures) {
                         for (const auto& i : images) {
                           out.push_back(Placement{f, i});
                         }
                       }
                       cb(std::move(out));
                     });
      });
}

std::vector<HostRecord> InformationService::hosts_in_zone(const std::string& zone) const {
  std::vector<HostRecord> out;
  for (const HostRecord& r : hosts_) {
    if (r.up && r.zone == zone) out.push_back(r);
  }
  return out;
}

std::optional<HostRecord> InformationService::lookup_host(const std::string& name) const {
  auto it = std::find_if(hosts_.begin(), hosts_.end(),
                         [&name](const HostRecord& r) { return r.name == name; });
  if (it == hosts_.end()) return std::nullopt;
  return *it;
}

std::optional<ImageRecord> InformationService::lookup_image(
    const std::string& name) const {
  auto it = std::find_if(images_.begin(), images_.end(),
                         [&name](const ImageRecord& r) { return r.name == name; });
  if (it == images_.end()) return std::nullopt;
  return *it;
}

std::optional<VmRecord> InformationService::lookup_vm(const std::string& name) const {
  auto it = std::find_if(vms_.begin(), vms_.end(),
                         [&name](const VmRecord& r) { return r.name == name; });
  if (it == vms_.end()) return std::nullopt;
  return *it;
}

}  // namespace vmgrid::middleware
