#include "middleware/scheduler_service.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "middleware/grid.hpp"
#include "middleware/testbed.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"

namespace vmgrid::middleware {

const char* to_string(PlacementPolicy p) {
  switch (p) {
    case PlacementPolicy::kRandom: return "random";
    case PlacementPolicy::kLeastLoaded: return "least-loaded";
    case PlacementPolicy::kPredictedRuntime: return "predicted-runtime";
  }
  return "?";
}

SchedulerService::SchedulerService(Grid& grid, SchedulerServiceParams params)
    : grid_{grid}, params_{params} {}

SchedulerService::~SchedulerService() = default;

void SchedulerService::add_worker_host(ComputeServer& server,
                                       const vm::VmImageSpec& image) {
  auto w = std::make_unique<Worker>();
  w->server = &server;
  w->image = image;
  w->sensor = std::make_unique<rps::HostLoadSensor>(
      grid_.simulation(), server.host().cpu(), params_.sensor_period);
  w->sensor->start();
  workers_.push_back(std::move(w));
}

std::size_t SchedulerService::running_jobs() const { return running_; }

void SchedulerService::submit(const std::string& owner, workload::TaskSpec spec,
                              JobCallback cb) {
  if (params_.max_queued_jobs > 0 && queue_.size() >= params_.max_queued_jobs) {
    // Reject at the door: an unbounded batch queue converts overload
    // into unbounded wait times for everyone, including jobs that would
    // otherwise have met their deadline.
    ++jobs_shed_;
    grid_.simulation().metrics().counter("scheduler.jobs_shed").inc();
    BatchJobResult r;
    r.status = OverloadedError("queue full").at("scheduler", "submit");
    record_error(grid_.simulation().metrics(), r.status);
    grid_.simulation().schedule_after(sim::Duration::micros(5),
                                      [cb = std::move(cb), r = std::move(r)] { cb(r); });
    return;
  }
  PendingJob job;
  job.owner = owner;
  job.spec = std::move(spec);
  job.cb = std::move(cb);
  job.submitted = grid_.simulation().now();
  // Root-or-continue: the job's whole life (queue wait, dispatch, run)
  // hangs off one span on the shared "scheduler" track.
  auto& sim = grid_.simulation();
  job.span = std::make_shared<obs::Span>(sim, "scheduler.job", "scheduler",
                                         sim.trace().current(), "scheduler");
  job.span->arg("owner", owner);
  queue_.push_back(std::move(job));
  grid_.simulation().metrics().counter("scheduler.jobs_submitted").inc();
  update_gauges();
  pump();
}

void SchedulerService::update_gauges() {
  auto& m = grid_.simulation().metrics();
  m.gauge("scheduler.queue_depth").set(static_cast<double>(queue_.size()));
  m.gauge("scheduler.running_jobs").set(static_cast<double>(running_));
}

void SchedulerService::ensure_worker_vm(Worker& w) {
  if (w.vmachine != nullptr || w.instantiating) return;
  w.instantiating = true;
  InstantiateOptions opts;
  opts.config = testbed::paper_vm("worker-" + w.server->name());
  opts.image = w.image;
  opts.mode = params_.worker_start;
  opts.access = params_.worker_access;
  w.server->instantiate(opts, [this, &w](vm::VirtualMachine* vmachine,
                                         InstantiationStats stats) {
    w.instantiating = false;
    if (vmachine == nullptr) {
      VMGRID_LOG(grid_.simulation(), kWarn, "scheduler",
                 "worker VM instantiation failed on "
                     << w.server->name() << ": " << stats.status.to_string());
      return;
    }
    w.vmachine = vmachine;
    pump();
  });
}

SchedulerService::Worker* SchedulerService::pick_worker(const PendingJob& job) {
  std::vector<Worker*> candidates;
  for (auto& w : workers_) {
    if (w->busy_slots < params_.slots_per_host) candidates.push_back(w.get());
  }
  if (candidates.empty()) return nullptr;

  switch (params_.policy) {
    case PlacementPolicy::kRandom:
      return candidates[grid_.simulation().rng().index(candidates.size())];
    case PlacementPolicy::kLeastLoaded: {
      auto it = std::min_element(candidates.begin(), candidates.end(),
                                 [](Worker* a, Worker* b) {
                                   return a->server->host().cpu().total_demand() <
                                          b->server->host().cpu().total_demand();
                                 });
      return *it;
    }
    case PlacementPolicy::kPredictedRuntime: {
      Worker* best = nullptr;
      double best_eta = std::numeric_limits<double>::infinity();
      for (Worker* w : candidates) {
        const rps::RunningTimePredictor rp{std::make_shared<rps::ArPredictor>(8),
                                           w->server->host().params().ncpus};
        const double eta =
            rp.predict_runtime(w->sensor->series(), job.spec.total_native_seconds());
        if (eta < best_eta) {
          best_eta = eta;
          best = w;
        }
      }
      return best;
    }
  }
  return candidates.front();
}

void SchedulerService::pump() {
  obs::SimProfiler::Scope prof{"scheduler.pump"};
  while (!queue_.empty()) {
    Worker* w = pick_worker(queue_.front());
    if (w == nullptr) return;  // all slots busy; a completion re-pumps
    if (w->vmachine == nullptr) {
      ensure_worker_vm(*w);
      // If no other worker can take the job now, wait for the VM.
      bool any_ready = false;
      for (auto& other : workers_) {
        if (other->vmachine != nullptr && other->busy_slots < params_.slots_per_host) {
          any_ready = true;
          break;
        }
      }
      if (!any_ready) return;
      // Re-pick among ready workers only (the chosen one is warming up).
      Worker* ready = nullptr;
      for (auto& other : workers_) {
        if (other->vmachine != nullptr && other->busy_slots < params_.slots_per_host) {
          ready = other.get();
          break;
        }
      }
      w = ready;
    }
    PendingJob job = std::move(queue_.front());
    queue_.pop_front();
    dispatch(*w, std::move(job));
  }
}

void SchedulerService::dispatch(Worker& w, PendingJob job) {
  ++w.busy_slots;
  ++running_;
  update_gauges();
  const auto started = grid_.simulation().now();
  const auto submitted = job.submitted;
  const std::string owner = job.owner;
  auto cb = std::move(job.cb);
  auto span = job.span;
  span->arg("host", w.server->name());
  // The worker VM reads the ambient trace into the task's I/O context.
  obs::ScopedTraceContext scope{grid_.simulation().trace(), span->context()};
  w.vmachine->run_task(
      std::move(job.spec),
      [this, &w, started, submitted, owner, span, cb = std::move(cb)](vm::TaskResult r) {
        --w.busy_slots;
        --running_;
        grid_.simulation().metrics().counter("scheduler.jobs_completed").inc();
        update_gauges();
        grid_.accounting().charge_cpu(owner, r.total_cpu_seconds());
        grid_.accounting().count_task(owner);
        BatchJobResult out;
        if (r.ok()) {
          out.status = {};
        } else {
          out.status = Status{r.status.code(), "job failed"}
                           .at("scheduler", "dispatch")
                           .caused_by(r.status);
          record_error(grid_.simulation().metrics(), out.status);
        }
        out.host = w.server->name();
        out.queue_wait = started - submitted;
        out.run_time = r.wall;
        out.total = grid_.simulation().now() - submitted;
        span->set_status(out.status);
        span->end();
        cb(std::move(out));
        pump();
      });
}

}  // namespace vmgrid::middleware
