#include "middleware/constraint_lang.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <utility>

namespace vmgrid::middleware {

const char* to_string(SchedulerKind k) {
  switch (k) {
    case SchedulerKind::kFairShare: return "fair";
    case SchedulerKind::kWfq: return "wfq";
    case SchedulerKind::kLottery: return "lottery";
    case SchedulerKind::kPriority: return "priority";
    case SchedulerKind::kRealTime: return "rt";
  }
  return "?";
}

const EntityRule* OwnerPolicy::find(const std::string& entity) const {
  auto it = std::find_if(rules.begin(), rules.end(),
                         [&entity](const EntityRule& r) { return r.entity == entity; });
  return it == rules.end() ? nullptr : &*it;
}

namespace {

struct Token {
  std::string text;
  std::size_t line;
};

std::vector<Token> tokenize(const std::string& src) {
  std::vector<Token> tokens;
  std::size_t line = 1;
  std::string cur;
  auto flush = [&] {
    if (!cur.empty()) {
      tokens.push_back(Token{cur, line});
      cur.clear();
    }
  };
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    if (c == '#') {  // line comment
      flush();
      while (i < src.size() && src[i] != '\n') ++i;
      ++line;
      continue;
    }
    if (c == '\n') {
      flush();
      ++line;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      flush();
      continue;
    }
    if (c == '{' || c == '}' || c == ';') {
      flush();
      tokens.push_back(Token{std::string{c}, line});
      continue;
    }
    cur.push_back(c);
  }
  flush();
  return tokens;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_{std::move(tokens)} {}

  ParseResult run() {
    parse_policy_block();
    ParseResult out;
    out.errors = std::move(errors_);
    if (out.errors.empty()) out.policy = std::move(policy_);
    return out;
  }

 private:
  [[nodiscard]] bool done() const { return pos_ >= tokens_.size(); }
  [[nodiscard]] const Token& peek() const { return tokens_[pos_]; }
  const Token& next() { return tokens_[pos_++]; }
  [[nodiscard]] std::size_t here() const {
    return done() ? (tokens_.empty() ? 1 : tokens_.back().line) : peek().line;
  }

  void error(std::string message) { errors_.push_back(ParseError{here(), std::move(message)}); }

  bool expect(const std::string& text) {
    if (done() || peek().text != text) {
      error("expected '" + text + "'" + (done() ? " at end of input" : ", got '" + peek().text + "'"));
      return false;
    }
    next();
    return true;
  }

  void skip_statement() {
    while (!done() && peek().text != ";" && peek().text != "}") next();
    if (!done() && peek().text == ";") next();
  }

  std::optional<double> parse_number(const std::string& t) {
    double value{};
    const auto* begin = t.data();
    const auto* end = t.data() + t.size();
    auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{} || ptr != end) return std::nullopt;
    return value;
  }

  std::optional<sim::Duration> parse_duration(const std::string& t) {
    // number followed by unit suffix: us / ms / s.
    std::size_t unit_pos = t.size();
    while (unit_pos > 0 && !std::isdigit(static_cast<unsigned char>(t[unit_pos - 1])) &&
           t[unit_pos - 1] != '.') {
      --unit_pos;
    }
    const std::string num = t.substr(0, unit_pos);
    const std::string unit = t.substr(unit_pos);
    const auto value = parse_number(num);
    if (!value) return std::nullopt;
    if (unit == "us") return sim::Duration::seconds(*value / 1e6);
    if (unit == "ms") return sim::Duration::seconds(*value / 1e3);
    if (unit == "s") return sim::Duration::seconds(*value);
    return std::nullopt;
  }

  /// Parse `key=value` and return value text, or nullopt.
  std::optional<std::string> parse_kv(const std::string& token, const std::string& key) {
    const auto prefix = key + "=";
    if (token.rfind(prefix, 0) != 0) return std::nullopt;
    return token.substr(prefix.size());
  }

  EntityRule& rule_for(const std::string& entity) {
    auto it = std::find_if(policy_.rules.begin(), policy_.rules.end(),
                           [&entity](const EntityRule& r) { return r.entity == entity; });
    if (it != policy_.rules.end()) return *it;
    EntityRule fresh;
    fresh.entity = entity;
    policy_.rules.push_back(std::move(fresh));
    return policy_.rules.back();
  }

  void parse_policy_block() {
    if (!expect("policy")) return;
    if (!done() && peek().text != "{") policy_.name = next().text;
    if (!expect("{")) return;
    while (!done() && peek().text != "}") parse_statement();
    expect("}");
    if (!done()) error("unexpected trailing input '" + peek().text + "'");
  }

  void parse_statement() {
    const Token verb = next();
    if (verb.text == "scheduler") {
      parse_scheduler();
    } else if (verb.text == "reserve") {
      parse_entity_number([](EntityRule& r, double v) { r.reservation = v; },
                          "reserve", 0.0, 1.0);
    } else if (verb.text == "rt") {
      parse_rt();
    } else if (verb.text == "shares") {
      parse_entity_number(
          [](EntityRule& r, double v) { r.tickets = static_cast<std::uint32_t>(v); },
          "shares", 1.0, 1e9);
    } else if (verb.text == "weight") {
      parse_entity_number([](EntityRule& r, double v) { r.weight = v; }, "weight",
                          1e-9, 1e9);
    } else if (verb.text == "nice") {
      parse_entity_number([](EntityRule& r, double v) { r.nice = static_cast<int>(v); },
                          "nice", -20.0, 19.0);
    } else if (verb.text == "dutycycle") {
      parse_dutycycle();
    } else if (verb.text == "cap") {
      parse_entity_number([](EntityRule& r, double v) { r.cap = v; }, "cap", 0.0, 1.0);
    } else if (verb.text == "limit") {
      parse_limit();
    } else {
      error("unknown statement '" + verb.text + "'");
      skip_statement();
    }
  }

  void parse_scheduler() {
    if (done()) {
      error("scheduler: missing kind");
      return;
    }
    const std::string kind = next().text;
    if (kind == "fair") {
      policy_.scheduler = SchedulerKind::kFairShare;
    } else if (kind == "wfq") {
      policy_.scheduler = SchedulerKind::kWfq;
    } else if (kind == "lottery") {
      policy_.scheduler = SchedulerKind::kLottery;
    } else if (kind == "priority") {
      policy_.scheduler = SchedulerKind::kPriority;
    } else if (kind == "rt") {
      policy_.scheduler = SchedulerKind::kRealTime;
    } else {
      error("unknown scheduler kind '" + kind + "'");
    }
    expect(";");
  }

  template <typename Apply>
  void parse_entity_number(Apply apply, const std::string& what, double lo, double hi) {
    if (done()) {
      error(what + ": missing entity");
      return;
    }
    const std::string entity = next().text;
    if (done()) {
      error(what + ": missing value");
      return;
    }
    const auto value = parse_number(next().text);
    if (!value) {
      error(what + ": value is not a number");
      skip_statement();
      return;
    }
    if (*value < lo || *value > hi) {
      error(what + ": value out of range [" + std::to_string(lo) + ", " +
            std::to_string(hi) + "]");
      skip_statement();
      return;
    }
    apply(rule_for(entity), *value);
    expect(";");
  }

  void parse_rt() {
    if (done()) {
      error("rt: missing entity");
      return;
    }
    const std::string entity = next().text;
    std::optional<sim::Duration> slice, period;
    while (!done() && peek().text != ";" && peek().text != "}") {
      const std::string t = next().text;
      if (auto v = parse_kv(t, "slice")) {
        slice = parse_duration(*v);
        if (!slice) error("rt: bad slice duration '" + *v + "'");
      } else if (auto v2 = parse_kv(t, "period")) {
        period = parse_duration(*v2);
        if (!period) error("rt: bad period duration '" + *v2 + "'");
      } else {
        error("rt: unexpected token '" + t + "'");
      }
    }
    expect(";");
    if (!slice || !period) {
      error("rt: requires slice= and period=");
      return;
    }
    if (*period <= sim::Duration::zero() || *slice > *period) {
      error("rt: slice must not exceed period");
      return;
    }
    rule_for(entity).reservation = *slice / *period;
  }

  void parse_dutycycle() {
    if (done()) {
      error("dutycycle: missing entity");
      return;
    }
    const std::string entity = next().text;
    if (done()) {
      error("dutycycle: missing fraction");
      return;
    }
    const auto duty = parse_number(next().text);
    if (!duty || *duty < 0.0 || *duty > 1.0) {
      error("dutycycle: fraction must be in [0, 1]");
      skip_statement();
      return;
    }
    auto& rule = rule_for(entity);
    rule.duty = *duty;
    while (!done() && peek().text != ";" && peek().text != "}") {
      const std::string t = next().text;
      if (auto v = parse_kv(t, "period")) {
        if (auto d = parse_duration(*v)) {
          rule.duty_period = *d;
        } else {
          error("dutycycle: bad period '" + *v + "'");
        }
      } else {
        error("dutycycle: unexpected token '" + t + "'");
      }
    }
    expect(";");
  }

  void parse_limit() {
    if (done() || next().text != "guest_total") {
      error("limit: only 'guest_total' is supported");
      skip_statement();
      return;
    }
    if (done()) {
      error("limit: missing fraction");
      return;
    }
    const auto value = parse_number(next().text);
    if (!value || *value < 0.0 || *value > 1.0) {
      error("limit: fraction must be in [0, 1]");
      skip_statement();
      return;
    }
    policy_.guest_total_limit = *value;
    expect(";");
  }

  std::vector<Token> tokens_;
  std::size_t pos_{0};
  OwnerPolicy policy_;
  std::vector<ParseError> errors_;
};

}  // namespace

ParseResult parse_policy(const std::string& source) {
  return Parser{tokenize(source)}.run();
}

}  // namespace vmgrid::middleware
