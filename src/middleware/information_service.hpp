#pragma once

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "image/chunk_directory.hpp"
#include "net/address.hpp"
#include "sim/simulation.hpp"
#include "vm/vm_image.hpp"

namespace vmgrid::host {
class PhysicalHost;
}
namespace vmgrid::vm {
class Vmm;
}

namespace vmgrid::middleware {

class ImageServer;
class ComputeServer;

/// Row in the hosts table (an MDS/URGIS-style resource record).
struct HostRecord {
  std::string name;
  net::NodeId node{};
  double ncpus{0};
  std::uint32_t cpu_mhz{0};
  std::uint64_t memory_mb{0};
  std::uint64_t free_memory_mb{0};
  std::string os;
  double current_load{0.0};
  ComputeServer* binding{nullptr};  // middleware-side handle, not serialized
  bool up{true};                    // cleared while the host is crashed
  std::string zone;                 // routing-zone name; empty for flat hosts
};

/// Row in the images table.
struct ImageRecord {
  std::string name;
  std::string os;
  std::uint64_t disk_bytes{0};
  bool has_memory_snapshot{false};
  net::NodeId server_node{};
  vm::VmImageSpec spec;
  ImageServer* binding{nullptr};
};

/// A VM future (§3.2): a host advertising how many VMs of what size it
/// is willing to instantiate.
struct VmFutureRecord {
  std::string host_name;
  net::NodeId node{};
  std::uint32_t max_instances{0};
  std::uint32_t active_instances{0};
  std::uint64_t max_memory_mb{0};
  ComputeServer* binding{nullptr};
  bool up{true};  // down futures never match placement queries
};

/// Row in the (dynamic) VM instances table.
struct VmRecord {
  std::string name;
  std::string host_name;
  std::string owner;
  std::string state;
  net::IpAddress ip{};
};

struct QueryOptions {
  /// Paper model: queries are non-deterministic and return partial
  /// results within a bounded amount of time. The bound caps how many
  /// records the service can examine (examination order is randomized).
  sim::Duration time_bound{sim::Duration::millis(50)};
  std::size_t max_results{16};
};

/// A placement candidate produced by the futures ⋈ images join.
struct Placement {
  VmFutureRecord future;
  ImageRecord image;
};

/// Grid information service: relational tables over hosts, images, VM
/// futures, and live VM instances, queried with predicates and joins
/// under a time bound.
class InformationService {
 public:
  explicit InformationService(sim::Simulation& s,
                              sim::Duration per_record_cost = sim::Duration::micros(25))
      : sim_{s}, per_record_cost_{per_record_cost} {}

  // --- registration (performed by middleware components) ---
  void register_host(HostRecord rec);
  void update_host(const std::string& name, double load, std::uint64_t free_mb);
  void unregister_host(const std::string& name);
  /// Flip a crashed/recovered host's records (host + future) in place,
  /// keeping registration so recovery is a single flag flip too.
  void set_host_up(const std::string& name, bool host_up);

  /// Verified replace: an image record is keyed by (name, server_node),
  /// so a server re-advertising its own image updates in place while the
  /// same image on a *different* server registers as a separate replica.
  void register_image(ImageRecord rec);
  void unregister_image(const std::string& name);

  /// Chunk availability table for swarm image distribution: image servers
  /// seed it at manifest ingest, fetchers append as chunks land, and the
  /// swarm distributor's source selection reads it.
  [[nodiscard]] image::ChunkDirectory& chunks() { return chunk_dir_; }
  [[nodiscard]] const image::ChunkDirectory& chunks() const { return chunk_dir_; }

  void register_future(VmFutureRecord rec);
  void update_future(const std::string& host_name, std::uint32_t active);

  void register_vm(VmRecord rec);
  void update_vm_state(const std::string& name, const std::string& state);
  void unregister_vm(const std::string& name);

  // --- queries ---
  using HostPredicate = std::function<bool(const HostRecord&)>;
  using ImagePredicate = std::function<bool(const ImageRecord&)>;
  using FuturePredicate = std::function<bool(const VmFutureRecord&)>;

  void query_hosts(HostPredicate pred, QueryOptions opts,
                   std::function<void(std::vector<HostRecord>)> cb);
  void query_images(ImagePredicate pred, QueryOptions opts,
                    std::function<void(std::vector<ImageRecord>)> cb);
  void query_futures(FuturePredicate pred, QueryOptions opts,
                     std::function<void(std::vector<VmFutureRecord>)> cb);

  /// Join query: futures with spare capacity × images, both filtered,
  /// subject to the combined time bound.
  void query_placements(FuturePredicate fpred, ImagePredicate ipred, QueryOptions opts,
                        std::function<void(std::vector<Placement>)> cb);

  /// Hosts registered under a routing zone (HostRecord.zone), up hosts
  /// only. Synchronous registry-side lookup — zone scoping is how a
  /// scheduler works a 10k-host grid without time-bounded scans over the
  /// whole table: pick a zone, then query within it.
  [[nodiscard]] std::vector<HostRecord> hosts_in_zone(const std::string& zone) const;

  [[nodiscard]] std::optional<HostRecord> lookup_host(const std::string& name) const;
  [[nodiscard]] std::optional<ImageRecord> lookup_image(const std::string& name) const;
  [[nodiscard]] std::optional<VmRecord> lookup_vm(const std::string& name) const;

  [[nodiscard]] std::size_t host_count() const { return hosts_.size(); }
  [[nodiscard]] std::size_t image_count() const { return images_.size(); }
  [[nodiscard]] std::size_t future_count() const { return futures_.size(); }
  [[nodiscard]] std::size_t vm_count() const { return vms_.size(); }

 private:
  /// Shared scan machinery: examine up to budget records in a random
  /// order, collect matches, deliver after the time actually spent.
  template <typename Rec, typename Pred>
  void scan(const std::vector<Rec>& table, Pred pred, QueryOptions opts,
            std::function<void(std::vector<Rec>)> cb);

  sim::Simulation& sim_;
  sim::Duration per_record_cost_;
  std::vector<HostRecord> hosts_;
  std::vector<ImageRecord> images_;
  std::vector<VmFutureRecord> futures_;
  std::vector<VmRecord> vms_;
  image::ChunkDirectory chunk_dir_;
};

}  // namespace vmgrid::middleware
