#include "middleware/archive.hpp"

#include <algorithm>
#include <utility>

#include "middleware/grid.hpp"

namespace vmgrid::middleware {

ArchiveService::ArchiveService(Grid& grid, ImageServer& store, ArchiveParams params)
    : grid_{grid}, store_{store}, params_{params} {
  sweep_event_ = grid_.simulation().schedule_weak_after(params_.sweep_interval, [this] {
    sweep();
  });
}

ArchiveService::~ArchiveService() { grid_.simulation().cancel(sweep_event_); }

void ArchiveService::hibernate(ComputeServer& server, vm::VirtualMachine& vmachine,
                               const std::string& owner, HibernateCallback cb) {
  if (vmachine.state() != vm::VmPowerState::kRunning) {
    Status st =
        FailedPreconditionError("vm is not running").at("archive", "hibernate");
    record_error(grid_.simulation().metrics(), st);
    grid_.simulation().schedule_after(
        sim::Duration::micros(1),
        [cb = std::move(cb), st = std::move(st)]() mutable { cb(std::move(st)); });
    return;
  }
  const CheckpointId id{next_id_++};
  Stored stored;
  stored.info.id = id;
  stored.info.owner = owner;
  stored.info.vm_name = vmachine.config().name;
  stored.info.state_bytes = vmachine.migratable_state_bytes();
  stored.info.tier = CheckpointTier::kDisk;
  stored.config = vmachine.config();
  stored.image = vmachine.image();

  // Suspend writes memory+device state to the host's file system; the
  // paused guest computation is captured into the checkpoint record.
  vmachine.suspend([this, id, &server, &vmachine, stored = std::move(stored),
                    cb = std::move(cb)]() mutable {
    stored.tasks = vmachine.release_guest_tasks();
    const std::string local_state = vmachine.suspend_file();
    stored.info.created = grid_.simulation().now();
    stored.info.last_touched = stored.info.created;
    // Upload the serialized state to the archive store, then retire the
    // source instance.
    grid_.ftp().transfer(
        server.host().fs(), server.node(), local_state, store_.fs(), store_.node(),
        state_file(id),
        [this, id, &server, &vmachine, stored = std::move(stored),
         cb = std::move(cb)](FtpTransferResult r) mutable {
          if (!r.ok()) {
            Status st = Status{r.status.code(), "state upload failed"}
                            .at("archive", "hibernate")
                            .caused_by(std::move(r.status));
            record_error(grid_.simulation().metrics(), st);
            cb(std::move(st));
            return;
          }
          server.host().fs().remove(vmachine.suspend_file());
          server.destroy_vm(vmachine);
          checkpoints_.emplace(id.value(), std::move(stored));
          cb(id);
        });
  });
}

void ArchiveService::thaw(CheckpointId id, ComputeServer& server, StateAccess access,
                          net::NodeId image_server_node, ThawCallback cb) {
  auto it = checkpoints_.find(id.value());
  if (it == checkpoints_.end()) {
    Status st = NotFoundError("no such checkpoint: " + std::to_string(id.value()))
                    .at("archive", "thaw");
    record_error(grid_.simulation().metrics(), st);
    grid_.simulation().schedule_after(
        sim::Duration::micros(1),
        [cb = std::move(cb), st = std::move(st)]() mutable { cb(nullptr, std::move(st)); });
    return;
  }
  if (!server.up()) {
    // Fail before the (possibly tape-recall) pipeline starts: restoring
    // onto a dead host would stage state nowhere and strand the VM.
    Status st = UnavailableError("target server down").at("archive", "thaw");
    record_error(grid_.simulation().metrics(), st);
    grid_.simulation().schedule_after(
        sim::Duration::micros(1),
        [cb = std::move(cb), st = std::move(st)]() mutable { cb(nullptr, std::move(st)); });
    return;
  }
  Stored& stored = it->second;
  stored.info.last_touched = grid_.simulation().now();

  auto start_download = [this, id, &server, &stored, access, image_server_node,
                         cb = std::move(cb)]() mutable {
    // Pull the serialized state back to the target host.
    grid_.ftp().transfer(
        store_.fs(), store_.node(), state_file(id), server.host().fs(), server.node(),
        state_file(id),
        [this, id, &server, &stored, access, image_server_node,
         cb = std::move(cb)](FtpTransferResult r) mutable {
          if (!r.ok()) {
            Status st = Status{r.status.code(), "state download failed"}
                            .at("archive", "thaw")
                            .caused_by(std::move(r.status));
            record_error(grid_.simulation().metrics(), st);
            cb(nullptr, std::move(st));
            return;
          }
          InstantiateOptions opts;
          opts.config = stored.config;
          opts.image = stored.image;
          opts.access = access;
          opts.image_server_node = image_server_node;
          server.prepare_storage(
              opts, [this, id, &server, &stored, cb = std::move(cb)](
                        Status st, vm::VmStorage storage) mutable {
                if (!st.ok()) {
                  Status why = Status{st.code(), "storage prep failed"}
                                   .at("archive", "thaw")
                                   .caused_by(std::move(st));
                  record_error(grid_.simulation().metrics(), why);
                  cb(nullptr, std::move(why));
                  return;
                }
                vm::VirtualMachine* fresh = nullptr;
                try {
                  fresh = &server.vmm().create_vm(stored.config, stored.image,
                                                  std::move(storage));
                } catch (const std::exception& e) {
                  Status why =
                      FailedPreconditionError(e.what()).at("archive", "thaw");
                  record_error(grid_.simulation().metrics(), why);
                  cb(nullptr, std::move(why));
                  return;
                }
                // The downloaded state file backs the resume read.
                auto& hfs = server.host().fs();
                const auto bytes = stored.info.state_bytes;
                if (!hfs.exists(fresh->suspend_file())) {
                  hfs.create(fresh->suspend_file(), bytes);
                }
                fresh->adopt_suspended_state(/*in_memory=*/false);
                fresh->adopt_guest_tasks(std::move(stored.tasks));
                stored.tasks.clear();
                fresh->resume([this, id, fresh, cb = std::move(cb)] {
                  checkpoints_.erase(id.value());
                  cb(fresh, {});
                });
              });
        });
  };

  if (stored.info.tier == CheckpointTier::kTape) {
    // Tape recall: mount, then stream back to the archive's disk at tape
    // bandwidth before the normal download can begin.
    const auto stream = sim::Duration::seconds(
        static_cast<double>(stored.info.state_bytes) / params_.tape_bandwidth_bps);
    grid_.simulation().schedule_after(
        params_.tape_mount_time + stream,
        [this, id, &stored, start_download = std::move(start_download)]() mutable {
          stored.info.tier = CheckpointTier::kDisk;
          // Re-materialize the staged copy on the archive's disk.
          store_.fs().create(state_file(id), stored.info.state_bytes);
          start_download();
        });
    return;
  }
  start_download();
}

bool ArchiveService::remove(CheckpointId id) {
  auto it = checkpoints_.find(id.value());
  if (it == checkpoints_.end()) return false;
  store_.fs().remove(state_file(id));
  // Aborting the captured tasks ends their life cycle with the image.
  for (auto& t : it->second.tasks) t.task->abort();
  checkpoints_.erase(it);
  return true;
}

std::optional<CheckpointInfo> ArchiveService::info(CheckpointId id) const {
  auto it = checkpoints_.find(id.value());
  if (it == checkpoints_.end()) return std::nullopt;
  return it->second.info;
}

std::vector<CheckpointInfo> ArchiveService::list() const {
  std::vector<CheckpointInfo> out;
  out.reserve(checkpoints_.size());
  for (const auto& [id, s] : checkpoints_) out.push_back(s.info);
  std::sort(out.begin(), out.end(),
            [](const CheckpointInfo& a, const CheckpointInfo& b) { return a.id < b.id; });
  return out;
}

std::uint64_t ArchiveService::disk_bytes() const {
  std::uint64_t n = 0;
  for (const auto& [id, s] : checkpoints_) {
    if (s.info.tier == CheckpointTier::kDisk) n += s.info.state_bytes;
  }
  return n;
}

std::uint64_t ArchiveService::tape_bytes() const {
  std::uint64_t n = 0;
  for (const auto& [id, s] : checkpoints_) {
    if (s.info.tier == CheckpointTier::kTape) n += s.info.state_bytes;
  }
  return n;
}

void ArchiveService::sweep() {
  const auto now = grid_.simulation().now();
  for (auto& [id, s] : checkpoints_) {
    if (s.info.tier == CheckpointTier::kDisk &&
        now - s.info.last_touched >= params_.tape_after) {
      s.info.tier = CheckpointTier::kTape;
      // The disk copy is released once the tape copy exists.
      store_.fs().remove(state_file(CheckpointId{id}));
    }
  }
  sweep_event_ = grid_.simulation().schedule_weak_after(params_.sweep_interval,
                                                   [this] { sweep(); });
}

}  // namespace vmgrid::middleware
