#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace vmgrid::sim {
class Simulation;
}

namespace vmgrid::middleware {

/// Operations a logical user may be authorized for.
enum class GridOperation {
  kInstantiateVm,
  kStoreImage,
  kMountData,
  kMigrateVm,
  kHibernateVm,
};

[[nodiscard]] const char* to_string(GridOperation op);

/// PUNCH-style logical user accounts (§3.1, Kapadia/Figueiredo/Fortes):
/// grid users are *logical* identities leased onto a site's small pool
/// of physical accounts only for the duration of a session. The mapping
/// history is retained for accountability — the property that lets the
/// site audit "which logical user held physical account pX at time t".
///
/// VMs subsume most of this mechanism (each guest gets a whole OS), but
/// the service remains the glue between site accounts and grid identity,
/// and the capability table is where per-user policy lives.
class LogicalAccountService {
 public:
  explicit LogicalAccountService(sim::Simulation& s,
                                 std::vector<std::string> physical_pool);

  /// Lease a physical account for a logical user. A user holding a lease
  /// gets the same account back (sessions of one user share it). Returns
  /// nullopt when the pool is exhausted.
  [[nodiscard]] std::optional<std::string> acquire(const std::string& logical_user);

  /// Release the user's lease (no-op if none held).
  void release(const std::string& logical_user);

  [[nodiscard]] std::optional<std::string> physical_for(
      const std::string& logical_user) const;
  [[nodiscard]] std::size_t pool_size() const { return pool_.size(); }
  [[nodiscard]] std::size_t active_leases() const { return leases_.size(); }

  // --- capabilities ---
  void grant(const std::string& logical_user, GridOperation op);
  void revoke(const std::string& logical_user, GridOperation op);
  /// Everyone may do `op` unless explicitly restricted for that op.
  void restrict_operation(GridOperation op);
  [[nodiscard]] bool authorize(const std::string& logical_user, GridOperation op) const;

  // --- audit ---
  struct AuditEntry {
    std::string logical_user;
    std::string physical_account;
    sim::TimePoint from{};
    std::optional<sim::TimePoint> until;
  };
  [[nodiscard]] const std::vector<AuditEntry>& audit_log() const { return audit_; }
  /// Who held `physical_account` at time `t`?
  [[nodiscard]] std::optional<std::string> holder_at(const std::string& physical_account,
                                                     sim::TimePoint t) const;

 private:
  sim::Simulation& sim_;
  std::vector<std::string> pool_;
  std::unordered_set<std::string> free_;
  std::unordered_map<std::string, std::string> leases_;  // logical -> physical
  std::unordered_map<std::string, std::unordered_set<int>> grants_;
  std::unordered_set<int> restricted_;
  std::vector<AuditEntry> audit_;
};

}  // namespace vmgrid::middleware
