#pragma once

#include <functional>
#include <memory>

#include "net/network.hpp"
#include "net/tunnel.hpp"
#include "sim/stats.hpp"

namespace vmgrid::middleware {

struct ConsoleParams {
  std::uint64_t keystroke_bytes{64};
  std::uint64_t update_bytes{2048};  // encoded screen delta per echo
  sim::Duration guest_render{sim::Duration::millis(3)};
};

/// §4 step 6: "if it is an interactive application, a handle is provided
/// back to the user (e.g. a login session, or a virtual display session
/// such as VNC)". A ConsoleSession models that display channel: a
/// keystroke travels client → VM, the guest renders, and the screen
/// update travels back. Optionally rides an Ethernet-over-SSH tunnel
/// (the §3.3 scenario-2 path) instead of the raw network.
class ConsoleSession {
 public:
  ConsoleSession(net::Network& net, net::NodeId client, net::NodeId vm_host,
                 ConsoleParams params = {}, net::EthernetTunnel* tunnel = nullptr);

  using EchoCallback = std::function<void(sim::Duration)>;

  /// One keypress → render → screen-update round trip.
  void keystroke(EchoCallback cb);

  /// Type a burst of `count` keystrokes back to back; the callback fires
  /// after the last echo with per-keystroke latency statistics.
  void type_burst(std::size_t count, std::function<void(sim::Accumulator)> cb);

  [[nodiscard]] const sim::Accumulator& echo_stats() const { return stats_; }

 private:
  void send(bool to_vm, std::uint64_t bytes, net::TransferCallback cb);

  net::Network& net_;
  net::NodeId client_;
  net::NodeId vm_host_;
  ConsoleParams params_;
  net::EthernetTunnel* tunnel_;
  sim::Accumulator stats_;
};

}  // namespace vmgrid::middleware
