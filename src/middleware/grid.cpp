#include "middleware/grid.hpp"

#include <utility>

#include "middleware/session.hpp"

namespace vmgrid::middleware {

Grid::Grid(std::uint64_t seed)
    : sim_{seed},
      net_{sim_},
      fabric_{net_},
      gvfs_{fabric_},
      info_{sim_},
      ftp_{sim_, net_} {
  sessions_ = std::make_unique<SessionManager>(*this);
}

Grid::~Grid() = default;

net::LinkParams Grid::lan_link() {
  return net::LinkParams{sim::Duration::micros(200), 10e6};
}

net::LinkParams Grid::wan_link(sim::Duration one_way, double bandwidth_bps) {
  return net::LinkParams{one_way, bandwidth_bps};
}

net::NodeId Grid::add_router(const std::string& name) { return net_.add_node(name); }

net::NodeId Grid::add_client(const std::string& name) { return net_.add_node(name); }

void Grid::connect(net::NodeId a, net::NodeId b, net::LinkParams params) {
  net_.add_link(a, b, params);
}

net::ZoneId Grid::add_wan_zone(const std::string& name) {
  return net_.add_zone(name, wan_link());
}

net::ZoneId Grid::add_cluster_zone(const std::string& name, net::ZoneId wan) {
  return net_.add_zone(name, wan, wan_link(), lan_link());
}

ComputeServer& Grid::add_compute_server(ComputeServerParams params) {
  compute_.push_back(
      std::make_unique<ComputeServer>(sim_, net_, fabric_, gvfs_, std::move(params)));
  compute_.back()->publish(info_);
  return *compute_.back();
}

ComputeServer& Grid::add_compute_server(net::ZoneId zone, ComputeServerParams params) {
  compute_.push_back(
      std::make_unique<ComputeServer>(sim_, net_, fabric_, gvfs_, std::move(params)));
  // Enroll before publishing so the HostRecord carries the zone name.
  net_.assign_zone(compute_.back()->node(), zone);
  compute_.back()->publish(info_);
  return *compute_.back();
}

ImageServer& Grid::add_image_server(ImageServerParams params) {
  images_.push_back(std::make_unique<ImageServer>(sim_, net_, fabric_, std::move(params)));
  return *images_.back();
}

DataServer& Grid::add_data_server(DataServerParams params) {
  data_.push_back(std::make_unique<DataServer>(sim_, net_, fabric_, std::move(params)));
  return *data_.back();
}

std::vector<ComputeServer*> Grid::compute_servers() {
  std::vector<ComputeServer*> out;
  out.reserve(compute_.size());
  for (auto& c : compute_) out.push_back(c.get());
  return out;
}

}  // namespace vmgrid::middleware
