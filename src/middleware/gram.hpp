#pragma once

#include <functional>
#include <string>

#include "core/status.hpp"
#include "net/rpc.hpp"

namespace vmgrid::middleware {

/// Globus-2-era GRAM cost profile: GSI mutual authentication plus the
/// fork/exec of a per-job jobmanager process. Together with the RPC round
/// trips this reproduces the few-seconds `globusrun` overhead visible in
/// the paper's Table 2.
struct GramParams {
  sim::Duration auth_time{sim::Duration::millis(1400)};
  sim::Duration jobmanager_startup{sim::Duration::millis(1100)};
  /// Gatekeeper admission limit: jobs in flight (auth through executor
  /// completion) beyond this are rejected kOverloaded instead of forking
  /// yet another jobmanager. 0 = unlimited (historical behaviour).
  std::size_t max_active_jobs{0};
};

struct GramJobResult {
  /// OK once the job ran to completion; failures carry the gram-origin
  /// status whose cause chain reaches down to the executor or the RPC
  /// fabric (e.g. gram: globusrun failed <- rpc: deadline exceeded).
  Status status{StatusCode::kAborted, "job not run"};
  std::string output;
  sim::Duration elapsed{};

  [[nodiscard]] bool ok() const { return status.ok(); }
};

/// Server side: the gatekeeper. The hosting component (a compute server)
/// installs an executor that interprets RSL job descriptions; the
/// gatekeeper charges authentication + jobmanager costs around it.
class GramService {
 public:
  /// Registers gram.* methods on a shared per-node RPC server.
  GramService(net::RpcServer& server, GramParams params = {});

  using ExecutorDone = std::function<void(Status status, std::string output)>;
  using Executor = std::function<void(const std::string& rsl, ExecutorDone done)>;

  /// The executor runs once per submitted job, after auth + startup.
  void set_executor(Executor exec) { executor_ = std::move(exec); }

  [[nodiscard]] std::uint64_t jobs_run() const { return jobs_; }
  [[nodiscard]] std::uint64_t jobs_shed() const { return jobs_shed_; }
  [[nodiscard]] std::size_t active_jobs() const { return active_jobs_; }

 private:
  net::RpcServer& server_;
  GramParams params_;
  Executor executor_;
  std::uint64_t jobs_{0};
  std::uint64_t jobs_shed_{0};
  std::size_t active_jobs_{0};
};

/// Client side: `globusrun` — submit an RSL string to a gatekeeper node
/// and wait for the job to finish. The callback receives the job result
/// with wall-clock elapsed time measured exactly like the paper measured
/// `globusrun` (start of submission to completion).
class GramClient {
 public:
  GramClient(net::RpcFabric& fabric, net::NodeId self) : fabric_{fabric}, self_{self} {}

  using ResultCallback = std::function<void(GramJobResult)>;

  void globusrun(net::NodeId gatekeeper, const std::string& rsl, ResultCallback cb);
  /// Same, with an explicit RPC deadline/retry policy for the submission.
  void globusrun(net::NodeId gatekeeper, const std::string& rsl,
                 net::RpcCallOptions opts, ResultCallback cb);

  /// Liveness probe against the gatekeeper's gram.ping method. A down or
  /// crashed host never answers, so give `opts` a finite deadline. The
  /// single Status argument is OK on answer; a failure keeps the rpc
  /// origin (kTimeout, kUnavailable, ...) for the failure detector.
  using PingCallback = std::function<void(Status)>;
  void ping(net::NodeId gatekeeper, net::RpcCallOptions opts, PingCallback cb);

 private:
  net::RpcFabric& fabric_;
  net::NodeId self_;
};

}  // namespace vmgrid::middleware
