#include "middleware/schedule_compiler.hpp"

#include <algorithm>
#include <utility>

namespace vmgrid::middleware {

const CompiledEntity* CompiledSchedule::find(const std::string& entity) const {
  auto it = std::find_if(entities.begin(), entities.end(),
                         [&entity](const CompiledEntity& e) { return e.entity == entity; });
  return it == entities.end() ? nullptr : &*it;
}

std::unique_ptr<host::Scheduler> CompiledSchedule::make_scheduler() const {
  switch (scheduler) {
    case SchedulerKind::kFairShare: return std::make_unique<host::FairShareScheduler>();
    case SchedulerKind::kWfq: return std::make_unique<host::WfqScheduler>();
    case SchedulerKind::kLottery: return std::make_unique<host::LotteryScheduler>();
    case SchedulerKind::kPriority: return std::make_unique<host::PriorityScheduler>();
    case SchedulerKind::kRealTime: return std::make_unique<host::RealTimeScheduler>();
  }
  return std::make_unique<host::FairShareScheduler>();
}

CompiledSchedule compile_policy(const OwnerPolicy& policy, double ncpus,
                                double utilization_bound) {
  if (ncpus <= 0.0) throw CompileError{"compile_policy: ncpus must be positive"};

  CompiledSchedule out;
  out.scheduler = policy.scheduler;
  out.guest_total_limit = policy.guest_total_limit;

  double reserved = 0.0;
  for (const EntityRule& rule : policy.rules) {
    CompiledEntity e;
    e.entity = rule.entity;
    if (rule.reservation) {
      if (policy.scheduler != SchedulerKind::kRealTime) {
        throw CompileError{"entity '" + rule.entity +
                           "' has a reservation but the policy scheduler is not 'rt'"};
      }
      if (*rule.reservation > 1.0) {
        throw CompileError{"entity '" + rule.entity + "': reservation exceeds one CPU"};
      }
      e.attrs.reservation = *rule.reservation;
      reserved += *rule.reservation;
    }
    if (rule.tickets) e.attrs.tickets = *rule.tickets;
    if (rule.weight) e.attrs.weight = *rule.weight;
    if (rule.nice) e.attrs.nice = *rule.nice;
    if (rule.cap) e.attrs.demand_cap = *rule.cap;
    if (rule.duty) {
      e.duty = *rule.duty;
      e.duty_period = rule.duty_period;
      if (rule.duty_period <= sim::Duration::zero()) {
        throw CompileError{"entity '" + rule.entity + "': duty period must be positive"};
      }
    }
    out.entities.push_back(std::move(e));
  }

  out.total_reservation = reserved;
  if (reserved > utilization_bound * ncpus) {
    throw CompileError{"admission control failed: total reservation " +
                       std::to_string(reserved) + " exceeds " +
                       std::to_string(utilization_bound * ncpus) + " schedulable CPUs"};
  }
  if (policy.guest_total_limit && reserved > *policy.guest_total_limit * ncpus) {
    throw CompileError{"reservations exceed the policy's guest_total limit"};
  }
  return out;
}

ScheduleEnforcer::ScheduleEnforcer(sim::Simulation& s, host::CpuEngine& engine,
                                   CompiledSchedule schedule)
    : sim_{s}, engine_{engine}, schedule_{std::move(schedule)} {
  engine_.set_scheduler(schedule_.make_scheduler());
}

ScheduleEnforcer::~ScheduleEnforcer() {
  for (auto& b : bindings_) {
    if (b.duty) b.duty->stop();
  }
}

void ScheduleEnforcer::bind(const std::string& entity, host::ProcessId pid) {
  const CompiledEntity* e = schedule_.find(entity);
  if (e == nullptr) {
    throw CompileError{"ScheduleEnforcer::bind: unknown entity '" + entity + "'"};
  }
  engine_.set_attrs(pid, e->attrs);
  Binding b;
  b.entity = entity;
  b.pid = pid;
  if (e->duty) {
    b.duty = std::make_unique<host::DutyCycleController>(sim_, engine_, pid, *e->duty,
                                                         e->duty_period);
    b.duty->start();
  }
  bindings_.push_back(std::move(b));
}

void ScheduleEnforcer::unbind(const std::string& entity) {
  auto it = std::find_if(bindings_.begin(), bindings_.end(),
                         [&entity](const Binding& b) { return b.entity == entity; });
  if (it == bindings_.end()) return;
  if (it->duty) it->duty->stop();
  bindings_.erase(it);
}

}  // namespace vmgrid::middleware
