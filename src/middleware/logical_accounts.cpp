#include "middleware/logical_accounts.hpp"

#include <algorithm>

#include "sim/simulation.hpp"

namespace vmgrid::middleware {

const char* to_string(GridOperation op) {
  switch (op) {
    case GridOperation::kInstantiateVm: return "instantiate-vm";
    case GridOperation::kStoreImage: return "store-image";
    case GridOperation::kMountData: return "mount-data";
    case GridOperation::kMigrateVm: return "migrate-vm";
    case GridOperation::kHibernateVm: return "hibernate-vm";
  }
  return "?";
}

LogicalAccountService::LogicalAccountService(sim::Simulation& s,
                                             std::vector<std::string> physical_pool)
    : sim_{s}, pool_{std::move(physical_pool)} {
  for (const auto& p : pool_) free_.insert(p);
}

std::optional<std::string> LogicalAccountService::acquire(
    const std::string& logical_user) {
  if (auto it = leases_.find(logical_user); it != leases_.end()) {
    return it->second;  // idempotent: sessions of one user share the lease
  }
  if (free_.empty()) return std::nullopt;
  // Deterministic pick: the first pool entry that is free.
  auto pick = std::find_if(pool_.begin(), pool_.end(),
                           [this](const std::string& p) { return free_.contains(p); });
  const std::string account = *pick;
  free_.erase(account);
  leases_.emplace(logical_user, account);
  audit_.push_back(AuditEntry{logical_user, account, sim_.now(), std::nullopt});
  return account;
}

void LogicalAccountService::release(const std::string& logical_user) {
  auto it = leases_.find(logical_user);
  if (it == leases_.end()) return;
  for (auto rit = audit_.rbegin(); rit != audit_.rend(); ++rit) {
    if (rit->logical_user == logical_user && !rit->until.has_value()) {
      rit->until = sim_.now();
      break;
    }
  }
  free_.insert(it->second);
  leases_.erase(it);
}

std::optional<std::string> LogicalAccountService::physical_for(
    const std::string& logical_user) const {
  auto it = leases_.find(logical_user);
  if (it == leases_.end()) return std::nullopt;
  return it->second;
}

void LogicalAccountService::grant(const std::string& logical_user, GridOperation op) {
  grants_[logical_user].insert(static_cast<int>(op));
}

void LogicalAccountService::revoke(const std::string& logical_user, GridOperation op) {
  auto it = grants_.find(logical_user);
  if (it != grants_.end()) it->second.erase(static_cast<int>(op));
}

void LogicalAccountService::restrict_operation(GridOperation op) {
  restricted_.insert(static_cast<int>(op));
}

bool LogicalAccountService::authorize(const std::string& logical_user,
                                      GridOperation op) const {
  if (!restricted_.contains(static_cast<int>(op))) return true;
  auto it = grants_.find(logical_user);
  return it != grants_.end() && it->second.contains(static_cast<int>(op));
}

std::optional<std::string> LogicalAccountService::holder_at(
    const std::string& physical_account, sim::TimePoint t) const {
  for (const auto& e : audit_) {
    if (e.physical_account != physical_account) continue;
    const bool started = e.from <= t;
    const bool not_ended = !e.until.has_value() || t < *e.until;
    if (started && not_ended) return e.logical_user;
  }
  return std::nullopt;
}

}  // namespace vmgrid::middleware
