#include "middleware/session.hpp"

#include <algorithm>
#include <utility>

#include "middleware/grid.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace vmgrid::middleware {

// ---------------------------------------------------------------------------
// VmSession

void VmSession::run_task(workload::TaskSpec spec, vm::TaskCallback cb) {
  auto& grid = manager_->grid_;
  if (vm_ == nullptr) {
    // Dead session (host crashed, failover not finished): complete
    // asynchronously with failure instead of throwing, so fault-tolerant
    // campaigns get one uniform resubmission path.
    vm::TaskResult r;
    r.task = spec.name;
    r.status = UnavailableError("session dead awaiting failover").at("session", "run_task");
    record_error(grid.simulation().metrics(), r.status);
    grid.simulation().schedule_after(
        sim::Duration::micros(10),
        [cb = std::move(cb), r = std::move(r)]() mutable { cb(std::move(r)); });
    return;
  }
  auto& acct = grid.accounting();
  const std::string user = user_;
  const std::uint64_t id = next_task_id_++;
  pending_tasks_.emplace(id, PendingTask{spec.name, std::move(cb)});
  // Task spans (and the VFS/NFS traffic they trigger) join the session
  // trace, surviving failover: the context is the session's, not the VM's.
  obs::ScopedTraceContext scope{grid.simulation().trace(), trace_ctx_};
  vm_->run_task(std::move(spec), [this, &acct, user, id](vm::TaskResult r) {
    // A crash may have drained this entry already; the claim decides who
    // delivers the completion.
    auto it = pending_tasks_.find(id);
    if (it == pending_tasks_.end()) return;
    auto cb = std::move(it->second.cb);
    pending_tasks_.erase(it);
    if (r.status.ok() && vm_ == nullptr) {
      // A guest task claiming success on a session whose VM is gone is a
      // lost-update in the making; counted so the explorer's invariant
      // set can flag the schedule that produced it.
      manager_->grid_.simulation()
          .metrics()
          .counter("session.invariant.task_ok_while_dead")
          .inc();
    }
    acct.charge_cpu(user, r.total_cpu_seconds());
    acct.charge_io(user, r.io_rpcs);
    acct.count_task(user);
    cb(std::move(r));
  });
}

void VmSession::mark_dead() {
  auto& sim = manager_->grid_.simulation();
  vm_ = nullptr;
  // The lease dies with the host; there is no DHCP server to release to.
  ip_ = net::IpAddress{};
  data_mount_ = nullptr;
  dead_since_ = sim.now();
  // The guest work was aborted with the VM, so this drain is the only
  // completion path the callers will ever see.
  auto pending = std::exchange(pending_tasks_, {});
  for (auto& [id, p] : pending) {
    vm::TaskResult r;
    r.task = p.task;
    r.status = UnavailableError("host crashed").at("session", "run_task");
    record_error(sim.metrics(), r.status);
    sim.schedule_after(
        sim::Duration::micros(10),
        [cb = std::move(p.cb), r = std::move(r)]() mutable { cb(std::move(r)); });
  }
}

void VmSession::migrate_to(ComputeServer& target, std::function<void(Status)> cb) {
  if (vm_ == nullptr) {
    throw std::logic_error("VmSession::migrate_to on a closed session");
  }
  // Prepare the VM's storage view on the target (same image, same access
  // mode — the grid VFS makes the state reachable from anywhere).
  InstantiateOptions opts;
  opts.config = vm_->config();
  opts.image = vm_->image();
  opts.mode = request_.start;
  opts.access = request_.access;
  opts.image_server_node = request_.access == StateAccess::kNonPersistentVfs
                               ? instantiation_image_server_
                               : net::NodeId{};
  target.prepare_storage(
      opts, [this, &target, cb = std::move(cb)](Status st,
                                                vm::VmStorage storage) mutable {
        if (!st.ok()) {
          cb(Status{st.code(), "migration storage prep failed"}
                 .at("session", "migrate")
                 .caused_by(std::move(st)));
          return;
        }
        vm::MigrationParams params;
        params.precopy = true;
        vm::migrate(*vm_, target.vmm(), std::move(storage), params,
                    [this, &target, cb = std::move(cb)](vm::MigrationStats stats,
                                                        vm::VirtualMachine* fresh) {
                      if (!stats.ok() || fresh == nullptr) {
                        cb(Status{stats.status.code(), "migration failed"}
                               .at("session", "migrate")
                               .caused_by(std::move(stats.status)));
                        return;
                      }
                      auto& grid = manager_->grid_;
                      if (ip_.valid()) {
                        server_->dhcp().release(ip_);
                        ip_ = net::IpAddress{};
                      }
                      server_ = &target;
                      vm_ = fresh;
                      grid.info().register_vm(VmRecord{vm_name_, target.name(), user_,
                                                       "running", ip_});
                      // Re-establish the user-data session from the new host.
                      if (request_.data_server != nullptr) {
                        data_mount_ = &grid.gvfs().mount(
                            target.node(), request_.data_server->node(), {});
                      }
                      if (!request_.want_ip) {
                        cb({});
                        return;
                      }
                      target.dhcp().request_lease(
                          target.node(),
                          [this, cb = std::move(cb)](std::optional<net::IpAddress> ip) {
                            if (ip) ip_ = *ip;
                            cb({});
                          });
                    });
      });
}

void VmSession::shutdown() { manager_->finish_shutdown(*this); }

// ---------------------------------------------------------------------------
// SessionManager

SessionManager::SessionManager(Grid& grid) : grid_{grid} {
  frontend_ = grid_.network().add_node("middleware-frontend");
}

SessionManager::~SessionManager() = default;

std::string SessionManager::fresh_vm_name(const SessionRequest& req) {
  return "vm-" + req.user + "-" + std::to_string(++created_);
}

void SessionManager::wire_executor(ComputeServer& cs) {
  if (wired_.contains(&cs)) return;
  wired_.insert(&cs);
  // The middleware front-end must be able to reach the gatekeeper.
  if (!grid_.network().link_params(frontend_, cs.node())) {
    grid_.network().add_link(frontend_, cs.node(), Grid::lan_link());
  }
  // Ground-truth cleanup on crash; *detection* (what triggers failover)
  // stays probe-based so the measured RTO includes detection latency.
  cs.add_crash_listener(
      [this](ComputeServer& crashed) { on_server_crashed(crashed); });
  cs.gram().set_executor([this, &cs](const std::string& token,
                                     GramService::ExecutorDone done) {
    auto it = pending_.find(token);
    if (it == pending_.end()) {
      done(NotFoundError("unknown job token: " + token).at("session", "executor"), {});
      return;
    }
    InstantiateOptions opts = std::move(it->second);
    pending_.erase(it);
    cs.instantiate(std::move(opts),
                   [this, token, done = std::move(done)](vm::VirtualMachine* vmachine,
                                                         InstantiationStats stats) {
                     results_[token] = LaunchResult{vmachine, stats};
                     done(stats.status, stats.ok() ? token : std::string{});
                   });
  });
}

void SessionManager::create_session(SessionRequest request, SessionCallback cb) {
  const bool need_snapshot = request.start == VmStartMode::kWarmRestore;
  const std::string os = request.os;
  const auto memory = request.memory_mb;
  auto& sim = grid_.simulation();

  // Entry point of the session trace: everything the instantiation fans
  // out into (info query, GRAM dispatch, VM boot/restore, NFS traffic)
  // joins this span's trace, and the session keeps the identity for its
  // whole life (task runs, failovers).
  auto span = std::make_shared<obs::Span>(sim, "session.create", "session",
                                          sim.trace().current(), "session");
  span->arg("user", request.user);
  const obs::TraceContext trace = span->context();
  cb = [span, cb = std::move(cb)](VmSession* s, Status st) mutable {
    span->set_status(st);
    span->end();
    cb(s, std::move(st));
  };

  // Steps 1 + 2: the futures ⋈ images join against the information service.
  obs::ScopedTraceContext scope{sim.trace(), trace};
  grid_.info().query_placements(
      [memory](const VmFutureRecord& f) { return f.max_memory_mb >= memory; },
      [os, need_snapshot](const ImageRecord& i) {
        if (!os.empty() && i.os != os) return false;
        if (need_snapshot && !i.has_memory_snapshot) return false;
        return true;
      },
      request.query,
      [this, trace, request = std::move(request), cb = std::move(cb)](
          std::vector<Placement> placements) mutable {
        if (placements.empty()) {
          Status st = NotFoundError("no suitable (future, image) placement found")
                          .at("session", "create");
          record_error(grid_.simulation().metrics(), st);
          cb(nullptr, std::move(st));
          return;
        }
        // Prefer the least-loaded future, counting launches this manager
        // already has in flight (the registry snapshot lags); tie-break
        // on host name so runs are deterministic.
        auto load_of = [this](const Placement& p) {
          auto it = launching_.find(p.future.host_name);
          const std::uint32_t inflight = it == launching_.end() ? 0 : it->second;
          return p.future.active_instances + inflight;
        };
        auto best = std::min_element(
            placements.begin(), placements.end(),
            [&load_of](const Placement& a, const Placement& b) {
              if (load_of(a) != load_of(b)) return load_of(a) < load_of(b);
              return a.future.host_name < b.future.host_name;
            });
        launch(std::move(request), *best, trace, std::move(cb));
      });
}

void SessionManager::launch(SessionRequest request, Placement placement,
                            obs::TraceContext trace, SessionCallback cb) {
  ComputeServer* cs = placement.future.binding;
  ImageServer* is = placement.image.binding;
  if (cs == nullptr) {
    Status st = InternalError("placement has no compute binding").at("session", "create");
    record_error(grid_.simulation().metrics(), st);
    cb(nullptr, std::move(st));
    return;
  }
  wire_executor(*cs);
  ++launching_[cs->name()];

  const std::string token = fresh_vm_name(request);
  InstantiateOptions opts;
  opts.config = request.config_template;
  opts.config.name = token;
  opts.config.memory_mb = request.memory_mb;
  opts.image = placement.image.spec;
  opts.mode = request.start;
  opts.access = request.access;
  opts.image_server_node = placement.image.server_node;

  auto dispatch = [this, cs, token, trace, request = std::move(request), opts,
                   cb = std::move(cb)]() mutable {
    pending_[token] = opts;
    const auto image_server_node = opts.image_server_node;
    VMGRID_LOG(grid_.simulation(), kDebug, "session",
               "dispatching " << token << " to " << cs->name());
    GramClient client{grid_.fabric(), frontend_};
    // Re-enter the session trace: dispatch runs from a query/staging
    // callback where the creation scope is long gone.
    obs::ScopedTraceContext scope{grid_.simulation().trace(), trace};
    client.globusrun(
        cs->node(), token,
        [this, cs, token, trace, image_server_node, opts, request = std::move(request),
         cb = std::move(cb)](GramJobResult job) mutable {
          if (auto lit = launching_.find(cs->name());
              lit != launching_.end() && lit->second > 0) {
            --lit->second;
          }
          auto rit = results_.find(token);
          LaunchResult launch = rit != results_.end() ? rit->second : LaunchResult{};
          if (rit != results_.end()) results_.erase(rit);
          if (!job.ok() || launch.vm == nullptr) {
            Status st =
                job.ok()
                    ? InternalError("instantiation returned no VM").at("session", "create")
                    : Status{job.status.code(), "session launch failed"}
                          .at("session", "create")
                          .caused_by(std::move(job.status));
            record_error(grid_.simulation().metrics(), st);
            cb(nullptr, std::move(st));
            return;
          }
          auto session = std::make_unique<VmSession>();
          session->manager_ = this;
          session->server_ = cs;
          session->vm_ = launch.vm;
          session->user_ = request.user;
          session->vm_name_ = token;
          session->request_ = request;
          session->stats_ = launch.stats;
          session->started_ = grid_.simulation().now();
          session->instantiation_image_server_ = image_server_node;
          session->launch_opts_ = std::move(opts);
          session->trace_ctx_ = trace;
          VmSession* raw = session.get();
          sessions_.push_back(std::move(session));

          grid_.accounting().count_vm(request.user);
          grid_.info().register_vm(
              VmRecord{token, cs->name(), request.user, "running", {}});

          auto finish = [this, raw, cb = std::move(cb)]() mutable {
            // Step 5: user-data session into the guest.
            if (raw->request_.data_server != nullptr) {
              raw->data_mount_ = &grid_.gvfs().mount(
                  raw->server_->node(), raw->request_.data_server->node(), {});
            }
            cb(raw, {});
          };
          if (!request.want_ip) {
            finish();
            return;
          }
          // Step 4 (network identity): DHCP on the hosting site.
          cs->dhcp().request_lease(
              cs->node(), [this, raw, finish = std::move(finish)](
                              std::optional<net::IpAddress> ip) mutable {
                if (ip) {
                  raw->ip_ = *ip;
                  grid_.info().register_vm(VmRecord{raw->vm_name_, raw->server_->name(),
                                                    raw->user_, "running", *ip});
                }
                finish();
              });
        });
  };

  // Step 3: make the image reachable. VFS access mounts on demand; the
  // local-disk paths stage the image first when it is not already there.
  const bool needs_local = opts.access != StateAccess::kNonPersistentVfs;
  if (needs_local && !cs->host().fs().exists(opts.image.disk_file())) {
    if (is == nullptr) {
      Status st = FailedPreconditionError("image not local and no image server to stage from")
                      .at("session", "create");
      record_error(grid_.simulation().metrics(), st);
      cb(nullptr, std::move(st));
      return;
    }
    cs->stage_image(is->fs(), is->node(), opts.image,
                    [dispatch = std::move(dispatch)](Status) mutable {
                      // Staging failure included: dispatch() owns cb, so
                      // report the error by running the GRAM path anyway,
                      // which will fail fast with a clear status.
                      dispatch();
                    });
    return;
  }
  dispatch();
}

void SessionManager::finish_shutdown(VmSession& session) {
  grid_.accounting().charge_vm_time(session.user_,
                                    grid_.simulation().now() - session.started_);
  if (session.ip_.valid()) {
    session.server_->dhcp().release(session.ip_);
  }
  grid_.info().unregister_vm(session.vm_name_);
  if (session.vm_ != nullptr) {
    // Abort guest work before reclaiming the slot so no task-completion
    // event outlives the session object.
    session.vm_->power_off();
    session.server_->destroy_vm(*session.vm_);
    session.vm_ = nullptr;
  }
  auto pending = std::exchange(session.pending_tasks_, {});
  for (auto& [id, p] : pending) {
    vm::TaskResult r;
    r.task = p.task;
    r.status = AbortedError("session shut down").at("session", "run_task");
    grid_.simulation().schedule_after(
        sim::Duration::micros(10),
        [cb = std::move(p.cb), r = std::move(r)]() mutable { cb(std::move(r)); });
  }
  auto it = std::find_if(sessions_.begin(), sessions_.end(),
                         [&session](const auto& p) { return p.get() == &session; });
  if (it != sessions_.end()) sessions_.erase(it);
}

// ---------------------------------------------------------------------------
// Failure detection & failover

bool SessionManager::session_exists(const VmSession* s) const {
  return std::any_of(sessions_.begin(), sessions_.end(),
                     [s](const auto& p) { return p.get() == s; });
}

void SessionManager::on_server_crashed(ComputeServer& cs) {
  for (auto& s : sessions_) {
    if (s->server_ == &cs && s->vm_ != nullptr) {
      s->mark_dead();
      grid_.info().update_vm_state(s->vm_name_, "dead");
    }
  }
}

void SessionManager::set_failover(FailoverPolicy policy) {
  failover_policy_ = policy;
  failover_enabled_ = true;
  schedule_probe_tick();
}

void SessionManager::schedule_probe_tick() {
  if (monitor_running_ || !failover_enabled_) return;
  monitor_running_ = true;
  // Weak: a forever-running monitor must not keep run() alive once all
  // strong work has drained.
  grid_.simulation().schedule_weak_after(failover_policy_.probe_interval, [this] {
    monitor_running_ = false;
    probe_tick();
    schedule_probe_tick();
  });
}

void SessionManager::probe_tick() {
  // One gram.ping per distinct host that currently backs sessions (alive
  // or dead-awaiting-failover). Ordered by name for determinism.
  std::map<std::string, ComputeServer*> ordered;
  for (auto& s : sessions_) {
    if (s->server_ != nullptr) ordered.emplace(s->server_->name(), s->server_);
  }
  std::vector<std::pair<std::string, ComputeServer*>> targets(ordered.begin(),
                                                              ordered.end());
  if (targets.size() > 1 && grid_.simulation().exploring()) {
    // Which host's probe verdict lands first is a real race (replies
    // traverse independent paths); rotate the issue order so the
    // explorer covers each host going first.
    const std::uint32_t r = grid_.simulation().choose(
        {"session.probe_order", static_cast<std::uint32_t>(targets.size()),
         sim::footprint_of("session.probe_order"), true});
    std::rotate(targets.begin(), targets.begin() + r, targets.end());
  }
  for (auto& [name, cs] : targets) {
    GramClient client{grid_.fabric(), frontend_};
    client.ping(cs->node(), failover_policy_.probe,
                [this, name = name](Status st) {
                  probe_failures_[name] = st.ok() ? 0 : probe_failures_[name] + 1;
                  consider_failovers(name);
                });
  }
}

void SessionManager::consider_failovers(const std::string& host_name) {
  const int failures = probe_failures_[host_name];
  const bool host_dead = failures >= failover_policy_.suspect_after;
  for (auto& s : sessions_) {
    VmSession* sess = s.get();
    if (sess->server_ == nullptr || sess->server_->name() != host_name) continue;
#ifdef VMGRID_MUTATION_DOUBLE_FAILOVER
    // Planted bug (checker self-test, gated behind a CMake option that is
    // never on in shipping builds): the in-progress guard is dropped, so
    // the next probe verdict re-triggers failover for a session whose
    // recovery is already in flight. Two re-instantiations of the same
    // token then race — the double-VM state the explorer must catch.
    const bool failover_busy = false;
#else
    const bool failover_busy = sess->failover_in_progress_;
#endif
    if (sess->vm_ != nullptr || failover_busy) continue;
    // Dead session: fail over once the host is confirmed dead, or right
    // away if the probe answered (the host rebooted; the VM is gone).
    if (host_dead || failures == 0) {
      if (!host_dead && grid_.simulation().exploring() &&
          grid_.simulation().choose({"session.failover_defer", 2,
                                     sim::footprint_of(host_name), true}) == 1) {
        // The recovered-host verdict raced the probe tick: starting now
        // or at the next tick are both field-realistic timings, so the
        // explorer branches on the race outcome.
        continue;
      }
      failover(*sess);
    }
  }
}

void SessionManager::failover(VmSession& session) {
  session.failover_in_progress_ = true;
  auto& sim = grid_.simulation();
  sim.metrics().counter("failover.started").inc();
  sim.trace().instant(sim.now(), "failover.start", "failover");
  VMGRID_LOG(sim, kInfo, "session", "failover started for " << session.vm_name_);
  // The re-instantiation CONTINUES the session's original trace — the
  // whole point of request-scoped causality: crash recovery shows up in
  // the same trace as the session it recovers.
  session.failover_span_ = obs::Span{sim, "session.failover", "failover",
                                     session.trace_ctx_, "session"};
  session.failover_span_.arg("vm", session.vm_name_);
  const auto memory = session.request_.memory_mb;
  VmSession* raw = &session;
  grid_.info().query_futures(
      [memory](const VmFutureRecord& f) {
        return f.up && f.active_instances < f.max_instances &&
               f.max_memory_mb >= memory;
      },
      session.request_.query,
      [this, raw](std::vector<VmFutureRecord> futures) {
        if (!session_exists(raw)) return;  // shut down while querying
        auto fail = [this, raw](Status why) {
          ++failovers_failed_;
          raw->failover_span_.set_status(why);
          raw->failover_span_.end();
          grid_.simulation().metrics().counter("failover.failed").inc();
          record_error(grid_.simulation().metrics(), why);
          // Root-cause code, exported so dashboards can split "no spare
          // capacity" from "dispatch timed out" without string parsing.
          grid_.simulation()
              .metrics()
              .counter("failover.failed_by_cause",
                       {{"code", to_string(why.root_cause().code())}})
              .inc();
          if (failover_handler_) {
            FailoverEvent ev;
            ev.session = raw;
            ev.from_host = raw->server_ != nullptr ? raw->server_->name() : "";
            ev.status = why;
            ev.downtime = grid_.simulation().now() - raw->dead_since_;
            failover_handler_(ev);
          }
          // Weak retry: an unrecoverable grid must not wedge run(). The
          // in-progress flag stays set so probes don't double-trigger.
          grid_.simulation().schedule_weak_after(
              failover_policy_.retry_delay, [this, raw] {
                if (!session_exists(raw) || raw->vm_ != nullptr) return;
                failover(*raw);
              });
        };
        if (futures.empty()) {
          fail(UnavailableError("no live placement for failover")
                   .at("session", "failover"));
          return;
        }
        // Same placement rule as create_session: least loaded counting
        // launches in flight, host name as deterministic tie-break.
        auto load_of = [this](const VmFutureRecord& f) {
          auto it = launching_.find(f.host_name);
          const std::uint32_t inflight = it == launching_.end() ? 0 : it->second;
          return f.active_instances + inflight;
        };
        auto best = std::min_element(
            futures.begin(), futures.end(),
            [&load_of](const VmFutureRecord& a, const VmFutureRecord& b) {
              if (load_of(a) != load_of(b)) return load_of(a) < load_of(b);
              return a.host_name < b.host_name;
            });
        ComputeServer* target = best->binding;
        if (target == nullptr) {
          fail(InternalError("placement has no compute binding")
                   .at("session", "failover"));
          return;
        }
        wire_executor(*target);
        ++launching_[target->name()];
        // Re-instantiate under the session's original token and options:
        // the warm restore from the image server IS the recovery path.
        const std::string token = raw->vm_name_;
        pending_[token] = raw->launch_opts_;
        GramClient client{grid_.fabric(), frontend_};
        obs::ScopedTraceContext scope{grid_.simulation().trace(),
                                      raw->failover_span_.context()};
        client.globusrun(
            target->node(), token,
            [this, raw, target, token, fail](GramJobResult job) mutable {
              if (auto lit = launching_.find(target->name());
                  lit != launching_.end() && lit->second > 0) {
                --lit->second;
              }
              auto rit = results_.find(token);
              LaunchResult launch = rit != results_.end() ? rit->second : LaunchResult{};
              if (rit != results_.end()) results_.erase(rit);
              if (!session_exists(raw)) return;
              if (!job.ok() || launch.vm == nullptr) {
                fail(job.ok() ? InternalError("re-instantiation returned no VM")
                                    .at("session", "failover")
                              : Status{job.status.code(), "re-instantiation failed"}
                                    .at("session", "failover")
                                    .caused_by(std::move(job.status)));
                return;
              }
              finish_failover(*raw, *target, launch.vm);
            });
      });
}

void SessionManager::finish_failover(VmSession& session, ComputeServer& target,
                                     vm::VirtualMachine* fresh) {
  auto& sim = grid_.simulation();
  const auto downtime = sim.now() - session.dead_since_;
  const std::string from =
      session.server_ != nullptr ? session.server_->name() : std::string{};
  session.server_ = &target;
  session.vm_ = fresh;
  session.total_downtime_ = session.total_downtime_ + downtime;
  ++session.failovers_;
  session.failover_in_progress_ = false;
  ++failovers_ok_;
  sim.metrics().counter("failover.completed").inc();
  sim.metrics()
      .histogram("failover.rto_s", obs::HistogramOptions{0.0, 600.0, 120})
      .observe(downtime.to_seconds());
  sim.trace().instant(sim.now(), "failover.done", "failover");
  session.failover_span_.set_status(Status{});
  session.failover_span_.arg("to_host", target.name());
  session.failover_span_.end();
  VMGRID_LOG(sim, kInfo, "session",
             "failover of " << session.vm_name_ << " to " << target.name()
                            << " done after " << downtime.to_seconds() << "s");
  grid_.info().register_vm(
      VmRecord{session.vm_name_, target.name(), session.user_, "running", {}});
  // Re-establish the user-data session from the new host.
  if (session.request_.data_server != nullptr) {
    session.data_mount_ =
        &grid_.gvfs().mount(target.node(), session.request_.data_server->node(), {});
  }
  if (failover_handler_) {
    FailoverEvent ev;
    ev.session = &session;
    ev.from_host = from;
    ev.to_host = target.name();
    ev.status = {};
    ev.downtime = downtime;
    failover_handler_(ev);
  }
  if (session.request_.want_ip) {
    VmSession* raw = &session;
    target.dhcp().request_lease(
        target.node(), [this, raw](std::optional<net::IpAddress> ip) {
          if (!session_exists(raw) || !ip) return;
          raw->ip_ = *ip;
          grid_.info().register_vm(VmRecord{raw->vm_name_, raw->server_->name(),
                                            raw->user_, "running", *ip});
        });
  }
}

}  // namespace vmgrid::middleware
