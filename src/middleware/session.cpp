#include "middleware/session.hpp"

#include <algorithm>
#include <utility>

#include "middleware/grid.hpp"

namespace vmgrid::middleware {

// ---------------------------------------------------------------------------
// VmSession

void VmSession::run_task(workload::TaskSpec spec, vm::TaskCallback cb) {
  if (vm_ == nullptr) {
    throw std::logic_error("VmSession::run_task on a closed session");
  }
  auto& acct = manager_->grid_.accounting();
  const std::string user = user_;
  vm_->run_task(std::move(spec), [&acct, user, cb = std::move(cb)](vm::TaskResult r) {
    acct.charge_cpu(user, r.total_cpu_seconds());
    acct.charge_io(user, r.io_rpcs);
    acct.count_task(user);
    cb(std::move(r));
  });
}

void VmSession::migrate_to(ComputeServer& target, std::function<void(bool)> cb) {
  if (vm_ == nullptr) {
    throw std::logic_error("VmSession::migrate_to on a closed session");
  }
  // Prepare the VM's storage view on the target (same image, same access
  // mode — the grid VFS makes the state reachable from anywhere).
  InstantiateOptions opts;
  opts.config = vm_->config();
  opts.image = vm_->image();
  opts.mode = request_.start;
  opts.access = request_.access;
  opts.image_server_node = request_.access == StateAccess::kNonPersistentVfs
                               ? instantiation_image_server_
                               : net::NodeId{};
  target.prepare_storage(
      opts, [this, &target, cb = std::move(cb)](bool ok, std::string,
                                                vm::VmStorage storage) mutable {
        if (!ok) {
          cb(false);
          return;
        }
        vm::MigrationParams params;
        params.precopy = true;
        vm::migrate(*vm_, target.vmm(), std::move(storage), params,
                    [this, &target, cb = std::move(cb)](vm::MigrationStats stats,
                                                        vm::VirtualMachine* fresh) {
                      if (!stats.ok || fresh == nullptr) {
                        cb(false);
                        return;
                      }
                      auto& grid = manager_->grid_;
                      if (ip_.valid()) {
                        server_->dhcp().release(ip_);
                        ip_ = net::IpAddress{};
                      }
                      server_ = &target;
                      vm_ = fresh;
                      grid.info().register_vm(VmRecord{vm_name_, target.name(), user_,
                                                       "running", ip_});
                      // Re-establish the user-data session from the new host.
                      if (request_.data_server != nullptr) {
                        data_mount_ = &grid.gvfs().mount(
                            target.node(), request_.data_server->node(), {});
                      }
                      if (!request_.want_ip) {
                        cb(true);
                        return;
                      }
                      target.dhcp().request_lease(
                          target.node(),
                          [this, cb = std::move(cb)](std::optional<net::IpAddress> ip) {
                            if (ip) ip_ = *ip;
                            cb(true);
                          });
                    });
      });
}

void VmSession::shutdown() {
  if (vm_ == nullptr) return;
  manager_->finish_shutdown(*this);
}

// ---------------------------------------------------------------------------
// SessionManager

SessionManager::SessionManager(Grid& grid) : grid_{grid} {
  frontend_ = grid_.network().add_node("middleware-frontend");
}

SessionManager::~SessionManager() = default;

std::string SessionManager::fresh_vm_name(const SessionRequest& req) {
  return "vm-" + req.user + "-" + std::to_string(++created_);
}

void SessionManager::wire_executor(ComputeServer& cs) {
  if (wired_.contains(&cs)) return;
  wired_.insert(&cs);
  // The middleware front-end must be able to reach the gatekeeper.
  if (!grid_.network().link_params(frontend_, cs.node())) {
    grid_.network().add_link(frontend_, cs.node(), Grid::lan_link());
  }
  cs.gram().set_executor([this, &cs](const std::string& token,
                                     GramService::ExecutorDone done) {
    auto it = pending_.find(token);
    if (it == pending_.end()) {
      done(false, "unknown job token: " + token);
      return;
    }
    InstantiateOptions opts = std::move(it->second);
    pending_.erase(it);
    cs.instantiate(std::move(opts),
                   [this, token, done = std::move(done)](vm::VirtualMachine* vmachine,
                                                         InstantiationStats stats) {
                     results_[token] = LaunchResult{vmachine, stats};
                     done(vmachine != nullptr, stats.ok ? token : stats.error);
                   });
  });
}

void SessionManager::create_session(SessionRequest request, SessionCallback cb) {
  const bool need_snapshot = request.start == VmStartMode::kWarmRestore;
  const std::string os = request.os;
  const auto memory = request.memory_mb;

  // Steps 1 + 2: the futures ⋈ images join against the information service.
  grid_.info().query_placements(
      [memory](const VmFutureRecord& f) { return f.max_memory_mb >= memory; },
      [os, need_snapshot](const ImageRecord& i) {
        if (!os.empty() && i.os != os) return false;
        if (need_snapshot && !i.has_memory_snapshot) return false;
        return true;
      },
      request.query,
      [this, request = std::move(request), cb = std::move(cb)](
          std::vector<Placement> placements) mutable {
        if (placements.empty()) {
          cb(nullptr, "no suitable (future, image) placement found");
          return;
        }
        // Prefer the least-loaded future, counting launches this manager
        // already has in flight (the registry snapshot lags); tie-break
        // on host name so runs are deterministic.
        auto load_of = [this](const Placement& p) {
          auto it = launching_.find(p.future.host_name);
          const std::uint32_t inflight = it == launching_.end() ? 0 : it->second;
          return p.future.active_instances + inflight;
        };
        auto best = std::min_element(
            placements.begin(), placements.end(),
            [&load_of](const Placement& a, const Placement& b) {
              if (load_of(a) != load_of(b)) return load_of(a) < load_of(b);
              return a.future.host_name < b.future.host_name;
            });
        launch(std::move(request), *best, std::move(cb));
      });
}

void SessionManager::launch(SessionRequest request, Placement placement,
                            SessionCallback cb) {
  ComputeServer* cs = placement.future.binding;
  ImageServer* is = placement.image.binding;
  if (cs == nullptr) {
    cb(nullptr, "placement has no compute binding");
    return;
  }
  wire_executor(*cs);
  ++launching_[cs->name()];

  const std::string token = fresh_vm_name(request);
  InstantiateOptions opts;
  opts.config = request.config_template;
  opts.config.name = token;
  opts.config.memory_mb = request.memory_mb;
  opts.image = placement.image.spec;
  opts.mode = request.start;
  opts.access = request.access;
  opts.image_server_node = placement.image.server_node;

  auto dispatch = [this, cs, token, request = std::move(request), opts,
                   cb = std::move(cb)]() mutable {
    pending_[token] = opts;
    const auto image_server_node = opts.image_server_node;
    GramClient client{grid_.fabric(), frontend_};
    client.globusrun(
        cs->node(), token,
        [this, cs, token, image_server_node, request = std::move(request),
         cb = std::move(cb)](GramJobResult job) mutable {
          if (auto lit = launching_.find(cs->name());
              lit != launching_.end() && lit->second > 0) {
            --lit->second;
          }
          auto rit = results_.find(token);
          LaunchResult launch = rit != results_.end() ? rit->second : LaunchResult{};
          if (rit != results_.end()) results_.erase(rit);
          if (!job.ok || launch.vm == nullptr) {
            cb(nullptr, job.ok ? "instantiation failed" : job.error);
            return;
          }
          auto session = std::make_unique<VmSession>();
          session->manager_ = this;
          session->server_ = cs;
          session->vm_ = launch.vm;
          session->user_ = request.user;
          session->vm_name_ = token;
          session->request_ = request;
          session->stats_ = launch.stats;
          session->started_ = grid_.simulation().now();
          session->instantiation_image_server_ = image_server_node;
          VmSession* raw = session.get();
          sessions_.push_back(std::move(session));

          grid_.accounting().count_vm(request.user);
          grid_.info().register_vm(
              VmRecord{token, cs->name(), request.user, "running", {}});

          auto finish = [this, raw, cb = std::move(cb)]() mutable {
            // Step 5: user-data session into the guest.
            if (raw->request_.data_server != nullptr) {
              raw->data_mount_ = &grid_.gvfs().mount(
                  raw->server_->node(), raw->request_.data_server->node(), {});
            }
            cb(raw, {});
          };
          if (!request.want_ip) {
            finish();
            return;
          }
          // Step 4 (network identity): DHCP on the hosting site.
          cs->dhcp().request_lease(
              cs->node(), [this, raw, finish = std::move(finish)](
                              std::optional<net::IpAddress> ip) mutable {
                if (ip) {
                  raw->ip_ = *ip;
                  grid_.info().register_vm(VmRecord{raw->vm_name_, raw->server_->name(),
                                                    raw->user_, "running", *ip});
                }
                finish();
              });
        });
  };

  // Step 3: make the image reachable. VFS access mounts on demand; the
  // local-disk paths stage the image first when it is not already there.
  const bool needs_local = opts.access != StateAccess::kNonPersistentVfs;
  if (needs_local && !cs->host().fs().exists(opts.image.disk_file())) {
    if (is == nullptr) {
      cb(nullptr, "image not local and no image server to stage from");
      return;
    }
    cs->stage_image(is->fs(), is->node(), opts.image,
                    [dispatch = std::move(dispatch)](bool ok) mutable {
                      if (ok) dispatch();
                      // Staging failure: dispatch's captured callback is
                      // never invoked; dispatch() owns cb, so report the
                      // error by running the GRAM path anyway, which will
                      // fail fast with a clear message.
                      else dispatch();
                    });
    return;
  }
  dispatch();
}

void SessionManager::finish_shutdown(VmSession& session) {
  grid_.accounting().charge_vm_time(session.user_,
                                    grid_.simulation().now() - session.started_);
  if (session.ip_.valid()) {
    session.server_->dhcp().release(session.ip_);
  }
  grid_.info().unregister_vm(session.vm_name_);
  session.server_->destroy_vm(*session.vm_);
  session.vm_ = nullptr;
  auto it = std::find_if(sessions_.begin(), sessions_.end(),
                         [&session](const auto& p) { return p.get() == &session; });
  if (it != sessions_.end()) sessions_.erase(it);
}

}  // namespace vmgrid::middleware
