#pragma once

#include <functional>
#include <string>

#include "core/status.hpp"
#include "net/network.hpp"
#include "storage/local_fs.hpp"

namespace vmgrid::middleware {

struct GridFtpParams {
  std::uint32_t parallel_streams{4};
  std::uint64_t chunk_bytes{4ull << 20};
  sim::Duration control_setup{sim::Duration::millis(400)};  // auth + channel setup
};

/// Outcome of one whole-file GridFTP staging transfer. Named
/// FtpTransferResult to stay clear of net::TransferResult, the
/// transport-level notion in network.hpp.
struct FtpTransferResult {
  Status status;  ///< gridftp origin, e.g. kNotFound for a missing source
  sim::Duration elapsed{};
  std::uint64_t bytes{0};

  [[nodiscard]] bool ok() const { return status.ok(); }
};

/// Explicit whole-file staging (GridFTP/GASS style): the transfer model
/// the paper contrasts with on-demand virtual-file-system access. Reads
/// the source file in chunks, ships them over `parallel_streams`
/// concurrent TCP streams, writes them at the destination.
class GridFtp {
 public:
  explicit GridFtp(sim::Simulation& s, net::Network& net) : sim_{s}, net_{net} {}

  using StagingCallback = std::function<void(FtpTransferResult)>;

  void transfer(storage::LocalFileSystem& src_fs, net::NodeId src_node,
                const std::string& src_path, storage::LocalFileSystem& dst_fs,
                net::NodeId dst_node, const std::string& dst_path,
                GridFtpParams params, StagingCallback cb);

  void transfer(storage::LocalFileSystem& src_fs, net::NodeId src_node,
                const std::string& src_path, storage::LocalFileSystem& dst_fs,
                net::NodeId dst_node, const std::string& dst_path, StagingCallback cb) {
    transfer(src_fs, src_node, src_path, dst_fs, dst_node, dst_path, GridFtpParams{},
             std::move(cb));
  }

 private:
  sim::Simulation& sim_;
  net::Network& net_;
};

}  // namespace vmgrid::middleware
