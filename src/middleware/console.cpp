#include "middleware/console.hpp"

#include <memory>
#include <utility>

namespace vmgrid::middleware {

ConsoleSession::ConsoleSession(net::Network& net, net::NodeId client,
                               net::NodeId vm_host, ConsoleParams params,
                               net::EthernetTunnel* tunnel)
    : net_{net}, client_{client}, vm_host_{vm_host}, params_{params}, tunnel_{tunnel} {}

void ConsoleSession::send(bool to_vm, std::uint64_t bytes, net::TransferCallback cb) {
  if (tunnel_ != nullptr) {
    tunnel_->send(to_vm, bytes, std::move(cb));
  } else {
    const auto src = to_vm ? client_ : vm_host_;
    const auto dst = to_vm ? vm_host_ : client_;
    net_.send(src, dst, bytes, std::move(cb));
  }
}

void ConsoleSession::keystroke(EchoCallback cb) {
  const auto started = net_.simulation().now();
  send(true, params_.keystroke_bytes, [this, started,
                                       cb = std::move(cb)](const net::TransferResult&) {
    net_.simulation().schedule_after(params_.guest_render, [this, started,
                                                            cb = std::move(cb)]() mutable {
      send(false, params_.update_bytes,
           [this, started, cb = std::move(cb)](const net::TransferResult&) {
             const auto rtt = net_.simulation().now() - started;
             stats_.add(rtt.to_millis());
             cb(rtt);
           });
    });
  });
}

void ConsoleSession::type_burst(std::size_t count,
                                std::function<void(sim::Accumulator)> cb) {
  auto burst = std::make_shared<sim::Accumulator>();
  auto remaining = std::make_shared<std::size_t>(count);
  auto done = std::make_shared<std::function<void(sim::Accumulator)>>(std::move(cb));
  if (count == 0) {
    net_.simulation().schedule_after(sim::Duration::micros(1),
                                     [burst, done] { (*done)(*burst); });
    return;
  }
  auto step = std::make_shared<std::function<void()>>();
  *step = [this, burst, remaining, done, step] {
    keystroke([this, burst, remaining, done, step](sim::Duration rtt) {
      burst->add(rtt.to_millis());
      if (--*remaining == 0) {
        (*done)(*burst);
        return;
      }
      // A fast typist: ~120 ms between keystrokes.
      net_.simulation().schedule_after(sim::Duration::millis(120),
                                       [step] { (*step)(); });
    });
  };
  (*step)();
}

}  // namespace vmgrid::middleware
