#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "middleware/compute_server.hpp"
#include "obs/trace.hpp"
#include "rps/predictors.hpp"
#include "rps/runtime_predictor.hpp"
#include "rps/sensor.hpp"
#include "workload/task_spec.hpp"

namespace vmgrid::middleware {

class Grid;

/// How the grid scheduler picks a host for the next job.
enum class PlacementPolicy {
  kRandom,            ///< uniformly random capable host
  kLeastLoaded,       ///< minimal instantaneous CPU demand
  kPredictedRuntime,  ///< minimal RPS-predicted completion time (§3.2)
};

[[nodiscard]] const char* to_string(PlacementPolicy p);

struct BatchJobResult {
  /// OK once the job ran; kOverloaded when the queue shed it at the door,
  /// otherwise the task's failure status (cause chain intact).
  Status status{StatusCode::kAborted, "job not run"};
  std::string host;
  sim::Duration queue_wait{};
  sim::Duration run_time{};
  sim::Duration total{};  // submission to completion

  [[nodiscard]] bool ok() const { return status.ok(); }
};

struct SchedulerServiceParams {
  PlacementPolicy policy{PlacementPolicy::kPredictedRuntime};
  /// Concurrent jobs allowed per worker VM (per host).
  std::size_t slots_per_host{1};
  sim::Duration sensor_period{sim::Duration::seconds(2)};
  VmStartMode worker_start{VmStartMode::kWarmRestore};
  StateAccess worker_access{StateAccess::kNonPersistentLocal};
  /// Admission limit on the batch queue: submissions past this are
  /// rejected immediately instead of accumulating unbounded backlog.
  /// 0 = unlimited (historical behaviour).
  std::size_t max_queued_jobs{0};
};

/// A batch-queue grid scheduler over the VM substrate ("the user, or a
/// grid scheduler, will have the option to..." — §4). Each registered
/// compute server lazily receives one long-lived worker VM; queued jobs
/// are dispatched into worker VMs according to the placement policy.
/// The kPredictedRuntime policy closes the paper's RPS loop: per-host
/// load sensors feed predictors, and jobs go where they are predicted to
/// finish first.
class SchedulerService {
 public:
  SchedulerService(Grid& grid, SchedulerServiceParams params = {});
  ~SchedulerService();

  SchedulerService(const SchedulerService&) = delete;
  SchedulerService& operator=(const SchedulerService&) = delete;

  /// Register a compute server as a worker pool member. The image is
  /// used for the worker VM (must be reachable via params.worker_access).
  void add_worker_host(ComputeServer& server, const vm::VmImageSpec& image);

  using JobCallback = std::function<void(BatchJobResult)>;

  /// Enqueue a job; the callback fires at completion.
  void submit(const std::string& owner, workload::TaskSpec spec, JobCallback cb);

  [[nodiscard]] std::size_t queued_jobs() const { return queue_.size(); }
  [[nodiscard]] std::size_t running_jobs() const;
  [[nodiscard]] std::uint64_t jobs_shed() const { return jobs_shed_; }
  [[nodiscard]] std::size_t worker_count() const { return workers_.size(); }
  [[nodiscard]] PlacementPolicy policy() const { return params_.policy; }

 private:
  struct Worker {
    ComputeServer* server{nullptr};
    vm::VmImageSpec image;
    vm::VirtualMachine* vmachine{nullptr};  // null until instantiated
    bool instantiating{false};
    std::size_t busy_slots{0};
    std::unique_ptr<rps::HostLoadSensor> sensor;
  };

  struct PendingJob {
    std::string owner;
    workload::TaskSpec spec;
    JobCallback cb;
    sim::TimePoint submitted{};
    /// Job-lifetime span opened at submission (queue wait included);
    /// the worker VM's task I/O joins its trace, and it closes with the
    /// job's final status.
    std::shared_ptr<obs::Span> span;
  };

  void pump();
  void update_gauges();
  [[nodiscard]] Worker* pick_worker(const PendingJob& job);
  void ensure_worker_vm(Worker& w);
  void dispatch(Worker& w, PendingJob job);

  Grid& grid_;
  SchedulerServiceParams params_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::deque<PendingJob> queue_;
  std::size_t running_{0};
  std::uint64_t jobs_shed_{0};
};

}  // namespace vmgrid::middleware
