#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/status.hpp"
#include "host/physical_host.hpp"
#include "image/chunk_store.hpp"
#include "image/swarm.hpp"
#include "middleware/gram.hpp"
#include "middleware/gridftp.hpp"
#include "middleware/information_service.hpp"
#include "net/dhcp.hpp"
#include "net/rpc.hpp"
#include "storage/nfs_server.hpp"
#include "vfs/grid_vfs.hpp"
#include "vm/vm_disk.hpp"
#include "vm/vmm.hpp"

namespace vmgrid::middleware {

/// How VM state files are reached from the host — Table 2's columns plus
/// the wide-area grid-virtual-file-system path of Table 1.
enum class StateAccess {
  kPersistentCopy,        ///< explicit local copy of the disk before start
  kNonPersistentLocal,    ///< base image on local DiskFS + local diff
  kNonPersistentLoopback, ///< base image via loopback-mounted NFS + diff there too
  kNonPersistentVfs,      ///< base image via the proxy-cached grid VFS (possibly WAN)
};

[[nodiscard]] const char* to_string(StateAccess a);

/// Cold boot vs warm restore — Table 2's rows.
enum class VmStartMode { kColdBoot, kWarmRestore };

[[nodiscard]] const char* to_string(VmStartMode m);

struct ComputeServerParams {
  host::HostParams host{};
  vm::VmmParams vmm{};
  GramParams gram{};
  std::uint32_t future_max_instances{4};
  std::uint64_t future_max_memory_mb{512};
  /// Admission limit on concurrently-starting VMs: instantiations past
  /// this are rejected before any staging I/O begins. 0 = unlimited
  /// (historical behaviour).
  std::uint32_t max_pending_instantiations{0};
  /// Guest-side CPU charge per NFS RPC through the kernel client
  /// (VMM trap + guest kernel RPC stack).
  double io_client_cpu_per_rpc{0.00035};
  /// Per-RPC CPU through the user-level grid-VFS proxy chain (extra
  /// copies and context switches vs the kernel client) — the source of
  /// the extra system time in Table 1's PVFS rows.
  double vfs_client_cpu_per_rpc{0.002};
  /// Per-call overhead of this node's RPC stack. The loopback NFS export
  /// shares it, which is what makes the LoopbackNFS instantiation path
  /// measurably slower than DiskFS in the startup experiment.
  net::RpcServerParams rpc{sim::Duration::micros(550)};
  /// Fixed VMM configuration/registration cost charged on every
  /// non-persistent instantiation.
  sim::Duration vm_setup_time{sim::Duration::millis(400)};
  /// Deadline/retry policy for this server's NFS traffic (loopback export
  /// and grid-VFS mounts). Defaults to the historical no-deadline single
  /// attempt; fault-aware worlds set net::RpcCallOptions::nfs() here so
  /// block RPCs ride out outages instead of stalling forever.
  net::RpcCallOptions nfs_rpc{};
};

struct InstantiationStats {
  /// OK when the VM reached running; failures carry the compute-origin
  /// status (kNotFound for a missing image, kOverloaded when admission
  /// shed the request, kUnavailable for a down/crashed host...).
  Status status;
  sim::Duration total{};
  sim::Duration state_preparation{};  // staging / persistent copy
  sim::Duration start_time{};         // boot or restore
  StateAccess access{};
  VmStartMode mode{};

  [[nodiscard]] bool ok() const { return status.ok(); }
};

struct InstantiateOptions {
  vm::VmConfig config;
  vm::VmImageSpec image;
  VmStartMode mode{VmStartMode::kColdBoot};
  StateAccess access{StateAccess::kNonPersistentLocal};
  /// Image location for kNonPersistentVfs; invalid NodeId means "the
  /// image is already on the host's local file system".
  net::NodeId image_server_node{};
};

/// A grid compute node ("virtualized compute server V" in Figure 2):
/// physical host + VMM + GRAM gatekeeper + loopback NFS export + grid
/// VFS client, able to instantiate dynamic VM instances through all the
/// state-access paths the paper measures.
class ComputeServer {
 public:
  ComputeServer(sim::Simulation& s, net::Network& net, net::RpcFabric& fabric,
                vfs::GridVfs& gvfs, ComputeServerParams params = {});

  using InstantiateCallback = std::function<void(vm::VirtualMachine*, InstantiationStats)>;

  /// Make an image's files available on the local file system (as the
  /// paper's Table 2 setup does before measuring startup).
  void preload_image(const vm::VmImageSpec& spec);

  /// Instantiate a VM through the requested state-access path and start
  /// it (boot or restore). The callback fires when the VM is running.
  void instantiate(InstantiateOptions opts, InstantiateCallback cb);

  /// Stage an image from a remote image server to local disk (GridFTP).
  /// The callback receives OK, or the first failing transfer's status.
  void stage_image(storage::LocalFileSystem& src_fs, net::NodeId src_node,
                   const vm::VmImageSpec& spec, std::function<void(Status)> cb);

  /// Stage a chunked image version through the swarm: joins this node's
  /// chunk store to the distributor and pulls the manifest's missing
  /// chunks (peers preferred over the origin archive). Chunks shared with
  /// previously staged versions are already local and cost nothing — the
  /// CoW-chain dedup. Fetch spans parent under the ambient trace context,
  /// so staging inside session creation joins the session.create trace.
  void stage_image_swarm(image::SwarmDistributor& swarm,
                         const image::ImageManifest& manifest,
                         std::function<void(Status)> cb);

  /// This node's content-addressed chunk cache (backed by the host fs).
  [[nodiscard]] image::ChunkStore& chunk_store() { return chunk_store_; }

  void destroy_vm(vm::VirtualMachine& vmachine);

  /// Publish this server's host record and VM future; keeps them fresh
  /// on instantiate/destroy.
  void publish(InformationService& info);

  /// Fail-stop host crash: the node drops off the network, every resident
  /// VM is powered off and destroyed, in-flight instantiation callbacks
  /// complete with an error (never silently vanish), and the published
  /// host/future records go down. Crash listeners run first, while the
  /// VM pointers they hold are still valid.
  void crash();

  /// Bring a crashed server back, empty of VMs, and re-advertise it.
  void recover();

  [[nodiscard]] bool up() const { return up_; }

  /// Observes crash() before any VM teardown — the session layer uses
  /// this to invalidate its VM pointers (ground-truth cleanup, distinct
  /// from failure *detection*, which stays probe-based).
  using CrashListener = std::function<void(ComputeServer&)>;
  void add_crash_listener(CrashListener listener) {
    crash_listeners_.push_back(std::move(listener));
  }

  [[nodiscard]] host::PhysicalHost& host() { return host_; }
  [[nodiscard]] vm::Vmm& vmm() { return vmm_; }
  [[nodiscard]] net::NodeId node() const { return host_.node(); }
  [[nodiscard]] const std::string& name() const { return host_.name(); }
  [[nodiscard]] GramService& gram() { return gram_; }
  [[nodiscard]] net::RpcServer& rpc_server() { return rpc_server_; }
  [[nodiscard]] vfs::GridVfs& gvfs() { return gvfs_; }
  [[nodiscard]] net::DhcpServer& dhcp() { return dhcp_; }
  [[nodiscard]] const ComputeServerParams& params() const { return params_; }

  using StorageCallback = std::function<void(Status status, vm::VmStorage storage)>;

  /// Build the VmStorage for an instantiation request without creating
  /// the VM (used directly by migration, which lands an already-running
  /// machine). Public: the session manager prepares target storage here.
  void prepare_storage(const InstantiateOptions& opts, StorageCallback cb);

 private:
  void refresh_published();
  void update_gauges();
  [[nodiscard]] vfs::VfsMount& vfs_mount_for(net::NodeId image_server);
  /// Claim an in-flight instantiation callback. Returns an empty function
  /// when crash() already drained it — the stale continuation must then
  /// do nothing (no counter adjustments, no callback).
  [[nodiscard]] InstantiateCallback take_inflight(std::uint64_t id);

  sim::Simulation& sim_;
  net::Network& net_;
  net::RpcFabric& fabric_;
  vfs::GridVfs& gvfs_;
  ComputeServerParams params_;
  host::PhysicalHost host_;
  vm::Vmm vmm_;
  net::RpcServer rpc_server_;
  GramService gram_;
  /// Loopback export of the host's own file system (Table 2's
  /// LoopbackNFS column mounts through this).
  storage::NfsServer loopback_export_;
  std::unique_ptr<storage::NfsClient> loopback_client_;
  net::DhcpServer dhcp_;
  GridFtp ftp_;
  image::ChunkStore chunk_store_;
  std::unordered_map<net::NodeId, vfs::VfsMount*> vfs_mounts_;
  InformationService* published_to_{nullptr};
  std::uint32_t instantiations_{0};
  /// Instantiations accepted but not yet running: counted against the
  /// advertised future so concurrent placements spread correctly.
  std::uint32_t pending_instantiations_{0};
  bool up_{true};
  std::uint64_t next_inflight_id_{1};
  /// Accepted-but-not-finished instantiation callbacks, so a crash can
  /// fail them instead of leaving callers waiting forever.
  std::unordered_map<std::uint64_t, InstantiateCallback> inflight_;
  std::vector<CrashListener> crash_listeners_;
};

}  // namespace vmgrid::middleware
