#pragma once

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/status.hpp"
#include "middleware/compute_server.hpp"
#include "middleware/image_server.hpp"
#include "vm/virtual_machine.hpp"

namespace vmgrid::middleware {

class Grid;

/// Identifier of an archived (hibernated) VM.
class CheckpointId {
 public:
  constexpr CheckpointId() = default;
  explicit constexpr CheckpointId(std::uint64_t v) : v_{v} {}
  [[nodiscard]] constexpr std::uint64_t value() const { return v_; }
  [[nodiscard]] constexpr bool valid() const { return v_ != 0; }
  constexpr auto operator<=>(const CheckpointId&) const = default;

 private:
  std::uint64_t v_{0};
};

enum class CheckpointTier { kDisk, kTape };

struct CheckpointInfo {
  CheckpointId id{};
  std::string owner;
  std::string vm_name;
  std::uint64_t state_bytes{0};
  std::uint64_t diff_bytes{0};
  CheckpointTier tier{CheckpointTier::kDisk};
  sim::TimePoint created{};
  sim::TimePoint last_touched{};
};

struct ArchiveParams {
  /// Idle checkpoints older than this are migrated to tape by the sweep.
  sim::Duration tape_after{sim::Duration::minutes(60)};
  sim::Duration sweep_interval{sim::Duration::minutes(10)};
  sim::Duration tape_mount_time{sim::Duration::seconds(45)};
  double tape_bandwidth_bps{6e6};
};

/// The end of the paper's §4 VM life cycle: "the user, or a grid
/// scheduler, will have the option to shutdown, hibernate, restore, or
/// migrate the virtual machine at any time... Infrequently run virtual
/// machine images will be migrated to tape. The life cycle of a virtual
/// machine ends when the image is removed from permanent storage."
///
/// Hibernation serializes a running VM (memory + device state + the
/// non-persistent diff) onto an archive store; thawing restores it on
/// any capable compute server — with its guest computation intact.
class ArchiveService {
 public:
  ArchiveService(Grid& grid, ImageServer& store, ArchiveParams params = {});
  ~ArchiveService();

  ArchiveService(const ArchiveService&) = delete;
  ArchiveService& operator=(const ArchiveService&) = delete;

  /// Receives the checkpoint id, or why hibernation failed
  /// (kFailedPrecondition: VM not running; upload failures keep the
  /// gridftp/rpc cause chain).
  using HibernateCallback = std::function<void(Result<CheckpointId>)>;
  /// Receives the thawed VM, or a status whose root cause says which
  /// stage failed (kNotFound: unknown checkpoint; kUnavailable: target
  /// server down; download/storage failures chain the underlying cause).
  using ThawCallback = std::function<void(vm::VirtualMachine*, Status status)>;

  /// Suspend `vmachine`, upload its state to the archive, and destroy the
  /// instance on `server`. The guest's paused tasks travel with the
  /// checkpoint.
  void hibernate(ComputeServer& server, vm::VirtualMachine& vmachine,
                 const std::string& owner, HibernateCallback cb);

  /// Materialize a checkpoint as a fresh running VM on `server` (which
  /// must be able to reach the base image through `access`).
  void thaw(CheckpointId id, ComputeServer& server, StateAccess access,
            net::NodeId image_server_node, ThawCallback cb);

  /// Permanently delete a checkpoint (ends the VM's life cycle).
  bool remove(CheckpointId id);

  [[nodiscard]] std::optional<CheckpointInfo> info(CheckpointId id) const;
  [[nodiscard]] std::vector<CheckpointInfo> list() const;
  [[nodiscard]] std::uint64_t disk_bytes() const;
  [[nodiscard]] std::uint64_t tape_bytes() const;

  /// Run one archival sweep immediately (also runs periodically).
  void sweep();

 private:
  struct Stored {
    CheckpointInfo info;
    vm::VmConfig config;
    vm::VmImageSpec image;
    std::vector<vm::VirtualMachine::TrackedTask> tasks;
  };

  [[nodiscard]] std::string state_file(CheckpointId id) const {
    return "ckpt-" + std::to_string(id.value()) + ".state";
  }

  Grid& grid_;
  ImageServer& store_;
  ArchiveParams params_;
  std::unordered_map<std::uint64_t, Stored> checkpoints_;
  std::uint64_t next_id_{1};
  sim::EventId sweep_event_{};
};

}  // namespace vmgrid::middleware
