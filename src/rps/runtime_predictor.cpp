#include "rps/runtime_predictor.hpp"

#include <algorithm>
#include <cmath>

#include "host/schedulers.hpp"

namespace vmgrid::rps {

double RunningTimePredictor::predicted_share(const TimeSeries& load_series) const {
  const double load = std::max(0.0, predictor_->predict(load_series, 1));
  // Exact GPS fair-share: the job (demand 1) competes with floor(load)
  // saturated background processes plus one fractional one.
  const auto whole = static_cast<std::size_t>(std::floor(load));
  const double frac = load - static_cast<double>(whole);
  std::vector<double> weights(1 + whole + (frac > 0 ? 1 : 0), 1.0);
  std::vector<double> caps(weights.size(), 1.0);
  if (frac > 0) caps.back() = frac;
  const auto alloc = host::water_fill(weights, caps, ncpus_);
  return std::clamp(alloc[0], 0.0, 1.0);
}

double RunningTimePredictor::predict_runtime(const TimeSeries& load_series,
                                             double cpu_seconds) const {
  const double share = predicted_share(load_series);
  if (share <= 1e-9) return cpu_seconds * 1e9;
  return cpu_seconds / share;
}

}  // namespace vmgrid::rps
