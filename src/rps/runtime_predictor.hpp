#pragma once

#include <memory>

#include "rps/predictors.hpp"

namespace vmgrid::rps {

/// Application-level performance prediction (the second half of RPS):
/// map a predicted host load to the expected running time of a task of
/// known CPU demand on a fair-share host with `ncpus` processors.
class RunningTimePredictor {
 public:
  RunningTimePredictor(std::shared_ptr<Predictor> load_predictor, double ncpus)
      : predictor_{std::move(load_predictor)}, ncpus_{ncpus} {}

  /// Expected wall seconds for `cpu_seconds` of work started now, given
  /// the load series of the candidate host. Under fair share, a task
  /// competing with L runnable processes on an N-CPU host receives
  /// min(1, N / (L + 1)) of a CPU.
  [[nodiscard]] double predict_runtime(const TimeSeries& load_series,
                                       double cpu_seconds) const;

  /// Convenience: the predicted share the task would receive.
  [[nodiscard]] double predicted_share(const TimeSeries& load_series) const;

  [[nodiscard]] const Predictor& load_predictor() const { return *predictor_; }

 private:
  std::shared_ptr<Predictor> predictor_;
  double ncpus_;
};

}  // namespace vmgrid::rps
