#pragma once

#include <memory>
#include <string>
#include <vector>

#include "rps/timeseries.hpp"

namespace vmgrid::rps {

/// One-step-ahead load predictor over a TimeSeries (RPS-style: the
/// prediction service runs a family of fitted models and applications
/// pick by evaluated error).
class Predictor {
 public:
  virtual ~Predictor() = default;
  /// Predict the value `steps` epochs ahead of the series' last sample.
  [[nodiscard]] virtual double predict(const TimeSeries& series,
                                       std::size_t steps = 1) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// LAST: next value = current value. Hard to beat at short horizons on
/// self-similar host load, which is why RPS ships it as the baseline.
class LastValuePredictor final : public Predictor {
 public:
  [[nodiscard]] double predict(const TimeSeries& series, std::size_t steps) const override;
  [[nodiscard]] std::string name() const override { return "LAST"; }
};

/// Sliding-window mean.
class MovingAveragePredictor final : public Predictor {
 public:
  explicit MovingAveragePredictor(std::size_t window = 16) : window_{window} {}
  [[nodiscard]] double predict(const TimeSeries& series, std::size_t steps) const override;
  [[nodiscard]] std::string name() const override {
    return "MA(" + std::to_string(window_) + ")";
  }

 private:
  std::size_t window_;
};

/// Exponentially weighted moving average.
class EwmaPredictor final : public Predictor {
 public:
  explicit EwmaPredictor(double alpha = 0.3) : alpha_{alpha} {}
  [[nodiscard]] double predict(const TimeSeries& series, std::size_t steps) const override;
  [[nodiscard]] std::string name() const override { return "EWMA"; }

 private:
  double alpha_;
};

/// AR(p) fitted by Yule-Walker (Levinson-Durbin recursion) over the
/// series' window; multi-step prediction iterates the model.
class ArPredictor final : public Predictor {
 public:
  explicit ArPredictor(std::size_t order = 8) : order_{order} {}
  [[nodiscard]] double predict(const TimeSeries& series, std::size_t steps) const override;
  [[nodiscard]] std::string name() const override {
    return "AR(" + std::to_string(order_) + ")";
  }

  /// Exposed for tests: Yule-Walker coefficients for the series.
  [[nodiscard]] std::vector<double> fit(const TimeSeries& series) const;

 private:
  std::size_t order_;
};

/// Mean squared error of one-step predictions replayed over a series.
[[nodiscard]] double evaluate_mse(const Predictor& p, const std::vector<double>& data,
                                  std::size_t warmup = 16);

}  // namespace vmgrid::rps
