#include "rps/timeseries.hpp"

#include <cassert>

namespace vmgrid::rps {

TimeSeries::TimeSeries(std::size_t capacity) : capacity_{capacity} {
  assert(capacity_ >= 2);
}

void TimeSeries::append(sim::TimePoint t, double value) {
  if (values_.size() >= capacity_) {
    // Drop the oldest half to amortize erase cost.
    const auto keep = capacity_ / 2;
    values_.erase(values_.begin(), values_.end() - static_cast<std::ptrdiff_t>(keep));
    times_.erase(times_.begin(), times_.end() - static_cast<std::ptrdiff_t>(keep));
  }
  times_.push_back(t);
  values_.push_back(value);
}

std::vector<double> TimeSeries::tail(std::size_t n) const {
  const std::size_t take = std::min(n, values_.size());
  return {values_.end() - static_cast<std::ptrdiff_t>(take), values_.end()};
}

double TimeSeries::mean() const {
  if (values_.empty()) return 0.0;
  double s = 0.0;
  for (double v : values_) s += v;
  return s / static_cast<double>(values_.size());
}

double TimeSeries::variance() const {
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  double s = 0.0;
  for (double v : values_) s += (v - m) * (v - m);
  return s / static_cast<double>(values_.size());
}

double TimeSeries::autocovariance(std::size_t lag) const {
  if (values_.size() <= lag) return 0.0;
  const double m = mean();
  double s = 0.0;
  for (std::size_t i = lag; i < values_.size(); ++i) {
    s += (values_[i] - m) * (values_[i - lag] - m);
  }
  return s / static_cast<double>(values_.size());
}

}  // namespace vmgrid::rps
