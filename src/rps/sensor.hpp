#pragma once

#include <functional>

#include "host/cpu_engine.hpp"
#include "rps/timeseries.hpp"

namespace vmgrid::rps {

/// Periodic host-load sensor: samples the runnable demand of a CPU
/// engine into a TimeSeries (the RPS sensor → stream → predictor chain).
class HostLoadSensor {
 public:
  HostLoadSensor(sim::Simulation& s, const host::CpuEngine& engine,
                 sim::Duration period = sim::Duration::seconds(1),
                 std::size_t capacity = 4096);
  ~HostLoadSensor();

  HostLoadSensor(const HostLoadSensor&) = delete;
  HostLoadSensor& operator=(const HostLoadSensor&) = delete;

  void start();
  void stop();

  [[nodiscard]] const TimeSeries& series() const { return series_; }
  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] sim::Duration period() const { return period_; }

  /// Optional per-sample hook (e.g. to feed a migration trigger).
  void set_on_sample(std::function<void(double)> fn) { on_sample_ = std::move(fn); }

 private:
  void tick();

  sim::Simulation& sim_;
  const host::CpuEngine& engine_;
  sim::Duration period_;
  TimeSeries series_;
  sim::EventId event_{};
  bool running_{false};
  std::function<void(double)> on_sample_;
};

}  // namespace vmgrid::rps
