#include "rps/predictors.hpp"

#include <algorithm>
#include <cmath>

namespace vmgrid::rps {

double LastValuePredictor::predict(const TimeSeries& series, std::size_t) const {
  return series.empty() ? 0.0 : series.last();
}

double MovingAveragePredictor::predict(const TimeSeries& series, std::size_t) const {
  if (series.empty()) return 0.0;
  const auto tail = series.tail(window_);
  double s = 0.0;
  for (double v : tail) s += v;
  return s / static_cast<double>(tail.size());
}

double EwmaPredictor::predict(const TimeSeries& series, std::size_t) const {
  if (series.empty()) return 0.0;
  const auto tail = series.tail(64);
  double est = tail.front();
  for (double v : tail) est = alpha_ * v + (1.0 - alpha_) * est;
  return est;
}

std::vector<double> ArPredictor::fit(const TimeSeries& series) const {
  const std::size_t p = std::min(order_, series.size() >= 2 ? series.size() - 1 : 0);
  if (p == 0) return {};
  // Levinson-Durbin on the autocovariance sequence.
  std::vector<double> r(p + 1);
  for (std::size_t k = 0; k <= p; ++k) r[k] = series.autocovariance(k);
  if (r[0] <= 1e-12) return {};  // constant series
  std::vector<double> a(p + 1, 0.0), prev(p + 1, 0.0);
  double e = r[0];
  for (std::size_t k = 1; k <= p; ++k) {
    double acc = r[k];
    for (std::size_t j = 1; j < k; ++j) acc -= a[j] * r[k - j];
    const double reflection = acc / e;
    prev = a;
    a[k] = reflection;
    for (std::size_t j = 1; j < k; ++j) a[j] = prev[j] - reflection * prev[k - j];
    e *= (1.0 - reflection * reflection);
    if (e <= 1e-12) break;
  }
  return {a.begin() + 1, a.end()};
}

double ArPredictor::predict(const TimeSeries& series, std::size_t steps) const {
  if (series.empty()) return 0.0;
  const auto coef = fit(series);
  if (coef.empty()) return series.last();
  const double mean = series.mean();
  // History, newest first, as deviations from the mean.
  std::vector<double> hist;
  const auto tail = series.tail(coef.size());
  for (auto it = tail.rbegin(); it != tail.rend(); ++it) hist.push_back(*it - mean);
  double prediction = series.last();
  for (std::size_t s = 0; s < std::max<std::size_t>(1, steps); ++s) {
    double dev = 0.0;
    for (std::size_t j = 0; j < coef.size() && j < hist.size(); ++j) {
      dev += coef[j] * hist[j];
    }
    prediction = mean + dev;
    hist.insert(hist.begin(), dev);
    if (hist.size() > coef.size()) hist.pop_back();
  }
  return prediction;
}

double evaluate_mse(const Predictor& p, const std::vector<double>& data,
                    std::size_t warmup) {
  if (data.size() <= warmup + 1) return 0.0;
  TimeSeries series{data.size() + 2};
  double se = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (i > warmup) {
      const double pred = p.predict(series, 1);
      const double err = pred - data[i];
      se += err * err;
      ++n;
    }
    series.append(sim::TimePoint::from_seconds(static_cast<double>(i)), data[i]);
  }
  return n > 0 ? se / static_cast<double>(n) : 0.0;
}

}  // namespace vmgrid::rps
