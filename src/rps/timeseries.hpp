#pragma once

#include <cstddef>
#include <vector>

#include "sim/time.hpp"

namespace vmgrid::rps {

/// Fixed-capacity sliding window of (time, value) samples — the feed
/// between RPS sensors and predictors.
class TimeSeries {
 public:
  explicit TimeSeries(std::size_t capacity = 4096);

  void append(sim::TimePoint t, double value);

  [[nodiscard]] std::size_t size() const { return values_.size(); }
  [[nodiscard]] bool empty() const { return values_.empty(); }
  [[nodiscard]] double value(std::size_t i) const { return values_[i]; }
  [[nodiscard]] sim::TimePoint time(std::size_t i) const { return times_[i]; }
  [[nodiscard]] double last() const { return values_.back(); }

  /// Most recent `n` values, oldest first.
  [[nodiscard]] std::vector<double> tail(std::size_t n) const;

  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;

  /// Autocovariance at the given lag (biased estimator, as used by
  /// Yule-Walker fitting).
  [[nodiscard]] double autocovariance(std::size_t lag) const;

 private:
  std::size_t capacity_;
  std::vector<sim::TimePoint> times_;
  std::vector<double> values_;
};

}  // namespace vmgrid::rps
