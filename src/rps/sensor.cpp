#include "rps/sensor.hpp"

namespace vmgrid::rps {

HostLoadSensor::HostLoadSensor(sim::Simulation& s, const host::CpuEngine& engine,
                               sim::Duration period, std::size_t capacity)
    : sim_{s}, engine_{engine}, period_{period}, series_{capacity} {}

HostLoadSensor::~HostLoadSensor() { stop(); }

void HostLoadSensor::start() {
  if (running_) return;
  running_ = true;
  tick();
}

void HostLoadSensor::stop() {
  if (!running_) return;
  running_ = false;
  sim_.cancel(event_);
  event_ = {};
}

void HostLoadSensor::tick() {
  if (!running_) return;
  const double load = engine_.total_demand();
  series_.append(sim_.now(), load);
  if (on_sample_) on_sample_(load);
  event_ = sim_.schedule_weak_after(period_, [this] { tick(); });
}

}  // namespace vmgrid::rps
