#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/address.hpp"
#include "net/network.hpp"
#include "sim/random.hpp"
#include "sim/simulation.hpp"

namespace vmgrid::middleware {
class ComputeServer;
}

namespace vmgrid::net {
class RpcServer;
}

namespace vmgrid::fault {

/// What to break. Every kind has a matching heal action (except kVmStall,
/// whose stall auto-resumes inside the VM).
enum class FaultKind : std::uint8_t {
  kHostCrash,     // ComputeServer::crash(), recover() after `duration`
  kServerOutage,  // service node (NFS/image server) off the net, restarts after
  kLinkDown,      // link hard-down both directions, healed after
  kLinkDegraded,  // latency x magnitude, bandwidth / magnitude, restored after
  kLinkFlaky,     // per-packet Bernoulli loss = magnitude, cleared after
  kVmStall,       // every VM on the host pauses for `duration`
  kOverload,      // synthetic load occupies admission slots of an RpcServer
};

[[nodiscard]] const char* to_string(FaultKind k);

/// One scheduled injection. `at` is relative to FaultEngine::arm().
struct FaultEvent {
  sim::Duration at{};
  FaultKind kind{FaultKind::kHostCrash};
  std::string target;        // a name registered with the engine
  sim::Duration duration{};  // outage length; infinite => never healed
  double magnitude{0.0};     // loss probability (flaky) / slowdown (degraded)
};

/// Knobs for FaultPlan::random. Weights are relative; a kind whose target
/// list is empty is excluded from the draw.
struct RandomFaultOptions {
  double events_per_hour{6.0};
  sim::Duration horizon{sim::Duration::seconds(3600)};
  sim::Duration mean_outage{sim::Duration::seconds(30)};
  double host_crash_weight{1.0};
  double server_outage_weight{1.0};
  double link_down_weight{1.0};
  double link_degraded_weight{1.0};
  double link_flaky_weight{1.0};
  double vm_stall_weight{1.0};
  /// 0.0 by default so historical (seed, options) pairs keep producing
  /// byte-identical plans: weight-0 kinds never enter the choice list
  /// and therefore never perturb the rng draw sequence.
  double overload_weight{0.0};
  double flaky_loss{0.05};
  double degraded_factor{8.0};
  /// Admission slots the synthetic load occupies during kOverload.
  double overload_slots{4.0};
};

/// An ordered schedule of faults. Built by hand (scripted scenarios) or
/// drawn from a seed (chaos testing). A plan is pure data: generating it
/// uses its own Rng, so the same (seed, options, targets) always yields
/// the same byte-identical schedule regardless of simulation state.
class FaultPlan {
 public:
  FaultPlan() = default;

  FaultPlan& add(FaultEvent ev) {
    events_.push_back(std::move(ev));
    return *this;
  }

  /// Poisson arrivals over `opts.horizon` with exponential outage
  /// lengths; targets are drawn uniformly from the matching list.
  [[nodiscard]] static FaultPlan random(std::uint64_t seed,
                                        const RandomFaultOptions& opts,
                                        const std::vector<std::string>& hosts,
                                        const std::vector<std::string>& servers,
                                        const std::vector<std::string>& links);

  /// Same, with kOverload targets (FaultEngine::rpc_server_names()).
  /// The 4-list draw is byte-identical to the 3-list one whenever
  /// overload_weight is 0 or `rpc_servers` is empty.
  [[nodiscard]] static FaultPlan random(std::uint64_t seed,
                                        const RandomFaultOptions& opts,
                                        const std::vector<std::string>& hosts,
                                        const std::vector<std::string>& servers,
                                        const std::vector<std::string>& links,
                                        const std::vector<std::string>& rpc_servers);

  [[nodiscard]] const std::vector<FaultEvent>& events() const { return events_; }
  [[nodiscard]] bool empty() const { return events_.empty(); }

 private:
  std::vector<FaultEvent> events_;
};

/// What actually happened: one record per armed event, healed flipped
/// when the matching recovery action fired.
struct InjectionRecord {
  sim::TimePoint injected_at{};
  FaultKind kind{FaultKind::kHostCrash};
  std::string target;
  sim::Duration duration{};
  bool applied{false};  // false: target unknown / not applicable
  bool healed{false};
};

/// Applies a FaultPlan to a live simulation through the fault hooks of
/// the registered components. All scheduling is via weak events, so an
/// armed engine never keeps an otherwise-finished run() alive, and every
/// injection is logged + counted (`fault.injected{kind=...}`).
class FaultEngine {
 public:
  FaultEngine(sim::Simulation& sim, net::Network& net) : sim_{sim}, net_{net} {}

  /// Targets for kHostCrash / kVmStall, addressed by cs.name().
  void register_host(middleware::ComputeServer& cs);
  /// Targets for kServerOutage (NFS / image servers), addressed by name.
  void register_server_node(std::string name, net::NodeId node);
  /// Targets for kOverload: a server whose admission slots the fault
  /// saturates with synthetic load. Only meaningful for servers with
  /// admission control enabled (set_synthetic_load is a no-op otherwise).
  void register_rpc_server(std::string name, net::RpcServer& server);
  /// Targets for the kLink* kinds, addressed by name.
  void register_link(std::string name, net::NodeId a, net::NodeId b);

  [[nodiscard]] std::vector<std::string> host_names() const;
  [[nodiscard]] std::vector<std::string> server_names() const;
  [[nodiscard]] std::vector<std::string> link_names() const;
  [[nodiscard]] std::vector<std::string> rpc_server_names() const;

  /// Schedule every event in the plan relative to now. May be called
  /// more than once (e.g. one scripted plan plus one random plan).
  void arm(const FaultPlan& plan);

  /// Exploration hook: while the simulation is exploring and `slots` is
  /// at least 2, arming an event raises a "fault.inject" choice that
  /// shifts its injection time among `slots` offsets evenly spanning
  /// [at, at + window] — fault timing becomes a schedule dimension the
  /// explorer races against probes and recovery. No effect outside
  /// exploration (choices resolve to offset 0).
  void set_choice_window(sim::Duration window, std::uint32_t slots) {
    choice_window_ = window;
    choice_slots_ = slots;
  }

  [[nodiscard]] const std::vector<InjectionRecord>& log() const { return log_; }
  [[nodiscard]] std::uint64_t injected() const { return injected_; }
  [[nodiscard]] std::uint64_t healed() const { return healed_; }

 private:
  struct LinkRef {
    net::NodeId a{}, b{};
  };

  void inject(FaultEvent ev, std::size_t record);
  void heal(std::size_t record, std::function<void()> undo, sim::Duration after);

  sim::Simulation& sim_;
  net::Network& net_;
  std::vector<std::string> host_order_;  // registration order for name lists
  std::unordered_map<std::string, middleware::ComputeServer*> hosts_;
  std::vector<std::string> server_order_;
  std::unordered_map<std::string, net::NodeId> servers_;
  std::vector<std::string> link_order_;
  std::unordered_map<std::string, LinkRef> links_;
  std::vector<std::string> rpc_server_order_;
  std::unordered_map<std::string, net::RpcServer*> rpc_servers_;
  /// Original params of currently-degraded links; presence blocks a
  /// second overlapping degradation (its heal would restore too early).
  std::unordered_map<std::string, net::LinkParams> degraded_saved_;
  std::vector<InjectionRecord> log_;
  std::uint64_t injected_{0};
  std::uint64_t healed_{0};
  sim::Duration choice_window_{};
  std::uint32_t choice_slots_{1};
};

}  // namespace vmgrid::fault
