#include "fault/explore_world.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "fault/fault.hpp"
#include "middleware/testbed.hpp"
#include "net/overload.hpp"
#include "obs/metrics.hpp"
#include "vm/virtual_machine.hpp"
#include "vm/vmm.hpp"
#include "workload/task_spec.hpp"

namespace vmgrid::fault {

namespace {

std::string fmt(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

double meta_num(const std::map<std::string, std::string>& meta,
                const std::string& key, double fallback) {
  auto it = meta.find(key);
  if (it == meta.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  return end != it->second.c_str() && *end == '\0' ? v : fallback;
}

}  // namespace

std::map<std::string, std::string> ExploreWorldOptions::to_meta() const {
  return {
      {"world_hosts", std::to_string(hosts)},
      {"world_sessions", std::to_string(sessions)},
      {"world_faults", std::to_string(faults)},
      {"world_fault_at_s", fmt(fault_at_s)},
      {"world_outage_s", fmt(outage_s)},
      {"world_probe_interval_s", fmt(probe_interval_s)},
      {"world_horizon_s", fmt(horizon_s)},
      {"world_fault_window_s", fmt(fault_window_s)},
      {"world_fault_slots", std::to_string(fault_slots)},
      {"world_task_s", fmt(task_s)},
  };
}

ExploreWorldOptions ExploreWorldOptions::from_meta(
    const std::map<std::string, std::string>& meta, ExploreWorldOptions base) {
  base.hosts = static_cast<int>(meta_num(meta, "world_hosts", base.hosts));
  base.sessions = static_cast<int>(meta_num(meta, "world_sessions", base.sessions));
  base.faults = static_cast<int>(meta_num(meta, "world_faults", base.faults));
  base.fault_at_s = meta_num(meta, "world_fault_at_s", base.fault_at_s);
  base.outage_s = meta_num(meta, "world_outage_s", base.outage_s);
  base.probe_interval_s =
      meta_num(meta, "world_probe_interval_s", base.probe_interval_s);
  base.horizon_s = meta_num(meta, "world_horizon_s", base.horizon_s);
  base.fault_window_s =
      meta_num(meta, "world_fault_window_s", base.fault_window_s);
  base.fault_slots = static_cast<std::uint32_t>(
      meta_num(meta, "world_fault_slots", base.fault_slots));
  base.task_s = meta_num(meta, "world_task_s", base.task_s);
  return base;
}

void run_failover_world(sim::ExploreRun& run, const ExploreWorldOptions& opts) {
  using namespace middleware;

  testbed::FaultTestbed tb{run.seed(), std::max(1, opts.hosts)};
  auto& g = *tb.grid;

  // Phase 1, outside the choice scope: session creation. It is identical
  // on every schedule, so exploring its (large) internal traffic would
  // only dilute the depth budget the fault/recovery races need.
  std::vector<VmSession*> sessions;
  for (int i = 0; i < std::max(1, opts.sessions); ++i) {
    SessionRequest req;
    req.user = "explorer-" + std::to_string(i);
    req.want_ip = false;
    req.query.time_bound = sim::Duration::seconds(1);
    g.sessions().create_session(req, [&sessions](VmSession* s, Status) {
      if (s != nullptr) sessions.push_back(s);
    });
  }
  g.run();

  // Phase 2: every instrumented site from here on is schedule-explored.
  run.attach(g.simulation());

  auto events = std::make_shared<std::vector<FailoverEvent>>();
  g.sessions().set_failover_handler(
      [events](const FailoverEvent& ev) { events->push_back(ev); });

  // Probes retry once through a shared budget so the retry_budget
  // invariant watches a live token bucket, not a vacuous one.
  auto probe_budget = std::make_shared<net::RetryBudget>();
  FailoverPolicy pol;
  pol.probe_interval = sim::Duration::seconds(opts.probe_interval_s);
  pol.probe.max_attempts = 2;
  pol.probe.retry_budget = probe_budget.get();
  g.sessions().set_failover(pol);

  FaultEngine eng{g.simulation(), g.network()};
  for (auto* cs : tb.computes) eng.register_host(*cs);
  eng.set_choice_window(sim::Duration::seconds(opts.fault_window_s),
                        std::max<std::uint32_t>(1, opts.fault_slots));
  FaultPlan plan;
  for (int i = 0; i < opts.faults; ++i) {
    std::string target;
    if (!sessions.empty()) {
      target = sessions[static_cast<std::size_t>(i) % sessions.size()]
                   ->server()
                   .name();
    } else if (!tb.computes.empty()) {
      target =
          tb.computes[static_cast<std::size_t>(i) % tb.computes.size()]->name();
    }
    plan.add(FaultEvent{.at = sim::Duration::seconds(opts.fault_at_s + 7.0 * i),
                        .kind = FaultKind::kHostCrash,
                        .target = target,
                        .duration = sim::Duration::seconds(opts.outage_s),
                        .magnitude = 0.0});
  }
  eng.arm(plan);

  // Closed-loop task stream: each session keeps one task in flight, so
  // the task_ok_while_dead and no_lost_tasks invariants see traffic
  // racing the crash and the recovery.
  auto tasks_ok = std::make_shared<std::uint64_t>(0);
  auto tasks_failed = std::make_shared<std::uint64_t>(0);
  if (opts.task_s > 0.0) {
    for (VmSession* s : sessions) {
      auto pump = std::make_shared<std::function<void()>>();
      *pump = [s, pump, tasks_ok, tasks_failed, &g, task_s = opts.task_s] {
        workload::TaskSpec spec;
        spec.name = "explore-task";
        spec.user_seconds = task_s;
        s->run_task(spec, [pump, tasks_ok, tasks_failed, &g](vm::TaskResult r) {
          ++*(r.ok() ? tasks_ok : tasks_failed);
          g.simulation().schedule_weak_after(sim::Duration::millis(250), *pump);
        });
      };
      (*pump)();
    }
  }

  // --- the §15 invariant catalog ---
  const std::vector<ComputeServer*> computes = tb.computes;
  run.invariants().add("no_double_vm", [computes]() -> std::string {
    std::unordered_map<std::string, int> by_name;
    for (auto* cs : computes) {
      if (!cs->up()) continue;
      for (auto* vmachine : cs->vmm().vms()) {
        if (++by_name[vmachine->config().name] > 1) {
          return "two live VMs named " + vmachine->config().name;
        }
      }
    }
    return {};
  });
  auto* simp = &g.simulation();
  run.invariants().add("task_ok_while_dead", [simp]() -> std::string {
    const double v =
        simp->metrics().counter("session.invariant.task_ok_while_dead").value();
    return v > 0.0 ? "a guest task reported ok on a session with no VM" : "";
  });
  run.invariants().add("no_lost_tasks", [sessions]() -> std::string {
    for (VmSession* s : sessions) {
      if (!s->alive() && s->pending_task_count() > 0) {
        return "dead session " + s->name() + " still holds " +
               std::to_string(s->pending_task_count()) + " task claim(s)";
      }
    }
    return {};
  });
  run.invariants().add("cause_chain_preserved", [events]() -> std::string {
    for (const auto& ev : *events) {
      if (ev.ok()) continue;
      if (!ev.status.cause().ok()) continue;  // chain intact
      const std::string& m = ev.status.message();
      // Genuine session-layer root errors legitimately have no cause.
      if (m == "no live placement for failover" ||
          m == "placement has no compute binding") {
        continue;
      }
      return "failover failure dropped its cause: " + ev.status.to_string();
    }
    return {};
  });
  run.invariants().add("retry_budget", [probe_budget]() -> std::string {
    return probe_budget->tokens() < 0.0 ? "probe retry budget overdrawn" : "";
  });
  run.invariants().add("chunk_refcounts", [computes]() -> std::string {
    for (auto* cs : computes) {
      if (!cs->chunk_store().refcounts_valid()) {
        return "chunk refcount wrapped on " + cs->name();
      }
    }
    return {};
  });

  // State digest for the explorer's cache: deliberately time-free — two
  // schedules that land in the same recovery state merge even when their
  // held deliveries shifted every timestamp.
  auto* engp = &eng;
  auto* mgr = &g.sessions();
  run.set_state_digest([computes, sessions, events, tasks_ok, tasks_failed,
                        engp, mgr]() -> std::uint64_t {
    std::uint64_t d = 0x243f6a8885a308d3ull;
    auto mixin = [&d](std::uint64_t v) {
      d ^= v + 0x9e3779b97f4a7c15ull + (d << 6) + (d >> 2);
    };
    mixin(mgr->failovers_completed());
    mixin(mgr->failovers_failed());
    mixin(mgr->active_sessions());
    for (auto* cs : computes) {
      mixin(cs->up() ? 1 : 0);
      mixin(cs->vmm().vms().size());
    }
    for (VmSession* s : sessions) {
      mixin(s->alive() ? 1 : 0);
      mixin(s->failovers());
      mixin(s->pending_task_count());
    }
    mixin(engp->injected());
    mixin(engp->healed());
    mixin(*tasks_ok);
    mixin(*tasks_failed);
    mixin(events->size());
    return d;
  });

  g.run_for(sim::Duration::seconds(opts.horizon_s));
}

}  // namespace vmgrid::fault
