#include "fault/fault.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "middleware/compute_server.hpp"
#include "net/rpc.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "vm/virtual_machine.hpp"
#include "vm/vmm.hpp"

namespace vmgrid::fault {

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kHostCrash:
      return "host_crash";
    case FaultKind::kServerOutage:
      return "server_outage";
    case FaultKind::kLinkDown:
      return "link_down";
    case FaultKind::kLinkDegraded:
      return "link_degraded";
    case FaultKind::kLinkFlaky:
      return "link_flaky";
    case FaultKind::kVmStall:
      return "vm_stall";
    case FaultKind::kOverload:
      return "overload";
  }
  return "unknown";
}

FaultPlan FaultPlan::random(std::uint64_t seed, const RandomFaultOptions& opts,
                            const std::vector<std::string>& hosts,
                            const std::vector<std::string>& servers,
                            const std::vector<std::string>& links) {
  return random(seed, opts, hosts, servers, links, {});
}

FaultPlan FaultPlan::random(std::uint64_t seed, const RandomFaultOptions& opts,
                            const std::vector<std::string>& hosts,
                            const std::vector<std::string>& servers,
                            const std::vector<std::string>& links,
                            const std::vector<std::string>& rpc_servers) {
  FaultPlan plan;
  if (opts.events_per_hour <= 0.0 || opts.horizon <= sim::Duration::zero()) {
    return plan;
  }
  struct Choice {
    FaultKind kind;
    double weight;
    const std::vector<std::string>* targets;
  };
  std::vector<Choice> choices;
  auto consider = [&choices](FaultKind k, double w, const std::vector<std::string>& t) {
    if (w > 0.0 && !t.empty()) choices.push_back(Choice{k, w, &t});
  };
  consider(FaultKind::kHostCrash, opts.host_crash_weight, hosts);
  consider(FaultKind::kServerOutage, opts.server_outage_weight, servers);
  consider(FaultKind::kLinkDown, opts.link_down_weight, links);
  consider(FaultKind::kLinkDegraded, opts.link_degraded_weight, links);
  consider(FaultKind::kLinkFlaky, opts.link_flaky_weight, links);
  consider(FaultKind::kVmStall, opts.vm_stall_weight, hosts);
  consider(FaultKind::kOverload, opts.overload_weight, rpc_servers);
  if (choices.empty()) return plan;
  double total_weight = 0.0;
  for (const auto& c : choices) total_weight += c.weight;

  // Own Rng: the schedule depends only on (seed, options, targets), never
  // on simulation state, so plans are portable across runs and replicas.
  sim::Rng rng{seed};
  const double mean_gap_s = 3600.0 / opts.events_per_hour;
  // Heal time of the last outage drawn per target. A new event for a
  // busy target is clamped to start at the heal point instead of
  // silently stacking a second outage on the first (which the engine
  // would skip anyway, mis-counting injected faults and distorting the
  // per-target outage statistics chaos sweeps reason about).
  std::unordered_map<std::string, sim::Duration> busy_until;
  sim::Duration t = sim::Duration::zero();
  for (;;) {
    t = t + sim::Duration::seconds(rng.exponential(mean_gap_s));
    if (t >= opts.horizon) break;
    double pick = rng.uniform(0.0, total_weight);
    const Choice* chosen = &choices.back();
    for (const auto& c : choices) {
      if (pick < c.weight) {
        chosen = &c;
        break;
      }
      pick -= c.weight;
    }
    FaultEvent ev;
    ev.at = t;
    ev.kind = chosen->kind;
    ev.target = (*chosen->targets)[rng.index(chosen->targets->size())];
    ev.duration = sim::Duration::seconds(
        std::max(0.5, rng.exponential(opts.mean_outage.to_seconds())));
    if (ev.kind == FaultKind::kLinkFlaky) ev.magnitude = opts.flaky_loss;
    if (ev.kind == FaultKind::kLinkDegraded) ev.magnitude = opts.degraded_factor;
    if (ev.kind == FaultKind::kOverload) ev.magnitude = opts.overload_slots;
    auto& busy = busy_until[ev.target];
    if (busy.is_infinite()) continue;  // target never heals: drop the draw
    if (ev.at < busy) ev.at = busy;    // clamp into the idle window
    if (ev.at >= opts.horizon) continue;  // clamped past the horizon: drop
    busy = ev.duration.is_infinite() ? sim::Duration::infinite()
                                     : ev.at + ev.duration;
    plan.add(std::move(ev));
  }
  // Clamping can locally reorder arrivals; the plan contract is a
  // time-ordered schedule (stable: equal times keep draw order).
  std::stable_sort(
      plan.events_.begin(), plan.events_.end(),
      [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
  return plan;
}

void FaultEngine::register_host(middleware::ComputeServer& cs) {
  if (hosts_.emplace(cs.name(), &cs).second) host_order_.push_back(cs.name());
}

void FaultEngine::register_server_node(std::string name, net::NodeId node) {
  if (servers_.emplace(name, node).second) server_order_.push_back(std::move(name));
}

void FaultEngine::register_link(std::string name, net::NodeId a, net::NodeId b) {
  if (links_.emplace(name, LinkRef{a, b}).second) link_order_.push_back(std::move(name));
}

void FaultEngine::register_rpc_server(std::string name, net::RpcServer& server) {
  if (rpc_servers_.emplace(name, &server).second) {
    rpc_server_order_.push_back(std::move(name));
  }
}

std::vector<std::string> FaultEngine::host_names() const { return host_order_; }
std::vector<std::string> FaultEngine::server_names() const { return server_order_; }
std::vector<std::string> FaultEngine::link_names() const { return link_order_; }
std::vector<std::string> FaultEngine::rpc_server_names() const {
  return rpc_server_order_;
}

void FaultEngine::arm(const FaultPlan& plan) {
  for (const auto& ev : plan.events()) {
    sim::Duration at = ev.at;
    if (choice_slots_ > 1 && sim_.exploring()) {
      const std::uint32_t slot =
          sim_.choose({"fault.inject", choice_slots_,
                       sim::footprint_of(ev.target), true});
      at = at + choice_window_ * (static_cast<double>(slot) /
                                  static_cast<double>(choice_slots_ - 1));
    }
    const std::size_t record = log_.size();
    log_.push_back(InjectionRecord{{}, ev.kind, ev.target, ev.duration, false, false});
    // Weak: an armed schedule must not keep an otherwise-finished run alive.
    sim_.schedule_weak_after(at, [this, ev, record] { inject(ev, record); });
  }
}

void FaultEngine::heal(std::size_t record, std::function<void()> undo,
                       sim::Duration after) {
  if (after.is_infinite()) return;  // permanent fault
  if (after <= sim::Duration::zero()) after = sim::Duration::micros(1);
  sim_.schedule_weak_after(after, [this, record, undo = std::move(undo)] {
    undo();
    log_[record].healed = true;
    ++healed_;
    sim_.metrics()
        .counter("fault.healed", {{"kind", to_string(log_[record].kind)}})
        .inc();
  });
}

void FaultEngine::inject(FaultEvent ev, std::size_t record) {
  auto& rec = log_[record];
  rec.injected_at = sim_.now();
  auto applied = [this, &rec, &ev] {
    rec.applied = true;
    ++injected_;
    sim_.metrics().counter("fault.injected", {{"kind", to_string(ev.kind)}}).inc();
    sim_.trace().instant(sim_.now(), std::string("fault.") + to_string(ev.kind),
                         "fault");
  };
  auto skipped = [this, &ev] {
    // Unknown target or the fault is already in effect: log and move on.
    sim_.metrics().counter("fault.skipped", {{"kind", to_string(ev.kind)}}).inc();
  };

  switch (ev.kind) {
    case FaultKind::kHostCrash: {
      auto it = hosts_.find(ev.target);
      if (it == hosts_.end() || !it->second->up()) {
        skipped();
        return;
      }
      middleware::ComputeServer* cs = it->second;
      cs->crash();
      applied();
      heal(
          record,
          [cs] {
            if (!cs->up()) cs->recover();
          },
          ev.duration);
      return;
    }
    case FaultKind::kServerOutage: {
      auto it = servers_.find(ev.target);
      if (it == servers_.end() || !net_.node_up(it->second)) {
        skipped();
        return;
      }
      const net::NodeId node = it->second;
      net_.set_node_up(node, false);
      applied();
      heal(record, [this, node] { net_.set_node_up(node, true); }, ev.duration);
      return;
    }
    case FaultKind::kLinkDown: {
      auto it = links_.find(ev.target);
      if (it == links_.end() || !net_.link_up(it->second.a, it->second.b)) {
        skipped();
        return;
      }
      const LinkRef l = it->second;
      net_.set_link_up(l.a, l.b, false);
      applied();
      heal(record, [this, l] { net_.set_link_up(l.a, l.b, true); }, ev.duration);
      return;
    }
    case FaultKind::kLinkDegraded: {
      auto it = links_.find(ev.target);
      if (it == links_.end() || degraded_saved_.contains(ev.target)) {
        skipped();
        return;
      }
      const LinkRef l = it->second;
      auto saved = net_.link_params(l.a, l.b);
      if (!saved) {
        skipped();
        return;
      }
      const double f = ev.magnitude > 1.0 ? ev.magnitude : 8.0;
      degraded_saved_.emplace(ev.target, *saved);
      net_.set_link(l.a, l.b,
                    net::LinkParams{saved->latency * f, saved->bandwidth_bps / f});
      applied();
      heal(
          record,
          [this, l, name = ev.target] {
            auto sit = degraded_saved_.find(name);
            if (sit == degraded_saved_.end()) return;
            net_.set_link(l.a, l.b, sit->second);
            degraded_saved_.erase(sit);
          },
          ev.duration);
      return;
    }
    case FaultKind::kLinkFlaky: {
      auto it = links_.find(ev.target);
      if (it == links_.end() || net_.link_loss(it->second.a, it->second.b) > 0.0) {
        skipped();
        return;
      }
      const LinkRef l = it->second;
      const double loss = std::clamp(ev.magnitude, 0.0, 1.0);
      if (loss <= 0.0) {
        skipped();
        return;
      }
      net_.set_link_loss(l.a, l.b, loss);
      applied();
      heal(record, [this, l] { net_.set_link_loss(l.a, l.b, 0.0); }, ev.duration);
      return;
    }
    case FaultKind::kVmStall: {
      auto it = hosts_.find(ev.target);
      if (it == hosts_.end() || !it->second->up()) {
        skipped();
        return;
      }
      for (vm::VirtualMachine* vmachine : it->second->vmm().vms()) {
        vmachine->stall(ev.duration);
      }
      applied();
      // Stalls resume on their own inside the VM; no engine-side heal.
      rec.healed = true;
      return;
    }
    case FaultKind::kOverload: {
      auto it = rpc_servers_.find(ev.target);
      if (it == rpc_servers_.end() || it->second->synthetic_load() > 0) {
        skipped();
        return;
      }
      net::RpcServer* server = it->second;
      const auto slots =
          static_cast<std::size_t>(std::max(1.0, std::round(ev.magnitude)));
      server->set_synthetic_load(slots);
      applied();
      heal(record, [server] { server->set_synthetic_load(0); }, ev.duration);
      return;
    }
  }
}

}  // namespace vmgrid::fault
