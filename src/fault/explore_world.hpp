#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "sim/explorer.hpp"

namespace vmgrid::fault {

/// Parameters of the standard exploration world: the FaultTestbed
/// topology (N published compute hosts + image server behind a site
/// router), sessions with probe-based failover, scripted host-crash
/// faults aimed at the sessions' hosts, and a closed-loop task stream.
/// Small by design — the explorer re-executes it once per schedule.
struct ExploreWorldOptions {
  int hosts{2};
  int sessions{1};
  int faults{1};
  double fault_at_s{5.0};
  /// Crash outage; longer than the horizon means the host stays down.
  double outage_s{600.0};
  double probe_interval_s{2.0};
  double horizon_s{120.0};
  /// Exploration window for injection timing ("fault.inject" choice).
  double fault_window_s{4.0};
  std::uint32_t fault_slots{3};
  /// Per-task guest seconds of the closed-loop stream; 0 disables tasks.
  double task_s{2.0};

  /// Round-trip through ScheduleTrace meta, so a counterexample file
  /// carries the world it was found in and replay rebuilds it exactly.
  [[nodiscard]] std::map<std::string, std::string> to_meta() const;
  [[nodiscard]] static ExploreWorldOptions from_meta(
      const std::map<std::string, std::string>& meta, ExploreWorldOptions base);
  [[nodiscard]] static ExploreWorldOptions from_meta(
      const std::map<std::string, std::string>& meta) {
    return from_meta(meta, ExploreWorldOptions{});
  }
};

/// Build the failover world for one explored schedule, register the
/// DESIGN.md §15 invariant catalog and state digest, and run it to the
/// horizon. Intended as (the body of) a sim::Explorer::WorldFn:
///
///   sim::Explorer ex;
///   auto report = ex.explore(opts, [&](sim::ExploreRun& run) {
///     fault::run_failover_world(run, world_opts);
///   });
///
/// Invariants checked after every event:
///   no_double_vm         one live VM per session token, grid-wide
///   task_ok_while_dead   no task reports ok on a VM-less session
///   no_lost_tasks        dead sessions hold no undrained task claims
///   cause_chain_preserved failed failovers carry their root cause
///   retry_budget         the probe retry budget never goes negative
///   chunk_refcounts      no chunk-store refcount ever wraps below zero
void run_failover_world(sim::ExploreRun& run, const ExploreWorldOptions& opts);

}  // namespace vmgrid::fault
