#include "vfs/vfs_proxy.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "sim/simulation.hpp"

namespace vmgrid::vfs {

using storage::kBlockSize;

VfsProxy::VfsProxy(sim::Simulation& s, storage::NfsClient& client, VfsProxyParams params,
                   std::shared_ptr<BlockCache> shared_l2)
    : sim_{s},
      client_{client},
      params_{params},
      l1_{std::make_unique<BlockCache>(params.cache_blocks)},
      l2_{std::move(shared_l2)} {
  auto& m = sim_.metrics();
  const obs::Labels l1_labels{{"level", "l1"}};
  l1_->attach_metrics(&m.counter("vfs.cache.hits", l1_labels),
                      &m.counter("vfs.cache.misses", l1_labels),
                      &m.counter("vfs.cache.evictions", l1_labels));
  reads_ = &m.counter("vfs.proxy.reads");
  writes_ = &m.counter("vfs.proxy.writes");
  bytes_read_ = &m.counter("vfs.proxy.bytes_read");
  bytes_written_ = &m.counter("vfs.proxy.bytes_written");
  prefetched_ = &m.counter("vfs.proxy.prefetch_blocks");
  flushes_ = &m.counter("vfs.proxy.flushes");
  if (params_.enable_breaker) {
    breaker_.emplace(params_.breaker);
    degraded_counter_ = &m.counter("vfs.proxy.degraded_rejects");
    transitions_counter_ = &m.counter("vfs.breaker.transitions");
    breaker_gauge_ = &m.gauge("vfs.breaker.state");
    breaker_gauge_->set(static_cast<double>(net::BreakerState::kClosed));
    breaker_->set_transition_hook([this](net::BreakerState, net::BreakerState to) {
      transitions_counter_->inc();
      breaker_gauge_->set(static_cast<double>(to));
    });
  }
}

VfsProxy::~VfsProxy() { sim_.cancel(flush_event_); }

std::uint64_t VfsProxy::dirty_blocks() const {
  std::uint64_t n = 0;
  for (const auto& [file, range] : dirty_) n += range.blocks.size();
  return n;
}

void VfsProxy::block_arrived(const std::string& path, std::uint64_t block,
                             std::optional<std::uint64_t> version) {
  if (version) {
    l1_->insert(path, block, *version);
    if (l2_) l2_->insert(path, block, *version);
  }
  auto it = pending_.find(BlockKey{path, block});
  if (it == pending_.end()) return;
  auto waiters = std::move(it->second);
  pending_.erase(it);
  for (auto& w : waiters) w();
}

void VfsProxy::feed_breaker(const storage::NfsIoResult& r) {
  if (!breaker_) return;
  if (r.ok()) {
    breaker_->on_success(sim_.now());
  } else if (shed_priority(r.status.code())) {
    // Only congestion signals trip the breaker: deterministic application
    // errors (missing file, bad offset) say nothing about server health.
    breaker_->on_failure(sim_.now());
  }
}

void VfsProxy::fetch_run(const std::string& path, std::uint64_t start_block,
                         std::uint64_t nblocks,
                         std::function<void(const storage::NfsIoResult&)> done,
                         sim::Duration deadline_budget) {
  for (std::uint64_t b = start_block; b < start_block + nblocks; ++b) {
    pending_.try_emplace(BlockKey{path, b});
  }
  client_.read(path, start_block * kBlockSize, nblocks * kBlockSize, deadline_budget,
               [this, path, start_block, nblocks,
                done = std::move(done)](storage::NfsIoResult r) {
                 feed_breaker(r);
                 for (std::uint64_t i = 0; i < nblocks; ++i) {
                   std::optional<std::uint64_t> version;
                   if (r.ok() && i < r.block_versions.size() && i * kBlockSize < r.bytes) {
                     version = r.block_versions[i];
                   }
                   block_arrived(path, start_block + i, version);
                 }
                 if (done) done(r);
               });
}

void VfsProxy::read(const std::string& path, std::uint64_t offset, std::uint64_t len,
                    IoCallback cb) {
  obs::SimProfiler::Scope prof{"vfs.proxy"};
  reads_->inc();
  bytes_read_->inc(static_cast<double>(len));
  auto stats = std::make_shared<VfsIoStats>();
  stats->bytes = len;
  if (len == 0) {
    sim_.schedule_after(params_.local_hit_latency,
                        [cb = std::move(cb), stats] { cb(*stats); });
    return;
  }
  // Read-level span: child of the caller's ambient trace (the guest task
  // re-enters its context around disk I/O); nfs spans from the miss
  // fetches parent under it via the scope pushed before fetch_run.
  auto span = std::make_shared<obs::Span>(sim_, "vfs.read", "vfs",
                                          sim_.trace().current(), "vfs");
  span->arg("path", path);
  obs::ScopedTraceContext trace_scope{sim_.trace(), span->context()};
  const std::uint64_t first = offset / kBlockSize;
  const std::uint64_t last = (offset + len - 1) / kBlockSize;

  // Sequential-access detection drives the prefetch engine.
  bool sequential = false;
  if (auto it = last_block_read_.find(path); it != last_block_read_.end()) {
    sequential = (first == it->second + 1 || first == it->second);
  }
  last_block_read_[path] = last;

  // Classify blocks: buffered-write hit, L1 hit, L2 hit, in-flight
  // (join its waiters), or miss (fetch).
  std::vector<std::uint64_t> misses;
  std::vector<std::uint64_t> joins;
  const auto dirty_it = dirty_.find(path);
  for (std::uint64_t b = first; b <= last; ++b) {
    if (dirty_it != dirty_.end() && dirty_it->second.blocks.contains(b)) {
      ++stats->cache_hits;  // read-your-writes from the write buffer
      continue;
    }
    if (l1_->lookup(path, b)) {
      ++stats->cache_hits;
      continue;
    }
    if (l2_) {
      if (auto v = l2_->lookup(path, b)) {
        l1_->insert(path, b, *v);
        ++stats->cache_hits;
        continue;
      }
    }
    if (pending_.contains(BlockKey{path, b})) {
      joins.push_back(b);  // someone (usually the prefetcher) is on it
      continue;
    }
    ++stats->cache_misses;
    misses.push_back(b);
  }

  // Coalesce misses into contiguous runs.
  struct Run {
    std::uint64_t start_block;
    std::uint64_t nblocks;
  };
  std::vector<Run> runs;
  for (std::uint64_t b : misses) {
    if (!runs.empty() && runs.back().start_block + runs.back().nblocks == b) {
      ++runs.back().nblocks;
    } else {
      runs.push_back(Run{b, 1});
    }
  }

  // Cache-only degraded mode: while the breaker is open, reads the cache
  // can satisfy still succeed and joins on already-in-flight fetches are
  // free, but new server traffic fails fast instead of piling onto an
  // overloaded server. allow() is consulted only when misses exist, so
  // cache-hit reads never consume a half-open probe slot.
  if (!runs.empty() && breaker_ && !breaker_->allow(sim_.now())) {
    ++degraded_rejects_;
    degraded_counter_->inc();
    stats->status = UnavailableError("circuit open: cache-only degraded mode")
                        .at("vfs", "read");
    record_error(sim_.metrics(), stats->status);
    span->set_status(stats->status);
    span->end();
    sim_.schedule_after(params_.local_hit_latency,
                        [cb = std::move(cb), stats] { cb(*stats); });
    return;
  }

  // Asynchronous prefetch: on sequential access, pull the readahead
  // window past the requested range without blocking this read. The
  // in-flight table prevents double-fetching when the application
  // catches up with the readahead. Suppressed unless the breaker is
  // fully closed — optional readahead must not spend half-open probes.
  const bool breaker_closed =
      !breaker_ || breaker_->state() == net::BreakerState::kClosed;
  if (sequential && params_.prefetch_blocks > 0 && breaker_closed) {
    std::uint64_t pf_start = last + 1;
    std::uint64_t pf_count = 0;
    for (std::uint64_t b = pf_start; b <= last + params_.prefetch_blocks; ++b) {
      if (l1_->peek(path, b) || (l2_ && l2_->peek(path, b)) ||
          pending_.contains(BlockKey{path, b})) {
        break;
      }
      ++pf_count;
    }
    if (pf_count > 0) {
      // Issue the readahead in small pipelined runs so a demand read that
      // catches up only waits for the chunk carrying its block, not for
      // the whole readahead window.
      constexpr std::uint64_t kPrefetchChunk = 8;
      prefetched_->inc(static_cast<double>(pf_count));
      for (std::uint64_t b = pf_start; b < pf_start + pf_count; b += kPrefetchChunk) {
        fetch_run(path, b, std::min(kPrefetchChunk, pf_start + pf_count - b), nullptr);
      }
    }
  }

  if (runs.empty() && joins.empty()) {
    span->set_status(Status{});
    span->end();
    sim_.schedule_after(params_.local_hit_latency,
                        [cb = std::move(cb), stats] { cb(*stats); });
    return;
  }

  auto remaining = std::make_shared<std::size_t>(runs.size() + joins.size());
  auto done_cb = std::make_shared<IoCallback>(std::move(cb));
  auto finish_one = [this, stats, span, remaining, done_cb] {
    if (--*remaining == 0) {
      if (!stats->ok()) record_error(sim_.metrics(), stats->status);
      span->set_status(stats->status);
      span->end();
      (*done_cb)(*stats);
    }
  };
  for (std::uint64_t b : joins) {
    pending_[BlockKey{path, b}].push_back(finish_one);
  }
  for (const Run& run : runs) {
    fetch_run(path, run.start_block, run.nblocks,
              [stats, finish_one](const storage::NfsIoResult& r) {
                stats->rpcs += r.rpcs;
                if (!r.ok()) {
                  stats->status = Status{r.status.code(), "read failed"}
                                      .at("vfs", "read")
                                      .caused_by(r.status);
                }
                finish_one();
              },
              params_.io_deadline);
  }
}

void VfsProxy::write(const std::string& path, std::uint64_t offset, std::uint64_t len,
                     IoCallback cb) {
  obs::SimProfiler::Scope prof{"vfs.proxy"};
  writes_->inc();
  bytes_written_->inc(static_cast<double>(len));
  auto stats = VfsIoStats{};
  stats.bytes = len;
  if (len > 0) {
    const std::uint64_t first = offset / kBlockSize;
    const std::uint64_t last = (offset + len - 1) / kBlockSize;
    auto& range = dirty_[path];
    for (std::uint64_t b = first; b <= last; ++b) range.blocks.insert(b);
  }
  sim_.schedule_after(params_.local_hit_latency,
                      [cb = std::move(cb), stats] { cb(stats); });
  if (dirty_blocks() >= params_.write_buffer_blocks) {
    do_flush([] {});
  } else {
    arm_flush_timer();
  }
}

void VfsProxy::arm_flush_timer() {
  if (flush_event_.valid()) return;
  flush_event_ = sim_.schedule_after(params_.flush_interval, [this] {
    flush_event_ = {};
    do_flush([] {});
  });
}

void VfsProxy::flush(DoneCallback cb) { do_flush(std::move(cb)); }

void VfsProxy::do_flush(DoneCallback cb) {
  if (flushing_) {
    // Serialize overlapping flushes: try again shortly.
    sim_.schedule_after(sim::Duration::millis(10),
                        [this, cb = std::move(cb)]() mutable { do_flush(std::move(cb)); });
    return;
  }
  if (dirty_.empty()) {
    sim_.schedule_after(sim::Duration::micros(5), std::move(cb));
    return;
  }
  if (breaker_ && !breaker_->allow(sim_.now())) {
    // Server path open-circuited: keep buffering (writes stay locally
    // acknowledged) and retry next interval. A half-open allow() above
    // admits the flush as the recovery probe; its write outcomes feed
    // the breaker below and settle the probe.
    sim_.schedule_after(params_.flush_interval,
                        [this, cb = std::move(cb)]() mutable { do_flush(std::move(cb)); });
    return;
  }
  flushing_ = true;
  obs::SimProfiler::Scope prof{"vfs.flush"};
  flushes_->inc();
  struct Push {
    std::string path;
    std::uint64_t start_block;
    std::uint64_t nblocks;
  };
  std::vector<Push> pushes;
  for (auto& [path, range] : dirty_) {
    std::uint64_t run_start = 0, run_len = 0;
    for (std::uint64_t b : range.blocks) {  // std::set: ascending
      if (run_len > 0 && run_start + run_len == b) {
        ++run_len;
      } else {
        if (run_len > 0) pushes.push_back(Push{path, run_start, run_len});
        run_start = b;
        run_len = 1;
      }
    }
    if (run_len > 0) pushes.push_back(Push{path, run_start, run_len});
  }
  dirty_.clear();

  auto remaining = std::make_shared<std::size_t>(pushes.size());
  auto done = std::make_shared<DoneCallback>(std::move(cb));
  for (const Push& p : pushes) {
    // The server now holds newer versions than any cached copies.
    for (std::uint64_t b = p.start_block; b < p.start_block + p.nblocks; ++b) {
      l1_->invalidate(p.path, b);
      if (l2_) l2_->invalidate(p.path, b);
    }
    client_.write(p.path, p.start_block * kBlockSize, p.nblocks * kBlockSize,
                  [this, remaining, done](storage::NfsIoResult r) {
                    feed_breaker(r);
                    if (--*remaining == 0) {
                      flushing_ = false;
                      (*done)();
                    }
                  });
  }
}

}  // namespace vmgrid::vfs
