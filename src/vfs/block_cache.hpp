#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>

#include "obs/metrics.hpp"

namespace vmgrid::vfs {

/// LRU cache of file blocks. Stores the block *version* observed when the
/// block was fetched (the simulator's stand-in for block contents), which
/// lets tests assert coherence properties exactly.
class BlockCache {
 public:
  explicit BlockCache(std::size_t capacity_blocks);

  /// Returns the cached version and refreshes recency; nullopt on miss.
  [[nodiscard]] std::optional<std::uint64_t> lookup(const std::string& file,
                                                    std::uint64_t block);

  /// Peek without touching recency or hit/miss counters.
  [[nodiscard]] std::optional<std::uint64_t> peek(const std::string& file,
                                                  std::uint64_t block) const;

  void insert(const std::string& file, std::uint64_t block, std::uint64_t version);
  void invalidate(const std::string& file, std::uint64_t block);
  void invalidate_file(const std::string& file);
  void clear();

  [[nodiscard]] std::size_t size() const { return map_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }

  /// Mirror hit/miss/eviction counts into registry counters (any pointer
  /// may be null). The owner picks names/labels, e.g. vfs.cache.hits
  /// {level=l1}; the cache just increments.
  void attach_metrics(obs::Counter* hits, obs::Counter* misses,
                      obs::Counter* evictions) {
    m_hits_ = hits;
    m_misses_ = misses;
    m_evictions_ = evictions;
  }

 private:
  struct Key {
    std::string file;
    std::uint64_t block;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      return std::hash<std::string>{}(k.file) ^
             (std::hash<std::uint64_t>{}(k.block) * 0x9e3779b97f4a7c15ull);
    }
  };
  struct Entry {
    std::uint64_t version;
    std::list<Key>::iterator lru_pos;
  };

  void evict_one();

  std::size_t capacity_;
  std::list<Key> lru_;  // front = most recent
  std::unordered_map<Key, Entry, KeyHash> map_;
  std::uint64_t hits_{0};
  std::uint64_t misses_{0};
  std::uint64_t evictions_{0};
  obs::Counter* m_hits_{nullptr};
  obs::Counter* m_misses_{nullptr};
  obs::Counter* m_evictions_{nullptr};
};

}  // namespace vmgrid::vfs
