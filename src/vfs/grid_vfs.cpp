#include "vfs/grid_vfs.hpp"

#include <algorithm>
#include <string>

#include "sim/simulation.hpp"

namespace vmgrid::vfs {

VfsMount::VfsMount(net::RpcFabric& fabric, net::NodeId client, net::NodeId server,
                   const VfsMountOptions& options, std::shared_ptr<BlockCache> l2)
    : nfs_{fabric, client, server, options.nfs},
      proxy_{fabric.simulation(), nfs_, options.proxy, std::move(l2)} {}

VfsMount& GridVfs::mount(net::NodeId client, net::NodeId server,
                         VfsMountOptions options) {
  std::shared_ptr<BlockCache> l2;
  if (options.use_shared_image_cache) l2 = shared_cache(client);
  mounts_.push_back(
      std::make_unique<VfsMount>(fabric_, client, server, options, std::move(l2)));
  return *mounts_.back();
}

void GridVfs::unmount(VfsMount& m) {
  auto it = std::find_if(mounts_.begin(), mounts_.end(),
                         [&m](const auto& p) { return p.get() == &m; });
  if (it != mounts_.end()) mounts_.erase(it);
}

std::shared_ptr<BlockCache> GridVfs::shared_cache(net::NodeId client_host) {
  auto& slot = shared_caches_[client_host];
  if (!slot) {
    slot = std::make_shared<BlockCache>(shared_cache_blocks_);
    auto& m = fabric_.simulation().metrics();
    const obs::Labels labels{{"level", "l2-shared"},
                             {"host", std::to_string(client_host.value())}};
    slot->attach_metrics(&m.counter("vfs.cache.hits", labels),
                         &m.counter("vfs.cache.misses", labels),
                         &m.counter("vfs.cache.evictions", labels));
  }
  return slot;
}

}  // namespace vmgrid::vfs
