#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>

#include "core/status.hpp"
#include "net/overload.hpp"
#include "storage/nfs_client.hpp"
#include "vfs/block_cache.hpp"

namespace vmgrid::vfs {

struct VfsProxyParams {
  std::size_t cache_blocks{16384};       // 128 MiB of 8 KiB blocks
  std::uint32_t prefetch_blocks{8};      // readahead on sequential access
  std::size_t write_buffer_blocks{512};  // delayed-write capacity
  sim::Duration flush_interval{sim::Duration::seconds(5)};
  sim::Duration local_hit_latency{sim::Duration::micros(25)};  // per request
  /// End-to-end budget for one read()'s server fetches. Propagated into
  /// the NFS client as a shrinking remainder (never reset per hop); the
  /// default keeps the historical no-deadline behaviour.
  sim::Duration io_deadline{sim::Duration::infinite()};
  /// Circuit breaker on the server path: consecutive kOverloaded /
  /// kTimeout fetches open it, after which misses fail fast in a
  /// cache-only degraded mode (hits still served, writes still buffered)
  /// until a half-open probe finds the server healthy again.
  bool enable_breaker{false};
  net::CircuitBreakerParams breaker{};
};

/// Outcome of one proxy-mediated I/O.
struct VfsIoStats {
  /// OK, or a vfs-origin failure chaining down to the nfs/rpc cause
  /// (e.g. vfs: read failed ← nfs: read failed ← rpc: deadline exceeded).
  Status status;
  std::uint64_t bytes{0};
  std::uint64_t rpcs{0};
  std::uint64_t cache_hits{0};
  std::uint64_t cache_misses{0};

  [[nodiscard]] bool ok() const { return status.ok(); }
};

/// The paper's proxy-based grid virtual file system (Figure 2): a
/// client-side proxy interposed on the NFS path adding an LRU block
/// cache, a sequential prefetch engine, and a delayed-write buffer.
/// An optional shared second-level cache captures read-only sharing of
/// VM image blocks across VM instances on the same host.
class VfsProxy {
 public:
  VfsProxy(sim::Simulation& s, storage::NfsClient& client, VfsProxyParams params = {},
           std::shared_ptr<BlockCache> shared_l2 = nullptr);
  ~VfsProxy();

  VfsProxy(const VfsProxy&) = delete;
  VfsProxy& operator=(const VfsProxy&) = delete;

  using IoCallback = std::function<void(VfsIoStats)>;
  using DoneCallback = std::function<void()>;

  void read(const std::string& path, std::uint64_t offset, std::uint64_t len,
            IoCallback cb);

  /// Buffered write: acknowledged after local buffering; pushed to the
  /// server when the buffer fills or the flush timer fires.
  void write(const std::string& path, std::uint64_t offset, std::uint64_t len,
             IoCallback cb);

  /// Force all buffered writes to the server.
  void flush(DoneCallback cb);

  [[nodiscard]] BlockCache& cache() { return *l1_; }
  [[nodiscard]] const VfsProxyParams& params() const { return params_; }
  [[nodiscard]] storage::NfsClient& client() { return client_; }
  [[nodiscard]] std::uint64_t dirty_blocks() const;

  /// Blocks currently being fetched (demand or prefetch). Demand reads
  /// that need an in-flight block join its waiter list instead of
  /// re-fetching — without this, prefetch would double-fetch everything
  /// the application is about to read.
  [[nodiscard]] std::uint64_t inflight_blocks() const { return pending_.size(); }

  /// nullptr unless params.enable_breaker.
  [[nodiscard]] net::CircuitBreaker* breaker() {
    return breaker_ ? &*breaker_ : nullptr;
  }
  /// Reads failed fast in cache-only degraded mode while the breaker was
  /// open (they needed blocks the cache did not have).
  [[nodiscard]] std::uint64_t degraded_rejects() const { return degraded_rejects_; }

 private:
  struct DirtyRange {
    std::set<std::uint64_t> blocks;  // block indices with buffered writes
  };
  struct BlockKey {
    std::string file;
    std::uint64_t block;
    bool operator==(const BlockKey&) const = default;
  };
  struct BlockKeyHash {
    std::size_t operator()(const BlockKey& k) const noexcept {
      return std::hash<std::string>{}(k.file) ^
             (std::hash<std::uint64_t>{}(k.block) * 0x9e3779b97f4a7c15ull);
    }
  };

  void arm_flush_timer();
  void do_flush(DoneCallback cb);
  /// Fetch a contiguous run from the server; marks the blocks in-flight
  /// and fires their waiters on arrival.
  void fetch_run(const std::string& path, std::uint64_t start_block,
                 std::uint64_t nblocks,
                 std::function<void(const storage::NfsIoResult&)> done,
                 sim::Duration deadline_budget = sim::Duration::infinite());
  /// Breaker bookkeeping for one server round-trip's outcome.
  void feed_breaker(const storage::NfsIoResult& r);
  void block_arrived(const std::string& path, std::uint64_t block,
                     std::optional<std::uint64_t> version);

  sim::Simulation& sim_;
  storage::NfsClient& client_;
  VfsProxyParams params_;
  std::unique_ptr<BlockCache> l1_;
  std::shared_ptr<BlockCache> l2_;
  std::unordered_map<std::string, DirtyRange> dirty_;
  std::unordered_map<std::string, std::uint64_t> last_block_read_;  // sequential detect
  std::unordered_map<BlockKey, std::vector<std::function<void()>>, BlockKeyHash> pending_;
  sim::EventId flush_event_{};
  bool flushing_{false};
  std::optional<net::CircuitBreaker> breaker_;
  std::uint64_t degraded_rejects_{0};
  // Registry-owned counters cached at construction (registry guarantees
  // reference stability).
  obs::Counter* reads_{nullptr};
  obs::Counter* writes_{nullptr};
  obs::Counter* bytes_read_{nullptr};
  obs::Counter* bytes_written_{nullptr};
  obs::Counter* prefetched_{nullptr};
  obs::Counter* flushes_{nullptr};
  obs::Counter* degraded_counter_{nullptr};   // registered only with breaker
  obs::Counter* transitions_counter_{nullptr};
  obs::Gauge* breaker_gauge_{nullptr};
};

}  // namespace vmgrid::vfs
