#pragma once

#include <memory>
#include <vector>

#include "net/rpc.hpp"
#include "storage/nfs_client.hpp"
#include "vfs/vfs_proxy.hpp"

namespace vmgrid::vfs {

struct VfsMountOptions {
  storage::NfsClientParams nfs{};
  VfsProxyParams proxy{};
  /// Attach the per-host shared second-level cache (used for VM image
  /// mounts, where many VM instances share one read-only base image).
  bool use_shared_image_cache{false};
};

/// One active file-system session: a kernel NFS client plus the
/// user-level proxy stacked on it.
class VfsMount {
 public:
  VfsMount(net::RpcFabric& fabric, net::NodeId client, net::NodeId server,
           const VfsMountOptions& options, std::shared_ptr<BlockCache> l2);

  [[nodiscard]] VfsProxy& proxy() { return proxy_; }
  [[nodiscard]] storage::NfsClient& nfs() { return nfs_; }
  [[nodiscard]] net::NodeId client_node() const { return nfs_.node(); }
  [[nodiscard]] net::NodeId server_node() const { return nfs_.server(); }

 private:
  storage::NfsClient nfs_;
  VfsProxy proxy_;
};

/// Mount manager for the grid virtual file system: creates proxy-backed
/// NFS sessions between arbitrary nodes and maintains one shared
/// second-level image cache per client host (the proxy-controlled disk
/// cache of §3.1 that exploits read-only sharing of VM images).
class GridVfs {
 public:
  explicit GridVfs(net::RpcFabric& fabric,
                   std::size_t shared_cache_blocks = 32768)  // 256 MiB
      : fabric_{fabric}, shared_cache_blocks_{shared_cache_blocks} {}

  VfsMount& mount(net::NodeId client, net::NodeId server, VfsMountOptions options = {});
  void unmount(VfsMount& m);

  /// The shared image cache serving a given client host (created lazily).
  [[nodiscard]] std::shared_ptr<BlockCache> shared_cache(net::NodeId client_host);

  [[nodiscard]] std::size_t mount_count() const { return mounts_.size(); }
  [[nodiscard]] net::RpcFabric& fabric() { return fabric_; }

 private:
  net::RpcFabric& fabric_;
  std::size_t shared_cache_blocks_;
  std::vector<std::unique_ptr<VfsMount>> mounts_;
  std::unordered_map<net::NodeId, std::shared_ptr<BlockCache>> shared_caches_;
};

}  // namespace vmgrid::vfs
