#include "vfs/block_cache.hpp"

#include <cassert>

namespace vmgrid::vfs {

BlockCache::BlockCache(std::size_t capacity_blocks) : capacity_{capacity_blocks} {
  assert(capacity_ >= 1);
}

std::optional<std::uint64_t> BlockCache::lookup(const std::string& file,
                                                std::uint64_t block) {
  auto it = map_.find(Key{file, block});
  if (it == map_.end()) {
    ++misses_;
    if (m_misses_ != nullptr) m_misses_->inc();
    return std::nullopt;
  }
  ++hits_;
  if (m_hits_ != nullptr) m_hits_->inc();
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  return it->second.version;
}

std::optional<std::uint64_t> BlockCache::peek(const std::string& file,
                                              std::uint64_t block) const {
  auto it = map_.find(Key{file, block});
  if (it == map_.end()) return std::nullopt;
  return it->second.version;
}

void BlockCache::insert(const std::string& file, std::uint64_t block,
                        std::uint64_t version) {
  const Key key{file, block};
  if (auto it = map_.find(key); it != map_.end()) {
    it->second.version = version;
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return;
  }
  while (map_.size() >= capacity_) evict_one();
  lru_.push_front(key);
  map_.emplace(key, Entry{version, lru_.begin()});
}

void BlockCache::evict_one() {
  assert(!lru_.empty());
  map_.erase(lru_.back());
  lru_.pop_back();
  ++evictions_;
  if (m_evictions_ != nullptr) m_evictions_->inc();
}

void BlockCache::invalidate(const std::string& file, std::uint64_t block) {
  auto it = map_.find(Key{file, block});
  if (it == map_.end()) return;
  lru_.erase(it->second.lru_pos);
  map_.erase(it);
}

void BlockCache::invalidate_file(const std::string& file) {
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->file == file) {
      map_.erase(*it);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

void BlockCache::clear() {
  lru_.clear();
  map_.clear();
}

}  // namespace vmgrid::vfs
