#include "net/network.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>
#include <stdexcept>

namespace vmgrid::net {

namespace {
std::uint64_t pair_key(NodeId a, NodeId b) {
  return (std::uint64_t{a.value()} << 32) | b.value();
}

sim::Duration serialization_time(std::uint64_t bytes, double bandwidth_bps) {
  if (bytes == 0) return sim::Duration::zero();
  return sim::Duration::seconds(static_cast<double>(bytes) / bandwidth_bps);
}
}  // namespace

NodeId Network::add_node(std::string name) {
  nodes_.push_back(std::move(name));
  node_up_.push_back(1);
  routes_dirty_ = true;
  return NodeId{static_cast<std::uint32_t>(nodes_.size() - 1)};
}

const std::string& Network::node_name(NodeId id) const {
  return nodes_.at(id.value());
}

void Network::add_link(NodeId a, NodeId b, LinkParams params) {
  assert(a.value() < nodes_.size() && b.value() < nodes_.size());
  if (link_by_pair_.contains(pair_key(a, b))) {
    throw std::logic_error("Network::add_link: duplicate link");
  }
  link_by_pair_.emplace(pair_key(a, b), links_.size());
  links_.push_back(Link{a, b, params, {}, 0});
  link_by_pair_.emplace(pair_key(b, a), links_.size());
  links_.push_back(Link{b, a, params, {}, 0});
  routes_dirty_ = true;
}

void Network::set_link(NodeId a, NodeId b, LinkParams params) {
  links_.at(find_link(a, b)).params = params;
  links_.at(find_link(b, a)).params = params;
  // Deliberately does NOT invalidate routes: underlay routing reflects
  // topology/policy, not live performance (the resilient-overlay premise
  // — IP routing does not react when a path degrades; overlays do).
}

void Network::set_link_up(NodeId a, NodeId b, bool up) {
  links_.at(find_link(a, b)).up = up;
  links_.at(find_link(b, a)).up = up;
}

bool Network::link_up(NodeId a, NodeId b) const {
  return links_.at(find_link(a, b)).up;
}

void Network::set_link_loss(NodeId a, NodeId b, double loss) {
  links_.at(find_link(a, b)).loss = loss;
  links_.at(find_link(b, a)).loss = loss;
}

double Network::link_loss(NodeId a, NodeId b) const {
  return links_.at(find_link(a, b)).loss;
}

void Network::set_node_up(NodeId id, bool up) {
  node_up_.at(id.value()) = up ? 1 : 0;
}

bool Network::node_up(NodeId id) const {
  return node_up_.at(id.value()) != 0;
}

std::optional<LinkParams> Network::link_params(NodeId a, NodeId b) const {
  auto it = link_by_pair_.find(pair_key(a, b));
  if (it == link_by_pair_.end()) return std::nullopt;
  return links_[it->second].params;
}

Network::LinkIndex Network::find_link(NodeId a, NodeId b) const {
  auto it = link_by_pair_.find(pair_key(a, b));
  if (it == link_by_pair_.end()) {
    throw std::logic_error("Network: no such link " + node_name(a) + " -> " +
                           node_name(b));
  }
  return it->second;
}

std::vector<Network::LinkIndex> Network::route(NodeId src, NodeId dst) const {
  if (routes_dirty_) {
    route_cache_.clear();
    routes_dirty_ = false;
  }
  const auto key = pair_key(src, dst);
  if (auto it = route_cache_.find(key); it != route_cache_.end()) return it->second;

  // Dijkstra by propagation latency with a small bandwidth tie-breaker so
  // that equal-latency paths prefer fatter pipes.
  const std::size_t n = nodes_.size();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(n, kInf);
  std::vector<LinkIndex> via(n, static_cast<LinkIndex>(-1));
  std::vector<std::vector<LinkIndex>> out(n);
  for (LinkIndex i = 0; i < links_.size(); ++i) {
    out[links_[i].from.value()].push_back(i);
  }
  using QE = std::pair<double, std::uint32_t>;
  std::priority_queue<QE, std::vector<QE>, std::greater<>> pq;
  dist[src.value()] = 0.0;
  pq.emplace(0.0, src.value());
  while (!pq.empty()) {
    auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    for (LinkIndex li : out[u]) {
      const Link& l = links_[li];
      const double w = l.params.latency.to_seconds() + 1e-9 / l.params.bandwidth_bps;
      const double nd = d + w;
      const auto v = l.to.value();
      if (nd < dist[v]) {
        dist[v] = nd;
        via[v] = li;
        pq.emplace(nd, v);
      }
    }
  }
  std::vector<LinkIndex> path;
  if (dist[dst.value()] < kInf && src != dst) {
    for (std::uint32_t cur = dst.value(); cur != src.value();) {
      const LinkIndex li = via[cur];
      path.push_back(li);
      cur = links_[li].from.value();
    }
    std::reverse(path.begin(), path.end());
  }
  route_cache_.emplace(key, path);
  return path;
}

bool Network::reachable(NodeId a, NodeId b) const {
  return a == b || !route(a, b).empty();
}

void Network::drop(sim::Duration after, std::uint64_t bytes, sim::TimePoint started,
                   TransferCallback cb) {
  // The transport reports the drop (delivered=false) instead of silently
  // eating the packet, so every send() eventually completes its callback.
  sim_.schedule_after(after, [this, bytes, started, cb = std::move(cb)] {
    cb(TransferResult{sim_.now() - started, bytes, false});
  });
}

void Network::send(NodeId src, NodeId dst, std::uint64_t bytes, TransferCallback cb) {
  if (sim_.exploring()) {
    // Enumerable delivery order: racing messages to the same destination
    // may be held back a few quanta so the explorer can interleave them.
    const bool racing = inflight_to_[dst.value()] > 0;
    const std::uint32_t hold = sim_.choose(
        {"net.deliver", 3, sim::footprint_of(node_name(dst)), racing});
    ++inflight_to_[dst.value()];
    cb = [this, d = dst.value(), cb = std::move(cb)](const TransferResult& r) {
      auto it = inflight_to_.find(d);
      if (it != inflight_to_.end() && it->second > 0) --it->second;
      cb(r);
    };
    if (hold > 0) {
      sim_.schedule_after(delivery_quantum_ * static_cast<double>(hold),
                          [this, src, dst, bytes, cb = std::move(cb)]() mutable {
                            send_now(src, dst, bytes, std::move(cb));
                          });
      return;
    }
  }
  send_now(src, dst, bytes, std::move(cb));
}

void Network::send_now(NodeId src, NodeId dst, std::uint64_t bytes,
                       TransferCallback cb) {
  const sim::TimePoint started = sim_.now();
  if (!node_up(src) || !node_up(dst)) {
    drop(sim::Duration::micros(10), bytes, started, std::move(cb));
    return;
  }
  if (src == dst) {
    // Loopback: negligible but non-zero so callback ordering stays sane.
    sim_.schedule_after(sim::Duration::micros(10), [cb = std::move(cb), bytes, started, this] {
      cb(TransferResult{sim_.now() - started, bytes});
    });
    return;
  }
  auto path = route(src, dst);
  if (path.empty()) {
    throw std::logic_error("Network::send: no route " + node_name(src) + " -> " +
                           node_name(dst));
  }
  hop(std::move(path), 0, bytes, started, std::move(cb));
}

void Network::hop(std::vector<LinkIndex> path, std::size_t i, std::uint64_t bytes,
                  sim::TimePoint started, TransferCallback cb) {
  Link& l = links_[path[i]];
  if (!l.up || !node_up(l.from) || !node_up(l.to)) {
    drop(l.params.latency, bytes, started, std::move(cb));
    return;
  }
  // Only consult the rng while a link is actually lossy: fault-free runs
  // draw nothing and their event streams match pre-fault builds exactly.
  if (l.loss > 0.0 && sim_.rng().bernoulli(l.loss)) {
    drop(l.params.latency, bytes, started, std::move(cb));
    return;
  }
  const sim::TimePoint begin = std::max(sim_.now(), l.busy_until);
  const sim::Duration ser = serialization_time(bytes, l.params.bandwidth_bps);
  l.busy_until = begin + ser;
  l.bytes_carried += bytes;
  const sim::TimePoint arrive = begin + ser + l.params.latency;
  sim_.schedule_at(arrive, [this, path = std::move(path), i, bytes, started,
                            cb = std::move(cb)]() mutable {
    if (i + 1 == path.size()) {
      cb(TransferResult{sim_.now() - started, bytes});
    } else {
      hop(std::move(path), i + 1, bytes, started, std::move(cb));
    }
  });
}

sim::Duration Network::estimate_latency(NodeId src, NodeId dst,
                                        std::uint64_t bytes) const {
  if (src == dst) return sim::Duration::micros(10);
  auto path = route(src, dst);
  if (path.empty()) return sim::Duration::infinite();
  sim::TimePoint t = sim_.now();
  for (LinkIndex li : path) {
    const Link& l = links_[li];
    const sim::TimePoint begin = std::max(t, l.busy_until);
    t = begin + serialization_time(bytes, l.params.bandwidth_bps) + l.params.latency;
  }
  return t - sim_.now();
}

sim::Duration Network::rtt(NodeId a, NodeId b) const {
  if (a == b) return sim::Duration::micros(20);
  sim::Duration d = sim::Duration::zero();
  for (LinkIndex li : route(a, b)) d += links_[li].params.latency;
  for (LinkIndex li : route(b, a)) d += links_[li].params.latency;
  return d;
}

std::uint64_t Network::link_bytes(NodeId a, NodeId b) const {
  return links_.at(find_link(a, b)).bytes_carried;
}

}  // namespace vmgrid::net
