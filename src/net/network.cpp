#include "net/network.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>
#include <stdexcept>

#include "model/fluid.hpp"

namespace vmgrid::net {

namespace {
std::uint64_t pair_key(NodeId a, NodeId b) {
  return (std::uint64_t{a.value()} << 32) | b.value();
}

sim::Duration serialization_time(std::uint64_t bytes, double bandwidth_bps) {
  if (bytes == 0) return sim::Duration::zero();
  return sim::Duration::seconds(static_cast<double>(bytes) / bandwidth_bps);
}
}  // namespace

Network::Network(sim::Simulation& s)
    : sim_{s}, fidelity_{model::fidelity_from_env()} {}

Network::~Network() = default;

NodeId Network::add_node(std::string name) {
  nodes_.push_back(std::move(name));
  node_up_.push_back(1);
  node_zone_.push_back(-1);
  up_link_.push_back(kNoLink);
  down_link_.push_back(kNoLink);
  routes_dirty_ = true;
  return NodeId{static_cast<std::uint32_t>(nodes_.size() - 1)};
}

const std::string& Network::node_name(NodeId id) const {
  return nodes_.at(id.value());
}

void Network::add_link(NodeId a, NodeId b, LinkParams params) {
  assert(a.value() < nodes_.size() && b.value() < nodes_.size());
  if (a == b) {
    throw std::logic_error("Network::add_link: self link at " + node_name(a));
  }
  if (auto it = link_by_pair_.find(pair_key(a, b)); it != link_by_pair_.end()) {
    // Duplicate registration: reuse the existing records rather than
    // leaking a shadowed Link (counters/fault state survive, params are
    // replaced). Unlike set_link this IS a topology/policy event, so
    // cached routes are recomputed.
    const LinkIndex fwd = it->second;
    const LinkIndex rev = find_link(b, a);
    links_[fwd].params = params;
    links_[rev].params = params;
    sync_fluid_capacity(fwd);
    sync_fluid_capacity(rev);
    routes_dirty_ = true;
    return;
  }
  link_by_pair_.emplace(pair_key(a, b), links_.size());
  links_.push_back(Link{a, b, params, {}, 0});
  link_by_pair_.emplace(pair_key(b, a), links_.size());
  links_.push_back(Link{b, a, params, {}, 0});
  routes_dirty_ = true;
}

void Network::set_link(NodeId a, NodeId b, LinkParams params) {
  const LinkIndex fwd = find_link(a, b);
  const LinkIndex rev = find_link(b, a);
  links_[fwd].params = params;
  links_[rev].params = params;
  // Deliberately does NOT invalidate routes: underlay routing reflects
  // topology/policy, not live performance (the resilient-overlay premise
  // — IP routing does not react when a path degrades; overlays do).
  // The fluid tier mirrors this: in-flight flows re-share the new
  // capacity, but nobody is rerouted.
  sync_fluid_capacity(fwd);
  sync_fluid_capacity(rev);
}

void Network::set_link_up(NodeId a, NodeId b, bool up) {
  links_.at(find_link(a, b)).up = up;
  links_.at(find_link(b, a)).up = up;
}

bool Network::link_up(NodeId a, NodeId b) const {
  return links_.at(find_link(a, b)).up;
}

void Network::set_link_loss(NodeId a, NodeId b, double loss) {
  links_.at(find_link(a, b)).loss = loss;
  links_.at(find_link(b, a)).loss = loss;
}

double Network::link_loss(NodeId a, NodeId b) const {
  return links_.at(find_link(a, b)).loss;
}

void Network::set_node_up(NodeId id, bool up) {
  node_up_.at(id.value()) = up ? 1 : 0;
}

bool Network::node_up(NodeId id) const {
  return node_up_.at(id.value()) != 0;
}

std::optional<LinkParams> Network::link_params(NodeId a, NodeId b) const {
  auto it = link_by_pair_.find(pair_key(a, b));
  if (it == link_by_pair_.end()) return std::nullopt;
  return links_[it->second].params;
}

Network::LinkIndex Network::find_link(NodeId a, NodeId b) const {
  auto it = link_by_pair_.find(pair_key(a, b));
  if (it == link_by_pair_.end()) {
    throw std::logic_error("Network: no such link " + node_name(a) + " -> " +
                           node_name(b));
  }
  return it->second;
}

// --- hierarchical routing zones ------------------------------------------

ZoneId Network::add_zone(std::string name, LinkParams member_link) {
  const NodeId gw = add_node(name + ".gw");
  const auto z = static_cast<std::int32_t>(zones_.size());
  zones_.push_back(Zone{std::move(name), -1, gw, member_link});
  // The root gateway is a member of its own zone (the hub is addressable).
  node_zone_[gw.value()] = z;
  return ZoneId{static_cast<std::uint32_t>(z)};
}

ZoneId Network::add_zone(std::string name, ZoneId parent, LinkParams uplink,
                         LinkParams member_link) {
  const NodeId parent_gw = zones_.at(parent.value()).gateway;
  const NodeId gw = add_node(name + ".gw");
  const auto z = static_cast<std::int32_t>(zones_.size());
  zones_.push_back(Zone{std::move(name), static_cast<std::int32_t>(parent.value()),
                        gw, member_link});
  // The child gateway lives in the parent zone, one uplink hop from the
  // parent gateway; it is the zone's single entry/exit point.
  node_zone_[gw.value()] = static_cast<std::int32_t>(parent.value());
  add_link(gw, parent_gw, uplink);
  cache_zone_links(gw, parent_gw);
  return ZoneId{static_cast<std::uint32_t>(z)};
}

NodeId Network::add_zone_node(ZoneId z, std::string name) {
  const NodeId n = add_node(std::move(name));
  assign_zone(n, z);
  return n;
}

void Network::assign_zone(NodeId n, ZoneId z) {
  const Zone& zn = zones_.at(z.value());
  if (node_zone_.at(n.value()) != -1) {
    throw std::logic_error("Network::assign_zone: " + node_name(n) +
                           " already belongs to a zone");
  }
  node_zone_[n.value()] = static_cast<std::int32_t>(z.value());
  add_link(n, zn.gateway, zn.member_link);  // sets routes_dirty_
  cache_zone_links(n, zn.gateway);
}

void Network::cache_zone_links(NodeId member, NodeId gateway) {
  up_link_[member.value()] = find_link(member, gateway);
  down_link_[member.value()] = find_link(gateway, member);
}

Network::LinkIndex Network::link_between(NodeId a, NodeId b) const {
  // Every step of a zone path is member -> its gateway (up) or gateway
  // -> member (down); both directions are cached per member node.
  const std::int32_t za = node_zone_[a.value()];
  if (za >= 0 && zones_[za].gateway == b && up_link_[a.value()] != kNoLink) {
    return up_link_[a.value()];
  }
  const std::int32_t zb = node_zone_[b.value()];
  if (zb >= 0 && zones_[zb].gateway == a && down_link_[b.value()] != kNoLink) {
    return down_link_[b.value()];
  }
  return find_link(a, b);
}

NodeId Network::zone_gateway(ZoneId z) const { return zones_.at(z.value()).gateway; }

const std::string& Network::zone_name(ZoneId z) const {
  return zones_.at(z.value()).name;
}

std::optional<ZoneId> Network::node_zone(NodeId n) const {
  const std::int32_t z = node_zone_.at(n.value());
  if (z < 0) return std::nullopt;
  return ZoneId{static_cast<std::uint32_t>(z)};
}

bool Network::zone_route(NodeId src, NodeId dst,
                         std::vector<LinkIndex>& out) const {
  out.clear();
  // Ancestor zone chains, innermost first.
  auto chain = [this](NodeId n, std::int32_t* buf, std::size_t cap) {
    std::size_t len = 0;
    for (std::int32_t z = node_zone_[n.value()]; z >= 0; z = zones_[z].parent) {
      if (len == cap) throw std::logic_error("Network: zone nesting too deep");
      buf[len++] = z;
    }
    return len;
  };
  constexpr std::size_t kMaxDepth = 64;
  std::int32_t cs[kMaxDepth];
  std::int32_t cd[kMaxDepth];
  std::size_t ns = chain(src, cs, kMaxDepth);
  std::size_t nd = chain(dst, cd, kMaxDepth);
  if (cs[ns - 1] != cd[nd - 1]) return false;  // different roots: unreachable
  // Peel common ancestors from the root end; the last one peeled is the LCA.
  while (ns > 1 && nd > 1 && cs[ns - 2] == cd[nd - 2]) {
    --ns;
    --nd;
  }
  const std::int32_t lca = cs[ns - 1];

  // Gateway chain up from src into the LCA, and down into dst (built up,
  // then reversed). A node's zone gateway is a member of the next zone
  // out, so each step is exactly one registered link. Stack buffers —
  // this runs once per send at scale.
  NodeId nodes[2 * kMaxDepth + 2];
  std::size_t nn = 0;
  nodes[nn++] = src;
  for (std::size_t k = 0; cs[k] != lca; ++k) nodes[nn++] = zones_[cs[k]].gateway;
  NodeId down[kMaxDepth];
  std::size_t ndn = 0;
  down[ndn++] = dst;
  for (std::size_t k = 0; cd[k] != lca; ++k) down[ndn++] = zones_[cd[k]].gateway;

  // Bridge the two chains inside the LCA zone via its gateway (skipping
  // it when an endpoint chain already ends there).
  const NodeId hub = zones_[lca].gateway;
  if (nodes[nn - 1] != down[ndn - 1] && nodes[nn - 1] != hub &&
      down[ndn - 1] != hub) {
    nodes[nn++] = hub;
  }
  for (std::size_t i = ndn; i-- > 0;) {
    if (down[i] != nodes[nn - 1]) nodes[nn++] = down[i];
  }

  out.reserve(nn - 1);
  for (std::size_t i = 0; i + 1 < nn; ++i) {
    out.push_back(link_between(nodes[i], nodes[i + 1]));
  }
  return true;
}

std::vector<Network::LinkIndex> Network::route(NodeId src, NodeId dst) const {
  std::vector<LinkIndex> path;
  route_into(src, dst, path);
  return path;
}

void Network::route_into(NodeId src, NodeId dst, std::vector<LinkIndex>& out) const {
  // Zone pairs resolve structurally: O(depth) walk, no Dijkstra, and —
  // deliberately — no cache entry, so 10k-member topologies never build
  // an O(nodes^2) route table.
  if (node_zone_[src.value()] >= 0 && node_zone_[dst.value()] >= 0 && src != dst) {
    zone_route(src, dst, out);  // unreachable -> empty, as Dijkstra would
    return;
  }
  const std::vector<LinkIndex>& p = flat_route(src, dst);
  out.assign(p.begin(), p.end());
}

const std::vector<Network::LinkIndex>& Network::flat_route(NodeId src,
                                                           NodeId dst) const {
  if (routes_dirty_) {
    route_cache_.clear();
    routes_dirty_ = false;
  }
  const auto key = pair_key(src, dst);
  if (auto it = route_cache_.find(key); it != route_cache_.end()) {
    return it->second;
  }

  // Dijkstra by propagation latency with a small bandwidth tie-breaker so
  // that equal-latency paths prefer fatter pipes.
  const std::size_t n = nodes_.size();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(n, kInf);
  std::vector<LinkIndex> via(n, static_cast<LinkIndex>(-1));
  std::vector<std::vector<LinkIndex>> out(n);
  for (LinkIndex i = 0; i < links_.size(); ++i) {
    out[links_[i].from.value()].push_back(i);
  }
  using QE = std::pair<double, std::uint32_t>;
  std::priority_queue<QE, std::vector<QE>, std::greater<>> pq;
  dist[src.value()] = 0.0;
  pq.emplace(0.0, src.value());
  while (!pq.empty()) {
    auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    for (LinkIndex li : out[u]) {
      const Link& l = links_[li];
      const double w = l.params.latency.to_seconds() + 1e-9 / l.params.bandwidth_bps;
      const double nd = d + w;
      const auto v = l.to.value();
      if (nd < dist[v]) {
        dist[v] = nd;
        via[v] = li;
        pq.emplace(nd, v);
      }
    }
  }
  std::vector<LinkIndex> path;
  if (dist[dst.value()] < kInf && src != dst) {
    for (std::uint32_t cur = dst.value(); cur != src.value();) {
      const LinkIndex li = via[cur];
      path.push_back(li);
      cur = links_[li].from.value();
    }
    std::reverse(path.begin(), path.end());
  }
  return route_cache_.emplace(key, std::move(path)).first->second;
}

bool Network::reachable(NodeId a, NodeId b) const {
  return a == b || !route(a, b).empty();
}

void Network::drop(sim::Duration after, std::uint64_t bytes, sim::TimePoint started,
                   TransferCallback cb) {
  // The transport reports the drop (delivered=false) instead of silently
  // eating the packet, so every send() eventually completes its callback.
  sim_.schedule_after(after, [this, bytes, started, cb = std::move(cb)] {
    cb(TransferResult{sim_.now() - started, bytes, false});
  });
}

void Network::send(NodeId src, NodeId dst, std::uint64_t bytes, TransferCallback cb) {
  if (sim_.exploring()) {
    // Enumerable delivery order: racing messages to the same destination
    // may be held back a few quanta so the explorer can interleave them.
    const bool racing = inflight_to_[dst.value()] > 0;
    const std::uint32_t hold = sim_.choose(
        {"net.deliver", 3, sim::footprint_of(node_name(dst)), racing});
    ++inflight_to_[dst.value()];
    cb = [this, d = dst.value(), cb = std::move(cb)](const TransferResult& r) {
      auto it = inflight_to_.find(d);
      if (it != inflight_to_.end() && it->second > 0) --it->second;
      cb(r);
    };
    if (hold > 0) {
      sim_.schedule_after(delivery_quantum_ * static_cast<double>(hold),
                          [this, src, dst, bytes, cb = std::move(cb)]() mutable {
                            send_now(src, dst, bytes, std::move(cb));
                          });
      return;
    }
  }
  send_now(src, dst, bytes, std::move(cb));
}

void Network::send_now(NodeId src, NodeId dst, std::uint64_t bytes,
                       TransferCallback cb) {
  const sim::TimePoint started = sim_.now();
  if (!node_up(src) || !node_up(dst)) {
    drop(sim::Duration::micros(10), bytes, started, std::move(cb));
    return;
  }
  if (src == dst) {
    // Loopback: negligible but non-zero so callback ordering stays sane.
    sim_.schedule_after(sim::Duration::micros(10), [cb = std::move(cb), bytes, started, this] {
      cb(TransferResult{sim_.now() - started, bytes});
    });
    return;
  }
  if (fidelity_ == model::Fidelity::kFluid) {
    // Reused scratch path: send_fluid reads it synchronously and its
    // scheduled continuations don't capture it.
    std::vector<LinkIndex>& path = fluid_path_scratch_;
    route_into(src, dst, path);
    if (path.empty()) {
      throw std::logic_error("Network::send: no route " + node_name(src) +
                             " -> " + node_name(dst));
    }
    send_fluid(path, bytes, started, std::move(cb));
    return;
  }
  auto path = route(src, dst);
  if (path.empty()) {
    throw std::logic_error("Network::send: no route " + node_name(src) + " -> " +
                           node_name(dst));
  }
  hop(std::move(path), 0, bytes, started, std::move(cb));
}

void Network::hop(std::vector<LinkIndex> path, std::size_t i, std::uint64_t bytes,
                  sim::TimePoint started, TransferCallback cb) {
  Link& l = links_[path[i]];
  if (!l.up || !node_up(l.from) || !node_up(l.to)) {
    drop(l.params.latency, bytes, started, std::move(cb));
    return;
  }
  // Only consult the rng while a link is actually lossy: fault-free runs
  // draw nothing and their event streams match pre-fault builds exactly.
  if (l.loss > 0.0 && sim_.rng().bernoulli(l.loss)) {
    drop(l.params.latency, bytes, started, std::move(cb));
    return;
  }
  const sim::TimePoint begin = std::max(sim_.now(), l.busy_until);
  const sim::Duration ser = serialization_time(bytes, l.params.bandwidth_bps);
  l.busy_until = begin + ser;
  l.bytes_carried += bytes;
  const sim::TimePoint arrive = begin + ser + l.params.latency;
  sim_.schedule_at(arrive, [this, path = std::move(path), i, bytes, started,
                            cb = std::move(cb)]() mutable {
    if (i + 1 == path.size()) {
      cb(TransferResult{sim_.now() - started, bytes});
    } else {
      hop(std::move(path), i + 1, bytes, started, std::move(cb));
    }
  });
}

// --- fluid tier -----------------------------------------------------------

model::FluidArena& Network::fluid() {
  if (!fluid_) fluid_ = std::make_unique<model::FluidArena>(sim_);
  return *fluid_;
}

std::uint32_t Network::fluid_resource(LinkIndex li) {
  if (fluid_link_res_.size() < links_.size()) {
    fluid_link_res_.resize(links_.size(), kNoFluidRes);
  }
  if (fluid_link_res_[li] == kNoFluidRes) {
    fluid_link_res_[li] = fluid().add_resource(links_[li].params.bandwidth_bps);
  }
  return fluid_link_res_[li];
}

void Network::sync_fluid_capacity(LinkIndex li) {
  if (li < fluid_link_res_.size() && fluid_link_res_[li] != kNoFluidRes) {
    fluid().set_capacity(fluid_link_res_[li], links_[li].params.bandwidth_bps);
  }
}

void Network::send_fluid(const std::vector<LinkIndex>& path, std::uint64_t bytes,
                         sim::TimePoint started, TransferCallback cb) {
  // Per-link fault checks happen up front (the exact tier discovers them
  // hop by hop); the drop is charged the propagation delay up to and
  // including the failing hop, matching where the packet dies.
  sim::Duration lat = sim::Duration::zero();
  double min_bw = std::numeric_limits<double>::infinity();
  for (LinkIndex li : path) {
    const Link& l = links_[li];
    if (!l.up || !node_up(l.from) || !node_up(l.to)) {
      drop(lat + l.params.latency, bytes, started, std::move(cb));
      return;
    }
    if (l.loss > 0.0 && sim_.rng().bernoulli(l.loss)) {
      drop(lat + l.params.latency, bytes, started, std::move(cb));
      return;
    }
    lat += l.params.latency;
    min_bw = std::min(min_bw, l.params.bandwidth_bps);
  }
  for (LinkIndex li : path) links_[li].bytes_carried += bytes;
  if (bytes == 0) {
    // Bare control packet: pure propagation, no bandwidth share.
    sim_.schedule_after(lat, [this, started, cb = std::move(cb)] {
      cb(TransferResult{sim_.now() - started, 0, true});
    });
    return;
  }
  std::vector<model::ResourceId>& res = fluid_res_scratch_;
  res.clear();
  res.reserve(path.size());
  for (LinkIndex li : path) res.push_back(fluid_resource(li));
  // One flow holding a max-min share of every path link; the min path
  // bandwidth is its natural rate cap (a flow cannot outrun its thinnest
  // link), which is also what lets the solver prune at fat uplinks.
  fluid().start(std::span<const model::ResourceId>(res),
                static_cast<double>(bytes), min_bw, 1.0,
                [this, lat, bytes, started, cb = std::move(cb)]() mutable {
                  sim_.schedule_after(
                      lat, [this, bytes, started, cb = std::move(cb)] {
                        cb(TransferResult{sim_.now() - started, bytes, true});
                      });
                });
}

sim::Duration Network::estimate_latency(NodeId src, NodeId dst,
                                        std::uint64_t bytes) const {
  if (src == dst) return sim::Duration::micros(10);
  auto path = route(src, dst);
  if (path.empty()) return sim::Duration::infinite();
  if (fidelity_ == model::Fidelity::kFluid && fluid_) {
    // The fair share a new flow would get beside the flows currently on
    // each link (busy_until is meaningless in fluid mode).
    sim::Duration t = sim::Duration::zero();
    double share = std::numeric_limits<double>::infinity();
    for (LinkIndex li : path) {
      const Link& l = links_[li];
      t += l.params.latency;
      double cap = l.params.bandwidth_bps;
      if (li < fluid_link_res_.size() && fluid_link_res_[li] != kNoFluidRes) {
        cap /= 1.0 + static_cast<double>(fluid_->actions_on(fluid_link_res_[li]));
      }
      share = std::min(share, cap);
    }
    return t + serialization_time(bytes, share);
  }
  sim::TimePoint t = sim_.now();
  for (LinkIndex li : path) {
    const Link& l = links_[li];
    const sim::TimePoint begin = std::max(t, l.busy_until);
    t = begin + serialization_time(bytes, l.params.bandwidth_bps) + l.params.latency;
  }
  return t - sim_.now();
}

sim::Duration Network::rtt(NodeId a, NodeId b) const {
  if (a == b) return sim::Duration::micros(20);
  sim::Duration d = sim::Duration::zero();
  for (LinkIndex li : route(a, b)) d += links_[li].params.latency;
  for (LinkIndex li : route(b, a)) d += links_[li].params.latency;
  return d;
}

std::uint64_t Network::link_bytes(NodeId a, NodeId b) const {
  return links_.at(find_link(a, b)).bytes_carried;
}

}  // namespace vmgrid::net
