#pragma once

#include <any>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "core/status.hpp"
#include "net/network.hpp"
#include "net/overload.hpp"
#include "obs/trace_context.hpp"

namespace vmgrid::obs {
class Counter;
class Gauge;
}  // namespace vmgrid::obs

namespace vmgrid::net {

/// Machine-checkable RPC failure taxonomy. `RpcResponse::error` keeps the
/// human-readable detail; call sites branch on the status, never on the
/// error text.
enum class RpcStatus : std::uint8_t {
  kOk = 0,
  kConnectionRefused,  ///< node reachable but no server bound there
  kNoSuchMethod,       ///< server bound, method not registered
  kUnreachable,        ///< request/reply dropped, or server died mid-call
  kTimeout,            ///< client-side per-attempt deadline expired
  kServerError,        ///< handler reported an application error
  kOverloaded,         ///< server shed the request (admission control)
};

[[nodiscard]] const char* to_string(RpcStatus s);

/// Lossless map of the RPC failure taxonomy into the grid-wide one. The
/// two "peer gone" flavours (kConnectionRefused, kUnreachable) collapse to
/// kUnavailable — recovery policy treats them identically; the human
/// detail survives in the Status message.
[[nodiscard]] constexpr StatusCode to_code(RpcStatus s) {
  switch (s) {
    case RpcStatus::kOk: return StatusCode::kOk;
    case RpcStatus::kConnectionRefused: return StatusCode::kUnavailable;
    case RpcStatus::kNoSuchMethod: return StatusCode::kNotFound;
    case RpcStatus::kUnreachable: return StatusCode::kUnavailable;
    case RpcStatus::kTimeout: return StatusCode::kTimeout;
    case RpcStatus::kServerError: return StatusCode::kInternal;
    case RpcStatus::kOverloaded: return StatusCode::kOverloaded;
  }
  return StatusCode::kInternal;
}

/// Transient transport failures worth retrying. Application errors and
/// misrouted methods are deterministic — retrying them cannot help.
/// kOverloaded is retryable but is exactly the status a retry budget
/// exists to bound: unbudgeted retries of an overloaded server are how
/// congestion collapse starts. Subsumed by the grid-wide policy helper:
/// this is exactly vmgrid::retryable over the mapped code.
[[nodiscard]] constexpr bool rpc_status_retryable(RpcStatus s) {
  return vmgrid::retryable(to_code(s));
}

/// Shedding priority. When an admission queue is full, control-plane
/// traffic (health probes, info-service queries) evicts bulk data
/// traffic, never the other way round — losing a ping during overload
/// would make the failure detector declare a live host dead.
enum class RpcPriority : std::uint8_t { kBulk = 0, kControl = 1 };

/// Wire-level request: method name, request size on the wire, and an
/// opaque in-memory payload (the simulation does not marshal real bytes).
struct RpcRequest {
  std::string method;
  std::uint64_t request_bytes{128};
  std::any payload;
  RpcPriority priority{RpcPriority::kBulk};
  /// Causal context carried across the hop. Callers may stamp it
  /// explicitly; when left empty the fabric fills it from the ambient
  /// trace scope at call() time. The fabric then re-stamps it with each
  /// attempt's span, so server-side spans parent under the attempt that
  /// actually delivered the request.
  obs::TraceContext trace{};
};

struct RpcResponse {
  std::string error;
  std::uint64_t response_bytes{128};
  std::any payload;
  RpcStatus status{RpcStatus::kOk};

  /// Success is *defined* by the status — there is no separate ok bit to
  /// disagree with it. Handlers reporting an application error must set
  /// kServerError (or a more precise status) explicitly.
  [[nodiscard]] bool ok() const { return status == RpcStatus::kOk; }
};

/// Status view of a settled response, tagged with the rpc origin (and the
/// method name as the operation). OK responses map to the OK status; the
/// wire-level detail string becomes the message.
[[nodiscard]] Status to_status(const RpcResponse& resp, std::string op = {});

using RpcCallback = std::function<void(RpcResponse)>;
using RpcResponder = std::function<void(RpcResponse)>;
using RpcHandler = std::function<void(const RpcRequest&, RpcResponder)>;

/// Client-side call policy: a per-attempt deadline plus jittered
/// exponential backoff between retries of transient failures.
///
/// The default — infinite deadline, one attempt — is exactly the
/// historical fabric behaviour: no timer is scheduled and the rng is never
/// consulted, so fault-free runs remain byte-identical to pre-fault
/// builds. Fault-aware worlds opt into the named presets (or their own).
struct RpcCallOptions {
  sim::Duration deadline{sim::Duration::infinite()};  ///< per attempt
  int max_attempts{1};
  sim::Duration backoff_base{sim::Duration::millis(200)};
  double backoff_multiplier{2.0};
  sim::Duration backoff_cap{sim::Duration::seconds(5)};
  double backoff_jitter{0.2};  ///< +/- fraction applied to each backoff
  /// Cap on total elapsed time across all attempts and backoffs. The
  /// per-attempt `deadline` alone does not bound caller-visible latency:
  /// attempts × (deadline + backoff) can exceed any intent the caller
  /// had. When the total deadline expires the call settles kTimeout
  /// immediately, orphaning whatever attempt was in flight.
  sim::Duration total_deadline{sim::Duration::infinite()};
  /// Shared retry budget (non-owning; the client owning the budget must
  /// outlive the call). Retries spend tokens; when the bucket is empty
  /// the call fails with its last status instead of retrying — this is
  /// what turns a would-be retry storm into bounded load.
  RetryBudget* retry_budget{nullptr};

  /// Short control-plane ops (info-service queries, health probes).
  [[nodiscard]] static RpcCallOptions control() {
    RpcCallOptions o;
    o.deadline = sim::Duration::seconds(2);
    o.max_attempts = 3;
    return o;
  }

  /// NFS data-plane traffic: deadlines generous enough for WAN backlog,
  /// enough attempts to ride out a short server outage.
  [[nodiscard]] static RpcCallOptions nfs() {
    RpcCallOptions o;
    o.deadline = sim::Duration::seconds(30);
    o.max_attempts = 4;
    o.backoff_base = sim::Duration::millis(250);
    return o;
  }
};

/// Server-side admission control: a bounded number of requests in
/// service, a bounded queue of waiters, and fast kOverloaded rejects for
/// everything past that. `max_concurrent == 0` (the default) disables
/// the whole mechanism — dispatch is immediate and unbounded, which is
/// the historical fabric behaviour, bit for bit.
struct RpcAdmissionParams {
  std::size_t max_concurrent{0};  ///< requests in service; 0 = unlimited
  std::size_t queue_depth{64};    ///< waiters beyond the in-service set
  /// Waiters older than this are shed when they reach the head of the
  /// queue: serving a request whose client gave up long ago is wasted
  /// work that steals capacity from requests that can still succeed.
  sim::Duration max_queue_age{sim::Duration::infinite()};
};

/// Per-server RPC stack parameters. The per-call overhead models the
/// protocol stack cost (marshalling, context switches) that makes a
/// loopback-mounted NFS slower than the native file system even with no
/// wire latency — the effect behind Table 2's LoopbackNFS column.
struct RpcServerParams {
  sim::Duration per_call_overhead = sim::Duration::micros(300);
  RpcAdmissionParams admission{};
};

class RpcFabric;

/// A named-method RPC service bound to one network node.
class RpcServer {
 public:
  RpcServer(RpcFabric& fabric, NodeId self, RpcServerParams params = {});
  ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  void register_method(std::string name, RpcHandler handler);
  [[nodiscard]] NodeId node() const { return self_; }
  [[nodiscard]] std::uint64_t calls_served() const { return calls_; }
  [[nodiscard]] std::uint64_t calls_shed() const { return shed_; }
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }
  [[nodiscard]] std::size_t active_calls() const { return active_; }
  [[nodiscard]] RpcFabric& fabric() { return fabric_; }

  /// Fault hook (FaultKind::kOverload): occupy `slots` of the admission
  /// concurrency with phantom work, so real traffic queues and sheds as
  /// if a load spike were in progress. No-op while admission control is
  /// disabled. Pass 0 to heal.
  void set_synthetic_load(std::size_t slots);
  [[nodiscard]] std::size_t synthetic_load() const { return synthetic_load_; }

 private:
  friend class RpcFabric;
  struct Waiting {
    RpcRequest req;
    RpcResponder respond;
    sim::TimePoint enqueued{};
  };

  void dispatch(const RpcRequest& req, RpcResponder respond);
  /// Hand the request to its handler (admission already granted).
  void serve(const RpcRequest& req, RpcResponder respond);
  /// Serve admitted waiters while capacity allows, shedding expired ones.
  void pump();
  void shed(RpcResponder respond, const char* why);
  [[nodiscard]] bool has_capacity() const {
    return active_ + synthetic_load_ < params_.admission.max_concurrent;
  }

  RpcFabric& fabric_;
  NodeId self_;
  RpcServerParams params_;
  // Aliveness sentinel: handlers may hold their responder past this
  // server's destruction (e.g. a node crash mid-call), and the admission
  // wrapper must not release a slot on a freed object.
  std::shared_ptr<char> alive_{std::make_shared<char>(0)};
  std::unordered_map<std::string, RpcHandler> methods_;
  std::uint64_t calls_{0};
  std::uint64_t shed_{0};
  std::size_t active_{0};
  std::size_t synthetic_load_{0};
  std::deque<Waiting> queue_;
  // Registry-owned instruments, registered lazily on first use so
  // admission-disabled servers add nothing to the metrics export.
  obs::Counter* shed_counter_{nullptr};
  obs::Gauge* queue_gauge_{nullptr};
};

/// Connects RpcServers to the network and routes calls to them.
///
/// Failure contract: every call() completes its callback exactly once, no
/// matter what faults occur in flight — down links and nodes surface as
/// kUnreachable, a server destroyed between request arrival and handler
/// execution surfaces as kUnreachable (never a dangling dispatch), and a
/// finite deadline turns a silent stall into kTimeout.
class RpcFabric {
 public:
  explicit RpcFabric(Network& net) : net_{net} {}

  /// Issue a call from `from` to the server bound at `to` with the
  /// default (historical) policy: no deadline, one attempt.
  /// Unknown node / unknown method produce a failed response rather
  /// than an exception: remote failures are data, not programming errors.
  void call(NodeId from, NodeId to, RpcRequest req, RpcCallback cb);

  /// Same, with an explicit deadline/retry policy.
  void call(NodeId from, NodeId to, RpcRequest req, RpcCallOptions opts,
            RpcCallback cb);

  [[nodiscard]] Network& network() { return net_; }
  [[nodiscard]] sim::Simulation& simulation() { return net_.simulation(); }

 private:
  friend class RpcServer;
  struct CallState;

  void bind(NodeId node, RpcServer* server);
  void unbind(NodeId node);

  void start_attempt(const std::shared_ptr<CallState>& st);
  void attempt_failed(const std::shared_ptr<CallState>& st, int epoch,
                      RpcStatus status, std::string detail);
  void total_deadline_exceeded(const std::shared_ptr<CallState>& st);
  void settle(const std::shared_ptr<CallState>& st, RpcResponse resp);

  Network& net_;
  std::unordered_map<NodeId, RpcServer*> servers_;
};

}  // namespace vmgrid::net
