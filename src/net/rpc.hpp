#pragma once

#include <any>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "net/network.hpp"

namespace vmgrid::net {

/// Wire-level request: method name, request size on the wire, and an
/// opaque in-memory payload (the simulation does not marshal real bytes).
struct RpcRequest {
  std::string method;
  std::uint64_t request_bytes{128};
  std::any payload;
};

struct RpcResponse {
  bool ok{true};
  std::string error;
  std::uint64_t response_bytes{128};
  std::any payload;
};

using RpcCallback = std::function<void(RpcResponse)>;
using RpcResponder = std::function<void(RpcResponse)>;
using RpcHandler = std::function<void(const RpcRequest&, RpcResponder)>;

/// Per-server RPC stack parameters. The per-call overhead models the
/// protocol stack cost (marshalling, context switches) that makes a
/// loopback-mounted NFS slower than the native file system even with no
/// wire latency — the effect behind Table 2's LoopbackNFS column.
struct RpcServerParams {
  sim::Duration per_call_overhead = sim::Duration::micros(300);
};

class RpcFabric;

/// A named-method RPC service bound to one network node.
class RpcServer {
 public:
  RpcServer(RpcFabric& fabric, NodeId self, RpcServerParams params = {});
  ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  void register_method(std::string name, RpcHandler handler);
  [[nodiscard]] NodeId node() const { return self_; }
  [[nodiscard]] std::uint64_t calls_served() const { return calls_; }
  [[nodiscard]] RpcFabric& fabric() { return fabric_; }

 private:
  friend class RpcFabric;
  void dispatch(const RpcRequest& req, RpcResponder respond);

  RpcFabric& fabric_;
  NodeId self_;
  RpcServerParams params_;
  std::unordered_map<std::string, RpcHandler> methods_;
  std::uint64_t calls_{0};
};

/// Connects RpcServers to the network and routes calls to them.
class RpcFabric {
 public:
  explicit RpcFabric(Network& net) : net_{net} {}

  /// Issue a call from `from` to the server bound at `to`.
  /// Unknown node / unknown method produce an ok=false response rather
  /// than an exception: remote failures are data, not programming errors.
  void call(NodeId from, NodeId to, RpcRequest req, RpcCallback cb);

  [[nodiscard]] Network& network() { return net_; }
  [[nodiscard]] sim::Simulation& simulation() { return net_.simulation(); }

 private:
  friend class RpcServer;
  void bind(NodeId node, RpcServer* server);
  void unbind(NodeId node);

  Network& net_;
  std::unordered_map<NodeId, RpcServer*> servers_;
};

}  // namespace vmgrid::net
