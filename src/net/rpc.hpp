#pragma once

#include <any>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "net/network.hpp"

namespace vmgrid::net {

/// Machine-checkable RPC failure taxonomy. `RpcResponse::error` keeps the
/// human-readable detail; call sites branch on the status, never on the
/// error text.
enum class RpcStatus : std::uint8_t {
  kOk = 0,
  kConnectionRefused,  ///< node reachable but no server bound there
  kNoSuchMethod,       ///< server bound, method not registered
  kUnreachable,        ///< request/reply dropped, or server died mid-call
  kTimeout,            ///< client-side per-attempt deadline expired
  kServerError,        ///< handler responded ok=false (application error)
};

[[nodiscard]] const char* to_string(RpcStatus s);

/// Transient transport failures worth retrying. Application errors and
/// misrouted methods are deterministic — retrying them cannot help.
[[nodiscard]] constexpr bool rpc_status_retryable(RpcStatus s) {
  return s == RpcStatus::kConnectionRefused || s == RpcStatus::kUnreachable ||
         s == RpcStatus::kTimeout;
}

/// Wire-level request: method name, request size on the wire, and an
/// opaque in-memory payload (the simulation does not marshal real bytes).
struct RpcRequest {
  std::string method;
  std::uint64_t request_bytes{128};
  std::any payload;
};

struct RpcResponse {
  bool ok{true};
  std::string error;
  std::uint64_t response_bytes{128};
  std::any payload;
  RpcStatus status{RpcStatus::kOk};
};

using RpcCallback = std::function<void(RpcResponse)>;
using RpcResponder = std::function<void(RpcResponse)>;
using RpcHandler = std::function<void(const RpcRequest&, RpcResponder)>;

/// Client-side call policy: a per-attempt deadline plus jittered
/// exponential backoff between retries of transient failures.
///
/// The default — infinite deadline, one attempt — is exactly the
/// historical fabric behaviour: no timer is scheduled and the rng is never
/// consulted, so fault-free runs remain byte-identical to pre-fault
/// builds. Fault-aware worlds opt into the named presets (or their own).
struct RpcCallOptions {
  sim::Duration deadline{sim::Duration::infinite()};  ///< per attempt
  int max_attempts{1};
  sim::Duration backoff_base{sim::Duration::millis(200)};
  double backoff_multiplier{2.0};
  sim::Duration backoff_cap{sim::Duration::seconds(5)};
  double backoff_jitter{0.2};  ///< +/- fraction applied to each backoff

  /// Short control-plane ops (info-service queries, health probes).
  [[nodiscard]] static RpcCallOptions control() {
    RpcCallOptions o;
    o.deadline = sim::Duration::seconds(2);
    o.max_attempts = 3;
    return o;
  }

  /// NFS data-plane traffic: deadlines generous enough for WAN backlog,
  /// enough attempts to ride out a short server outage.
  [[nodiscard]] static RpcCallOptions nfs() {
    RpcCallOptions o;
    o.deadline = sim::Duration::seconds(30);
    o.max_attempts = 4;
    o.backoff_base = sim::Duration::millis(250);
    return o;
  }
};

/// Per-server RPC stack parameters. The per-call overhead models the
/// protocol stack cost (marshalling, context switches) that makes a
/// loopback-mounted NFS slower than the native file system even with no
/// wire latency — the effect behind Table 2's LoopbackNFS column.
struct RpcServerParams {
  sim::Duration per_call_overhead = sim::Duration::micros(300);
};

class RpcFabric;

/// A named-method RPC service bound to one network node.
class RpcServer {
 public:
  RpcServer(RpcFabric& fabric, NodeId self, RpcServerParams params = {});
  ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  void register_method(std::string name, RpcHandler handler);
  [[nodiscard]] NodeId node() const { return self_; }
  [[nodiscard]] std::uint64_t calls_served() const { return calls_; }
  [[nodiscard]] RpcFabric& fabric() { return fabric_; }

 private:
  friend class RpcFabric;
  void dispatch(const RpcRequest& req, RpcResponder respond);

  RpcFabric& fabric_;
  NodeId self_;
  RpcServerParams params_;
  std::unordered_map<std::string, RpcHandler> methods_;
  std::uint64_t calls_{0};
};

/// Connects RpcServers to the network and routes calls to them.
///
/// Failure contract: every call() completes its callback exactly once, no
/// matter what faults occur in flight — down links and nodes surface as
/// kUnreachable, a server destroyed between request arrival and handler
/// execution surfaces as kUnreachable (never a dangling dispatch), and a
/// finite deadline turns a silent stall into kTimeout.
class RpcFabric {
 public:
  explicit RpcFabric(Network& net) : net_{net} {}

  /// Issue a call from `from` to the server bound at `to` with the
  /// default (historical) policy: no deadline, one attempt.
  /// Unknown node / unknown method produce an ok=false response rather
  /// than an exception: remote failures are data, not programming errors.
  void call(NodeId from, NodeId to, RpcRequest req, RpcCallback cb);

  /// Same, with an explicit deadline/retry policy.
  void call(NodeId from, NodeId to, RpcRequest req, RpcCallOptions opts,
            RpcCallback cb);

  [[nodiscard]] Network& network() { return net_; }
  [[nodiscard]] sim::Simulation& simulation() { return net_.simulation(); }

 private:
  friend class RpcServer;
  struct CallState;

  void bind(NodeId node, RpcServer* server);
  void unbind(NodeId node);

  void start_attempt(const std::shared_ptr<CallState>& st);
  void attempt_failed(const std::shared_ptr<CallState>& st, int epoch,
                      RpcStatus status, std::string detail);
  void settle(const std::shared_ptr<CallState>& st, RpcResponse resp);

  Network& net_;
  std::unordered_map<NodeId, RpcServer*> servers_;
};

}  // namespace vmgrid::net
