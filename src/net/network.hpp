#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/address.hpp"
#include "sim/simulation.hpp"

namespace vmgrid::net {

/// Directed link characteristics. Bandwidth is bytes/second.
struct LinkParams {
  sim::Duration latency{sim::Duration::millis(1)};
  double bandwidth_bps{10e6};  // bytes per second
};

struct TransferResult {
  sim::Duration elapsed;
  std::uint64_t bytes{};
  /// False when the transfer was dropped by a down link/node or random
  /// loss: the callback still fires (transport reports the drop), so no
  /// caller can be left hanging by a fault.
  bool delivered{true};
};

using TransferCallback = std::function<void(const TransferResult&)>;

/// Simulated internetwork: nodes joined by directed links, shortest-path
/// (latency-metric) routing, and store-and-forward transfers with FIFO
/// serialization at each link (which yields simple, deterministic
/// congestion behaviour).
///
/// Grid sites are modelled as LAN segments (fast links) joined by WAN
/// links (high latency, lower bandwidth) — enough fidelity for the
/// paper's LAN vs WAN storage-path experiments.
class Network {
 public:
  explicit Network(sim::Simulation& s) : sim_{s} {}

  NodeId add_node(std::string name);
  [[nodiscard]] const std::string& node_name(NodeId id) const;
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

  /// Add a bidirectional link (two directed links with identical params).
  void add_link(NodeId a, NodeId b, LinkParams params);

  /// Mutate an existing link (both directions); used to model failures
  /// and congestion in the overlay experiments. Routes are intentionally
  /// NOT recomputed — like the real Internet, the underlay does not
  /// reroute when a path merely degrades (that is the overlay's job).
  void set_link(NodeId a, NodeId b, LinkParams params);
  [[nodiscard]] std::optional<LinkParams> link_params(NodeId a, NodeId b) const;

  /// Fault hooks (both directions). A down link keeps its place in the
  /// routing tables — packets routed over it are dropped, mirroring how
  /// the underlay does not reroute around failures (the overlay's job).
  void set_link_up(NodeId a, NodeId b, bool up);
  [[nodiscard]] bool link_up(NodeId a, NodeId b) const;

  /// Per-packet Bernoulli loss probability in [0, 1] (both directions).
  /// The rng is only consulted while loss > 0, so fault-free runs draw
  /// nothing and stay byte-identical to pre-fault builds.
  void set_link_loss(NodeId a, NodeId b, double loss);
  [[nodiscard]] double link_loss(NodeId a, NodeId b) const;

  /// A down node drops everything addressed to, from, or through it.
  void set_node_up(NodeId id, bool up);
  [[nodiscard]] bool node_up(NodeId id) const;

  /// Transfer `bytes` from src to dst; invokes cb at delivery time.
  /// Zero-byte transfers model bare control packets (pure latency).
  ///
  /// Under exploration (Simulation::exploring()) each send is a
  /// "net.deliver" choice point: the message may be held for 1..N-1
  /// delivery quanta before entering the network, which is how the
  /// explorer enumerates delivery orders of racing messages. The site
  /// reports a conflict only when another transfer to the same
  /// destination is in flight — deliveries to different nodes commute
  /// and are never reordered (sleep-set pruning). Outside exploration
  /// the choice resolves to 0 (no hold) and nothing changes.
  void send(NodeId src, NodeId dst, std::uint64_t bytes, TransferCallback cb);

  /// Hold granularity for the exploration delivery choice (default 1 ms:
  /// larger than LAN latency, so a held message really does arrive after
  /// an unheld one).
  void set_delivery_quantum(sim::Duration q) { delivery_quantum_ = q; }

  /// The transfer time a message would see *right now* (including queued
  /// backlog on each hop). Used by overlay probing.
  [[nodiscard]] sim::Duration estimate_latency(NodeId src, NodeId dst,
                                               std::uint64_t bytes) const;

  /// Propagation-only round trip time along the routed path.
  [[nodiscard]] sim::Duration rtt(NodeId a, NodeId b) const;

  [[nodiscard]] bool reachable(NodeId a, NodeId b) const;

  /// Total bytes that traversed the (a -> b) directed link.
  [[nodiscard]] std::uint64_t link_bytes(NodeId a, NodeId b) const;

  [[nodiscard]] sim::Simulation& simulation() { return sim_; }

 private:
  struct Link {
    NodeId from, to;
    LinkParams params;
    sim::TimePoint busy_until{};
    std::uint64_t bytes_carried{0};
    bool up{true};
    double loss{0.0};
  };

  using LinkIndex = std::size_t;

  [[nodiscard]] std::vector<LinkIndex> route(NodeId src, NodeId dst) const;
  void send_now(NodeId src, NodeId dst, std::uint64_t bytes, TransferCallback cb);
  void hop(std::vector<LinkIndex> path, std::size_t i, std::uint64_t bytes,
           sim::TimePoint started, TransferCallback cb);
  LinkIndex find_link(NodeId a, NodeId b) const;
  void drop(sim::Duration after, std::uint64_t bytes, sim::TimePoint started,
            TransferCallback cb);

  sim::Simulation& sim_;
  std::vector<std::string> nodes_;
  std::vector<char> node_up_;
  std::vector<Link> links_;
  std::unordered_map<std::uint64_t, LinkIndex> link_by_pair_;
  mutable std::unordered_map<std::uint64_t, std::vector<LinkIndex>> route_cache_;
  mutable bool routes_dirty_{true};
  /// In-flight transfers per destination node, maintained only while
  /// exploring (the conflict signal for the delivery choice point).
  std::unordered_map<std::uint32_t, std::uint32_t> inflight_to_;
  sim::Duration delivery_quantum_{sim::Duration::millis(1)};
};

}  // namespace vmgrid::net
