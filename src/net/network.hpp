#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "model/fidelity.hpp"
#include "net/address.hpp"
#include "sim/simulation.hpp"

namespace vmgrid::model {
class FluidArena;
}

namespace vmgrid::net {

/// Identity of a hierarchical routing zone. Strong type, same idiom as
/// NodeId.
class ZoneId {
 public:
  constexpr ZoneId() = default;
  explicit constexpr ZoneId(std::uint32_t v) : v_{v} {}
  [[nodiscard]] constexpr std::uint32_t value() const { return v_; }
  [[nodiscard]] constexpr bool valid() const { return v_ != kInvalid; }
  constexpr auto operator<=>(const ZoneId&) const = default;

 private:
  static constexpr std::uint32_t kInvalid = 0xffffffffu;
  std::uint32_t v_{kInvalid};
};

/// Directed link characteristics. Bandwidth is bytes/second.
struct LinkParams {
  sim::Duration latency{sim::Duration::millis(1)};
  double bandwidth_bps{10e6};  // bytes per second
};

struct TransferResult {
  sim::Duration elapsed;
  std::uint64_t bytes{};
  /// False when the transfer was dropped by a down link/node or random
  /// loss: the callback still fires (transport reports the drop), so no
  /// caller can be left hanging by a fault.
  bool delivered{true};
};

using TransferCallback = std::function<void(const TransferResult&)>;

/// Simulated internetwork: nodes joined by directed links, with two
/// switchable fidelity tiers (DESIGN.md §16, `VMGRID_FIDELITY`):
///
///  - kExact (default): shortest-path (latency-metric) routing and
///    store-and-forward transfers with FIFO serialization at each link —
///    one event per hop, byte-identical to the historical model.
///  - kFluid: the same routes, but a transfer is one *flow* holding a
///    max-min fair share of every link on its path (model::FluidArena);
///    one completion event per flow regardless of hop count.
///
/// Topology comes in two shapes that freely coexist:
///
///  - flat nodes + explicit links, routed by cached all-pairs Dijkstra
///    (the historical model; cache memory is O(pairs actually used));
///  - hierarchical routing *zones*: star-shaped member sets around a
///    gateway node, nested (cluster zones inside a WAN zone). A route
///    between zone members resolves structurally in O(tree depth) —
///    member -> gateway chain up to the lowest common ancestor zone and
///    back down — with no Dijkstra run and no per-pair cache entry, so
///    10k-host topologies stop costing O(nodes^2) time or memory.
///
/// Grid sites are modelled as LAN segments (fast links) joined by WAN
/// links (high latency, lower bandwidth) — enough fidelity for the
/// paper's LAN vs WAN storage-path experiments.
class Network {
 public:
  explicit Network(sim::Simulation& s);
  ~Network();

  NodeId add_node(std::string name);
  [[nodiscard]] const std::string& node_name(NodeId id) const;
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

  /// Add a bidirectional link (two directed links with identical params).
  /// Registering a pair that already has a link *reuses* the existing
  /// record — params are replaced in both directions, byte counters and
  /// up/loss state survive, and routes are recomputed (a re-registration
  /// is a topology/policy event, unlike set_link) — so no stale Link can
  /// be leaked and link_bytes never splits across duplicates.
  void add_link(NodeId a, NodeId b, LinkParams params);

  /// Mutate an existing link (both directions); used to model failures
  /// and congestion in the overlay experiments. Routes are intentionally
  /// NOT recomputed — like the real Internet, the underlay does not
  /// reroute when a path merely degrades (that is the overlay's job).
  void set_link(NodeId a, NodeId b, LinkParams params);
  [[nodiscard]] std::optional<LinkParams> link_params(NodeId a, NodeId b) const;

  /// Fault hooks (both directions). A down link keeps its place in the
  /// routing tables — packets routed over it are dropped, mirroring how
  /// the underlay does not reroute around failures (the overlay's job).
  void set_link_up(NodeId a, NodeId b, bool up);
  [[nodiscard]] bool link_up(NodeId a, NodeId b) const;

  /// Per-packet Bernoulli loss probability in [0, 1] (both directions).
  /// The rng is only consulted while loss > 0, so fault-free runs draw
  /// nothing and stay byte-identical to pre-fault builds.
  void set_link_loss(NodeId a, NodeId b, double loss);
  [[nodiscard]] double link_loss(NodeId a, NodeId b) const;

  /// A down node drops everything addressed to, from, or through it.
  void set_node_up(NodeId id, bool up);
  [[nodiscard]] bool node_up(NodeId id) const;

  // --- hierarchical routing zones ---

  /// Create a root zone: a gateway hub node `<name>.gw` is created and
  /// every member added later links to it with `member_link` params.
  ZoneId add_zone(std::string name, LinkParams member_link);

  /// Create a nested zone: its gateway is a member of `parent` (joined
  /// to the parent gateway with `uplink` params); its own members join
  /// the new gateway with `member_link` params.
  ZoneId add_zone(std::string name, ZoneId parent, LinkParams uplink,
                  LinkParams member_link);

  /// Create a node directly inside a zone.
  NodeId add_zone_node(ZoneId z, std::string name);

  /// Enroll an existing flat node (e.g. a PhysicalHost's) into a zone:
  /// adds the member link to the zone gateway. A node joins at most one
  /// zone; zone membership changes invalidate cached routes (they are
  /// topology events, unlike set_link).
  void assign_zone(NodeId n, ZoneId z);

  [[nodiscard]] NodeId zone_gateway(ZoneId z) const;
  [[nodiscard]] const std::string& zone_name(ZoneId z) const;
  [[nodiscard]] std::optional<ZoneId> node_zone(NodeId n) const;
  [[nodiscard]] std::size_t zone_count() const { return zones_.size(); }

  /// Flat-pair route-cache population (test hook: zone-resolved routes
  /// must never grow it, that is the O(nodes^2) memory this layer kills).
  [[nodiscard]] std::size_t route_cache_size() const { return route_cache_.size(); }

  // --- fidelity tier ---

  /// Default tier comes from `VMGRID_FIDELITY` at construction; tests
  /// and benches may override per instance. Switch before traffic
  /// starts: in-flight exact transfers stay exact and vice versa.
  void set_fidelity(model::Fidelity f) { fidelity_ = f; }
  [[nodiscard]] model::Fidelity fidelity() const { return fidelity_; }

  /// The fluid machinery behind this network; nullptr until the first
  /// fluid transfer (and always in exact mode). Bench introspection.
  [[nodiscard]] const model::FluidArena* fluid_arena() const { return fluid_.get(); }

  /// Transfer `bytes` from src to dst; invokes cb at delivery time.
  /// Zero-byte transfers model bare control packets (pure latency).
  ///
  /// Under exploration (Simulation::exploring()) each send is a
  /// "net.deliver" choice point: the message may be held for 1..N-1
  /// delivery quanta before entering the network, which is how the
  /// explorer enumerates delivery orders of racing messages. The site
  /// reports a conflict only when another transfer to the same
  /// destination is in flight — deliveries to different nodes commute
  /// and are never reordered (sleep-set pruning). Outside exploration
  /// the choice resolves to 0 (no hold) and nothing changes.
  void send(NodeId src, NodeId dst, std::uint64_t bytes, TransferCallback cb);

  /// Hold granularity for the exploration delivery choice (default 1 ms:
  /// larger than LAN latency, so a held message really does arrive after
  /// an unheld one).
  void set_delivery_quantum(sim::Duration q) { delivery_quantum_ = q; }

  /// The transfer time a message would see *right now* (including queued
  /// backlog on each hop; in fluid mode, the fair share it would get
  /// beside the flows currently on each link). Used by overlay probing.
  [[nodiscard]] sim::Duration estimate_latency(NodeId src, NodeId dst,
                                               std::uint64_t bytes) const;

  /// Propagation-only round trip time along the routed path.
  [[nodiscard]] sim::Duration rtt(NodeId a, NodeId b) const;

  [[nodiscard]] bool reachable(NodeId a, NodeId b) const;

  /// Total bytes that traversed the (a -> b) directed link. The fluid
  /// tier charges a delivered flow to every path link at send time;
  /// totals match the exact tier for delivered traffic.
  [[nodiscard]] std::uint64_t link_bytes(NodeId a, NodeId b) const;

  [[nodiscard]] sim::Simulation& simulation() { return sim_; }

 private:
  struct Link {
    NodeId from, to;
    LinkParams params;
    sim::TimePoint busy_until{};
    std::uint64_t bytes_carried{0};
    bool up{true};
    double loss{0.0};
  };

  struct Zone {
    std::string name;
    std::int32_t parent{-1};  // index into zones_, -1 for roots
    NodeId gateway;
    LinkParams member_link;
  };

  using LinkIndex = std::size_t;
  static constexpr std::uint32_t kNoFluidRes = 0xffffffffu;
  static constexpr LinkIndex kNoLink = static_cast<LinkIndex>(-1);

  [[nodiscard]] std::vector<LinkIndex> route(NodeId src, NodeId dst) const;
  /// route() without the return-value allocation: fills `out` (cleared
  /// first). Zone pairs resolve structurally; flat pairs copy the cached
  /// Dijkstra path.
  void route_into(NodeId src, NodeId dst, std::vector<LinkIndex>& out) const;
  /// Cached Dijkstra for flat pairs; the reference lives until the next
  /// topology change (routes_dirty_) — copy before any mutation.
  [[nodiscard]] const std::vector<LinkIndex>& flat_route(NodeId src, NodeId dst) const;
  /// O(depth) structural route for two zone members; false (and empty
  /// `out`) when the pair lives under different zone roots (unreachable).
  bool zone_route(NodeId src, NodeId dst, std::vector<LinkIndex>& out) const;
  /// Link for one step of a zone path: consults the cached member<->
  /// gateway indices before falling back to the hash lookup.
  [[nodiscard]] LinkIndex link_between(NodeId a, NodeId b) const;
  void cache_zone_links(NodeId member, NodeId gateway);
  void send_now(NodeId src, NodeId dst, std::uint64_t bytes, TransferCallback cb);
  void send_fluid(const std::vector<LinkIndex>& path, std::uint64_t bytes,
                  sim::TimePoint started, TransferCallback cb);
  void hop(std::vector<LinkIndex> path, std::size_t i, std::uint64_t bytes,
           sim::TimePoint started, TransferCallback cb);
  LinkIndex find_link(NodeId a, NodeId b) const;
  void drop(sim::Duration after, std::uint64_t bytes, sim::TimePoint started,
            TransferCallback cb);
  model::FluidArena& fluid();
  std::uint32_t fluid_resource(LinkIndex li);
  void sync_fluid_capacity(LinkIndex li);

  sim::Simulation& sim_;
  std::vector<std::string> nodes_;
  std::vector<char> node_up_;
  std::vector<std::int32_t> node_zone_;  // parallel to nodes_; -1 = flat
  // Per-node link to / from its zone gateway (kNoLink until enrolled).
  // Zone paths are member<->gateway steps, so zone_route emits from
  // these arrays instead of hashing link_by_pair_ once per hop. add_link
  // reuses indices on duplicate registration, so they never go stale.
  std::vector<LinkIndex> up_link_, down_link_;
  std::vector<Zone> zones_;
  std::vector<Link> links_;
  std::unordered_map<std::uint64_t, LinkIndex> link_by_pair_;
  mutable std::unordered_map<std::uint64_t, std::vector<LinkIndex>> route_cache_;
  mutable bool routes_dirty_{true};
  model::Fidelity fidelity_;
  std::unique_ptr<model::FluidArena> fluid_;      // lazily built, fluid tier only
  std::vector<std::uint32_t> fluid_link_res_;     // per directed link, kNoFluidRes
  // send_now/send_fluid scratch (safe: nothing in that path re-enters
  // send_now — the fluid solver and drop() only schedule events).
  std::vector<LinkIndex> fluid_path_scratch_;
  std::vector<std::uint32_t> fluid_res_scratch_;
  /// In-flight transfers per destination node, maintained only while
  /// exploring (the conflict signal for the delivery choice point).
  std::unordered_map<std::uint32_t, std::uint32_t> inflight_to_;
  sim::Duration delivery_quantum_{sim::Duration::millis(1)};
};

}  // namespace vmgrid::net
