#pragma once

#include <cstdint>
#include <functional>

#include "sim/time.hpp"

namespace vmgrid::net {

/// Client-side retry budget: a token bucket shared by all calls a client
/// issues. Every retry spends one token; every success refills a
/// fraction of one. Under a persistent outage the bucket drains and
/// further retries are denied, so the total attempt volume a client can
/// throw at a struggling server is bounded (the SRE "retry budget"
/// argument: unbudgeted exponential backoff still multiplies offered
/// load by max_attempts during a full outage).
struct RetryBudgetParams {
  double capacity{10.0};            ///< bucket size (max banked retries)
  double initial{10.0};             ///< tokens at construction
  double refill_per_success{0.1};   ///< tokens earned back per success
};

class RetryBudget {
 public:
  RetryBudget() : RetryBudget(RetryBudgetParams{}) {}
  explicit RetryBudget(RetryBudgetParams params)
      : params_{params}, tokens_{params.initial} {}

  /// Spend one token for a retry. False (and nothing spent) when the
  /// bucket is empty — the caller must give up instead of retrying.
  bool try_spend() {
    if (tokens_ < 1.0) {
      ++denied_;
      return false;
    }
    tokens_ -= 1.0;
    ++spent_;
    return true;
  }

  /// A call settled ok: earn back a fraction of a token.
  void on_success() {
    tokens_ += params_.refill_per_success;
    if (tokens_ > params_.capacity) tokens_ = params_.capacity;
  }

  [[nodiscard]] double tokens() const { return tokens_; }
  [[nodiscard]] std::uint64_t spent() const { return spent_; }
  [[nodiscard]] std::uint64_t denied() const { return denied_; }
  [[nodiscard]] const RetryBudgetParams& params() const { return params_; }

 private:
  RetryBudgetParams params_;
  double tokens_;
  std::uint64_t spent_{0};
  std::uint64_t denied_{0};
};

/// Circuit-breaker states: kClosed (traffic flows, failures counted),
/// kOpen (fail fast, no traffic), kHalfOpen (a bounded number of probe
/// calls test whether the downstream recovered).
enum class BreakerState : std::uint8_t { kClosed, kOpen, kHalfOpen };

[[nodiscard]] const char* to_string(BreakerState s);

struct CircuitBreakerParams {
  int failure_threshold{5};  ///< consecutive failures that trip the breaker
  sim::Duration open_duration{sim::Duration::seconds(10)};
  int half_open_probes{1};   ///< concurrent probes allowed while half-open
};

/// Time-driven state machine; the owner passes `now` in, so the breaker
/// has no scheduler dependency and works identically in tests and in the
/// simulation proper. The owner decides which outcomes count as
/// failures (for the VFS path: kOverloaded and kTimeout — deterministic
/// application errors must not trip it).
class CircuitBreaker {
 public:
  CircuitBreaker() : CircuitBreaker(CircuitBreakerParams{}) {}
  explicit CircuitBreaker(CircuitBreakerParams params) : params_{params} {}

  using TransitionHook = std::function<void(BreakerState from, BreakerState to)>;
  void set_transition_hook(TransitionHook hook) { hook_ = std::move(hook); }

  /// May this call proceed? In kOpen, flips to kHalfOpen once
  /// open_duration elapsed; in kHalfOpen, admits up to half_open_probes
  /// outstanding probes. A true return in kHalfOpen reserves a probe
  /// slot; the caller must report the outcome via on_success/on_failure.
  bool allow(sim::TimePoint now) {
    if (state_ == BreakerState::kOpen) {
      if (now < open_until_) return false;
      transition(BreakerState::kHalfOpen);
      probes_outstanding_ = 0;
    }
    if (state_ == BreakerState::kHalfOpen) {
      if (probes_outstanding_ >= params_.half_open_probes) return false;
      ++probes_outstanding_;
      return true;
    }
    return true;  // kClosed
  }

  void on_success(sim::TimePoint) {
    consecutive_failures_ = 0;
    if (state_ == BreakerState::kHalfOpen) {
      probes_outstanding_ = 0;
      transition(BreakerState::kClosed);
    }
  }

  void on_failure(sim::TimePoint now) {
    if (state_ == BreakerState::kHalfOpen) {
      probes_outstanding_ = 0;
      open_until_ = now + params_.open_duration;
      transition(BreakerState::kOpen);
      return;
    }
    if (state_ == BreakerState::kClosed) {
      ++consecutive_failures_;
      if (consecutive_failures_ >= params_.failure_threshold) {
        open_until_ = now + params_.open_duration;
        transition(BreakerState::kOpen);
      }
    }
  }

  [[nodiscard]] BreakerState state() const { return state_; }
  [[nodiscard]] std::uint64_t transitions() const { return transitions_; }
  [[nodiscard]] const CircuitBreakerParams& params() const { return params_; }

 private:
  void transition(BreakerState to) {
    const BreakerState from = state_;
    state_ = to;
    ++transitions_;
    consecutive_failures_ = 0;
    if (hook_) hook_(from, to);
  }

  CircuitBreakerParams params_;
  BreakerState state_{BreakerState::kClosed};
  int consecutive_failures_{0};
  int probes_outstanding_{0};
  sim::TimePoint open_until_{};
  std::uint64_t transitions_{0};
  TransitionHook hook_;
};

}  // namespace vmgrid::net
