#include "net/address.hpp"

#include <cstdio>

namespace vmgrid::net {

std::string IpAddress::to_string() const {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (v_ >> 24) & 0xff, (v_ >> 16) & 0xff,
                (v_ >> 8) & 0xff, v_ & 0xff);
  return buf;
}

}  // namespace vmgrid::net
