#include "net/tunnel.hpp"

#include <stdexcept>
#include <utility>

namespace vmgrid::net {

EthernetTunnel::EthernetTunnel(Network& net, NodeId local_gateway, NodeId remote_host,
                               TunnelParams params)
    : net_{net}, local_{local_gateway}, remote_{remote_host}, params_{params} {}

void EthernetTunnel::establish(std::function<void()> on_ready) {
  // TCP + SSH handshake: a few round trips plus key exchange time.
  const auto handshake = net_.rtt(local_, remote_) * 3.0 + params_.setup_time;
  net_.simulation().schedule_after(handshake, [this, on_ready = std::move(on_ready)] {
    established_ = true;
    on_ready();
  });
}

std::uint64_t EthernetTunnel::wire_bytes(std::uint64_t bytes) const {
  if (bytes == 0) return params_.encap_bytes_per_frame;
  const std::uint64_t frames = (bytes + params_.mtu_bytes - 1) / params_.mtu_bytes;
  return bytes + frames * params_.encap_bytes_per_frame;
}

void EthernetTunnel::send(bool to_remote, std::uint64_t bytes, TransferCallback cb) {
  if (!established_) {
    throw std::logic_error("EthernetTunnel::send before establish()");
  }
  const NodeId src = to_remote ? local_ : remote_;
  const NodeId dst = to_remote ? remote_ : local_;
  // Cipher cost on the sending end delays wire transmission.
  const auto crypto = sim::Duration::seconds(static_cast<double>(bytes) /
                                             params_.crypto_bandwidth_bps);
  const auto started = net_.simulation().now();
  net_.simulation().schedule_after(crypto, [this, src, dst, bytes, started,
                                            cb = std::move(cb)]() mutable {
    net_.send(src, dst, wire_bytes(bytes),
              [this, bytes, started, cb = std::move(cb)](const TransferResult&) {
                cb(TransferResult{net_.simulation().now() - started, bytes});
              });
  });
}

}  // namespace vmgrid::net
