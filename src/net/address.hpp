#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace vmgrid::net {

/// Identity of a node (physical machine, server, router) in the simulated
/// internetwork. Strong type: not interchangeable with other integer ids.
class NodeId {
 public:
  constexpr NodeId() = default;
  explicit constexpr NodeId(std::uint32_t v) : v_{v} {}
  [[nodiscard]] constexpr std::uint32_t value() const { return v_; }
  [[nodiscard]] constexpr bool valid() const { return v_ != kInvalid; }
  constexpr auto operator<=>(const NodeId&) const = default;

 private:
  static constexpr std::uint32_t kInvalid = 0xffffffffu;
  std::uint32_t v_{kInvalid};
};

/// IPv4-style address used by DHCP and virtual networking.
class IpAddress {
 public:
  constexpr IpAddress() = default;
  explicit constexpr IpAddress(std::uint32_t v) : v_{v} {}
  static constexpr IpAddress from_octets(std::uint8_t a, std::uint8_t b,
                                         std::uint8_t c, std::uint8_t d) {
    return IpAddress{(std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
                     (std::uint32_t{c} << 8) | std::uint32_t{d}};
  }
  [[nodiscard]] constexpr std::uint32_t value() const { return v_; }
  [[nodiscard]] constexpr bool valid() const { return v_ != 0; }
  [[nodiscard]] std::string to_string() const;
  constexpr auto operator<=>(const IpAddress&) const = default;

 private:
  std::uint32_t v_{0};
};

}  // namespace vmgrid::net

template <>
struct std::hash<vmgrid::net::NodeId> {
  std::size_t operator()(vmgrid::net::NodeId id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};

template <>
struct std::hash<vmgrid::net::IpAddress> {
  std::size_t operator()(vmgrid::net::IpAddress ip) const noexcept {
    return std::hash<std::uint32_t>{}(ip.value());
  }
};
