#include "net/dhcp.hpp"

#include <utility>

namespace vmgrid::net {

DhcpServer::DhcpServer(Network& net, NodeId self, IpAddress pool_base,
                       std::uint32_t pool_size)
    : net_{net}, self_{self}, pool_base_{pool_base}, pool_size_{pool_size} {}

std::optional<IpAddress> DhcpServer::allocate() {
  if (leased_.size() >= pool_size_) return std::nullopt;
  for (std::uint32_t i = 0; i < pool_size_; ++i) {
    const IpAddress candidate{pool_base_.value() + ((next_offset_ + i) % pool_size_)};
    if (!leased_.contains(candidate)) {
      next_offset_ = (next_offset_ + i + 1) % pool_size_;
      leased_.insert(candidate);
      return candidate;
    }
  }
  return std::nullopt;
}

void DhcpServer::request_lease(NodeId client, LeaseCallback cb) {
  // DISCOVER -> OFFER
  net_.send(client, self_, 300, [this, client, cb = std::move(cb)](const TransferResult&) mutable {
    net_.send(self_, client, 300, [this, client, cb = std::move(cb)](const TransferResult&) mutable {
      // REQUEST -> ACK carrying the allocation decision.
      net_.send(client, self_, 300,
                [this, client, cb = std::move(cb)](const TransferResult&) mutable {
                  auto lease = allocate();
                  net_.send(self_, client, 300,
                            [cb = std::move(cb), lease](const TransferResult&) { cb(lease); });
                });
    });
  });
}

void DhcpServer::release(IpAddress addr) { leased_.erase(addr); }

}  // namespace vmgrid::net
