#pragma once

#include <functional>
#include <unordered_map>
#include <vector>

#include "net/network.hpp"

namespace vmgrid::net {

struct OverlayParams {
  sim::Duration probe_interval{sim::Duration::seconds(2)};
  std::uint64_t probe_bytes{64};
  double ewma_alpha{0.5};  // weight of the newest measurement
};

/// Resilient-overlay-style network among the virtual machines of a grid
/// session (paper §3.3): members periodically probe pairwise path quality
/// and route application traffic over intermediate members when the
/// direct underlay path degrades or fails.
class OverlayNetwork {
 public:
  OverlayNetwork(Network& net, std::vector<NodeId> members, OverlayParams params = {});
  ~OverlayNetwork();

  OverlayNetwork(const OverlayNetwork&) = delete;
  OverlayNetwork& operator=(const OverlayNetwork&) = delete;

  /// Begin periodic probing. The first probe round runs immediately so
  /// routes exist before the first send.
  void start();
  void stop();

  /// Route a payload over the overlay (store-and-forward at member hops).
  void send(NodeId src, NodeId dst, std::uint64_t bytes, TransferCallback cb);

  /// Current overlay path, including endpoints. Empty if unreachable.
  [[nodiscard]] std::vector<NodeId> current_path(NodeId src, NodeId dst) const;

  /// Whether `n` is one of this overlay's members.
  [[nodiscard]] bool is_member(NodeId n) const;

  /// True when both endpoints are members and a probed overlay route
  /// currently exists between them — the precondition of send(), which
  /// throws where this returns false. Callers with an underlay fallback
  /// (the image swarm) branch on this instead of catching.
  [[nodiscard]] bool has_route(NodeId src, NodeId dst) const;

  /// Smoothed pairwise metric (seconds) between two members.
  [[nodiscard]] double metric(NodeId a, NodeId b) const;

  [[nodiscard]] const std::vector<NodeId>& members() const { return members_; }
  [[nodiscard]] std::uint64_t probe_rounds() const { return rounds_; }

 private:
  void probe_round();
  [[nodiscard]] std::size_t member_index(NodeId n) const;
  void hop(std::vector<NodeId> path, std::size_t i, std::uint64_t bytes,
           sim::TimePoint started, TransferCallback cb);

  Network& net_;
  std::vector<NodeId> members_;
  OverlayParams params_;
  // metric_[i*n+j]: smoothed one-way transfer estimate i -> j, seconds.
  std::vector<double> metric_;
  sim::EventId probe_event_;
  bool running_{false};
  std::uint64_t rounds_{0};
};

}  // namespace vmgrid::net
