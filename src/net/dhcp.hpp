#pragma once

#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "net/network.hpp"

namespace vmgrid::net {

/// Minimal DHCP service for a site subnet.
///
/// The paper's virtual-networking scenario 1 (§3.3): the VM host's site
/// hands out IP addresses to dynamically created VM instances. Lease
/// acquisition costs a DISCOVER/OFFER + REQUEST/ACK exchange (two round
/// trips) plus a small server service time.
class DhcpServer {
 public:
  DhcpServer(Network& net, NodeId self, IpAddress pool_base, std::uint32_t pool_size);

  using LeaseCallback = std::function<void(std::optional<IpAddress>)>;

  /// Request a lease on behalf of (a VM hosted at) `client`.
  void request_lease(NodeId client, LeaseCallback cb);

  /// Return an address to the pool. Unknown addresses are ignored.
  void release(IpAddress addr);

  [[nodiscard]] std::size_t leased_count() const { return leased_.size(); }
  [[nodiscard]] std::size_t pool_size() const { return pool_size_; }
  [[nodiscard]] NodeId node() const { return self_; }

 private:
  std::optional<IpAddress> allocate();

  Network& net_;
  NodeId self_;
  IpAddress pool_base_;
  std::uint32_t pool_size_;
  std::uint32_t next_offset_{0};
  std::unordered_set<IpAddress> leased_;
};

}  // namespace vmgrid::net
