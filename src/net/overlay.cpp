#include "net/overlay.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>
#include <stdexcept>
#include <utility>

namespace vmgrid::net {

namespace {
constexpr double kUnreachable = std::numeric_limits<double>::infinity();
}

OverlayNetwork::OverlayNetwork(Network& net, std::vector<NodeId> members,
                               OverlayParams params)
    : net_{net}, members_{std::move(members)}, params_{params},
      metric_(members_.size() * members_.size(), kUnreachable) {
  assert(members_.size() >= 2);
}

OverlayNetwork::~OverlayNetwork() { stop(); }

void OverlayNetwork::start() {
  if (running_) return;
  running_ = true;
  probe_round();
}

void OverlayNetwork::stop() {
  if (!running_) return;
  running_ = false;
  net_.simulation().cancel(probe_event_);
  probe_event_ = {};
}

std::size_t OverlayNetwork::member_index(NodeId n) const {
  auto it = std::find(members_.begin(), members_.end(), n);
  if (it == members_.end()) {
    throw std::logic_error("OverlayNetwork: node is not a member");
  }
  return static_cast<std::size_t>(it - members_.begin());
}

void OverlayNetwork::probe_round() {
  ++rounds_;
  const std::size_t n = members_.size();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      // A real deployment sends probe packets and timestamps replies;
      // the simulator can read the same quantity directly (current
      // expected transfer time for a probe-sized packet) without
      // perturbing link queues.
      const auto est = net_.estimate_latency(members_[i], members_[j], params_.probe_bytes);
      const double sample = est.is_infinite() ? kUnreachable : est.to_seconds();
      double& slot = metric_[i * n + j];
      if (slot == kUnreachable || sample == kUnreachable) {
        slot = sample;
      } else {
        slot = params_.ewma_alpha * sample + (1.0 - params_.ewma_alpha) * slot;
      }
    }
  }
  if (running_) {
    probe_event_ = net_.simulation().schedule_weak_after(
        params_.probe_interval, [this] { probe_round(); });
  }
}

double OverlayNetwork::metric(NodeId a, NodeId b) const {
  return metric_[member_index(a) * members_.size() + member_index(b)];
}

std::vector<NodeId> OverlayNetwork::current_path(NodeId src, NodeId dst) const {
  const std::size_t n = members_.size();
  const std::size_t s = member_index(src);
  const std::size_t t = member_index(dst);
  std::vector<double> dist(n, kUnreachable);
  std::vector<std::size_t> prev(n, n);
  using QE = std::pair<double, std::size_t>;
  std::priority_queue<QE, std::vector<QE>, std::greater<>> pq;
  dist[s] = 0.0;
  pq.emplace(0.0, s);
  while (!pq.empty()) {
    auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    for (std::size_t v = 0; v < n; ++v) {
      if (v == u) continue;
      const double w = metric_[u * n + v];
      if (w == kUnreachable) continue;
      if (d + w < dist[v]) {
        dist[v] = d + w;
        prev[v] = u;
        pq.emplace(dist[v], v);
      }
    }
  }
  if (dist[t] == kUnreachable) return {};
  std::vector<NodeId> path;
  for (std::size_t cur = t; cur != n; cur = prev[cur]) {
    path.push_back(members_[cur]);
    if (cur == s) break;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

bool OverlayNetwork::is_member(NodeId n) const {
  return std::find(members_.begin(), members_.end(), n) != members_.end();
}

bool OverlayNetwork::has_route(NodeId src, NodeId dst) const {
  if (src == dst || !is_member(src) || !is_member(dst)) return false;
  return current_path(src, dst).size() >= 2;
}

void OverlayNetwork::send(NodeId src, NodeId dst, std::uint64_t bytes,
                          TransferCallback cb) {
  auto path = current_path(src, dst);
  if (path.size() < 2) {
    throw std::logic_error("OverlayNetwork::send: destination unreachable");
  }
  hop(std::move(path), 0, bytes, net_.simulation().now(), std::move(cb));
}

void OverlayNetwork::hop(std::vector<NodeId> path, std::size_t i, std::uint64_t bytes,
                         sim::TimePoint started, TransferCallback cb) {
  // Read the endpoints before the lambda capture moves `path` (argument
  // evaluation order is unspecified).
  const NodeId src = path[i];
  const NodeId dst = path[i + 1];
  net_.send(src, dst, bytes,
            [this, path = std::move(path), i, bytes, started,
             cb = std::move(cb)](const TransferResult&) mutable {
              if (i + 2 == path.size()) {
                cb(TransferResult{net_.simulation().now() - started, bytes});
              } else {
                hop(std::move(path), i + 1, bytes, started, std::move(cb));
              }
            });
}

}  // namespace vmgrid::net
