#pragma once

#include <functional>

#include "net/network.hpp"

namespace vmgrid::net {

/// Parameters of an SSH-style layer-2 tunnel.
struct TunnelParams {
  std::uint64_t mtu_bytes{1500};
  std::uint64_t encap_bytes_per_frame{90};  // Ethernet-in-SSH-in-TCP/IP headers
  double crypto_bandwidth_bps{25e6};        // cipher throughput on 2003-era CPUs
  sim::Duration setup_time{sim::Duration::millis(900)};  // SSH handshake + auth
};

/// Ethernet-over-SSH tunnel (paper §3.3, scenario 2).
///
/// When the hosting site will not give a VM an address, traffic is
/// tunnelled at the Ethernet level between the user's local gateway and
/// the remote VM host so the VM appears on the user's LAN. The model
/// charges per-frame encapsulation overhead and cipher throughput on both
/// ends, on top of the underlying routed path.
class EthernetTunnel {
 public:
  EthernetTunnel(Network& net, NodeId local_gateway, NodeId remote_host,
                 TunnelParams params = {});

  /// Perform the SSH connection handshake; must complete before send().
  void establish(std::function<void()> on_ready);
  [[nodiscard]] bool established() const { return established_; }

  /// Send `bytes` through the tunnel. `to_remote` selects direction.
  void send(bool to_remote, std::uint64_t bytes, TransferCallback cb);

  /// Wire bytes including encapsulation for a payload of `bytes`.
  [[nodiscard]] std::uint64_t wire_bytes(std::uint64_t bytes) const;

  [[nodiscard]] NodeId local_gateway() const { return local_; }
  [[nodiscard]] NodeId remote_host() const { return remote_; }

 private:
  Network& net_;
  NodeId local_;
  NodeId remote_;
  TunnelParams params_;
  bool established_{false};
};

}  // namespace vmgrid::net
