#include "net/rpc.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"

namespace vmgrid::net {

const char* to_string(RpcStatus s) {
  switch (s) {
    case RpcStatus::kOk: return "ok";
    case RpcStatus::kConnectionRefused: return "connection_refused";
    case RpcStatus::kNoSuchMethod: return "no_such_method";
    case RpcStatus::kUnreachable: return "unreachable";
    case RpcStatus::kTimeout: return "timeout";
    case RpcStatus::kServerError: return "server_error";
    case RpcStatus::kOverloaded: return "overloaded";
  }
  return "unknown";
}

RpcServer::RpcServer(RpcFabric& fabric, NodeId self, RpcServerParams params)
    : fabric_{fabric}, self_{self}, params_{params} {
  fabric_.bind(self_, this);
}

RpcServer::~RpcServer() { fabric_.unbind(self_); }

void RpcServer::register_method(std::string name, RpcHandler handler) {
  if (!methods_.emplace(std::move(name), std::move(handler)).second) {
    throw std::logic_error("RpcServer: duplicate method registration");
  }
}

void RpcServer::dispatch(const RpcRequest& req, RpcResponder respond) {
  if (params_.admission.max_concurrent == 0) {
    // Admission control disabled: the historical unbounded fast path.
    serve(req, std::move(respond));
    return;
  }
  if (has_capacity() && queue_.empty()) {
    ++active_;
    serve(req, [this, alive = std::weak_ptr<char>(alive_),
                respond = std::move(respond)](RpcResponse resp) {
      const auto locked = alive.lock();
      if (locked && active_ > 0) --active_;
      respond(std::move(resp));
      if (locked) pump();
    });
    return;
  }
  if (queue_.size() >= params_.admission.queue_depth) {
    // Full queue: a control-plane request may evict the oldest waiting
    // bulk request, but bulk traffic never displaces anything.
    auto victim = queue_.end();
    if (req.priority == RpcPriority::kControl) {
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (it->req.priority < req.priority) {
          victim = it;
          break;
        }
      }
    }
    if (victim == queue_.end()) {
      shed(std::move(respond), "admission queue full");
      return;
    }
    shed(std::move(victim->respond), "evicted by higher-priority request");
    queue_.erase(victim);
  }
  queue_.push_back(Waiting{req, std::move(respond),
                           fabric_.simulation().now()});
  if (queue_gauge_ == nullptr) {
    queue_gauge_ = &fabric_.simulation().metrics().gauge(
        "rpc.server.queue_depth",
        {{"node", fabric_.network().node_name(self_)}});
  }
  queue_gauge_->set(static_cast<double>(queue_.size()));
}

void RpcServer::serve(const RpcRequest& req, RpcResponder respond) {
  ++calls_;
  auto it = methods_.find(req.method);
  if (it == methods_.end()) {
    respond(RpcResponse{.error = "no such method: " + req.method,
                        .response_bytes = 64,
                        .payload = {},
                        .status = RpcStatus::kNoSuchMethod});
    return;
  }
  // Handler runs under the request's causal context, so every span the
  // server opens synchronously parents under the delivering attempt.
  obs::SimProfiler::Scope prof{"rpc.server"};
  obs::ScopedTraceContext scope{fabric_.simulation().trace(), req.trace};
  it->second(req, std::move(respond));
}

Status to_status(const RpcResponse& resp, std::string op) {
  if (resp.ok()) return {};
  return Status{to_code(resp.status),
                resp.error.empty() ? to_string(resp.status) : resp.error}
      .at("rpc", std::move(op));
}

void RpcServer::pump() {
  const auto max_age = params_.admission.max_queue_age;
  while (!queue_.empty() && has_capacity()) {
    Waiting w = std::move(queue_.front());
    queue_.pop_front();
    // Lazy age check at dequeue: a waiter that sat past max_queue_age is
    // almost certainly past its client's deadline — serving it now wastes
    // a concurrency slot on an answer nobody is waiting for.
    if (!max_age.is_infinite() &&
        fabric_.simulation().now() - w.enqueued > max_age) {
      shed(std::move(w.respond), "queued past max age");
      continue;
    }
    ++active_;
    serve(w.req, [this, alive = std::weak_ptr<char>(alive_),
                  respond = std::move(w.respond)](RpcResponse resp) {
      const auto locked = alive.lock();
      if (locked && active_ > 0) --active_;
      respond(std::move(resp));
      if (locked) pump();
    });
  }
  if (queue_gauge_ != nullptr) {
    queue_gauge_->set(static_cast<double>(queue_.size()));
  }
}

void RpcServer::shed(RpcResponder respond, const char* why) {
  ++shed_;
  if (shed_counter_ == nullptr) {
    shed_counter_ = &fabric_.simulation().metrics().counter(
        "rpc.server.shed", {{"node", fabric_.network().node_name(self_)}});
  }
  shed_counter_->inc();
  respond(RpcResponse{.error = std::string{"overloaded: "} + why,
                      .response_bytes = 64,
                      .payload = {},
                      .status = RpcStatus::kOverloaded});
}

void RpcServer::set_synthetic_load(std::size_t slots) {
  const bool shrinking = slots < synthetic_load_;
  synthetic_load_ = slots;
  if (shrinking && params_.admission.max_concurrent != 0) pump();
}

void RpcFabric::bind(NodeId node, RpcServer* server) {
  if (!servers_.emplace(node, server).second) {
    throw std::logic_error("RpcFabric: node already has a bound server");
  }
}

void RpcFabric::unbind(NodeId node) { servers_.erase(node); }

/// One logical call. `epoch` is bumped at every attempt start and every
/// attempt failure, so callbacks belonging to a superseded attempt (late
/// responses racing a timeout, replies arriving after a retry started)
/// compare their captured epoch and become no-ops.
struct RpcFabric::CallState {
  NodeId from, to;
  RpcRequest req;
  RpcCallOptions opts;
  RpcCallback cb;
  int attempts{0};  ///< attempts started
  int epoch{0};
  bool done{false};
  sim::EventId deadline_timer{};
  sim::EventId total_timer{};  ///< caps elapsed time across all attempts
  obs::SpanId call_span{obs::kInvalidSpan};     ///< whole logical call
  obs::SpanId attempt_span{obs::kInvalidSpan};  ///< attempt in flight
};

void RpcFabric::call(NodeId from, NodeId to, RpcRequest req, RpcCallback cb) {
  call(from, to, std::move(req), RpcCallOptions{}, std::move(cb));
}

void RpcFabric::call(NodeId from, NodeId to, RpcRequest req, RpcCallOptions opts,
                     RpcCallback cb) {
  auto st = std::make_shared<CallState>();
  st->from = from;
  st->to = to;
  st->req = std::move(req);
  st->opts = opts;
  st->cb = std::move(cb);
  auto& tracer = simulation().trace();
  if (tracer.enabled()) {
    // Callers that stamped req.trace win; otherwise adopt the ambient
    // scope (or start a fresh trace when there is none).
    if (!st->req.trace.valid()) st->req.trace = tracer.current();
    st->call_span =
        tracer.begin_child(simulation().now(), st->req.trace,
                           "rpc." + st->req.method, net_.node_name(from), "rpc");
  }
  if (!opts.total_deadline.is_infinite()) {
    st->total_timer = simulation().schedule_after(
        opts.total_deadline, [this, st] { total_deadline_exceeded(st); });
  }
  start_attempt(st);
}

void RpcFabric::total_deadline_exceeded(const std::shared_ptr<CallState>& st) {
  if (st->done) return;
  auto& sim = simulation();
  sim.cancel(st->deadline_timer);
  st->deadline_timer = {};
  ++st->epoch;  // orphan the in-flight attempt and any pending backoff
  sim.metrics().counter("rpc.total_deadline_exceeded").inc();
  settle(st, RpcResponse{.error = "total deadline exceeded",
                         .response_bytes = 64,
                         .payload = {},
                         .status = RpcStatus::kTimeout});
}

void RpcFabric::start_attempt(const std::shared_ptr<CallState>& st) {
  ++st->attempts;
  const int epoch = ++st->epoch;
  auto& sim = simulation();
  if (st->call_span != obs::kInvalidSpan) {
    auto& tracer = sim.trace();
    st->attempt_span =
        tracer.begin_child(sim.now(), tracer.context_of(st->call_span),
                           "rpc.attempt", net_.node_name(st->from), "rpc");
    tracer.arg(st->attempt_span, "attempt", std::to_string(st->attempts));
    tracer.arg(st->attempt_span, "method", st->req.method);
    // Downstream (server handlers, sub-RPCs) hangs off this attempt.
    st->req.trace = tracer.context_of(st->attempt_span);
  }
  if (!st->opts.deadline.is_infinite()) {
    st->deadline_timer = sim.schedule_after(st->opts.deadline, [this, st, epoch] {
      attempt_failed(st, epoch, RpcStatus::kTimeout, "deadline exceeded");
    });
  }
  net_.send(st->from, st->to, st->req.request_bytes,
            [this, st, epoch](const TransferResult& tr) {
              if (st->done || epoch != st->epoch) return;
              if (!tr.delivered) {
                attempt_failed(st, epoch, RpcStatus::kUnreachable,
                               "request dropped in transit");
                return;
              }
              auto it = servers_.find(st->to);
              if (it == servers_.end()) {
                // Reply path still costs a wire traversal.
                net_.send(st->to, st->from, 64,
                          [this, st, epoch](const TransferResult& rtr) {
                            if (st->done || epoch != st->epoch) return;
                            if (!rtr.delivered) {
                              attempt_failed(st, epoch, RpcStatus::kUnreachable,
                                             "reply dropped in transit");
                              return;
                            }
                            attempt_failed(st, epoch, RpcStatus::kConnectionRefused,
                                           "connection refused");
                          });
                return;
              }
              // Apply the server's per-call stack overhead here in the
              // fabric, then re-resolve the binding: the server object may
              // be destroyed inside this window, which must fail the call
              // rather than dispatch into freed memory.
              RpcServer* bound = it->second;
              simulation().schedule_after(
                  bound->params_.per_call_overhead, [this, st, epoch, bound] {
                    if (st->done || epoch != st->epoch) return;
                    auto again = servers_.find(st->to);
                    if (again == servers_.end() || again->second != bound) {
                      attempt_failed(st, epoch, RpcStatus::kUnreachable,
                                     "server destroyed mid-call");
                      return;
                    }
                    bound->dispatch(st->req, [this, st, epoch](RpcResponse resp) {
                      if (st->done || epoch != st->epoch) return;
                      const auto bytes = resp.response_bytes;
                      net_.send(st->to, st->from, bytes,
                                [this, st, epoch, resp = std::move(resp)](
                                    const TransferResult& rtr) mutable {
                                  if (st->done || epoch != st->epoch) return;
                                  if (!rtr.delivered) {
                                    attempt_failed(st, epoch, RpcStatus::kUnreachable,
                                                   "reply dropped in transit");
                                    return;
                                  }
                                  // A delivered failure with a retryable
                                  // status (today: kOverloaded fast-reject)
                                  // goes through the retry machinery like a
                                  // transport failure, so backoff + the
                                  // retry budget govern it. Non-retryable
                                  // app failures settle as always.
                                  if (!resp.ok() && rpc_status_retryable(resp.status)) {
                                    attempt_failed(st, epoch, resp.status,
                                                   std::move(resp.error));
                                    return;
                                  }
                                  settle(st, std::move(resp));
                                });
                    });
                  });
            });
}

void RpcFabric::attempt_failed(const std::shared_ptr<CallState>& st, int epoch,
                               RpcStatus status, std::string detail) {
  if (st->done || epoch != st->epoch) return;
  auto& sim = simulation();
  sim.cancel(st->deadline_timer);
  st->deadline_timer = {};
  ++st->epoch;  // orphan any still-in-flight callbacks of this attempt
  if (st->attempt_span != obs::kInvalidSpan) {
    sim.trace().set_status(st->attempt_span,
                           Status{to_code(status), detail}.at("rpc", st->req.method));
    sim.trace().end(st->attempt_span, sim.now());
    st->attempt_span = obs::kInvalidSpan;
  }
  sim.metrics()
      .counter("rpc.attempt_failed", {{"status", to_string(status)}})
      .inc();
  if (rpc_status_retryable(status) && st->attempts < st->opts.max_attempts &&
      (st->opts.retry_budget == nullptr || st->opts.retry_budget->try_spend())) {
    double delay_s = st->opts.backoff_base.to_seconds() *
                     std::pow(st->opts.backoff_multiplier, st->attempts - 1);
    delay_s = std::min(delay_s, st->opts.backoff_cap.to_seconds());
    if (st->opts.backoff_jitter > 0.0) {
      // rng consulted only on this retry path: fault-free runs draw nothing.
      delay_s *= 1.0 + sim.rng().uniform(-st->opts.backoff_jitter,
                                         st->opts.backoff_jitter);
    }
    sim.metrics().counter("rpc.retries").inc();
    sim.schedule_after(sim::Duration::seconds(std::max(0.0, delay_s)),
                       [this, st] {
                         if (!st->done) start_attempt(st);
                       });
    return;
  }
  if (rpc_status_retryable(status) && st->attempts < st->opts.max_attempts) {
    // Retry was wanted but the budget denied it — the storm-prevention
    // path. RetryBudget counted the denial; surface it for dashboards.
    sim.metrics().counter("rpc.retry_budget_denied").inc();
  }
  settle(st, RpcResponse{.error = std::move(detail),
                         .response_bytes = 64,
                         .payload = {},
                         .status = status});
}

void RpcFabric::settle(const std::shared_ptr<CallState>& st, RpcResponse resp) {
  assert(!st->done);
  simulation().cancel(st->deadline_timer);
  st->deadline_timer = {};
  simulation().cancel(st->total_timer);
  st->total_timer = {};
  if (st->call_span != obs::kInvalidSpan) {
    auto& tracer = simulation().trace();
    const Status call_status = to_status(resp, st->req.method);
    if (st->attempt_span != obs::kInvalidSpan) {
      // Open attempt at settle time: the successful (or orphaned-by-
      // total-deadline) one. Failed attempts already closed themselves.
      tracer.set_status(st->attempt_span, call_status);
      tracer.end(st->attempt_span, simulation().now());
      st->attempt_span = obs::kInvalidSpan;
    }
    tracer.set_status(st->call_span, call_status);
    tracer.end(st->call_span, simulation().now());
    st->call_span = obs::kInvalidSpan;
  }
  if (resp.ok() && st->opts.retry_budget != nullptr) {
    st->opts.retry_budget->on_success();
  }
  st->done = true;
  ++st->epoch;
  st->cb(std::move(resp));
}

}  // namespace vmgrid::net
