#include "net/rpc.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"

namespace vmgrid::net {

const char* to_string(RpcStatus s) {
  switch (s) {
    case RpcStatus::kOk: return "ok";
    case RpcStatus::kConnectionRefused: return "connection_refused";
    case RpcStatus::kNoSuchMethod: return "no_such_method";
    case RpcStatus::kUnreachable: return "unreachable";
    case RpcStatus::kTimeout: return "timeout";
    case RpcStatus::kServerError: return "server_error";
  }
  return "unknown";
}

RpcServer::RpcServer(RpcFabric& fabric, NodeId self, RpcServerParams params)
    : fabric_{fabric}, self_{self}, params_{params} {
  fabric_.bind(self_, this);
}

RpcServer::~RpcServer() { fabric_.unbind(self_); }

void RpcServer::register_method(std::string name, RpcHandler handler) {
  if (!methods_.emplace(std::move(name), std::move(handler)).second) {
    throw std::logic_error("RpcServer: duplicate method registration");
  }
}

void RpcServer::dispatch(const RpcRequest& req, RpcResponder respond) {
  ++calls_;
  auto it = methods_.find(req.method);
  if (it == methods_.end()) {
    respond(RpcResponse{.ok = false,
                        .error = "no such method: " + req.method,
                        .response_bytes = 64,
                        .payload = {},
                        .status = RpcStatus::kNoSuchMethod});
    return;
  }
  it->second(req, std::move(respond));
}

void RpcFabric::bind(NodeId node, RpcServer* server) {
  if (!servers_.emplace(node, server).second) {
    throw std::logic_error("RpcFabric: node already has a bound server");
  }
}

void RpcFabric::unbind(NodeId node) { servers_.erase(node); }

/// One logical call. `epoch` is bumped at every attempt start and every
/// attempt failure, so callbacks belonging to a superseded attempt (late
/// responses racing a timeout, replies arriving after a retry started)
/// compare their captured epoch and become no-ops.
struct RpcFabric::CallState {
  NodeId from, to;
  RpcRequest req;
  RpcCallOptions opts;
  RpcCallback cb;
  int attempts{0};  ///< attempts started
  int epoch{0};
  bool done{false};
  sim::EventId deadline_timer{};
};

void RpcFabric::call(NodeId from, NodeId to, RpcRequest req, RpcCallback cb) {
  call(from, to, std::move(req), RpcCallOptions{}, std::move(cb));
}

void RpcFabric::call(NodeId from, NodeId to, RpcRequest req, RpcCallOptions opts,
                     RpcCallback cb) {
  auto st = std::make_shared<CallState>();
  st->from = from;
  st->to = to;
  st->req = std::move(req);
  st->opts = opts;
  st->cb = std::move(cb);
  start_attempt(st);
}

void RpcFabric::start_attempt(const std::shared_ptr<CallState>& st) {
  ++st->attempts;
  const int epoch = ++st->epoch;
  auto& sim = simulation();
  if (!st->opts.deadline.is_infinite()) {
    st->deadline_timer = sim.schedule_after(st->opts.deadline, [this, st, epoch] {
      attempt_failed(st, epoch, RpcStatus::kTimeout, "deadline exceeded");
    });
  }
  net_.send(st->from, st->to, st->req.request_bytes,
            [this, st, epoch](const TransferResult& tr) {
              if (st->done || epoch != st->epoch) return;
              if (!tr.delivered) {
                attempt_failed(st, epoch, RpcStatus::kUnreachable,
                               "request dropped in transit");
                return;
              }
              auto it = servers_.find(st->to);
              if (it == servers_.end()) {
                // Reply path still costs a wire traversal.
                net_.send(st->to, st->from, 64,
                          [this, st, epoch](const TransferResult& rtr) {
                            if (st->done || epoch != st->epoch) return;
                            if (!rtr.delivered) {
                              attempt_failed(st, epoch, RpcStatus::kUnreachable,
                                             "reply dropped in transit");
                              return;
                            }
                            attempt_failed(st, epoch, RpcStatus::kConnectionRefused,
                                           "connection refused");
                          });
                return;
              }
              // Apply the server's per-call stack overhead here in the
              // fabric, then re-resolve the binding: the server object may
              // be destroyed inside this window, which must fail the call
              // rather than dispatch into freed memory.
              RpcServer* bound = it->second;
              simulation().schedule_after(
                  bound->params_.per_call_overhead, [this, st, epoch, bound] {
                    if (st->done || epoch != st->epoch) return;
                    auto again = servers_.find(st->to);
                    if (again == servers_.end() || again->second != bound) {
                      attempt_failed(st, epoch, RpcStatus::kUnreachable,
                                     "server destroyed mid-call");
                      return;
                    }
                    bound->dispatch(st->req, [this, st, epoch](RpcResponse resp) {
                      if (st->done || epoch != st->epoch) return;
                      if (!resp.ok && resp.status == RpcStatus::kOk) {
                        resp.status = RpcStatus::kServerError;
                      }
                      const auto bytes = resp.response_bytes;
                      net_.send(st->to, st->from, bytes,
                                [this, st, epoch, resp = std::move(resp)](
                                    const TransferResult& rtr) mutable {
                                  if (st->done || epoch != st->epoch) return;
                                  if (!rtr.delivered) {
                                    attempt_failed(st, epoch, RpcStatus::kUnreachable,
                                                   "reply dropped in transit");
                                    return;
                                  }
                                  settle(st, std::move(resp));
                                });
                    });
                  });
            });
}

void RpcFabric::attempt_failed(const std::shared_ptr<CallState>& st, int epoch,
                               RpcStatus status, std::string detail) {
  if (st->done || epoch != st->epoch) return;
  auto& sim = simulation();
  sim.cancel(st->deadline_timer);
  st->deadline_timer = {};
  ++st->epoch;  // orphan any still-in-flight callbacks of this attempt
  sim.metrics()
      .counter("rpc.attempt_failed", {{"status", to_string(status)}})
      .inc();
  if (rpc_status_retryable(status) && st->attempts < st->opts.max_attempts) {
    double delay_s = st->opts.backoff_base.to_seconds() *
                     std::pow(st->opts.backoff_multiplier, st->attempts - 1);
    delay_s = std::min(delay_s, st->opts.backoff_cap.to_seconds());
    if (st->opts.backoff_jitter > 0.0) {
      // rng consulted only on this retry path: fault-free runs draw nothing.
      delay_s *= 1.0 + sim.rng().uniform(-st->opts.backoff_jitter,
                                         st->opts.backoff_jitter);
    }
    sim.metrics().counter("rpc.retries").inc();
    sim.schedule_after(sim::Duration::seconds(std::max(0.0, delay_s)),
                       [this, st] {
                         if (!st->done) start_attempt(st);
                       });
    return;
  }
  settle(st, RpcResponse{.ok = false,
                         .error = std::move(detail),
                         .response_bytes = 64,
                         .payload = {},
                         .status = status});
}

void RpcFabric::settle(const std::shared_ptr<CallState>& st, RpcResponse resp) {
  assert(!st->done);
  simulation().cancel(st->deadline_timer);
  st->deadline_timer = {};
  st->done = true;
  ++st->epoch;
  st->cb(std::move(resp));
}

}  // namespace vmgrid::net
