#include "net/rpc.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace vmgrid::net {

RpcServer::RpcServer(RpcFabric& fabric, NodeId self, RpcServerParams params)
    : fabric_{fabric}, self_{self}, params_{params} {
  fabric_.bind(self_, this);
}

RpcServer::~RpcServer() { fabric_.unbind(self_); }

void RpcServer::register_method(std::string name, RpcHandler handler) {
  if (!methods_.emplace(std::move(name), std::move(handler)).second) {
    throw std::logic_error("RpcServer: duplicate method registration");
  }
}

void RpcServer::dispatch(const RpcRequest& req, RpcResponder respond) {
  ++calls_;
  auto it = methods_.find(req.method);
  if (it == methods_.end()) {
    respond(RpcResponse{.ok = false,
                        .error = "no such method: " + req.method,
                        .response_bytes = 64,
                        .payload = {}});
    return;
  }
  // Apply the per-call RPC stack overhead before running the handler.
  auto& sim = fabric_.simulation();
  sim.schedule_after(params_.per_call_overhead,
                     [this, req, respond = std::move(respond)]() mutable {
                       methods_.at(req.method)(req, std::move(respond));
                     });
}

void RpcFabric::bind(NodeId node, RpcServer* server) {
  if (!servers_.emplace(node, server).second) {
    throw std::logic_error("RpcFabric: node already has a bound server");
  }
}

void RpcFabric::unbind(NodeId node) { servers_.erase(node); }

void RpcFabric::call(NodeId from, NodeId to, RpcRequest req, RpcCallback cb) {
  net_.send(from, to, req.request_bytes,
            [this, from, to, req = std::move(req),
             cb = std::move(cb)](const TransferResult&) mutable {
              auto it = servers_.find(to);
              if (it == servers_.end()) {
                // Reply path still costs a wire traversal.
                net_.send(to, from, 64, [cb = std::move(cb)](const TransferResult&) {
                  cb(RpcResponse{.ok = false,
                                 .error = "connection refused",
                                 .response_bytes = 64,
                                 .payload = {}});
                });
                return;
              }
              it->second->dispatch(
                  req, [this, from, to, cb = std::move(cb)](RpcResponse resp) mutable {
                    const auto bytes = resp.response_bytes;
                    net_.send(to, from, bytes,
                              [cb = std::move(cb), resp = std::move(resp)](
                                  const TransferResult&) mutable { cb(std::move(resp)); });
                  });
            });
}

}  // namespace vmgrid::net
