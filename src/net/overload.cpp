#include "net/overload.hpp"

namespace vmgrid::net {

const char* to_string(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half_open";
  }
  return "unknown";
}

}  // namespace vmgrid::net
