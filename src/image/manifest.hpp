#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace vmgrid::image {

/// Content address of one image chunk. In a real deployment this would be
/// a cryptographic digest of the chunk bytes; the simulator derives it as
/// a seeded hash of the image *lineage* (family name + version) and the
/// chunk index — a pure function of the image's identity, never of wall
/// clock or run order — so two runs (and two replicas of one run) agree
/// on every address, and a derived version that keeps a chunk untouched
/// keeps its parent's address for it (which is what makes dedup work).
using ChunkId = std::uint64_t;

/// Stable 64-bit hash of an image lineage ("rh7.2" version 3). FNV-1a
/// over the name folded with the version.
[[nodiscard]] std::uint64_t lineage_hash(const std::string& image,
                                         std::uint32_t version);

/// Chunk address: splitmix64 finalizer over (lineage, index).
[[nodiscard]] ChunkId chunk_id(std::uint64_t lineage, std::uint64_t index);

/// Canonical path of a chunk's backing file within a chunk store's file
/// system: "chunk/" + 16 hex digits.
[[nodiscard]] std::string chunk_path(ChunkId id);

/// Recipe for one version of a virtual-disk image: an ordered list of
/// chunk addresses. A root manifest names fresh chunks for the whole
/// image; a derived manifest copies its parent's list and overrides only
/// the chunks its version changed (`delta`), so shared content keeps
/// shared addresses across versions.
struct ImageManifest {
  std::string image;               ///< image family name, e.g. "rh7.2"
  std::uint32_t version{1};        ///< 1 = root of the lineage
  std::uint32_t parent_version{0}; ///< 0 = no parent (root)
  std::uint64_t image_bytes{0};
  std::uint64_t chunk_bytes{4ull << 20};
  std::vector<ChunkId> chunks;        ///< fully resolved, index = offset / chunk_bytes
  std::vector<std::uint32_t> delta;   ///< indices overridden vs parent (root: empty)

  [[nodiscard]] std::string id() const {
    return image + "@v" + std::to_string(version);
  }
  [[nodiscard]] std::size_t chunk_count() const { return chunks.size(); }

  /// Byte length of chunk `i` (the tail chunk may be short).
  [[nodiscard]] std::uint64_t chunk_len(std::size_t i) const;

  /// Bytes introduced by this version: the whole image for a root, the
  /// delta chunks for a derived version.
  [[nodiscard]] std::uint64_t unique_bytes() const;
};

/// Root manifest: every chunk addressed under this image's own lineage.
[[nodiscard]] ImageManifest build_manifest(std::string image,
                                           std::uint64_t image_bytes,
                                           std::uint64_t chunk_bytes = 4ull << 20,
                                           std::uint32_t version = 1);

/// Derived manifest: parent's chunk list with `changed` indices re-addressed
/// under the child lineage (parent.version + 1). Out-of-range indices are
/// ignored; duplicates collapse.
[[nodiscard]] ImageManifest derive_manifest(const ImageManifest& parent,
                                            std::vector<std::uint32_t> changed);

}  // namespace vmgrid::image
