#include "image/swarm.hpp"

#include <algorithm>
#include <limits>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/simulation.hpp"

namespace vmgrid::image {

namespace {

/// Deterministic per-(node, chunk-index) tie-break key. Reuses the chunk
/// address mixer with a distinct lineage-like seed, so the key stream is
/// independent of the actual chunk ids.
std::uint64_t order_key(net::NodeId node, std::uint64_t index) {
  return chunk_id(0x9e3779b97f4a7c15ull ^ node.value(), index);
}

}  // namespace

/// One in-progress manifest fetch. Streams share this state: `remaining`
/// holds unclaimed chunk indices, `inflight` counts claimed-but-unlanded
/// transfers, and the first failure parks in `result.status` while the
/// rest of the in-flight set drains.
struct SwarmDistributor::FetchState {
  ImageManifest manifest;
  net::NodeId dst;
  ChunkStore* dst_store{nullptr};
  FetchCallback cb;
  sim::TimePoint started{};
  std::vector<std::uint32_t> remaining;
  std::uint32_t inflight{0};
  std::uint32_t idle_scans{0};
  bool finished{false};
  SwarmFetchResult result;
  obs::Span span;
};

SwarmDistributor::SwarmDistributor(sim::Simulation& s, net::Network& net,
                                   ChunkDirectory& dir, SwarmParams params)
    : sim_{s}, net_{net}, dir_{dir}, params_{params} {
  if (params_.streams == 0) params_.streams = 1;
}

void SwarmDistributor::register_store(net::NodeId node, ChunkStore& store) {
  stores_[node] = &store;
}

void SwarmDistributor::drop_node(net::NodeId node) {
  stores_.erase(node);
  active_uploads_.erase(node);
  dir_.unregister_node(node);
}

ChunkStore* SwarmDistributor::store_of(net::NodeId node) const {
  auto it = stores_.find(node);
  return it == stores_.end() ? nullptr : it->second;
}

std::uint32_t SwarmDistributor::uploads_of(net::NodeId node) const {
  auto it = active_uploads_.find(node);
  return it == active_uploads_.end() ? 0 : it->second;
}

void SwarmDistributor::fetch(const ImageManifest& manifest, net::NodeId dst,
                             FetchCallback cb) {
  auto st = std::make_shared<FetchState>();
  st->manifest = manifest;
  st->dst = dst;
  st->dst_store = store_of(dst);
  st->cb = std::move(cb);
  st->started = sim_.now();
  if (st->dst_store == nullptr) {
    st->result.status =
        FailedPreconditionError("node not registered in swarm").at("image", "fetch");
    sim_.schedule_after(sim::Duration{}, [st] { st->cb(st->result); });
    return;
  }
  // Parents under the ambient context (ScopedTraceContext), so a fetch
  // issued inside session creation joins the session.create trace.
  st->span = obs::Span{sim_, "image.fetch", net_.node_name(dst), "image"};
  if (st->span.active()) {
    st->span.arg("image", manifest.id());
    st->span.arg("chunks", std::to_string(manifest.chunk_count()));
  }
  auto& deduped = sim_.metrics().counter("image.chunks_deduped");
  for (std::uint32_t i = 0; i < manifest.chunk_count(); ++i) {
    if (st->dst_store->has(manifest.chunks[i])) {
      ++st->result.chunks_local;
      deduped.inc();
    } else {
      st->remaining.push_back(i);
    }
  }
  sim_.schedule_after(params_.control_setup, [this, st] {
    const std::size_t streams = std::max<std::size_t>(
        1, std::min<std::size_t>(params_.streams, st->remaining.size()));
    for (std::size_t i = 0; i < streams; ++i) pump(st);
  });
}

void SwarmDistributor::pump(const std::shared_ptr<FetchState>& st) {
  if (st->finished) return;
  if (!st->result.status.ok() || st->remaining.empty()) {
    if (st->inflight == 0) finish(st);
    return;
  }
  // Deterministic rarest-first claim: among chunks fetchable *right now*,
  // take the one with the fewest holders; break ties with the per-(node,
  // index) hash so concurrent fetchers spread over the chunk space.
  constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
  std::size_t best_pos = kNone;
  std::size_t best_holders = std::numeric_limits<std::size_t>::max();
  std::uint64_t best_key = std::numeric_limits<std::uint64_t>::max();
  net::NodeId best_src{};
  bool best_from_origin = false;
  bool any_source_exists = false;  // some holder is registered, even if busy
  for (std::size_t pos = 0; pos < st->remaining.size(); ++pos) {
    const std::uint32_t index = st->remaining[pos];
    const auto& holders = dir_.holders(st->manifest.chunks[index]);
    for (const net::NodeId h : holders) {
      if (h != st->dst && stores_.find(h) != stores_.end()) {
        any_source_exists = true;
        break;
      }
    }
    const std::uint64_t key = order_key(st->dst, index);
    net::NodeId src{};
    bool from_origin = false;
    if (params_.prefer_peers && !holders.empty()) {
      // Least-loaded peer holder with a free upload slot; ties go to the
      // lowest node id (holder order is deterministic, so this is too).
      // Only a peer_view-sized window of the holder list is examined,
      // starting at a per-(node, chunk) offset: claim cost stays bounded
      // in a 1000-node swarm and the load spreads across all holders.
      std::uint32_t src_load = 0;
      const std::size_t window =
          std::min<std::size_t>(holders.size(), params_.peer_view);
      const std::size_t start = static_cast<std::size_t>(key % holders.size());
      for (std::size_t k = 0; k < window; ++k) {
        const net::NodeId h = holders[(start + k) % holders.size()];
        if (h == st->dst || h == origin_ || stores_.find(h) == stores_.end()) continue;
        const std::uint32_t load = uploads_of(h);
        if (load >= params_.max_peer_uploads) continue;
        if (!src.valid() || load < src_load || (load == src_load && h < src)) {
          src = h;
          src_load = load;
        }
      }
    }
    if (!src.valid() && origin_.valid() && stores_.find(origin_) != stores_.end() &&
        uploads_of(origin_) < params_.origin_upload_slots &&
        std::find(holders.begin(), holders.end(), origin_) != holders.end()) {
      src = origin_;
      from_origin = true;
    }
    if (!src.valid()) continue;  // every source saturated; retry later
    if (holders.size() < best_holders ||
        (holders.size() == best_holders && key < best_key)) {
      best_pos = pos;
      best_holders = holders.size();
      best_key = key;
      best_src = src;
      best_from_origin = from_origin;
    }
  }
  if (best_pos == kNone) {
    if (!any_source_exists && st->inflight == 0) {
      // No registered node holds any remaining chunk and nothing is in
      // flight that could change that: retrying would spin forever.
      st->result.status = NotFoundError("no swarm member holds chunks of " +
                                        st->manifest.id())
                              .at("image", "fetch");
      finish(st);
      return;
    }
    // Nothing fetchable: linear backoff plus deterministic per-node jitter
    // so the waiting crowd re-scans staggered instead of in lock step.
    ++st->idle_scans;
    const double scale = std::min<std::uint32_t>(st->idle_scans, 8);
    const sim::Duration jitter = sim::Duration::millis(
        static_cast<std::int64_t>(order_key(st->dst, st->idle_scans) % 32));
    sim_.schedule_after(params_.retry_delay * scale + jitter,
                        [this, st] { pump(st); });
    return;
  }
  st->idle_scans = 0;
  const std::uint32_t index = st->remaining[best_pos];
  st->remaining[best_pos] = st->remaining.back();
  st->remaining.pop_back();
  start_transfer(st, index, best_src, best_from_origin);
}

void SwarmDistributor::start_transfer(const std::shared_ptr<FetchState>& st,
                                      std::uint32_t index, net::NodeId src,
                                      bool from_origin) {
  const ChunkId id = st->manifest.chunks[index];
  const std::uint64_t bytes = st->manifest.chunk_len(index);
  const std::string path = chunk_path(id);
  ++st->inflight;
  ++active_uploads_[src];
  auto span = std::make_shared<obs::Span>(sim_, "image.chunk",
                                          net_.node_name(st->dst),
                                          st->span.context(), "image");
  if (span->active()) {
    span->arg("chunk", std::to_string(index));
    span->arg("src", net_.node_name(src));
    span->arg("source", from_origin ? "origin" : "peer");
  }
  auto done = [this, st, index, id, bytes, src, from_origin, span](
                  Status status, std::uint64_t landed) {
    auto up = active_uploads_.find(src);
    if (up != active_uploads_.end() && up->second > 0) --up->second;
    --st->inflight;
    span->set_status(status);
    span->end();
    if (!status.ok()) {
      if (!from_origin && origin_.valid() && store_of(origin_) != nullptr) {
        // A peer path failed (drop, dead holder): retry this one chunk
        // straight from the origin, bypassing the slot ration so a lossy
        // swarm degrades to origin serving instead of deadlocking.
        sim_.metrics().counter("image.chunk_retries").inc();
        start_transfer(st, index, origin_, true);
        pump(st);
        return;
      }
      if (st->result.status.ok()) {
        st->result.status = Status{status.code(),
                                   "chunk " + std::to_string(index) + " of " +
                                       st->manifest.id() + " unfetchable"}
                                .at("image", "fetch")
                                .caused_by(status);
      }
      pump(st);
      return;
    }
    st->dst_store->add_chunk(id, bytes);
    dir_.register_holder(id, st->dst);
    if (from_origin) {
      origin_bytes_ += landed;
      ++origin_chunks_;
      ++st->result.chunks_from_origin;
      st->result.bytes_from_origin += landed;
      sim_.metrics().counter("image.origin_bytes_served").inc(double(landed));
      sim_.metrics().counter("image.chunk_fetches", {{"source", "origin"}}).inc();
    } else {
      peer_bytes_ += landed;
      ++peer_chunks_;
      ++st->result.chunks_from_peers;
      st->result.bytes_from_peers += landed;
      sim_.metrics().counter("image.peer_bytes_served").inc(double(landed));
      sim_.metrics().counter("image.chunk_fetches", {{"source", "peer"}}).inc();
    }
    pump(st);
  };
  ChunkStore* src_store = store_of(src);
  if (src_store == nullptr) {
    sim_.schedule_after(sim::Duration{}, [done] {
      done(UnavailableError("chunk source left the swarm").at("image", "fetch"), 0);
    });
    return;
  }
  if (from_origin && origin_transport_) {
    origin_transport_(src_store->fs(), src, path, st->dst_store->fs(), st->dst,
                      bytes, done);
    return;
  }
  // Built-in path: local read at the source, one network transfer (over
  // the overlay when it knows a route), then a local write at dst.
  const net::NodeId dst = st->dst;
  auto* dst_fs = &st->dst_store->fs();
  src_store->fs().read(
      path, 0, bytes, [this, src, dst, dst_fs, path, bytes, done](storage::ReadResult) {
        auto delivered = [dst_fs, path, bytes, done](const net::TransferResult& r) {
          if (!r.delivered) {
            done(UnavailableError("chunk transfer dropped").at("image", "fetch"), 0);
            return;
          }
          if (!dst_fs->exists(path)) dst_fs->create(path, bytes);
          dst_fs->write(path, 0, bytes, [done, bytes] { done(Status{}, bytes); });
        };
        if (overlay_ != nullptr && overlay_->has_route(src, dst)) {
          overlay_->send(src, dst, bytes, delivered);
        } else {
          net_.send(src, dst, bytes, delivered);
        }
      });
}

void SwarmDistributor::finish(const std::shared_ptr<FetchState>& st) {
  if (st->finished) return;
  st->finished = true;
  st->result.elapsed = sim_.now() - st->started;
  if (st->span.active()) {
    st->span.arg("from_origin", std::to_string(st->result.chunks_from_origin));
    st->span.arg("from_peers", std::to_string(st->result.chunks_from_peers));
    st->span.arg("local", std::to_string(st->result.chunks_local));
  }
  st->span.set_status(st->result.status);
  st->span.end();
  if (!st->result.status.ok()) {
    record_error(sim_.metrics(), st->result.status);
  }
  sim_.metrics()
      .histogram("image.fetch_seconds", {0.0, 600.0, 64})
      .observe(st->result.elapsed.to_seconds());
  st->cb(st->result);
}

}  // namespace vmgrid::image
