#include "image/chunk_directory.hpp"

#include <algorithm>

namespace vmgrid::image {

namespace {
const std::vector<net::NodeId> kNoHolders;
}  // namespace

void ChunkDirectory::register_holder(ChunkId id, net::NodeId node) {
  auto& list = holders_[id];
  if (std::find(list.begin(), list.end(), node) == list.end()) {
    list.push_back(node);
  }
}

void ChunkDirectory::unregister_node(net::NodeId node) {
  for (auto it = holders_.begin(); it != holders_.end();) {
    auto& list = it->second;
    list.erase(std::remove(list.begin(), list.end(), node), list.end());
    if (list.empty()) {
      it = holders_.erase(it);
    } else {
      ++it;
    }
  }
}

const std::vector<net::NodeId>& ChunkDirectory::holders(ChunkId id) const {
  auto it = holders_.find(id);
  return it == holders_.end() ? kNoHolders : it->second;
}

std::size_t ChunkDirectory::holder_count(ChunkId id) const {
  auto it = holders_.find(id);
  return it == holders_.end() ? 0 : it->second.size();
}

}  // namespace vmgrid::image
