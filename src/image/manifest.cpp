#include "image/manifest.hpp"

#include <algorithm>

namespace vmgrid::image {

namespace {

/// splitmix64 finalizer — the same mixing function the trace-id derivation
/// uses (DESIGN.md §13); good avalanche, no state.
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t lineage_hash(const std::string& image, std::uint32_t version) {
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  for (const char c : image) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return mix64(h ^ (static_cast<std::uint64_t>(version) << 32));
}

ChunkId chunk_id(std::uint64_t lineage, std::uint64_t index) {
  return mix64(lineage ^ mix64(index));
}

std::string chunk_path(ChunkId id) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string path = "chunk/0000000000000000";
  for (int i = 15; i >= 0; --i) {
    path[6 + i] = kHex[id & 0xf];
    id >>= 4;
  }
  return path;
}

std::uint64_t ImageManifest::chunk_len(std::size_t i) const {
  if (i + 1 < chunks.size() || chunks.empty()) return chunk_bytes;
  const std::uint64_t tail = image_bytes - chunk_bytes * (chunks.size() - 1);
  return tail == 0 ? chunk_bytes : tail;
}

std::uint64_t ImageManifest::unique_bytes() const {
  if (parent_version == 0) return image_bytes;
  std::uint64_t total = 0;
  for (const std::uint32_t i : delta) total += chunk_len(i);
  return total;
}

ImageManifest build_manifest(std::string image, std::uint64_t image_bytes,
                             std::uint64_t chunk_bytes, std::uint32_t version) {
  ImageManifest m;
  m.image = std::move(image);
  m.version = version;
  m.image_bytes = image_bytes;
  m.chunk_bytes = chunk_bytes;
  const std::uint64_t n = (image_bytes + chunk_bytes - 1) / chunk_bytes;
  const std::uint64_t lineage = lineage_hash(m.image, m.version);
  m.chunks.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) m.chunks.push_back(chunk_id(lineage, i));
  return m;
}

ImageManifest derive_manifest(const ImageManifest& parent,
                              std::vector<std::uint32_t> changed) {
  ImageManifest m = parent;
  m.version = parent.version + 1;
  m.parent_version = parent.version;
  std::sort(changed.begin(), changed.end());
  changed.erase(std::unique(changed.begin(), changed.end()), changed.end());
  const std::uint64_t lineage = lineage_hash(m.image, m.version);
  m.delta.clear();
  for (const std::uint32_t i : changed) {
    if (i >= m.chunks.size()) continue;
    m.chunks[i] = chunk_id(lineage, i);
    m.delta.push_back(i);
  }
  return m;
}

}  // namespace vmgrid::image
