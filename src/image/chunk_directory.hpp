#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "image/manifest.hpp"
#include "net/address.hpp"

namespace vmgrid::image {

/// Chunk availability table: which nodes currently hold which chunk.
///
/// This is the information-service side of swarm distribution (the
/// middleware `InformationService` owns one and exposes it next to its
/// host/image/future tables): image servers seed it when they ingest a
/// manifest, swarm fetchers append themselves as chunks land, and the
/// distributor's source selection and rarest-first ordering read it.
/// Holder lists keep registration order, so "first holder" is always the
/// seeding origin and every read of the table is deterministic.
class ChunkDirectory {
 public:
  /// Record `node` as holding `id`. Idempotent per (chunk, node).
  void register_holder(ChunkId id, net::NodeId node);

  /// Drop every holding of `node` (host crash / deregistration).
  void unregister_node(net::NodeId node);

  /// Nodes holding `id`, in registration order; empty when untracked.
  [[nodiscard]] const std::vector<net::NodeId>& holders(ChunkId id) const;
  [[nodiscard]] std::size_t holder_count(ChunkId id) const;
  [[nodiscard]] std::size_t tracked_chunks() const { return holders_.size(); }

 private:
  std::unordered_map<ChunkId, std::vector<net::NodeId>> holders_;
};

}  // namespace vmgrid::image
