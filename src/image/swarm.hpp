#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "core/status.hpp"
#include "image/chunk_directory.hpp"
#include "image/chunk_store.hpp"
#include "net/network.hpp"
#include "net/overlay.hpp"

namespace vmgrid::image {

struct SwarmParams {
  /// Striped parallel chunk transfers per fetching node (the GridFTP
  /// parallel-streams idea applied at chunk granularity).
  std::uint32_t streams{4};
  /// Concurrent chunk uploads the origin will serve; past this, fetchers
  /// wait for a peer copy instead of piling onto the origin. This is the
  /// knob that makes origin load O(unique chunks) instead of O(N · image).
  std::uint32_t origin_upload_slots{8};
  /// Concurrent uploads accepted per peer holder; a chunk whose holders
  /// are all saturated is deferred (rarest-first retries it once the
  /// swarm has spread more copies).
  std::uint32_t max_peer_uploads{4};
  /// Holders examined per source-selection, windowed at a deterministic
  /// per-(node, chunk) offset into the holder list. Keeps claim cost O(1)
  /// in swarm size while still spreading load over every holder.
  std::uint32_t peer_view{16};
  /// Peer copies are preferred over the origin whenever one exists.
  /// false = every chunk from the origin (naive-chunked ablation).
  bool prefer_peers{true};
  /// One-time per-fetch control cost: manifest retrieval, tracker
  /// handshake, transfer-channel setup (GridFTP control channel).
  sim::Duration control_setup{sim::Duration::millis(400)};
  /// Base delay before re-scanning when no chunk is currently fetchable
  /// (all sources saturated); grows linearly per consecutive idle scan
  /// plus a deterministic per-node jitter so waiters desynchronize.
  sim::Duration retry_delay{sim::Duration::millis(50)};
};

/// Outcome of one node's manifest fetch.
struct SwarmFetchResult {
  Status status;
  sim::Duration elapsed{};
  std::uint64_t chunks_from_origin{0};
  std::uint64_t chunks_from_peers{0};
  std::uint64_t chunks_local{0};  ///< already in the local store (dedup hits)
  std::uint64_t bytes_from_origin{0};
  std::uint64_t bytes_from_peers{0};

  [[nodiscard]] bool ok() const { return status.ok(); }
  [[nodiscard]] std::uint64_t bytes_fetched() const {
    return bytes_from_origin + bytes_from_peers;
  }
};

/// Peer-to-peer distributor of content-addressed image chunks.
///
/// Every participating node registers its local ChunkStore; the origin
/// (image-server archive) is one of them. A fetch pulls every chunk of a
/// manifest the destination does not already hold, with chunk selection
/// governed by a *deterministic rarest-first* policy (DESIGN.md §14):
/// each stream claims the remaining chunk with the fewest registered
/// holders, tie-broken by a per-(node, chunk) hash, so concurrent
/// fetchers spread across the chunk space instead of marching in lock
/// step. Sources: any peer already holding the chunk (least-loaded
/// first, then lowest node id), falling back to the origin while it has
/// free upload slots; when every source is saturated the stream backs
/// off deterministically and retries — by which time the swarm usually
/// has more copies. Peer transfers are routed over the attached
/// net::OverlayNetwork when it knows a path (so chunk traffic rides out
/// degraded underlay links); origin transfers go through the pluggable
/// origin transport (middleware wires striped GridFTP here).
///
/// Determinism: selection reads only sim-deterministic state (directory
/// holder lists, upload counters, hashes of stable ids) — no wall clock,
/// no unordered-container iteration — so a seeded run is bit-reproducible
/// and replicated benches stay byte-identical across VMGRID_JOBS.
class SwarmDistributor {
 public:
  SwarmDistributor(sim::Simulation& s, net::Network& net, ChunkDirectory& dir,
                   SwarmParams params = {});

  /// Join `node` (with its local store) to the swarm. The store must
  /// outlive the distributor's use of it.
  void register_store(net::NodeId node, ChunkStore& store);

  /// Leave the swarm (host crash/retirement): drops the store binding,
  /// the node's directory records, and its upload accounting.
  void drop_node(net::NodeId node);

  /// The archive node whose uploads are rationed by origin_upload_slots
  /// and carried by the origin transport.
  void set_origin(net::NodeId node) { origin_ = node; }

  /// Optional resilient routing for peer transfers.
  void set_overlay(net::OverlayNetwork* overlay) { overlay_ = overlay; }

  /// Pluggable origin-side chunk transport (src store file → dst store
  /// file); middleware/bench wire striped GridFTP transfers here. The
  /// built-in direct path (read → send → write) is used when unset.
  using TransportCallback = std::function<void(Status, std::uint64_t bytes)>;
  using ChunkTransport = std::function<void(
      storage::LocalFileSystem& src_fs, net::NodeId src, const std::string& path,
      storage::LocalFileSystem& dst_fs, net::NodeId dst, std::uint64_t bytes,
      TransportCallback done)>;
  void set_origin_transport(ChunkTransport transport) {
    origin_transport_ = std::move(transport);
  }

  using FetchCallback = std::function<void(SwarmFetchResult)>;

  /// Pull every chunk of `manifest` missing from `dst`'s store. The
  /// callback fires when all chunks are resident (or on the first
  /// failure, after in-flight transfers drain). Chunk-fetch spans parent
  /// under the caller's ambient trace context, so a fetch issued during
  /// session creation joins the session.create trace.
  void fetch(const ImageManifest& manifest, net::NodeId dst, FetchCallback cb);

  // --- cumulative accounting (all fetches through this distributor) ---
  [[nodiscard]] std::uint64_t origin_bytes_served() const { return origin_bytes_; }
  [[nodiscard]] std::uint64_t peer_bytes_served() const { return peer_bytes_; }
  [[nodiscard]] std::uint64_t origin_chunks_served() const { return origin_chunks_; }
  [[nodiscard]] std::uint64_t peer_chunks_served() const { return peer_chunks_; }
  [[nodiscard]] const SwarmParams& params() const { return params_; }

 private:
  struct FetchState;

  [[nodiscard]] ChunkStore* store_of(net::NodeId node) const;
  [[nodiscard]] std::uint32_t uploads_of(net::NodeId node) const;
  void pump(const std::shared_ptr<FetchState>& st);
  void start_transfer(const std::shared_ptr<FetchState>& st, std::uint32_t index,
                      net::NodeId src, bool from_origin);
  void finish(const std::shared_ptr<FetchState>& st);

  sim::Simulation& sim_;
  net::Network& net_;
  ChunkDirectory& dir_;
  SwarmParams params_;
  net::NodeId origin_{};
  net::OverlayNetwork* overlay_{nullptr};
  ChunkTransport origin_transport_;
  std::unordered_map<net::NodeId, ChunkStore*> stores_;
  std::unordered_map<net::NodeId, std::uint32_t> active_uploads_;
  std::uint64_t origin_bytes_{0};
  std::uint64_t peer_bytes_{0};
  std::uint64_t origin_chunks_{0};
  std::uint64_t peer_chunks_{0};
};

}  // namespace vmgrid::image
