#include "image/chunk_store.hpp"

#include "obs/metrics.hpp"
#include "sim/simulation.hpp"

namespace vmgrid::image {

void ChunkStore::count_dedup(std::uint64_t bytes) {
  dedup_bytes_ += bytes;
  sim_.metrics().counter("image.dedup_bytes").inc(static_cast<double>(bytes));
}

void ChunkStore::publish() {
  if (!publish_gauges_) return;
  sim_.metrics().gauge("image.unique_chunks").set(static_cast<double>(entries_.size()));
}

void ChunkStore::add_manifest(const ImageManifest& m) {
  for (std::size_t i = 0; i < m.chunks.size(); ++i) {
    const ChunkId id = m.chunks[i];
    const std::uint64_t len = m.chunk_len(i);
    auto [it, inserted] = entries_.try_emplace(id, Entry{len, 0});
    ++it->second.refs;
    if (inserted) {
      fs_.create(chunk_path(id), len);
      stored_bytes_ += len;
    } else {
      count_dedup(len);
    }
  }
  publish();
}

void ChunkStore::release_manifest(const ImageManifest& m) {
  for (const ChunkId id : m.chunks) {
    auto it = entries_.find(id);
    if (it == entries_.end()) continue;
    if (--it->second.refs == 0) {
      stored_bytes_ -= it->second.bytes;
      fs_.remove(chunk_path(id));
      entries_.erase(it);
    }
  }
  publish();
}

bool ChunkStore::add_chunk(ChunkId id, std::uint64_t bytes) {
  auto [it, inserted] = entries_.try_emplace(id, Entry{bytes, 1});
  if (!inserted) {
    count_dedup(bytes);
    return false;
  }
  stored_bytes_ += bytes;
  publish();
  return true;
}

}  // namespace vmgrid::image
