#pragma once

#include <memory>
#include <vector>

#include "image/chunk_store.hpp"
#include "image/manifest.hpp"
#include "vm/vm_disk.hpp"

namespace vmgrid::image {

/// Read-only view of a manifest's chunks in a local chunk store: byte
/// offsets map to `chunk/<hex>` files through the manifest's chunk list.
/// Reads of absent chunks fail with kNotFound (the fetch that should have
/// landed them is the root cause); writes are rejected — mutation belongs
/// to the CowDisk diff layer stacked on top.
[[nodiscard]] std::unique_ptr<vm::FileAccessor> make_chunk_accessor(
    const ImageManifest& manifest, ChunkStore& store);

/// Instantiate an image lineage as a base→diff CowDisk chain:
///
///   chunked(root) ← cow(delta v2) ← cow(delta v3) ← ... ← cow(writable)
///
/// `lineage` is ordered root first, leaf last; every non-root layer must
/// be a derived manifest (its `delta` says which blocks it overrides, and
/// the chain seeds those into the CowDisk written-set so reads route to
/// the youngest layer that defines each block). `writable_diff`, when
/// given, becomes the top copy-on-write layer for guest writes; without
/// it the chain is a read-only base (shareable across VMs).
///
/// Throws std::invalid_argument on an empty or mis-ordered lineage.
[[nodiscard]] std::unique_ptr<vm::FileAccessor> make_chain_accessor(
    const std::vector<const ImageManifest*>& lineage, ChunkStore& store,
    std::unique_ptr<vm::FileAccessor> writable_diff = nullptr);

}  // namespace vmgrid::image
