#pragma once

#include <cstdint>
#include <unordered_map>

#include "image/manifest.hpp"
#include "storage/local_fs.hpp"

namespace vmgrid::image {

/// Content-addressed chunk archive on one node's local file system.
///
/// Each distinct ChunkId is backed by exactly one file (`chunk/<hex>`),
/// whatever number of image versions reference it — that sharing is the
/// dedup the manifests exist to enable. Entries are refcounted per
/// manifest ingest so retiring an image version reclaims only the chunks
/// nothing else references.
///
/// Metrics (on the owning Simulation's registry):
///  - `image.dedup_bytes`   bytes a manifest ingest or chunk arrival did
///                          NOT have to store/transfer because the chunk
///                          was already present;
///  - `image.unique_chunks` distinct chunks resident in this store
///                          (published only by stores constructed with
///                          `publish_gauges` — the origin archive — so
///                          per-host caches don't fight over the gauge).
class ChunkStore {
 public:
  ChunkStore(sim::Simulation& s, storage::LocalFileSystem& fs,
             bool publish_gauges = false)
      : sim_{s}, fs_{fs}, publish_gauges_{publish_gauges} {}

  /// Origin-side ingest: create backing files for every chunk of `m` not
  /// already present; bump refcounts on the rest and account the dedup.
  void add_manifest(const ImageManifest& m);

  /// Retire one manifest's references; chunks at refcount 0 are removed
  /// from the file system.
  void release_manifest(const ImageManifest& m);

  /// A fetched chunk landed (its file was just written by the transfer).
  /// Returns false (and accounts dedup) when the chunk was already held.
  bool add_chunk(ChunkId id, std::uint64_t bytes);

  [[nodiscard]] bool has(ChunkId id) const { return entries_.contains(id); }
  /// Sanity view for the explorer's refcount invariant: true while every
  /// resident entry holds a positive, non-wrapped refcount (an unsigned
  /// underflow from a double release shows up as a huge value).
  [[nodiscard]] bool refcounts_valid() const {
    for (const auto& [id, e] : entries_) {
      if (e.refs == 0 || e.refs > (1u << 30)) return false;
    }
    return true;
  }
  [[nodiscard]] std::size_t unique_chunks() const { return entries_.size(); }
  [[nodiscard]] std::uint64_t stored_bytes() const { return stored_bytes_; }
  /// Bytes deduplicated away over this store's lifetime.
  [[nodiscard]] std::uint64_t dedup_bytes() const { return dedup_bytes_; }
  [[nodiscard]] storage::LocalFileSystem& fs() { return fs_; }

 private:
  struct Entry {
    std::uint64_t bytes{0};
    std::uint32_t refs{0};
  };

  void count_dedup(std::uint64_t bytes);
  void publish();

  sim::Simulation& sim_;
  storage::LocalFileSystem& fs_;
  bool publish_gauges_;
  std::unordered_map<ChunkId, Entry> entries_;
  std::uint64_t stored_bytes_{0};
  std::uint64_t dedup_bytes_{0};
};

}  // namespace vmgrid::image
