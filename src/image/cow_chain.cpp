#include "image/cow_chain.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/status.hpp"

namespace vmgrid::image {

namespace {

class ChunkAccessor final : public vm::FileAccessor {
 public:
  ChunkAccessor(ImageManifest manifest, ChunkStore& store)
      : manifest_{std::move(manifest)}, store_{store} {}

  void read(std::uint64_t offset, std::uint64_t len, IoCallback cb) override {
    // Split [offset, offset+len) at chunk boundaries; issue one store read
    // per covered chunk and aggregate (same fan-in shape as CowDisk).
    struct Piece {
      std::size_t chunk;
      std::uint64_t in_chunk_off;
      std::uint64_t len;
    };
    std::vector<Piece> pieces;
    const std::uint64_t cb_bytes = manifest_.chunk_bytes;
    const std::uint64_t end = std::min(offset + len, manifest_.image_bytes);
    for (std::uint64_t off = std::min(offset, end); off < end;) {
      const std::size_t c = static_cast<std::size_t>(off / cb_bytes);
      const std::uint64_t piece_end = std::min(end, (c + 1) * cb_bytes);
      pieces.push_back(Piece{c, off - c * cb_bytes, piece_end - off});
      off = piece_end;
    }
    if (pieces.empty()) {
      // Zero-length (or past-EOF) read: still deliver asynchronously-shaped.
      cb(vm::VmIoStats{{}, 0, 0, 0.0});
      return;
    }
    for (const Piece& p : pieces) {
      if (p.chunk >= manifest_.chunks.size() || !store_.has(manifest_.chunks[p.chunk])) {
        cb(vm::VmIoStats{NotFoundError("chunk " + std::to_string(p.chunk) + " of " +
                                       manifest_.id() + " not in local store")
                             .at("image", "read"),
                         0, 0, 0.0});
        return;
      }
    }
    auto agg = std::make_shared<vm::VmIoStats>();
    auto remaining = std::make_shared<std::size_t>(pieces.size());
    auto done = std::make_shared<IoCallback>(std::move(cb));
    for (const Piece& p : pieces) {
      store_.fs().read(chunk_path(manifest_.chunks[p.chunk]), p.in_chunk_off, p.len,
                       [agg, remaining, done](storage::ReadResult r) {
                         agg->bytes += r.bytes;
                         if (--*remaining == 0) (*done)(*agg);
                       });
    }
  }

  void write(std::uint64_t offset, std::uint64_t len, IoCallback cb) override {
    (void)offset;
    (void)len;
    cb(vm::VmIoStats{FailedPreconditionError("chunked image layer " + manifest_.id() +
                                             " is read-only")
                         .at("image", "write"),
                     0, 0, 0.0});
  }

  [[nodiscard]] std::string describe() const override {
    return "chunked:" + manifest_.id();
  }

 private:
  ImageManifest manifest_;
  ChunkStore& store_;
};

}  // namespace

std::unique_ptr<vm::FileAccessor> make_chunk_accessor(const ImageManifest& manifest,
                                                      ChunkStore& store) {
  return std::make_unique<ChunkAccessor>(manifest, store);
}

std::unique_ptr<vm::FileAccessor> make_chain_accessor(
    const std::vector<const ImageManifest*>& lineage, ChunkStore& store,
    std::unique_ptr<vm::FileAccessor> writable_diff) {
  if (lineage.empty()) {
    throw std::invalid_argument("make_chain_accessor: empty lineage");
  }
  std::unique_ptr<vm::FileAccessor> chain =
      make_chunk_accessor(*lineage.front(), store);
  for (std::size_t i = 1; i < lineage.size(); ++i) {
    const ImageManifest& layer = *lineage[i];
    if (layer.parent_version != lineage[i - 1]->version ||
        layer.image != lineage[i - 1]->image) {
      throw std::invalid_argument("make_chain_accessor: " + layer.id() +
                                  " does not derive from " + lineage[i - 1]->id());
    }
    auto cow = std::make_unique<vm::CowDisk>(std::move(chain),
                                             make_chunk_accessor(layer, store));
    for (const std::uint32_t c : layer.delta) {
      cow->seed_written(c * layer.chunk_bytes, layer.chunk_len(c));
    }
    chain = std::move(cow);
  }
  if (writable_diff != nullptr) {
    chain = std::make_unique<vm::CowDisk>(std::move(chain), std::move(writable_diff));
  }
  return chain;
}

}  // namespace vmgrid::image
