#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace vmgrid::obs {
class MetricsRegistry;
}  // namespace vmgrid::obs

namespace vmgrid {

/// Process-wide interner for status origin tags (subsystem/op names).
/// Tags come from a small closed vocabulary ("rpc", "nfs", "session", ...)
/// but flow through every failure: interning stores each spelling once,
/// makes Status::at() clone-free for the tag fields, and gives each tag a
/// stable address that record_error uses as a cache key. The returned
/// reference lives for the process. Thread-safe (replica runners tag
/// statuses concurrently); the pool only ever grows, by design — the tag
/// vocabulary is code, not data.
[[nodiscard]] const std::string& intern_tag(std::string_view tag);

/// Grid-wide failure taxonomy. Every layer — RPC fabric, NFS client, VFS
/// proxy, VM runtime, middleware services — reports failures through these
/// codes, so recovery policy (retry, back off, shed, fail over) can branch
/// on machine-readable causes instead of error-string contents.
enum class StatusCode {
  kOk = 0,
  kTimeout,             ///< deadline expired before a reply arrived
  kOverloaded,          ///< server shed the request under load
  kUnavailable,         ///< peer unreachable / connection refused / host down
  kNotFound,            ///< named thing (file, method, checkpoint) absent
  kInvalidArgument,     ///< request malformed regardless of system state
  kFailedPrecondition,  ///< system state forbids the operation (retry won't fix)
  kAborted,             ///< operation cancelled mid-flight (crash, teardown)
  kResourceExhausted,   ///< quota/budget spent (retry budget, disk full)
  kInternal,            ///< invariant broken server-side
};

[[nodiscard]] const char* to_string(StatusCode code);

/// True for transient failures worth retrying with backoff. Subsumes
/// net::rpc_status_retryable: a timeout, an unreachable peer, or a shed
/// request may succeed on a later attempt; a missing file will not.
[[nodiscard]] constexpr bool retryable(StatusCode code) {
  switch (code) {
    case StatusCode::kTimeout:
    case StatusCode::kOverloaded:
    case StatusCode::kUnavailable:
      return true;
    case StatusCode::kOk:
    case StatusCode::kNotFound:
    case StatusCode::kInvalidArgument:
    case StatusCode::kFailedPrecondition:
    case StatusCode::kAborted:
    case StatusCode::kResourceExhausted:
    case StatusCode::kInternal:
      return false;
  }
  return false;
}

/// True for failures that signal downstream pressure: circuit breakers
/// count these against their trip threshold and shedders treat them as
/// congestion. Hard faults (kNotFound, kInvalidArgument, ...) are excluded
/// so a bad request cannot open a breaker against a healthy server, and so
/// is kUnavailable — a dead peer is the failure detector's business, not
/// the load shedder's.
[[nodiscard]] constexpr bool shed_priority(StatusCode code) {
  switch (code) {
    case StatusCode::kTimeout:
    case StatusCode::kOverloaded:
    case StatusCode::kResourceExhausted:
      return true;
    case StatusCode::kOk:
    case StatusCode::kUnavailable:
    case StatusCode::kNotFound:
    case StatusCode::kInvalidArgument:
    case StatusCode::kFailedPrecondition:
    case StatusCode::kAborted:
    case StatusCode::kInternal:
      return false;
  }
  return false;
}

/// Value-type operation outcome: a code, a human message, an origin tag
/// (subsystem + operation), and an optional cause chain. The OK status is
/// represented by a null rep, so the success path costs nothing to
/// construct, copy, or return.
///
/// A session failure renders its full provenance:
///   session: re-instantiation failed ← gram: dispatch timeout
///       ← rpc: timeout after 3 attempts
class [[nodiscard]] Status {
 public:
  /// OK.
  Status() = default;

  /// Failure (or explicit OK when code == kOk, which drops the message).
  Status(StatusCode code, std::string message);

  [[nodiscard]] bool ok() const { return rep_ == nullptr; }
  [[nodiscard]] StatusCode code() const {
    return rep_ == nullptr ? StatusCode::kOk : rep_->code;
  }
  [[nodiscard]] const std::string& message() const;
  [[nodiscard]] const std::string& subsystem() const;
  [[nodiscard]] const std::string& op() const;

  /// Tag the origin of this status: which subsystem and operation produced
  /// it. No-op on OK. Tags are interned (see intern_tag), so the clone
  /// this makes carries two pointers, not two string copies. Returns
  /// *this so construction reads as one expression:
  ///   Status{StatusCode::kTimeout, "deadline expired"}.at("rpc", "call")
  Status at(std::string_view subsystem, std::string_view op = {}) &&;

  /// Attach the upstream failure that provoked this one. No-op on OK.
  ///   Status{kUnavailable, "re-instantiation failed"}.at("session")
  ///       .caused_by(gram_status)
  Status caused_by(Status cause) &&;

  /// The next link in the cause chain; OK when there is none.
  [[nodiscard]] Status cause() const;

  /// Root of the cause chain (the deepest non-OK link); *this when no
  /// cause is attached. Failover and thaw paths record this code.
  [[nodiscard]] Status root_cause() const;

  /// `subsystem: message ← subsystem: message ← ...` — one link per
  /// status in the cause chain. "OK" for the OK status.
  [[nodiscard]] std::string to_string() const;

 private:
  struct Rep {
    StatusCode code{StatusCode::kOk};
    std::string message;
    const std::string* subsystem{nullptr};  // interned; nullptr = untagged
    const std::string* op{nullptr};         // interned; nullptr = untagged
    std::shared_ptr<const Rep> cause;
  };

  std::shared_ptr<const Rep> rep_;
};

/// Shorthand factories, so call sites read as policy not plumbing.
[[nodiscard]] Status OkStatus();
[[nodiscard]] Status TimeoutError(std::string message);
[[nodiscard]] Status OverloadedError(std::string message);
[[nodiscard]] Status UnavailableError(std::string message);
[[nodiscard]] Status NotFoundError(std::string message);
[[nodiscard]] Status InvalidArgumentError(std::string message);
[[nodiscard]] Status FailedPreconditionError(std::string message);
[[nodiscard]] Status AbortedError(std::string message);
[[nodiscard]] Status ResourceExhaustedError(std::string message);
[[nodiscard]] Status InternalError(std::string message);

/// Value-or-Status return for operations that produce something on
/// success. Holds exactly one of {value, non-OK status}.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_{std::move(value)} {}  // NOLINT(google-explicit-constructor)
  Result(Status status)                          // NOLINT(google-explicit-constructor)
      : status_{std::move(status)} {
    if (status_.ok()) {
      status_ = Status{StatusCode::kInternal, "Result constructed from OK status"};
    }
  }

  [[nodiscard]] bool ok() const { return value_.has_value(); }
  [[nodiscard]] const Status& status() const { return status_; }

  [[nodiscard]] T& value() { return *value_; }
  [[nodiscard]] const T& value() const { return *value_; }
  [[nodiscard]] T value_or(T fallback) const {
    return value_.has_value() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Bump errors_total{subsystem=<origin>,code=<code>} for a failure; no-op
/// on OK. Every subsystem funnels its failure paths through this, so the
/// obs export carries a grid-wide error census keyed by cause.
///
/// Hot-path cost: the Counter handle is cached per thread, keyed by
/// (registry epoch, interned subsystem tag, code), so the steady state
/// is one hash probe and an increment — the label-vector allocations are
/// paid once per distinct origin, not per error. MetricsRegistry's
/// std::map storage keeps the cached references stable; reset() bumps
/// the registry epoch, which invalidates the cache entries wholesale.
void record_error(obs::MetricsRegistry& metrics, const Status& status);

}  // namespace vmgrid
