#include "core/status.hpp"

#include "obs/metrics.hpp"

namespace vmgrid {

namespace {
const std::string kEmpty;
}  // namespace

const char* to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kTimeout: return "timeout";
    case StatusCode::kOverloaded: return "overloaded";
    case StatusCode::kUnavailable: return "unavailable";
    case StatusCode::kNotFound: return "not_found";
    case StatusCode::kInvalidArgument: return "invalid_argument";
    case StatusCode::kFailedPrecondition: return "failed_precondition";
    case StatusCode::kAborted: return "aborted";
    case StatusCode::kResourceExhausted: return "resource_exhausted";
    case StatusCode::kInternal: return "internal";
  }
  return "unknown";
}

Status::Status(StatusCode code, std::string message) {
  if (code == StatusCode::kOk) return;
  auto rep = std::make_shared<Rep>();
  rep->code = code;
  rep->message = std::move(message);
  rep_ = std::move(rep);
}

const std::string& Status::message() const {
  return rep_ == nullptr ? kEmpty : rep_->message;
}

const std::string& Status::subsystem() const {
  return rep_ == nullptr ? kEmpty : rep_->subsystem;
}

const std::string& Status::op() const {
  return rep_ == nullptr ? kEmpty : rep_->op;
}

Status Status::at(std::string subsystem, std::string op) && {
  if (rep_ != nullptr) {
    auto rep = std::make_shared<Rep>(*rep_);
    rep->subsystem = std::move(subsystem);
    rep->op = std::move(op);
    rep_ = std::move(rep);
  }
  return std::move(*this);
}

Status Status::caused_by(Status cause) && {
  if (rep_ != nullptr && !cause.ok()) {
    auto rep = std::make_shared<Rep>(*rep_);
    rep->cause = std::move(cause.rep_);
    rep_ = std::move(rep);
  }
  return std::move(*this);
}

Status Status::cause() const {
  Status out;
  if (rep_ != nullptr) out.rep_ = rep_->cause;
  return out;
}

Status Status::root_cause() const {
  Status out = *this;
  while (out.rep_ != nullptr && out.rep_->cause != nullptr) {
    Status next;
    next.rep_ = out.rep_->cause;
    out = std::move(next);
  }
  return out;
}

std::string Status::to_string() const {
  if (rep_ == nullptr) return "OK";
  std::string out;
  for (const Rep* r = rep_.get(); r != nullptr; r = r->cause.get()) {
    if (!out.empty()) out += " ← ";  // " ← "
    if (!r->subsystem.empty()) {
      out += r->subsystem;
      if (!r->op.empty()) {
        out += '.';
        out += r->op;
      }
      out += ": ";
    }
    if (r->message.empty()) {
      out += vmgrid::to_string(r->code);
    } else {
      out += r->message;
    }
  }
  return out;
}

Status OkStatus() { return Status{}; }
Status TimeoutError(std::string message) {
  return Status{StatusCode::kTimeout, std::move(message)};
}
Status OverloadedError(std::string message) {
  return Status{StatusCode::kOverloaded, std::move(message)};
}
Status UnavailableError(std::string message) {
  return Status{StatusCode::kUnavailable, std::move(message)};
}
Status NotFoundError(std::string message) {
  return Status{StatusCode::kNotFound, std::move(message)};
}
Status InvalidArgumentError(std::string message) {
  return Status{StatusCode::kInvalidArgument, std::move(message)};
}
Status FailedPreconditionError(std::string message) {
  return Status{StatusCode::kFailedPrecondition, std::move(message)};
}
Status AbortedError(std::string message) {
  return Status{StatusCode::kAborted, std::move(message)};
}
Status ResourceExhaustedError(std::string message) {
  return Status{StatusCode::kResourceExhausted, std::move(message)};
}
Status InternalError(std::string message) {
  return Status{StatusCode::kInternal, std::move(message)};
}

void record_error(obs::MetricsRegistry& metrics, const Status& status) {
  if (status.ok()) return;
  const std::string& origin = status.subsystem();
  metrics
      .counter("errors_total", {{"subsystem", origin.empty() ? "unknown" : origin},
                                {"code", to_string(status.code())}})
      .inc();
}

}  // namespace vmgrid
