#include "core/status.hpp"

#include <mutex>
#include <set>
#include <shared_mutex>
#include <unordered_map>

#include "obs/metrics.hpp"

namespace vmgrid {

namespace {
const std::string kEmpty;
}  // namespace

const std::string& intern_tag(std::string_view tag) {
  // std::set gives node stability: references survive every later insert,
  // and entries are never erased, so handing them out is safe forever.
  static std::shared_mutex mu;
  static std::set<std::string, std::less<>> pool;
  {
    std::shared_lock lock{mu};
    if (auto it = pool.find(tag); it != pool.end()) return *it;
  }
  std::unique_lock lock{mu};
  return *pool.emplace(tag).first;
}

const char* to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kTimeout: return "timeout";
    case StatusCode::kOverloaded: return "overloaded";
    case StatusCode::kUnavailable: return "unavailable";
    case StatusCode::kNotFound: return "not_found";
    case StatusCode::kInvalidArgument: return "invalid_argument";
    case StatusCode::kFailedPrecondition: return "failed_precondition";
    case StatusCode::kAborted: return "aborted";
    case StatusCode::kResourceExhausted: return "resource_exhausted";
    case StatusCode::kInternal: return "internal";
  }
  return "unknown";
}

Status::Status(StatusCode code, std::string message) {
  if (code == StatusCode::kOk) return;
  auto rep = std::make_shared<Rep>();
  rep->code = code;
  rep->message = std::move(message);
  rep_ = std::move(rep);
}

const std::string& Status::message() const {
  return rep_ == nullptr ? kEmpty : rep_->message;
}

const std::string& Status::subsystem() const {
  return rep_ == nullptr || rep_->subsystem == nullptr ? kEmpty : *rep_->subsystem;
}

const std::string& Status::op() const {
  return rep_ == nullptr || rep_->op == nullptr ? kEmpty : *rep_->op;
}

Status Status::at(std::string_view subsystem, std::string_view op) && {
  if (rep_ != nullptr) {
    auto rep = std::make_shared<Rep>(*rep_);
    rep->subsystem = subsystem.empty() ? nullptr : &intern_tag(subsystem);
    rep->op = op.empty() ? nullptr : &intern_tag(op);
    rep_ = std::move(rep);
  }
  return std::move(*this);
}

Status Status::caused_by(Status cause) && {
  if (rep_ != nullptr && !cause.ok()) {
    auto rep = std::make_shared<Rep>(*rep_);
    rep->cause = std::move(cause.rep_);
    rep_ = std::move(rep);
  }
  return std::move(*this);
}

Status Status::cause() const {
  Status out;
  if (rep_ != nullptr) out.rep_ = rep_->cause;
  return out;
}

Status Status::root_cause() const {
  Status out = *this;
  while (out.rep_ != nullptr && out.rep_->cause != nullptr) {
    Status next;
    next.rep_ = out.rep_->cause;
    out = std::move(next);
  }
  return out;
}

std::string Status::to_string() const {
  if (rep_ == nullptr) return "OK";
  std::string out;
  for (const Rep* r = rep_.get(); r != nullptr; r = r->cause.get()) {
    if (!out.empty()) out += " ← ";  // " ← "
    if (r->subsystem != nullptr) {
      out += *r->subsystem;
      if (r->op != nullptr) {
        out += '.';
        out += *r->op;
      }
      out += ": ";
    }
    if (r->message.empty()) {
      out += vmgrid::to_string(r->code);
    } else {
      out += r->message;
    }
  }
  return out;
}

Status OkStatus() { return Status{}; }
Status TimeoutError(std::string message) {
  return Status{StatusCode::kTimeout, std::move(message)};
}
Status OverloadedError(std::string message) {
  return Status{StatusCode::kOverloaded, std::move(message)};
}
Status UnavailableError(std::string message) {
  return Status{StatusCode::kUnavailable, std::move(message)};
}
Status NotFoundError(std::string message) {
  return Status{StatusCode::kNotFound, std::move(message)};
}
Status InvalidArgumentError(std::string message) {
  return Status{StatusCode::kInvalidArgument, std::move(message)};
}
Status FailedPreconditionError(std::string message) {
  return Status{StatusCode::kFailedPrecondition, std::move(message)};
}
Status AbortedError(std::string message) {
  return Status{StatusCode::kAborted, std::move(message)};
}
Status ResourceExhaustedError(std::string message) {
  return Status{StatusCode::kResourceExhausted, std::move(message)};
}
Status InternalError(std::string message) {
  return Status{StatusCode::kInternal, std::move(message)};
}

namespace {

struct ErrorSiteKey {
  std::uint64_t epoch;     // registry identity + reset generation
  const std::string* tag;  // interned subsystem
  StatusCode code;
  bool operator==(const ErrorSiteKey&) const = default;
};

struct ErrorSiteHash {
  std::size_t operator()(const ErrorSiteKey& k) const {
    std::size_t h = std::hash<std::uint64_t>{}(k.epoch);
    h ^= std::hash<const void*>{}(k.tag) + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    h ^= static_cast<std::size_t>(k.code) + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    return h;
  }
};

}  // namespace

void record_error(obs::MetricsRegistry& metrics, const Status& status) {
  if (status.ok()) return;
  const std::string& origin = status.subsystem();
  const std::string& tag = intern_tag(origin.empty() ? "unknown" : origin);
  // Per-thread handle pool: registries are thread-confined (one per
  // replica), epochs are process-unique and bumped by reset(), and the
  // registry's std::map storage keeps Counter references stable — so a
  // hit can skip the Labels construction entirely.
  thread_local std::unordered_map<ErrorSiteKey, obs::Counter*, ErrorSiteHash> pool;
  if (pool.size() > 4096) pool.clear();  // bound a pathological tag/registry churn
  auto [it, inserted] =
      pool.try_emplace(ErrorSiteKey{metrics.epoch(), &tag, status.code()}, nullptr);
  if (it->second == nullptr) {
    it->second = &metrics.counter(
        "errors_total", {{"subsystem", tag}, {"code", to_string(status.code())}});
  }
  it->second->inc();
}

}  // namespace vmgrid
