#pragma once

#include "workload/task_spec.hpp"

namespace vmgrid::workload {

/// SPEChpc'96 macro-workload models, parameterized from the paper's
/// Table 1 measurements on a dual PIII-933 (sequential mode, medium data
/// set): native user/system CPU seconds, and the cold I/O footprint that
/// explains the additional system time and wall-clock overhead observed
/// when the VM state is accessed via the wide-area virtual file system.
///
/// SPECseis96 — seismic processing; long CPU phases over a multi-hundred-
/// megabyte trace dataset, very low kernel time, ~1% user dilation.
[[nodiscard]] TaskSpec spec_seis();

/// SPECclimate (climate modeling); smaller dataset, denser memory access
/// pattern (higher user-mode dilation inside a VM, ~4%).
[[nodiscard]] TaskSpec spec_climate();

/// A short CPU-bound synthetic task, the unit of the paper's Figure 1
/// microbenchmark (few seconds of pure user-mode compute).
[[nodiscard]] TaskSpec micro_test_task(double seconds = 3.0);

}  // namespace vmgrid::workload
