#include "workload/task_spec.hpp"

// TaskSpec is a plain aggregate; this translation unit exists so the
// workload library always has at least one object file and gives the
// header a home for future out-of-line helpers.
