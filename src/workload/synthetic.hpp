#pragma once

#include <vector>

#include "sim/random.hpp"
#include "workload/task_spec.hpp"

namespace vmgrid::workload {

/// Knobs for random grid-job populations (used by the examples and the
/// middleware stress benches; the reproduction experiments use the fixed
/// SPEC / micro task models instead).
struct SyntheticMix {
  double mean_user_seconds{120.0};
  double user_cv{1.5};             // heavy-ish tail via lognormal
  double sys_fraction{0.02};       // sys = fraction * user
  double io_mean_bytes{32.0 * (1 << 20)};
  double io_probability{0.6};
};

[[nodiscard]] TaskSpec random_task(sim::Rng& rng, const SyntheticMix& mix,
                                   std::size_t index = 0);

[[nodiscard]] std::vector<TaskSpec> random_batch(sim::Rng& rng, std::size_t count,
                                                 const SyntheticMix& mix = {});

}  // namespace vmgrid::workload
