#include "workload/spec_benchmarks.hpp"

namespace vmgrid::workload {

TaskSpec spec_seis() {
  TaskSpec t;
  t.name = "SPECseis";
  t.user_seconds = 16395.0;
  t.sys_seconds = 19.0;
  t.io_read_bytes = 320ull << 20;  // cold seismic traces pulled through the VM disk
  t.io_write_bytes = 64ull << 20;
  t.phases = 64;
  t.vm_user_dilation = 0.0099;  // 16395 -> 16557
  t.vm_sys_factor = 3.16;       // 19 -> 60
  return t;
}

TaskSpec spec_climate() {
  TaskSpec t;
  t.name = "SPECclimate";
  t.user_seconds = 9304.0;
  t.sys_seconds = 3.0;
  t.io_read_bytes = 12ull << 20;
  t.io_write_bytes = 4ull << 20;
  t.phases = 32;
  t.vm_user_dilation = 0.0403;  // 9304 -> 9679
  t.vm_sys_factor = 1.67;       // 3 -> 5
  return t;
}

TaskSpec micro_test_task(double seconds) {
  TaskSpec t;
  t.name = "micro-test";
  t.user_seconds = seconds;
  t.sys_seconds = seconds * 0.004;  // a handful of syscalls
  t.vm_user_dilation = 0.015;
  t.vm_sys_factor = 3.0;
  return t;
}

}  // namespace vmgrid::workload
