#pragma once

#include <cstdint>
#include <string>

namespace vmgrid::workload {

/// Resource profile of an application run, in native (physical-machine)
/// terms. The VM layer derives virtualization overhead from the
/// user/system split and the per-workload dilation characteristics.
///
/// `vm_user_dilation` models user-mode slowdown inside a VM (TLB/cache
/// pollution from the VMM) and `vm_sys_factor` the trap-and-emulate
/// multiplier on privileged kernel time — both are workload properties in
/// practice (compare SPECseis' +1% to SPECclimate's +4% user-time in the
/// paper's Table 1), so they live here rather than in the VMM model.
struct TaskSpec {
  std::string name{"task"};
  double user_seconds{1.0};
  double sys_seconds{0.0};

  /// Data read through the VM's virtual disk during the run (cold bytes;
  /// the guest page cache is assumed to absorb re-reads).
  std::uint64_t io_read_bytes{0};
  /// Data written to the virtual disk (lands in the local diff file for
  /// non-persistent VMs).
  std::uint64_t io_write_bytes{0};
  /// Number of compute/I-O phases the run alternates through.
  std::uint32_t phases{1};

  double vm_user_dilation{0.012};
  double vm_sys_factor{3.2};

  [[nodiscard]] double total_native_seconds() const {
    return user_seconds + sys_seconds;
  }
};

}  // namespace vmgrid::workload
