#include "workload/synthetic.hpp"

#include <algorithm>
#include <cmath>

namespace vmgrid::workload {

TaskSpec random_task(sim::Rng& rng, const SyntheticMix& mix, std::size_t index) {
  TaskSpec t;
  t.name = "job-" + std::to_string(index);
  // Lognormal with the requested mean and coefficient of variation.
  const double cv2 = mix.user_cv * mix.user_cv;
  const double sigma2 = std::log(1.0 + cv2);
  const double mu = std::log(mix.mean_user_seconds) - sigma2 / 2.0;
  t.user_seconds = std::max(0.1, rng.lognormal(mu, std::sqrt(sigma2)));
  t.sys_seconds = t.user_seconds * mix.sys_fraction;
  if (rng.bernoulli(mix.io_probability)) {
    t.io_read_bytes = static_cast<std::uint64_t>(rng.exponential(mix.io_mean_bytes));
    t.io_write_bytes = t.io_read_bytes / 4;
    t.phases = 16;
  }
  return t;
}

std::vector<TaskSpec> random_batch(sim::Rng& rng, std::size_t count,
                                   const SyntheticMix& mix) {
  std::vector<TaskSpec> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(random_task(rng, mix, i));
  return out;
}

}  // namespace vmgrid::workload
