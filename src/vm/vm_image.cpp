#include "vm/vm_image.hpp"

// VmImageSpec is a plain aggregate; see header for the calibration notes.
