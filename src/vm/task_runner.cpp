#include "vm/task_runner.hpp"

#include <algorithm>
#include <cassert>
#include <memory>
#include <utility>

#include "obs/trace.hpp"

namespace vmgrid::vm {

namespace {

struct RunState : GuestTask, std::enable_shared_from_this<RunState> {
  sim::Simulation& sim;
  host::CpuEngine* engine;
  workload::TaskSpec spec;
  TaskRunOptions opts;
  TaskCallback cb;

  host::ProcessId pid{};
  std::uint32_t phase{0};
  std::uint32_t phases{1};
  double cpu_per_phase{0.0};
  std::uint64_t read_per_phase{0};
  std::uint64_t write_per_phase{0};
  std::uint64_t read_cursor{0};
  std::uint64_t write_cursor{0};
  double io_cpu{0.0};
  std::uint64_t io_rpcs{0};
  std::uint64_t io_bytes{0};
  Status io_status;  ///< first I/O failure, cause chain intact
  sim::TimePoint started{};

  bool paused_{false};
  bool done_{false};
  bool aborted_{false};
  double paused_remaining_{0.0};            // native cpu-seconds left in the chunk
  std::function<void()> deferred_;          // continuation held while paused
  std::function<void()> after_cpu_;         // continuation of the armed CPU chunk

  RunState(sim::Simulation& s, host::CpuEngine& e, workload::TaskSpec sp,
           TaskRunOptions o, TaskCallback c)
      : sim{s}, engine{&e}, spec{std::move(sp)}, opts{std::move(o)}, cb{std::move(c)} {}

  // -- GuestTask ------------------------------------------------------------

  [[nodiscard]] bool finished() const override { return done_ || aborted_; }
  [[nodiscard]] bool paused() const override { return paused_; }
  void set_disk(FileAccessor* disk) override { opts.disk = disk; }

  void pause() override {
    if (finished() || paused_) return;
    paused_ = true;
    if (pid.valid() && engine->contains(pid)) {
      paused_remaining_ = engine->remaining_work(pid);
      if (opts.hooks.on_process_exit) opts.hooks.on_process_exit(pid);
      engine->remove(pid);
    } else {
      paused_remaining_ = 0.0;
    }
    pid = {};
  }

  void resume_on(host::CpuEngine& new_engine, ProcessHooks hooks) override {
    if (finished()) return;
    assert(paused_);
    paused_ = false;
    engine = &new_engine;
    opts.hooks = std::move(hooks);
    auto self = shared_from_this();
    pid = engine->add(spec.name, opts.attrs, paused_remaining_,
                      paused_remaining_ > 0.0
                          ? host::CpuEngine::CompletionCallback{[self] { self->cpu_done(); }}
                          : nullptr,
                      opts.efficiency);
    if (opts.hooks.on_process) opts.hooks.on_process(pid);
    // An I/O completion arrived while the VM was paused.
    if (paused_remaining_ <= 0.0 && deferred_) {
      auto fn = std::move(deferred_);
      deferred_ = nullptr;
      fn();
    }
    paused_remaining_ = 0.0;
  }

  void abort() override {
    if (finished()) return;
    aborted_ = true;
    if (pid.valid() && engine->contains(pid)) {
      if (opts.hooks.on_process_exit) opts.hooks.on_process_exit(pid);
      engine->remove(pid);
    }
    pid = {};
    // Drop every stored continuation: each captures a shared_ptr to this
    // state, so a survivor would cycle and leak the aborted task.
    cb = nullptr;
    deferred_ = nullptr;
    after_cpu_ = nullptr;
  }

  // -- execution ------------------------------------------------------------

  /// Run `fn` now, or hold it until resume when paused.
  void continue_with(std::function<void()> fn) {
    if (aborted_) return;
    if (paused_) {
      deferred_ = std::move(fn);
      return;
    }
    fn();
  }

  /// Arm a CPU chunk whose completion continuation survives pause/resume.
  void add_cpu(double work, std::function<void()> then) {
    after_cpu_ = std::move(then);
    auto self = shared_from_this();
    engine->add_work(pid, work, [self] { self->cpu_done(); });
  }

  void cpu_done() {
    if (aborted_) return;
    auto fn = std::move(after_cpu_);
    after_cpu_ = nullptr;
    if (fn) fn();
  }

  void begin() {
    started = sim.now();
    phases = std::max<std::uint32_t>(1, spec.phases);
    cpu_per_phase = spec.total_native_seconds() / phases;
    if (opts.disk != nullptr) {
      read_per_phase = spec.io_read_bytes / phases;
      write_per_phase = spec.io_write_bytes / phases;
      read_cursor = opts.io_read_offset;
    }
    pid = engine->add(spec.name, opts.attrs, 0.0, nullptr, opts.efficiency);
    if (opts.hooks.on_process) opts.hooks.on_process(pid);
    next_phase();
  }

  void next_phase() {
    if (aborted_) return;
    if (phase == phases) {
      finish();
      return;
    }
    ++phase;
    auto self = shared_from_this();
    if (cpu_per_phase > 0.0) {
      add_cpu(cpu_per_phase, [self] { self->do_read(); });
    } else {
      sim.schedule_after(sim::Duration::micros(1),
                         [self] { self->continue_with([self] { self->do_read(); }); });
    }
  }

  void do_read() {
    if (aborted_) return;
    auto self = shared_from_this();
    if (read_per_phase == 0 || opts.disk == nullptr) {
      do_write();
      return;
    }
    // Phase boundaries fire from scheduled events; re-enter the task's
    // trace so storage spans (vfs/nfs) parent under it, not a fresh root.
    obs::ScopedTraceContext scope{sim.trace(), opts.trace};
    opts.disk->read(read_cursor, read_per_phase, [self](VmIoStats s) {
      self->continue_with([self, s] {
        self->read_cursor += self->read_per_phase;
        self->account_io(s);
        self->charge_io_cpu(s.client_cpu_seconds, [self] { self->do_write(); });
      });
    });
  }

  void do_write() {
    if (aborted_) return;
    auto self = shared_from_this();
    if (write_per_phase == 0 || opts.disk == nullptr) {
      next_phase();
      return;
    }
    obs::ScopedTraceContext scope{sim.trace(), opts.trace};
    opts.disk->write(write_cursor, write_per_phase, [self](VmIoStats s) {
      self->continue_with([self, s] {
        self->write_cursor += self->write_per_phase;
        self->account_io(s);
        self->charge_io_cpu(s.client_cpu_seconds, [self] { self->next_phase(); });
      });
    });
  }

  void account_io(const VmIoStats& s) {
    if (io_status.ok() && !s.ok()) io_status = s.status;
    io_cpu += s.client_cpu_seconds;
    io_rpcs += s.rpcs;
    io_bytes += s.bytes;
  }

  /// I/O client CPU occupies the processor: convert the observed seconds
  /// into native work at the process' current efficiency and run it.
  void charge_io_cpu(double observed_seconds, std::function<void()> then) {
    if (aborted_) return;
    if (observed_seconds <= 0.0) {
      then();
      return;
    }
    const double native = observed_seconds * engine->efficiency(pid);
    add_cpu(native, std::move(then));
  }

  void finish() {
    if (aborted_) return;
    done_ = true;
    if (opts.hooks.on_process_exit) opts.hooks.on_process_exit(pid);
    engine->remove(pid);
    pid = {};
    TaskResult r;
    r.task = spec.name;
    r.status = io_status;
    r.wall = sim.now() - started;
    r.user_cpu_seconds = opts.observed_user >= 0.0 ? opts.observed_user : spec.user_seconds;
    r.sys_cpu_seconds =
        (opts.observed_sys >= 0.0 ? opts.observed_sys : spec.sys_seconds) + io_cpu;
    r.io_rpcs = io_rpcs;
    r.io_bytes = io_bytes;
    if (cb) cb(std::move(r));
  }
};

}  // namespace

std::shared_ptr<GuestTask> run_task(sim::Simulation& sim, host::CpuEngine& engine,
                                    workload::TaskSpec spec, TaskRunOptions options,
                                    TaskCallback cb) {
  auto st = std::make_shared<RunState>(sim, engine, std::move(spec), std::move(options),
                                       std::move(cb));
  st->begin();
  return st;
}

}  // namespace vmgrid::vm
