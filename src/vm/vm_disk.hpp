#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_set>

#include "core/status.hpp"
#include "storage/local_fs.hpp"
#include "storage/nfs_client.hpp"
#include "vfs/vfs_proxy.hpp"

namespace vmgrid::vm {

/// Outcome of one VM-storage I/O, including the client-side CPU the
/// operation consumed (RPC marshalling in the guest kernel + VMM); the
/// task runner charges that CPU back to the guest, which is where the
/// extra *system* time in Table 1's PVFS rows comes from.
struct VmIoStats {
  /// OK, or the underlying storage failure (nfs/vfs origin, rpc cause) —
  /// the VM layer forwards the status untouched so the root cause is
  /// still addressable at the task level.
  Status status;
  std::uint64_t bytes{0};
  std::uint64_t rpcs{0};
  double client_cpu_seconds{0.0};

  [[nodiscard]] bool ok() const { return status.ok(); }
};

/// Access to one file of VM state (virtual disk, memory snapshot),
/// wherever it lives: host-local file system, plain NFS, or the proxy-
/// cached grid virtual file system.
class FileAccessor {
 public:
  virtual ~FileAccessor() = default;
  using IoCallback = std::function<void(VmIoStats)>;
  virtual void read(std::uint64_t offset, std::uint64_t len, IoCallback cb) = 0;
  virtual void write(std::uint64_t offset, std::uint64_t len, IoCallback cb) = 0;
  [[nodiscard]] virtual std::string describe() const = 0;
};

[[nodiscard]] std::unique_ptr<FileAccessor> make_local_accessor(
    storage::LocalFileSystem& fs, std::string path);

[[nodiscard]] std::unique_ptr<FileAccessor> make_nfs_accessor(
    storage::NfsClient& client, std::string path, double client_cpu_per_rpc);

[[nodiscard]] std::unique_ptr<FileAccessor> make_vfs_accessor(
    vfs::VfsProxy& proxy, std::string path, double client_cpu_per_rpc);

/// Copy-on-write virtual disk for non-persistent VMs: reads of written
/// blocks come from the local diff file, everything else from the (often
/// remote, shared, read-only) base image; writes land only in the diff.
class CowDisk final : public FileAccessor {
 public:
  CowDisk(std::unique_ptr<FileAccessor> base, std::unique_ptr<FileAccessor> diff);

  void read(std::uint64_t offset, std::uint64_t len, IoCallback cb) override;
  void write(std::uint64_t offset, std::uint64_t len, IoCallback cb) override;
  [[nodiscard]] std::string describe() const override;

  /// Pre-mark [offset, offset+len) as present in the diff layer without
  /// issuing I/O. Image chains use this to route reads of a derived
  /// version's delta chunks to the delta layer: the "diff" there is a
  /// read-only manifest layer whose content exists from the start, not
  /// the product of guest writes.
  void seed_written(std::uint64_t offset, std::uint64_t len);

  [[nodiscard]] std::size_t diff_block_count() const { return written_.size(); }
  [[nodiscard]] std::uint64_t diff_bytes() const {
    return written_.size() * storage::kBlockSize;
  }

 private:
  std::unique_ptr<FileAccessor> base_;
  std::unique_ptr<FileAccessor> diff_;
  std::unordered_set<std::uint64_t> written_;
};

}  // namespace vmgrid::vm
