#pragma once

#include <cstddef>

#include "workload/task_spec.hpp"

namespace vmgrid::vm {

/// Cost model of a hosted trap-and-emulate VMM (VMware-Workstation
/// style, §2.3 of the paper). User-mode guest code runs natively; costs
/// come from four mechanisms, each exposed as a parameter so the benches
/// can show *which* mechanism produces which observed overhead:
///
///  * per-workload user-mode dilation (TLB/cache interference) and
///    privileged-op dilation (trap-and-emulate on syscalls, page-table
///    updates, I/O) — carried on workload::TaskSpec;
///  * world switches: when host-level load preempts the VMM, re-entering
///    the VM world costs extra — modelled as a slowdown proportional to
///    external runnable demand;
///  * guest context switches: co-runnable tasks inside one VM force
///    privileged context-switch emulation — slowdown per co-runner.
struct VmmCostModel {
  double world_switch_penalty{0.035};  // per unit of external demand (capped at 1)
  double guest_cs_penalty{0.018};      // per co-runnable guest task
  double io_client_cpu_per_rpc{0.0018};  // guest kernel+VMM CPU per NFS RPC, seconds
};

class OverheadModel {
 public:
  constexpr explicit OverheadModel(VmmCostModel m = {}) : m_{m} {}

  /// CPU seconds a task's user phase consumes inside the VM.
  [[nodiscard]] static double observed_user_seconds(const workload::TaskSpec& t) {
    return t.user_seconds * (1.0 + t.vm_user_dilation);
  }
  /// CPU seconds the task's privileged phase consumes inside the VM.
  [[nodiscard]] static double observed_sys_seconds(const workload::TaskSpec& t) {
    return t.sys_seconds * t.vm_sys_factor;
  }

  /// Efficiency (native work per allocated cpu-second) of the task when
  /// the VM runs undisturbed.
  [[nodiscard]] static double base_efficiency(const workload::TaskSpec& t);

  /// Multiplicative slowdown from host-level contention (world switches)
  /// and in-guest co-runners (trapped context switches).
  [[nodiscard]] double contention_factor(double external_demand,
                                         std::size_t guest_corunners) const;

  [[nodiscard]] const VmmCostModel& params() const { return m_; }

 private:
  VmmCostModel m_;
};

}  // namespace vmgrid::vm
