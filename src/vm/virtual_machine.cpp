#include "vm/virtual_machine.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>

#include "obs/trace.hpp"
#include "vm/vmm.hpp"

namespace vmgrid::vm {

const char* to_string(VmPowerState s) {
  switch (s) {
    case VmPowerState::kPoweredOff: return "powered-off";
    case VmPowerState::kBooting: return "booting";
    case VmPowerState::kRestoring: return "restoring";
    case VmPowerState::kRunning: return "running";
    case VmPowerState::kSuspending: return "suspending";
    case VmPowerState::kSuspended: return "suspended";
    case VmPowerState::kShutDown: return "shut-down";
  }
  return "?";
}

VirtualMachine::VirtualMachine(Vmm& vmm, VmConfig config, VmImageSpec image,
                               VmStorage storage)
    : vmm_{vmm},
      config_{std::move(config)},
      image_{std::move(image)},
      storage_{std::move(storage)},
      model_{config_.cost} {
  if (!storage_.disk) {
    throw std::logic_error("VirtualMachine: storage.disk is required");
  }
}

VirtualMachine::~VirtualMachine() { stop_loads(); }

host::PhysicalHost& VirtualMachine::host() { return vmm_.host(); }

std::uint64_t VirtualMachine::migratable_state_bytes() const {
  return config_.memory_mb * (1ull << 20) + image_.device_state_bytes;
}

workload::TaskSpec VirtualMachine::boot_spec() const {
  workload::TaskSpec s;
  s.name = config_.name + ":boot";
  // Guest boot is kernel-heavy; we carry its VM-observed CPU directly
  // (dilations of 0 / factor 1) since the image profile is measured
  // inside the VM to begin with.
  s.user_seconds = image_.boot_cpu_seconds;
  s.sys_seconds = 0.0;
  s.vm_user_dilation = 0.0;
  s.vm_sys_factor = 1.0;
  s.io_read_bytes = image_.boot_read_bytes;
  s.phases = 16;
  return s;
}

workload::TaskSpec VirtualMachine::restore_spec() const {
  workload::TaskSpec s;
  s.name = config_.name + ":restore";
  s.user_seconds = image_.restore_cpu_seconds;
  s.sys_seconds = 0.0;
  s.vm_user_dilation = 0.0;
  s.vm_sys_factor = 1.0;
  s.io_read_bytes = image_.memory_state_bytes + image_.device_state_bytes;
  s.phases = 16;
  return s;
}

void VirtualMachine::boot(Callback on_running) {
  if (state_ != VmPowerState::kPoweredOff && state_ != VmPowerState::kShutDown) {
    throw std::logic_error("VirtualMachine::boot from state " +
                           std::string{to_string(state_)});
  }
  state_ = VmPowerState::kBooting;
  auto& sim = host().simulation();
  auto spec = boot_spec();
  auto boot_span = std::make_shared<obs::Span>(sim, "vm.boot", config_.name, "vm");
  auto fixed_span = std::make_shared<obs::Span>(sim, "boot.fixed", config_.name, "vm");
  // Device probes and daemon start-up timeouts dominate the fixed part;
  // they vary run to run.
  const double fixed = image_.boot_fixed_seconds * sim.rng().uniform(0.94, 1.12);
  spec.user_seconds *= sim.rng().uniform(0.97, 1.06);
  sim.schedule_after(sim::Duration::seconds(fixed), [this, &sim, boot_span, fixed_span,
                                                     alive = std::weak_ptr<int>(alive_),
                                                     spec = std::move(spec),
                                                     on_running =
                                                         std::move(on_running)]() mutable {
    // A crash (power_off) or destruction may land inside the fixed boot
    // window; the boot then simply never completes.
    if (alive.expired() || state_ != VmPowerState::kBooting) return;
    fixed_span->end();
    auto work_span = std::make_shared<obs::Span>(sim, "boot.workset", config_.name, "vm");
    TaskRunOptions opts;
    opts.attrs = config_.attrs;
    opts.efficiency = 1.0;
    opts.disk = storage_.disk.get();
    opts.hooks = guest_hooks(1.0);
    opts.trace = boot_span->context();
    run_task_internal_boot(std::move(spec), std::move(opts),
                           [boot_span, work_span,
                            on_running = std::move(on_running)]() mutable {
                             work_span->end();
                             boot_span->end();
                             on_running();
                           });
  });
}

void VirtualMachine::restore(Callback on_running) {
  if (state_ != VmPowerState::kPoweredOff && state_ != VmPowerState::kSuspended &&
      state_ != VmPowerState::kShutDown) {
    throw std::logic_error("VirtualMachine::restore from state " +
                           std::string{to_string(state_)});
  }
  if (!storage_.memory_state) {
    throw std::logic_error("VirtualMachine::restore: image has no memory snapshot");
  }
  state_ = VmPowerState::kRestoring;
  auto& sim = host().simulation();
  auto spec = restore_spec();
  auto restore_span = std::make_shared<obs::Span>(sim, "vm.restore", config_.name, "vm");
  auto fixed_span = std::make_shared<obs::Span>(sim, "restore.fixed", config_.name, "vm");
  const double fixed = image_.restore_fixed_seconds * sim.rng().uniform(0.9, 1.25);
  sim.schedule_after(sim::Duration::seconds(fixed), [this, &sim, restore_span, fixed_span,
                                                     alive = std::weak_ptr<int>(alive_),
                                                     spec = std::move(spec),
                                                     on_running =
                                                         std::move(on_running)]() mutable {
    if (alive.expired() || state_ != VmPowerState::kRestoring) return;
    fixed_span->end();
    auto read_span = std::make_shared<obs::Span>(sim, "restore.read", config_.name, "vm");
    TaskRunOptions opts;
    opts.attrs = config_.attrs;
    opts.efficiency = 1.0;
    opts.disk = storage_.memory_state.get();
    opts.hooks = guest_hooks(1.0);
    opts.trace = restore_span->context();
    run_task_internal_boot(std::move(spec), std::move(opts),
                           [restore_span, read_span,
                            on_running = std::move(on_running)]() mutable {
                             read_span->end();
                             restore_span->end();
                             on_running();
                           });
  });
}

ProcessHooks VirtualMachine::guest_hooks(double base_efficiency) {
  ProcessHooks hooks;
  hooks.on_process = [this, base_efficiency](host::ProcessId pid) {
    vmm_.register_guest(this, pid, base_efficiency);
  };
  hooks.on_process_exit = [this](host::ProcessId pid) { vmm_.unregister_guest(pid); };
  return hooks;
}

void VirtualMachine::pause_tasks() {
  prune_tasks();
  for (auto& t : tasks_) t.task->pause();
}

void VirtualMachine::resume_tasks() {
  for (auto& t : tasks_) {
    if (!t.task->finished() && t.task->paused()) {
      t.task->set_disk(storage_.disk.get());
      t.task->resume_on(host().cpu(), guest_hooks(t.base_efficiency));
    }
  }
}

void VirtualMachine::prune_tasks() {
  std::erase_if(tasks_, [](const TrackedTask& t) { return t.task->finished(); });
}

std::vector<VirtualMachine::TrackedTask> VirtualMachine::release_guest_tasks() {
  prune_tasks();
  return std::exchange(tasks_, {});
}

void VirtualMachine::adopt_guest_tasks(std::vector<TrackedTask> tasks) {
  for (auto& t : tasks) tasks_.push_back(std::move(t));
}

std::size_t VirtualMachine::active_task_count() const {
  std::size_t n = 0;
  for (const auto& t : tasks_) {
    if (!t.task->finished()) ++n;
  }
  return n;
}

void VirtualMachine::run_task_internal_boot(workload::TaskSpec spec, TaskRunOptions opts,
                                            Callback on_running) {
  lifecycle_task_ = vm::run_task(
      host().simulation(), host().cpu(), std::move(spec), std::move(opts),
      [this, alive = std::weak_ptr<int>(alive_),
       on_running = std::move(on_running)](const TaskResult&) {
        if (alive.expired() || (state_ != VmPowerState::kBooting &&
                                state_ != VmPowerState::kRestoring)) {
          return;  // powered off mid-boot: stay dead, drop the completion
        }
        lifecycle_task_.reset();
        enter_running();
        on_running();
      });
}

void VirtualMachine::enter_running() {
  state_ = VmPowerState::kRunning;
  resume_tasks();
}

void VirtualMachine::suspend(Callback on_suspended) {
  if (state_ != VmPowerState::kRunning) {
    throw std::logic_error("VirtualMachine::suspend from state " +
                           std::string{to_string(state_)});
  }
  state_ = VmPowerState::kSuspending;
  stop_loads();
  pause_tasks();
  auto& fs = host().fs();
  const auto bytes = migratable_state_bytes();
  fs.create(suspend_file(), 0);
  fs.write(suspend_file(), 0, bytes,
           [this, alive = std::weak_ptr<int>(alive_),
            on_suspended = std::move(on_suspended)] {
             if (alive.expired() || state_ != VmPowerState::kSuspending) return;
             state_ = VmPowerState::kSuspended;
             suspended_in_memory_ = false;
             on_suspended();
           });
}

void VirtualMachine::pause(Callback on_paused) {
  if (state_ != VmPowerState::kRunning) {
    throw std::logic_error("VirtualMachine::pause from state " +
                           std::string{to_string(state_)});
  }
  state_ = VmPowerState::kSuspending;
  stop_loads();
  pause_tasks();
  // Device quiesce only; memory stays resident.
  host().simulation().schedule_after(
      sim::Duration::millis(50),
      [this, alive = std::weak_ptr<int>(alive_), on_paused = std::move(on_paused)] {
        if (alive.expired() || state_ != VmPowerState::kSuspending) return;
        state_ = VmPowerState::kSuspended;
        suspended_in_memory_ = true;
        on_paused();
      });
}

void VirtualMachine::resume(Callback on_running) {
  if (state_ != VmPowerState::kSuspended) {
    throw std::logic_error("VirtualMachine::resume from state " +
                           std::string{to_string(state_)});
  }
  state_ = VmPowerState::kRestoring;
  if (suspended_in_memory_) {
    host().simulation().schedule_after(
        sim::Duration::millis(200),
        [this, alive = std::weak_ptr<int>(alive_), on_running = std::move(on_running)] {
          if (alive.expired() || state_ != VmPowerState::kRestoring) return;
          enter_running();
          on_running();
        });
    return;
  }
  auto& fs = host().fs();
  const auto bytes = migratable_state_bytes();
  fs.read(suspend_file(), 0, bytes,
          [this, alive = std::weak_ptr<int>(alive_),
           on_running = std::move(on_running)](storage::ReadResult) {
            if (alive.expired() || state_ != VmPowerState::kRestoring) return;
            enter_running();
            on_running();
          });
}

void VirtualMachine::shutdown() {
  stop_loads();
  for (auto& t : tasks_) t.task->abort();
  tasks_.clear();
  state_ = VmPowerState::kShutDown;
}

void VirtualMachine::power_off() {
  stop_loads();
  if (lifecycle_task_) {
    lifecycle_task_->abort();
    lifecycle_task_.reset();
  }
  for (auto& t : tasks_) t.task->abort();
  tasks_.clear();
  state_ = VmPowerState::kShutDown;
}

void VirtualMachine::stall(sim::Duration d) {
  if (state_ != VmPowerState::kRunning) return;
  pause_tasks();
  host().simulation().schedule_after(
      d, [this, alive = std::weak_ptr<int>(alive_)] {
        if (alive.expired() || state_ != VmPowerState::kRunning) return;
        resume_tasks();
      });
}

void VirtualMachine::adopt_suspended_state(bool in_memory) {
  if (state_ != VmPowerState::kPoweredOff) {
    throw std::logic_error("adopt_suspended_state requires a powered-off VM");
  }
  state_ = VmPowerState::kSuspended;
  suspended_in_memory_ = in_memory;
}

void VirtualMachine::run_task(workload::TaskSpec spec, TaskCallback cb) {
  if (state_ != VmPowerState::kRunning) {
    throw std::logic_error("VirtualMachine::run_task requires a running VM (state " +
                           std::string{to_string(state_)} + ")");
  }
  TaskRunOptions opts;
  opts.attrs = config_.attrs;
  opts.efficiency = OverheadModel::base_efficiency(spec);
  opts.observed_user = OverheadModel::observed_user_seconds(spec);
  opts.observed_sys = OverheadModel::observed_sys_seconds(spec);
  opts.disk = storage_.disk.get();
  const double base_eff = opts.efficiency;
  opts.hooks = guest_hooks(base_eff);
  // Prefer the submitter's ambient trace (session run_task pushes its
  // scope); bare callers fall back to the VM's instantiation identity.
  const auto ambient = host().simulation().trace().current();
  opts.trace = ambient.valid() ? ambient : trace_context_;
  auto task = vm::run_task(host().simulation(), host().cpu(), std::move(spec),
                           std::move(opts), std::move(cb));
  prune_tasks();
  tasks_.push_back(TrackedTask{std::move(task), base_eff});
}

host::TracePlayback& VirtualMachine::play_load(host::LoadTrace trace) {
  if (state_ != VmPowerState::kRunning) {
    throw std::logic_error("VirtualMachine::play_load requires a running VM");
  }
  // Background load is modelled as context-switch-heavy guest activity.
  workload::TaskSpec load_profile;
  load_profile.name = config_.name + ":bg";
  load_profile.user_seconds = 1.0;
  load_profile.sys_seconds = 0.035;
  load_profile.vm_user_dilation = 0.015;
  load_profile.vm_sys_factor = 3.0;
  const double eff = OverheadModel::base_efficiency(load_profile);

  host::TracePlayback::Options opts;
  opts.attrs = config_.attrs;
  opts.efficiency = eff;
  opts.on_spawn = [this, eff](host::ProcessId pid) {
    vmm_.register_guest(this, pid, eff);
  };
  opts.on_remove = [this](host::ProcessId pid) { vmm_.unregister_guest(pid); };
  loads_.push_back(std::make_unique<host::TracePlayback>(
      host().simulation(), host().cpu(), std::move(trace), std::move(opts)));
  loads_.back()->start();
  return *loads_.back();
}

void VirtualMachine::stop_loads() {
  for (auto& l : loads_) l->stop();
  loads_.clear();
}

}  // namespace vmgrid::vm
