#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "host/load_trace.hpp"
#include "host/physical_host.hpp"
#include "host/trace_playback.hpp"
#include "vm/overhead_model.hpp"
#include "vm/task_runner.hpp"
#include "vm/vm_disk.hpp"
#include "vm/vm_image.hpp"
#include "workload/task_spec.hpp"

namespace vmgrid::vm {

class Vmm;

enum class VmPowerState {
  kPoweredOff,
  kBooting,
  kRestoring,
  kRunning,
  kSuspending,
  kSuspended,
  kShutDown,
};

[[nodiscard]] const char* to_string(VmPowerState s);

struct VmConfig {
  std::string name{"vm"};
  std::uint64_t memory_mb{128};
  bool persistent{false};
  VmmCostModel cost{};
  host::SchedAttrs attrs{};  // host-level scheduling of this VM's work
};

/// Where a VM's state is reachable from its host. `disk` is the virtual
/// disk (COW-wrapped for non-persistent VMs); `memory_state` reads the
/// post-boot snapshot for warm restores (null for cold-boot-only images).
struct VmStorage {
  std::unique_ptr<FileAccessor> disk;
  std::unique_ptr<FileAccessor> memory_state;
};

/// One dynamic VM instance ("VM guest") executing on a physical host.
///
/// Lifecycle (paper §4): instantiate (middleware's job: stage or mount
/// state) → boot cold or restore warm → run tasks / host background load
/// → suspend / shutdown. Guest work executes as host processes whose
/// efficiency is continuously adjusted by the owning Vmm according to
/// the overhead model (world switches, guest context switches).
class VirtualMachine {
 public:
  VirtualMachine(Vmm& vmm, VmConfig config, VmImageSpec image, VmStorage storage);
  ~VirtualMachine();

  VirtualMachine(const VirtualMachine&) = delete;
  VirtualMachine& operator=(const VirtualMachine&) = delete;

  using Callback = std::function<void()>;

  /// Cold boot: guest OS reads its boot working set through the virtual
  /// disk and burns boot CPU; completes into kRunning.
  void boot(Callback on_running);

  /// Warm restore from the image's post-boot memory snapshot.
  void restore(Callback on_running);

  /// Suspend: write memory + device state to the host's file system
  /// (the file is named suspend_file()); completes into kSuspended.
  void suspend(Callback on_suspended);

  /// Pause: quiesce devices and stop execution, keeping memory resident
  /// (the fast path pre-copy migration relies on).
  void pause(Callback on_paused);

  /// Resume a suspended/paused VM. Paused VMs resume from RAM in a few
  /// hundred milliseconds; suspended VMs re-read the state file.
  void resume(Callback on_running);

  void shutdown();

  /// Hard power-off, as a host crash would inflict: aborts guest tasks and
  /// background loads without notice and leaves the VM a kShutDown corpse.
  /// Unlike destruction, this is legal in ANY state — pending lifecycle
  /// events (boot/restore/suspend timers) notice and become no-ops, so
  /// the fault engine can kill a VM mid-boot without undefined behaviour.
  void power_off();

  /// Freeze the guest for `d` of simulated time (VMM scheduling glitch,
  /// hypervisor hiccup): tasks pause and resume automatically; the power
  /// state stays kRunning throughout. No-op unless currently running.
  void stall(sim::Duration d);

  /// Migration plumbing: mark a freshly created (kPoweredOff) VM as
  /// suspended because its state just arrived from another host —
  /// either already resident in RAM (pre-copy) or as a state file on
  /// the target's disk (stop-and-copy).
  void adopt_suspended_state(bool in_memory = false);

  /// A task plus the base efficiency it registers with the VMM under.
  struct TrackedTask {
    std::shared_ptr<GuestTask> task;
    double base_efficiency{1.0};
  };

  /// Migration plumbing: hand off the (paused) guest computation. The
  /// receiving VM re-homes the tasks onto its host at resume and points
  /// their I/O at its own virtual disk.
  [[nodiscard]] std::vector<TrackedTask> release_guest_tasks();
  void adopt_guest_tasks(std::vector<TrackedTask> tasks);

  [[nodiscard]] std::size_t active_task_count() const;

  /// Execute an application in the guest. Requires kRunning.
  void run_task(workload::TaskSpec spec, TaskCallback cb);

  /// Play a host-load trace *inside* the guest (background processes
  /// subject to virtualization overhead). Returns a handle usable to
  /// stop it; the VM owns the playback.
  host::TracePlayback& play_load(host::LoadTrace trace);
  void stop_loads();

  [[nodiscard]] VmPowerState state() const { return state_; }
  [[nodiscard]] const VmConfig& config() const { return config_; }
  [[nodiscard]] const VmImageSpec& image() const { return image_; }
  [[nodiscard]] const OverheadModel& model() const { return model_; }
  [[nodiscard]] FileAccessor& disk() { return *storage_.disk; }
  [[nodiscard]] Vmm& vmm() { return vmm_; }
  [[nodiscard]] host::PhysicalHost& host();
  [[nodiscard]] std::string suspend_file() const {
    return config_.name + ".suspended.mem";
  }
  /// Bytes that must move to migrate this VM in its current state
  /// (memory + device state; the non-persistent diff travels separately).
  [[nodiscard]] std::uint64_t migratable_state_bytes() const;

  /// Causal identity of this VM instance: set by the instantiating
  /// compute server (the vm.instantiate span), used as the fallback trace
  /// for task I/O when the caller runs with no ambient context.
  void set_trace_context(obs::TraceContext ctx) { trace_context_ = ctx; }
  [[nodiscard]] obs::TraceContext trace_context() const { return trace_context_; }

 private:
  friend class Vmm;

  void enter_running();
  void run_task_internal_boot(workload::TaskSpec spec, TaskRunOptions opts,
                              Callback on_running);
  [[nodiscard]] workload::TaskSpec boot_spec() const;
  [[nodiscard]] workload::TaskSpec restore_spec() const;
  [[nodiscard]] ProcessHooks guest_hooks(double base_efficiency);
  void pause_tasks();
  void resume_tasks();
  void prune_tasks();

  Vmm& vmm_;
  VmConfig config_;
  VmImageSpec image_;
  VmStorage storage_;
  OverheadModel model_;
  VmPowerState state_{VmPowerState::kPoweredOff};
  bool suspended_in_memory_{false};
  std::vector<std::unique_ptr<host::TracePlayback>> loads_;
  std::vector<TrackedTask> tasks_;
  /// Liveness token captured weakly by every scheduled lifecycle lambda:
  /// once the VM is destroyed the token dies and stale events no-op
  /// instead of dereferencing a freed object.
  std::shared_ptr<int> alive_{std::make_shared<int>(0)};
  /// The in-flight boot/restore workset task, so power_off can abort it.
  std::shared_ptr<GuestTask> lifecycle_task_;
  obs::TraceContext trace_context_{};
};

}  // namespace vmgrid::vm
