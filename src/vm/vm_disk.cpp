#include "vm/vm_disk.hpp"

#include <algorithm>
#include <utility>
#include <vector>

namespace vmgrid::vm {

namespace {

using storage::kBlockSize;

class LocalAccessor final : public FileAccessor {
 public:
  LocalAccessor(storage::LocalFileSystem& fs, std::string path)
      : fs_{fs}, path_{std::move(path)} {}

  void read(std::uint64_t offset, std::uint64_t len, IoCallback cb) override {
    fs_.read(path_, offset, len, [cb = std::move(cb)](storage::ReadResult r) {
      cb(VmIoStats{{}, r.bytes, 0, 0.0});
    });
  }

  void write(std::uint64_t offset, std::uint64_t len, IoCallback cb) override {
    fs_.write(path_, offset, len,
              [cb = std::move(cb), len] { cb(VmIoStats{{}, len, 0, 0.0}); });
  }

  [[nodiscard]] std::string describe() const override { return "local:" + path_; }

 private:
  storage::LocalFileSystem& fs_;
  std::string path_;
};

class NfsAccessor final : public FileAccessor {
 public:
  NfsAccessor(storage::NfsClient& client, std::string path, double cpu_per_rpc)
      : client_{client}, path_{std::move(path)}, cpu_per_rpc_{cpu_per_rpc} {}

  // Completion lambdas capture the CPU cost by value, not `this`: a fault
  // can destroy the VM (and this accessor) while an RPC is in flight, and
  // the late completion must not touch freed accessor state.
  void read(std::uint64_t offset, std::uint64_t len, IoCallback cb) override {
    client_.read(path_, offset, len,
                 [cpu = cpu_per_rpc_, cb = std::move(cb)](storage::NfsIoResult r) {
                   cb(VmIoStats{std::move(r.status), r.bytes, r.rpcs,
                                static_cast<double>(r.rpcs) * cpu});
                 });
  }

  void write(std::uint64_t offset, std::uint64_t len, IoCallback cb) override {
    client_.write(path_, offset, len,
                  [cpu = cpu_per_rpc_, cb = std::move(cb)](storage::NfsIoResult r) {
                    cb(VmIoStats{std::move(r.status), r.bytes, r.rpcs,
                                 static_cast<double>(r.rpcs) * cpu});
                  });
  }

  [[nodiscard]] std::string describe() const override { return "nfs:" + path_; }

 private:
  storage::NfsClient& client_;
  std::string path_;
  double cpu_per_rpc_;
};

class VfsAccessor final : public FileAccessor {
 public:
  VfsAccessor(vfs::VfsProxy& proxy, std::string path, double cpu_per_rpc)
      : proxy_{proxy}, path_{std::move(path)}, cpu_per_rpc_{cpu_per_rpc} {}

  // Same lifetime rule as NfsAccessor: never capture `this` in a
  // completion that can outlive the accessor.
  void read(std::uint64_t offset, std::uint64_t len, IoCallback cb) override {
    proxy_.read(path_, offset, len,
                [cpu = cpu_per_rpc_, cb = std::move(cb)](vfs::VfsIoStats s) {
                  cb(VmIoStats{std::move(s.status), s.bytes, s.rpcs,
                               static_cast<double>(s.rpcs) * cpu});
                });
  }

  void write(std::uint64_t offset, std::uint64_t len, IoCallback cb) override {
    proxy_.write(path_, offset, len,
                 [cpu = cpu_per_rpc_, cb = std::move(cb)](vfs::VfsIoStats s) {
                   cb(VmIoStats{std::move(s.status), s.bytes, s.rpcs,
                                static_cast<double>(s.rpcs) * cpu});
                 });
  }

  [[nodiscard]] std::string describe() const override { return "gvfs:" + path_; }

 private:
  vfs::VfsProxy& proxy_;
  std::string path_;
  double cpu_per_rpc_;
};

}  // namespace

std::unique_ptr<FileAccessor> make_local_accessor(storage::LocalFileSystem& fs,
                                                  std::string path) {
  return std::make_unique<LocalAccessor>(fs, std::move(path));
}

std::unique_ptr<FileAccessor> make_nfs_accessor(storage::NfsClient& client,
                                                std::string path,
                                                double client_cpu_per_rpc) {
  return std::make_unique<NfsAccessor>(client, std::move(path), client_cpu_per_rpc);
}

std::unique_ptr<FileAccessor> make_vfs_accessor(vfs::VfsProxy& proxy, std::string path,
                                                double client_cpu_per_rpc) {
  return std::make_unique<VfsAccessor>(proxy, std::move(path), client_cpu_per_rpc);
}

CowDisk::CowDisk(std::unique_ptr<FileAccessor> base, std::unique_ptr<FileAccessor> diff)
    : base_{std::move(base)}, diff_{std::move(diff)} {}

std::string CowDisk::describe() const {
  return "cow(" + base_->describe() + " + " + diff_->describe() + ")";
}

void CowDisk::seed_written(std::uint64_t offset, std::uint64_t len) {
  if (len == 0) return;
  const std::uint64_t first = offset / kBlockSize;
  const std::uint64_t last = (offset + len - 1) / kBlockSize;
  for (std::uint64_t b = first; b <= last; ++b) written_.insert(b);
}

void CowDisk::write(std::uint64_t offset, std::uint64_t len, IoCallback cb) {
  if (len > 0) {
    const std::uint64_t first = offset / kBlockSize;
    const std::uint64_t last = (offset + len - 1) / kBlockSize;
    for (std::uint64_t b = first; b <= last; ++b) written_.insert(b);
  }
  diff_->write(offset, len, std::move(cb));
}

void CowDisk::read(std::uint64_t offset, std::uint64_t len, IoCallback cb) {
  if (len == 0) {
    base_->read(offset, len, std::move(cb));
    return;
  }
  // Partition the range into maximal runs that are uniformly diff or base.
  struct Run {
    bool from_diff;
    std::uint64_t offset;
    std::uint64_t len;
  };
  std::vector<Run> runs;
  const std::uint64_t first = offset / kBlockSize;
  const std::uint64_t last = (offset + len - 1) / kBlockSize;
  for (std::uint64_t b = first; b <= last; ++b) {
    const bool in_diff = written_.contains(b);
    const std::uint64_t run_off = std::max(offset, b * kBlockSize);
    const std::uint64_t run_end = std::min(offset + len, (b + 1) * kBlockSize);
    if (!runs.empty() && runs.back().from_diff == in_diff &&
        runs.back().offset + runs.back().len == run_off) {
      runs.back().len += run_end - run_off;
    } else {
      runs.push_back(Run{in_diff, run_off, run_end - run_off});
    }
  }
  auto agg = std::make_shared<VmIoStats>();
  auto remaining = std::make_shared<std::size_t>(runs.size());
  auto done = std::make_shared<IoCallback>(std::move(cb));
  for (const Run& r : runs) {
    FileAccessor& target = r.from_diff ? *diff_ : *base_;
    target.read(r.offset, r.len, [agg, remaining, done](VmIoStats s) {
      // Keep the first failure: later runs may fail for derivative reasons.
      if (agg->ok() && !s.ok()) agg->status = std::move(s.status);
      agg->bytes += s.bytes;
      agg->rpcs += s.rpcs;
      agg->client_cpu_seconds += s.client_cpu_seconds;
      if (--*remaining == 0) (*done)(*agg);
    });
  }
}

}  // namespace vmgrid::vm
