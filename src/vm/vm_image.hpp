#pragma once

#include <cstdint>
#include <string>

namespace vmgrid::vm {

/// Static description of an archived VM image (what lives on an image
/// server): the virtual disk, an optional post-boot memory snapshot for
/// warm restores, and the boot-process profile of the guest OS.
///
/// Calibration (DESIGN.md §5): a 2 GiB RedHat 7.x virtual disk with a
/// 128 MiB memory snapshot, a cold boot that touches ~48 MiB of the disk
/// and burns ~38 s of CPU plus ~24 s of device-probe/daemon-start delays
/// — sized so Table 2's startup latencies come out of the mechanisms
/// rather than being hard-coded.
struct VmImageSpec {
  std::string name{"rh7.2"};
  std::string os{"redhat-7.2"};
  std::uint64_t disk_bytes{2ull << 30};
  std::uint64_t memory_state_bytes{128ull << 20};
  std::uint64_t boot_read_bytes{48ull << 20};
  double boot_cpu_seconds{38.0};
  double boot_fixed_seconds{24.0};  // device probes, daemon timeouts
  double restore_cpu_seconds{1.5};
  double restore_fixed_seconds{2.0};
  std::uint64_t device_state_bytes{2ull << 20};  // non-memory device state

  [[nodiscard]] std::string disk_file() const { return name + ".disk"; }
  [[nodiscard]] std::string memory_file() const { return name + ".mem"; }
};

}  // namespace vmgrid::vm
