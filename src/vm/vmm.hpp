#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "host/physical_host.hpp"
#include "vm/virtual_machine.hpp"

namespace vmgrid::vm {

struct VmmParams {
  std::uint64_t per_vm_overhead_mb{32};  // monitor + frame-buffer footprint
  std::size_t max_vms{16};
};

/// The virtual machine monitor installed on one physical host.
///
/// Owns the dynamic VM instances, accounts their memory against the
/// host, and — through the host CPU engine's pre-allocation hook —
/// continuously re-derives each guest process' efficiency from the
/// overhead model and the current co-runner situation. This is where
/// "world switches" (external load preempting the VMM) and trapped
/// guest context switches become visible as slowdown.
class Vmm {
 public:
  explicit Vmm(host::PhysicalHost& host, VmmParams params = {});
  ~Vmm();

  Vmm(const Vmm&) = delete;
  Vmm& operator=(const Vmm&) = delete;

  /// Create a powered-off VM whose state is reachable via `storage`.
  /// Throws std::runtime_error when memory or VM slots are exhausted.
  VirtualMachine& create_vm(VmConfig config, VmImageSpec image, VmStorage storage);

  void destroy_vm(VirtualMachine& vm);

  [[nodiscard]] host::PhysicalHost& host() { return host_; }
  [[nodiscard]] std::size_t vm_count() const { return vms_.size(); }
  [[nodiscard]] const VmmParams& params() const { return params_; }
  [[nodiscard]] std::vector<VirtualMachine*> vms();

  /// Guest-process registry (called by VirtualMachine/task plumbing).
  void register_guest(VirtualMachine* vm, host::ProcessId pid, double base_efficiency);
  void unregister_guest(host::ProcessId pid);

 private:
  void adjust_efficiencies(host::CpuEngine& engine);

  struct GuestProc {
    VirtualMachine* vm;
    double base_efficiency;
  };

  host::PhysicalHost& host_;
  VmmParams params_;
  std::vector<std::unique_ptr<VirtualMachine>> vms_;
  std::unordered_map<host::ProcessId, GuestProc> guests_;
};

}  // namespace vmgrid::vm
