#include "vm/vmm.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace vmgrid::vm {

Vmm::Vmm(host::PhysicalHost& host, VmmParams params) : host_{host}, params_{params} {
  host_.cpu().set_pre_allocate_hook(
      [this](host::CpuEngine& engine) { adjust_efficiencies(engine); });
}

Vmm::~Vmm() {
  host_.cpu().set_pre_allocate_hook(nullptr);
  for (auto& vm : vms_) {
    host_.release_memory(vm->config().memory_mb + params_.per_vm_overhead_mb);
  }
}

VirtualMachine& Vmm::create_vm(VmConfig config, VmImageSpec image, VmStorage storage) {
  if (vms_.size() >= params_.max_vms) {
    throw std::runtime_error("Vmm: VM slots exhausted on " + host_.name());
  }
  const auto footprint = config.memory_mb + params_.per_vm_overhead_mb;
  if (!host_.reserve_memory(footprint)) {
    throw std::runtime_error("Vmm: insufficient memory on " + host_.name());
  }
  vms_.push_back(std::make_unique<VirtualMachine>(*this, std::move(config),
                                                  std::move(image), std::move(storage)));
  return *vms_.back();
}

void Vmm::destroy_vm(VirtualMachine& vm) {
  auto it = std::find_if(vms_.begin(), vms_.end(),
                         [&vm](const auto& p) { return p.get() == &vm; });
  if (it == vms_.end()) return;
  (*it)->shutdown();
  host_.release_memory((*it)->config().memory_mb + params_.per_vm_overhead_mb);
  // Drop any guest registrations that still point at this VM.
  for (auto g = guests_.begin(); g != guests_.end();) {
    g = g->second.vm == it->get() ? guests_.erase(g) : std::next(g);
  }
  vms_.erase(it);
}

std::vector<VirtualMachine*> Vmm::vms() {
  std::vector<VirtualMachine*> out;
  out.reserve(vms_.size());
  for (auto& v : vms_) out.push_back(v.get());
  return out;
}

void Vmm::register_guest(VirtualMachine* vm, host::ProcessId pid,
                         double base_efficiency) {
  guests_[pid] = GuestProc{vm, base_efficiency};
}

void Vmm::unregister_guest(host::ProcessId pid) { guests_.erase(pid); }

void Vmm::adjust_efficiencies(host::CpuEngine& engine) {
  if (guests_.empty()) return;
  const auto views = engine.runnable_views();

  // Demand per VM and total, over currently runnable processes.
  std::unordered_map<VirtualMachine*, double> vm_demand;
  std::unordered_map<VirtualMachine*, std::size_t> vm_runnable;
  double total_demand = 0.0;
  for (const auto& v : views) {
    const double d = std::min(1.0, v.attrs.demand_cap);
    total_demand += d;
    if (auto it = guests_.find(v.id); it != guests_.end()) {
      vm_demand[it->second.vm] += d;
      ++vm_runnable[it->second.vm];
    }
  }

  for (const auto& v : views) {
    auto it = guests_.find(v.id);
    if (it == guests_.end()) continue;
    VirtualMachine* vm = it->second.vm;
    const double external = total_demand - vm_demand[vm];
    const std::size_t corunners = vm_runnable[vm] > 0 ? vm_runnable[vm] - 1 : 0;
    const double factor = vm->model().contention_factor(external, corunners);
    const double eff = std::clamp(it->second.base_efficiency / factor, 1e-6, 1.0);
    engine.set_efficiency_quiet(v.id, eff);
  }
}

}  // namespace vmgrid::vm
