#include "vm/overhead_model.hpp"

#include <algorithm>

namespace vmgrid::vm {

double OverheadModel::base_efficiency(const workload::TaskSpec& t) {
  const double native = t.user_seconds + t.sys_seconds;
  if (native <= 0.0) return 1.0;
  const double observed = observed_user_seconds(t) + observed_sys_seconds(t);
  return std::min(1.0, native / observed);
}

double OverheadModel::contention_factor(double external_demand,
                                        std::size_t guest_corunners) const {
  const double ws = 1.0 + m_.world_switch_penalty * std::clamp(external_demand, 0.0, 1.0);
  const double cs = 1.0 + m_.guest_cs_penalty * static_cast<double>(guest_corunners);
  return ws * cs;
}

}  // namespace vmgrid::vm
