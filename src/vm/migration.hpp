#pragma once

#include <functional>

#include "core/status.hpp"
#include "net/network.hpp"
#include "vm/vmm.hpp"

namespace vmgrid::vm {

struct MigrationParams {
  /// Iterative pre-copy (an extension beyond the paper's suspend/resume
  /// migration; the migration bench ablates it against stop-and-copy).
  bool precopy{false};
  double dirty_rate_bps{4e6};  // how fast the running guest re-dirties memory
  std::uint32_t max_precopy_rounds{5};
  std::uint64_t stop_threshold_bytes{8ull << 20};
  /// Extra state that must travel besides memory + device state (e.g.
  /// the non-persistent COW diff file).
  std::uint64_t extra_state_bytes{0};
};

struct MigrationStats {
  /// OK once the VM runs on the target; a failure says why the migration
  /// rolled back (the source keeps running). Pessimistic default so a
  /// dropped continuation cannot read as success.
  Status status{StatusCode::kAborted, "migration not completed"};
  sim::Duration total{};
  sim::Duration downtime{};
  std::uint64_t bytes_transferred{0};
  std::uint32_t precopy_rounds{0};

  [[nodiscard]] bool ok() const { return status.ok(); }
};

/// Migrate `vm` to `target_vmm`'s host. `target_storage` must make the
/// VM's disk reachable from the target (same grid-vfs path, re-mounted).
/// On success the source VM is destroyed, the new VM is running, and the
/// callback receives it; on failure the source VM keeps running.
using MigrationCallback = std::function<void(MigrationStats, VirtualMachine*)>;

void migrate(VirtualMachine& vm, Vmm& target_vmm, VmStorage target_storage,
             MigrationParams params, MigrationCallback cb);

}  // namespace vmgrid::vm
