#include "vm/migration.hpp"

#include <algorithm>
#include <memory>
#include <utility>

namespace vmgrid::vm {

namespace {

struct MigrationState : std::enable_shared_from_this<MigrationState> {
  VirtualMachine* source;
  Vmm* target_vmm;
  VmStorage target_storage;
  MigrationParams params;
  MigrationCallback cb;

  net::Network* net{nullptr};
  sim::Simulation* sim{nullptr};
  net::NodeId src_node{}, dst_node{};
  sim::TimePoint started{};
  sim::TimePoint stop_started{};
  MigrationStats stats;
  std::uint64_t residual_bytes{0};

  void begin() {
    sim = &source->host().simulation();
    net = &source->host().network();
    src_node = source->host().node();
    dst_node = target_vmm->host().node();
    started = sim->now();
    residual_bytes = source->migratable_state_bytes();
    if (params.precopy) {
      precopy_round();
    } else {
      stop_and_copy();
    }
  }

  void precopy_round() {
    if (stats.precopy_rounds >= params.max_precopy_rounds ||
        residual_bytes <= params.stop_threshold_bytes) {
      stop_and_copy();
      return;
    }
    ++stats.precopy_rounds;
    const std::uint64_t sending = residual_bytes;
    auto self = shared_from_this();
    net->send(src_node, dst_node, sending, [self, sending](const net::TransferResult& r) {
      self->stats.bytes_transferred += sending;
      // While the round was in flight the running guest re-dirtied pages.
      const auto dirtied = static_cast<std::uint64_t>(
          self->params.dirty_rate_bps * r.elapsed.to_seconds());
      self->residual_bytes =
          std::min(self->source->migratable_state_bytes(), dirtied);
      self->precopy_round();
    });
  }

  void stop_and_copy() {
    stop_started = sim->now();
    auto self = shared_from_this();
    // Pre-copy streams the residual straight from RAM after a brief
    // pause; classic suspend/resume (the paper's mechanism) serializes
    // the whole state through the source's disk first.
    auto after_stop = [self] {
      const std::uint64_t bytes = self->residual_bytes + self->params.extra_state_bytes;
      self->net->send(self->src_node, self->dst_node, bytes,
                      [self, bytes](const net::TransferResult&) {
                        self->stats.bytes_transferred += bytes;
                        self->land_on_target();
                      });
    };
    if (params.precopy) {
      source->pause(std::move(after_stop));
    } else {
      source->suspend(std::move(after_stop));
    }
  }

  void land_on_target() {
    auto self = shared_from_this();
    try {
      VirtualMachine& fresh = target_vmm->create_vm(
          source->config(), source->image(), std::move(target_storage));
      // The computation moves with the machine: hand the paused guest
      // tasks to the new instance (they re-home at resume).
      fresh.adopt_guest_tasks(source->release_guest_tasks());
      if (params.precopy) {
        // Received pages are already resident on the target.
        fresh.adopt_suspended_state(/*in_memory=*/true);
        fresh.resume([self, &fresh] { self->complete(fresh); });
        return;
      }
      // Materialize the received state file on the target's file system,
      // then resume from it.
      auto& tfs = target_vmm->host().fs();
      const auto bytes = source->migratable_state_bytes();
      tfs.create(fresh.suspend_file(), 0);
      tfs.write(fresh.suspend_file(), 0, bytes, [self, &fresh] {
        fresh.adopt_suspended_state(/*in_memory=*/false);
        fresh.resume([self, &fresh] { self->complete(fresh); });
      });
    } catch (const std::exception& e) {
      // Admission failure on the target: resume at the source.
      stats.status = FailedPreconditionError(e.what()).at("vm", "migrate");
      record_error(sim->metrics(), stats.status);
      source->resume([self] {
        self->stats.total = self->sim->now() - self->started;
        self->stats.downtime = self->sim->now() - self->stop_started;
        self->cb(self->stats, nullptr);
      });
    }
  }

  void complete(VirtualMachine& fresh) {
    stats.status = {};
    stats.total = sim->now() - started;
    stats.downtime = sim->now() - stop_started;
    // The source instance is gone for good (its state moved).
    source->vmm().destroy_vm(*source);
    cb(stats, &fresh);
  }
};

}  // namespace

void migrate(VirtualMachine& vm, Vmm& target_vmm, VmStorage target_storage,
             MigrationParams params, MigrationCallback cb) {
  auto st = std::make_shared<MigrationState>();
  st->source = &vm;
  st->target_vmm = &target_vmm;
  st->target_storage = std::move(target_storage);
  st->params = params;
  st->cb = std::move(cb);
  st->begin();
}

}  // namespace vmgrid::vm
