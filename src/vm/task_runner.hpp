#pragma once

#include <functional>
#include <memory>
#include <string>

#include "host/cpu_engine.hpp"
#include "obs/trace_context.hpp"
#include "sim/simulation.hpp"
#include "vm/vm_disk.hpp"
#include "workload/task_spec.hpp"

namespace vmgrid::vm {

/// What `time` would report for a completed run, plus grid-visible I/O
/// accounting.
struct TaskResult {
  std::string task;
  /// OK, or why the run failed: I/O failures forward the storage cause
  /// chain (vfs/nfs origin, rpc root cause); infrastructure failures
  /// (host crash, dead session) are stamped by the layer detecting them.
  Status status;
  sim::Duration wall{};
  double user_cpu_seconds{0.0};
  double sys_cpu_seconds{0.0};
  std::uint64_t io_rpcs{0};
  std::uint64_t io_bytes{0};

  [[nodiscard]] bool ok() const { return status.ok(); }
  [[nodiscard]] double total_cpu_seconds() const {
    return user_cpu_seconds + sys_cpu_seconds;
  }
};

/// Process lifecycle hooks (a VMM uses these to register guest processes
/// for efficiency adjustment).
struct ProcessHooks {
  std::function<void(host::ProcessId)> on_process;       // after creation
  std::function<void(host::ProcessId)> on_process_exit;  // before removal
};

/// How to execute a TaskSpec on a CpuEngine. Physical runs use the
/// defaults; VM runs set efficiency/observed times from the overhead
/// model and route I/O through the virtual disk.
struct TaskRunOptions {
  host::SchedAttrs attrs{};
  double efficiency{1.0};
  /// CPU seconds `time` will report; negative means "native" (= spec).
  double observed_user{-1.0};
  double observed_sys{-1.0};
  FileAccessor* disk{nullptr};  // nullptr: I/O phases are skipped
  std::uint64_t io_read_offset{0};
  ProcessHooks hooks{};
  /// Causal context the task's I/O is issued under: phase boundaries run
  /// from scheduled events where the submitting scope is long gone, so
  /// the runner re-enters this context around every disk read/write.
  obs::TraceContext trace{};
};

using TaskCallback = std::function<void(TaskResult)>;

/// Handle to an in-flight task. VMs hold these so suspend/resume and
/// migration carry the computation along (the paper's "entire computing
/// environments move" property):
///  * pause() freezes progress and releases the CPU engine process;
///  * resume_on() re-homes the task onto an engine (possibly of another
///    host after migration) with fresh VMM hooks;
///  * abort() kills the task; its callback never fires.
class GuestTask {
 public:
  virtual ~GuestTask() = default;
  virtual void pause() = 0;
  virtual void resume_on(host::CpuEngine& engine, ProcessHooks hooks) = 0;
  virtual void abort() = 0;
  [[nodiscard]] virtual bool finished() const = 0;
  [[nodiscard]] virtual bool paused() const = 0;
  /// Pointer to the virtual-disk accessor the task's I/O goes through;
  /// re-pointed when the task lands on a different host after migration.
  virtual void set_disk(FileAccessor* disk) = 0;
};

/// Run a task as alternating CPU and I/O phases; completion delivers the
/// result. The returned handle is only needed by callers that pause,
/// migrate, or abort the run (plain callers may discard it).
std::shared_ptr<GuestTask> run_task(sim::Simulation& sim, host::CpuEngine& engine,
                                    workload::TaskSpec spec, TaskRunOptions options,
                                    TaskCallback cb);

}  // namespace vmgrid::vm
