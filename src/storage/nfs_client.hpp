#pragma once

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>

#include "core/status.hpp"
#include "net/overload.hpp"
#include "net/rpc.hpp"
#include "obs/metrics.hpp"
#include "storage/nfs_protocol.hpp"

namespace vmgrid::storage {

struct NfsClientParams {
  std::uint64_t block_bytes{kBlockSize};
  std::size_t window{8};  // outstanding block RPCs (biods)
  sim::Duration attr_cache_ttl{sim::Duration::seconds(3)};
  /// Deadline/retry policy applied to every NFS RPC this client issues.
  /// Defaults to the historical no-deadline single-attempt behaviour;
  /// fault-aware worlds plumb net::RpcCallOptions::nfs() (or their own)
  /// through here, which VfsMountOptions carries into every mount.
  net::RpcCallOptions rpc{};
  /// When enabled, the client owns one token-bucket retry budget shared
  /// by all its RPCs, bounding the total retry volume it can throw at a
  /// struggling server (disabled by default — historical behaviour).
  bool enable_retry_budget{false};
  net::RetryBudgetParams retry_budget{};
};

/// Aggregate result of a (possibly multi-RPC) NFS read or write.
struct NfsIoResult {
  /// OK, or an nfs-origin failure whose cause chain carries the first
  /// failing RPC's status (e.g. nfs: read failed ← rpc: deadline exceeded).
  Status status;
  std::uint64_t bytes{0};
  std::uint64_t rpcs{0};
  std::vector<std::uint64_t> block_versions;  // reads only, in block order

  [[nodiscard]] bool ok() const { return status.ok(); }
};

/// Kernel NFS client model: block-granular reads/writes with a bounded
/// window of outstanding RPCs and a TTL attribute cache.
class NfsClient {
 public:
  NfsClient(net::RpcFabric& fabric, net::NodeId self, net::NodeId server,
            NfsClientParams params = {});

  using IoCallback = std::function<void(NfsIoResult)>;
  using AttrCallback = std::function<void(std::optional<std::uint64_t>)>;
  using BoolCallback = std::function<void(bool)>;

  /// getattr with client-side attribute caching (the staleness window all
  /// NFS coherence discussions revolve around).
  void getattr(const std::string& path, AttrCallback cb);

  void read(const std::string& path, std::uint64_t offset, std::uint64_t len,
            IoCallback cb);
  void write(const std::string& path, std::uint64_t offset, std::uint64_t len,
             IoCallback cb);
  /// Deadline-propagating variants: `deadline_budget` is the caller's
  /// remaining end-to-end budget, clamped onto every RPC's
  /// total_deadline. A proxy hop passes its shrinking remainder here so
  /// the deadline never resets across layers.
  void read(const std::string& path, std::uint64_t offset, std::uint64_t len,
            sim::Duration deadline_budget, IoCallback cb);
  void write(const std::string& path, std::uint64_t offset, std::uint64_t len,
             sim::Duration deadline_budget, IoCallback cb);
  void create(const std::string& path, std::uint64_t size, BoolCallback cb);

  void invalidate_attr(const std::string& path) { attr_cache_.erase(path); }

  [[nodiscard]] std::uint64_t rpcs_issued() const { return rpcs_; }
  [[nodiscard]] net::NodeId server() const { return server_; }
  [[nodiscard]] net::NodeId node() const { return self_; }
  [[nodiscard]] const NfsClientParams& params() const { return params_; }
  /// The client-owned retry budget; nullptr unless enable_retry_budget.
  [[nodiscard]] net::RetryBudget* retry_budget() {
    return budget_ ? &*budget_ : nullptr;
  }

 private:
  struct AttrEntry {
    std::uint64_t size;
    sim::TimePoint fetched;
  };

  void run_window(std::shared_ptr<struct NfsTransferState> st);
  /// params_.rpc with the owned retry budget attached and total_deadline
  /// clamped to the caller's remaining end-to-end budget.
  [[nodiscard]] net::RpcCallOptions effective_opts(
      sim::Duration deadline_budget = sim::Duration::infinite()) const;

  net::RpcFabric& fabric_;
  net::NodeId self_;
  net::NodeId server_;
  NfsClientParams params_;
  mutable std::optional<net::RetryBudget> budget_;
  std::unordered_map<std::string, AttrEntry> attr_cache_;
  std::uint64_t rpcs_{0};
  // Per-op RPC latency histograms (nfs.client.rpc_latency_s{op=...}),
  // registry-owned; cached at construction.
  obs::HistogramMetric* lat_read_{nullptr};
  obs::HistogramMetric* lat_write_{nullptr};
  obs::HistogramMetric* lat_getattr_{nullptr};
  obs::HistogramMetric* lat_create_{nullptr};
};

}  // namespace vmgrid::storage
