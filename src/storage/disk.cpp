#include "storage/disk.hpp"

#include <algorithm>
#include <utility>

namespace vmgrid::storage {

sim::Duration Disk::service_time(std::uint64_t bytes, bool sequential) const {
  const auto transfer =
      sim::Duration::seconds(static_cast<double>(bytes) / params_.bandwidth_bps);
  if (sequential) return transfer + params_.cache_hit;
  return transfer + params_.seek;
}

void Disk::access(std::uint64_t bytes, bool sequential, IoCallback cb) {
  ++ops_;
  bytes_ += bytes;
  bool fast = sequential;
  if (!fast && params_.cache_hit_rate > 0.0) {
    fast = sim_.rng().bernoulli(params_.cache_hit_rate);
  }
  const auto svc = service_time(bytes, fast);
  const sim::TimePoint begin = std::max(sim_.now(), busy_until_);
  busy_until_ = begin + svc;
  sim_.schedule_at(busy_until_, std::move(cb));
}

}  // namespace vmgrid::storage
