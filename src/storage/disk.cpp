#include "storage/disk.hpp"

#include <algorithm>
#include <span>
#include <utility>

#include "model/fluid.hpp"

namespace vmgrid::storage {

Disk::Disk(sim::Simulation& s, DiskParams params)
    : sim_{s}, params_{params}, fidelity_{model::fidelity_from_env()} {}

Disk::~Disk() = default;

sim::Duration Disk::service_time(std::uint64_t bytes, bool sequential) const {
  const auto transfer =
      sim::Duration::seconds(static_cast<double>(bytes) / params_.bandwidth_bps);
  if (sequential) return transfer + params_.cache_hit;
  return transfer + params_.seek;
}

void Disk::access(std::uint64_t bytes, bool sequential, IoCallback cb) {
  ++ops_;
  bytes_ += bytes;
  bool fast = sequential;
  if (!fast && params_.cache_hit_rate > 0.0) {
    fast = sim_.rng().bernoulli(params_.cache_hit_rate);
  }
  if (fidelity_ == model::Fidelity::kFluid) {
    // The head position cost becomes byte-equivalent work, so seeks
    // dilate under contention exactly like the transfer itself (a busy
    // head serves everyone proportionally slower).
    const sim::Duration positioning = fast ? params_.cache_hit : params_.seek;
    const double work = static_cast<double>(bytes) +
                        positioning.to_seconds() * params_.bandwidth_bps;
    if (work <= 0.0) {
      sim_.schedule_after(sim::Duration::zero(), std::move(cb));
      return;
    }
    if (!fluid_) {
      fluid_ = std::make_unique<model::FluidArena>(sim_);
      fluid_res_ = fluid_->add_resource(params_.bandwidth_bps);
    }
    const model::ResourceId res[] = {fluid_res_};
    fluid_->start(std::span<const model::ResourceId>(res), work, 0.0, 1.0,
                  std::move(cb));
    return;
  }
  const auto svc = service_time(bytes, fast);
  const sim::TimePoint begin = std::max(sim_.now(), busy_until_);
  busy_until_ = begin + svc;
  sim_.schedule_at(busy_until_, std::move(cb));
}

}  // namespace vmgrid::storage
