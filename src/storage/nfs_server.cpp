#include "storage/nfs_server.hpp"

#include <any>
#include <string>
#include <utility>

#include "sim/simulation.hpp"

namespace vmgrid::storage {

obs::Counter& NfsServer::call_counter(const char* op) {
  auto& m = server_->fabric().simulation().metrics();
  return m.counter("nfs.server.calls",
                   {{"op", op}, {"node", std::to_string(node().value())}});
}

obs::HistogramMetric& NfsServer::service_hist(const char* op) {
  auto& m = server_->fabric().simulation().metrics();
  return m.histogram("nfs.server.service_s", obs::HistogramOptions{0.0, 1.0, 100},
                     {{"op", op}, {"node", std::to_string(node().value())}});
}

NfsServer::NfsServer(net::RpcFabric& fabric, net::NodeId self, LocalFileSystem& fs,
                     net::RpcServerParams rpc_params)
    : fs_{fs},
      owned_server_{std::make_unique<net::RpcServer>(fabric, self, rpc_params)},
      server_{owned_server_.get()} {
  register_handlers();
}

NfsServer::NfsServer(net::RpcServer& shared_server, LocalFileSystem& fs)
    : fs_{fs}, server_{&shared_server} {
  register_handlers();
}

void NfsServer::register_handlers() {
  server_->register_method("nfs.getattr", [this, calls = &call_counter("getattr")](
                                              const net::RpcRequest& req,
                                              net::RpcResponder respond) {
    calls->inc();
    const auto& args = std::any_cast<const NfsGetattrArgs&>(req.payload);
    NfsAttrReply reply;
    if (auto sz = fs_.size(args.path)) {
      reply.exists = true;
      reply.size = *sz;
    }
    respond(net::RpcResponse{.response_bytes = kNfsHeaderBytes,
                             .payload = reply});
  });

  server_->register_method("nfs.read", [this, calls = &call_counter("read"),
                                        service = &service_hist("read")](
                                           const net::RpcRequest& req,
                                           net::RpcResponder respond) {
    calls->inc();
    const auto& args = std::any_cast<const NfsReadArgs&>(req.payload);
    if (!fs_.exists(args.path)) {
      respond(net::RpcResponse{.error = "ENOENT: " + args.path,
                               .response_bytes = kNfsHeaderBytes,
                               .payload = {},
                               .status = net::RpcStatus::kServerError});
      return;
    }
    auto& sim = server_->fabric().simulation();
    const sim::TimePoint entered = sim.now();
    fs_.read(args.path, args.offset, args.len,
             [&sim, entered, service, respond = std::move(respond)](ReadResult r) {
               service->observe((sim.now() - entered).to_seconds());
               const std::uint64_t bytes = r.bytes;
               respond(net::RpcResponse{.response_bytes = kNfsHeaderBytes + bytes,
                                        .payload = NfsReadReply{std::move(r)}});
             });
  });

  server_->register_method("nfs.write", [this, calls = &call_counter("write"),
                                         service = &service_hist("write")](
                                            const net::RpcRequest& req,
                                            net::RpcResponder respond) {
    calls->inc();
    const auto& args = std::any_cast<const NfsWriteArgs&>(req.payload);
    if (!fs_.exists(args.path)) {
      respond(net::RpcResponse{.error = "ENOENT: " + args.path,
                               .response_bytes = kNfsHeaderBytes,
                               .payload = {},
                               .status = net::RpcStatus::kServerError});
      return;
    }
    auto& sim = server_->fabric().simulation();
    const sim::TimePoint entered = sim.now();
    fs_.write(args.path, args.offset, args.len,
              [&sim, entered, service, respond = std::move(respond)] {
                service->observe((sim.now() - entered).to_seconds());
                respond(net::RpcResponse{.response_bytes = kNfsHeaderBytes,
                                         .payload = {}});
              });
  });

  server_->register_method("nfs.create", [this, calls = &call_counter("create")](
                                             const net::RpcRequest& req,
                                             net::RpcResponder respond) {
    calls->inc();
    const auto& args = std::any_cast<const NfsCreateArgs&>(req.payload);
    fs_.create(args.path, args.size);
    respond(net::RpcResponse{.response_bytes = kNfsHeaderBytes,
                             .payload = {}});
  });

  server_->register_method("nfs.remove", [this, calls = &call_counter("remove")](
                                             const net::RpcRequest& req,
                                             net::RpcResponder respond) {
    calls->inc();
    const auto& args = std::any_cast<const NfsRemoveArgs&>(req.payload);
    fs_.remove(args.path);
    respond(net::RpcResponse{.response_bytes = kNfsHeaderBytes,
                             .payload = {}});
  });
}

}  // namespace vmgrid::storage
