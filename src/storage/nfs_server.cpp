#include "storage/nfs_server.hpp"

#include <any>
#include <utility>

namespace vmgrid::storage {

NfsServer::NfsServer(net::RpcFabric& fabric, net::NodeId self, LocalFileSystem& fs,
                     net::RpcServerParams rpc_params)
    : fs_{fs},
      owned_server_{std::make_unique<net::RpcServer>(fabric, self, rpc_params)},
      server_{owned_server_.get()} {
  register_handlers();
}

NfsServer::NfsServer(net::RpcServer& shared_server, LocalFileSystem& fs)
    : fs_{fs}, server_{&shared_server} {
  register_handlers();
}

void NfsServer::register_handlers() {
  server_->register_method("nfs.getattr", [this](const net::RpcRequest& req,
                                                net::RpcResponder respond) {
    const auto& args = std::any_cast<const NfsGetattrArgs&>(req.payload);
    NfsAttrReply reply;
    if (auto sz = fs_.size(args.path)) {
      reply.exists = true;
      reply.size = *sz;
    }
    respond(net::RpcResponse{.ok = true,
                             .error = {},
                             .response_bytes = kNfsHeaderBytes,
                             .payload = reply});
  });

  server_->register_method("nfs.read", [this](const net::RpcRequest& req,
                                             net::RpcResponder respond) {
    const auto& args = std::any_cast<const NfsReadArgs&>(req.payload);
    if (!fs_.exists(args.path)) {
      respond(net::RpcResponse{.ok = false,
                               .error = "ENOENT: " + args.path,
                               .response_bytes = kNfsHeaderBytes,
                               .payload = {}});
      return;
    }
    fs_.read(args.path, args.offset, args.len,
             [respond = std::move(respond)](ReadResult r) {
               const std::uint64_t bytes = r.bytes;
               respond(net::RpcResponse{.ok = true,
                                        .error = {},
                                        .response_bytes = kNfsHeaderBytes + bytes,
                                        .payload = NfsReadReply{std::move(r)}});
             });
  });

  server_->register_method("nfs.write", [this](const net::RpcRequest& req,
                                              net::RpcResponder respond) {
    const auto& args = std::any_cast<const NfsWriteArgs&>(req.payload);
    if (!fs_.exists(args.path)) {
      respond(net::RpcResponse{.ok = false,
                               .error = "ENOENT: " + args.path,
                               .response_bytes = kNfsHeaderBytes,
                               .payload = {}});
      return;
    }
    fs_.write(args.path, args.offset, args.len, [respond = std::move(respond)] {
      respond(net::RpcResponse{.ok = true,
                               .error = {},
                               .response_bytes = kNfsHeaderBytes,
                               .payload = {}});
    });
  });

  server_->register_method("nfs.create", [this](const net::RpcRequest& req,
                                               net::RpcResponder respond) {
    const auto& args = std::any_cast<const NfsCreateArgs&>(req.payload);
    fs_.create(args.path, args.size);
    respond(net::RpcResponse{.ok = true,
                             .error = {},
                             .response_bytes = kNfsHeaderBytes,
                             .payload = {}});
  });

  server_->register_method("nfs.remove", [this](const net::RpcRequest& req,
                                               net::RpcResponder respond) {
    const auto& args = std::any_cast<const NfsRemoveArgs&>(req.payload);
    fs_.remove(args.path);
    respond(net::RpcResponse{.ok = true,
                             .error = {},
                             .response_bytes = kNfsHeaderBytes,
                             .payload = {}});
  });
}

}  // namespace vmgrid::storage
