#include "storage/local_fs.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace vmgrid::storage {

namespace {
constexpr std::uint64_t kCopyChunk = 1 << 20;  // 1 MiB
}

void LocalFileSystem::create(const std::string& path, std::uint64_t size) {
  files_[path] = File{size, {}};
}

void LocalFileSystem::remove(const std::string& path) { files_.erase(path); }

bool LocalFileSystem::exists(const std::string& path) const {
  return files_.contains(path);
}

std::optional<std::uint64_t> LocalFileSystem::size(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) return std::nullopt;
  return it->second.size;
}

std::vector<std::string> LocalFileSystem::list() const {
  std::vector<std::string> names;
  names.reserve(files_.size());
  for (const auto& [name, _] : files_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

LocalFileSystem::File& LocalFileSystem::file_or_throw(const std::string& path) {
  auto it = files_.find(path);
  if (it == files_.end()) {
    throw std::logic_error("LocalFileSystem: no such file: " + path);
  }
  return it->second;
}

const LocalFileSystem::File& LocalFileSystem::file_or_throw(
    const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) {
    throw std::logic_error("LocalFileSystem: no such file: " + path);
  }
  return it->second;
}

std::uint64_t LocalFileSystem::block_version(const std::string& path,
                                             std::uint64_t block) const {
  const File& f = file_or_throw(path);
  auto it = f.dirty_blocks.find(block);
  return it == f.dirty_blocks.end() ? 0 : it->second;
}

void LocalFileSystem::read(const std::string& path, std::uint64_t offset,
                           std::uint64_t len, ReadCallback cb) {
  const File& f = file_or_throw(path);
  const std::uint64_t end = std::min(offset + len, f.size);
  const std::uint64_t bytes = end > offset ? end - offset : 0;
  ReadResult result;
  result.bytes = bytes;
  if (bytes > 0) {
    const std::uint64_t first = offset / kBlockSize;
    const std::uint64_t last = (end - 1) / kBlockSize;
    result.block_versions.reserve(last - first + 1);
    for (std::uint64_t b = first; b <= last; ++b) {
      result.block_versions.push_back(block_version(path, b));
    }
  }
  // A multi-block read is one mostly-sequential disk operation.
  disk_.access(std::max<std::uint64_t>(bytes, 512), bytes >= 4 * kBlockSize,
               [cb = std::move(cb), result = std::move(result)]() mutable {
                 cb(std::move(result));
               });
}

void LocalFileSystem::write(const std::string& path, std::uint64_t offset,
                            std::uint64_t len, DoneCallback cb) {
  File& f = file_or_throw(path);
  const std::uint64_t end = offset + len;
  f.size = std::max(f.size, end);
  if (len > 0) {
    const std::uint64_t first = offset / kBlockSize;
    const std::uint64_t last = (end - 1) / kBlockSize;
    for (std::uint64_t b = first; b <= last; ++b) {
      ++f.dirty_blocks[b];
    }
  }
  disk_.access(std::max<std::uint64_t>(len, 512), len >= 4 * kBlockSize,
               std::move(cb));
}

void LocalFileSystem::copy(const std::string& src, const std::string& dst,
                           DoneCallback cb) {
  const File& s = file_or_throw(src);
  File copy;
  copy.size = s.size;
  copy.dirty_blocks = s.dirty_blocks;
  files_[dst] = std::move(copy);  // metadata now; data cost charged below
  copy_chunk(src, dst, 0, std::move(cb));
}

void LocalFileSystem::copy_chunk(std::string src, std::string dst,
                                 std::uint64_t offset, DoneCallback cb) {
  const std::uint64_t total = file_or_throw(src).size;
  if (offset >= total) {
    cb();
    return;
  }
  const std::uint64_t chunk = std::min(kCopyChunk, total - offset);
  // Read then write: same spindle serves both halves of the copy.
  disk_.access(chunk, true, [this, src = std::move(src), dst = std::move(dst), offset,
                             chunk, cb = std::move(cb)]() mutable {
    disk_.access(chunk, true, [this, src = std::move(src), dst = std::move(dst),
                               offset, chunk, cb = std::move(cb)]() mutable {
      copy_chunk(std::move(src), std::move(dst), offset + chunk, std::move(cb));
    });
  });
}

}  // namespace vmgrid::storage
