#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/disk.hpp"

namespace vmgrid::storage {

inline constexpr std::uint64_t kBlockSize = 8192;  // NFS v2/3-era block

/// Result of a block-granular read: which blocks were covered and the
/// version of each. Versions let higher layers (caches, proxies) verify
/// coherence without the simulator shuffling real bytes.
struct ReadResult {
  std::uint64_t bytes{0};
  std::vector<std::uint64_t> block_versions;
};

/// Simple flat-namespace file system on one Disk.
///
/// Files carry a size and a per-block version counter (version 0 = as
/// created). Writes bump versions; reads report them. Metadata operations
/// are charged a small fixed cost; data operations go through the Disk.
class LocalFileSystem {
 public:
  LocalFileSystem(sim::Simulation& s, Disk& disk) : sim_{s}, disk_{disk} {}

  using DoneCallback = std::function<void()>;
  using ReadCallback = std::function<void(ReadResult)>;

  /// Create (or replace) a file of `size` bytes, all blocks at version 0.
  void create(const std::string& path, std::uint64_t size);
  void remove(const std::string& path);
  [[nodiscard]] bool exists(const std::string& path) const;
  [[nodiscard]] std::optional<std::uint64_t> size(const std::string& path) const;
  [[nodiscard]] std::vector<std::string> list() const;

  /// Asynchronous block-aligned read. Reading past EOF truncates.
  void read(const std::string& path, std::uint64_t offset, std::uint64_t len,
            ReadCallback cb);

  /// Asynchronous write; extends the file if needed, bumps block versions.
  void write(const std::string& path, std::uint64_t offset, std::uint64_t len,
             DoneCallback cb);

  /// Whole-file copy in 1 MiB chunks (read + write through the disk) —
  /// the cost behind Table 2's persistent-disk column.
  void copy(const std::string& src, const std::string& dst, DoneCallback cb);

  [[nodiscard]] std::uint64_t block_version(const std::string& path,
                                            std::uint64_t block) const;
  [[nodiscard]] Disk& disk() { return disk_; }

 private:
  struct File {
    std::uint64_t size{0};
    std::unordered_map<std::uint64_t, std::uint64_t> dirty_blocks;  // block -> version
  };

  void copy_chunk(std::string src, std::string dst, std::uint64_t offset,
                  DoneCallback cb);
  File& file_or_throw(const std::string& path);
  const File& file_or_throw(const std::string& path) const;

  sim::Simulation& sim_;
  Disk& disk_;
  std::unordered_map<std::string, File> files_;
};

}  // namespace vmgrid::storage
