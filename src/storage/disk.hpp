#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "model/fidelity.hpp"
#include "sim/simulation.hpp"

namespace vmgrid::model {
class FluidArena;
}

namespace vmgrid::storage {

/// 2003-era commodity IDE/SCSI disk: fixed positioning cost plus
/// sequential transfer bandwidth, FIFO service (one head).
struct DiskParams {
  sim::Duration seek{sim::Duration::millis(6)};
  double bandwidth_bps{30e6};           // sustained sequential, bytes/second
  sim::Duration cache_hit{sim::Duration::micros(50)};  // track-buffer hit
  double cache_hit_rate{0.0};           // fraction of ops that skip the seek
};

/// Block device with queued access. All file systems in the repo sit on
/// one of these; contention between co-located workloads (e.g. a VM disk
/// image and the host's own I/O) emerges from the FIFO queue.
///
/// Fidelity tiers (DESIGN.md §16): kExact (default) serializes accesses
/// FIFO at full bandwidth — byte-identical to the historical model.
/// kFluid runs concurrent accesses simultaneously, each holding a
/// max-min share of the disk's bandwidth (model::FluidArena), with the
/// positioning cost folded in as byte-equivalent work; one completion
/// event per IO either way, but fluid IOs overlap instead of queueing.
/// Both tiers draw the cache-hit Bernoulli identically, so switching
/// tiers never perturbs the rng stream.
class Disk {
 public:
  explicit Disk(sim::Simulation& s, DiskParams params = {});
  ~Disk();

  using IoCallback = std::function<void()>;

  /// Schedule an I/O of `bytes`; `sequential` skips the seek charge.
  void access(std::uint64_t bytes, bool sequential, IoCallback cb);

  void read(std::uint64_t bytes, IoCallback cb) { access(bytes, false, std::move(cb)); }
  void write(std::uint64_t bytes, IoCallback cb) { access(bytes, false, std::move(cb)); }

  /// Time a single access of `bytes` would take on an idle disk.
  [[nodiscard]] sim::Duration service_time(std::uint64_t bytes, bool sequential) const;

  /// Default tier comes from `VMGRID_FIDELITY` at construction; switch
  /// before issuing traffic (in-flight IOs keep their tier).
  void set_fidelity(model::Fidelity f) { fidelity_ = f; }
  [[nodiscard]] model::Fidelity fidelity() const { return fidelity_; }
  /// Fluid machinery; nullptr until the first fluid IO (test/bench hook).
  [[nodiscard]] const model::FluidArena* fluid_arena() const { return fluid_.get(); }

  [[nodiscard]] std::uint64_t bytes_transferred() const { return bytes_; }
  [[nodiscard]] std::uint64_t ops() const { return ops_; }
  [[nodiscard]] const DiskParams& params() const { return params_; }

 private:
  sim::Simulation& sim_;
  DiskParams params_;
  sim::TimePoint busy_until_{};  // exact tier only; meaningless in fluid
  model::Fidelity fidelity_;
  std::unique_ptr<model::FluidArena> fluid_;  // lazily built, fluid tier only
  std::uint32_t fluid_res_{0};                // valid while fluid_ != nullptr
  std::uint64_t bytes_{0};
  std::uint64_t ops_{0};
};

}  // namespace vmgrid::storage
