#pragma once

#include <cstdint>
#include <functional>

#include "sim/simulation.hpp"

namespace vmgrid::storage {

/// 2003-era commodity IDE/SCSI disk: fixed positioning cost plus
/// sequential transfer bandwidth, FIFO service (one head).
struct DiskParams {
  sim::Duration seek{sim::Duration::millis(6)};
  double bandwidth_bps{30e6};           // sustained sequential, bytes/second
  sim::Duration cache_hit{sim::Duration::micros(50)};  // track-buffer hit
  double cache_hit_rate{0.0};           // fraction of ops that skip the seek
};

/// Block device with queued access. All file systems in the repo sit on
/// one of these; contention between co-located workloads (e.g. a VM disk
/// image and the host's own I/O) emerges from the FIFO queue.
class Disk {
 public:
  Disk(sim::Simulation& s, DiskParams params = {}) : sim_{s}, params_{params} {}

  using IoCallback = std::function<void()>;

  /// Schedule an I/O of `bytes`; `sequential` skips the seek charge.
  void access(std::uint64_t bytes, bool sequential, IoCallback cb);

  void read(std::uint64_t bytes, IoCallback cb) { access(bytes, false, std::move(cb)); }
  void write(std::uint64_t bytes, IoCallback cb) { access(bytes, false, std::move(cb)); }

  /// Time a single access of `bytes` would take on an idle disk.
  [[nodiscard]] sim::Duration service_time(std::uint64_t bytes, bool sequential) const;

  [[nodiscard]] std::uint64_t bytes_transferred() const { return bytes_; }
  [[nodiscard]] std::uint64_t ops() const { return ops_; }
  [[nodiscard]] const DiskParams& params() const { return params_; }

 private:
  sim::Simulation& sim_;
  DiskParams params_;
  sim::TimePoint busy_until_{};
  std::uint64_t bytes_{0};
  std::uint64_t ops_{0};
};

}  // namespace vmgrid::storage
