#pragma once

#include <memory>

#include "net/rpc.hpp"
#include "obs/metrics.hpp"
#include "storage/local_fs.hpp"
#include "storage/nfs_protocol.hpp"

namespace vmgrid::storage {

/// NFS daemon exporting one LocalFileSystem at one network node.
///
/// Service cost per call = RPC stack overhead (RpcServerParams) + the
/// underlying disk time. This is the `nfsd` box in the paper's Figure 2.
///
/// Either owns its RpcServer (node-dedicated daemon) or registers its
/// methods on a caller-provided RpcServer shared with other services on
/// the same node (e.g. a compute server running both GRAM and nfsd).
class NfsServer {
 public:
  NfsServer(net::RpcFabric& fabric, net::NodeId self, LocalFileSystem& fs,
            net::RpcServerParams rpc_params = {});
  NfsServer(net::RpcServer& shared_server, LocalFileSystem& fs);

  [[nodiscard]] net::NodeId node() const { return server_->node(); }
  [[nodiscard]] LocalFileSystem& fs() { return fs_; }
  [[nodiscard]] std::uint64_t calls_served() const { return server_->calls_served(); }

 private:
  void register_handlers();
  obs::Counter& call_counter(const char* op);
  obs::HistogramMetric& service_hist(const char* op);

  LocalFileSystem& fs_;
  std::unique_ptr<net::RpcServer> owned_server_;
  net::RpcServer* server_;
};

}  // namespace vmgrid::storage
