#pragma once

#include <cstdint>
#include <string>

#include "storage/local_fs.hpp"

namespace vmgrid::storage {

/// Payload types for the simulated NFS protocol (carried in RpcRequest /
/// RpcResponse std::any slots). Method names: "nfs.getattr", "nfs.read",
/// "nfs.write", "nfs.create", "nfs.remove".

struct NfsGetattrArgs {
  std::string path;
};

struct NfsAttrReply {
  bool exists{false};
  std::uint64_t size{0};
};

struct NfsReadArgs {
  std::string path;
  std::uint64_t offset{0};
  std::uint64_t len{0};
};

struct NfsReadReply {
  ReadResult result;
};

struct NfsWriteArgs {
  std::string path;
  std::uint64_t offset{0};
  std::uint64_t len{0};
};

struct NfsCreateArgs {
  std::string path;
  std::uint64_t size{0};
};

struct NfsRemoveArgs {
  std::string path;
};

inline constexpr std::uint64_t kNfsHeaderBytes = 128;

}  // namespace vmgrid::storage
