#include "storage/nfs_client.hpp"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "obs/profiler.hpp"
#include "obs/trace.hpp"

namespace vmgrid::storage {

/// Shared state of one logical read/write spanning many block RPCs.
struct NfsTransferState {
  bool is_read{true};
  std::string path;
  std::uint64_t offset{0};
  std::uint64_t len{0};
  std::uint64_t block_bytes{kBlockSize};
  std::uint64_t next_block{0};   // next block index (relative) to issue
  std::uint64_t total_blocks{0};
  std::uint64_t completed{0};
  std::size_t in_flight{0};
  bool failed{false};
  bool delivered{false};
  Status first_failure;  ///< rpc-origin status of the first failing block
  NfsIoResult result;
  NfsClient::IoCallback cb;
  net::RpcCallOptions opts;  ///< per-transfer policy (budget + deadline)
  /// Absolute end-to-end deadline: blocks issued later in the window get
  /// a smaller remaining total_deadline instead of a fresh one.
  bool has_deadline{false};
  sim::TimePoint deadline_at{};
  /// Transfer-level span covering every block RPC of this read/write;
  /// per-block rpc spans parent under it via req.trace.
  obs::Span span{};
};

namespace {
constexpr obs::HistogramOptions kRpcLatencyBins{0.0, 1.0, 100};
}  // namespace

NfsClient::NfsClient(net::RpcFabric& fabric, net::NodeId self, net::NodeId server,
                     NfsClientParams params)
    : fabric_{fabric}, self_{self}, server_{server}, params_{params} {
  if (params_.enable_retry_budget) {
    budget_.emplace(params_.retry_budget);
  }
  auto& m = fabric_.simulation().metrics();
  lat_read_ = &m.histogram("nfs.client.rpc_latency_s", kRpcLatencyBins, {{"op", "read"}});
  lat_write_ =
      &m.histogram("nfs.client.rpc_latency_s", kRpcLatencyBins, {{"op", "write"}});
  lat_getattr_ =
      &m.histogram("nfs.client.rpc_latency_s", kRpcLatencyBins, {{"op", "getattr"}});
  lat_create_ =
      &m.histogram("nfs.client.rpc_latency_s", kRpcLatencyBins, {{"op", "create"}});
}

net::RpcCallOptions NfsClient::effective_opts(sim::Duration deadline_budget) const {
  net::RpcCallOptions o = params_.rpc;
  if (budget_) o.retry_budget = &*budget_;
  if (!deadline_budget.is_infinite() &&
      (o.total_deadline.is_infinite() || deadline_budget < o.total_deadline)) {
    o.total_deadline = deadline_budget;
  }
  return o;
}

void NfsClient::getattr(const std::string& path, AttrCallback cb) {
  auto& sim = fabric_.simulation();
  if (auto it = attr_cache_.find(path); it != attr_cache_.end()) {
    if (sim.now() - it->second.fetched <= params_.attr_cache_ttl) {
      const auto size = it->second.size;
      sim.schedule_after(sim::Duration::micros(5),
                         [cb = std::move(cb), size] { cb(size); });
      return;
    }
  }
  ++rpcs_;
  const sim::TimePoint t0 = sim.now();
  fabric_.call(self_, server_,
               net::RpcRequest{"nfs.getattr", kNfsHeaderBytes, NfsGetattrArgs{path}},
               effective_opts(),
               [this, path, t0, cb = std::move(cb)](net::RpcResponse resp) {
                 lat_getattr_->observe((fabric_.simulation().now() - t0).to_seconds());
                 if (!resp.ok()) {
                   cb(std::nullopt);
                   return;
                 }
                 const auto& reply = std::any_cast<const NfsAttrReply&>(resp.payload);
                 if (!reply.exists) {
                   attr_cache_.erase(path);
                   cb(std::nullopt);
                   return;
                 }
                 attr_cache_[path] = AttrEntry{reply.size, fabric_.simulation().now()};
                 cb(reply.size);
               });
}

void NfsClient::read(const std::string& path, std::uint64_t offset, std::uint64_t len,
                     IoCallback cb) {
  read(path, offset, len, sim::Duration::infinite(), std::move(cb));
}

void NfsClient::read(const std::string& path, std::uint64_t offset, std::uint64_t len,
                     sim::Duration deadline_budget, IoCallback cb) {
  auto st = std::make_shared<NfsTransferState>();
  st->opts = effective_opts(deadline_budget);
  if (!deadline_budget.is_infinite()) {
    st->has_deadline = true;
    st->deadline_at = fabric_.simulation().now() + deadline_budget;
  }
  st->is_read = true;
  st->path = path;
  st->offset = offset;
  st->len = len;
  st->block_bytes = params_.block_bytes;
  st->total_blocks = len == 0 ? 0 : (len + params_.block_bytes - 1) / params_.block_bytes;
  st->result.block_versions.assign(st->total_blocks, 0);
  st->cb = std::move(cb);
  if (st->total_blocks == 0) {
    fabric_.simulation().schedule_after(sim::Duration::micros(5),
                                        [st] { st->cb(std::move(st->result)); });
    return;
  }
  auto& sim = fabric_.simulation();
  st->span = obs::Span{sim, "nfs.read", fabric_.network().node_name(self_),
                       sim.trace().current(), "nfs"};
  st->span.arg("path", path);
  run_window(st);
}

void NfsClient::write(const std::string& path, std::uint64_t offset, std::uint64_t len,
                      IoCallback cb) {
  write(path, offset, len, sim::Duration::infinite(), std::move(cb));
}

void NfsClient::write(const std::string& path, std::uint64_t offset, std::uint64_t len,
                      sim::Duration deadline_budget, IoCallback cb) {
  auto st = std::make_shared<NfsTransferState>();
  st->opts = effective_opts(deadline_budget);
  if (!deadline_budget.is_infinite()) {
    st->has_deadline = true;
    st->deadline_at = fabric_.simulation().now() + deadline_budget;
  }
  st->is_read = false;
  st->path = path;
  st->offset = offset;
  st->len = len;
  st->block_bytes = params_.block_bytes;
  st->total_blocks = len == 0 ? 0 : (len + params_.block_bytes - 1) / params_.block_bytes;
  st->cb = std::move(cb);
  if (st->total_blocks == 0) {
    fabric_.simulation().schedule_after(sim::Duration::micros(5),
                                        [st] { st->cb(std::move(st->result)); });
    return;
  }
  auto& sim = fabric_.simulation();
  st->span = obs::Span{sim, "nfs.write", fabric_.network().node_name(self_),
                       sim.trace().current(), "nfs"};
  st->span.arg("path", path);
  run_window(st);
}

void NfsClient::run_window(std::shared_ptr<NfsTransferState> st) {
  obs::SimProfiler::Scope prof{"nfs.client"};
  while (st->in_flight < params_.window && st->next_block < st->total_blocks &&
         !st->failed) {
    const std::uint64_t rel = st->next_block++;
    const std::uint64_t off = st->offset + rel * st->block_bytes;
    const std::uint64_t remaining = st->len - rel * st->block_bytes;
    const std::uint64_t chunk = std::min(st->block_bytes, remaining);
    ++st->in_flight;
    ++rpcs_;
    ++st->result.rpcs;
    net::RpcRequest req;
    if (st->is_read) {
      req = net::RpcRequest{"nfs.read", kNfsHeaderBytes,
                            NfsReadArgs{st->path, off, chunk}};
    } else {
      req = net::RpcRequest{"nfs.write", kNfsHeaderBytes + chunk,
                            NfsWriteArgs{st->path, off, chunk}};
    }
    req.trace = st->span.context();
    const sim::TimePoint t0 = fabric_.simulation().now();
    net::RpcCallOptions opts = st->opts;
    if (st->has_deadline) {
      // Remaining budget at issue time; never negative — a zero
      // total_deadline settles the call kTimeout on the next event.
      sim::Duration remaining = st->deadline_at - t0;
      if (remaining < sim::Duration::zero()) remaining = sim::Duration::zero();
      if (opts.total_deadline.is_infinite() || remaining < opts.total_deadline) {
        opts.total_deadline = remaining;
      }
    }
    fabric_.call(self_, server_, std::move(req), opts,
                 [this, st, rel, chunk, t0](net::RpcResponse resp) {
                   (st->is_read ? lat_read_ : lat_write_)
                       ->observe((fabric_.simulation().now() - t0).to_seconds());
                   --st->in_flight;
                   ++st->completed;
                   if (!resp.ok()) {
                     if (!st->failed) {
                       st->failed = true;
                       st->first_failure =
                           net::to_status(resp, st->is_read ? "nfs.read" : "nfs.write");
                     }
                   } else if (st->is_read) {
                     const auto& reply = std::any_cast<const NfsReadReply&>(resp.payload);
                     st->result.bytes += reply.result.bytes;
                     if (!reply.result.block_versions.empty() &&
                         rel < st->result.block_versions.size()) {
                       st->result.block_versions[rel] = reply.result.block_versions.front();
                     }
                   } else {
                     st->result.bytes += chunk;
                   }
                   // Finished when every block answered, or when a failure
                   // stopped the window and the outstanding RPCs drained.
                   const bool all_answered = st->completed == st->total_blocks;
                   const bool failed_drained = st->failed && st->in_flight == 0;
                   if ((all_answered || failed_drained) && !st->delivered) {
                     st->delivered = true;
                     if (st->failed) {
                       st->result.status =
                           Status{st->first_failure.code(),
                                  st->is_read ? "read failed" : "write failed"}
                               .at("nfs", st->is_read ? "read" : "write")
                               .caused_by(std::move(st->first_failure));
                       record_error(fabric_.simulation().metrics(), st->result.status);
                     }
                     st->span.set_status(st->result.status);
                     st->span.end();
                     st->cb(std::move(st->result));
                     return;
                   }
                   run_window(st);
                 });
  }
}

void NfsClient::create(const std::string& path, std::uint64_t size, BoolCallback cb) {
  ++rpcs_;
  const sim::TimePoint t0 = fabric_.simulation().now();
  fabric_.call(self_, server_,
               net::RpcRequest{"nfs.create", kNfsHeaderBytes, NfsCreateArgs{path, size}},
               effective_opts(),
               [this, t0, cb = std::move(cb)](net::RpcResponse resp) {
                 lat_create_->observe((fabric_.simulation().now() - t0).to_seconds());
                 cb(resp.ok());
               });
}

}  // namespace vmgrid::storage
