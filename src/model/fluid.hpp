#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <span>
#include <unordered_map>
#include <vector>

#include "sim/simulation.hpp"

namespace vmgrid::model {

using ResourceId = std::uint32_t;
using ActionId = std::uint64_t;  // 0 is never issued

/// Shared fluid resource-model machinery (DESIGN.md §16): the kFluid
/// tier's replacement for per-packet / per-slice discrete events.
///
/// A *resource* is a capacity pipe (a directed link's bandwidth, a
/// disk's transfer rate, a host's CPUs). An *action* pushes `work`
/// units through every resource on its list simultaneously (a network
/// flow occupies each link of its path; a disk IO occupies the one
/// disk), at a rate set by weighted max-min fair sharing across all
/// concurrent actions, clipped by the action's own rate cap.
///
/// Lazy-update contract: the solver runs only when the constraint set
/// changes (an action starts, completes, is cancelled, or a capacity
/// changes) — never per packet or time slice — and each solve touches
/// only the *connected component* of actions and resources reachable
/// from the change through potentially-contended resources. A resource
/// whose summed action caps fit inside its capacity can never bind, so
/// traversal stops there; in a well-provisioned topology components
/// stay O(flows on the congested link) instead of O(all flows).
/// Completion events are kept in a lazy min-heap with one armed kernel
/// event for the earliest finisher; rate changes push fresh entries and
/// stale ones are skipped on pop.
///
/// Determinism: actions and resources are iterated in id order
/// everywhere, so identical call sequences produce identical rate
/// vectors and completion schedules across processes and VMGRID_JOBS.
class FluidArena {
 public:
  explicit FluidArena(sim::Simulation& s) : sim_{s} {}

  FluidArena(const FluidArena&) = delete;
  FluidArena& operator=(const FluidArena&) = delete;

  ResourceId add_resource(double capacity);
  /// Capacity changes re-solve the affected component (fluid analogue of
  /// a link degrading: in-flight actions adapt, routing does not).
  void set_capacity(ResourceId r, double capacity);
  [[nodiscard]] double capacity(ResourceId r) const;
  /// Actions currently holding a share of `r` (estimate_latency probes).
  [[nodiscard]] std::size_t actions_on(ResourceId r) const;

  using DoneCallback = std::function<void()>;

  /// Start an action: `work` units through every resource in `res`.
  /// `rate_cap` <= 0 means uncapped (finite caps enable component
  /// pruning — pass the natural bottleneck, e.g. min path bandwidth).
  /// `weight` scales the max-min share. `on_done` fires when the work
  /// drains; it may start further actions.
  ActionId start(std::vector<ResourceId> res, double work, double rate_cap,
                 double weight, DoneCallback on_done);
  /// Allocation-free variant: the resource list is copied into pooled
  /// storage recycled from completed actions (hot path for per-flow
  /// callers like Network::send_fluid).
  ActionId start(std::span<const ResourceId> res, double work, double rate_cap,
                 double weight, DoneCallback on_done);

  /// Drop an action without firing its callback (no-op if unknown).
  void cancel(ActionId id);

  [[nodiscard]] bool active(ActionId id) const { return actions_.contains(id); }
  [[nodiscard]] double rate(ActionId id) const;
  /// Work left at sim.now() (lazily advanced; does not mutate).
  [[nodiscard]] double remaining(ActionId id) const;

  [[nodiscard]] std::size_t active_actions() const { return actions_.size(); }
  /// Component re-solves since construction (the lazy-update meter:
  /// compare against completed actions to see how much work each
  /// constraint change actually touched).
  [[nodiscard]] std::uint64_t solves() const { return solves_; }
  [[nodiscard]] std::uint64_t actions_completed() const { return completed_; }

 private:
  struct Action {
    std::vector<ResourceId> res;
    double remaining{0.0};
    double rate{0.0};
    double cap{0.0};  // <= 0: uncapped
    double weight{1.0};
    sim::TimePoint last{};    // remaining is exact as of this instant
    std::uint64_t serial{0};  // heap entries with older serials are stale
    DoneCallback on_done;
  };

  struct Resource {
    double capacity{0.0};
    /// Sum of caps of resident actions; infinite while any is uncapped.
    double cap_demand{0.0};
    std::vector<ActionId> actions;  // ascending id (insertion) order
  };

  struct HeapEntry {
    sim::TimePoint finish;
    ActionId id;
    std::uint64_t serial;
    bool operator>(const HeapEntry& o) const {
      return finish != o.finish ? finish > o.finish : id > o.id;
    }
  };

  [[nodiscard]] bool contended(const Resource& r) const {
    return r.cap_demand > r.capacity * (1.0 + 1e-12);
  }

  /// Advance + max-min + completion re-arm for the component reachable
  /// from `seeds` (resource ids, duplicates fine). Never runs user code,
  /// so the scratch buffers below can be reused across calls.
  void resolve(const std::vector<ResourceId>& seeds);
  void push_finish(ActionId id, Action& a);
  void arm();
  void on_timer();
  void detach(ActionId id, Action& a);  // remove from resource lists
  void recycle(std::vector<ResourceId>&& res);  // return storage to the pool

  sim::Simulation& sim_;
  std::vector<Resource> resources_;
  // Hashed, not ordered: nothing iterates the table, and determinism
  // comes from iterating ids through `Resource::actions` / the heap.
  std::unordered_map<ActionId, Action> actions_;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap_;
  // resolve() scratch, reused across solves (solver hot path at scale).
  std::vector<ResourceId> comp_res_, res_stack_, seed_scratch_;
  std::vector<ActionId> comp_act_, todo_, assigned_, rest_;
  std::vector<double> cap_left_, wsum_;
  // on_timer() scratch. Safe to reuse: on_timer only ever runs from the
  // armed kernel event, and the user callbacks it fires can start/cancel
  // actions (touching the resolve scratch above) but never re-enter it.
  std::vector<ActionId> timer_done_;
  std::vector<ResourceId> timer_seeds_;
  std::vector<DoneCallback> timer_callbacks_;
  // Recycled Action::res storage (span-start overload draws from here).
  std::vector<std::vector<ResourceId>> res_pool_;
  sim::EventId timer_{};
  sim::TimePoint timer_at_{sim::TimePoint::max()};
  bool timer_armed_{false};
  ActionId next_id_{1};
  std::uint64_t solves_{0};
  std::uint64_t completed_{0};
};

}  // namespace vmgrid::model
