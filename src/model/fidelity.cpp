#include "model/fidelity.hpp"

#include <cstdlib>
#include <cstring>

namespace vmgrid::model {

const char* to_string(Fidelity f) {
  switch (f) {
    case Fidelity::kExact: return "exact";
    case Fidelity::kFluid: return "fluid";
  }
  return "unknown";
}

Fidelity fidelity_from_env() {
  static const Fidelity cached = [] {
    const char* v = std::getenv("VMGRID_FIDELITY");
    if (v != nullptr && std::strcmp(v, "fluid") == 0) return Fidelity::kFluid;
    return Fidelity::kExact;
  }();
  return cached;
}

}  // namespace vmgrid::model
